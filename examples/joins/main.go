// Containment joins and composite predicates — the query classes the
// paper's §6 surveys and its §7 names as future work. The scenario:
// a catalogue of product "bundles" joined against customer baskets.
//
//   - "Which baskets contain each bundle?" is a subset containment join:
//     for every bundle (outer), find the baskets (inner) whose item set
//     contains it.
//   - "Baskets with bread and milk but no candles, drawn entirely from
//     groceries" is a composite predicate: AllOf + NoneOf + Within.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/setcontain"
)

const domain = 400 // product vocabulary

func main() {
	rng := rand.New(rand.NewSource(11))

	// Inner relation: 30 000 customer baskets, skewed item popularity.
	baskets := setcontain.NewCollection(domain)
	for i := 0; i < 30000; i++ {
		n := 2 + rng.Intn(10)
		seen := map[setcontain.Item]bool{}
		set := make([]setcontain.Item, 0, n)
		for len(set) < n {
			u := rng.Float64()
			it := setcontain.Item(u * u * domain)
			if it >= domain {
				it = domain - 1
			}
			if !seen[it] {
				seen[it] = true
				set = append(set, it)
			}
		}
		if _, err := baskets.Add(set); err != nil {
			log.Fatal(err)
		}
	}
	idx, err := setcontain.New(baskets)
	if err != nil {
		log.Fatal(err)
	}

	// Outer relation: 50 curated bundles of 2-3 popular products.
	bundles := setcontain.NewCollection(domain)
	for i := 0; i < 50; i++ {
		n := 2 + rng.Intn(2)
		seen := map[setcontain.Item]bool{}
		set := make([]setcontain.Item, 0, n)
		for len(set) < n {
			it := setcontain.Item(rng.Intn(60)) // popular range
			if !seen[it] {
				seen[it] = true
				set = append(set, it)
			}
		}
		if _, err := bundles.Add(set); err != nil {
			log.Fatal(err)
		}
	}

	// Containment join: bundle ⊆ basket.
	var pairs, bestBundle int
	var bestCount int
	err = idx.JoinInto(bundles, setcontain.PredicateSubset,
		func(bundleID uint32, basketIDs []uint32) error {
			pairs += len(basketIDs)
			if len(basketIDs) > bestCount {
				bestCount = len(basketIDs)
				bestBundle = int(bundleID)
			}
			return nil
		})
	if err != nil {
		log.Fatal(err)
	}
	bestSet, _ := bundles.Record(uint32(bestBundle))
	fmt.Printf("containment join: %d bundles x %d baskets -> %d qualifying pairs\n",
		bundles.Len(), baskets.Len(), pairs)
	fmt.Printf("best-selling bundle #%d %v appears in %d baskets\n\n",
		bestBundle, bestSet, bestCount)

	// Composite predicate: baskets with items 3 AND 7, without item 0,
	// drawn entirely from the 100 most popular products.
	within := make([]setcontain.Item, 100)
	for i := range within {
		within[i] = setcontain.Item(i)
	}
	q := setcontain.Composite{
		AllOf:  []setcontain.Item{3, 7},
		NoneOf: []setcontain.Item{0},
		Within: within,
	}
	ids, err := idx.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("composite query {3,7} ∧ ¬{0} ∧ ⊆top-100: %d baskets\n", len(ids))

	st := idx.CacheStats()
	fmt.Printf("\ntotal page reads: %d (seq %d, near %d, random %d)\n",
		st.PageReads, st.Sequential, st.Near, st.Random)
}
