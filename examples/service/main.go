// Service: the serving layer end-to-end in one process — index a
// skewed collection, stand up the setcontaind HTTP surface on a local
// port, and play the client side: a batched POST /query, the textual
// GET form, a flushed /stream, and a /stats readback showing whether
// micro-batching engaged.
//
// In production the two halves run in different processes (see
// cmd/setcontaind and docs/ARCHITECTURE.md); everything over the wire
// here is exactly what a remote client sees.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"sync"

	"repro/internal/dataset"
	"repro/setcontain"
	"repro/setcontain/serve"
)

func main() {
	// --- Server side -----------------------------------------------------
	// A skewed synthetic collection, sharded across two planner-chosen
	// engines, behind a Store and the serve layer.
	d, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		NumRecords: 20000, DomainSize: 500,
		MinLen: 2, MaxLen: 12, ZipfTheta: 0.9, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	coll := setcontain.WrapDataset(d)
	idx, err := setcontain.New(coll,
		setcontain.WithKind(setcontain.Sharded),
		setcontain.WithShards(2))
	if err != nil {
		log.Fatal(err)
	}
	store := setcontain.NewStore(idx, 0)
	sv := serve.NewServer(idx, store, serve.Config{ChunkIDs: 256})
	defer sv.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: sv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving %d records on %s\n\n", coll.Len(), base)

	// --- Client side -----------------------------------------------------
	// A batch of three queries in one POST; answers stream back as
	// NDJSON lines keyed by query index.
	req := serve.QueryRequest{Queries: []serve.QuerySpec{
		{Pred: "subset", Items: []setcontain.Item{0, 1}},
		{Pred: "equality", Items: []setcontain.Item{0, 1, 2}},
		{Pred: "superset", Items: []setcontain.Item{0, 1, 2, 3, 4}},
	}}
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("POST /query:")
	printResults(resp)

	// The same textual form the CLIs use works on the wire (the +
	// encodes the space: subset{0 5}).
	resp, err = http.Get(base + "/query?q=subset{0+5}")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("GET /query?q=subset{0+5}:")
	printResults(resp)

	// Huge answers stream in flushed chunks: subset{0} (the hottest
	// item) matches thousands of records, delivered 256 ids per line.
	resp, err = http.Get(base + "/stream?q=subset{0}")
	if err != nil {
		log.Fatal(err)
	}
	chunks, total := 0, 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var res serve.Result
		if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
			log.Fatal(err)
		}
		chunks++
		total += len(res.IDs)
	}
	resp.Body.Close()
	fmt.Printf("GET /stream?q=subset{0}: %d ids in %d NDJSON chunks\n\n", total, chunks)

	// Concurrent clients make micro-batching visible in /stats.
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < 25; r++ {
				q := fmt.Sprintf("%s/query?q=subset{%d+%d}", base, c%5, 5+(c+r)%20)
				resp, err := http.Get(q)
				if err != nil {
					log.Fatal(err)
				}
				_, _ = bufio.NewReader(resp.Body).WriteTo(new(strings.Builder))
				resp.Body.Close()
			}
		}(c)
	}
	wg.Wait()

	resp, err = http.Get(base + "/stats")
	if err != nil {
		log.Fatal(err)
	}
	var st serve.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("after 8 concurrent clients x 25 queries:\n")
	fmt.Printf("  queries=%d batches=%d mean batch=%.2f (coalescing %s)\n",
		st.Batcher.Queries, st.Batcher.Batches, st.Batcher.MeanBatch,
		map[bool]string{true: "engaged", false: "idle"}[st.Batcher.MeanBatch > 1])
	fmt.Printf("  decoded-cache hit rate %.2f, page reads %d\n",
		st.Store.DecodedHitRate, st.Store.PageReads)
	for _, p := range st.ShardPlans {
		fmt.Printf("  shard %d: %s, %d records, theta %.2f\n", p.Shard, p.Kind, p.Records, p.Theta)
	}
}

// printResults decodes and prints an NDJSON answer stream, eliding long
// id lists.
func printResults(resp *http.Response) {
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var res serve.Result
		if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
			log.Fatal(err)
		}
		if res.More {
			continue // intermediate chunk; the final line carries the count
		}
		ids := res.IDs
		elided := ""
		if len(ids) > 8 {
			ids = ids[:8]
		}
		if res.Count > len(ids) {
			elided = fmt.Sprintf(" … (%d total)", res.Count)
		}
		fmt.Printf("  query %d: ids %v%s err=%q\n", res.Query, ids, elided, res.Error)
	}
	fmt.Println()
}
