// Publish/subscribe matching — an application class the paper singles out
// ("e.g., superset in publish/subscribe systems"). Each subscription is a
// set of tags it requires; an event carries a set of tags. A subscription
// fires when ALL of its tags appear on the event, i.e. the subscription's
// set is contained in the event's set — precisely a superset query with
// the event's tags as the query set.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"

	"repro/setcontain"
)

const (
	numTags          = 500
	numSubscriptions = 50000
)

func main() {
	rng := rand.New(rand.NewSource(99))

	// Subscriptions require 1..4 tags; tag interest is skewed (low tag
	// ids are popular topics).
	coll := setcontain.NewCollection(numTags)
	for i := 0; i < numSubscriptions; i++ {
		n := 1 + rng.Intn(4)
		seen := map[setcontain.Item]bool{}
		tags := make([]setcontain.Item, 0, n)
		for len(tags) < n {
			// Squaring a uniform variate skews towards popular tags.
			u := rng.Float64()
			tag := setcontain.Item(u * u * numTags)
			if tag >= numTags {
				tag = numTags - 1
			}
			if !seen[tag] {
				seen[tag] = true
				tags = append(tags, tag)
			}
		}
		if _, err := coll.Add(tags); err != nil {
			log.Fatal(err)
		}
	}

	idx, err := setcontain.New(coll)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered %d subscriptions over %d tags\n\n", coll.Len(), numTags)

	// Generate a stream of events; each event carries 3..10 tags.
	const events = 200
	queries := make([]setcontain.Query, events)
	for e := range queries {
		n := 3 + rng.Intn(8)
		seen := map[setcontain.Item]bool{}
		tags := make([]setcontain.Item, 0, n)
		for len(tags) < n {
			u := rng.Float64()
			tag := setcontain.Item(u * u * numTags)
			if tag >= numTags {
				tag = numTags - 1
			}
			if !seen[tag] {
				seen[tag] = true
				tags = append(tags, tag)
			}
		}
		queries[e] = setcontain.SupersetQuery(tags)
	}

	// Dispatch concurrently: a Store hands each goroutine an isolated
	// pooled reader, so brokers match events in parallel over the one
	// index. Real dispatchers would plumb per-request contexts through.
	ctx := context.Background()
	store := setcontain.NewStore(idx, 0)
	const brokers = 4
	matchCounts := make([]int, events)
	var wg sync.WaitGroup
	for b := 0; b < brokers; b++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for e := shard; e < events; e += brokers {
				matches, err := store.Exec(ctx, queries[e])
				if err != nil {
					log.Fatal(err)
				}
				matchCounts[e] = len(matches)
			}
		}(b)
	}
	wg.Wait()

	var totalMatches, maxMatches int
	for e, n := range matchCounts {
		totalMatches += n
		if n > maxMatches {
			maxMatches = n
		}
		if e < 3 {
			fmt.Printf("event %d as %s matched %d subscriptions\n", e+1, queries[e], n)
		}
	}
	fmt.Printf("...\ndispatched %d events across %d brokers: %.1f matched subscriptions on average, %d max\n",
		events, brokers, float64(totalMatches)/events, maxMatches)

	// Subscriptions churn: register a new one mid-stream. Refresh tells
	// the store to retire its pooled readers so the insert is visible.
	id, err := idx.Insert([]setcontain.Item{1, 2})
	if err != nil {
		log.Fatal(err)
	}
	store.Refresh()
	m, err := store.Exec(ctx, setcontain.SupersetQuery([]setcontain.Item{0, 1, 2, 3}))
	if err != nil {
		log.Fatal(err)
	}
	fired := false
	for _, s := range m {
		if s == id {
			fired = true
		}
	}
	fmt.Printf("new subscription #%d registered and matching immediately: %v\n", id, fired)
}
