// Publish/subscribe matching — an application class the paper singles out
// ("e.g., superset in publish/subscribe systems"). Each subscription is a
// set of tags it requires; an event carries a set of tags. A subscription
// fires when ALL of its tags appear on the event, i.e. the subscription's
// set is contained in the event's set — precisely a superset query with
// the event's tags as the query set.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/setcontain"
)

const (
	numTags          = 500
	numSubscriptions = 50000
)

func main() {
	rng := rand.New(rand.NewSource(99))

	// Subscriptions require 1..4 tags; tag interest is skewed (low tag
	// ids are popular topics).
	coll := setcontain.NewCollection(numTags)
	for i := 0; i < numSubscriptions; i++ {
		n := 1 + rng.Intn(4)
		seen := map[setcontain.Item]bool{}
		tags := make([]setcontain.Item, 0, n)
		for len(tags) < n {
			// Squaring a uniform variate skews towards popular tags.
			u := rng.Float64()
			tag := setcontain.Item(u * u * numTags)
			if tag >= numTags {
				tag = numTags - 1
			}
			if !seen[tag] {
				seen[tag] = true
				tags = append(tags, tag)
			}
		}
		if _, err := coll.Add(tags); err != nil {
			log.Fatal(err)
		}
	}

	idx, err := setcontain.Build(coll, setcontain.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered %d subscriptions over %d tags\n\n", coll.Len(), numTags)

	// Dispatch a stream of events; each event carries 3..10 tags.
	const events = 200
	var totalMatches, maxMatches int
	for e := 0; e < events; e++ {
		n := 3 + rng.Intn(8)
		seen := map[setcontain.Item]bool{}
		tags := make([]setcontain.Item, 0, n)
		for len(tags) < n {
			u := rng.Float64()
			tag := setcontain.Item(u * u * numTags)
			if tag >= numTags {
				tag = numTags - 1
			}
			if !seen[tag] {
				seen[tag] = true
				tags = append(tags, tag)
			}
		}
		matches, err := idx.Superset(tags)
		if err != nil {
			log.Fatal(err)
		}
		totalMatches += len(matches)
		if len(matches) > maxMatches {
			maxMatches = len(matches)
		}
		if e < 3 {
			fmt.Printf("event %d with tags %v matched %d subscriptions\n", e+1, tags, len(matches))
		}
	}
	fmt.Printf("...\ndispatched %d events: %.1f matched subscriptions on average, %d max\n",
		events, float64(totalMatches)/events, maxMatches)

	st := idx.CacheStats()
	fmt.Printf("page reads across the stream: %d (%.1f per event; seq %d, near %d, random %d)\n",
		st.PageReads, float64(st.PageReads)/events, st.Sequential, st.Near, st.Random)

	// Subscriptions churn: register a new one mid-stream.
	id, err := idx.Insert([]setcontain.Item{1, 2})
	if err != nil {
		log.Fatal(err)
	}
	m, err := idx.Superset([]setcontain.Item{0, 1, 2, 3})
	if err != nil {
		log.Fatal(err)
	}
	fired := false
	for _, s := range m {
		if s == id {
			fired = true
		}
	}
	fmt.Printf("new subscription #%d registered and matching immediately: %v\n", id, fired)
}
