// Quickstart: index the paper's running example (Figure 1 of Terrovitis
// et al., EDBT 2011) and run one query of each containment predicate.
package main

import (
	"fmt"
	"log"

	"repro/setcontain"
)

func main() {
	// The relation of the paper's Fig. 1: 18 records over items a..j.
	const (
		a = iota
		b
		c
		d
		e
		f
		g
		h
		i
		j
	)
	sets := [][]setcontain.Item{
		{g, b, a, d}, {a, e, b}, {f, e, a, b}, {d, b, a}, {a, b, f, c},
		{c, a}, {d, h}, {b, a, f}, {b, c}, {j, b, g}, {a, c, b}, {i, d},
		{a}, {a, d}, {j, c, a}, {i, c}, {a, c, h}, {d, c},
	}

	coll := setcontain.NewCollection(10)
	if err := coll.SetLabels([]string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}); err != nil {
		log.Fatal(err)
	}
	for _, s := range sets {
		if _, err := coll.Add(s); err != nil {
			log.Fatal(err)
		}
	}

	idx, err := setcontain.Build(coll, setcontain.Options{}) // OIF by default
	if err != nil {
		log.Fatal(err)
	}

	show := func(name string, qs []setcontain.Item, ids []uint32) {
		labels := make([]string, len(qs))
		for i, it := range qs {
			labels[i] = coll.Label(it)
		}
		fmt.Printf("%-9s %v -> records %v\n", name, labels, ids)
		for _, id := range ids {
			set, _ := coll.Record(id)
			names := make([]string, len(set))
			for i, it := range set {
				names[i] = coll.Label(it)
			}
			fmt.Printf("            #%d = %v\n", id, names)
		}
	}

	// "Which records contain both a and d?" — the paper's §2 subset
	// example; the answer is records 101, 104, 114 (here ids 1, 4, 14).
	ids, err := idx.Subset([]setcontain.Item{a, d})
	if err != nil {
		log.Fatal(err)
	}
	show("subset", []setcontain.Item{a, d}, ids)

	// "Which records are exactly {a, b, d}?"
	ids, err = idx.Equality([]setcontain.Item{a, b, d})
	if err != nil {
		log.Fatal(err)
	}
	show("equality", []setcontain.Item{a, b, d}, ids)

	// "Which records contain only items from {a, c}?" — the paper's §2
	// superset example; the answer is records 106 and 113 (ids 6, 13).
	ids, err = idx.Superset([]setcontain.Item{a, c})
	if err != nil {
		log.Fatal(err)
	}
	show("superset", []setcontain.Item{a, c}, ids)

	st := idx.CacheStats()
	fmt.Printf("\nindex: %s; page reads: %d (seq %d, near %d, random %d)\n",
		idx.Kind(), st.PageReads, st.Sequential, st.Near, st.Random)
}
