// Quickstart: index the paper's running example (Figure 1 of Terrovitis
// et al., EDBT 2011) and run one query of each containment predicate.
package main

import (
	"fmt"
	"log"

	"repro/setcontain"
)

func main() {
	// The relation of the paper's Fig. 1: 18 records over items a..j.
	const (
		a = iota
		b
		c
		d
		e
		f
		g
		h
		i
		j
	)
	sets := [][]setcontain.Item{
		{g, b, a, d}, {a, e, b}, {f, e, a, b}, {d, b, a}, {a, b, f, c},
		{c, a}, {d, h}, {b, a, f}, {b, c}, {j, b, g}, {a, c, b}, {i, d},
		{a}, {a, d}, {j, c, a}, {i, c}, {a, c, h}, {d, c},
	}

	coll := setcontain.NewCollection(10)
	if err := coll.SetLabels([]string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}); err != nil {
		log.Fatal(err)
	}
	for _, s := range sets {
		if _, err := coll.Add(s); err != nil {
			log.Fatal(err)
		}
	}

	idx, err := setcontain.New(coll) // OIF by default
	if err != nil {
		log.Fatal(err)
	}

	show := func(q setcontain.Query, ids []uint32) {
		labels := make([]string, len(q.Items))
		for i, it := range q.Items {
			labels[i] = coll.Label(it)
		}
		fmt.Printf("%-9s %v -> records %v\n", q.Pred, labels, ids)
		for _, id := range ids {
			set, _ := coll.Record(id)
			names := make([]string, len(set))
			for i, it := range set {
				names[i] = coll.Label(it)
			}
			fmt.Printf("            #%d = %v\n", id, names)
		}
	}

	// "Which records contain both a and d?" — the paper's §2 subset
	// example; the answer is records 101, 104, 114 (here ids 1, 4, 14).
	// Queries are first-class values evaluated against the index.
	q := setcontain.SubsetQuery([]setcontain.Item{a, d})
	ids, err := idx.Eval(q)
	if err != nil {
		log.Fatal(err)
	}
	show(q, ids)

	// "Which records are exactly {a, b, d}?"
	q = setcontain.EqualityQuery([]setcontain.Item{a, b, d})
	ids, err = idx.Eval(q)
	if err != nil {
		log.Fatal(err)
	}
	show(q, ids)

	// "Which records contain only items from {a, c}?" — the paper's §2
	// superset example; the answer is records 106 and 113 (ids 6, 13).
	q = setcontain.SupersetQuery([]setcontain.Item{a, c})
	ids, err = idx.Eval(q)
	if err != nil {
		log.Fatal(err)
	}
	show(q, ids)

	// Large answers can be consumed as a stream instead of a slice: here
	// the single-item subset of {a} — the most frequent item — iterated
	// lazily and abandoned after the first three ids.
	seq, err := idx.SubsetSeq([]setcontain.Item{a})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstreaming subset{%s}:", coll.Label(a))
	taken := 0
	for id := range seq {
		fmt.Printf(" %d", id)
		if taken++; taken == 3 {
			fmt.Printf(" ...")
			break
		}
	}
	fmt.Println()

	st := idx.CacheStats()
	fmt.Printf("\nindex: %s; page reads: %d (seq %d, near %d, random %d)\n",
		idx.Kind(), st.PageReads, st.Sequential, st.Near, st.Random)
}
