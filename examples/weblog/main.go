// Web-log session analysis — the paper's §2 running example: records are
// user sessions over the areas of a web portal, and containment queries
// answer questions like "which users limited their visit to the main and
// downloads sections?" (a superset query). The data mimics the msweb UCI
// log the paper evaluates on: a skewed distribution over a few hundred
// areas with short sessions.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"

	"repro/setcontain"
)

var areas = []string{
	"main", "downloads", "support", "search", "products", "developer",
	"news", "docs", "community", "jobs", "account", "store",
}

func main() {
	rng := rand.New(rand.NewSource(7))
	coll := setcontain.NewCollection(len(areas))
	if err := coll.SetLabels(areas); err != nil {
		log.Fatal(err)
	}

	// Session generator: area popularity is Zipfian (everyone hits
	// "main"; few reach "store"), sessions visit 1..6 distinct areas.
	cdf := make([]float64, len(areas))
	sum := 0.0
	for i := range cdf {
		sum += 1 / math.Pow(float64(i+1), 1.1)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	const sessions = 40000
	for i := 0; i < sessions; i++ {
		n := 1 + rng.Intn(6)
		seen := map[setcontain.Item]bool{}
		visit := make([]setcontain.Item, 0, n)
		for len(visit) < n {
			a := setcontain.Item(sort.SearchFloat64s(cdf, rng.Float64()))
			if !seen[a] {
				seen[a] = true
				visit = append(visit, a)
			}
		}
		if _, err := coll.Add(visit); err != nil {
			log.Fatal(err)
		}
	}

	idx, err := setcontain.New(coll)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d sessions over %d portal areas\n\n", coll.Len(), len(areas))

	name := func(items []setcontain.Item) []string {
		out := make([]string, len(items))
		for i, it := range items {
			out[i] = coll.Label(it)
		}
		return out
	}

	// The paper's example: "Which users limited their visit in the portal
	// to the main and downloads sections?" — superset query.
	q := []setcontain.Item{0, 1} // main, downloads
	onlyThose, err := idx.Superset(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sessions that visited ONLY %v: %d\n", name(q), len(onlyThose))

	// "Which sessions included both support and search?" — subset query.
	q = []setcontain.Item{2, 3}
	both, err := idx.Subset(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sessions that visited at least %v: %d\n", name(q), len(both))

	// "How many sessions were exactly {main, support, docs}?" — equality.
	q = []setcontain.Item{0, 2, 7}
	exact, err := idx.Equality(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sessions exactly equal to %v: %d\n", name(q), len(exact))

	// Funnel report: for each area, how many sessions never left it?
	// One equality query per area, executed as a batch across the
	// store's pooled readers.
	batch := make([]setcontain.Query, len(areas))
	for it := range batch {
		batch[it] = setcontain.EqualityQuery([]setcontain.Item{setcontain.Item(it)})
	}
	store := setcontain.NewStore(idx, 0)
	answers, err := store.ExecBatch(context.Background(), batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsingle-area sessions per area:")
	for it, ids := range answers {
		fmt.Printf("  %-10s %6d\n", coll.Label(setcontain.Item(it)), len(ids))
	}

	st := idx.CacheStats()
	fmt.Printf("\ntotal page reads: %d (seq %d, near %d, random %d)\n",
		st.PageReads, st.Sequential, st.Near, st.Random)
}
