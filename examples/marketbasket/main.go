// Market-basket analysis — the paper's §1 motivating workload: retail
// transaction logs with a skewed product distribution ("18 billion
// transactions, with the average supermarket having 45k different
// products"). We index 60 000 synthetic baskets over 3 000 products whose
// popularity follows a Zipf law, then answer co-purchase (subset) queries
// with both the OIF and the classic inverted file and compare their I/O.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"

	"repro/setcontain"
)

const (
	numBaskets  = 60000
	numProducts = 3000
	zipfTheta   = 0.9
)

// zipfSampler draws product ids with probability ∝ 1/(rank+1)^theta.
type zipfSampler struct {
	cdf []float64
}

func newZipf(n int, theta float64) *zipfSampler {
	cdf := make([]float64, n)
	sum := 0.0
	for i := range cdf {
		sum += 1 / math.Pow(float64(i+1), theta)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &zipfSampler{cdf: cdf}
}

func (z *zipfSampler) sample(rng *rand.Rand) setcontain.Item {
	return setcontain.Item(sort.SearchFloat64s(z.cdf, rng.Float64()))
}

func main() {
	rng := rand.New(rand.NewSource(2026))
	z := newZipf(numProducts, zipfTheta)

	coll := setcontain.NewCollection(numProducts)
	for i := 0; i < numBaskets; i++ {
		n := 2 + rng.Intn(12) // basket of 2..13 distinct products
		seen := map[setcontain.Item]bool{}
		basket := make([]setcontain.Item, 0, n)
		for len(basket) < n {
			p := z.sample(rng)
			if !seen[p] {
				seen[p] = true
				basket = append(basket, p)
			}
		}
		if _, err := coll.Add(basket); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("indexed %d baskets over %d products (Zipf %.1f popularity)\n\n",
		coll.Len(), coll.DomainSize(), zipfTheta)

	oif, err := setcontain.New(coll, setcontain.WithKind(setcontain.OIF))
	if err != nil {
		log.Fatal(err)
	}
	inv, err := setcontain.New(coll, setcontain.WithKind(setcontain.InvertedFile))
	if err != nil {
		log.Fatal(err)
	}

	// Co-purchase lookups: pick real baskets and ask which other baskets
	// contain the same product combination — a subset query. Popular
	// products appear in the queries often, exactly the skewed case the
	// OIF targets.
	queries := make([][]setcontain.Item, 0, 30)
	for len(queries) < 30 {
		basket, err := coll.Record(uint32(1 + rng.Intn(coll.Len())))
		if err != nil {
			log.Fatal(err)
		}
		if len(basket) < 3 {
			continue
		}
		qs := append([]setcontain.Item(nil), basket[:3]...)
		queries = append(queries, qs)
	}

	fmt.Println("co-purchase (subset) queries over 3-product combinations:")
	oif.ResetCacheStats()
	inv.ResetCacheStats()
	var totalAnswers int
	for _, qs := range queries {
		a, err := oif.Subset(qs)
		if err != nil {
			log.Fatal(err)
		}
		b, err := inv.Subset(qs)
		if err != nil {
			log.Fatal(err)
		}
		if len(a) != len(b) {
			log.Fatalf("indexes disagree: %d vs %d", len(a), len(b))
		}
		totalAnswers += len(a)
	}
	so, si := oif.CacheStats(), inv.CacheStats()
	fmt.Printf("  %d queries, %.1f matching baskets each on average\n",
		len(queries), float64(totalAnswers)/float64(len(queries)))
	fmt.Printf("  OIF page reads: %5d (seq %d, near %d, random %d)\n",
		so.PageReads, so.Sequential, so.Near, so.Random)
	fmt.Printf("  IF  page reads: %5d (seq %d, near %d, random %d)\n",
		si.PageReads, si.Sequential, si.Near, si.Random)
	if so.PageReads < si.PageReads {
		fmt.Printf("  => OIF read %.1fx fewer pages\n", float64(si.PageReads)/float64(so.PageReads))
	}

	// A merchandising question: does any basket consist solely of the
	// top-3 products? (superset query)
	top3 := []setcontain.Item{0, 1, 2}
	only, err := oif.Superset(top3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbaskets drawn only from the top-3 products: %d\n", len(only))

	// New baskets arrive continuously; the OIF buffers them in a memory
	// delta until the next batch merge (§4.4 of the paper).
	id, err := oif.Insert([]setcontain.Item{0, 1})
	if err != nil {
		log.Fatal(err)
	}
	found, err := oif.Subset([]setcontain.Item{0, 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inserted basket #%d is immediately queryable (%d baskets now contain {0,1})\n",
		id, len(found))
}
