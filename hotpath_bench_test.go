package repro

// CPU hot-path benchmarks. Unlike benchWorkload — which drops the cache
// to measure the paper's disk page accesses — these run with a buffer
// pool large enough to hold the whole index, so after a warm-up pass
// every page request is a hit and the numbers isolate pure CPU cost:
// vbyte decoding, B-tree cursor walks, and candidate merging. They are
// the before/after yardstick for the zero-allocation query path work
// (README "CPU performance"); allocs/op comes from -benchmem or
// b.ReportAllocs, and the decoded-cache hit rate is reported when the
// engine exposes one.

import (
	"fmt"
	"testing"

	"repro/internal/dataset"
	"repro/internal/workload"
	"repro/setcontain"
)

// hotPoolPages comfortably exceeds the ~0.5 MB index the default-scale
// synthetic dataset builds, so steady-state queries never touch the pager.
const hotPoolPages = 4096

func hotFixture(b *testing.B, kind workload.Kind, size int, opts ...setcontain.Option) (*setcontain.Index, []workload.Query) {
	b.Helper()
	cfg := benchCfg()
	d, err := dataset.GenerateSynthetic(cfg.SyntheticDefaults())
	if err != nil {
		b.Fatal(err)
	}
	all := append([]setcontain.Option{
		setcontain.WithKind(setcontain.OIF),
		setcontain.WithCachePages(hotPoolPages),
	}, opts...)
	idx, err := setcontain.New(setcontain.WrapDataset(d), all...)
	if err != nil {
		b.Fatal(err)
	}
	queries := workload.NewGenerator(d, 42).Queries(kind, size, 64)
	if len(queries) == 0 {
		b.Skip("no queries available at this scale")
	}
	return idx, queries
}

func runHotQuery(idx *setcontain.Index, dst []uint32, q workload.Query) ([]uint32, error) {
	switch q.Kind {
	case workload.Subset:
		return idx.AppendSubset(dst, q.Items)
	case workload.Equality:
		return idx.AppendEquality(dst, q.Items)
	default:
		return idx.AppendSuperset(dst, q.Items)
	}
}

func benchHotPath(b *testing.B, kind workload.Kind, size int, opts ...setcontain.Option) {
	idx, queries := hotFixture(b, kind, size, opts...)
	// Warm-up: one full pass loads every touched page, populates the
	// decoded cache, and grows the answer buffer to its high-water mark,
	// so the timed region measures steady state.
	var dst []uint32
	var err error
	for _, q := range queries {
		if dst, err = runHotQuery(idx, dst[:0], q); err != nil {
			b.Fatal(err)
		}
	}
	before := idx.CacheStats()
	dBefore := idx.DecodedCacheStats()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if dst, err = runHotQuery(idx, dst[:0], queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := idx.CacheStats()
	b.ReportMetric(float64(st.PageReads-before.PageReads)/float64(b.N), "pages/op")
	dNow := idx.DecodedCacheStats()
	if visits := (dNow.Hits - dBefore.Hits) + (dNow.Misses - dBefore.Misses); visits > 0 {
		b.ReportMetric(float64(dNow.Hits-dBefore.Hits)/float64(visits), "decoded-hit-rate")
	}
}

// BenchmarkSubset is the tier-1 hot-path benchmark for subset queries on
// the skewed synthetic workload at default scale.
func BenchmarkSubset(b *testing.B) {
	for _, size := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("qs%02d", size), func(b *testing.B) {
			benchHotPath(b, workload.Subset, size)
		})
	}
}

// BenchmarkEquality is the warm-cache equality companion.
func BenchmarkEquality(b *testing.B) {
	for _, size := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("qs%02d", size), func(b *testing.B) {
			benchHotPath(b, workload.Equality, size)
		})
	}
}

// BenchmarkSuperset is the tier-1 hot-path benchmark for superset queries
// on the skewed synthetic workload at default scale.
func BenchmarkSuperset(b *testing.B) {
	for _, size := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("qs%02d", size), func(b *testing.B) {
			benchHotPath(b, workload.Superset, size)
		})
	}
}
