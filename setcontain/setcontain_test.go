package setcontain

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func buildAll(t *testing.T, c *Collection) map[Kind]*Index {
	t.Helper()
	out := make(map[Kind]*Index)
	for _, k := range Kinds() {
		ix, err := Build(c, Options{Kind: k, PageSize: 512, BlockPostings: 8, Shards: 3})
		if err != nil {
			t.Fatalf("Build(%v): %v", k, err)
		}
		out[k] = ix
	}
	return out
}

func sampleCollection(t *testing.T) *Collection {
	t.Helper()
	c := NewCollection(40)
	rng := rand.New(rand.NewSource(71))
	for i := 0; i < 2000; i++ {
		k := 1 + rng.Intn(7)
		set := make([]Item, k)
		for j := range set {
			set[j] = Item(rng.Intn(40))
		}
		if _, err := c.Add(set); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestAllKindsAgree(t *testing.T) {
	c := sampleCollection(t)
	idxs := buildAll(t, c)
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(5)
		qs := make([]Item, k)
		for i := range qs {
			qs[i] = Item(rng.Intn(40))
		}
		type result struct {
			name string
			ids  []uint32
		}
		for _, pred := range []string{"subset", "equality", "superset"} {
			var results []result
			for kind, ix := range idxs {
				var ids []uint32
				var err error
				switch pred {
				case "subset":
					ids, err = ix.Subset(qs)
				case "equality":
					ids, err = ix.Equality(qs)
				default:
					ids, err = ix.Superset(qs)
				}
				if err != nil {
					t.Fatalf("%v %s: %v", kind, pred, err)
				}
				results = append(results, result{kind.String(), ids})
			}
			for i := 1; i < len(results); i++ {
				if len(results[i].ids) != len(results[0].ids) {
					t.Fatalf("%s(%v): %s got %d, %s got %d answers",
						pred, qs, results[0].name, len(results[0].ids),
						results[i].name, len(results[i].ids))
				}
				for j := range results[0].ids {
					if results[i].ids[j] != results[0].ids[j] {
						t.Fatalf("%s(%v): %s and %s diverge", pred, qs,
							results[0].name, results[i].name)
					}
				}
			}
		}
	}
}

func TestCollectionBasics(t *testing.T) {
	c := NewCollection(10)
	id, err := c.Add([]Item{5, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 || c.Len() != 1 || c.DomainSize() != 10 {
		t.Fatalf("basics wrong: id=%d len=%d domain=%d", id, c.Len(), c.DomainSize())
	}
	set, err := c.Record(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 || set[0] != 2 || set[1] != 5 {
		t.Fatalf("Record(1) = %v", set)
	}
	if _, err := c.Record(0); err == nil {
		t.Fatal("Record(0) succeeded")
	}
	if _, err := c.Record(2); err == nil {
		t.Fatal("Record(2) succeeded")
	}
	if err := c.SetLabels([]string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}); err != nil {
		t.Fatal(err)
	}
	if c.Label(2) != "c" {
		t.Fatalf("Label(2) = %q", c.Label(2))
	}
}

func TestCollectionSerialization(t *testing.T) {
	c := sampleCollection(t)
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCollection(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != c.Len() || back.DomainSize() != c.DomainSize() {
		t.Fatal("round trip changed shape")
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, Options{}); err == nil {
		t.Fatal("nil collection accepted")
	}
	c := NewCollection(4)
	c.Add([]Item{0})
	if _, err := Build(c, Options{Kind: Kind(42)}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestDefaultsAreOIF(t *testing.T) {
	c := sampleCollection(t)
	ix, err := Build(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Kind() != OIF {
		t.Fatalf("default kind = %v", ix.Kind())
	}
	if OIF.String() != "OIF" || InvertedFile.String() != "IF" || UnorderedBTree.String() != "UBT" {
		t.Fatal("Kind strings wrong")
	}
	if Kind(42).String() == "" {
		t.Fatal("unknown kind string empty")
	}
}

func TestCacheStats(t *testing.T) {
	c := sampleCollection(t)
	ix, err := Build(c, Options{PageSize: 512, BlockPostings: 8})
	if err != nil {
		t.Fatal(err)
	}
	ix.ResetCacheStats()
	if _, err := ix.Subset([]Item{1, 2}); err != nil {
		t.Fatal(err)
	}
	st := ix.CacheStats()
	if st.PageReads == 0 {
		t.Fatal("no page reads recorded")
	}
	if st.PageReads != st.Sequential+st.Near+st.Random {
		t.Fatalf("classes do not sum: %+v", st)
	}
	ix.ResetCacheStats()
	if got := ix.CacheStats().PageReads; got != 0 {
		t.Fatalf("reset left %d reads", got)
	}
}

func TestInsertAndMergeAcrossKinds(t *testing.T) {
	c := sampleCollection(t)
	for _, kind := range []Kind{OIF, InvertedFile, Sharded} {
		ix, err := Build(c, Options{Kind: kind, PageSize: 512, BlockPostings: 8})
		if err != nil {
			t.Fatal(err)
		}
		id, err := ix.Insert([]Item{1, 3, 9})
		if err != nil {
			t.Fatalf("%v Insert: %v", kind, err)
		}
		if id != uint32(c.Len()+1) {
			t.Fatalf("%v insert id = %d", kind, id)
		}
		if ix.PendingInserts() != 1 {
			t.Fatalf("%v pending = %d", kind, ix.PendingInserts())
		}
		got, err := ix.Equality([]Item{1, 3, 9})
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, g := range got {
			if g == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("%v: inserted record invisible before merge", kind)
		}
		if err := ix.MergeDelta(); err != nil {
			t.Fatalf("%v MergeDelta: %v", kind, err)
		}
		if ix.PendingInserts() != 0 {
			t.Fatalf("%v: delta not cleared", kind)
		}
		got, err = ix.Equality([]Item{1, 3, 9})
		if err != nil {
			t.Fatal(err)
		}
		found = false
		for _, g := range got {
			if g == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("%v: inserted record invisible after merge", kind)
		}
	}
	// The ablation kind refuses updates.
	ub, err := Build(c, Options{Kind: UnorderedBTree, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ub.Insert([]Item{1}); !errors.Is(err, ErrNoUpdates) {
		t.Fatalf("UBT Insert err = %v", err)
	}
	if err := ub.MergeDelta(); !errors.Is(err, ErrNoUpdates) {
		t.Fatalf("UBT MergeDelta err = %v", err)
	}
	if ub.PendingInserts() != 0 {
		t.Fatal("UBT pending != 0")
	}
}

func TestSaveLoadPublicAPI(t *testing.T) {
	c := sampleCollection(t)
	ix, err := Build(c, Options{PageSize: 512, BlockPostings: 8})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(&buf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Kind() != OIF {
		t.Fatalf("loaded kind = %v", loaded.Kind())
	}
	qs := []Item{1, 7}
	a, err := ix.Subset(qs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Subset(qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("answers diverged after reload: %d vs %d", len(a), len(b))
	}
	// The inverted file snapshots through the same container format.
	inv, err := Build(c, Options{Kind: InvertedFile, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := inv.Save(&buf); err != nil {
		t.Fatalf("IF Save err = %v", err)
	}
	invBack, err := Open(&buf)
	if err != nil {
		t.Fatalf("IF Open err = %v", err)
	}
	if invBack.Kind() != InvertedFile {
		t.Fatalf("IF reload kind = %v", invBack.Kind())
	}
	// Garbage input fails cleanly.
	if _, err := LoadIndex(bytes.NewReader([]byte("junk")), Options{}); err == nil {
		t.Fatal("junk snapshot accepted")
	}
}

func TestTagPrefixOption(t *testing.T) {
	c := sampleCollection(t)
	full, err := Build(c, Options{PageSize: 512, BlockPostings: 8})
	if err != nil {
		t.Fatal(err)
	}
	trunc, err := Build(c, Options{PageSize: 512, BlockPostings: 8, TagPrefix: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, qs := range [][]Item{{1, 2}, {0, 3, 9}, {5}} {
		a, err := full.Subset(qs)
		if err != nil {
			t.Fatal(err)
		}
		b, err := trunc.Subset(qs)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("TagPrefix changed Subset(%v): %d vs %d", qs, len(a), len(b))
		}
	}
}

func TestReadersAcrossKindsConcurrently(t *testing.T) {
	c := sampleCollection(t)
	for _, kind := range []Kind{OIF, InvertedFile, UnorderedBTree, Sharded} {
		ix, err := Build(c, Options{Kind: kind, PageSize: 512, BlockPostings: 8})
		if err != nil {
			t.Fatal(err)
		}
		want, err := ix.Subset([]Item{1, 2})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make(chan error, 4)
		for g := 0; g < 4; g++ {
			r, err := ix.NewReader(0)
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func(r *Reader) {
				defer wg.Done()
				for i := 0; i < 30; i++ {
					got, err := r.Subset([]Item{1, 2})
					if err != nil {
						errs <- err
						return
					}
					if len(got) != len(want) {
						errs <- fmt.Errorf("reader diverged: %d vs %d", len(got), len(want))
						return
					}
				}
			}(r)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatalf("%v: %v", kind, err)
		}
	}
}
