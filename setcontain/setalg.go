package setcontain

// Sorted-slice set algebra over answer id slices (ascending, unique).
// Each operation appends its result to dst and returns the extended
// slice; dst must not alias a or b. When the operand sizes are lopsided
// (ratio >= gallopRatio) the merge gallops: it walks the smaller side
// and locates each id in the larger by exponential-plus-binary search,
// bulk-copying skipped runs where the output needs them — O(small ·
// log large) instead of O(small + large). Balanced inputs use the plain
// linear merge, whose constant factor wins there.

// gallopRatio is the size ratio at which galloping beats the linear
// merge: below it, the binary-search constant factor loses to the
// sequential scan.
const gallopRatio = 16

// gallop returns the index of the first element of s >= v, by
// exponential probing followed by binary search — O(log i) for a match
// i elements in, which is what makes repeated searches with advancing
// lower bounds linear overall.
func gallop(s []uint32, v uint32) int {
	n := len(s)
	if n == 0 || s[0] >= v {
		return 0
	}
	// Invariant: s[lo] < v; hi is the first unprobed exponent.
	lo, hi := 0, 1
	for hi < n && s[hi] < v {
		lo = hi
		hi <<= 1
	}
	if hi > n {
		hi = n
	}
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < v {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// intersectInto appends a ∩ b to dst.
func intersectInto(dst, a, b []uint32) []uint32 {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return dst
	}
	if len(b) >= gallopRatio*len(a) {
		lo := 0
		for _, v := range a {
			lo += gallop(b[lo:], v)
			if lo >= len(b) {
				break
			}
			if b[lo] == v {
				dst = append(dst, v)
				lo++
			}
		}
		return dst
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// unionInto appends a ∪ b to dst.
func unionInto(dst, a, b []uint32) []uint32 {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return append(dst, b...)
	}
	if len(b) >= gallopRatio*len(a) {
		j := 0
		for _, v := range a {
			k := j + gallop(b[j:], v)
			dst = append(dst, b[j:k]...)
			j = k
			dst = append(dst, v)
			if j < len(b) && b[j] == v {
				j++
			}
		}
		return append(dst, b[j:]...)
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		case a[i] > b[j]:
			dst = append(dst, b[j])
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	dst = append(dst, a[i:]...)
	return append(dst, b[j:]...)
}

// differenceInto appends a \ b to dst.
func differenceInto(dst, a, b []uint32) []uint32 {
	if len(a) == 0 {
		return dst
	}
	if len(b) == 0 {
		return append(dst, a...)
	}
	if len(b) >= gallopRatio*len(a) {
		// Few candidates against a big exclusion set: gallop each.
		lo := 0
		for _, v := range a {
			lo += gallop(b[lo:], v)
			if lo >= len(b) {
				// Nothing left to exclude; v and the rest survive — but v
				// must be re-checked against nothing, so just keep it.
				dst = append(dst, v)
				continue
			}
			if b[lo] != v {
				dst = append(dst, v)
			}
		}
		return dst
	}
	if len(a) >= gallopRatio*len(b) {
		// Big kept set minus few exclusions: bulk-copy the runs between
		// consecutive excluded ids.
		i := 0
		for _, w := range b {
			k := i + gallop(a[i:], w)
			dst = append(dst, a[i:k]...)
			i = k
			if i < len(a) && a[i] == w {
				i++
			}
			if i >= len(a) {
				break
			}
		}
		return append(dst, a[i:]...)
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		case a[i] > b[j]:
			j++
		default:
			i++
			j++
		}
	}
	return append(dst, a[i:]...)
}
