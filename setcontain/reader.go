package setcontain

import (
	"iter"

	"repro/internal/core"
	"repro/internal/storage"
)

// engineReader is the uniform surface of the backends' isolated query
// handles (core.Reader, invfile.Reader, ubtree.Reader).
type engineReader interface {
	Subset(qs []Item) ([]uint32, error)
	Equality(qs []Item) ([]uint32, error)
	Superset(qs []Item) ([]uint32, error)
	Stats() storage.AccessStats
	ResetStats()
	Pool() *storage.BufferPool
}

// Reader is an isolated, concurrency-safe-by-design query handle created
// by Index.NewReader (or Engine.NewReader): it shares the parent's
// immutable pages but owns its cache, so one reader per goroutine
// queries in parallel. Readers see the inserts that existed when they
// were created and never the later ones. Store manages a pool of
// readers automatically.
type Reader struct {
	r engineReader
}

// Subset answers like Index.Subset.
func (r *Reader) Subset(qs []Item) ([]uint32, error) { return r.r.Subset(qs) }

// Equality answers like Index.Equality.
func (r *Reader) Equality(qs []Item) ([]uint32, error) { return r.r.Equality(qs) }

// Superset answers like Index.Superset.
func (r *Reader) Superset(qs []Item) ([]uint32, error) { return r.r.Superset(qs) }

// Eval answers a first-class Query.
func (r *Reader) Eval(q Query) ([]uint32, error) { return q.Eval(r) }

// AppendSubset appends the Subset answer to dst — the reader's
// zero-allocation form when the backend supports it (OIF), otherwise a
// plain call plus copy. See Index.AppendSubset for the append contract.
func (r *Reader) AppendSubset(dst []uint32, qs []Item) ([]uint32, error) {
	if ar, ok := r.r.(AppendQueryable); ok {
		return ar.AppendSubset(dst, qs)
	}
	ids, err := r.r.Subset(qs)
	if err != nil {
		return nil, err
	}
	return append(dst, ids...), nil
}

// AppendEquality appends the Equality answer to dst; see AppendSubset.
func (r *Reader) AppendEquality(dst []uint32, qs []Item) ([]uint32, error) {
	if ar, ok := r.r.(AppendQueryable); ok {
		return ar.AppendEquality(dst, qs)
	}
	ids, err := r.r.Equality(qs)
	if err != nil {
		return nil, err
	}
	return append(dst, ids...), nil
}

// AppendSuperset appends the Superset answer to dst; see AppendSubset.
func (r *Reader) AppendSuperset(dst []uint32, qs []Item) ([]uint32, error) {
	if ar, ok := r.r.(AppendQueryable); ok {
		return ar.AppendSuperset(dst, qs)
	}
	ids, err := r.r.Superset(qs)
	if err != nil {
		return nil, err
	}
	return append(dst, ids...), nil
}

// EvalAppend answers a first-class Query in append form.
func (r *Reader) EvalAppend(dst []uint32, q Query) ([]uint32, error) {
	return q.EvalAppend(dst, r)
}

// DecodedCacheStats reports this reader's private decoded-block cache
// statistics (all zero for backends without one).
func (r *Reader) DecodedCacheStats() DecodedCacheStats {
	switch ds := r.r.(type) {
	case decodedStatser:
		return ds.DecodedStats()
	case interface{ DecodedStats() core.DecodedCacheStats }:
		return decodedStatsOf(ds.DecodedStats())
	}
	return DecodedCacheStats{}
}

// SubsetSeq streams the Subset answer; see Index.SubsetSeq.
func (r *Reader) SubsetSeq(qs []Item) (iter.Seq[uint32], error) {
	return seqOf(r.r.Subset(qs))
}

// EqualitySeq streams the Equality answer; see Index.EqualitySeq.
func (r *Reader) EqualitySeq(qs []Item) (iter.Seq[uint32], error) {
	return seqOf(r.r.Equality(qs))
}

// SupersetSeq streams the Superset answer; see Index.SupersetSeq.
func (r *Reader) SupersetSeq(qs []Item) (iter.Seq[uint32], error) {
	return seqOf(r.r.Superset(qs))
}

// CacheStats returns this reader's private access statistics.
func (r *Reader) CacheStats() CacheStats { return cacheStatsOf(r.r.Stats()) }

// ResetCacheStats zeroes this reader's statistics.
func (r *Reader) ResetCacheStats() { r.r.ResetStats() }

// interruptPropagator is implemented by composite readers (the sharded
// reader) that must install the cancellation hook on several pools.
type interruptPropagator interface {
	setInterrupt(fn func() error)
}

// setInterrupt installs fn as the reader's cancellation check, consulted
// by its buffer pool between list-block reads. Store.Exec wires a
// context's Err here for the duration of a query. Composite readers
// propagate the hook to every shard pool, so fn must tolerate concurrent
// calls.
func (r *Reader) setInterrupt(fn func() error) {
	if p, ok := r.r.(interruptPropagator); ok {
		p.setInterrupt(fn)
		return
	}
	r.r.Pool().SetInterrupt(fn)
}
