package setcontain

import (
	"sort"
)

// Composite is a conjunctive combination of containment constraints —
// the "composite predicates" the paper lists as future work (§7). All
// clauses must hold simultaneously:
//
//	AllOf:  every listed item appears in the record  (subset semantics)
//	NoneOf: no listed item appears in the record
//	Within: every record item comes from this set    (superset semantics)
//
// Empty clauses are unconstrained; an entirely empty Composite matches
// every record.
type Composite struct {
	AllOf  []Item
	NoneOf []Item
	Within []Item
}

// Query evaluates a composite predicate with set algebra over the index's
// primitive predicates: the AllOf clause drives (or Within when AllOf is
// empty), the other clauses intersect/subtract. Works uniformly across
// index kinds.
func (ix *Index) Query(c Composite) ([]uint32, error) {
	var result []uint32
	var err error
	driven := false

	if len(c.AllOf) > 0 {
		result, err = ix.Subset(c.AllOf)
		if err != nil {
			return nil, err
		}
		driven = true
	}
	if len(c.Within) > 0 {
		within, err := ix.Superset(c.Within)
		if err != nil {
			return nil, err
		}
		if driven {
			result = intersectSorted(result, within)
		} else {
			result = within
			driven = true
		}
	}
	if !driven {
		// No positive clause: start from every record.
		result, err = ix.Subset(nil)
		if err != nil {
			return nil, err
		}
	}
	if len(result) == 0 || len(c.NoneOf) == 0 {
		return result, nil
	}

	// Subtract records containing any forbidden item. One single-item
	// subset query per distinct forbidden item keeps the I/O proportional
	// to the clause size.
	forbidden := append([]Item(nil), c.NoneOf...)
	sort.Slice(forbidden, func(i, j int) bool { return forbidden[i] < forbidden[j] })
	for i, it := range forbidden {
		if i > 0 && it == forbidden[i-1] {
			continue
		}
		holders, err := ix.Subset([]Item{it})
		if err != nil {
			return nil, err
		}
		result = subtractSorted(result, holders)
		if len(result) == 0 {
			break
		}
	}
	return result, nil
}

// intersectSorted returns a ∩ b for ascending id slices.
func intersectSorted(a, b []uint32) []uint32 {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// subtractSorted returns a \ b for ascending id slices.
func subtractSorted(a, b []uint32) []uint32 {
	out := a[:0]
	j := 0
	for _, v := range a {
		for j < len(b) && b[j] < v {
			j++
		}
		if j < len(b) && b[j] == v {
			continue
		}
		out = append(out, v)
	}
	return out
}

// JoinInto streams an index-nested-loops containment join: for every
// record of outer it reports the ids of idx-records related by pred, via
// fn(outerID, innerIDs). Subset means "inner contains the outer record";
// Superset means "inner is contained in the outer record"; Equality means
// exact duplicates across the two collections. Set-containment joins are
// the classic application of these indexes (the paper's §6 survey); this
// is the straightforward index-driven evaluation.
//
// fn returning a non-nil error aborts the join with that error.
func (ix *Index) JoinInto(outer *Collection, pred Predicate, fn func(outerID uint32, innerIDs []uint32) error) error {
	for id := uint32(1); int(id) <= outer.Len(); id++ {
		set, err := outer.Record(id)
		if err != nil {
			return err
		}
		inner, err := Query{Pred: pred, Items: set}.Eval(ix)
		if err != nil {
			return err
		}
		if len(inner) == 0 {
			continue
		}
		if err := fn(id, inner); err != nil {
			return err
		}
	}
	return nil
}
