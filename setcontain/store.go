package setcontain

import (
	"context"
	"iter"
	"runtime"
	"sync"
	"sync/atomic"
)

// Store is a concurrency-safe query facade over an Index. It owns a
// sync.Pool of per-goroutine Readers, so any number of goroutines can
// Exec queries in parallel without managing readers themselves; each
// call borrows an isolated reader (cache and statistics included) and
// returns it when done.
//
// Exec and ExecBatch honour context cancellation: the borrowed reader's
// buffer pool checks ctx.Err between list-block reads, so even a query
// scanning a long inverted list stops promptly, returning ctx.Err().
// Over a Sharded index each pooled reader carries one isolated reader
// per shard, and the cancellation hook reaches every shard's pool, so
// a cancelled query stops all shard fan-outs mid-stream.
//
// A Store serves the snapshot its readers were created from. After
// Insert or MergeDelta on the underlying Index, call Refresh to retire
// pooled readers so subsequent queries see the new records; do not
// update the Index concurrently with Store calls.
type Store struct {
	ix         *Index
	cachePages int
	gen        atomic.Uint64
	readers    sync.Pool // of *storeReader
}

// storeReader tags a pooled reader with the store generation it was
// created under, so Refresh can retire stale snapshots lazily.
type storeReader struct {
	r   *Reader
	gen uint64
}

// NewStore returns a store over ix whose pooled readers each carry a
// private cache of cachePages pages (0 selects the default 32 KB). The
// budget is per inner reader: over a Sharded index every pooled reader
// holds one such cache per shard, so its footprint is cachePages times
// the shard count — divide accordingly when comparing against (or
// migrating from) a single-engine store under a fixed memory budget.
func NewStore(ix *Index, cachePages int) *Store {
	return &Store{ix: ix, cachePages: cachePages}
}

// Refresh retires the pooled readers: queries issued after Refresh run
// on readers created from the index's current state. Call it after
// Insert or MergeDelta on the underlying Index.
func (s *Store) Refresh() { s.gen.Add(1) }

// acquire returns a reader of the current generation, creating one when
// the pool is empty or holds only stale snapshots.
func (s *Store) acquire() (*storeReader, error) {
	gen := s.gen.Load()
	for {
		e, _ := s.readers.Get().(*storeReader)
		if e == nil {
			break // pool empty: create fresh
		}
		if e.gen == gen {
			return e, nil
		}
		// Stale snapshot: drop it and keep looking.
	}
	r, err := s.ix.NewReader(s.cachePages)
	if err != nil {
		return nil, err
	}
	return &storeReader{r: r, gen: gen}, nil
}

func (s *Store) release(e *storeReader) {
	e.r.setInterrupt(nil)
	if e.gen == s.gen.Load() {
		s.readers.Put(e)
	}
}

// Exec answers q on a pooled reader. It is safe for any number of
// concurrent callers. Cancellation of ctx is checked before the query
// and between list-block reads during it; the returned error is then
// ctx.Err() (context.Canceled or context.DeadlineExceeded).
func (s *Store) Exec(ctx context.Context, q Query) ([]uint32, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e, err := s.acquire()
	if err != nil {
		return nil, err
	}
	defer s.release(e)
	if ctx.Done() != nil {
		e.r.setInterrupt(ctx.Err)
	}
	return q.Eval(e.r)
}

// ExecAppend answers q on a pooled reader, appending the answer to dst
// and returning the extended slice — the zero-allocation serving form:
// with an OIF engine, warm caches, and a dst with capacity to spare, a
// steady-state call performs no heap allocations at all. The dst slice
// is owned by the caller throughout; pooled readers never retain it.
// Cancellation behaves exactly like Exec.
func (s *Store) ExecAppend(ctx context.Context, dst []uint32, q Query) ([]uint32, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e, err := s.acquire()
	if err != nil {
		return nil, err
	}
	defer s.release(e)
	if ctx.Done() != nil {
		e.r.setInterrupt(ctx.Err)
	}
	return e.r.EvalAppend(dst, q)
}

// ExecSeq answers q as a lazy sequence; the query itself runs eagerly
// under ctx like Exec, iteration is then cancellation-free.
func (s *Store) ExecSeq(ctx context.Context, q Query) (iter.Seq[uint32], error) {
	return seqOf(s.Exec(ctx, q))
}

// ExecBatch answers the queries concurrently across pooled readers
// (bounded by GOMAXPROCS) and returns the answers in query order. The
// first error cancels the remaining queries and is returned; results
// are nil in that case. A cancelled ctx aborts the whole batch with
// ctx.Err().
func (s *Store) ExecBatch(ctx context.Context, qs []Query) ([][]uint32, error) {
	if len(qs) == 0 {
		return nil, ctx.Err()
	}
	out := make([][]uint32, len(qs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(qs) {
		workers = len(qs)
	}
	if workers <= 1 {
		for i, q := range qs {
			ids, err := s.Exec(ctx, q)
			if err != nil {
				return nil, err
			}
			out[i] = ids
		}
		return out, nil
	}

	bctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		next     atomic.Int64
		errOnce  sync.Once
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(qs) || bctx.Err() != nil {
					return
				}
				ids, err := s.Exec(bctx, qs[i])
				if err != nil {
					errOnce.Do(func() {
						firstErr = err
						cancel()
					})
					return
				}
				out[i] = ids
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		// Report the caller's cancellation as such, not as the internal
		// batch cancel it triggered in sibling workers.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, firstErr
	}
	return out, nil
}
