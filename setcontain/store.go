package setcontain

import (
	"context"
	"fmt"
	"iter"
	"runtime"
	"sync"
	"sync/atomic"
)

// Store is a concurrency-safe query facade over an Index. It owns a
// sync.Pool of per-goroutine Readers, so any number of goroutines can
// Exec queries in parallel without managing readers themselves; each
// call borrows an isolated reader (cache and statistics included) and
// returns it when done.
//
// Exec and ExecBatch honour context cancellation: the borrowed reader's
// buffer pool checks ctx.Err between list-block reads, so even a query
// scanning a long inverted list stops promptly, returning ctx.Err().
// Over a Sharded index each pooled reader carries one isolated reader
// per shard, and the cancellation hook reaches every shard's pool, so
// a cancelled query stops all shard fan-outs mid-stream.
//
// A Store serves the snapshot its readers were created from. After
// Insert, Delete, or MergeDelta on the underlying Index, call Refresh
// to retire pooled readers so subsequent queries see the change. To
// mutate the Index while queries are in flight, wrap the mutation in
// Update — it excludes the store's reader creation (which snapshots the
// Index's state) for the mutation's duration and refreshes afterwards;
// mutating the Index directly is only safe when no Store call can run
// concurrently.
type Store struct {
	ix         *Index
	cachePages int
	gen        atomic.Uint64
	readers    sync.Pool // of *storeReader

	// mu excludes Index mutations (Update's write side) from pooled
	// reader creation (acquire's read side): NewReader snapshots the
	// Index's mutable state, so it must not observe a half-applied
	// Insert/Delete/MergeDelta. Pooled readers already created are
	// isolated clones and need no lock.
	mu sync.RWMutex

	// Aggregate statistics over all pooled readers, accumulated at
	// release time (see storeReader's last* snapshots). Per-field
	// atomics keep the per-query release path free of a store-wide
	// lock; /stats-style readers tolerate the fields being read
	// without a single atomic cut.
	totals storeCounters

	// expr holds the expression planner's generation-cached support
	// profile and counters (see store_expr.go).
	expr exprState
}

// storeCounters is the lock-free accumulator behind Store.Stats.
type storeCounters struct {
	cacheHits, pageReads, seqReads, nearReads, randReads atomic.Int64

	decHits, decMisses, decAdmitted, decRejected, decEvicted atomic.Int64
	// Gauges: the most recently released reader's observation.
	decPostings, decCapacity atomic.Int64
}

// storeReader tags a pooled reader with the store generation it was
// created under, so Refresh can retire stale snapshots lazily. The
// last* fields snapshot the reader's cumulative statistics at its
// previous release, so each release folds only the delta of the query
// it just served into the store-wide totals.
type storeReader struct {
	r           *Reader
	gen         uint64
	lastCache   CacheStats
	lastDecoded DecodedCacheStats

	// eval is the reader's persistent expression evaluator: its free
	// list survives across the queries this pooled reader serves, so
	// steady-state expression evaluation allocates nothing.
	eval Evaluator

	// Cancellation state consulted by hook: batch spans a whole
	// Exec/ExecBatchAppend call, item narrows to the query currently
	// executing. hook is created once per storeReader and reused, so
	// arming cancellation on the hot path allocates nothing.
	batch context.Context
	item  context.Context
	hook  func() error
}

// arm installs the reader's reusable interrupt hook scoped to batch
// (and initially item = batch); ExecBatchAppend narrows item per query.
// disarm clears the hook and drops the context references.
func (e *storeReader) arm(batch context.Context) {
	if e.hook == nil {
		e.hook = func() error {
			if err := e.batch.Err(); err != nil {
				return err
			}
			return e.item.Err()
		}
	}
	e.batch, e.item = batch, batch
	e.r.setInterrupt(e.hook)
}

func (e *storeReader) disarm() {
	e.r.setInterrupt(nil)
	e.batch, e.item = nil, nil
}

// NewStore returns a store over ix whose pooled readers each carry a
// private cache of cachePages pages (0 selects the default 32 KB). The
// budget is per inner reader: over a Sharded index every pooled reader
// holds one such cache per shard, so its footprint is cachePages times
// the shard count — divide accordingly when comparing against (or
// migrating from) a single-engine store under a fixed memory budget.
func NewStore(ix *Index, cachePages int) *Store {
	return &Store{ix: ix, cachePages: cachePages}
}

// Refresh retires the pooled readers: queries issued after Refresh run
// on readers created from the index's current state. Call it after
// Insert, Delete, or MergeDelta on the underlying Index.
func (s *Store) Refresh() { s.gen.Add(1) }

// Update runs fn — a mutation of the underlying Index such as Insert,
// Delete, or MergeDelta — while no pooled reader is being created, then
// refreshes the store so subsequent queries observe the change. This is
// the safe way to mutate a served index: in-flight queries keep running
// on their isolated readers, new queries wait only for the mutation
// itself. The serve package's /admin endpoints mutate through it.
func (s *Store) Update(fn func() error) error {
	s.mu.Lock()
	err := fn()
	s.mu.Unlock()
	s.Refresh()
	return err
}

// Mutator is the batched mutation surface the serving layer writes
// through, implemented by both Store (plain, in-memory only) and
// Durable (write-ahead logged): the handlers stay identical whether the
// deployment wants durability or not, and the ack-after-durable rule
// lives in exactly one place (Durable) instead of being sprinkled
// through HTTP code.
type Mutator interface {
	// InsertSets inserts the sets in order and returns the assigned ids.
	// On a mid-batch failure the earlier inserts stick and their ids are
	// returned alongside the error, which names the failing set.
	InsertSets(sets [][]Item) ([]uint32, error)
	// DeleteIDs tombstones the ids in order; a failure names the id.
	DeleteIDs(ids []uint32) error
	// MergeDelta folds pending inserts and tombstones into the disk
	// structures.
	MergeDelta() error
}

// InsertSets implements Mutator over the plain store: inserts apply to
// the index under Update and are acknowledged immediately — they live
// only in memory and die with the process.
func (s *Store) InsertSets(sets [][]Item) ([]uint32, error) {
	ids := make([]uint32, 0, len(sets))
	err := s.Update(func() error {
		for i, set := range sets {
			id, err := s.ix.Insert(set)
			if err != nil {
				return fmt.Errorf("setcontain: inserting set %d (after %d inserted): %w", i, len(ids), err)
			}
			ids = append(ids, id)
		}
		return nil
	})
	return ids, err
}

// DeleteIDs implements Mutator over the plain store.
func (s *Store) DeleteIDs(ids []uint32) error {
	return s.Update(func() error {
		for i, id := range ids {
			if err := s.ix.Delete(id); err != nil {
				return fmt.Errorf("setcontain: deleting id %d (after %d deleted): %w", id, i, err)
			}
		}
		return nil
	})
}

// MergeDelta implements Mutator over the plain store.
func (s *Store) MergeDelta() error {
	return s.Update(s.ix.MergeDelta)
}

// acquire returns a reader of the current generation, creating one when
// the pool is empty or holds only stale snapshots.
func (s *Store) acquire() (*storeReader, error) {
	gen := s.gen.Load()
	for {
		e, _ := s.readers.Get().(*storeReader)
		if e == nil {
			break // pool empty: create fresh
		}
		if e.gen == gen {
			return e, nil
		}
		// Stale snapshot: drop it and keep looking.
	}
	s.mu.RLock()
	r, err := s.ix.NewReader(s.cachePages)
	s.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	return &storeReader{r: r, gen: gen}, nil
}

func (s *Store) release(e *storeReader) {
	e.disarm()
	s.accumulate(e)
	if e.gen == s.gen.Load() {
		s.readers.Put(e)
	}
}

// accumulate folds the reader's statistics delta since its previous
// release into the store-wide totals. Counters are summed as deltas;
// the decoded cache's Postings/Capacity gauges are tracked as the
// most recent observation (readers of one store share a configuration,
// so any reader's gauge is representative).
func (s *Store) accumulate(e *storeReader) {
	cache := e.r.CacheStats()
	decoded := e.r.DecodedCacheStats()
	t := &s.totals
	t.cacheHits.Add(cache.Hits - e.lastCache.Hits)
	t.pageReads.Add(cache.PageReads - e.lastCache.PageReads)
	t.seqReads.Add(cache.Sequential - e.lastCache.Sequential)
	t.nearReads.Add(cache.Near - e.lastCache.Near)
	t.randReads.Add(cache.Random - e.lastCache.Random)
	t.decHits.Add(decoded.Hits - e.lastDecoded.Hits)
	t.decMisses.Add(decoded.Misses - e.lastDecoded.Misses)
	t.decAdmitted.Add(decoded.Admitted - e.lastDecoded.Admitted)
	t.decRejected.Add(decoded.Rejected - e.lastDecoded.Rejected)
	t.decEvicted.Add(decoded.Evicted - e.lastDecoded.Evicted)
	t.decPostings.Store(int64(decoded.Postings))
	t.decCapacity.Store(int64(decoded.Capacity))
	e.lastCache = cache
	e.lastDecoded = decoded
}

// StoreStats aggregates the I/O and decoded-cache statistics of every
// reader a Store has pooled, the serving-side counterpart of
// Index.CacheStats (which reports the engine's own single-stream pool).
type StoreStats struct {
	// Cache is the summed page-cache behaviour of the pooled readers.
	Cache CacheStats
	// Decoded is the summed decoded-block cache behaviour; its
	// Postings/Capacity gauges reflect the most recently released
	// reader rather than a sum.
	Decoded DecodedCacheStats
}

// Stats returns statistics aggregated across all pooled readers. Totals
// advance when a query's reader is released, so in-flight queries
// contribute after they finish. Each field is read atomically; the
// snapshot as a whole is not one atomic cut.
func (s *Store) Stats() StoreStats {
	t := &s.totals
	return StoreStats{
		Cache: CacheStats{
			Hits:       t.cacheHits.Load(),
			PageReads:  t.pageReads.Load(),
			Sequential: t.seqReads.Load(),
			Near:       t.nearReads.Load(),
			Random:     t.randReads.Load(),
		},
		Decoded: DecodedCacheStats{
			Hits:     t.decHits.Load(),
			Misses:   t.decMisses.Load(),
			Admitted: t.decAdmitted.Load(),
			Rejected: t.decRejected.Load(),
			Evicted:  t.decEvicted.Load(),
			Postings: int(t.decPostings.Load()),
			Capacity: int(t.decCapacity.Load()),
		},
	}
}

// Exec answers q on a pooled reader. It is safe for any number of
// concurrent callers. Cancellation of ctx is checked before the query
// and between list-block reads during it; the returned error is then
// ctx.Err() (context.Canceled or context.DeadlineExceeded).
func (s *Store) Exec(ctx context.Context, q Query) ([]uint32, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e, err := s.acquire()
	if err != nil {
		return nil, err
	}
	defer s.release(e)
	if ctx.Done() != nil {
		e.arm(ctx)
	}
	return q.Eval(e.r)
}

// ExecAppend answers q on a pooled reader, appending the answer to dst
// and returning the extended slice — the zero-allocation serving form:
// with an OIF engine, warm caches, and a dst with capacity to spare, a
// steady-state call performs no heap allocations at all. The dst slice
// is owned by the caller throughout; pooled readers never retain it.
// Cancellation behaves exactly like Exec.
func (s *Store) ExecAppend(ctx context.Context, dst []uint32, q Query) ([]uint32, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e, err := s.acquire()
	if err != nil {
		return nil, err
	}
	defer s.release(e)
	if ctx.Done() != nil {
		e.arm(ctx)
	}
	return e.r.EvalAppend(dst, q)
}

// ExecSeq answers q as a lazy sequence; the query itself runs eagerly
// under ctx like Exec, iteration is then cancellation-free.
func (s *Store) ExecSeq(ctx context.Context, q Query) (iter.Seq[uint32], error) {
	return seqOf(s.Exec(ctx, q))
}

// ExecBatch answers the queries concurrently across pooled readers
// (bounded by GOMAXPROCS) and returns the answers in query order. The
// first error cancels the remaining queries and is returned; results
// are nil in that case. A cancelled ctx aborts the whole batch with
// ctx.Err().
func (s *Store) ExecBatch(ctx context.Context, qs []Query) ([][]uint32, error) {
	if len(qs) == 0 {
		return nil, ctx.Err()
	}
	out := make([][]uint32, len(qs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(qs) {
		workers = len(qs)
	}
	if workers <= 1 {
		for i, q := range qs {
			ids, err := s.Exec(ctx, q)
			if err != nil {
				return nil, err
			}
			out[i] = ids
		}
		return out, nil
	}

	bctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		next     atomic.Int64
		errOnce  sync.Once
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(qs) || bctx.Err() != nil {
					return
				}
				ids, err := s.Exec(bctx, qs[i])
				if err != nil {
					errOnce.Do(func() {
						firstErr = err
						cancel()
					})
					return
				}
				out[i] = ids
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		// Report the caller's cancellation as such, not as the internal
		// batch cancel it triggered in sibling workers.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, firstErr
	}
	return out, nil
}

// BatchItem is one query of an ExecBatchAppend call: the query, its
// caller-owned append target, and (after the call) its answer or error.
type BatchItem struct {
	// Ctx optionally scopes this item alone: a cancelled or expired
	// per-item context fails the item with its error without disturbing
	// the rest of the batch. Nil means the batch context governs.
	Ctx context.Context
	// Query is the containment query to answer.
	Query Query
	// Dst is the append target; the answer is appended to it, and the
	// extended slice is returned in Out. The caller owns Dst throughout.
	Dst []uint32
	// Out receives the extended Dst slice on success, nil on error.
	Out []uint32
	// Err receives this item's error: nil, the per-item context's
	// error, or the engine's query error.
	Err error
}

// ExecBatchAppend answers the items sequentially on a single pooled
// reader — the arena-friendly fan-in entry point the serve package's
// micro-batcher dispatches through. Where ExecBatch spreads a batch
// across readers for parallelism, ExecBatchAppend deliberately shares
// one: the reader is acquired once, every query reuses its scratch
// arenas and warm page/decoded caches (hot lists decode once per batch,
// not once per query), and answers append into the caller-owned Dst
// slices, so a steady-state batch over a warm OIF store performs no
// heap allocations at all.
//
// Per-item results land in items[i].Out / items[i].Err; a failed item
// does not disturb its batchmates. The returned count is how many items
// were processed: it is len(items) unless the batch context ctx is
// cancelled mid-batch, in which case processing stops, the remaining
// items are left untouched, and ctx's error is returned. A non-nil
// item Ctx additionally scopes that item alone — its deadline reaches
// the reader's interrupt hook, so even an item mid-way through a long
// list scan stops promptly with items[i].Err = item ctx's error.
func (s *Store) ExecBatchAppend(ctx context.Context, items []BatchItem) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if len(items) == 0 {
		return 0, nil
	}
	e, err := s.acquire()
	if err != nil {
		return 0, err
	}
	defer s.release(e)
	// The reader's single reusable interrupt hook serves the whole
	// batch: it consults the batch context plus whichever item is
	// currently executing, so cancellation support costs two pointer
	// reads per page access and no per-item closures.
	armed := false
	for i := range items {
		if err := ctx.Err(); err != nil {
			return i, err
		}
		it := &items[i]
		ictx := it.Ctx
		if ictx == nil {
			ictx = ctx
		}
		if err := ictx.Err(); err != nil {
			it.Out, it.Err = nil, err
			continue
		}
		if !armed && (ictx.Done() != nil || ctx.Done() != nil) {
			armed = true
			e.arm(ctx)
		}
		if armed {
			e.item = ictx
		}
		it.Out, it.Err = e.r.EvalAppend(it.Dst, it.Query)
	}
	return len(items), nil
}
