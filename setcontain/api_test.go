package setcontain

import (
	"bytes"
	"errors"
	"slices"
	"strings"
	"testing"
)

func TestParseKind(t *testing.T) {
	cases := []struct {
		in   string
		want Kind
		ok   bool
	}{
		{"oif", OIF, true},
		{"OIF", OIF, true},
		{" if ", InvertedFile, true},
		{"invfile", InvertedFile, true},
		{"ubt", UnorderedBTree, true},
		{"UBTree", UnorderedBTree, true},
		{"btree", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, err := ParseKind(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseKind(%q) succeeded, want error", c.in)
		}
	}
	// Round-trip every registered kind through its String form.
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", k.String(), got, err, k)
		}
	}
}

func TestParsePredicate(t *testing.T) {
	for _, p := range []Predicate{PredicateSubset, PredicateEquality, PredicateSuperset} {
		got, err := ParsePredicate(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePredicate(%q) = %v, %v; want %v", p.String(), got, err, p)
		}
	}
	if _, err := ParsePredicate("contains"); err == nil {
		t.Error("ParsePredicate(contains) succeeded, want error")
	}
}

func TestQueryString(t *testing.T) {
	q := Query{Pred: PredicateSubset, Items: []Item{3, 17, 29}}
	if got, want := q.String(), "subset{3 17 29}"; got != want {
		t.Errorf("Query.String() = %q, want %q", got, want)
	}
	if got, want := EqualityQuery(nil).String(), "equality{}"; got != want {
		t.Errorf("Query.String() = %q, want %q", got, want)
	}
}

func TestFunctionalOptions(t *testing.T) {
	o := NewOptions(WithKind(UnorderedBTree), WithPageSize(1024),
		WithBlockPostings(16), WithCachePages(12), WithTagPrefix(2))
	want := Options{Kind: UnorderedBTree, PageSize: 1024, BlockPostings: 16,
		CachePages: 12, TagPrefix: 2}
	if o != want {
		t.Errorf("NewOptions = %+v, want %+v", o, want)
	}
}

func TestQueryEvalMatchesMethods(t *testing.T) {
	c := sampleCollection(t)
	ix, err := New(c, WithPageSize(512), WithBlockPostings(8))
	if err != nil {
		t.Fatal(err)
	}
	items := []Item{1, 5}
	direct, err := ix.Subset(items)
	if err != nil {
		t.Fatal(err)
	}
	viaQuery, err := Query{Pred: PredicateSubset, Items: items}.Eval(ix)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(direct, viaQuery) {
		t.Errorf("Eval disagrees with Subset: %v vs %v", viaQuery, direct)
	}
	if _, err := (Query{Pred: Predicate(9)}).Eval(ix); !errors.Is(err, ErrUnknownPredicate) {
		t.Errorf("bad predicate: got %v, want ErrUnknownPredicate", err)
	}
}

func TestSeqVariantsMatchSlices(t *testing.T) {
	c := sampleCollection(t)
	for kind, ix := range buildAll(t, c) {
		items := []Item{0, 3}
		want, err := ix.Subset(items)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		seq, err := ix.SubsetSeq(items)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if got := slices.Collect(seq); !slices.Equal(got, want) {
			t.Errorf("%v: SubsetSeq = %v, want %v", kind, got, want)
		}
		// Early abandonment is allowed and re-iteration yields the same
		// prefix (the sequence is replayable).
		var first Item
		for id := range seq {
			first = id
			break
		}
		if len(want) > 0 && first != want[0] {
			t.Errorf("%v: first streamed id %d, want %d", kind, first, want[0])
		}
	}
}

func TestEngineCapabilities(t *testing.T) {
	c := sampleCollection(t)
	idxs := buildAll(t, c)

	var buf bytes.Buffer
	if err := idxs[UnorderedBTree].Save(&buf); !errors.Is(err, ErrNoSnapshots) {
		t.Errorf("UBT Save: got %v, want ErrNoSnapshots", err)
	} else if !strings.Contains(err.Error(), "UBT") {
		t.Errorf("UBT Save error %q does not name the engine", err)
	}
	for _, kind := range []Kind{OIF, InvertedFile, Sharded} {
		buf.Reset()
		if err := idxs[kind].Save(&buf); err != nil {
			t.Errorf("%v Save: %v", kind, err)
		}
	}
	if _, err := idxs[UnorderedBTree].Insert([]Item{1}); !errors.Is(err, ErrNoUpdates) {
		t.Errorf("UBT Insert: got %v, want ErrNoUpdates", err)
	} else if !strings.Contains(err.Error(), "UBT") {
		t.Errorf("UBT Insert error %q does not name the engine", err)
	}
	if err := idxs[UnorderedBTree].Delete(1); !errors.Is(err, ErrNoUpdates) {
		t.Errorf("UBT Delete: got %v, want ErrNoUpdates", err)
	}
	if err := idxs[UnorderedBTree].MergeDelta(); !errors.Is(err, ErrNoUpdates) {
		t.Errorf("UBT MergeDelta: got %v, want ErrNoUpdates", err)
	}

	for kind, ix := range idxs {
		eng := ix.Engine()
		if eng.Kind() != kind {
			t.Errorf("engine kind %v, want %v", eng.Kind(), kind)
		}
		if sp := eng.Space(); sp.Pages <= 0 || sp.Bytes != sp.Pages*512 {
			t.Errorf("%v: implausible space %+v", kind, sp)
		}
		if eng.NumRecords() != c.Len() {
			t.Errorf("%v: NumRecords %d, want %d", kind, eng.NumRecords(), c.Len())
		}
		// Wrapping the unwrapped backend reproduces an equivalent engine.
		again, err := EngineOf(eng.Unwrap())
		if err != nil {
			t.Fatalf("%v: EngineOf(Unwrap): %v", kind, err)
		}
		if again.Kind() != kind {
			t.Errorf("%v: rewrapped kind %v", kind, again.Kind())
		}
	}

	if _, err := EngineOf(42); err == nil {
		t.Error("EngineOf(42) succeeded, want error")
	}
	if _, err := Build(NewCollection(4), Options{Kind: Kind(99)}); err == nil {
		t.Error("Build with unknown kind succeeded, want error")
	}
}
