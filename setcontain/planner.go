package setcontain

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/stats"
)

// The expression planner turns an Expr into a cost-ordered evaluation
// plan. The same skew statistics the paper exploits for index layout
// drive it at query time: a SupportProfile (per-item supports plus the
// Zipf exponent stats.ProfileOfSupports fits to them) costs every
// containment leaf by an estimated answer size, AND nodes evaluate
// their children rarest-first so the intermediate intersection
// collapses as early as possible, and an intermediate that reaches
// empty short-circuits the remaining children entirely — the planner's
// measurable win on skewed workloads, where a rare leaf ANDed with hot
// leaves usually empties the result before the hot (expensive) leaves
// run. Leaves evaluate through the zero-allocation EvalAppend path and
// answers combine with the galloping sorted-slice set algebra.

// SupportProfile is the planner's view of an index's statistics: the
// per-item support table and the distribution summary derived from it.
// Build one with SupportsOf (or Index.Supports) and reuse it across
// plans — profiling sorts the support table once; planning a single
// expression is then linear in its size. The profile describes the
// merged structures only (pending delta inserts and tombstones are not
// reflected), so it is an estimate for ordering work, never an answer.
type SupportProfile struct {
	// PerItem[i] is the support of item i (records containing it).
	PerItem []int64
	// NumRecords is the universe size leaf costs are capped at.
	NumRecords int64
	// Theta is the Zipf exponent stats.ProfileOfSupports fitted to the
	// support table — the skew signal, surfaced for plan introspection.
	Theta float64
}

// SupportsOf profiles an engine's current support table for planning.
func SupportsOf(eng Engine) *SupportProfile {
	sup := eng.ItemSupports()
	return &SupportProfile{
		PerItem:    sup,
		NumRecords: int64(eng.NumRecords()),
		Theta:      stats.ProfileOfSupports(sup, 0).Theta,
	}
}

// Support returns the item's support; items outside the profiled
// domain have support 0.
func (sp *SupportProfile) Support(it Item) int64 {
	if int(it) >= len(sp.PerItem) {
		return 0
	}
	return sp.PerItem[it]
}

// leafCost estimates a containment leaf's answer size. Subset and
// equality answers are bounded by the rarest queried item's support
// (every answer record contains all of them); the empty subset is the
// universe, the empty equality matches only empty-set records. A
// superset answer is bounded by the summed supports (each answer
// record's items all lie in the query), capped at the universe.
func (sp *SupportProfile) leafCost(q Query) int64 {
	switch q.Pred {
	case PredicateSubset, PredicateEquality:
		if len(q.Items) == 0 {
			if q.Pred == PredicateEquality {
				return 0
			}
			return sp.NumRecords
		}
		min := sp.Support(q.Items[0])
		for _, it := range q.Items[1:] {
			if s := sp.Support(it); s < min {
				min = s
			}
		}
		return min
	default: // superset
		var sum int64
		for _, it := range q.Items {
			sum += sp.Support(it)
			if sum >= sp.NumRecords {
				return sp.NumRecords
			}
		}
		return sum
	}
}

// ExprPlan is a planned expression: the cost-annotated tree with every
// AND node's children reordered rarest-first. Plans are immutable and
// safe for concurrent evaluation against different targets.
type ExprPlan struct {
	// Root is the plan tree, mirroring the expression's shape up to
	// AND-child order.
	Root *PlanNode
	// NumRecords is the universe size the costs were estimated against.
	NumRecords int64
	// Theta is the support profile's fitted Zipf exponent.
	Theta float64
}

// PlanNode is one node of a plan: the expression node plus its
// estimated answer size.
type PlanNode struct {
	// Op, Leaf, and Kids mirror Expr; an AND node's Kids are reordered —
	// positive children cost-ascending, NOT children after them.
	Op   ExprOp
	Leaf Query
	Kids []*PlanNode
	// Cost is the node's estimated answer size — an ordering heuristic
	// derived from the support profile, not a guaranteed bound.
	Cost int64
	// Leaves is the number of containment leaves in the subtree — what
	// a short-circuit past this node saves.
	Leaves int
}

// PlanExpr plans the expression against a support profile: costs every
// node, reorders AND children rarest-first (NOT children last, as set
// differences off the accumulated intersection), and returns the
// reusable plan. An invalid predicate in any leaf returns
// ErrUnknownPredicate.
func PlanExpr(e *Expr, sup *SupportProfile) (*ExprPlan, error) {
	if sup == nil {
		return nil, errors.New("setcontain: PlanExpr needs a support profile")
	}
	if err := e.validate(); err != nil {
		return nil, err
	}
	return &ExprPlan{Root: planNode(e, sup), NumRecords: sup.NumRecords, Theta: sup.Theta}, nil
}

func planNode(e *Expr, sup *SupportProfile) *PlanNode {
	n := &PlanNode{Op: e.Op, Leaf: e.Leaf}
	switch e.Op {
	case OpLeaf:
		n.Cost = sup.leafCost(e.Leaf)
		n.Leaves = 1
	case OpNot:
		k := planNode(e.Kids[0], sup)
		n.Kids = []*PlanNode{k}
		n.Leaves = k.Leaves
		if n.Cost = sup.NumRecords - k.Cost; n.Cost < 0 {
			n.Cost = 0
		}
	case OpAnd:
		n.Kids = planKids(e, sup, &n.Leaves)
		// Positive children cost-ascending first — the cheapest
		// (rarest) intersection runs before the expensive ones and an
		// empty intermediate skips the rest — then NOT children, whose
		// subtractions only ever shrink the accumulator and are cheapest
		// once it is small. NOTs keep their written order.
		sort.SliceStable(n.Kids, func(i, j int) bool {
			ni, nj := n.Kids[i].Op == OpNot, n.Kids[j].Op == OpNot
			if ni || nj {
				return nj && !ni
			}
			return n.Kids[i].Cost < n.Kids[j].Cost
		})
		n.Cost = sup.NumRecords
		for _, k := range n.Kids {
			if k.Op != OpNot && k.Cost < n.Cost {
				n.Cost = k.Cost
			}
		}
	case OpOr:
		// Union is commutative, so OR children evaluate cheapest-first
		// too. A full union still materializes every child, but the
		// limit-driven cursor path profits: the cheap legs' cursors sit
		// at the front of the k-way merge, and an early exit abandons
		// the expensive legs after barely reading them.
		n.Kids = planKids(e, sup, &n.Leaves)
		sort.SliceStable(n.Kids, func(i, j int) bool {
			return n.Kids[i].Cost < n.Kids[j].Cost
		})
		for _, k := range n.Kids {
			n.Cost += k.Cost
			if n.Cost >= sup.NumRecords {
				n.Cost = sup.NumRecords
				break
			}
		}
	}
	return n
}

func planKids(e *Expr, sup *SupportProfile, leaves *int) []*PlanNode {
	kids := make([]*PlanNode, len(e.Kids))
	for i, k := range e.Kids {
		kids[i] = planNode(k, sup)
		*leaves += kids[i].Leaves
	}
	return kids
}

// String renders the plan as an indented tree with per-node answer-size
// estimates — what oifquery's explain command and test failures print:
//
//	and est=3
//	  subset{977} est=3
//	  subset{1 2} est=4100
//	  not est=5900
//	    subset{3} est=4100
func (p *ExprPlan) String() string {
	var b strings.Builder
	p.Root.write(&b, 0)
	return strings.TrimSuffix(b.String(), "\n")
}

func (n *PlanNode) write(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	if n.Op == OpLeaf {
		fmt.Fprintf(b, "%s est=%d\n", n.Leaf, n.Cost)
		return
	}
	fmt.Fprintf(b, "%s est=%d\n", n.Op, n.Cost)
	for _, k := range n.Kids {
		k.write(b, depth+1)
	}
}

// ExprEvalStats reports what one planned evaluation did: how many
// containment leaves actually ran against the index, how many of those
// ran through a streaming path (candidate pushdown or a lazy cursor)
// instead of full materialization, and how many leaves the
// empty-intermediate short-circuit skipped entirely.
type ExprEvalStats struct {
	EvaluatedLeaves int
	StreamedLeaves  int
	SkippedLeaves   int
}

// Eval answers the planned expression against t, returning ascending
// unique record ids — byte-identical to the naive Expr.Eval reference,
// just computed in cost order with short-circuiting and streaming.
// Hot loops should reuse an Evaluator instead; this convenience form
// discards the free list after one call.
func (p *ExprPlan) Eval(t Queryable) ([]uint32, ExprEvalStats, error) {
	var evr Evaluator
	return evr.Eval(p, t)
}

// EvalAppend answers the planned expression against t, appending the
// answer to dst. Intermediate results recycle through an internal free
// list; with an AppendQueryable target the leaves themselves allocate
// nothing, so steady-state cost is the set algebra plus one final copy
// into dst (skipped when dst has no backing array to preserve). Reuse
// an Evaluator to keep the free list warm across calls.
func (p *ExprPlan) EvalAppend(dst []uint32, t Queryable) ([]uint32, ExprEvalStats, error) {
	var evr Evaluator
	return evr.EvalAppend(dst, p, t)
}

// EvalLimitAppend answers the first `limit` ids of the planned
// expression, appending to dst; see Evaluator.EvalLimitAppend.
func (p *ExprPlan) EvalLimitAppend(dst []uint32, t Queryable, limit int) ([]uint32, ExprEvalStats, error) {
	var evr Evaluator
	return evr.EvalLimitAppend(dst, p, t, limit)
}

// exprEval is one planned evaluation: the target and its discovered
// streaming capabilities, the lazily computed universe (the subset{}
// answer — every live record id), the owning Evaluator whose free list
// recycles intermediate buffers, the batch's subexpression cache when
// evaluating inside one, and the leaf accounting.
type exprEval struct {
	t            Queryable
	owner        *Evaluator
	within       subsetWithiner // candidate pushdown, nil when unavailable
	cursors      subsetCursorer // lazy leaf cursors, nil when unavailable
	cse          *cseState      // batch subexpression cache, usually nil
	universe     []uint32
	haveUniverse bool
	stats        ExprEvalStats
}

// take pops a recycled buffer from the owning Evaluator's free list
// (or nil, growing on first use).
func (ev *exprEval) take() []uint32 {
	free := ev.owner.free
	if n := len(free); n > 0 {
		b := free[n-1][:0]
		ev.owner.free = free[:n-1]
		return b
	}
	return nil
}

// put recycles a buffer the evaluator owns; un-owned slices — the
// shared universe, cached CSE results — are never recycled.
func (ev *exprEval) put(b []uint32, owned bool) {
	if owned && cap(b) > 0 {
		ev.owner.free = append(ev.owner.free, b)
	}
}

func (ev *exprEval) getUniverse() ([]uint32, error) {
	if !ev.haveUniverse {
		ids, err := SubsetQuery(nil).EvalAppend(nil, ev.t)
		if err != nil {
			return nil, err
		}
		ev.universe = ids
		ev.haveUniverse = true
	}
	return ev.universe, nil
}

// eval computes the node's answer. The returned slice is owned by the
// evaluator's free list when owned is true; false marks a shared slice
// — the universe or a batch-cached result — which must not be recycled
// or mutated. Inside a batch, nodes shared across its expressions
// evaluate once and serve every later occurrence from cache.
func (ev *exprEval) eval(n *PlanNode) (ids []uint32, owned bool, err error) {
	if ev.cse != nil {
		if key, shared := ev.cse.keys[n]; shared {
			if cached, hit := ev.cse.cache[key]; hit {
				ev.cse.hits++
				ev.cse.savedLeaves += n.Leaves
				return cached, false, nil
			}
			ids, _, err := ev.evalNode(n)
			if err != nil {
				return nil, false, err
			}
			ev.cse.misses++
			// The cached slice must survive the whole batch: pin it by
			// returning it un-owned, so it is neither recycled nor
			// mutated while later expressions still read it.
			ev.cse.cache[key] = ids
			return ids, false, nil
		}
	}
	return ev.evalNode(n)
}

func (ev *exprEval) evalNode(n *PlanNode) (ids []uint32, owned bool, err error) {
	switch n.Op {
	case OpLeaf:
		ev.stats.EvaluatedLeaves++
		ids, err := n.Leaf.EvalAppend(ev.take(), ev.t)
		if err != nil {
			return nil, false, err
		}
		return ids, true, nil
	case OpNot:
		child, childOwned, err := ev.eval(n.Kids[0])
		if err != nil {
			return nil, false, err
		}
		uni, err := ev.getUniverse()
		if err != nil {
			return nil, false, err
		}
		out := differenceInto(ev.take(), uni, child)
		ev.put(child, childOwned)
		return out, true, nil
	case OpOr:
		var acc []uint32
		accOwned := false
		for i, k := range n.Kids {
			ids, kidOwned, err := ev.eval(k)
			if err != nil {
				return nil, false, err
			}
			if i == 0 {
				acc, accOwned = ids, kidOwned
				continue
			}
			out := unionInto(ev.take(), acc, ids)
			ev.put(acc, accOwned)
			ev.put(ids, kidOwned)
			acc, accOwned = out, true
		}
		return acc, accOwned, nil
	default: // OpAnd
		var acc []uint32
		accOwned, first := false, true
		for i := 0; i < len(n.Kids); i++ {
			if !first && len(acc) == 0 {
				// Empty intermediate: nothing can re-enter an
				// intersection or difference — skip the rest.
				for _, rest := range n.Kids[i:] {
					ev.stats.SkippedLeaves += rest.Leaves
				}
				break
			}
			k := n.Kids[i]
			if k.Op == OpNot {
				// NOT under AND is a set difference off the accumulator —
				// only the child evaluates, never its complement.
				if first {
					uni, err := ev.getUniverse()
					if err != nil {
						return nil, false, err
					}
					acc, accOwned, first = uni, false, false
				}
				child, childOwned, err := ev.eval(k.Kids[0])
				if err != nil {
					return nil, false, err
				}
				out := differenceInto(ev.take(), acc, child)
				ev.put(acc, accOwned)
				ev.put(child, childOwned)
				acc, accOwned = out, true
				continue
			}
			if !first && ev.within != nil && k.Op == OpLeaf &&
				k.Leaf.Pred == PredicateSubset && !ev.cseShared(k) {
				// Streaming pushdown: answer the leaf *within* the
				// accumulated candidate set in one pass — each candidate
				// is confirmed or discarded against the leaf's lists and
				// the leaf's full (often huge) answer is never built.
				// Shared CSE leaves keep materializing: their cached
				// answer feeds several consumers.
				ev.stats.EvaluatedLeaves++
				ev.stats.StreamedLeaves++
				out, err := ev.within.AppendSubsetWithin(ev.take(), k.Leaf.Items, acc)
				if err != nil {
					return nil, false, err
				}
				ev.put(acc, accOwned)
				acc, accOwned = out, true
				continue
			}
			ids, kidOwned, err := ev.eval(k)
			if err != nil {
				return nil, false, err
			}
			if first {
				acc, accOwned, first = ids, kidOwned, false
				continue
			}
			out := intersectInto(ev.take(), acc, ids)
			ev.put(acc, accOwned)
			ev.put(ids, kidOwned)
			acc, accOwned = out, true
		}
		return acc, accOwned, nil
	}
}

// Eval answers the expression naively: children evaluate left-to-right
// exactly as written, every leaf runs, and answers combine with the
// same set algebra the planner uses. This is the planner's reference
// (the property tests hold the planned answer byte-identical to it) and
// the left-to-right baseline oifbench's planner experiment measures
// against. Use Index.EvalExpr or Store.ExecExpr for planned evaluation.
func (e *Expr) Eval(t Queryable) ([]uint32, error) {
	if err := e.validate(); err != nil {
		return nil, err
	}
	ev := naiveEval{t: t}
	ids, err := ev.eval(e)
	if err != nil {
		return nil, err
	}
	if ids == nil {
		ids = []uint32{}
	}
	return ids, nil
}

type naiveEval struct {
	t            Queryable
	universe     []uint32
	haveUniverse bool
}

func (ev *naiveEval) eval(e *Expr) ([]uint32, error) {
	switch e.Op {
	case OpLeaf:
		return e.Leaf.Eval(ev.t)
	case OpNot:
		child, err := ev.eval(e.Kids[0])
		if err != nil {
			return nil, err
		}
		uni, err := ev.getUniverse()
		if err != nil {
			return nil, err
		}
		return differenceInto(nil, uni, child), nil
	case OpOr:
		var acc []uint32
		for i, k := range e.Kids {
			ids, err := ev.eval(k)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				acc = ids
				continue
			}
			acc = unionInto(nil, acc, ids)
		}
		return acc, nil
	default: // OpAnd
		var acc []uint32
		for i, k := range e.Kids {
			// Left-to-right, no short-circuit: the NOT child still
			// evaluates as a difference, but every leaf runs.
			if k.Op == OpNot {
				child, err := ev.eval(k.Kids[0])
				if err != nil {
					return nil, err
				}
				if i == 0 {
					uni, err := ev.getUniverse()
					if err != nil {
						return nil, err
					}
					acc = differenceInto(nil, uni, child)
					continue
				}
				acc = differenceInto(nil, acc, child)
				continue
			}
			ids, err := ev.eval(k)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				acc = ids
				continue
			}
			acc = intersectInto(nil, acc, ids)
		}
		return acc, nil
	}
}

func (ev *naiveEval) getUniverse() ([]uint32, error) {
	if !ev.haveUniverse {
		uni, err := SubsetQuery(nil).Eval(ev.t)
		if err != nil {
			return nil, err
		}
		ev.universe = uni
		ev.haveUniverse = true
	}
	return ev.universe, nil
}

// Supports profiles the index's current support table for planning;
// reuse the profile across plans, and refresh it after MergeDelta.
func (ix *Index) Supports() *SupportProfile { return SupportsOf(ix.eng) }

// PlanExpr plans the expression against the index's current statistics.
func (ix *Index) PlanExpr(e *Expr) (*ExprPlan, error) {
	return PlanExpr(e, ix.Supports())
}

// EvalExpr answers a boolean expression with planned evaluation:
// cost-ordered AND children, short-circuiting, galloping set algebra.
// The profile is rebuilt per call — interactive convenience; hot loops
// should plan once via PlanExpr (Store.ExecExpr caches the profile per
// index generation).
func (ix *Index) EvalExpr(e *Expr) ([]uint32, error) {
	plan, err := ix.PlanExpr(e)
	if err != nil {
		return nil, err
	}
	ids, _, err := plan.Eval(ix)
	return ids, err
}

// EvalExprLimit answers the first n ids of the expression's answer with
// limit-driven early exit (see Evaluator.EvalLimitAppend); n <= 0 means
// no limit. Like EvalExpr, the profile is rebuilt per call.
func (ix *Index) EvalExprLimit(e *Expr, n int) ([]uint32, error) {
	plan, err := ix.PlanExpr(e)
	if err != nil {
		return nil, err
	}
	ids, _, err := plan.EvalLimitAppend(nil, ix, n)
	if err != nil {
		return nil, err
	}
	if ids == nil {
		ids = []uint32{}
	}
	return ids, nil
}
