package setcontain

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestExprStringParseRoundTrip(t *testing.T) {
	leaf := func(pred Predicate, items ...Item) *Expr {
		return ExprOf(Query{Pred: pred, Items: items})
	}
	cases := []struct {
		expr *Expr
		want string
	}{
		{leaf(PredicateSubset, 3, 17), "subset{3 17}"},
		{Not(leaf(PredicateSuperset, 29)), "not superset{29}"},
		{And(leaf(PredicateSubset, 1), Not(leaf(PredicateSuperset, 3))),
			"subset{1} and not superset{3}"},
		{And(leaf(PredicateSubset, 1), leaf(PredicateEquality, 2), leaf(PredicateSuperset)),
			"subset{1} and equality{2} and superset{}"},
		{Or(And(leaf(PredicateSubset, 1), leaf(PredicateSubset, 2)), leaf(PredicateEquality, 3)),
			"subset{1} and subset{2} or equality{3}"},
		{And(Or(leaf(PredicateSubset, 1), leaf(PredicateSubset, 2)), leaf(PredicateEquality, 3)),
			"(subset{1} or subset{2}) and equality{3}"},
		{Not(And(leaf(PredicateSubset, 1), leaf(PredicateSubset, 2))),
			"not (subset{1} and subset{2})"},
		{Not(Not(leaf(PredicateSubset, 1))), "not not subset{1}"},
		{Or(Not(Or(leaf(PredicateSubset, 1), leaf(PredicateSubset, 2))), leaf(PredicateSubset, 3)),
			"not (subset{1} or subset{2}) or subset{3}"},
	}
	for _, c := range cases {
		got := c.expr.String()
		if got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
		back, err := ParseExpr(got)
		if err != nil {
			t.Errorf("ParseExpr(%q): %v", got, err)
			continue
		}
		if !reflect.DeepEqual(back, c.expr) {
			t.Errorf("round trip of %q: got %q (%#v)", c.want, back.String(), back)
		}
	}
}

func TestParseExprLenient(t *testing.T) {
	for _, in := range []string{
		"subset{1}and not superset{2}",
		"  SUBSET{1} AND NOT SUPERSET{2}  ",
		"( subset{1} )",
		"((subset{1} or subset{2}))",
		"not(subset{1})",
		"subset { 1 2 } or equality {}",
	} {
		if _, err := ParseExpr(in); err != nil {
			t.Errorf("ParseExpr(%q): unexpected error %v", in, err)
		}
	}
}

// TestParseExprOffsets pins the satellite contract: every syntax error
// is a *ParseError whose Offset points at the failing byte and whose
// message carries both.
func TestParseExprOffsets(t *testing.T) {
	cases := []struct {
		in     string
		offset int
	}{
		{"", 0},
		{"between{1 2}", 0},
		{"subset(1 2)", 6},
		{"subset{1 2", 10},
		{"subset{1 b 3}", 9},
		{"subset{4294967296}", 7},
		{"subset{1} and", 13},
		{"subset{1} and and subset{2}", 14},
		{"(subset{1} or subset{2}", 23},
		{"subset{1}) or subset{2}", 9},
		{"subset{1} subset{2}", 10},
		{"not", 3},
		{"subset{1} or (not)", 17},
	}
	for _, c := range cases {
		_, err := ParseExpr(c.in)
		if err == nil {
			t.Errorf("ParseExpr(%q): expected error", c.in)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("ParseExpr(%q): error %v is not a *ParseError", c.in, err)
			continue
		}
		if pe.Offset != c.offset {
			t.Errorf("ParseExpr(%q): offset %d, want %d (%v)", c.in, pe.Offset, c.offset, err)
		}
		if pe.Input != c.in {
			t.Errorf("ParseExpr(%q): Input = %q", c.in, pe.Input)
		}
		if !strings.Contains(err.Error(), "setcontain: query") ||
			!strings.Contains(err.Error(), "offset") {
			t.Errorf("ParseExpr(%q): message %q lacks the offset form", c.in, err)
		}
	}
}

// TestParseQueryOffsets pins that the plain-query parser carries the
// same positioned errors as the expression parser.
func TestParseQueryOffsets(t *testing.T) {
	cases := []struct {
		in     string
		offset int
	}{
		{"between{1 2}", 0},
		{"subset", 6},
		{"subset{1 2}trailing", 11},
		{"subset{1 2} and subset{3}", 12}, // expressions are ParseExpr's job
		{"  subset{-1}", 9},
	}
	for _, c := range cases {
		_, err := ParseQuery(c.in)
		if err == nil {
			t.Errorf("ParseQuery(%q): expected error", c.in)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("ParseQuery(%q): error %v is not a *ParseError", c.in, err)
			continue
		}
		if pe.Offset != c.offset {
			t.Errorf("ParseQuery(%q): offset %d, want %d (%v)", c.in, pe.Offset, c.offset, err)
		}
	}
}

// randExpr builds a random expression: leaves carry 0-4 items drawn
// from [0, domain), inner nodes pick AND/OR/NOT until depth runs out.
func randExpr(rng *rand.Rand, depth, domain int) *Expr {
	if depth == 0 || rng.Intn(10) < 4 {
		var items []Item
		for i, k := 0, rng.Intn(5); i < k; i++ {
			items = append(items, Item(rng.Intn(domain)))
		}
		preds := []Predicate{PredicateSubset, PredicateEquality, PredicateSuperset}
		return ExprOf(Query{Pred: preds[rng.Intn(3)], Items: items})
	}
	switch rng.Intn(10) {
	case 0, 1:
		return Not(randExpr(rng, depth-1, domain))
	case 2, 3, 4, 5:
		kids := make([]*Expr, 2+rng.Intn(2))
		for i := range kids {
			kids[i] = randExpr(rng, depth-1, domain)
		}
		return And(kids...)
	default:
		kids := make([]*Expr, 2+rng.Intn(2))
		for i := range kids {
			kids[i] = randExpr(rng, depth-1, domain)
		}
		return Or(kids...)
	}
}

func TestExprRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		e := randExpr(rng, 3, 50)
		s := e.String()
		back, err := ParseExpr(s)
		if err != nil {
			t.Fatalf("ParseExpr(%q): %v", s, err)
		}
		if !reflect.DeepEqual(back, e) {
			t.Fatalf("round trip of %q: got %q", s, back.String())
		}
	}
}

// FuzzParseExpr fuzzes the grammar for parse stability: any input that
// parses must print to a form that reparses to the same tree, and any
// input that fails must fail with a positioned *ParseError inside the
// input's bounds.
func FuzzParseExpr(f *testing.F) {
	for _, seed := range []string{
		"subset{3 17 29}",
		"subset{1 2} and not superset{3}",
		"(subset{1} or equality{2 3}) and subset{4}",
		"not not subset{}",
		"SUBSET {007} OR superset{4294967295}",
		"subset{1} and (subset{2",
		"between{1}",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		e, err := ParseExpr(in)
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("ParseExpr(%q): error %v is not a *ParseError", in, err)
			}
			if pe.Offset < 0 || pe.Offset > len(in) {
				t.Fatalf("ParseExpr(%q): offset %d out of bounds", in, pe.Offset)
			}
			return
		}
		printed := e.String()
		back, err := ParseExpr(printed)
		if err != nil {
			t.Fatalf("reparse of %q (from %q): %v", printed, in, err)
		}
		if again := back.String(); again != printed {
			t.Fatalf("print of %q unstable: %q then %q", in, printed, again)
		}
	})
}
