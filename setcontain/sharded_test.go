package setcontain

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"iter"
	"math/rand"
	"slices"
	"sync"
	"testing"

	"repro/internal/dataset"
)

// skewedCollection draws records whose items follow a Zipf law, the
// distribution the paper (and the shard planner) is built around.
func skewedCollection(t *testing.T, records, domain int, theta float64, seed int64) *Collection {
	t.Helper()
	c := NewCollection(domain)
	rng := rand.New(rand.NewSource(seed))
	z := dataset.NewZipf(domain, theta)
	for i := 0; i < records; i++ {
		set := z.SampleDistinct(rng, 1+rng.Intn(8))
		if _, err := c.Add(set); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// zipfWorkload mixes the three predicates over Zipf-drawn items, so
// queries concentrate on the frequent items like real traffic does.
func zipfWorkload(n, domain int, theta float64, seed int64) []Query {
	rng := rand.New(rand.NewSource(seed))
	z := dataset.NewZipf(domain, theta)
	preds := []Predicate{PredicateSubset, PredicateEquality, PredicateSuperset}
	qs := make([]Query, n)
	for i := range qs {
		qs[i] = Query{
			Pred:  preds[rng.Intn(len(preds))],
			Items: z.SampleDistinct(rng, 1+rng.Intn(5)),
		}
	}
	return qs
}

// TestShardedMatchesSingleShard is the core contract: for random skewed
// workloads, a sharded engine at any shard count returns exactly the
// ids, in exactly the order, of the equivalent single-shard engine.
func TestShardedMatchesSingleShard(t *testing.T) {
	const domain = 60
	c := skewedCollection(t, 3000, domain, 0.9, 11)
	single, err := New(c, WithKind(OIF), WithPageSize(512), WithBlockPostings(8))
	if err != nil {
		t.Fatal(err)
	}
	queries := zipfWorkload(150, domain, 0.9, 12)
	for _, shards := range []int{1, 2, 3, 5, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			sharded, err := New(c, WithKind(Sharded), WithShards(shards),
				WithPageSize(512), WithBlockPostings(8))
			if err != nil {
				t.Fatal(err)
			}
			for _, q := range queries {
				want, err := single.Eval(q)
				if err != nil {
					t.Fatalf("single %s: %v", q, err)
				}
				got, err := sharded.Eval(q)
				if err != nil {
					t.Fatalf("sharded %s: %v", q, err)
				}
				if !slices.Equal(got, want) {
					t.Fatalf("%s: sharded %v, single %v", q, got, want)
				}
			}
		})
	}
}

// TestShardedMoreShardsThanRecords leaves some shards empty; queries
// must still merge correctly.
func TestShardedMoreShardsThanRecords(t *testing.T) {
	c := NewCollection(10)
	for _, set := range [][]Item{{1, 2}, {2, 3}, {1, 2, 3}, {}, {5}} {
		if _, err := c.Add(set); err != nil {
			t.Fatal(err)
		}
	}
	single, err := New(c, WithKind(InvertedFile), WithPageSize(512))
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := New(c, WithKind(Sharded), WithShards(8), WithPageSize(512))
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []Query{
		SubsetQuery([]Item{2}), SubsetQuery(nil), EqualityQuery([]Item{1, 2}),
		SupersetQuery([]Item{1, 2, 3, 5}), SupersetQuery(nil), SubsetQuery([]Item{9}),
	} {
		want, err := single.Eval(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sharded.Eval(q)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(got, want) && !(len(got) == 0 && len(want) == 0) {
			t.Fatalf("%s: sharded %v, single %v", q, got, want)
		}
	}
}

// TestShardedPlans checks the skew-aware planner: a skewed collection
// gets OIF shards with a sized frontier, a uniform one inverted-file
// shards, and ShardPlans reports one decision per shard.
func TestShardedPlans(t *testing.T) {
	skew := skewedCollection(t, 4000, 400, 1.0, 21)
	ix, err := New(skew, WithKind(Sharded), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	plans := ShardPlans(ix.Engine())
	if len(plans) != 4 {
		t.Fatalf("ShardPlans: %d entries", len(plans))
	}
	for _, p := range plans {
		if p.Kind != OIF {
			t.Errorf("skewed shard %d planned %v (theta %.2f)", p.Shard, p.Kind, p.Theta)
		}
		if p.BlockPostings <= 0 {
			t.Errorf("skewed shard %d: frontier unsized: %+v", p.Shard, p)
		}
	}

	uniform := sampleCollection(t) // uniform items over 40
	ix, err = New(uniform, WithKind(Sharded), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ShardPlans(ix.Engine()) {
		if p.Kind != InvertedFile {
			t.Errorf("uniform shard %d planned %v (theta %.2f)", p.Shard, p.Kind, p.Theta)
		}
	}

	if got := ShardPlans(ix.Engine().Unwrap().([]Engine)[0]); got != nil {
		t.Errorf("ShardPlans on inner engine = %v, want nil", got)
	}
}

// TestShardedExplicitBlockPostings: an explicit WithBlockPostings wins
// over the planner's frontier sizing — including when it equals the
// package default, which the planner must not mistake for "unset".
func TestShardedExplicitBlockPostings(t *testing.T) {
	c := skewedCollection(t, 2000, 300, 1.0, 31)
	for _, explicit := range []int{8, 64} {
		ix, err := New(c, WithKind(Sharded), WithShards(2), WithBlockPostings(explicit))
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range ShardPlans(ix.Engine()) {
			if p.Kind == OIF && p.BlockPostings != explicit {
				t.Errorf("shard %d: explicit block postings %d overridden to %d",
					p.Shard, explicit, p.BlockPostings)
			}
		}
	}
	// Left unset, the planner sizes the frontier itself (these skewed
	// shards have hot lists well above 64^2 postings is not guaranteed,
	// so only assert it picked something valid).
	ix, err := New(c, WithKind(Sharded), WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ShardPlans(ix.Engine()) {
		if p.Kind == OIF && p.BlockPostings <= 0 {
			t.Errorf("shard %d: planner left frontier unsized", p.Shard)
		}
	}
}

// TestShardedInsertAndMerge checks global ids stay dense and identical
// to the single-shard engine across the update path.
func TestShardedInsertAndMerge(t *testing.T) {
	c := skewedCollection(t, 500, 50, 0.8, 41)
	single, err := New(c, WithKind(OIF), WithPageSize(512), WithBlockPostings(8))
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := New(c, WithKind(Sharded), WithShards(3), WithPageSize(512), WithBlockPostings(8))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	z := dataset.NewZipf(50, 0.8)
	for i := 0; i < 25; i++ {
		set := z.SampleDistinct(rng, 1+rng.Intn(5))
		a, err := single.Insert(set)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sharded.Insert(set)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("insert %d: single id %d, sharded id %d", i, a, b)
		}
	}
	if got, want := sharded.PendingInserts(), 25; got != want {
		t.Fatalf("pending inserts %d, want %d", got, want)
	}
	queries := zipfWorkload(60, 50, 0.8, 43)
	compare := func(stage string) {
		t.Helper()
		for _, q := range queries {
			want, err := single.Eval(q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sharded.Eval(q)
			if err != nil {
				t.Fatal(err)
			}
			if !slices.Equal(got, want) && !(len(got) == 0 && len(want) == 0) {
				t.Fatalf("%s %s: sharded %v, single %v", stage, q, got, want)
			}
		}
	}
	compare("pre-merge")
	if err := sharded.MergeDelta(); err != nil {
		t.Fatal(err)
	}
	if err := single.MergeDelta(); err != nil {
		t.Fatal(err)
	}
	if got := sharded.PendingInserts(); got != 0 {
		t.Fatalf("pending inserts after merge: %d", got)
	}
	compare("post-merge")
}

// TestShardedStoreParallelCancel drives a Store over a sharded index
// from several goroutines and cancels mid-stream: every Exec must either
// succeed with the exact single-shard answer or fail with
// context.Canceled, and Execs after the cancel must fail. Under -race
// this exercises the concurrent interrupt propagation into every shard's
// buffer pool.
func TestShardedStoreParallelCancel(t *testing.T) {
	const domain = 60
	c := skewedCollection(t, 3000, domain, 0.9, 51)
	ix, err := New(c, WithKind(Sharded), WithShards(4), WithPageSize(512), WithBlockPostings(8))
	if err != nil {
		t.Fatal(err)
	}
	single, err := New(c, WithKind(OIF), WithPageSize(512), WithBlockPostings(8))
	if err != nil {
		t.Fatal(err)
	}
	queries := zipfWorkload(200, domain, 0.9, 52)
	want := make([][]uint32, len(queries))
	for i, q := range queries {
		if want[i], err = single.Eval(q); err != nil {
			t.Fatal(err)
		}
	}

	store := NewStore(ix, 4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(queries); i += 4 {
				if i == 60 {
					cancel()
				}
				got, err := store.Exec(ctx, queries[i])
				switch {
				case errors.Is(err, context.Canceled):
					// Acceptable after the cancel point.
				case err != nil:
					errs <- fmt.Errorf("query %d: %v", i, err)
					return
				case !slices.Equal(got, want[i]) && !(len(got) == 0 && len(want[i]) == 0):
					errs <- fmt.Errorf("query %d (%s): got %v want %v", i, queries[i], got, want[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if _, err := store.Exec(ctx, queries[0]); !errors.Is(err, context.Canceled) {
		t.Errorf("post-cancel Exec: got %v, want context.Canceled", err)
	}
}

// flakyEngine wraps a real Engine, failing Insert while armed — the
// injection harness for the routing-drift regression test.
type flakyEngine struct {
	Engine
	failInserts bool
}

var errInjected = errors.New("injected shard failure")

func (f *flakyEngine) Insert(set []Item) (uint32, error) {
	if f.failInserts {
		return 0, errInjected
	}
	return f.Engine.Insert(set)
}

// TestShardedInsertFailureKeepsRouting is the regression test for the
// round-robin counter bug: a failed shard Insert must not advance the
// partition counter, or every subsequent record lands on the wrong
// shard and the global-id ↔ shard mapping drifts. After the injected
// failure clears, inserts must resume with the exact ids and placement
// a never-failing engine produces.
func TestShardedInsertFailureKeepsRouting(t *testing.T) {
	const domain = 30
	c := skewedCollection(t, 300, domain, 0.8, 71)
	reference, err := New(c, WithKind(Sharded), WithShards(3), WithPageSize(512), WithBlockPostings(8))
	if err != nil {
		t.Fatal(err)
	}
	victim, err := New(c, WithKind(Sharded), WithShards(3), WithPageSize(512), WithBlockPostings(8))
	if err != nil {
		t.Fatal(err)
	}
	// Rewrap the victim's shards with the failure-injecting decorator.
	inner := victim.Engine().Unwrap().([]Engine)
	flaky := make([]*flakyEngine, len(inner))
	wrapped := make([]Engine, len(inner))
	for i, sh := range inner {
		flaky[i] = &flakyEngine{Engine: sh}
		wrapped[i] = flaky[i]
	}
	eng, err := EngineOf(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	victim = IndexOver(eng)

	insertBoth := func(set []Item) {
		t.Helper()
		want, err := reference.Insert(set)
		if err != nil {
			t.Fatal(err)
		}
		got, err := victim.Insert(set)
		if err != nil {
			t.Fatalf("victim insert: %v", err)
		}
		if got != want {
			t.Fatalf("insert id drifted after failure: got %d, want %d", got, want)
		}
	}
	insertBoth([]Item{1, 2})
	insertBoth([]Item{2, 3})

	// Arm every shard: the next victim insert fails wherever it routes.
	for _, f := range flaky {
		f.failInserts = true
	}
	for i := 0; i < 3; i++ {
		if _, err := victim.Insert([]Item{4, 5}); !errors.Is(err, errInjected) {
			t.Fatalf("armed insert %d: got %v, want injected failure", i, err)
		}
	}
	for _, f := range flaky {
		f.failInserts = false
	}

	// Routing must resume exactly where it left off.
	insertBoth([]Item{4, 5})
	insertBoth([]Item{5, 6})
	insertBoth([]Item{6, 7})

	for _, q := range zipfWorkload(60, domain, 0.8, 72) {
		want, err := reference.Eval(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := victim.Eval(q)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(got, want) && !(len(got) == 0 && len(want) == 0) {
			t.Fatalf("%s: answers diverged after injected failure: %v vs %v", q, got, want)
		}
	}
}

// TestMergeSeqs checks the k-way merge against a sort-based reference,
// including empty, nil, and abandoned-early iteration.
func TestMergeSeqs(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 100; trial++ {
		k := 1 + rng.Intn(6)
		var all []uint32
		seqs := make([]iter.Seq[uint32], 0, k+1)
		for s := 0; s < k; s++ {
			n := rng.Intn(20)
			ids := make([]uint32, n)
			for i := range ids {
				ids[i] = uint32(rng.Intn(1000))
			}
			slices.Sort(ids)
			all = append(all, ids...)
			seqs = append(seqs, seqOfSlice(ids))
		}
		seqs = append(seqs, nil) // nil inputs are skipped
		slices.Sort(all)
		if got := slices.Collect(MergeSeqs(seqs...)); !slices.Equal(got, all) && len(all) > 0 {
			t.Fatalf("trial %d: merged %v, want %v", trial, got, all)
		}
		// Abandoning early must not deadlock or over-consume.
		limit := rng.Intn(len(all) + 1)
		var prefix []uint32
		for id := range MergeSeqs(seqs...) {
			if len(prefix) == limit {
				break
			}
			prefix = append(prefix, id)
		}
		if !slices.Equal(prefix, all[:len(prefix)]) {
			t.Fatalf("trial %d: prefix %v diverges from %v", trial, prefix, all)
		}
	}
}

func seqOfSlice(ids []uint32) iter.Seq[uint32] {
	return func(yield func(uint32) bool) {
		for _, id := range ids {
			if !yield(id) {
				return
			}
		}
	}
}

// TestShardedCapabilities covers the engine surface the generic
// capability test can't reach: snapshots, metering, rewrapping.
func TestShardedCapabilities(t *testing.T) {
	c := sampleCollection(t)
	ix, err := New(c, WithKind(Sharded), WithShards(3), WithPageSize(512))
	if err != nil {
		t.Fatal(err)
	}
	eng := ix.Engine()
	var snap bytes.Buffer
	if err := eng.Save(&snap); err != nil {
		t.Errorf("Save: %v", err)
	} else {
		back, err := Open(bytes.NewReader(snap.Bytes()))
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		if back.Kind() != Sharded || back.NumRecords() != c.Len() {
			t.Errorf("reloaded sharded: kind %v, records %d", back.Kind(), back.NumRecords())
		}
	}
	if err := eng.SetPool(nil); err == nil {
		t.Error("SetPool succeeded, want per-shard pool error")
	}
	if eng.Pool() == nil {
		t.Error("Pool() = nil")
	}
	shards, ok := eng.Unwrap().([]Engine)
	if !ok || len(shards) != 3 {
		t.Fatalf("Unwrap = %T (%d shards)", eng.Unwrap(), len(shards))
	}
	again, err := EngineOf(shards)
	if err != nil {
		t.Fatal(err)
	}
	if again.Kind() != Sharded || again.NumRecords() != c.Len() {
		t.Errorf("rewrapped: kind %v, records %d", again.Kind(), again.NumRecords())
	}
	want, err := eng.Subset([]Item{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := again.Subset([]Item{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got, want) {
		t.Errorf("rewrapped answers diverge: %v vs %v", got, want)
	}
	if _, err := EngineOf([]Engine{}); err == nil {
		t.Error("EngineOf(empty shard slice) succeeded, want error")
	}

	eng.ResetStats()
	if _, err := eng.Subset([]Item{0, 1}); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.PageReads == 0 && st.Hits == 0 {
		t.Error("sharded stats recorded nothing")
	}
	if sp := eng.Space(); sp.Pages <= 0 || sp.Bytes != sp.Pages*512 {
		t.Errorf("implausible sharded space %+v", sp)
	}
}
