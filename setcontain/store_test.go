package setcontain

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

// storeWorkload draws a deterministic mixed workload over the sample
// collection's domain.
func storeWorkload(n int, seed int64) []Query {
	rng := rand.New(rand.NewSource(seed))
	preds := []Predicate{PredicateSubset, PredicateEquality, PredicateSuperset}
	qs := make([]Query, n)
	for i := range qs {
		k := 1 + rng.Intn(5)
		items := make([]Item, k)
		for j := range items {
			items[j] = Item(rng.Intn(40))
		}
		qs[i] = Query{Pred: preds[rng.Intn(len(preds))], Items: items}
	}
	return qs
}

// TestStoreExecParallel runs concurrent Store.Exec across goroutines for
// every engine kind and asserts each answer matches the sequential one.
// Run under -race this also proves the pooled readers are isolated.
func TestStoreExecParallel(t *testing.T) {
	c := sampleCollection(t)
	queries := storeWorkload(60, 81)
	for kind, ix := range buildAll(t, c) {
		t.Run(kind.String(), func(t *testing.T) {
			want := make([][]uint32, len(queries))
			for i, q := range queries {
				ids, err := ix.Eval(q)
				if err != nil {
					t.Fatalf("sequential %s: %v", q, err)
				}
				want[i] = ids
			}

			store := NewStore(ix, 4)
			ctx := context.Background()
			const goroutines = 8
			var wg sync.WaitGroup
			errs := make(chan error, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					// Each goroutine walks the whole workload from its own
					// offset, so every query runs on several readers.
					for n := 0; n < len(queries); n++ {
						i := (g*7 + n) % len(queries)
						got, err := store.Exec(ctx, queries[i])
						if err != nil {
							errs <- fmt.Errorf("parallel %s: %v", queries[i], err)
							return
						}
						if !reflect.DeepEqual(got, want[i]) && !(len(got) == 0 && len(want[i]) == 0) {
							errs <- fmt.Errorf("parallel %s: got %v want %v", queries[i], got, want[i])
							return
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
		})
	}
}

// TestStoreExecBatch checks batch answers arrive in order and match the
// sequential evaluation, for every engine kind.
func TestStoreExecBatch(t *testing.T) {
	c := sampleCollection(t)
	queries := storeWorkload(40, 82)
	for kind, ix := range buildAll(t, c) {
		t.Run(kind.String(), func(t *testing.T) {
			store := NewStore(ix, 4)
			got, err := store.ExecBatch(context.Background(), queries)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(queries) {
				t.Fatalf("got %d answers for %d queries", len(got), len(queries))
			}
			for i, q := range queries {
				want, err := ix.Eval(q)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got[i], want) && !(len(got[i]) == 0 && len(want) == 0) {
					t.Errorf("%s: got %v want %v", q, got[i], want)
				}
			}
		})
	}
}

// TestStoreExecCancelled checks an already-cancelled context aborts both
// Exec and ExecBatch with context.Canceled.
func TestStoreExecCancelled(t *testing.T) {
	c := sampleCollection(t)
	ix, err := New(c, WithPageSize(512), WithBlockPostings(8))
	if err != nil {
		t.Fatal(err)
	}
	store := NewStore(ix, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := store.Exec(ctx, SubsetQuery([]Item{1})); !errors.Is(err, context.Canceled) {
		t.Errorf("Exec on cancelled ctx: got %v, want context.Canceled", err)
	}
	if _, err := store.ExecBatch(ctx, storeWorkload(10, 83)); !errors.Is(err, context.Canceled) {
		t.Errorf("ExecBatch on cancelled ctx: got %v, want context.Canceled", err)
	}
}

// TestCancellationBetweenBlockReads proves a query in flight stops at
// the next list-block read once its cancellation hook fires: the
// reader's buffer pool consults the hook on every page request, so a
// cancellation after N pages surfaces as the query's error.
func TestCancellationBetweenBlockReads(t *testing.T) {
	c := sampleCollection(t)
	for kind, ix := range buildAll(t, c) {
		t.Run(kind.String(), func(t *testing.T) {
			r, err := ix.NewReader(4)
			if err != nil {
				t.Fatal(err)
			}
			// Sharded readers consult the hook from every shard's pool
			// concurrently, so the counter must be atomic.
			var pages atomic.Int64
			r.setInterrupt(func() error {
				if pages.Add(1) > 2 {
					return context.Canceled
				}
				return nil
			})
			// A wide superset query reads one list per query item, so
			// every engine crosses many list blocks.
			wide := make([]Item, 20)
			for i := range wide {
				wide[i] = Item(i)
			}
			_, err = r.Superset(wide)
			if !errors.Is(err, context.Canceled) {
				t.Errorf("mid-query cancel: got %v, want context.Canceled", err)
			}
			// Clearing the hook makes the reader usable again.
			r.setInterrupt(nil)
			if _, err := r.Superset(wide); err != nil {
				t.Errorf("after clearing interrupt: %v", err)
			}
		})
	}
}

// TestStoreCancelMidFlight cancels while parallel Exec calls stream
// answers: every call must either succeed or fail with context.Canceled,
// and calls issued after the cancel must fail.
func TestStoreCancelMidFlight(t *testing.T) {
	c := sampleCollection(t)
	ix, err := New(c, WithPageSize(512), WithBlockPostings(8))
	if err != nil {
		t.Fatal(err)
	}
	store := NewStore(ix, 4)
	queries := storeWorkload(200, 84)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(queries); i += 4 {
				if i == 40 {
					cancel()
				}
				if _, err := store.Exec(ctx, queries[i]); err != nil && !errors.Is(err, context.Canceled) {
					errs <- fmt.Errorf("query %d: %v", i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if _, err := store.Exec(ctx, queries[0]); !errors.Is(err, context.Canceled) {
		t.Errorf("post-cancel Exec: got %v, want context.Canceled", err)
	}
}

// TestStoreRefresh checks pooled readers are retired after Refresh so
// updates become visible, and stay frozen before it.
func TestStoreRefresh(t *testing.T) {
	c := sampleCollection(t)
	ix, err := New(c, WithPageSize(512), WithBlockPostings(8))
	if err != nil {
		t.Fatal(err)
	}
	store := NewStore(ix, 4)
	ctx := context.Background()
	q := SubsetQuery([]Item{1, 2, 3})
	before, err := store.Exec(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	id, err := ix.Insert([]Item{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	stale, err := store.Exec(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(stale) != len(before) {
		// Permitted: sync.Pool may have dropped the reader (GC), and a
		// freshly created one legitimately sees the insert.
		t.Logf("pooled reader recycled before Refresh: %d vs %d", len(stale), len(before))
	}
	store.Refresh()
	fresh, err := store.Exec(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, got := range fresh {
		if got == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("refreshed reader misses inserted record %d: %v", id, fresh)
	}
}
