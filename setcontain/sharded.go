package setcontain

import (
	"context"
	"errors"
	"fmt"
	"runtime"

	"repro/internal/dataset"
	"repro/internal/stats"
	"repro/internal/storage"
)

// The sharded engine partitions records across N inner engines and
// answers every query by fanning it out to all shards in parallel,
// merging the per-shard streams back into one ascending global-id
// sequence. The id arithmetic lives in the engine's Partitioner
// (round-robin by default: shard = (g-1) mod N, local = (g-1)/N + 1),
// and the fan-out/merge in the scatter-gather executor (scatter.go) —
// this file only wires the two to the Engine surface. Because the
// partitioner maps each shard's ascending local answer to an ascending
// global subsequence, the merge is a pure k-way interleave, which is
// what makes sharded answers byte-identical to the single-engine ones.
//
// Each shard's inner engine is chosen per shard by internal/stats while
// the records stream in: skewed shards get the paper's Ordered Inverted
// File (with a frontier block size fitted to the shard's hottest list),
// uniform shards the plain inverted file. The shard count therefore also
// decides how much of the paper's skew machinery is deployed — the skew
// insight becomes a planning decision instead of a manual flag.

// ShardPlan records the planning decision made for one shard at build
// time; ShardPlans exposes them for inspection and experiment reports.
type ShardPlan struct {
	// Shard is the shard's position in [0, NumShards).
	Shard int
	// Kind is the inner engine the planner chose.
	Kind Kind
	// Records is the number of records routed to the shard.
	Records int
	// Theta is the Zipf exponent fitted to the shard's item frequencies.
	Theta float64
	// BlockPostings is the OIF frontier size chosen (0 for non-OIF).
	BlockPostings int
}

type shardedEngine struct {
	shards []Engine
	part   Partitioner
	plans  []ShardPlan
	domain int

	// nextID is the partition counter: the highest global id handed out
	// so far (tombstoned slots included). Insert routes by it and
	// advances it only on success — a failed shard insert must leave
	// the global-id ↔ shard mapping exactly where it was, or every
	// later record would land on the wrong shard.
	nextID uint32
}

// errShardedPool reports that the sharded engine has no single buffer
// pool to re-point; meter its shards individually via Unwrap.
var errShardedPool = errors.New("setcontain: sharded engine has per-shard buffer pools; meter shards via Unwrap")

// buildShardedEngine splits the dataset across opts.Shards sub-datasets
// through the round-robin Partitioner, profiles each shard's
// item-frequency skew during the split, and builds every shard's
// planner-chosen engine in parallel (bounded by opts.BuildParallelism
// goroutines).
func buildShardedEngine(ds *dataset.Dataset, opts Options) (Engine, error) {
	n := opts.Shards
	if n <= 0 {
		n = defaultShards()
	}
	return buildShardedWith(ds, opts, NewRoundRobinPartitioner(n))
}

// buildShardedWith is buildShardedEngine under an explicit Partitioner:
// the one place the partition scheme touches the build path. Tests
// swap alternative schemes in here.
func buildShardedWith(ds *dataset.Dataset, opts Options, part Partitioner) (Engine, error) {
	n := part.NumShards()
	par := opts.BuildParallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > n {
		par = n
	}

	// Split through the partitioner, profiling each shard as its
	// records stream in. The dataset hands out ids 1..Len in order, so
	// record i carries global id i+1.
	subs := make([]*dataset.Dataset, n)
	colls := make([]*stats.Collector, n)
	for s := range subs {
		subs[s] = dataset.New(ds.DomainSize())
		colls[s] = stats.NewCollector(ds.DomainSize())
	}
	for i, r := range ds.Records() {
		s, local := part.Locate(uint32(i) + 1)
		id, err := subs[s].Add(r.Set)
		if err != nil {
			return nil, fmt.Errorf("setcontain: shard %d: %w", s, err)
		}
		if id != local {
			return nil, fmt.Errorf("setcontain: shard %d: partitioner routed global %d to local %d, shard assigned %d",
				s, i+1, local, id)
		}
		colls[s].Add(r.Set)
	}

	eng := &shardedEngine{
		shards: make([]Engine, n),
		part:   part,
		plans:  make([]ShardPlan, n),
		domain: ds.DomainSize(),
	}
	errs := forEachShard(n, par, func(s int) error {
		shardEng, plan, err := buildShard(subs[s], colls[s], opts)
		if err != nil {
			return err
		}
		plan.Shard = s
		eng.shards[s] = shardEng
		eng.plans[s] = plan
		return nil
	})
	for s, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("setcontain: shard %d: %w", s, err)
		}
	}
	eng.nextID = uint32(ds.Len())
	return eng, nil
}

// buildShard plans and builds one shard's inner engine from its profiled
// distribution. The planner's frontier size replaces the OIF block cap
// only when the caller left it unset — an explicit WithBlockPostings
// always wins, even at the default value.
func buildShard(sub *dataset.Dataset, coll *stats.Collector, opts Options) (Engine, ShardPlan, error) {
	profile := coll.Profile(8)
	plan := profile.Plan()
	sp := ShardPlan{Records: sub.Len(), Theta: plan.Theta}

	inner := opts
	inner.Shards = 0
	build := buildInvEngine
	inner.Kind = InvertedFile
	if plan.UseOIF {
		build = buildOIFEngine
		inner.Kind = OIF
		if !inner.blockPostingsExplicit && plan.BlockPostings > 0 {
			inner.BlockPostings = plan.BlockPostings
		}
		sp.BlockPostings = inner.BlockPostings
	}
	sp.Kind = inner.Kind
	eng, err := build(sub, inner)
	if err != nil {
		return nil, ShardPlan{}, err
	}
	return eng, sp, nil
}

// defaultShards is the shard count when WithShards is absent: one per
// available CPU, but at least two so the sharded paths are exercised
// even on a single-core box.
func defaultShards() int {
	n := runtime.GOMAXPROCS(0)
	if n < 2 {
		n = 2
	}
	return n
}

// shardedOf rewraps already-built inner engines (EngineOf's []Engine
// case). The engines must hold a round-robin partition in shard order,
// as produced by a sharded build.
func shardedOf(shards []Engine) (Engine, error) {
	if len(shards) == 0 {
		return nil, errors.New("setcontain: sharded engine needs at least one shard")
	}
	return shardedWith(NewRoundRobinPartitioner(len(shards)), shards)
}

// shardedWith rewraps inner engines under an explicit Partitioner; the
// engines must hold that partitioner's split in shard order.
func shardedWith(part Partitioner, shards []Engine) (Engine, error) {
	if part.NumShards() != len(shards) {
		return nil, fmt.Errorf("setcontain: partitioner expects %d shards, got %d",
			part.NumShards(), len(shards))
	}
	eng := &shardedEngine{
		shards: shards,
		part:   part,
		plans:  make([]ShardPlan, len(shards)),
		domain: shards[0].DomainSize(),
	}
	for s, sh := range shards {
		eng.plans[s] = ShardPlan{Shard: s, Kind: sh.Kind(), Records: sh.NumRecords()}
	}
	eng.nextID = uint32(eng.NumRecords())
	return eng, nil
}

// ShardPlans returns the per-shard planning decisions of a sharded
// engine (or index over one), and nil for any other engine.
func ShardPlans(e Engine) []ShardPlan {
	se, ok := e.(*shardedEngine)
	if !ok {
		return nil
	}
	return append([]ShardPlan(nil), se.plans...)
}

// ShardEngines returns a sharded engine's inner engines in shard order,
// and nil for any other engine. The engines are shared, not copied —
// wrapping them (e.g. in InprocShard clients for a transport
// experiment) aliases the original's state.
func ShardEngines(e Engine) []Engine {
	se, ok := e.(*shardedEngine)
	if !ok {
		return nil
	}
	return append([]Engine(nil), se.shards...)
}

func (e *shardedEngine) Kind() Kind      { return Sharded }
func (e *shardedEngine) DomainSize() int { return e.domain }

func (e *shardedEngine) NumRecords() int {
	total := 0
	for _, sh := range e.shards {
		total += sh.NumRecords()
	}
	return total
}

// Unwrap returns the inner engines in shard order; EngineOf accepts the
// slice back.
func (e *shardedEngine) Unwrap() any { return append([]Engine(nil), e.shards...) }

// ItemSupports sums the shards' support tables: the partition splits
// records, not items, so the global support of an item is the sum of
// its per-shard supports.
func (e *shardedEngine) ItemSupports() []int64 {
	supports := make([]int64, e.domain)
	for _, sh := range e.shards {
		for it, n := range sh.ItemSupports() {
			supports[it] += n
		}
	}
	return supports
}

// gather scatters query over the shards (no cancellation signal at the
// engine level — Store readers carry that) and merges to global order.
func (e *shardedEngine) gather(query func(shard int) ([]uint32, error)) ([]uint32, error) {
	return scatterGather(context.Background(), e.part,
		func(_ context.Context, s int) ([]uint32, error) { return query(s) })
}

func (e *shardedEngine) Subset(qs []Item) ([]uint32, error) {
	return e.gather(func(s int) ([]uint32, error) { return e.shards[s].Subset(qs) })
}

func (e *shardedEngine) Equality(qs []Item) ([]uint32, error) {
	return e.gather(func(s int) ([]uint32, error) { return e.shards[s].Equality(qs) })
}

func (e *shardedEngine) Superset(qs []Item) ([]uint32, error) {
	return e.gather(func(s int) ([]uint32, error) { return e.shards[s].Superset(qs) })
}

// Insert routes the record to the shard the partitioner assigns its
// global id, so the id mapping stays exact across updates. The
// partition counter advances only after the shard accepted the record:
// an error leaves the mapping untouched, so the next Insert retries the
// same global id on the same shard.
func (e *shardedEngine) Insert(set []Item) (uint32, error) {
	global := e.nextID + 1
	s, want := e.part.Locate(global)
	local, err := e.shards[s].Insert(set)
	if err != nil {
		return 0, err
	}
	if local != want {
		return 0, fmt.Errorf("setcontain: shard %d id drift: local %d maps to %d, want %d",
			s, local, e.part.GlobalOf(s, local), global)
	}
	e.nextID = global
	e.plans[s].Records++
	return global, nil
}

// Delete routes the tombstone to the shard owning the global id via the
// partitioner's inverse mapping; the masked id never surfaces from any
// shard's stream again.
func (e *shardedEngine) Delete(id uint32) error {
	if id == 0 || id > e.nextID {
		return fmt.Errorf("setcontain: delete of unknown record %d (have %d)", id, e.nextID)
	}
	s, local := e.part.Locate(id)
	return e.shards[s].Delete(local)
}

// Deleted sums the shards' tombstone counts.
func (e *shardedEngine) Deleted() int {
	total := 0
	for _, sh := range e.shards {
		total += sh.Deleted()
	}
	return total
}

// MergeDelta folds every shard's pending inserts and tombstones in
// parallel.
func (e *shardedEngine) MergeDelta() error {
	return errors.Join(forEachShard(len(e.shards), 0, func(s int) error {
		return e.shards[s].MergeDelta()
	})...)
}

func (e *shardedEngine) PendingInserts() int {
	total := 0
	for _, sh := range e.shards {
		total += sh.PendingInserts()
	}
	return total
}

// NewReader creates one reader per shard, each with its own cache of
// cachePages pages (the budget is per shard: every shard fans out its
// own list walks). The combined reader answers like the engine —
// parallel fan-out, global-order merge — and propagates interrupts to
// every shard pool, which is how Store cancellation reaches all shards.
func (e *shardedEngine) NewReader(cachePages int) (*Reader, error) {
	sr := &shardedReader{shards: make([]*Reader, len(e.shards)), part: e.part}
	for s, sh := range e.shards {
		r, err := sh.NewReader(cachePages)
		if err != nil {
			return nil, err
		}
		sr.shards[s] = r
	}
	return &Reader{r: sr}, nil
}

func (e *shardedEngine) Space() SpaceInfo {
	var total SpaceInfo
	for _, sh := range e.shards {
		s := sh.Space()
		total.Pages += s.Pages
		total.Bytes += s.Bytes
	}
	return total
}

func (e *shardedEngine) Stats() CacheStats {
	var total CacheStats
	for _, sh := range e.shards {
		s := sh.Stats()
		total.Hits += s.Hits
		total.PageReads += s.PageReads
		total.Sequential += s.Sequential
		total.Near += s.Near
		total.Random += s.Random
	}
	return total
}

func (e *shardedEngine) ResetStats() {
	for _, sh := range e.shards {
		sh.ResetStats()
	}
}

// DecodedStats sums the decoded-block cache statistics of the shards
// whose inner engines keep one (the planner's OIF shards).
func (e *shardedEngine) DecodedStats() DecodedCacheStats {
	var total DecodedCacheStats
	for _, sh := range e.shards {
		if ds, ok := sh.(decodedStatser); ok {
			total = total.add(ds.DecodedStats())
		}
	}
	return total
}

func (e *shardedEngine) SetPool(*storage.BufferPool) error { return errShardedPool }

// Pool returns the first shard's pool so pool-shape probes (page size,
// pager identity) keep working; metering must go per shard. Remote
// shards have no local pool — the probe then reports nil.
func (e *shardedEngine) Pool() *storage.BufferPool { return e.shards[0].Pool() }

// shardedReader is the engineReader behind a sharded Reader: isolated
// per-shard readers queried with the same scatter-gather as the engine.
type shardedReader struct {
	shards []*Reader
	part   Partitioner
}

// gather mirrors shardedEngine.gather on the reader's shard handles.
// Cancellation flows through the interrupt hooks installed by
// setInterrupt rather than the context, so the engine-level Queryable
// surface stays context-free.
func (r *shardedReader) gather(query func(shard int) ([]uint32, error)) ([]uint32, error) {
	return scatterGather(context.Background(), r.part,
		func(_ context.Context, s int) ([]uint32, error) { return query(s) })
}

func (r *shardedReader) Subset(qs []Item) ([]uint32, error) {
	return r.gather(func(s int) ([]uint32, error) { return r.shards[s].Subset(qs) })
}

func (r *shardedReader) Equality(qs []Item) ([]uint32, error) {
	return r.gather(func(s int) ([]uint32, error) { return r.shards[s].Equality(qs) })
}

func (r *shardedReader) Superset(qs []Item) ([]uint32, error) {
	return r.gather(func(s int) ([]uint32, error) { return r.shards[s].Superset(qs) })
}

func (r *shardedReader) Stats() storage.AccessStats {
	var total storage.AccessStats
	for _, sh := range r.shards {
		s := sh.r.Stats()
		total.Hits += s.Hits
		total.Misses += s.Misses
		total.SeqMisses += s.SeqMisses
		total.NearMisses += s.NearMisses
		total.RandMisses += s.RandMisses
	}
	return total
}

func (r *shardedReader) ResetStats() {
	for _, sh := range r.shards {
		sh.ResetCacheStats()
	}
}

// DecodedStats sums the shard readers' decoded-block cache statistics.
func (r *shardedReader) DecodedStats() DecodedCacheStats {
	var total DecodedCacheStats
	for _, sh := range r.shards {
		total = total.add(sh.DecodedCacheStats())
	}
	return total
}

// Pool returns the first shard reader's pool (see shardedEngine.Pool);
// interrupts go through setInterrupt, which reaches every shard.
func (r *shardedReader) Pool() *storage.BufferPool { return r.shards[0].r.Pool() }

// setInterrupt installs the cancellation hook on every shard's pool, so
// a context cancelled mid-query stops all shard fan-outs at their next
// block read. The hook must be safe for concurrent calls — the shards
// consult it in parallel.
func (r *shardedReader) setInterrupt(fn func() error) {
	for _, sh := range r.shards {
		sh.setInterrupt(fn)
	}
}
