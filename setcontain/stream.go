package setcontain

import (
	"strings"

	"repro/internal/invfile"
)

// The streaming execution tier under ExprPlan. Three mechanisms let a
// planned evaluation touch less of the index than full per-leaf
// materialization:
//
//   - Streaming AND pushdown: once an AND node holds a non-empty
//     intermediate, a later subset leaf is answered *within* that
//     candidate set (subsetWithiner) — the OIF validates Theorem 1's
//     discard rule per candidate instead of building the leaf's full
//     answer and intersecting.
//   - Lazy leaf cursors: on an inverted file a subset leaf decodes its
//     postings on demand (subsetCursorer); a limit-bounded evaluation
//     that stops after n ids never touches the bytes it didn't reach.
//   - Cross-query subexpression caching: ExecExprBatchAppend
//     canonicalizes plan subtrees across one micro-batch and evaluates
//     each distinct shared subtree once (cseState).
//
// Nodes whose results feed more than one consumer — shared CSE
// subtrees — fall back to materialization, which is what makes the
// streaming answers byte-identical to the materializing evaluator.

// EvalMode selects how a planned evaluation executes its leaves.
type EvalMode int

const (
	// EvalAuto uses every streaming capability the target offers:
	// candidate pushdown into subset leaves under AND, lazy posting
	// cursors under a limit. Answers are byte-identical to
	// EvalMaterialize; only the work to produce them differs.
	EvalAuto EvalMode = iota
	// EvalMaterialize forces full leaf materialization — the reference
	// behaviour, and the baseline BenchmarkExprStream measures against.
	EvalMaterialize
)

// Evaluator carries the reusable state of planned evaluations: the free
// list recycling intermediate buffers across calls and the evaluation
// mode. The zero value streams (EvalAuto) with an empty free list; a
// long-lived Evaluator reaching steady state evaluates expressions with
// zero heap allocations on an append-capable target. An Evaluator is
// not safe for concurrent use — pool them like readers (Store does).
type Evaluator struct {
	// Mode selects streaming (EvalAuto, the zero value) or forced
	// materialization (EvalMaterialize).
	Mode EvalMode

	free [][]uint32
}

// NewEvaluator returns an evaluator in the given mode.
func NewEvaluator(mode EvalMode) *Evaluator { return &Evaluator{Mode: mode} }

// Eval answers the planned expression against t; see ExprPlan.Eval.
func (evr *Evaluator) Eval(p *ExprPlan, t Queryable) ([]uint32, ExprEvalStats, error) {
	ids, st, err := evr.EvalAppend(nil, p, t)
	if err != nil {
		return nil, st, err
	}
	if ids == nil {
		ids = []uint32{}
	}
	return ids, st, nil
}

// EvalAppend answers the planned expression against t, appending to
// dst; see ExprPlan.EvalAppend. Intermediates recycle through the
// evaluator's free list, which persists across calls — the reuse that
// makes steady-state evaluation allocation-free.
func (evr *Evaluator) EvalAppend(dst []uint32, p *ExprPlan, t Queryable) ([]uint32, ExprEvalStats, error) {
	ev := evr.newEval(t)
	ids, owned, err := ev.eval(p.Root)
	if err != nil {
		return nil, ev.stats, err
	}
	if cap(dst) == 0 && owned {
		// No backing array to preserve: hand the result buffer out
		// directly (it leaves the free list, which simply grows a fresh
		// one next time).
		if ids == nil {
			ids = []uint32{}
		}
		return ids, ev.stats, nil
	}
	out := append(dst, ids...)
	ev.put(ids, owned)
	return out, ev.stats, nil
}

// EvalLimitAppend answers the first `limit` ids of the planned
// expression against t, appending to dst — the early-exit entry point.
// The evaluation is cursor-driven: subset leaves on a cursor-capable
// target (the inverted file) decode postings lazily, OR nodes k-way
// merge their children's cursors in ascending id order, and everything
// else materializes into a cursor over its answer. Once `limit` ids
// have been produced the remaining cursor state is abandoned — postings
// past the stop point are never decoded. limit <= 0 means no limit.
//
// The result is exactly the first `limit` ids of the unlimited answer
// (ascending, unique).
func (evr *Evaluator) EvalLimitAppend(dst []uint32, p *ExprPlan, t Queryable, limit int) ([]uint32, ExprEvalStats, error) {
	if limit <= 0 {
		return evr.EvalAppend(dst, p, t)
	}
	ev := evr.newEval(t)
	cur, err := ev.cursor(p.Root)
	if err != nil {
		return nil, ev.stats, err
	}
	for n := 0; n < limit; n++ {
		id, ok, err := cur.Next()
		if err != nil {
			return nil, ev.stats, err
		}
		if !ok {
			break
		}
		dst = append(dst, id)
	}
	return dst, ev.stats, nil
}

// newEval starts one evaluation against t, discovering t's streaming
// capabilities unless the mode forbids using them.
func (evr *Evaluator) newEval(t Queryable) exprEval {
	ev := exprEval{t: t, owner: evr}
	if evr.Mode == EvalAuto {
		ev.within = withinerOf(t)
		ev.cursors = cursorerOf(t)
	}
	return ev
}

// --- streaming capabilities ---------------------------------------------

// subsetWithiner is the candidate-pushdown capability: the subset
// answer restricted to a sorted unique candidate id set, computed in
// one pass without materializing the full leaf answer. The OIF backend
// implements it — Theorem 1's discard rule is valid for arbitrary
// candidate ids (see core.Index.AppendSubsetWithin).
type subsetWithiner interface {
	AppendSubsetWithin(dst []uint32, qs []Item, cands []uint32) ([]uint32, error)
}

// subsetCursorer is the lazy-decode capability: a cursor over a subset
// answer that decodes postings on demand, so a cursor abandoned after n
// ids never decodes the bytes past them. The inverted-file backend
// implements it; the OIF cannot (its final new-id→original remap and
// sort need the whole answer first).
type subsetCursorer interface {
	SubsetCursor(qs []Item) (*invfile.SubsetCursor, error)
}

// withinerOf unwraps t to its candidate-pushdown capability, or nil.
// The facades (Index, Reader) are unwrapped to the backend they hold
// rather than asserted directly, so a capability is only ever reported
// by the engine that truly implements it.
func withinerOf(t Queryable) subsetWithiner {
	switch v := t.(type) {
	case *Index:
		return withinerOf(v.eng)
	case *Reader:
		if w, ok := v.r.(subsetWithiner); ok {
			return w
		}
	case subsetWithiner:
		return v
	}
	return nil
}

// cursorerOf unwraps t to its lazy-cursor capability, or nil.
func cursorerOf(t Queryable) subsetCursorer {
	switch v := t.(type) {
	case *Index:
		return cursorerOf(v.eng)
	case *Reader:
		if c, ok := v.r.(subsetCursorer); ok {
			return c
		}
	case subsetCursorer:
		return v
	}
	return nil
}

// --- cursors ------------------------------------------------------------

// idCursor streams one node's answer: ascending unique record ids,
// ok=false on exhaustion, sticky errors. invfile.SubsetCursor satisfies
// it natively; everything else adapts via sliceCursor / unionCursor.
type idCursor interface {
	Next() (id uint32, ok bool, err error)
}

// sliceCursor walks a materialized answer.
type sliceCursor struct {
	ids []uint32
	i   int
}

func (c *sliceCursor) Next() (uint32, bool, error) {
	if c.i >= len(c.ids) {
		return 0, false, nil
	}
	id := c.ids[c.i]
	c.i++
	return id, true, nil
}

// unionCursor k-way merges child cursors into one ascending unique
// stream: each Next yields the minimum of the live heads and advances
// every child sitting on it (the dedup). Abandoning the union abandons
// every child — lazy children never decode past the stop point.
type unionCursor struct {
	kids   []idCursor
	head   []uint32
	live   []bool
	primed bool
}

func newUnionCursor(kids []idCursor) *unionCursor {
	return &unionCursor{
		kids: kids,
		head: make([]uint32, len(kids)),
		live: make([]bool, len(kids)),
	}
}

func (c *unionCursor) Next() (uint32, bool, error) {
	if !c.primed {
		c.primed = true
		for i, k := range c.kids {
			id, ok, err := k.Next()
			if err != nil {
				return 0, false, err
			}
			c.head[i], c.live[i] = id, ok
		}
	}
	min, found := uint32(0), false
	for i := range c.kids {
		if c.live[i] && (!found || c.head[i] < min) {
			min, found = c.head[i], true
		}
	}
	if !found {
		return 0, false, nil
	}
	for i, k := range c.kids {
		if c.live[i] && c.head[i] == min {
			id, ok, err := k.Next()
			if err != nil {
				return 0, false, err
			}
			c.head[i], c.live[i] = id, ok
		}
	}
	return min, true, nil
}

// cursor builds the streaming cursor for a plan node: lazy leaf cursors
// where the target offers them, k-way merges over OR children (the
// plan's cost-ascending child order puts the cheapest leg first, so the
// common early-stop case opens the expensive legs but barely reads
// them), and materialized answers everywhere else. Shared CSE subtrees
// materialize so their cached result stays reusable.
func (ev *exprEval) cursor(n *PlanNode) (idCursor, error) {
	if ev.cursors != nil && n.Op == OpLeaf && n.Leaf.Pred == PredicateSubset && !ev.cseShared(n) {
		ev.stats.EvaluatedLeaves++
		ev.stats.StreamedLeaves++
		return ev.cursors.SubsetCursor(n.Leaf.Items)
	}
	if n.Op == OpOr {
		kids := make([]idCursor, len(n.Kids))
		for i, k := range n.Kids {
			c, err := ev.cursor(k)
			if err != nil {
				return nil, err
			}
			kids[i] = c
		}
		return newUnionCursor(kids), nil
	}
	ids, _, err := ev.eval(n)
	if err != nil {
		return nil, err
	}
	// The backing buffer stays out of the free list while the cursor
	// walks it; a limit-bounded evaluation ends soon after.
	return &sliceCursor{ids: ids}, nil
}

// --- cross-query subexpression cache ------------------------------------

// cseState is one micro-batch's common-subexpression cache: plan nodes
// whose canonical form occurs at least twice across the batch map to a
// key, and the first evaluation of each key materializes into cache for
// every later occurrence to reuse. Cached slices are returned un-owned,
// so they are never recycled or mutated while the batch runs.
type cseState struct {
	keys  map[*PlanNode]string
	cache map[string][]uint32

	hits, misses, savedLeaves int
}

// cseShared reports whether n's result is shared across the batch —
// such nodes must materialize (their cached answer feeds several
// consumers), never stream.
func (ev *exprEval) cseShared(n *PlanNode) bool {
	if ev.cse == nil {
		return false
	}
	_, ok := ev.cse.keys[n]
	return ok
}

// planCanon writes n's canonical form: the minimal textual rendering of
// the *planned* tree. Because the planner orders children with a stable
// cost sort against one shared profile, structurally equal expression
// subtrees across a batch produce identical canonical strings.
func planCanon(n *PlanNode, b *strings.Builder) {
	if n.Op == OpLeaf {
		b.WriteString(n.Leaf.String())
		return
	}
	b.WriteString(n.Op.String())
	b.WriteByte('(')
	for i, k := range n.Kids {
		if i > 0 {
			b.WriteByte(',')
		}
		planCanon(k, b)
	}
	b.WriteByte(')')
}

// collectCSE scans the batch's plans and returns the shared-subtree
// cache, or nil when no subtree repeats (the common case costs one tree
// walk and no per-node overhead during evaluation).
func collectCSE(plans []*ExprPlan) *cseState {
	count := make(map[string]int)
	keyOf := make(map[*PlanNode]string)
	var walk func(n *PlanNode)
	walk = func(n *PlanNode) {
		var b strings.Builder
		planCanon(n, &b)
		key := b.String()
		keyOf[n] = key
		count[key]++
		for _, k := range n.Kids {
			walk(k)
		}
	}
	for _, p := range plans {
		if p != nil {
			walk(p.Root)
		}
	}
	shared := make(map[*PlanNode]string)
	for n, key := range keyOf {
		if count[key] >= 2 {
			shared[n] = key
		}
	}
	if len(shared) == 0 {
		return nil
	}
	return &cseState{keys: shared, cache: make(map[string][]uint32)}
}

// evalCSE evaluates one batch item's plan against t with the batch's
// shared subexpression cache; a positive limit runs the cursor-driven
// early exit (shared subtrees still materialize through the cache, so
// batchmates reuse them). The answer is always copied into dst: cached
// slices must stay private to the batch.
func (evr *Evaluator) evalCSE(dst []uint32, p *ExprPlan, t Queryable, cse *cseState, limit int) ([]uint32, ExprEvalStats, error) {
	ev := evr.newEval(t)
	ev.cse = cse
	if limit > 0 {
		cur, err := ev.cursor(p.Root)
		if err != nil {
			return nil, ev.stats, err
		}
		for n := 0; n < limit; n++ {
			id, ok, err := cur.Next()
			if err != nil {
				return nil, ev.stats, err
			}
			if !ok {
				break
			}
			dst = append(dst, id)
		}
		return dst, ev.stats, nil
	}
	ids, owned, err := ev.eval(p.Root)
	if err != nil {
		return nil, ev.stats, err
	}
	out := append(dst, ids...)
	ev.put(ids, owned)
	return out, ev.stats, nil
}
