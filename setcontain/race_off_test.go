//go:build !race

package setcontain_test

// raceEnabled reports that the race detector is instrumenting this
// build.
const raceEnabled = false
