package setcontain_test

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/setcontain"
)

// hotTestCollection builds a skewed synthetic collection big enough to
// exercise multi-block lists but quick to index in a unit test.
func hotTestCollection(t testing.TB) *setcontain.Collection {
	t.Helper()
	d, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		NumRecords: 8000,
		DomainSize: 400,
		MinLen:     2,
		MaxLen:     16,
		ZipfTheta:  0.9,
		Seed:       11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return setcontain.WrapDataset(d)
}

// hotTestQueries draws a deterministic mixed workload whose items follow
// the records' own skew (sampling record sets, like the paper's query
// generator).
func hotTestQueries(t testing.TB, c *setcontain.Collection, count int) []setcontain.Query {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	preds := []setcontain.Predicate{
		setcontain.PredicateSubset,
		setcontain.PredicateEquality,
		setcontain.PredicateSuperset,
	}
	var qs []setcontain.Query
	for len(qs) < count {
		set, err := c.Record(uint32(1 + rng.Intn(c.Len())))
		if err != nil {
			t.Fatal(err)
		}
		if len(set) < 2 {
			continue
		}
		k := 2 + rng.Intn(len(set)-1)
		items := append([]setcontain.Item(nil), set...)
		rng.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })
		items = items[:k]
		qs = append(qs, setcontain.Query{Pred: preds[len(qs)%len(preds)], Items: items})
	}
	return qs
}

// TestStoreExecAppendZeroAllocs is the zero-allocation regression gate:
// steady-state Store.ExecAppend over a warm OIF store must not allocate
// for any of the three predicates.
func TestStoreExecAppendZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; run without -race")
	}
	c := hotTestCollection(t)
	idx, err := setcontain.New(c,
		setcontain.WithKind(setcontain.OIF),
		setcontain.WithCachePages(2048),
	)
	if err != nil {
		t.Fatal(err)
	}
	store := setcontain.NewStore(idx, 2048)
	ctx := context.Background()
	queries := hotTestQueries(t, c, 30)

	// Warm: run every query twice so page cache, decoded cache, arenas,
	// and the answer buffer all reach their high-water marks.
	dst := make([]uint32, 0, 64)
	for pass := 0; pass < 2; pass++ {
		for _, q := range queries {
			if dst, err = store.ExecAppend(ctx, dst[:0], q); err != nil {
				t.Fatal(err)
			}
		}
	}

	for _, q := range queries {
		q := q
		allocs := testing.AllocsPerRun(50, func() {
			var err error
			dst, err = store.ExecAppend(ctx, dst[:0], q)
			if err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%v: %.2f allocs per steady-state ExecAppend, want 0", q, allocs)
		}
	}
}

// TestDecodedCacheSameAnswers is the cache-correctness property test:
// for every predicate and a large query mix, an OIF with the decoded
// cache enabled must return byte-identical answers to one with the
// cache disabled.
func TestDecodedCacheSameAnswers(t *testing.T) {
	c := hotTestCollection(t)
	cached, err := setcontain.New(c,
		setcontain.WithKind(setcontain.OIF),
		setcontain.WithDecodedCache(1024), // small: force admission churn too
	)
	if err != nil {
		t.Fatal(err)
	}
	uncached, err := setcontain.New(c,
		setcontain.WithKind(setcontain.OIF),
		setcontain.WithDecodedCache(-1),
	)
	if err != nil {
		t.Fatal(err)
	}
	queries := hotTestQueries(t, c, 120)
	// Two passes so the second round answers from a populated cache.
	for pass := 0; pass < 2; pass++ {
		for i, q := range queries {
			want, err := q.Eval(uncached)
			if err != nil {
				t.Fatal(err)
			}
			got, err := q.Eval(cached)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("pass %d query %d %v: %d ids cached vs %d uncached", pass, i, q, len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("pass %d query %d %v: id[%d] = %d cached vs %d uncached", pass, i, q, j, got[j], want[j])
				}
			}
		}
	}
	if st := cached.DecodedCacheStats(); st.Hits == 0 {
		t.Error("cached index reported no decoded-cache hits")
	}
	if st := uncached.DecodedCacheStats(); st.Hits+st.Misses != 0 {
		t.Errorf("uncached index reported decoded-cache traffic: %+v", st)
	}
}

// TestDecodedCacheStatsSurface checks the stats plumbing across engine,
// reader, and sharded aggregation.
func TestDecodedCacheStatsSurface(t *testing.T) {
	c := hotTestCollection(t)
	idx, err := setcontain.New(c, setcontain.WithKind(setcontain.OIF))
	if err != nil {
		t.Fatal(err)
	}
	queries := hotTestQueries(t, c, 12)
	for _, q := range queries {
		if _, err := q.Eval(idx); err != nil {
			t.Fatal(err)
		}
	}
	st := idx.DecodedCacheStats()
	if st.Hits+st.Misses == 0 {
		t.Error("engine decoded-cache stats empty after queries")
	}
	if st.Capacity != setcontain.DefaultDecodedCachePostings {
		t.Errorf("capacity = %d, want default %d", st.Capacity, setcontain.DefaultDecodedCachePostings)
	}
	if hr := st.HitRate(); hr < 0 || hr > 1 {
		t.Errorf("hit rate %f outside [0,1]", hr)
	}

	// Readers carry private caches.
	r, err := idx.NewReader(0)
	if err != nil {
		t.Fatal(err)
	}
	if st := r.DecodedCacheStats(); st.Hits+st.Misses != 0 {
		t.Errorf("fresh reader already has decoded traffic: %+v", st)
	}
	for _, q := range queries {
		if _, err := r.Eval(q); err != nil {
			t.Fatal(err)
		}
	}
	if st := r.DecodedCacheStats(); st.Hits+st.Misses == 0 {
		t.Error("reader decoded-cache stats empty after queries")
	}

	// Sharded engines aggregate across their OIF shards; with the
	// skewed fixture the planner picks the OIF for every shard.
	sharded, err := setcontain.New(c,
		setcontain.WithKind(setcontain.Sharded),
		setcontain.WithShards(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		if _, err := q.Eval(sharded); err != nil {
			t.Fatal(err)
		}
	}
	if st := sharded.DecodedCacheStats(); st.Hits+st.Misses == 0 {
		t.Error("sharded decoded-cache stats empty after queries")
	}

	// Disabled cache: zero traffic, zero capacity.
	off, err := setcontain.New(c,
		setcontain.WithKind(setcontain.OIF),
		setcontain.WithDecodedCache(-1),
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		if _, err := q.Eval(off); err != nil {
			t.Fatal(err)
		}
	}
	if st := off.DecodedCacheStats(); st != (setcontain.DecodedCacheStats{}) {
		t.Errorf("disabled cache reported %+v", st)
	}
}

// TestExecAppendMatchesExec pins the append-form contract: identical
// answers to Exec, existing dst preserved.
func TestExecAppendMatchesExec(t *testing.T) {
	c := hotTestCollection(t)
	for _, kind := range []setcontain.Kind{setcontain.OIF, setcontain.InvertedFile} {
		idx, err := setcontain.New(c, setcontain.WithKind(kind))
		if err != nil {
			t.Fatal(err)
		}
		store := setcontain.NewStore(idx, 0)
		ctx := context.Background()
		for _, q := range hotTestQueries(t, c, 30) {
			want, err := store.Exec(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			prefix := []uint32{7, 3}
			got, err := store.ExecAppend(ctx, prefix, q)
			if err != nil {
				t.Fatal(err)
			}
			if got[0] != 7 || got[1] != 3 {
				t.Fatalf("%v on %v: ExecAppend clobbered dst prefix: %v", q, kind, got[:2])
			}
			if len(got)-2 != len(want) {
				t.Fatalf("%v on %v: %d appended ids, want %d", q, kind, len(got)-2, len(want))
			}
			for i := range want {
				if got[i+2] != want[i] {
					t.Fatalf("%v on %v: id[%d] = %d, want %d", q, kind, i, got[i+2], want[i])
				}
			}
		}
	}
}
