package setcontain

import (
	"errors"
	"fmt"
	"slices"
	"testing"
)

// TestRoundRobinRoundTrip pins the Partitioner contract on the default
// scheme: Locate/GlobalOf are inverse bijections, shards and locals
// stay in range, and ascending globals on one shard map to ascending
// locals (the monotonicity the k-way merge relies on).
func TestRoundRobinRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16} {
		part := NewRoundRobinPartitioner(n)
		if part.NumShards() != n || part.Scheme() != SchemeRoundRobin {
			t.Fatalf("n=%d: NumShards=%d Scheme=%d", n, part.NumShards(), part.Scheme())
		}
		lastLocal := make([]uint32, n)
		for g := uint32(1); g <= 1000; g++ {
			s, local := part.Locate(g)
			if s < 0 || s >= n {
				t.Fatalf("n=%d: global %d routed to shard %d", n, g, s)
			}
			if local == 0 {
				t.Fatalf("n=%d: global %d got local id 0", n, g)
			}
			if back := part.GlobalOf(s, local); back != g {
				t.Fatalf("n=%d: GlobalOf(%d, %d) = %d, want %d", n, s, local, back, g)
			}
			if local <= lastLocal[s] {
				t.Fatalf("n=%d: shard %d local ids not ascending: %d after %d",
					n, s, local, lastLocal[s])
			}
			lastLocal[s] = local
		}
		// The first n globals must cover every shard exactly once — the
		// balance property the round-robin scheme exists for.
		seen := make([]bool, n)
		for g := uint32(1); g <= uint32(n); g++ {
			s, _ := part.Locate(g)
			seen[s] = true
		}
		for s, ok := range seen {
			if !ok {
				t.Fatalf("n=%d: shard %d unused by the first %d globals", n, s, n)
			}
		}
	}
}

// TestPartitionerSchemeRegistry: snapshots name their scheme by number;
// known numbers reconstruct a partitioner, unknown ones fail as a bad
// snapshot rather than silently round-robining foreign data.
func TestPartitionerSchemeRegistry(t *testing.T) {
	part, err := partitionerOfScheme(SchemeRoundRobin, 4)
	if err != nil {
		t.Fatal(err)
	}
	if part.NumShards() != 4 || part.Scheme() != SchemeRoundRobin {
		t.Fatalf("registry rebuilt %d shards, scheme %d", part.NumShards(), part.Scheme())
	}
	if _, err := partitionerOfScheme(PartitionScheme(42), 4); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("unknown scheme: got %v, want ErrBadSnapshot", err)
	}
}

// reversedRobin is round-robin with the shard order flipped — a
// deliberately different (but still bijective and per-shard monotone)
// scheme, implemented entirely in this test file.
type reversedRobin struct {
	n uint32
}

func (p reversedRobin) NumShards() int { return int(p.n) }
func (p reversedRobin) Locate(global uint32) (int, uint32) {
	return int(p.n - 1 - (global-1)%p.n), (global-1)/p.n + 1
}
func (p reversedRobin) GlobalOf(shard int, local uint32) uint32 {
	return (local-1)*p.n + (p.n - 1 - uint32(shard)) + 1
}
func (p reversedRobin) Scheme() PartitionScheme { return PartitionScheme(7) }

// TestAlternativePartitionerPlugsIn is the deduplication regression
// test: with the id arithmetic centralized in the Partitioner, swapping
// the scheme means implementing the four-method interface and handing
// it to the build — no edits to sharded.go, scatter.go, or any query
// path. Build, query, and update answers under the reversed scheme must
// stay byte-identical to the single-engine reference.
func TestAlternativePartitionerPlugsIn(t *testing.T) {
	const domain = 40
	c := skewedCollection(t, 1200, domain, 0.9, 91)
	single, err := New(c, WithKind(OIF), WithPageSize(512), WithBlockPostings(8))
	if err != nil {
		t.Fatal(err)
	}
	opts := NewOptions(WithKind(Sharded), WithPageSize(512), WithBlockPostings(8))
	eng, err := buildShardedWith(c.ds, opts, reversedRobin{n: 3})
	if err != nil {
		t.Fatal(err)
	}
	reversed := IndexOver(eng)

	compare := func(stage string) {
		t.Helper()
		for _, q := range zipfWorkload(80, domain, 0.9, 92) {
			want, err := single.Eval(q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := reversed.Eval(q)
			if err != nil {
				t.Fatal(err)
			}
			if !slices.Equal(got, want) && !(len(got) == 0 && len(want) == 0) {
				t.Fatalf("%s %s: reversed scheme %v, single %v", stage, q, got, want)
			}
		}
	}
	compare("built")

	// The mutation path routes through the same Partitioner: ids and
	// answers must keep matching across inserts, deletes, and the merge.
	for i, set := range [][]Item{{1, 2, 3}, {2, 4}, {5}, {1, 6, 7}, {3, 4, 5}} {
		a, err := single.Insert(set)
		if err != nil {
			t.Fatal(err)
		}
		b, err := reversed.Insert(set)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("insert %d: single id %d, reversed-scheme id %d", i, a, b)
		}
	}
	for _, id := range []uint32{3, 10, 1201} {
		if err := single.Delete(id); err != nil {
			t.Fatal(err)
		}
		if err := reversed.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	compare("pending")
	if err := single.MergeDelta(); err != nil {
		t.Fatal(err)
	}
	if err := reversed.MergeDelta(); err != nil {
		t.Fatal(err)
	}
	compare("merged")

	// Sanity: the two schemes really do disagree on placement, so the
	// equality above is evidence the Partitioner is consulted, not luck.
	rr := NewRoundRobinPartitioner(3)
	diverged := false
	for g := uint32(1); g <= 6; g++ {
		s1, _ := rr.Locate(g)
		s2, _ := reversedRobin{n: 3}.Locate(g)
		if s1 != s2 {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("reversedRobin places records like round-robin; test proves nothing")
	}
}

// TestNewRoundRobinPartitionerPanics: a zero-shard partitioner is a
// programming error, caught at construction.
func TestNewRoundRobinPartitionerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRoundRobinPartitioner(0) did not panic")
		}
	}()
	NewRoundRobinPartitioner(0)
}

// ExampleNewRoundRobinPartitioner documents the id arithmetic.
func ExampleNewRoundRobinPartitioner() {
	part := NewRoundRobinPartitioner(3)
	for g := uint32(1); g <= 6; g++ {
		s, local := part.Locate(g)
		fmt.Printf("global %d -> shard %d local %d\n", g, s, local)
	}
	// Output:
	// global 1 -> shard 0 local 1
	// global 2 -> shard 1 local 1
	// global 3 -> shard 2 local 1
	// global 4 -> shard 0 local 2
	// global 5 -> shard 1 local 2
	// global 6 -> shard 2 local 2
}
