package setcontain

import (
	"fmt"
	"strings"
)

// Expr is a boolean predicate tree over containment queries: AND/OR/NOT
// nodes whose leaves are plain Queries. It is the full query surface —
// a single Query is the one-leaf degenerate case (ExprOf), so every
// entry point that accepts an Expr subsumes the Query forms.
//
// The textual form round-trips through ParseExpr and Expr.String and is
// the wire vocabulary of the serve package's ?q= parameter:
//
//	subset{3 17} and not superset{29}
//	(subset{1} or equality{2 3}) and subset{4}
//
// Semantics are set algebra over answer id sets: AND intersects, OR
// unites, and NOT complements against the universe of live record ids
// (the answer of subset{} — the empty query matches every record, with
// tombstoned ids already masked). Evaluation orders are planned
// cost-based by PlanExpr / Store.ExecExpr; Expr.Eval is the naive
// left-to-right reference.
type Expr struct {
	// Op is the node type; the zero value (OpLeaf) makes the zero Expr
	// an (invalid) empty leaf — build expressions with the constructors
	// or ParseExpr.
	Op ExprOp
	// Leaf is the containment query of an OpLeaf node.
	Leaf Query
	// Kids are the children: at least two for OpAnd/OpOr (the
	// constructors flatten nested same-op children), exactly one for
	// OpNot, none for OpLeaf.
	Kids []*Expr
}

// ExprOp is an expression node type.
type ExprOp uint8

// The expression node types.
const (
	// OpLeaf is a containment-query leaf.
	OpLeaf ExprOp = iota
	// OpAnd intersects its children's answers.
	OpAnd
	// OpOr unites its children's answers.
	OpOr
	// OpNot complements its child's answer against the live-id universe.
	OpNot
)

// String names the operator as the grammar spells it.
func (op ExprOp) String() string {
	switch op {
	case OpLeaf:
		return "leaf"
	case OpAnd:
		return "and"
	case OpOr:
		return "or"
	case OpNot:
		return "not"
	default:
		return fmt.Sprintf("ExprOp(%d)", uint8(op))
	}
}

// ExprOf wraps a Query as a one-leaf expression — the degenerate case
// that keeps every existing single-predicate caller expressible on the
// expression surface.
func ExprOf(q Query) *Expr { return &Expr{Op: OpLeaf, Leaf: q} }

// And returns the conjunction of the given expressions. Nested And
// children are flattened and a single child is returned as-is, so the
// constructors build the same canonical shape the parser produces.
func And(kids ...*Expr) *Expr { return nary(OpAnd, kids) }

// Or returns the disjunction of the given expressions, flattened like And.
func Or(kids ...*Expr) *Expr { return nary(OpOr, kids) }

// Not returns the complement of e against the universe of live records.
func Not(e *Expr) *Expr { return &Expr{Op: OpNot, Kids: []*Expr{e}} }

func nary(op ExprOp, kids []*Expr) *Expr {
	flat := make([]*Expr, 0, len(kids))
	for _, k := range kids {
		if k != nil && k.Op == op {
			flat = append(flat, k.Kids...)
			continue
		}
		flat = append(flat, k)
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return &Expr{Op: op, Kids: flat}
}

// AsQuery returns the leaf's query when the expression is the one-leaf
// degenerate case; callers use it to route plain queries through the
// original single-predicate paths (the serve package's batcher does).
func (e *Expr) AsQuery() (Query, bool) {
	if e != nil && e.Op == OpLeaf {
		return e.Leaf, true
	}
	return Query{}, false
}

// Leaves returns the number of containment leaves in the tree.
func (e *Expr) Leaves() int {
	if e == nil {
		return 0
	}
	if e.Op == OpLeaf {
		return 1
	}
	n := 0
	for _, k := range e.Kids {
		n += k.Leaves()
	}
	return n
}

// validate checks structural invariants: known ops and predicates,
// correct child counts. Every evaluation entry point calls it once at
// the root, so malformed hand-built trees fail fast with a clear error
// instead of misbehaving mid-evaluation.
func (e *Expr) validate() error {
	if e == nil {
		return fmt.Errorf("setcontain: nil expression")
	}
	switch e.Op {
	case OpLeaf:
		if len(e.Kids) != 0 {
			return fmt.Errorf("setcontain: leaf with %d children", len(e.Kids))
		}
		if !e.Leaf.Pred.known() {
			return ErrUnknownPredicate
		}
		return nil
	case OpNot:
		if len(e.Kids) != 1 {
			return fmt.Errorf("setcontain: not with %d children", len(e.Kids))
		}
		return e.Kids[0].validate()
	case OpAnd, OpOr:
		if len(e.Kids) < 2 {
			return fmt.Errorf("setcontain: %s with %d children", e.Op, len(e.Kids))
		}
		for _, k := range e.Kids {
			if err := k.validate(); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("setcontain: unknown expression op %s", e.Op)
	}
}

// Operator binding strength, loosest first: or < and < not < leaf.
// String parenthesizes a child exactly when it binds looser than its
// context requires, so the output is minimal and reparses to the same
// tree.
func (e *Expr) prec() int {
	switch e.Op {
	case OpOr:
		return 1
	case OpAnd:
		return 2
	case OpNot:
		return 3
	default:
		return 4
	}
}

// String renders the expression in the grammar ParseExpr accepts, with
// minimal parentheses; ParseExpr(e.String()) reproduces the tree.
func (e *Expr) String() string {
	var b strings.Builder
	e.write(&b)
	return b.String()
}

func (e *Expr) write(b *strings.Builder) {
	switch e.Op {
	case OpLeaf:
		b.WriteString(e.Leaf.String())
	case OpNot:
		b.WriteString("not ")
		e.writeChild(b, e.Kids[0])
	case OpAnd:
		for i, k := range e.Kids {
			if i > 0 {
				b.WriteString(" and ")
			}
			e.writeChild(b, k)
		}
	case OpOr:
		for i, k := range e.Kids {
			if i > 0 {
				b.WriteString(" or ")
			}
			e.writeChild(b, k)
		}
	default:
		fmt.Fprintf(b, "<%s>", e.Op)
	}
}

func (e *Expr) writeChild(b *strings.Builder, k *Expr) {
	if k.prec() <= e.prec() && k.Op != e.Op {
		b.WriteByte('(')
		k.write(b)
		b.WriteByte(')')
		return
	}
	// Same-op nesting only arises in hand-built trees (the constructors
	// and the parser flatten); parenthesize it too so the string
	// round-trips to the flattened canonical form without ambiguity.
	if k.Op == e.Op && k.Op != OpNot {
		b.WriteByte('(')
		k.write(b)
		b.WriteByte(')')
		return
	}
	k.write(b)
}

// ParseError reports where parsing a query or expression failed: the
// byte offset into the input at which the scanner or parser stopped,
// plus a message describing what it wanted. ParseQuery and ParseExpr
// return it for every syntax failure, so callers — the serve package's
// 400 bodies in particular — can point clients at the exact position.
type ParseError struct {
	// Input is the full string being parsed.
	Input string
	// Offset is the byte offset of the failure in Input.
	Offset int
	// Msg describes the failure.
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("setcontain: query %q at offset %d: %s", e.Input, e.Offset, e.Msg)
}

// The expression grammar, EBNF (tokens separated by optional spaces;
// keywords and predicate names are case-insensitive):
//
//	expr      = or .
//	or        = and { "or" and } .
//	and       = unary { "and" unary } .
//	unary     = "not" unary | primary .
//	primary   = leaf | "(" expr ")" .
//	leaf      = predicate "{" { uint32 } "}" .
//	predicate = "subset" | "equality" | "superset" .

// ParseExpr parses the boolean expression grammar over containment
// leaves — "subset{3 17} and not superset{29}", parenthesized and
// nested arbitrarily — into an Expr. The leaf form is exactly
// ParseQuery's; "and" binds tighter than "or", "not" tighter than both,
// and parentheses group. The textual form round-trips: ParseExpr
// reproduces the tree Expr.String printed. Errors are *ParseError
// carrying the byte offset of the failure.
func ParseExpr(s string) (*Expr, error) {
	p := &exprParser{in: s}
	p.next()
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf(p.tok.off, "unexpected %s after expression", p.tok.describe())
	}
	return e, nil
}

// ParseQuery parses the textual form produced by Query.String —
// "subset{3 17 29}" — back into a Query, so the string form round-trips
// and can serve as a compact wire format. The predicate name is matched
// like ParsePredicate (case-insensitively); items are decimal uint32s
// separated by spaces, and "{}" denotes the empty query. Surrounding
// whitespace is ignored; anything after the closing brace is an error.
// Errors are *ParseError carrying the byte offset of the failure.
// ParseQuery accepts exactly the leaf rule of the expression grammar;
// use ParseExpr for full boolean expressions.
func ParseQuery(s string) (Query, error) {
	p := &exprParser{in: s}
	p.next()
	q, err := p.parseLeaf()
	if err != nil {
		return Query{}, err
	}
	if p.tok.kind != tokEOF {
		return Query{}, p.errf(p.tok.off, "unexpected %s after query", p.tok.describe())
	}
	return q, nil
}

// --- scanner / parser ---------------------------------------------------

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokLBrace
	tokRBrace
	tokLParen
	tokRParen
)

type token struct {
	kind tokKind
	text string
	off  int
}

func (t token) describe() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

type exprParser struct {
	in  string
	pos int
	tok token
}

func (p *exprParser) errf(off int, format string, args ...any) error {
	return &ParseError{Input: p.in, Offset: off, Msg: fmt.Sprintf(format, args...)}
}

// next advances to the following token; scan failures surface at the
// parse step that consumes the bad token.
func (p *exprParser) next() {
	for p.pos < len(p.in) && isSpace(p.in[p.pos]) {
		p.pos++
	}
	start := p.pos
	if p.pos >= len(p.in) {
		p.tok = token{kind: tokEOF, off: start}
		return
	}
	c := p.in[p.pos]
	switch {
	case c == '{':
		p.pos++
		p.tok = token{kind: tokLBrace, text: "{", off: start}
	case c == '}':
		p.pos++
		p.tok = token{kind: tokRBrace, text: "}", off: start}
	case c == '(':
		p.pos++
		p.tok = token{kind: tokLParen, text: "(", off: start}
	case c == ')':
		p.pos++
		p.tok = token{kind: tokRParen, text: ")", off: start}
	case isLetter(c):
		for p.pos < len(p.in) && isLetter(p.in[p.pos]) {
			p.pos++
		}
		p.tok = token{kind: tokIdent, text: p.in[start:p.pos], off: start}
	case c >= '0' && c <= '9':
		for p.pos < len(p.in) && p.in[p.pos] >= '0' && p.in[p.pos] <= '9' {
			p.pos++
		}
		p.tok = token{kind: tokNumber, text: p.in[start:p.pos], off: start}
	default:
		// Represent the bad byte as a one-char token; the consuming rule
		// reports it with its position.
		p.pos++
		p.tok = token{kind: tokIdent, text: p.in[start:p.pos], off: start}
	}
}

func isSpace(c byte) bool  { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }
func isLetter(c byte) bool { return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' }

// keyword reports whether the current token is the given keyword,
// case-insensitively.
func (p *exprParser) keyword(kw string) bool {
	return p.tok.kind == tokIdent && strings.EqualFold(p.tok.text, kw)
}

func (p *exprParser) parseOr() (*Expr, error) {
	kids := make([]*Expr, 0, 2)
	for {
		e, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		kids = append(kids, e)
		if !p.keyword("or") {
			break
		}
		p.next()
	}
	return Or(kids...), nil
}

func (p *exprParser) parseAnd() (*Expr, error) {
	kids := make([]*Expr, 0, 2)
	for {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		kids = append(kids, e)
		if !p.keyword("and") {
			break
		}
		p.next()
	}
	return And(kids...), nil
}

func (p *exprParser) parseUnary() (*Expr, error) {
	if p.keyword("not") {
		p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not(e), nil
	}
	return p.parsePrimary()
}

func (p *exprParser) parsePrimary() (*Expr, error) {
	if p.tok.kind == tokLParen {
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, p.errf(p.tok.off, "expected ')', found %s", p.tok.describe())
		}
		p.next()
		return e, nil
	}
	q, err := p.parseLeaf()
	if err != nil {
		return nil, err
	}
	return ExprOf(q), nil
}

// parseLeaf parses predicate{items...} — the leaf rule shared by
// ParseQuery and ParseExpr.
func (p *exprParser) parseLeaf() (Query, error) {
	if p.tok.kind != tokIdent {
		return Query{}, p.errf(p.tok.off, "expected a predicate (subset, equality, or superset), found %s", p.tok.describe())
	}
	pred, err := ParsePredicate(p.tok.text)
	if err != nil {
		return Query{}, p.errf(p.tok.off, "unknown predicate %q (want subset, equality, or superset)", p.tok.text)
	}
	p.next()
	if p.tok.kind != tokLBrace {
		return Query{}, p.errf(p.tok.off, "expected '{' after %s, found %s", pred, p.tok.describe())
	}
	p.next()
	var items []Item
	for p.tok.kind == tokNumber {
		var v uint64
		for i := 0; i < len(p.tok.text); i++ {
			v = v*10 + uint64(p.tok.text[i]-'0')
			if v > 1<<32-1 {
				return Query{}, p.errf(p.tok.off, "item %q overflows uint32", p.tok.text)
			}
		}
		items = append(items, Item(v))
		p.next()
	}
	if p.tok.kind != tokRBrace {
		return Query{}, p.errf(p.tok.off, "expected an item or '}', found %s", p.tok.describe())
	}
	p.next()
	return Query{Pred: pred, Items: items}, nil
}
