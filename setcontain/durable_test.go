package setcontain

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/fnv"
	"math/rand"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/wal"
)

// durableKinds are the engine configurations the recovery property is
// proven over: a single OIF engine (sequential id assignment) and a
// sharded engine (round-robin id assignment) — the two id-assignment
// disciplines replay must reproduce exactly.
var durableKinds = []struct {
	name string
	opts []Option
}{
	{"OIF", []Option{WithKind(OIF), WithPageSize(512), WithBlockPostings(8)}},
	{"Sharded", []Option{WithKind(Sharded), WithShards(3), WithPageSize(512), WithBlockPostings(8)}},
}

// durableDigest folds a fixed query workload's answers into one hash,
// so two indexes answer-compare in a single uint64.
func durableDigest(t *testing.T, idx *Index, queries []Query) uint64 {
	t.Helper()
	h := fnv.New64a()
	var word [8]byte
	for qi, q := range queries {
		ids, err := idx.Eval(q)
		if err != nil {
			t.Fatalf("digest query %d (%s): %v", qi, q, err)
		}
		binary.LittleEndian.PutUint64(word[:], uint64(len(ids))^uint64(qi)<<32)
		h.Write(word[:])
		for _, id := range ids {
			binary.LittleEndian.PutUint32(word[:4], id)
			h.Write(word[:4])
		}
	}
	return h.Sum64()
}

// durableStep is one scripted mutation. Every step is a single-record
// mutation (or a whole-index operation), so a step is either fully
// acknowledged or not acknowledged at all — which is exactly the
// granularity the acked-prefix recovery property is stated at.
type durableStep struct {
	op  byte   // 'i' insert, 'd' delete, 'm' merge, 'c' checkpoint
	set []Item // 'i'
	del int    // 'd': index into the ids acked so far
}

// durableScript builds a deterministic mutation script: mostly inserts,
// with deletes of earlier inserts, merges, and explicit checkpoints
// mixed in so the fault sweep lands mid-append, mid-checkpoint, and
// mid-truncate alike.
func durableScript(steps, domain int, seed int64) []durableStep {
	rng := rand.New(rand.NewSource(seed))
	z := dataset.NewZipf(domain, 0.8)
	script := make([]durableStep, 0, steps)
	inserts := 0
	for i := 0; i < steps; i++ {
		switch r := rng.Intn(10); {
		case r < 6 || inserts == 0:
			script = append(script, durableStep{op: 'i', set: z.SampleDistinct(rng, 1+rng.Intn(6))})
			inserts++
		case r < 8:
			script = append(script, durableStep{op: 'd', del: rng.Intn(inserts)})
		case r == 8:
			script = append(script, durableStep{op: 'm'})
		default:
			script = append(script, durableStep{op: 'c'})
		}
	}
	return script
}

// runDurableScript applies the script to d, recording what was
// acknowledged: for each acked insert the assigned id, for each acked
// delete the deleted id. Steps keep being attempted after a failure
// (they fail fast on the wedged log); a logical mutation acknowledged
// after the fault tripped would break the acked-prefix property, so
// that is asserted here.
func runDurableScript(t *testing.T, d *Durable, script []durableStep, faulty *wal.FaultyFS) (acked []durableStep, ackedIDs []uint32) {
	t.Helper()
	for si, st := range script {
		tripped := faulty != nil && faulty.Tripped()
		switch st.op {
		case 'i':
			ids, err := d.InsertSets([][]Item{st.set})
			if err == nil {
				if tripped {
					t.Fatalf("step %d: insert acked after fault tripped", si)
				}
				if len(ids) != 1 {
					t.Fatalf("step %d: %d ids for one set", si, len(ids))
				}
				acked = append(acked, st)
				ackedIDs = append(ackedIDs, ids[0])
			}
		case 'd':
			if st.del >= len(ackedIDs) {
				continue // its insert was never acked on this run
			}
			id := ackedIDs[st.del]
			err := d.DeleteIDs([]uint32{id})
			switch {
			case err == nil:
				if tripped {
					t.Fatalf("step %d: delete acked after fault tripped", si)
				}
				rec := st
				rec.del = int(id) // resolve to the concrete id for replaying onto the reference
				acked = append(acked, rec)
			case errors.Is(err, wal.ErrInjected) || tripped:
				// expected failure mode under fault
			default:
				// Deleting an already-deleted id is a legitimate engine
				// error when the script deletes the same slot twice.
			}
		case 'm':
			if err := d.MergeDelta(); err == nil {
				acked = append(acked, st)
			}
		case 'c':
			d.Checkpoint() // failure tolerated: durability never depends on it
		}
	}
	return acked, ackedIDs
}

// applyReference replays the acked script onto a freshly built index,
// verifying id assignment determinism along the way.
func applyReference(t *testing.T, idx *Index, acked []durableStep, ackedIDs []uint32) {
	t.Helper()
	next := 0
	for _, st := range acked {
		switch st.op {
		case 'i':
			id, err := idx.Insert(st.set)
			if err != nil {
				t.Fatalf("reference insert: %v", err)
			}
			if id != ackedIDs[next] {
				t.Fatalf("reference assigned id %d, durable run got %d", id, ackedIDs[next])
			}
			next++
		case 'd':
			if err := idx.Delete(uint32(st.del)); err != nil {
				t.Fatalf("reference delete %d: %v", st.del, err)
			}
		case 'm':
			if err := idx.MergeDelta(); err != nil {
				t.Fatalf("reference merge: %v", err)
			}
		}
	}
}

// TestDurableRecoveryProperty is the subsystem's acceptance test: crash
// the process at every possible filesystem operation — mid-append,
// mid-checkpoint-write, mid-truncation — via a FaultyFS over a MemFS
// with power-loss semantics, then recover and require the index to
// answer byte-identically to a never-crashed reference holding exactly
// the acknowledged mutations. Under -fsync always, an acked write never
// vanishes and an un-acked one never materializes.
func TestDurableRecoveryProperty(t *testing.T) {
	const domain = 40
	coll := skewedCollection(t, 150, domain, 0.8, 7)
	script := durableScript(70, domain, 8)
	queries := zipfWorkload(40, domain, 0.8, 9)

	for _, tc := range durableKinds {
		t.Run(tc.name, func(t *testing.T) {
			// Dry run without faults: establishes the op budget to sweep and
			// the fault-free digest.
			totalOps := runDurableOnce(t, coll, script, queries, tc.opts, 0)
			if totalOps < 20 {
				t.Fatalf("script exercised only %d fs ops", totalOps)
			}
			step := int64(1)
			if testing.Short() {
				step = 7
			}
			for failAt := int64(1); failAt <= totalOps; failAt += step {
				runDurableOnce(t, coll, script, queries, tc.opts, failAt)
			}
		})
	}
}

// runDurableOnce executes one crash-recovery round at the given fault
// point (0 = no fault) and returns the number of filesystem operations
// the run attempted.
func runDurableOnce(t *testing.T, coll *Collection, script []durableStep, queries []Query, opts []Option, failAt int64) int64 {
	t.Helper()
	mem := wal.NewMemFS()
	faulty := wal.NewFaultyFS(mem, failAt)
	dopts := DurableOptions{
		SegmentBytes:    512, // rotate every few records
		Sync:            wal.SyncAlways,
		CheckpointBytes: -1, // explicit checkpoints only: deterministic op counts
		FS:              faulty,
	}

	idx, err := New(coll, opts...)
	if err != nil {
		t.Fatal(err)
	}
	var acked []durableStep
	var ackedIDs []uint32
	d, err := NewDurable("w", idx, dopts)
	if err == nil {
		acked, ackedIDs = runDurableScript(t, d, script, faulty)
		d.Close()
	} else if failAt == 0 {
		t.Fatalf("fault-free bootstrap failed: %v", err)
	}
	// Power loss: volatile bytes gone. Recover on the bare MemFS.
	mem.Crash()
	d2, err := OpenDurable("w", DurableOptions{Sync: wal.SyncAlways, CheckpointBytes: -1, FS: mem})
	if errors.Is(err, ErrNoCheckpoint) {
		// The bootstrap's initial checkpoint never became durable; nothing
		// can have been acknowledged past it.
		if len(acked) != 0 {
			t.Fatalf("failAt %d: %d acked mutations but no checkpoint survived", failAt, len(acked))
		}
		return faulty.Ops()
	}
	if err != nil {
		t.Fatalf("failAt %d: recovery failed: %v", failAt, err)
	}
	defer d2.Close()

	ref, err := New(coll, opts...)
	if err != nil {
		t.Fatal(err)
	}
	applyReference(t, ref, acked, ackedIDs)
	if got, want := durableDigest(t, d2.Index(), queries), durableDigest(t, ref, queries); got != want {
		t.Fatalf("failAt %d: recovered digest %016x != reference %016x (%d acked mutations)",
			failAt, got, want, len(acked))
	}
	return faulty.Ops()
}

// TestDurableWedgeStopsMutations pins the divergence guard: after a log
// failure every further logical mutation fails with the original error,
// while queries keep answering.
func TestDurableWedgeStopsMutations(t *testing.T) {
	coll := skewedCollection(t, 50, 30, 0.8, 3)
	idx, err := New(coll, WithKind(OIF), WithPageSize(512), WithBlockPostings(8))
	if err != nil {
		t.Fatal(err)
	}
	mem := wal.NewMemFS()
	faulty := wal.NewFaultyFS(mem, 0)
	d, err := NewDurable("w", idx, DurableOptions{Sync: wal.SyncAlways, CheckpointBytes: -1, FS: faulty})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.InsertSets([][]Item{{1, 2, 3}}); err != nil {
		t.Fatalf("healthy insert: %v", err)
	}
	faulty.FailAt = faulty.Ops() + 1
	if _, err := d.InsertSets([][]Item{{4, 5}}); !errors.Is(err, wal.ErrInjected) {
		t.Fatalf("faulted insert = %v, want injected", err)
	}
	if _, err := d.InsertSets([][]Item{{6}}); !errors.Is(err, wal.ErrInjected) {
		t.Fatalf("post-wedge insert = %v, want injected", err)
	}
	if err := d.DeleteIDs([]uint32{1}); !errors.Is(err, wal.ErrInjected) {
		t.Fatalf("post-wedge delete = %v, want injected", err)
	}
	if err := d.Checkpoint(); err == nil {
		t.Fatalf("post-wedge checkpoint succeeded")
	}
	if !d.Stats().Log.Wedged {
		t.Fatalf("stats not wedged")
	}
	// Queries still answer on the in-memory index.
	if _, err := d.Index().Subset(nil); err != nil {
		t.Fatalf("query after wedge: %v", err)
	}
}

// TestDurableRoundTripOSFS exercises the real filesystem end to end:
// bootstrap, mutate, checkpoint, close, reopen, keep mutating.
func TestDurableRoundTripOSFS(t *testing.T) {
	dir := t.TempDir() + "/wal"
	coll := skewedCollection(t, 120, 30, 0.8, 5)
	queries := zipfWorkload(30, 30, 0.8, 6)
	idx, err := New(coll, WithKind(OIF), WithPageSize(512), WithBlockPostings(8))
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDurable(dir, idx, DurableOptions{Sync: wal.SyncAlways, SegmentBytes: 1024, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	ids, err := d.InsertSets([][]Item{{1, 2}, {3, 4, 5}, {2, 9}})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.DeleteIDs(ids[:1]); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.InsertSets([][]Item{{7, 8}}); err != nil {
		t.Fatal(err)
	}
	want := durableDigest(t, d.Index(), queries)
	wantRecords := d.Index().NumRecords()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDurable(dir, DurableOptions{Sync: wal.SyncAlways, SegmentBytes: 1024, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got := d2.Index().NumRecords(); got != wantRecords {
		t.Fatalf("recovered %d records, want %d", got, wantRecords)
	}
	if got := durableDigest(t, d2.Index(), queries); got != want {
		t.Fatalf("recovered digest %016x != pre-shutdown %016x", got, want)
	}
	st := d2.Stats()
	if st.Replay.Records != 1 { // the post-checkpoint insert
		t.Fatalf("replayed %d records, want 1", st.Replay.Records)
	}
	// The directory stays usable: more mutations and a fresh checkpoint.
	if _, err := d2.InsertSets([][]Item{{11, 12}}); err != nil {
		t.Fatal(err)
	}
	if err := d2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// NewDurable must refuse the initialized directory.
	if _, err := NewDurable(dir, idx, DurableOptions{}); err == nil {
		t.Fatalf("NewDurable re-seeded an existing durable directory")
	}
}

// TestDurableCheckpointTruncatesLog verifies the checkpoint manager's
// file-level contract: segments covered by the checkpoint disappear,
// two checkpoint generations are retained, and recovery prefers the
// newest.
func TestDurableCheckpointTruncatesLog(t *testing.T) {
	coll := skewedCollection(t, 60, 25, 0.8, 4)
	mem := wal.NewMemFS()
	mk := func() *Index {
		idx, err := New(coll, WithKind(OIF), WithPageSize(512), WithBlockPostings(8))
		if err != nil {
			t.Fatal(err)
		}
		return idx
	}
	d, err := NewDurable("w", mk(), DurableOptions{Sync: wal.SyncAlways, SegmentBytes: 256, CheckpointBytes: -1, FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 10; j++ {
			if _, err := d.InsertSets([][]Item{{Item(i), Item(j), Item(i + j)}}); err != nil {
				t.Fatal(err)
			}
		}
		pre := d.Stats().Log
		if err := d.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		post := d.Stats()
		if post.Log.Segments >= pre.Segments && pre.Segments > 1 {
			t.Fatalf("round %d: checkpoint kept %d of %d segments", i, post.Log.Segments, pre.Segments)
		}
		if post.Log.BytesSinceCheckpoint != 0 {
			t.Fatalf("round %d: %d bytes since checkpoint after checkpointing", i, post.Log.BytesSinceCheckpoint)
		}
		if post.CheckpointLSN != post.Log.LastLSN {
			t.Fatalf("round %d: watermark %d != last lsn %d", i, post.CheckpointLSN, post.Log.LastLSN)
		}
	}
	d.Close()
	names, err := mem.ReadDir("w")
	if err != nil {
		t.Fatal(err)
	}
	ckpts := 0
	for _, n := range names {
		if bytes.HasPrefix([]byte(n), []byte("checkpoint-")) {
			ckpts++
		}
	}
	if ckpts != 2 {
		t.Fatalf("retained %d checkpoints, want 2: %v", ckpts, names)
	}
	d2, err := OpenDurable("w", DurableOptions{FS: mem, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if st := d2.Stats(); st.Replay.Records != 0 {
		t.Fatalf("fresh checkpoint should cover everything; replayed %d", st.Replay.Records)
	}
	if got := d2.Index().NumRecords(); got != 60+30 {
		t.Fatalf("recovered %d records, want 90", got)
	}
}

// TestDurableBackgroundCheckpoint exercises the bytes-since-checkpoint
// trigger end to end: with a tiny threshold, inserting enough records
// must eventually produce a checkpoint without any explicit call.
func TestDurableBackgroundCheckpoint(t *testing.T) {
	coll := skewedCollection(t, 40, 25, 0.8, 2)
	idx, err := New(coll, WithKind(OIF), WithPageSize(512), WithBlockPostings(8))
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDurable(t.TempDir()+"/wal", idx, DurableOptions{
		Sync:            wal.SyncAlways,
		SegmentBytes:    512,
		CheckpointBytes: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := 0; i < 200; i++ {
		if _, err := d.InsertSets([][]Item{{Item(i % 25), Item((i * 7) % 25)}}); err != nil {
			t.Fatal(err)
		}
	}
	// The kick is asynchronous: give the background loop time to act.
	deadline := time.Now().Add(5 * time.Second)
	for d.Stats().Checkpoints == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if d.Stats().Checkpoints == 0 {
		t.Fatalf("no background checkpoint after 200 inserts over a 256-byte threshold")
	}
}

// TestDurableSecondBootReclaimsLog is the durable-level regression for
// the duplicate segment entry: the second boot of a freshly seeded
// directory recovers the record-free segment the first boot rotated
// into, and checkpoints must keep reclaiming log segments forever after
// — the original bug made the first TruncateThrough fail with ENOENT
// and every later one return early, growing the log without bound.
func TestDurableSecondBootReclaimsLog(t *testing.T) {
	coll := skewedCollection(t, 40, 25, 0.8, 9)
	idx, err := New(coll, WithKind(OIF), WithPageSize(512), WithBlockPostings(8))
	if err != nil {
		t.Fatal(err)
	}
	mem := wal.NewMemFS()
	d, err := NewDurable("w", idx, DurableOptions{Sync: wal.SyncAlways, CheckpointBytes: -1, FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	segFiles := func() []string {
		names, err := mem.ReadDir("w")
		if err != nil {
			t.Fatal(err)
		}
		var segs []string
		for _, n := range names {
			if bytes.HasPrefix([]byte(n), []byte("wal-")) {
				segs = append(segs, n)
			}
		}
		return segs
	}
	d2, err := OpenDurable("w", DurableOptions{Sync: wal.SyncAlways, CheckpointBytes: -1, FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if st, files := d2.Stats().Log, segFiles(); st.Segments != len(files) {
		t.Fatalf("boot 2 counts %d segments over %d files %v", st.Segments, len(files), files)
	}
	for round := 0; round < 3; round++ {
		for j := 0; j < 5; j++ {
			if _, err := d2.InsertSets([][]Item{{Item(round), Item(j)}}); err != nil {
				t.Fatalf("round %d: insert: %v", round, err)
			}
		}
		if err := d2.Checkpoint(); err != nil {
			t.Fatalf("round %d: checkpoint: %v", round, err)
		}
		st, files := d2.Stats().Log, segFiles()
		if st.Segments != 1 || len(files) != 1 {
			t.Fatalf("round %d: checkpoint left %d segments over %d files %v, want 1 over 1",
				round, st.Segments, len(files), files)
		}
	}
}

// TestDurableRejectsOversizedInsert: a set too large for one log record
// must be refused before anything is applied or logged — the whole
// batch, since acknowledging the earlier sets and then discovering the
// oversized one mid-apply would leave the index ahead of the log. The
// rejection must not wedge the log, and the directory must keep
// recovering cleanly.
func TestDurableRejectsOversizedInsert(t *testing.T) {
	coll := skewedCollection(t, 30, 25, 0.8, 11)
	idx, err := New(coll, WithKind(OIF), WithPageSize(512), WithBlockPostings(8))
	if err != nil {
		t.Fatal(err)
	}
	mem := wal.NewMemFS()
	d, err := NewDurable("w", idx, DurableOptions{Sync: wal.SyncAlways, CheckpointBytes: -1, FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	before := d.Index().NumRecords()
	ids, err := d.InsertSets([][]Item{{1, 2}, make([]Item, wal.MaxInsertItems+1)})
	if !errors.Is(err, wal.ErrRecordTooLarge) {
		t.Fatalf("oversized insert = %v, want ErrRecordTooLarge", err)
	}
	if len(ids) != 0 || d.Index().NumRecords() != before {
		t.Fatalf("rejected batch partially applied: ids %v, %d records (had %d)",
			ids, d.Index().NumRecords(), before)
	}
	// Not wedged: the log never saw the record.
	if _, err := d.InsertSets([][]Item{{3, 4}}); err != nil {
		t.Fatalf("insert after size rejection: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDurable("w", DurableOptions{CheckpointBytes: -1, FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got := d2.Index().NumRecords(); got != before+1 {
		t.Fatalf("recovered %d records, want %d", got, before+1)
	}
}
