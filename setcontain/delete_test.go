package setcontain

import (
	"errors"
	"fmt"
	"slices"
	"sync"
	"testing"
)

// deleteKinds are the engines with delete support.
var deleteKinds = []struct {
	name string
	opts []Option
}{
	{"OIF", []Option{WithKind(OIF), WithPageSize(512), WithBlockPostings(8)}},
	{"IF", []Option{WithKind(InvertedFile), WithPageSize(512)}},
	{"Sharded", []Option{WithKind(Sharded), WithShards(3), WithPageSize(512), WithBlockPostings(8)}},
}

// TestDeleteMasksImmediately: a deleted id vanishes from every
// predicate's answer before any merge, across all updatable kinds —
// including the empty-query forms that enumerate all records.
func TestDeleteMasksImmediately(t *testing.T) {
	const domain = 40
	c := skewedCollection(t, 800, domain, 0.8, 101)
	queries := append(zipfWorkload(80, domain, 0.8, 102),
		SubsetQuery(nil), SupersetQuery(nil), EqualityQuery(nil))
	for _, tc := range deleteKinds {
		t.Run(tc.name, func(t *testing.T) {
			ix, err := New(c, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			// Find a record that actually answers something, then kill it.
			pre, err := ix.Subset(nil)
			if err != nil {
				t.Fatal(err)
			}
			victims := []uint32{pre[0], pre[len(pre)/2], pre[len(pre)-1]}
			for _, v := range victims {
				if err := ix.Delete(v); err != nil {
					t.Fatalf("Delete(%d): %v", v, err)
				}
			}
			if got := ix.Deleted(); got != len(victims) {
				t.Fatalf("Deleted() = %d, want %d", got, len(victims))
			}
			assertAbsent := func(stage string) {
				t.Helper()
				for _, q := range queries {
					ids, err := ix.Eval(q)
					if err != nil {
						t.Fatalf("%s %s: %v", stage, q, err)
					}
					for _, v := range victims {
						if _, found := slices.BinarySearch(ids, v); found {
							t.Fatalf("%s: deleted id %d surfaced in %s", stage, v, q)
						}
					}
				}
			}
			assertAbsent("pre-merge")
			// Readers created after the delete inherit the tombstones.
			r, err := ix.NewReader(0)
			if err != nil {
				t.Fatal(err)
			}
			ids, err := r.Subset(nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range victims {
				if _, found := slices.BinarySearch(ids, v); found {
					t.Fatalf("deleted id %d surfaced through a reader", v)
				}
			}
			if err := ix.MergeDelta(); err != nil {
				t.Fatal(err)
			}
			assertAbsent("post-merge")
			if got := ix.Deleted(); got != len(victims) {
				t.Fatalf("Deleted() after merge = %d, want %d (ids stay tombstoned)", got, len(victims))
			}
		})
	}
}

// TestDeleteShrinksPostingsAndKindsAgree: after deleting a third of the
// records and merging, the persistent footprint of OIF and IF shrinks
// (the postings are physically gone, not just masked), and all three
// updatable kinds still answer identically.
func TestDeleteShrinksPostingsAndKindsAgree(t *testing.T) {
	const domain = 40
	c := skewedCollection(t, 1500, domain, 0.8, 111)
	idxs := make([]*Index, len(deleteKinds))
	for i, tc := range deleteKinds {
		ix, err := New(c, tc.opts...)
		if err != nil {
			t.Fatal(err)
		}
		idxs[i] = ix
	}
	before := make([]int64, len(idxs))
	for i, ix := range idxs {
		before[i] = ix.Engine().Space().Bytes
	}
	for id := uint32(1); id <= 500; id++ {
		for i, ix := range idxs {
			if err := ix.Delete(id); err != nil {
				t.Fatalf("%s Delete(%d): %v", deleteKinds[i].name, id, err)
			}
		}
	}
	for i, ix := range idxs {
		if err := ix.MergeDelta(); err != nil {
			t.Fatalf("%s MergeDelta: %v", deleteKinds[i].name, err)
		}
		if after := ix.Engine().Space().Bytes; after >= before[i] {
			t.Errorf("%s: space %d -> %d after deleting a third; want physical shrink",
				deleteKinds[i].name, before[i], after)
		}
	}
	for _, q := range zipfWorkload(80, domain, 0.8, 112) {
		want, err := idxs[0].Eval(q)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(idxs); i++ {
			got, err := idxs[i].Eval(q)
			if err != nil {
				t.Fatal(err)
			}
			if !slices.Equal(got, want) && !(len(got) == 0 && len(want) == 0) {
				t.Fatalf("%s: %s and %s diverge after deletes: %v vs %v",
					q, deleteKinds[0].name, deleteKinds[i].name, want, got)
			}
		}
	}
}

// TestDeleteDeltaRecordAndNoIDReuse: deleting a not-yet-merged insert
// masks it immediately, the merge drops its postings, and its id slot is
// never handed out again.
func TestDeleteDeltaRecordAndNoIDReuse(t *testing.T) {
	for _, tc := range deleteKinds {
		t.Run(tc.name, func(t *testing.T) {
			c := skewedCollection(t, 300, 30, 0.8, 121)
			ix, err := New(c, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			id, err := ix.Insert([]Item{3, 4, 5})
			if err != nil {
				t.Fatal(err)
			}
			if err := ix.Delete(id); err != nil {
				t.Fatalf("Delete(delta %d): %v", id, err)
			}
			ids, err := ix.Equality([]Item{3, 4, 5})
			if err != nil {
				t.Fatal(err)
			}
			if _, found := slices.BinarySearch(ids, id); found {
				t.Fatalf("deleted delta record %d still answers", id)
			}
			next, err := ix.Insert([]Item{6, 7})
			if err != nil {
				t.Fatal(err)
			}
			if next == id {
				t.Fatalf("id %d reused after delete", id)
			}
			if err := ix.MergeDelta(); err != nil {
				t.Fatal(err)
			}
			ids, err = ix.Equality([]Item{3, 4, 5})
			if err != nil {
				t.Fatal(err)
			}
			if _, found := slices.BinarySearch(ids, id); found {
				t.Fatalf("deleted delta record %d resurfaced after merge", id)
			}
			if got, err := ix.Equality([]Item{6, 7}); err != nil || !slices.Contains(got, next) {
				t.Fatalf("surviving insert %d lost after merge: %v, %v", next, got, err)
			}
		})
	}
}

// TestDeleteValidation: unknown ids, double deletes, and the UBT
// ablation's capability error.
func TestDeleteValidation(t *testing.T) {
	c := sampleCollection(t)
	for _, tc := range deleteKinds {
		ix, err := New(c, tc.opts...)
		if err != nil {
			t.Fatal(err)
		}
		if err := ix.Delete(0); err == nil {
			t.Errorf("%s: Delete(0) succeeded", tc.name)
		}
		if err := ix.Delete(uint32(c.Len() + 1)); err == nil {
			t.Errorf("%s: Delete(out of range) succeeded", tc.name)
		}
		if err := ix.Delete(5); err != nil {
			t.Fatalf("%s: Delete(5): %v", tc.name, err)
		}
		if err := ix.Delete(5); err == nil {
			t.Errorf("%s: double Delete(5) succeeded", tc.name)
		}
	}
	ub, err := New(c, WithKind(UnorderedBTree), WithPageSize(512))
	if err != nil {
		t.Fatal(err)
	}
	if err := ub.Delete(1); !errors.Is(err, ErrNoUpdates) {
		t.Errorf("UBT Delete: got %v, want ErrNoUpdates", err)
	}
}

// TestStoreUpdateConcurrentWithQueries hammers a Store with queries
// while the index mutates through Store.Update — insert, delete, merge
// — from another goroutine. Under -race this is the regression test for
// two bugs: the IF merge mutating counters in place through arrays
// shared with live readers, and pooled-reader creation cloning the
// Index mid-mutation.
func TestStoreUpdateConcurrentWithQueries(t *testing.T) {
	const domain = 40
	queries := zipfWorkload(40, domain, 0.8, 141)
	for _, tc := range deleteKinds {
		t.Run(tc.name, func(t *testing.T) {
			c := skewedCollection(t, 600, domain, 0.8, 142)
			ix, err := New(c, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			store := NewStore(ix, 4)
			ctx := t.Context()
			stop := make(chan struct{})
			errc := make(chan error, 4)
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						if _, err := store.Exec(ctx, queries[(g+i)%len(queries)]); err != nil {
							errc <- fmt.Errorf("worker %d: %v", g, err)
							return
						}
					}
				}(g)
			}
			for round := 0; round < 15; round++ {
				var id uint32
				if err := store.Update(func() error {
					var err error
					id, err = ix.Insert([]Item{1, 2, Item(round % domain)})
					return err
				}); err != nil {
					t.Fatal(err)
				}
				if round%2 == 0 {
					if err := store.Update(func() error { return ix.Delete(id) }); err != nil {
						t.Fatal(err)
					}
				}
				if round%3 == 0 {
					if err := store.Update(ix.MergeDelta); err != nil {
						t.Fatal(err)
					}
				}
			}
			close(stop)
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Error(err)
			}
		})
	}
}

// TestCacheStatsCumulativeAcrossMerge: the satellite bugfix — MergeDelta
// used to zero CacheStats and DecodedCacheStats with the pool swap; both
// must now carry the pre-merge counters forward monotonically.
func TestCacheStatsCumulativeAcrossMerge(t *testing.T) {
	const domain = 40
	c := skewedCollection(t, 1200, domain, 0.9, 131)
	for _, tc := range deleteKinds[:2] { // OIF and IF own a single pool
		t.Run(tc.name, func(t *testing.T) {
			ix, err := New(c, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			for _, q := range zipfWorkload(60, domain, 0.9, 132) {
				if _, err := ix.Eval(q); err != nil {
					t.Fatal(err)
				}
			}
			preCache := ix.CacheStats()
			preDecoded := ix.DecodedCacheStats()
			if preCache.PageReads == 0 {
				t.Fatal("warm-up recorded no page reads")
			}
			if _, err := ix.Insert([]Item{1, 2}); err != nil {
				t.Fatal(err)
			}
			if err := ix.Delete(3); err != nil {
				t.Fatal(err)
			}
			if err := ix.MergeDelta(); err != nil {
				t.Fatal(err)
			}
			postCache := ix.CacheStats()
			if postCache.PageReads < preCache.PageReads || postCache.Hits < preCache.Hits {
				t.Errorf("CacheStats went backwards across merge: %+v -> %+v", preCache, postCache)
			}
			postDecoded := ix.DecodedCacheStats()
			if postDecoded.Hits < preDecoded.Hits || postDecoded.Misses < preDecoded.Misses {
				t.Errorf("DecodedCacheStats went backwards across merge: %+v -> %+v", preDecoded, postDecoded)
			}
			// And they keep counting.
			for _, q := range zipfWorkload(20, domain, 0.9, 133) {
				if _, err := ix.Eval(q); err != nil {
					t.Fatal(err)
				}
			}
			if got := ix.CacheStats(); got.PageReads+got.Hits <= postCache.PageReads+postCache.Hits {
				t.Error("stats stopped accumulating after merge")
			}
		})
	}
}
