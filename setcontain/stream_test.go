package setcontain

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

// withPendingMutations applies the same pending inserts and tombstones
// to every updatable kind, so the streaming paths face delta sweeps and
// tombstone masking, not just clean disk structures.
func withPendingMutations(t *testing.T, idxs map[Kind]*Index, c *Collection) {
	t.Helper()
	rng := rand.New(rand.NewSource(4321))
	var inserts [][]Item
	for i := 0; i < 20; i++ {
		inserts = append(inserts, []Item{Item(rng.Intn(40)), Item(rng.Intn(40))})
	}
	var deletes []uint32
	for i := 0; i < 30; i++ {
		deletes = append(deletes, uint32(1+rng.Intn(c.Len())))
	}
	for kind, ix := range idxs {
		if kind == UnorderedBTree {
			continue
		}
		for _, set := range inserts {
			if _, err := ix.Insert(set); err != nil {
				t.Fatalf("%v: insert: %v", kind, err)
			}
		}
		for _, id := range deletes {
			if err := ix.Delete(id); err != nil {
				t.Fatalf("%v: delete: %v", kind, err)
			}
		}
	}
}

// TestEvaluatorStreamingMatchesMaterializing is the tentpole's equality
// property: for random expressions, across every engine kind (pending
// deltas and tombstones included), the streaming evaluator — candidate
// pushdown into AND legs, lazy posting cursors under ORs — returns ids
// byte-identical to the materializing evaluator and to the naive
// reference. Both evaluators are reused across trials so the free-list
// recycling path is under test too.
func TestEvaluatorStreamingMatchesMaterializing(t *testing.T) {
	c := sampleCollection(t)
	idxs := buildAll(t, c)
	withPendingMutations(t, idxs, c)
	rng := rand.New(rand.NewSource(2024))
	streaming := NewEvaluator(EvalAuto)
	materializing := NewEvaluator(EvalMaterialize)
	for trial := 0; trial < 120; trial++ {
		e := randExpr(rng, 3, 40)
		for kind, ix := range idxs {
			plan, err := ix.PlanExpr(e)
			if err != nil {
				t.Fatalf("%v: plan %q: %v", kind, e, err)
			}
			want, err := e.Eval(ix)
			if err != nil {
				t.Fatalf("%v: naive %q: %v", kind, e, err)
			}
			got, _, err := streaming.Eval(plan, ix)
			if err != nil {
				t.Fatalf("%v: streaming %q: %v", kind, e, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%v: streaming %q: got %d ids, naive %d", kind, e, len(got), len(want))
			}
			mat, _, err := materializing.Eval(plan, ix)
			if err != nil {
				t.Fatalf("%v: materializing %q: %v", kind, e, err)
			}
			if !reflect.DeepEqual(mat, want) {
				t.Fatalf("%v: materializing %q: got %d ids, naive %d", kind, e, len(mat), len(want))
			}
		}
	}
}

// TestExprLimitFirstN pins the early-exit contract: a limited
// evaluation returns exactly the first n ids of the unlimited answer —
// never a different subset — for every engine kind, with pending deltas
// and tombstones, at every limit position (inside, at, and past the
// answer's end).
func TestExprLimitFirstN(t *testing.T) {
	c := sampleCollection(t)
	idxs := buildAll(t, c)
	withPendingMutations(t, idxs, c)
	rng := rand.New(rand.NewSource(9876))
	for trial := 0; trial < 80; trial++ {
		e := randExpr(rng, 3, 40)
		for kind, ix := range idxs {
			plan, err := ix.PlanExpr(e)
			if err != nil {
				t.Fatalf("%v: plan %q: %v", kind, e, err)
			}
			full, _, err := plan.EvalAppend(nil, ix)
			if err != nil {
				t.Fatalf("%v: full %q: %v", kind, e, err)
			}
			limits := []int{0, 1, 2, 7, len(full), len(full) + 5}
			for _, n := range limits {
				got, _, err := plan.EvalLimitAppend(nil, ix, n)
				if err != nil {
					t.Fatalf("%v: limit %d %q: %v", kind, n, e, err)
				}
				want := full
				if n > 0 && n < len(full) {
					want = full[:n]
				}
				if len(got) != len(want) {
					t.Fatalf("%v: limit %d %q: got %d ids, want %d", kind, n, e, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%v: limit %d %q: id[%d] = %d, want %d", kind, n, e, i, got[i], want[i])
					}
				}
			}
			// The Index convenience wrapper agrees.
			viaIdx, err := ix.EvalExprLimit(e, 3)
			if err != nil {
				t.Fatalf("%v: EvalExprLimit %q: %v", kind, e, err)
			}
			want := full
			if len(want) > 3 {
				want = want[:3]
			}
			if !reflect.DeepEqual(viaIdx, append([]uint32{}, want...)) && len(viaIdx)+len(want) > 0 {
				if len(viaIdx) != len(want) {
					t.Fatalf("%v: EvalExprLimit %q: got %d ids, want %d", kind, e, len(viaIdx), len(want))
				}
				for i := range want {
					if viaIdx[i] != want[i] {
						t.Fatalf("%v: EvalExprLimit %q diverges at %d", kind, e, i)
					}
				}
			}
		}
	}
}

// TestStoreExecExprLimit exercises the Store's limit surface: the
// sharded fan-out's per-shard limit pushdown stays first-n exact, the
// Seq form agrees, a negative limit is refused with the sentinel, and
// limit 0 means unlimited.
func TestStoreExecExprLimit(t *testing.T) {
	c := sampleCollection(t)
	ctx := context.Background()
	e, err := ParseExpr("subset{1} or subset{2 3} or equality{4} or not superset{0 1 2 3 4 5 6 7 8 9}")
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []Kind{OIF, InvertedFile, UnorderedBTree, Sharded} {
		ix, err := Build(c, Options{Kind: kind, PageSize: 512, BlockPostings: 8, Shards: 3})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		s := NewStore(ix, 0)
		full, err := s.ExecExpr(ctx, e)
		if err != nil {
			t.Fatalf("%v: ExecExpr: %v", kind, err)
		}
		if len(full) == 0 {
			t.Fatalf("%v: workload answered no ids; test needs a wide answer", kind)
		}
		for _, n := range []int{0, 1, 5, len(full), len(full) + 9} {
			got, err := s.ExecExprLimit(ctx, e, n)
			if err != nil {
				t.Fatalf("%v: ExecExprLimit(%d): %v", kind, n, err)
			}
			want := full
			if n > 0 && n < len(full) {
				want = full[:n]
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%v: ExecExprLimit(%d): got %d ids, want %d", kind, n, len(got), len(want))
			}
		}
		seq, err := s.ExecExprLimitSeq(ctx, e, 4)
		if err != nil {
			t.Fatalf("%v: ExecExprLimitSeq: %v", kind, err)
		}
		var seqIDs []uint32
		for id := range seq {
			seqIDs = append(seqIDs, id)
		}
		if !reflect.DeepEqual(seqIDs, full[:4]) {
			t.Fatalf("%v: ExecExprLimitSeq: got %v, want %v", kind, seqIDs, full[:4])
		}
		if _, err := s.ExecExprLimit(ctx, e, -1); !errors.Is(err, ErrNegativeLimit) {
			t.Fatalf("%v: negative limit: %v, want ErrNegativeLimit", kind, err)
		}
	}
}

// TestStorePlanOrderTracksMerge is the Supports() cache regression test:
// a merge that flips two items' relative rarity must retire the cached
// profile, so plans built after the merge order their AND legs by the
// new supports, not the stale ones.
func TestStorePlanOrderTracksMerge(t *testing.T) {
	// Item 0 starts rarer than item 1: 10 vs 100 records.
	c := NewCollection(8)
	for i := 0; i < 10; i++ {
		if _, err := c.Add([]Item{0, 2}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		if _, err := c.Add([]Item{1, 3}); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := Build(c, Options{Kind: OIF, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(ix, 0)
	e, err := ParseExpr("subset{1} and subset{0}")
	if err != nil {
		t.Fatal(err)
	}
	before := s.Supports()
	if before.Support(0) >= before.Support(1) {
		t.Fatalf("setup broken: support(0)=%d, support(1)=%d", before.Support(0), before.Support(1))
	}
	plan, err := ix.PlanExpr(e)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Root.Kids[0].Leaf.String(); got != "subset{0}" {
		t.Fatalf("pre-merge first AND leg is %s, want subset{0}\nplan:\n%s", got, plan)
	}
	// Flip the rarity: 300 new records carry item 0, none carry item 1.
	if err := s.Update(func() error {
		for i := 0; i < 300; i++ {
			if _, err := ix.Insert([]Item{0, 4}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Update(ix.MergeDelta); err != nil {
		t.Fatal(err)
	}
	after := s.Supports()
	if after == before {
		t.Fatal("supports profile not refreshed after merge")
	}
	if after.Support(0) <= after.Support(1) {
		t.Fatalf("post-merge support(0)=%d not above support(1)=%d", after.Support(0), after.Support(1))
	}
	plan, err = ix.PlanExpr(e)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Root.Kids[0].Leaf.String(); got != "subset{1}" {
		t.Fatalf("post-merge first AND leg is %s, want subset{1}\nplan:\n%s", got, plan)
	}
}

// TestExecExprBatchCSE pins the cross-query subexpression cache: a
// micro-batch whose expressions share a hot subtree evaluates that
// subtree once, serves the rest from cache, counts hits/misses/saved
// leaves deterministically, and answers exactly what per-expression
// execution answers — limited items included.
func TestExecExprBatchCSE(t *testing.T) {
	c := sampleCollection(t)
	ctx := context.Background()
	ix, err := Build(c, Options{Kind: OIF, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(ix, 0)
	// Every expression shares the subtree (subset{1} and subset{2});
	// collectCSE keys it (and its leaves) as shared across the batch.
	shared := "(subset{1} and subset{2})"
	exprTexts := []string{
		shared + " or subset{3}",
		shared + " or subset{4}",
		shared + " or equality{5}",
		shared + " or subset{6 7}",
	}
	items := make([]ExprBatchItem, len(exprTexts))
	want := make([][]uint32, len(exprTexts))
	for i, txt := range exprTexts {
		e, err := ParseExpr(txt)
		if err != nil {
			t.Fatal(err)
		}
		items[i] = ExprBatchItem{Expr: e}
		if want[i], err = s.ExecExpr(ctx, e); err != nil {
			t.Fatalf("ExecExpr %q: %v", txt, err)
		}
	}
	// One limited item on top: the cursor path must coexist with CSE.
	items[3].Limit = 2
	if len(want[3]) > 2 {
		want[3] = want[3][:2]
	}
	pre := s.ExprStats()
	n, err := s.ExecExprBatchAppend(ctx, items)
	if err != nil || n != len(items) {
		t.Fatalf("ExecExprBatchAppend: n=%d err=%v", n, err)
	}
	for i := range items {
		if items[i].Err != nil {
			t.Fatalf("item %d: %v", i, items[i].Err)
		}
		if !reflect.DeepEqual(items[i].Out, want[i]) {
			t.Fatalf("item %d: got %d ids, want %d", i, len(items[i].Out), len(want[i]))
		}
	}
	st := s.ExprStats()
	misses := st.CSEMisses - pre.CSEMisses
	hits := st.CSEHits - pre.CSEHits
	saved := st.CSESavedLeaves - pre.CSESavedLeaves
	if misses == 0 || hits == 0 {
		t.Fatalf("no cache traffic: hits=%d misses=%d", hits, misses)
	}
	// The shared AND subtree misses once and hits on the three other
	// expressions; its leaves may be keyed too, but a hit on the parent
	// means the leaves underneath are never consulted.
	if hits < 3 {
		t.Fatalf("shared subtree hit %d times, want >= 3", hits)
	}
	if saved < 3 {
		t.Fatalf("saved %d leaf evaluations, want >= 3", saved)
	}
	// A second identical batch starts a fresh cache: same counts again.
	for i := range items {
		items[i].Out, items[i].Dst, items[i].Err = nil, nil, nil
	}
	if _, err := s.ExecExprBatchAppend(ctx, items); err != nil {
		t.Fatal(err)
	}
	st2 := s.ExprStats()
	if st2.CSEHits-st.CSEHits != hits || st2.CSEMisses-st.CSEMisses != misses {
		t.Fatalf("second batch counted hits=%d misses=%d, want %d/%d",
			st2.CSEHits-st.CSEHits, st2.CSEMisses-st.CSEMisses, hits, misses)
	}
	// Negative limit surfaces per item, failing the whole call's item.
	items[0].Limit = -1
	if _, err := s.ExecExprBatchAppend(ctx, items); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(items[0].Err, ErrNegativeLimit) {
		t.Fatalf("negative-limit item error = %v, want ErrNegativeLimit", items[0].Err)
	}
}
