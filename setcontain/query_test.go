package setcontain

import (
	"math/rand"
	"strings"
	"testing"
)

// TestQueryStringParseRoundTrip pins the textual query form — the wire
// vocabulary of the serve package and the CLIs — as a lossless
// round-trip: ParseQuery(q.String()) == q for every predicate, item
// shape, and boundary value.
func TestQueryStringParseRoundTrip(t *testing.T) {
	cases := []Query{
		{Pred: PredicateSubset, Items: nil},
		{Pred: PredicateSubset, Items: []Item{0}},
		{Pred: PredicateSubset, Items: []Item{3, 17, 29}},
		{Pred: PredicateEquality, Items: []Item{1}},
		{Pred: PredicateEquality, Items: []Item{0, 1, 2, 3, 4, 5, 6, 7}},
		{Pred: PredicateSuperset, Items: []Item{42}},
		{Pred: PredicateSuperset, Items: []Item{0, 1<<32 - 1}},
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		items := make([]Item, rng.Intn(12))
		for j := range items {
			items[j] = rng.Uint32()
		}
		cases = append(cases, Query{Pred: Predicate(rng.Intn(3)), Items: items})
	}
	for _, q := range cases {
		s := q.String()
		got, err := ParseQuery(s)
		if err != nil {
			t.Fatalf("ParseQuery(%q): %v", s, err)
		}
		if got.Pred != q.Pred {
			t.Fatalf("ParseQuery(%q): pred %v, want %v", s, got.Pred, q.Pred)
		}
		if len(got.Items) != len(q.Items) {
			t.Fatalf("ParseQuery(%q): %d items, want %d", s, len(got.Items), len(q.Items))
		}
		for j := range q.Items {
			if got.Items[j] != q.Items[j] {
				t.Fatalf("ParseQuery(%q): item[%d] = %d, want %d", s, j, got.Items[j], q.Items[j])
			}
		}
		if again := got.String(); again != s {
			t.Fatalf("second round-trip drifted: %q -> %q", s, again)
		}
	}
}

// TestParseQueryLenient pins the accepted variations: surrounding
// whitespace, case-insensitive predicates, flexible item spacing.
func TestParseQueryLenient(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want string
	}{
		{"  subset{3 17}  ", "subset{3 17}"},
		{"SUBSET{3 17}", "subset{3 17}"},
		{"Equality {1}", "equality{1}"},
		{"superset{  7   9  }", "superset{7 9}"},
		{"subset{}", "subset{}"},
		{"subset{ }", "subset{}"},
		{"subset{007}", "subset{7}"},
	} {
		q, err := ParseQuery(tc.in)
		if err != nil {
			t.Errorf("ParseQuery(%q): %v", tc.in, err)
			continue
		}
		if got := q.String(); got != tc.want {
			t.Errorf("ParseQuery(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestParseQueryMalformed pins the error paths: every malformed input
// must fail with a message naming the offending query.
func TestParseQueryMalformed(t *testing.T) {
	for _, in := range []string{
		"",
		"subset",
		"subset{1 2",
		"subset 1 2}",
		"subset(1 2)",
		"between{1 2}",
		"{1 2}",
		"subset{1 b 3}",
		"subset{-1}",
		"subset{1.5}",
		"subset{4294967296}",     // uint32 overflow by one
		"subset{99999999999999}", // far past overflow
		"subset{1 2}trailing",
		"subset{1 {2} 3}",
		"subset{1}}",
	} {
		q, err := ParseQuery(in)
		if err == nil {
			t.Errorf("ParseQuery(%q) accepted as %v", in, q)
			continue
		}
		if !strings.Contains(err.Error(), "setcontain") {
			t.Errorf("ParseQuery(%q): error %q lacks package prefix", in, err)
		}
	}
	// The overflow boundary itself is fine.
	if _, err := ParseQuery("subset{4294967295}"); err != nil {
		t.Errorf("max uint32 rejected: %v", err)
	}
}

// TestParsePredicateMalformed completes the predicate surface: the
// round-trip over all three values plus rejection of near-misses.
func TestParsePredicateMalformed(t *testing.T) {
	for _, p := range []Predicate{PredicateSubset, PredicateEquality, PredicateSuperset} {
		got, err := ParsePredicate(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePredicate(%q) = %v, %v", p.String(), got, err)
		}
	}
	for _, in := range []string{"", "sub", "subsets", "equal", "⊆", "subset{1}"} {
		if got, err := ParsePredicate(in); err == nil {
			t.Errorf("ParsePredicate(%q) accepted as %v", in, got)
		}
	}
	// Out-of-range predicate values stringify distinctly and refuse to
	// parse back — Eval rejects them with ErrUnknownPredicate.
	if s := Predicate(42).String(); s != "Predicate(42)" {
		t.Errorf("Predicate(42).String() = %q", s)
	}
	if _, err := ParsePredicate(Predicate(42).String()); err == nil {
		t.Error("Predicate(42) round-tripped")
	}
}
