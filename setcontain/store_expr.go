package setcontain

import (
	"context"
	"errors"
	"iter"
	"sync"
	"sync/atomic"
)

// The Store's expression surface: ExecExpr/ExecExprAppend/ExecExprSeq
// plan boolean expressions against a support profile cached per store
// generation, evaluate them on the same pooled readers (ctx interrupts
// included) as the single-predicate Exec family, and — over a sharded
// index — push the whole plan down to every shard in parallel, merging
// the per-shard answers with the round-robin k-way interleave. The
// limit family (ExecExprLimit and friends) additionally stops the
// evaluation after the first n ids, and ExecExprBatchAppend evaluates a
// micro-batch on one warm reader with shared subtrees computed once.

// ErrNegativeLimit reports a negative limit passed to the ExecExprLimit
// family; the serving layer maps it to a 400.
var ErrNegativeLimit = errors.New("setcontain: negative limit")

// exprState is the Store's expression-planning state: the support
// profile cache, keyed by store generation so mutations invalidate it
// through the same Refresh that retires pooled readers, plus the
// cumulative planner counters.
type exprState struct {
	mu   sync.Mutex
	gen  uint64
	prof *SupportProfile

	expressions     atomic.Int64
	evaluatedLeaves atomic.Int64
	streamedLeaves  atomic.Int64
	skippedLeaves   atomic.Int64
	cseHits         atomic.Int64
	cseMisses       atomic.Int64
	cseSavedLeaves  atomic.Int64
}

// Supports returns the store's cached support profile, recomputing it
// when a Refresh has retired the previous one. The profile snapshots
// the merged structures under the store's mutation lock, so it never
// observes a half-applied update.
func (s *Store) Supports() *SupportProfile {
	gen := s.gen.Load()
	s.expr.mu.Lock()
	defer s.expr.mu.Unlock()
	if s.expr.prof == nil || s.expr.gen != gen {
		s.mu.RLock()
		prof := SupportsOf(s.ix.Engine())
		s.mu.RUnlock()
		s.expr.prof, s.expr.gen = prof, gen
	}
	return s.expr.prof
}

// ExprStats is the Store's cumulative planner accounting: expressions
// executed through the planned path, containment leaves actually
// evaluated (and how many of those streamed instead of materializing),
// leaves the empty-intermediate short-circuit skipped, and the batch
// subexpression cache's hit/miss/saved-leaf counters. One-leaf
// expressions route through the plain Exec path and are not counted
// here (except through the limit and batch entry points, which always
// plan).
type ExprStats struct {
	Expressions     int64
	EvaluatedLeaves int64
	StreamedLeaves  int64
	SkippedLeaves   int64
	CSEHits         int64
	CSEMisses       int64
	CSESavedLeaves  int64
}

// ExprStats returns the cumulative planned-evaluation counters.
func (s *Store) ExprStats() ExprStats {
	return ExprStats{
		Expressions:     s.expr.expressions.Load(),
		EvaluatedLeaves: s.expr.evaluatedLeaves.Load(),
		StreamedLeaves:  s.expr.streamedLeaves.Load(),
		SkippedLeaves:   s.expr.skippedLeaves.Load(),
		CSEHits:         s.expr.cseHits.Load(),
		CSEMisses:       s.expr.cseMisses.Load(),
		CSESavedLeaves:  s.expr.cseSavedLeaves.Load(),
	}
}

func (s *Store) noteExprEval(st ExprEvalStats) {
	s.expr.expressions.Add(1)
	s.expr.evaluatedLeaves.Add(int64(st.EvaluatedLeaves))
	s.expr.streamedLeaves.Add(int64(st.StreamedLeaves))
	s.expr.skippedLeaves.Add(int64(st.SkippedLeaves))
}

func (s *Store) noteCSE(c *cseState) {
	if c == nil {
		return
	}
	s.expr.cseHits.Add(int64(c.hits))
	s.expr.cseMisses.Add(int64(c.misses))
	s.expr.cseSavedLeaves.Add(int64(c.savedLeaves))
}

// ExecExpr answers a boolean expression on a pooled reader with planned
// evaluation. A one-leaf expression degenerates to Exec — identical
// behaviour and cost to the single-predicate path. Cancellation behaves
// like Exec: ctx is checked before evaluation and between list-block
// reads, across every shard of a sharded index.
func (s *Store) ExecExpr(ctx context.Context, expr *Expr) ([]uint32, error) {
	if q, ok := expr.AsQuery(); ok {
		return s.Exec(ctx, q)
	}
	return s.ExecExprAppend(ctx, nil, expr)
}

// ExecExprAppend answers a boolean expression on a pooled reader,
// appending the answer to dst — the serving form of ExecExpr. Leaves
// evaluate through the reader's zero-allocation Append path (streaming
// into the accumulated candidate set where the engine supports it) and
// intermediates recycle inside the reader's persistent evaluator; only
// the final answer is copied into dst.
func (s *Store) ExecExprAppend(ctx context.Context, dst []uint32, expr *Expr) ([]uint32, error) {
	if q, ok := expr.AsQuery(); ok {
		return s.ExecAppend(ctx, dst, q)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	plan, err := PlanExpr(expr, s.Supports())
	if err != nil {
		return nil, err
	}
	e, err := s.acquire()
	if err != nil {
		return nil, err
	}
	defer s.release(e)
	if ctx.Done() != nil {
		e.arm(ctx)
	}
	if sr, ok := e.r.r.(*shardedReader); ok {
		return s.execExprSharded(ctx, dst, expr, plan, sr, 0)
	}
	ids, st, err := e.eval.EvalAppend(dst, plan, e.r)
	if err != nil {
		return nil, err
	}
	s.noteExprEval(st)
	return ids, nil
}

// ExecExprLimit answers the first n ids of the expression's answer —
// exactly the prefix of what ExecExpr would return — stopping the
// evaluation as soon as n ids are produced: on cursor-capable engines
// (the inverted file) postings past the stop point are never decoded,
// and over a sharded index each shard evaluates under the same
// per-shard limit before the k-way merge truncates globally. n == 0
// means no limit; a negative n returns ErrNegativeLimit.
func (s *Store) ExecExprLimit(ctx context.Context, expr *Expr, n int) ([]uint32, error) {
	ids, err := s.ExecExprLimitAppend(ctx, nil, expr, n)
	if err != nil {
		return nil, err
	}
	if ids == nil {
		ids = []uint32{}
	}
	return ids, nil
}

// ExecExprLimitAppend is the append form of ExecExprLimit. Unlike
// ExecExprAppend, one-leaf expressions do not degenerate to the plain
// Exec path — the limit machinery itself is the fast path.
func (s *Store) ExecExprLimitAppend(ctx context.Context, dst []uint32, expr *Expr, n int) ([]uint32, error) {
	if n < 0 {
		return nil, ErrNegativeLimit
	}
	if n == 0 {
		return s.ExecExprAppend(ctx, dst, expr)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	plan, err := PlanExpr(expr, s.Supports())
	if err != nil {
		return nil, err
	}
	e, err := s.acquire()
	if err != nil {
		return nil, err
	}
	defer s.release(e)
	if ctx.Done() != nil {
		e.arm(ctx)
	}
	if sr, ok := e.r.r.(*shardedReader); ok {
		return s.execExprSharded(ctx, dst, expr, plan, sr, n)
	}
	ids, st, err := e.eval.EvalLimitAppend(dst, plan, e.r, n)
	if err != nil {
		return nil, err
	}
	s.noteExprEval(st)
	return ids, nil
}

// ExecExprLimitSeq answers the first n ids as a lazy sequence; the
// evaluation itself runs eagerly under ctx like ExecExprLimit,
// iteration is then cancellation-free.
func (s *Store) ExecExprLimitSeq(ctx context.Context, expr *Expr, n int) (iter.Seq[uint32], error) {
	return seqOf(s.ExecExprLimit(ctx, expr, n))
}

// execExprSharded evaluates the expression against every shard through
// the scatter-gather executor and k-way merges the local answers into
// global id order. The boolean algebra distributes over the partition —
// the shards hold disjoint record sets, so each shard's local answer
// (its NOT universe included) is exactly the global answer restricted
// to that shard — which keeps sharded expression answers byte-identical
// to single-engine ones while every shard plans, short-circuits, and
// combines independently.
//
// A shard whose reader can accept whole expressions (a remote shard
// client) gets the original expression pushed down and plans it against
// its own local supports; the rest evaluate the coordinator's plan
// directly. With n > 0 the limit is pushed per shard — the partitioner
// maps each shard's ascending local answer to an ascending global
// subsequence, so the global first n ids are always contained in the
// union of the shards' local first n — then the merged answer is
// truncated.
func (s *Store) execExprSharded(ctx context.Context, dst []uint32, expr *Expr, plan *ExprPlan, sr *shardedReader, n int) ([]uint32, error) {
	stats := make([]ExprEvalStats, len(sr.shards))
	ids, err := scatterGather(ctx, sr.part, func(cctx context.Context, shard int) ([]uint32, error) {
		rd := sr.shards[shard]
		if pe, ok := rd.r.(exprAppender); ok {
			return pe.AppendExpr(cctx, nil, expr, n)
		}
		if n > 0 {
			local, st, err := plan.EvalLimitAppend(nil, rd, n)
			stats[shard] = st
			return local, err
		}
		local, st, err := plan.EvalAppend(nil, rd)
		stats[shard] = st
		return local, err
	})
	if err != nil {
		return nil, err
	}
	if n > 0 && len(ids) > n {
		ids = ids[:n]
	}
	s.noteExprEval(sumShardStats(stats))
	return append(dst, ids...), nil
}

// sumShardStats folds per-shard evaluation stats into one expression's
// accounting: one expression, leaf work summed across the shards that
// did it.
func sumShardStats(stats []ExprEvalStats) ExprEvalStats {
	var total ExprEvalStats
	for _, st := range stats {
		total.EvaluatedLeaves += st.EvaluatedLeaves
		total.StreamedLeaves += st.StreamedLeaves
		total.SkippedLeaves += st.SkippedLeaves
	}
	return total
}

// ExecExprSeq answers a boolean expression as a lazy sequence; the
// evaluation itself runs eagerly under ctx like ExecExpr, iteration is
// then cancellation-free. The sequence follows the SubsetSeq contract:
// ascending unique ids, single-use, abandonable.
func (s *Store) ExecExprSeq(ctx context.Context, expr *Expr) (iter.Seq[uint32], error) {
	return seqOf(s.ExecExpr(ctx, expr))
}

// ExprBatchItem is one expression of an ExecExprBatchAppend call: the
// expression, an optional first-n limit, its caller-owned append
// target, and (after the call) its answer or error.
type ExprBatchItem struct {
	// Ctx optionally scopes this item alone, exactly like
	// BatchItem.Ctx. Nil means the batch context governs.
	Ctx context.Context
	// Expr is the boolean expression to answer.
	Expr *Expr
	// Limit truncates the answer to its first Limit ids; 0 means the
	// full answer, negative fails the item with ErrNegativeLimit.
	Limit int
	// Dst is the append target; the caller owns it throughout.
	Dst []uint32
	// Out receives the extended Dst slice on success, nil on error.
	Out []uint32
	// Err receives this item's error.
	Err error
}

// ExecExprBatchAppend answers the expressions sequentially on a single
// pooled reader — the expression counterpart of ExecBatchAppend, and
// the entry point behind the serve package's micro-batcher. Beyond the
// shared warm reader, the batch gets common-subexpression elimination:
// plan subtrees whose canonical form repeats across the batch (a hot
// `subset` leg shared by several queries, a common filter conjunction)
// evaluate once, and every later occurrence reuses the cached answer.
// The hit/miss/saved-leaf counters surface through ExprStats.
//
// Per-item results land in items[i].Out / items[i].Err; the return
// contract (processed count, batch ctx) is ExecBatchAppend's. Over a
// sharded index each item fans out to the shards individually — the
// cache applies to single-engine stores, where one reader's arenas and
// caches serve the whole batch.
func (s *Store) ExecExprBatchAppend(ctx context.Context, items []ExprBatchItem) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if len(items) == 0 {
		return 0, nil
	}
	prof := s.Supports()
	plans := make([]*ExprPlan, len(items))
	for i := range items {
		it := &items[i]
		it.Out, it.Err = nil, nil
		if it.Limit < 0 {
			it.Err = ErrNegativeLimit
			continue
		}
		plan, err := PlanExpr(it.Expr, prof)
		if err != nil {
			it.Err = err
			continue
		}
		plans[i] = plan
	}
	cse := collectCSE(plans)
	e, err := s.acquire()
	if err != nil {
		return 0, err
	}
	defer s.release(e)
	armed := false
	for i := range items {
		if err := ctx.Err(); err != nil {
			return i, err
		}
		it := &items[i]
		if plans[i] == nil {
			continue // planning already failed the item
		}
		ictx := it.Ctx
		if ictx == nil {
			ictx = ctx
		}
		if err := ictx.Err(); err != nil {
			it.Err = err
			continue
		}
		if !armed && (ictx.Done() != nil || ctx.Done() != nil) {
			armed = true
			e.arm(ctx)
		}
		if armed {
			e.item = ictx
		}
		if sr, ok := e.r.r.(*shardedReader); ok {
			it.Out, it.Err = s.execExprSharded(ictx, it.Dst, it.Expr, plans[i], sr, it.Limit)
			continue
		}
		ids, st, err := e.eval.evalCSE(it.Dst, plans[i], e.r, cse, it.Limit)
		if err != nil {
			it.Err = err
			continue
		}
		it.Out = ids
		s.noteExprEval(st)
	}
	s.noteCSE(cse)
	return len(items), nil
}
