package setcontain

import (
	"context"
	"iter"
	"sync"
	"sync/atomic"
)

// The Store's expression surface: ExecExpr/ExecExprAppend/ExecExprSeq
// plan boolean expressions against a support profile cached per store
// generation, evaluate them on the same pooled readers (ctx interrupts
// included) as the single-predicate Exec family, and — over a sharded
// index — push the whole plan down to every shard in parallel, merging
// the per-shard answers with the round-robin k-way interleave.

// exprState is the Store's expression-planning state: the support
// profile cache, keyed by store generation so mutations invalidate it
// through the same Refresh that retires pooled readers, plus the
// cumulative planner counters.
type exprState struct {
	mu   sync.Mutex
	gen  uint64
	prof *SupportProfile

	expressions     atomic.Int64
	evaluatedLeaves atomic.Int64
	skippedLeaves   atomic.Int64
}

// Supports returns the store's cached support profile, recomputing it
// when a Refresh has retired the previous one. The profile snapshots
// the merged structures under the store's mutation lock, so it never
// observes a half-applied update.
func (s *Store) Supports() *SupportProfile {
	gen := s.gen.Load()
	s.expr.mu.Lock()
	defer s.expr.mu.Unlock()
	if s.expr.prof == nil || s.expr.gen != gen {
		s.mu.RLock()
		prof := SupportsOf(s.ix.Engine())
		s.mu.RUnlock()
		s.expr.prof, s.expr.gen = prof, gen
	}
	return s.expr.prof
}

// ExprStats is the Store's cumulative planner accounting: expressions
// executed through the planned path, containment leaves actually
// evaluated, and leaves the empty-intermediate short-circuit skipped.
// One-leaf expressions route through the plain Exec path and are not
// counted here.
type ExprStats struct {
	Expressions     int64
	EvaluatedLeaves int64
	SkippedLeaves   int64
}

// ExprStats returns the cumulative planned-evaluation counters.
func (s *Store) ExprStats() ExprStats {
	return ExprStats{
		Expressions:     s.expr.expressions.Load(),
		EvaluatedLeaves: s.expr.evaluatedLeaves.Load(),
		SkippedLeaves:   s.expr.skippedLeaves.Load(),
	}
}

func (s *Store) noteExprEval(st ExprEvalStats) {
	s.expr.expressions.Add(1)
	s.expr.evaluatedLeaves.Add(int64(st.EvaluatedLeaves))
	s.expr.skippedLeaves.Add(int64(st.SkippedLeaves))
}

// ExecExpr answers a boolean expression on a pooled reader with planned
// evaluation. A one-leaf expression degenerates to Exec — identical
// behaviour and cost to the single-predicate path. Cancellation behaves
// like Exec: ctx is checked before evaluation and between list-block
// reads, across every shard of a sharded index.
func (s *Store) ExecExpr(ctx context.Context, expr *Expr) ([]uint32, error) {
	if q, ok := expr.AsQuery(); ok {
		return s.Exec(ctx, q)
	}
	return s.ExecExprAppend(ctx, nil, expr)
}

// ExecExprAppend answers a boolean expression on a pooled reader,
// appending the answer to dst — the serving form of ExecExpr. Leaves
// evaluate through the reader's zero-allocation Append path and
// intermediates recycle inside the evaluator; only the final answer is
// copied into dst.
func (s *Store) ExecExprAppend(ctx context.Context, dst []uint32, expr *Expr) ([]uint32, error) {
	if q, ok := expr.AsQuery(); ok {
		return s.ExecAppend(ctx, dst, q)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	plan, err := PlanExpr(expr, s.Supports())
	if err != nil {
		return nil, err
	}
	e, err := s.acquire()
	if err != nil {
		return nil, err
	}
	defer s.release(e)
	if ctx.Done() != nil {
		e.arm(ctx)
	}
	if sr, ok := e.r.r.(*shardedReader); ok {
		return s.execExprSharded(dst, plan, sr)
	}
	ids, st, err := plan.EvalAppend(dst, e.r)
	if err != nil {
		return nil, err
	}
	s.noteExprEval(st)
	return ids, nil
}

// execExprSharded evaluates the whole plan against every shard in
// parallel and k-way merges the local answers into global id order.
// The boolean algebra distributes over the round-robin partition — the
// shards hold disjoint record sets, so each shard's local answer (its
// NOT universe included) is exactly the global answer restricted to
// that shard — which keeps sharded expression answers byte-identical to
// single-engine ones while every shard plans, short-circuits, and
// combines independently.
func (s *Store) execExprSharded(dst []uint32, plan *ExprPlan, sr *shardedReader) ([]uint32, error) {
	stats := make([]ExprEvalStats, len(sr.shards))
	ids, err := fanOut(len(sr.shards), func(shard int) ([]uint32, error) {
		local, st, err := plan.EvalAppend(nil, sr.shards[shard])
		stats[shard] = st
		return local, err
	})
	if err != nil {
		return nil, err
	}
	// One expression, leaf work summed across the shards that did it.
	var total ExprEvalStats
	for _, st := range stats {
		total.EvaluatedLeaves += st.EvaluatedLeaves
		total.SkippedLeaves += st.SkippedLeaves
	}
	s.noteExprEval(total)
	return append(dst, ids...), nil
}

// ExecExprSeq answers a boolean expression as a lazy sequence; the
// evaluation itself runs eagerly under ctx like ExecExpr, iteration is
// then cancellation-free. The sequence follows the SubsetSeq contract:
// ascending unique ids, single-use, abandonable.
func (s *Store) ExecExprSeq(ctx context.Context, expr *Expr) (iter.Seq[uint32], error) {
	return seqOf(s.ExecExpr(ctx, expr))
}
