package setcontain

import (
	"errors"
	"math/rand"
	"testing"
)

// naiveComposite evaluates a Composite by brute force for the oracle.
func naiveComposite(t *testing.T, c *Collection, q Composite) []uint32 {
	t.Helper()
	inSet := func(set []Item, it Item) bool {
		for _, v := range set {
			if v == it {
				return true
			}
		}
		return false
	}
	var out []uint32
	for id := uint32(1); int(id) <= c.Len(); id++ {
		set, err := c.Record(id)
		if err != nil {
			t.Fatal(err)
		}
		ok := true
		for _, it := range q.AllOf {
			if !inSet(set, it) {
				ok = false
			}
		}
		for _, it := range q.NoneOf {
			if inSet(set, it) {
				ok = false
			}
		}
		if len(q.Within) > 0 {
			for _, it := range set {
				if !inSet(q.Within, it) {
					ok = false
				}
			}
		}
		if ok {
			out = append(out, id)
		}
	}
	return out
}

func TestCompositeAgainstOracle(t *testing.T) {
	c := sampleCollection(t)
	for _, kind := range []Kind{OIF, InvertedFile, UnorderedBTree} {
		ix, err := Build(c, Options{Kind: kind, PageSize: 512, BlockPostings: 8})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(81))
		for trial := 0; trial < 120; trial++ {
			q := Composite{}
			if rng.Intn(2) == 0 {
				for i := 0; i < 1+rng.Intn(3); i++ {
					q.AllOf = append(q.AllOf, Item(rng.Intn(40)))
				}
			}
			if rng.Intn(2) == 0 {
				for i := 0; i < 1+rng.Intn(3); i++ {
					q.NoneOf = append(q.NoneOf, Item(rng.Intn(40)))
				}
			}
			if rng.Intn(3) == 0 {
				for i := 0; i < 5+rng.Intn(10); i++ {
					q.Within = append(q.Within, Item(rng.Intn(40)))
				}
			}
			got, err := ix.Query(q)
			if err != nil {
				t.Fatalf("%v Query(%+v): %v", kind, q, err)
			}
			want := naiveComposite(t, c, q)
			if len(got) != len(want) {
				t.Fatalf("%v Query(%+v) = %d ids, want %d", kind, q, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v Query(%+v) diverges at %d", kind, q, i)
				}
			}
		}
	}
}

func TestCompositeEmptyMatchesAll(t *testing.T) {
	c := sampleCollection(t)
	ix, err := Build(c, Options{PageSize: 512, BlockPostings: 8})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.Query(Composite{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != c.Len() {
		t.Fatalf("empty composite matched %d of %d", len(got), c.Len())
	}
}

func TestJoinAgainstOracle(t *testing.T) {
	// Outer: 200 small sets; inner: the sample collection.
	inner := sampleCollection(t)
	ix, err := Build(inner, Options{PageSize: 512, BlockPostings: 8})
	if err != nil {
		t.Fatal(err)
	}
	outer := NewCollection(40)
	rng := rand.New(rand.NewSource(82))
	for i := 0; i < 200; i++ {
		k := 1 + rng.Intn(3)
		set := make([]Item, k)
		for j := range set {
			set[j] = Item(rng.Intn(40))
		}
		if _, err := outer.Add(set); err != nil {
			t.Fatal(err)
		}
	}

	var pairs int
	err = ix.JoinInto(outer, PredicateSubset, func(outerID uint32, innerIDs []uint32) error {
		oSet, err := outer.Record(outerID)
		if err != nil {
			return err
		}
		want, err := ix.Subset(oSet)
		if err != nil {
			return err
		}
		if len(want) != len(innerIDs) {
			t.Fatalf("join row %d: %d ids, want %d", outerID, len(innerIDs), len(want))
		}
		pairs += len(innerIDs)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if pairs == 0 {
		t.Fatal("join produced no pairs")
	}

	// Error propagation from the sink.
	boom := errors.New("sink failed")
	err = ix.JoinInto(outer, PredicateSubset, func(uint32, []uint32) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("join error = %v, want sink error", err)
	}
	// Invalid predicate.
	if err := ix.JoinInto(outer, Predicate(9), func(uint32, []uint32) error { return nil }); !errors.Is(err, ErrUnknownPredicate) {
		t.Fatalf("bad predicate error = %v", err)
	}
}

func TestJoinEqualityFindsDuplicatesAcrossCollections(t *testing.T) {
	a := NewCollection(10)
	b := NewCollection(10)
	a.Add([]Item{1, 2})
	a.Add([]Item{3})
	b.Add([]Item{1, 2})
	b.Add([]Item{4, 5})
	b.Add([]Item{1, 2})
	ix, err := Build(b, Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	matches := map[uint32][]uint32{}
	if err := ix.JoinInto(a, PredicateEquality, func(o uint32, in []uint32) error {
		matches[o] = append([]uint32(nil), in...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || len(matches[1]) != 2 {
		t.Fatalf("equality join = %v, want outer 1 -> two inner ids", matches)
	}
}
