package setcontain

import (
	"context"
	"fmt"
	"io"
	"sync"

	"repro/internal/storage"
)

// The shard-client layer is the transport seam of the sharded engine:
// a coordinator talks to its shards only through ShardClient (control
// plane) and ShardSession (data plane), so the same scatter-gather
// executor drives local engines and remote daemons interchangeably.
// InprocShard wraps a local Engine; NewRemoteShard (remote.go) speaks
// the HTTP/NDJSON shard protocol served by setcontain/serve's /shard/*
// handlers. ShardedOverClients assembles the client-backed shards into
// an ordinary sharded Index, so Store, serve, and snapshots work over
// remote shards unchanged.

// ShardInfo describes one shard: its engine kind, record counts, and
// vocabulary. Coordinators use it to validate a shard set (domains must
// agree) and to account records without per-call roundtrips.
type ShardInfo struct {
	// Kind is the shard's engine kind.
	Kind Kind
	// Records is the shard's record count, pending inserts included.
	Records int
	// Domain is the shard's vocabulary size.
	Domain int
	// Pending is the shard's unmerged insert count.
	Pending int
	// Deleted is the shard's tombstone count.
	Deleted int
}

// ShardClient is a coordinator's control-plane handle on one shard:
// identity, mutations, planner supports, snapshots, and data-plane
// session creation. Implementations must be safe for concurrent use;
// methods taking a ctx honour its cancellation.
type ShardClient interface {
	// Info describes the shard's current state.
	Info(ctx context.Context) (ShardInfo, error)
	// Session opens an isolated data-plane query session (the client
	// analogue of Engine.NewReader); cachePages sizes any local cache
	// the transport keeps (<= 0 selects the default; remote transports
	// may ignore it).
	Session(cachePages int) (ShardSession, error)
	// ItemSupports fetches the shard's per-item support table for the
	// coordinator's expression planner.
	ItemSupports(ctx context.Context) ([]int64, error)
	// Insert adds a record to the shard and returns its local id.
	Insert(ctx context.Context, set []Item) (uint32, error)
	// Delete tombstones the shard-local record id.
	Delete(ctx context.Context, local uint32) error
	// MergeDelta folds the shard's pending inserts and tombstones.
	MergeDelta(ctx context.Context) error
	// Snapshot streams the shard's self-describing snapshot container
	// into w.
	Snapshot(ctx context.Context, w io.Writer) error
	// Close releases the client's resources.
	Close() error
}

// ShardSession is a coordinator's data-plane handle on one shard: one
// in-flight call at a time (the scatter-gather executor issues at most
// one per shard), answering in ascending shard-local ids.
type ShardSession interface {
	// AppendQuery answers one containment query, appending local ids
	// to dst.
	AppendQuery(ctx context.Context, dst []uint32, q Query) ([]uint32, error)
	// AppendExpr answers a whole boolean expression, planned against
	// the shard's own supports, appending at most limit local ids to
	// dst (limit 0 = unlimited).
	AppendExpr(ctx context.Context, dst []uint32, expr *Expr, limit int) ([]uint32, error)
	// SetInterrupt installs fn as the session's cancellation check,
	// consulted during evaluation; nil clears it. fn must tolerate
	// concurrent calls.
	SetInterrupt(fn func() error)
	// Stats reports the session's I/O behaviour where the transport
	// can observe it (zero otherwise).
	Stats() CacheStats
	// ResetStats zeroes the session's statistics.
	ResetStats()
	// Close releases the session.
	Close() error
}

// exprAppender is the reader-level capability behind whole-expression
// pushdown: shard readers that implement it (client-backed readers)
// receive the original expression instead of the coordinator's plan.
type exprAppender interface {
	AppendExpr(ctx context.Context, dst []uint32, expr *Expr, limit int) ([]uint32, error)
}

// --- In-process client ---------------------------------------------------

// InprocShard wraps a local Engine as a ShardClient — the in-process
// transport. It is the reference implementation remote transports are
// held byte-identical to, and what `-transport inproc` benchmarks to
// isolate the client-layer overhead from the network's.
func InprocShard(eng Engine) ShardClient { return &inprocClient{eng: eng} }

type inprocClient struct {
	eng Engine

	mu   sync.Mutex
	prof *SupportProfile // session planning profile, dropped on mutation
}

func (c *inprocClient) Info(context.Context) (ShardInfo, error) {
	return ShardInfo{
		Kind:    c.eng.Kind(),
		Records: c.eng.NumRecords(),
		Domain:  c.eng.DomainSize(),
		Pending: c.eng.PendingInserts(),
		Deleted: c.eng.Deleted(),
	}, nil
}

func (c *inprocClient) Session(cachePages int) (ShardSession, error) {
	r, err := c.eng.NewReader(cachePages)
	if err != nil {
		return nil, err
	}
	return &inprocSession{c: c, r: r}, nil
}

// profile returns the client's cached planning profile, recomputing it
// after a mutation dropped it. Sessions plan pushed-down expressions
// against it; staleness only skews cost estimates, never answers.
func (c *inprocClient) profile() *SupportProfile {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.prof == nil {
		c.prof = SupportsOf(c.eng)
	}
	return c.prof
}

func (c *inprocClient) invalidate() {
	c.mu.Lock()
	c.prof = nil
	c.mu.Unlock()
}

func (c *inprocClient) ItemSupports(context.Context) ([]int64, error) {
	return c.eng.ItemSupports(), nil
}

func (c *inprocClient) Insert(_ context.Context, set []Item) (uint32, error) {
	id, err := c.eng.Insert(set)
	if err == nil {
		c.invalidate()
	}
	return id, err
}

func (c *inprocClient) Delete(_ context.Context, local uint32) error {
	err := c.eng.Delete(local)
	if err == nil {
		c.invalidate()
	}
	return err
}

func (c *inprocClient) MergeDelta(context.Context) error {
	err := c.eng.MergeDelta()
	if err == nil {
		c.invalidate()
	}
	return err
}

func (c *inprocClient) Snapshot(_ context.Context, w io.Writer) error { return c.eng.Save(w) }

func (c *inprocClient) Close() error { return nil }

// inprocSession answers on an isolated reader; pushed-down expressions
// are planned locally against the client's cached supports, exactly
// like a remote shard daemon plans against its own.
type inprocSession struct {
	c    *inprocClient
	r    *Reader
	eval Evaluator
}

func (s *inprocSession) AppendQuery(ctx context.Context, dst []uint32, q Query) ([]uint32, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.r.EvalAppend(dst, q)
}

func (s *inprocSession) AppendExpr(ctx context.Context, dst []uint32, expr *Expr, limit int) ([]uint32, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if q, ok := expr.AsQuery(); ok && limit == 0 {
		return s.r.EvalAppend(dst, q)
	}
	plan, err := PlanExpr(expr, s.c.profile())
	if err != nil {
		return nil, err
	}
	ids, _, err := s.eval.EvalLimitAppend(dst, plan, s.r, limit)
	return ids, err
}

func (s *inprocSession) SetInterrupt(fn func() error) { s.r.setInterrupt(fn) }
func (s *inprocSession) Stats() CacheStats            { return s.r.CacheStats() }
func (s *inprocSession) ResetStats()                  { s.r.ResetCacheStats() }
func (s *inprocSession) Close() error                 { return nil }

// --- Client-backed Engine adapter ----------------------------------------

// ShardedOverClients assembles a sharded Index whose shards are reached
// through the given clients (in shard order, matching the partition the
// shards hold). Every client's Info is fetched under ctx to validate
// the set: the shards' vocabularies must agree. The resulting Index
// behaves exactly like a locally sharded one — Store, serve, and
// snapshots work unchanged — with each shard call going through its
// client's transport.
func ShardedOverClients(ctx context.Context, clients []ShardClient) (*Index, error) {
	if len(clients) == 0 {
		return nil, fmt.Errorf("setcontain: sharded index needs at least one shard client")
	}
	engines := make([]Engine, len(clients))
	domain := -1
	for i, c := range clients {
		info, err := c.Info(ctx)
		if err != nil {
			return nil, fmt.Errorf("setcontain: shard %d: %w", i, err)
		}
		if domain < 0 {
			domain = info.Domain
		} else if info.Domain != domain {
			return nil, fmt.Errorf("setcontain: shard %d domain %d != shard 0 domain %d",
				i, info.Domain, domain)
		}
		engines[i] = &clientEngine{c: c, info: info}
	}
	eng, err := shardedOf(engines)
	if err != nil {
		return nil, err
	}
	return IndexOver(eng), nil
}

// errClientPool reports that a client-backed shard has no local buffer
// pool to re-point.
var errClientPool = fmt.Errorf("setcontain: client-backed shard has no local buffer pool")

// clientEngine adapts a ShardClient to the Engine interface, which is
// what lets the sharded engine, Store, serve, and the snapshot writer
// drive remote shards through their existing code paths. Record
// counters come from the cached ShardInfo, maintained locally across
// mutations (and refreshed from the shard on MergeDelta) to avoid a
// roundtrip per accessor.
type clientEngine struct {
	c    ShardClient
	info ShardInfo

	mu   sync.Mutex
	sess ShardSession // lazy engine-level session for direct Queryable calls
}

func (e *clientEngine) Kind() Kind      { return e.info.Kind }
func (e *clientEngine) NumRecords() int { return e.info.Records }
func (e *clientEngine) DomainSize() int { return e.info.Domain }

// session returns the engine-level data-plane session, opening it on
// first use. Engine values are single-goroutine by contract, but the
// sharded fan-out calls sibling shards concurrently — each clientEngine
// still sees at most one call at a time, which is the session contract.
func (e *clientEngine) session() (ShardSession, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.sess == nil {
		sess, err := e.c.Session(0)
		if err != nil {
			return nil, err
		}
		e.sess = sess
	}
	return e.sess, nil
}

func (e *clientEngine) eval(q Query) ([]uint32, error) {
	sess, err := e.session()
	if err != nil {
		return nil, err
	}
	return sess.AppendQuery(context.Background(), nil, q)
}

func (e *clientEngine) Subset(qs []Item) ([]uint32, error)   { return e.eval(SubsetQuery(qs)) }
func (e *clientEngine) Equality(qs []Item) ([]uint32, error) { return e.eval(EqualityQuery(qs)) }
func (e *clientEngine) Superset(qs []Item) ([]uint32, error) { return e.eval(SupersetQuery(qs)) }

func (e *clientEngine) Insert(set []Item) (uint32, error) {
	id, err := e.c.Insert(context.Background(), set)
	if err != nil {
		return 0, err
	}
	e.info.Records++
	e.info.Pending++
	return id, nil
}

func (e *clientEngine) Delete(local uint32) error {
	if err := e.c.Delete(context.Background(), local); err != nil {
		return err
	}
	e.info.Deleted++
	return nil
}

func (e *clientEngine) Deleted() int { return e.info.Deleted }

func (e *clientEngine) MergeDelta() error {
	if err := e.c.MergeDelta(context.Background()); err != nil {
		return err
	}
	// The merge changed the shard's physical state wholesale; re-sync
	// the cached counters from the source instead of guessing.
	info, err := e.c.Info(context.Background())
	if err != nil {
		return err
	}
	e.info = info
	return nil
}

func (e *clientEngine) PendingInserts() int { return e.info.Pending }

func (e *clientEngine) NewReader(cachePages int) (*Reader, error) {
	sess, err := e.c.Session(cachePages)
	if err != nil {
		return nil, err
	}
	return &Reader{r: &clientReader{sess: sess}}, nil
}

func (e *clientEngine) Save(w io.Writer) error { return e.c.Snapshot(context.Background(), w) }

// ItemSupports fetches the shard's support table; a transport failure
// degrades to a zero table (uniform planner costs), never to a wrong
// answer — Engine's signature has no error to raise.
func (e *clientEngine) ItemSupports() []int64 {
	sup, err := e.c.ItemSupports(context.Background())
	if err != nil || len(sup) != e.info.Domain {
		return make([]int64, e.info.Domain)
	}
	return sup
}

func (e *clientEngine) Space() SpaceInfo { return SpaceInfo{} }

func (e *clientEngine) Stats() CacheStats {
	e.mu.Lock()
	sess := e.sess
	e.mu.Unlock()
	if sess == nil {
		return CacheStats{}
	}
	return sess.Stats()
}

func (e *clientEngine) ResetStats() {
	e.mu.Lock()
	sess := e.sess
	e.mu.Unlock()
	if sess != nil {
		sess.ResetStats()
	}
}

func (e *clientEngine) SetPool(*storage.BufferPool) error { return errClientPool }
func (e *clientEngine) Pool() *storage.BufferPool         { return nil }

// Unwrap returns the underlying ShardClient.
func (e *clientEngine) Unwrap() any { return e.c }

// clientReader is the engineReader behind a client-backed shard's
// Reader: every call crosses the client's transport on its session. It
// propagates interrupts to the session (there is no local pool to hook)
// and accepts whole-expression pushdown.
type clientReader struct {
	sess ShardSession
}

func (r *clientReader) Subset(qs []Item) ([]uint32, error) {
	return r.sess.AppendQuery(context.Background(), nil, SubsetQuery(qs))
}

func (r *clientReader) Equality(qs []Item) ([]uint32, error) {
	return r.sess.AppendQuery(context.Background(), nil, EqualityQuery(qs))
}

func (r *clientReader) Superset(qs []Item) ([]uint32, error) {
	return r.sess.AppendQuery(context.Background(), nil, SupersetQuery(qs))
}

// AppendSubset implements AppendQueryable straight onto the session's
// append form; likewise AppendEquality and AppendSuperset.
func (r *clientReader) AppendSubset(dst []uint32, qs []Item) ([]uint32, error) {
	return r.sess.AppendQuery(context.Background(), dst, SubsetQuery(qs))
}

func (r *clientReader) AppendEquality(dst []uint32, qs []Item) ([]uint32, error) {
	return r.sess.AppendQuery(context.Background(), dst, EqualityQuery(qs))
}

func (r *clientReader) AppendSuperset(dst []uint32, qs []Item) ([]uint32, error) {
	return r.sess.AppendQuery(context.Background(), dst, SupersetQuery(qs))
}

// AppendExpr implements the exprAppender pushdown capability.
func (r *clientReader) AppendExpr(ctx context.Context, dst []uint32, expr *Expr, limit int) ([]uint32, error) {
	return r.sess.AppendExpr(ctx, dst, expr, limit)
}

func (r *clientReader) Stats() storage.AccessStats {
	s := r.sess.Stats()
	return storage.AccessStats{
		Hits:       s.Hits,
		Misses:     s.PageReads,
		SeqMisses:  s.Sequential,
		NearMisses: s.Near,
		RandMisses: s.Random,
	}
}

func (r *clientReader) ResetStats() { r.sess.ResetStats() }

// Pool returns nil: the pages live on the shard's side of the
// transport. Interrupts go through setInterrupt instead.
func (r *clientReader) Pool() *storage.BufferPool { return nil }

// setInterrupt implements interruptPropagator on the session.
func (r *clientReader) setInterrupt(fn func() error) { r.sess.SetInterrupt(fn) }
