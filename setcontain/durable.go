package setcontain

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wal"
)

// Durable binds an Index, its Store, and a write-ahead log into the
// never-lose-an-acknowledged-write mutation path. Every insert and
// delete is applied to the live index, appended to the log, and made
// durable per the configured fsync policy before the call returns;
// OpenDurable restores the newest checkpoint snapshot and replays the
// log tail on top, so a crash at any moment — mid-append, mid-
// checkpoint, mid-truncate — recovers exactly the acknowledged prefix.
//
// The directory layout is the wal package's:
//
//	wal-<first LSN>.seg        log segments
//	checkpoint-<LSN>.snap      snapshot containers (Index.Save format),
//	                           the hex suffix being the LSN watermark
//	                           the snapshot covers
//
// A checkpoint manager folds the log into a fresh snapshot — written
// crash-atomically (temp file, fsync, rename, directory fsync) — and
// truncates the covered segments, triggered by bytes appended since the
// last checkpoint (DurableOptions.CheckpointBytes) or by an explicit
// Checkpoint call. The two newest checkpoints are retained so recovery
// can fall back one generation if the newest is damaged.
//
// Concurrency: mutations, checkpoints, and Snapshot serialize on the
// Durable's own mutex; queries flow through the Store untouched. When a
// log append or fsync fails the log wedges — every later mutation
// returns the original error — because the failed mutation is applied
// in memory but possibly missing from the log, and continuing would let
// the two diverge. Restarting the process recovers the logged prefix.
type Durable struct {
	idx   *Index
	store *Store
	log   *wal.Log
	dir   string
	o     DurableOptions

	// mu serializes mutations, checkpoint snapshots, and Close against
	// each other. Lock ordering: serve's admin lock (if any) → mu →
	// Store.mu (via store.Update).
	mu     sync.Mutex
	closed bool

	// ckpt serializes whole checkpoint cycles (manual and background) so
	// their file operations never interleave; it nests outside mu.
	ckpt sync.Mutex

	mark   atomic.Uint64 // newest durable checkpoint's LSN watermark
	replay wal.ReplayStats

	checkpoints     atomic.Int64
	checkpointNanos atomic.Int64

	kick chan struct{}
	stop chan struct{}
	done chan struct{}
}

// DurableOptions configures OpenDurable and NewDurable. The zero value
// selects the snapshot's recorded cache budget, 4 MB segments, the
// always-fsync policy, a 64 MB checkpoint trigger, and the real
// filesystem.
type DurableOptions struct {
	// CachePages is the per-reader page-cache budget, as in NewStore and
	// WithCachePages (0 keeps the snapshot's recorded budget).
	CachePages int
	// SegmentBytes is the log segment rotation threshold (0 = 4 MB).
	SegmentBytes int64
	// Sync is the fsync policy governing when a mutation is acknowledged.
	Sync wal.SyncPolicy
	// SyncEvery is the background flush period under SyncInterval.
	SyncEvery time.Duration
	// CheckpointBytes triggers a background checkpoint once that many log
	// bytes accumulate since the last one. 0 selects 64 MB; negative
	// disables automatic checkpoints (explicit Checkpoint still works).
	CheckpointBytes int64
	// FS is the filesystem; nil selects the real one. Tests inject
	// wal.MemFS / wal.FaultyFS here.
	FS wal.FS
	// Logf, when set, receives replay and checkpoint progress lines.
	Logf func(format string, args ...any)
}

func (o *DurableOptions) fill() {
	if o.CheckpointBytes == 0 {
		o.CheckpointBytes = 64 << 20
	}
	if o.FS == nil {
		o.FS = wal.OSFS{}
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

func (o DurableOptions) walOptions() wal.Options {
	return wal.Options{
		SegmentBytes: o.SegmentBytes,
		Sync:         o.Sync,
		SyncEvery:    o.SyncEvery,
		FS:           o.FS,
	}
}

// ErrNoCheckpoint reports a WAL directory with no checkpoint snapshot:
// OpenDurable cannot restore an index from it. Callers bootstrap by
// building an Index some other way (dataset, plain snapshot) and
// handing it to NewDurable.
var ErrNoCheckpoint = errors.New("setcontain: no checkpoint in WAL directory")

// checkpointName spells the canonical checkpoint file name for an LSN
// watermark.
func checkpointName(mark uint64) string { return fmt.Sprintf("checkpoint-%016x.snap", mark) }

// parseCheckpointName extracts the watermark from a checkpoint name.
func parseCheckpointName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "checkpoint-") || !strings.HasSuffix(name, ".snap") {
		return 0, false
	}
	v, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "checkpoint-"), ".snap"), 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// listCheckpoints returns the directory's checkpoint watermarks in
// descending order (newest first), cleaning up any abandoned temp files
// from a checkpoint that crashed mid-write.
func listCheckpoints(fs wal.FS, dir string) ([]uint64, error) {
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var marks []uint64
	for _, name := range names {
		if strings.HasSuffix(name, ".tmp") {
			fs.Remove(filepath.Join(dir, name))
			continue
		}
		if mark, ok := parseCheckpointName(name); ok {
			marks = append(marks, mark)
		}
	}
	sort.Slice(marks, func(i, j int) bool { return marks[i] > marks[j] })
	return marks, nil
}

// OpenDurable restores the index in dir: the newest loadable checkpoint
// snapshot, then the log tail above its watermark replayed on top. A
// directory without any checkpoint returns ErrNoCheckpoint. A damaged
// newest checkpoint falls back to the retained previous one (the log
// still holds everything above the older watermark, so no acknowledged
// write is lost); replay stops cleanly at a torn final record.
func OpenDurable(dir string, o DurableOptions) (*Durable, error) {
	o.fill()
	fs := o.FS
	if err := fs.MkdirAll(dir); err != nil {
		return nil, err
	}
	marks, err := listCheckpoints(fs, dir)
	if err != nil {
		return nil, err
	}
	if len(marks) == 0 {
		return nil, ErrNoCheckpoint
	}
	var (
		idx     *Index
		mark    uint64
		loadErr error
	)
	for _, m := range marks {
		f, err := fs.Open(filepath.Join(dir, checkpointName(m)))
		if err != nil {
			loadErr = err
			continue
		}
		ix, err := Open(f, WithCachePages(o.CachePages))
		f.Close()
		if err != nil {
			o.Logf("setcontain: checkpoint %s unreadable, falling back: %v", checkpointName(m), err)
			loadErr = err
			continue
		}
		idx, mark = ix, m
		break
	}
	if idx == nil {
		return nil, fmt.Errorf("setcontain: no loadable checkpoint: %w", loadErr)
	}
	log, replay, err := wal.Open(dir, o.walOptions(), mark, func(rec wal.Record) error {
		return applyRecord(idx, rec)
	})
	if err != nil {
		return nil, fmt.Errorf("setcontain: replaying log: %w", err)
	}
	if replay.Records > 0 || replay.Truncated {
		o.Logf("setcontain: replayed %d log records in %v (%d skipped, truncated=%v)",
			replay.Records, replay.Duration.Round(time.Microsecond), replay.Skipped, replay.Truncated)
	}
	return newDurable(dir, idx, log, mark, replay, o), nil
}

// NewDurable initializes dir as the durable home of idx: an initial
// checkpoint of the index as handed in, then an empty log. It refuses a
// directory that already holds a checkpoint — that is an existing
// durable index, and silently re-seeding it would discard its log; use
// OpenDurable there. Stale log segments without any checkpoint (an
// interrupted bootstrap) are cleared.
func NewDurable(dir string, idx *Index, o DurableOptions) (*Durable, error) {
	o.fill()
	fs := o.FS
	if err := fs.MkdirAll(dir); err != nil {
		return nil, err
	}
	marks, err := listCheckpoints(fs, dir)
	if err != nil {
		return nil, err
	}
	if len(marks) > 0 {
		return nil, fmt.Errorf("setcontain: %s already holds a durable index (checkpoint %s); open it with OpenDurable",
			dir, checkpointName(marks[0]))
	}
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		if strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".seg") {
			if err := fs.Remove(filepath.Join(dir, name)); err != nil {
				return nil, err
			}
		}
	}
	// The initial checkpoint makes the bootstrap itself crash-atomic:
	// until the rename lands the directory still has no checkpoint, and a
	// rerun starts over.
	if err := wal.WriteFileAtomic(fs, filepath.Join(dir, checkpointName(0)), idx.Save); err != nil {
		return nil, fmt.Errorf("setcontain: writing initial checkpoint: %w", err)
	}
	log, _, err := wal.Open(dir, o.walOptions(), 0, nil)
	if err != nil {
		return nil, err
	}
	return newDurable(dir, idx, log, 0, wal.ReplayStats{}, o), nil
}

func newDurable(dir string, idx *Index, log *wal.Log, mark uint64, replay wal.ReplayStats, o DurableOptions) *Durable {
	d := &Durable{
		idx:    idx,
		store:  NewStore(idx, o.CachePages),
		log:    log,
		dir:    dir,
		o:      o,
		replay: replay,
	}
	d.mark.Store(mark)
	if o.CheckpointBytes > 0 {
		d.kick = make(chan struct{}, 1)
		d.stop = make(chan struct{})
		d.done = make(chan struct{})
		go d.checkpointLoop()
	}
	return d
}

// applyRecord replays one logged mutation into idx. Replay re-runs the
// engine's own insert path, so the id it assigns must equal the id the
// record captured at logging time — id assignment is deterministic
// (sequential for single engines, round-robin for sharded) and a
// mismatch means the log and checkpoint disagree about history, which
// must surface, not be papered over.
func applyRecord(idx *Index, rec wal.Record) error {
	switch rec.Op {
	case wal.OpInsert:
		id, err := idx.Insert(rec.Set)
		if err != nil {
			return err
		}
		if id != rec.ID {
			return fmt.Errorf("setcontain: replayed insert assigned id %d, log recorded %d", id, rec.ID)
		}
		return nil
	case wal.OpDelete:
		return idx.Delete(rec.ID)
	}
	return fmt.Errorf("setcontain: unknown log op %v", rec.Op)
}

// Index returns the live index (for identity reads: kind, record
// counts, shard plans). Mutate only through the Durable.
func (d *Durable) Index() *Index { return d.idx }

// Store returns the query store over the live index.
func (d *Durable) Store() *Store { return d.store }

// Dir returns the WAL directory.
func (d *Durable) Dir() string { return d.dir }

// InsertSets implements Mutator: each set is inserted into the live
// index and appended to the log; the batch is fsynced once per the
// policy before the call returns. On a mid-batch engine failure the
// earlier inserts stick (applied and logged) and the error names the
// failing set; on a log failure the log wedges and the whole batch
// reports the wedge.
func (d *Durable) InsertSets(sets [][]Item) ([]uint32, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, errDurableClosed
	}
	// Validate sizes up front: a set too large for one log record must
	// be refused before anything is applied — rejecting it at the log
	// after the engine insert would leave the index and the log
	// disagreeing, and logging it anyway would make replay truncate it
	// (and every acknowledged record after it) as a corrupt tail.
	for i, set := range sets {
		if len(set) > wal.MaxInsertItems {
			return nil, fmt.Errorf("setcontain: inserting set %d: %w (%d items, max %d)",
				i, wal.ErrRecordTooLarge, len(set), wal.MaxInsertItems)
		}
	}
	ids := make([]uint32, 0, len(sets))
	err := d.store.Update(func() error {
		for i, set := range sets {
			id, err := d.idx.Insert(set)
			if err != nil {
				return fmt.Errorf("setcontain: inserting set %d (after %d inserted): %w", i, len(ids), err)
			}
			if _, lerr := d.log.Append(wal.Record{Op: wal.OpInsert, ID: id, Set: set}); lerr != nil {
				return lerr
			}
			ids = append(ids, id)
		}
		return nil
	})
	// Commit even after a mid-batch engine error: the sets inserted
	// before the failure were logged and are being reported as applied,
	// so their durability must not ride on a later call.
	if cerr := d.log.Commit(); err == nil {
		err = cerr
	}
	d.maybeCheckpoint()
	return ids, err
}

// DeleteIDs implements Mutator with the same apply-log-commit shape as
// InsertSets.
func (d *Durable) DeleteIDs(ids []uint32) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errDurableClosed
	}
	err := d.store.Update(func() error {
		for i, id := range ids {
			if err := d.idx.Delete(id); err != nil {
				return fmt.Errorf("setcontain: deleting id %d (after %d deleted): %w", id, i, err)
			}
			if _, lerr := d.log.Append(wal.Record{Op: wal.OpDelete, ID: id}); lerr != nil {
				return lerr
			}
		}
		return nil
	})
	if cerr := d.log.Commit(); err == nil {
		err = cerr
	}
	d.maybeCheckpoint()
	return err
}

// MergeDelta implements Mutator. A merge is a physical reorganization —
// it changes no logical answer — so it is not logged: a replay that
// skips it reconstructs an index with the same answers, merely with its
// deltas still pending.
func (d *Durable) MergeDelta() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errDurableClosed
	}
	return d.store.Update(d.idx.MergeDelta)
}

var errDurableClosed = errors.New("setcontain: durable index closed")

// Snapshot streams the live index's snapshot container to w, consistent
// with mutations and checkpoints (it holds the same mutex). The serving
// layer's /admin/snapshot routes through here when a WAL is attached.
func (d *Durable) Snapshot(w io.Writer) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errDurableClosed
	}
	return d.idx.Save(w)
}

// Checkpoint folds the log into a fresh snapshot now: serialize the
// index and rotate the log under the mutation lock, then — with
// mutations flowing again — write the snapshot crash-atomically, drop
// checkpoints older than the previous one, and truncate the covered log
// segments. A crash anywhere in the sequence leaves either the old
// checkpoint plus the whole log, or the new checkpoint plus a log tail
// that replay skips by watermark; both recover exactly.
func (d *Durable) Checkpoint() error {
	d.ckpt.Lock()
	defer d.ckpt.Unlock()
	start := time.Now()

	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return errDurableClosed
	}
	var buf bytes.Buffer
	err := d.idx.Save(&buf)
	mark := d.log.LastLSN()
	if err == nil {
		// Rotate so every segment covered by the new checkpoint is closed
		// and whole-file removable by TruncateThrough.
		err = d.log.Rotate()
	}
	d.mu.Unlock()
	if err != nil {
		return fmt.Errorf("setcontain: checkpoint: %w", err)
	}

	if mark == d.mark.Load() && d.checkpoints.Load() > 0 {
		// Nothing new since the last checkpoint; skip the file churn.
		return nil
	}
	fs := d.o.FS
	if err := wal.WriteFileAtomic(fs, filepath.Join(d.dir, checkpointName(mark)), func(w io.Writer) error {
		_, werr := w.Write(buf.Bytes())
		return werr
	}); err != nil {
		return fmt.Errorf("setcontain: checkpoint: %w", err)
	}
	prev := d.mark.Load()
	d.mark.Store(mark)
	d.checkpoints.Add(1)
	d.checkpointNanos.Add(time.Since(start).Nanoseconds())

	// Retain the previous checkpoint as a fallback generation; drop
	// everything older, then the log segments the new checkpoint covers.
	// Failures past this point do not invalidate the checkpoint — the
	// leftovers are garbage-collected by the next cycle.
	if marks, err := listCheckpoints(fs, d.dir); err == nil {
		for _, m := range marks {
			if m != mark && m != prev {
				fs.Remove(filepath.Join(d.dir, checkpointName(m)))
			}
		}
	}
	if err := d.log.TruncateThrough(mark); err != nil {
		d.o.Logf("setcontain: checkpoint: truncating log: %v", err)
	}
	d.log.NoteCheckpoint()
	d.o.Logf("setcontain: checkpoint at lsn %d (%d bytes, %v)",
		mark, buf.Len(), time.Since(start).Round(time.Millisecond))
	return nil
}

// maybeCheckpoint kicks the background checkpointer when enough log
// bytes have accumulated; callers hold d.mu, so the kick must not
// block.
func (d *Durable) maybeCheckpoint() {
	if d.kick == nil {
		return
	}
	if d.log.Stats().BytesSinceCheckpoint < d.o.CheckpointBytes {
		return
	}
	select {
	case d.kick <- struct{}{}:
	default:
	}
}

func (d *Durable) checkpointLoop() {
	defer close(d.done)
	for {
		select {
		case <-d.stop:
			return
		case <-d.kick:
			if err := d.Checkpoint(); err != nil && !errors.Is(err, errDurableClosed) {
				d.o.Logf("setcontain: background checkpoint: %v", err)
			}
		}
	}
}

// DurableStats is a point-in-time observation of the durability layer,
// the raw material of the serving layer's /stats WAL section.
type DurableStats struct {
	// Log is the write-ahead log's own counters.
	Log wal.Stats
	// Replay describes what OpenDurable recovered at startup.
	Replay wal.ReplayStats
	// CheckpointLSN is the newest durable checkpoint's watermark.
	CheckpointLSN uint64
	// Checkpoints counts checkpoints taken since open.
	Checkpoints int64
	// CheckpointNanos sums their durations.
	CheckpointNanos int64
}

// Stats returns the durability layer's counters.
func (d *Durable) Stats() DurableStats {
	return DurableStats{
		Log:             d.log.Stats(),
		Replay:          d.replay,
		CheckpointLSN:   d.mark.Load(),
		Checkpoints:     d.checkpoints.Load(),
		CheckpointNanos: d.checkpointNanos.Load(),
	}
}

// Close stops the background checkpointer and closes the log, flushing
// any unsynced tail so a graceful shutdown loses nothing even under the
// interval and OS policies. The index remains queryable in memory;
// mutations fail once closed.
func (d *Durable) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()
	if d.stop != nil {
		close(d.stop)
		<-d.done
	}
	return d.log.Close()
}
