package setcontain

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"runtime"
	"sync"
)

// The scatter-gather executor is the one fan-out/merge engine behind
// every sharded execution path — Store.Exec*, ExecExpr*, the limit
// pushdown, and the engine-level predicate calls. It is transport
// agnostic: the per-shard callback may hit an in-process engine, an
// in-process ShardClient, or a remote HTTP shard; the executor only
// owns the concurrency (one goroutine per shard — shards have
// independent readers/connections, so one in-flight call per shard is
// safe), sibling cancellation on first failure, error aggregation into
// ShardError, and the order-preserving k-way merge back to global ids.

// ShardError reports which shard failed during a scatter-gather
// fan-out. errors.Is/As see through it to the underlying cause.
type ShardError struct {
	// Shard is the failing shard's index in [0, NumShards).
	Shard int
	// Err is the shard's error.
	Err error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("setcontain: shard %d: %v", e.Shard, e.Err)
}

// Unwrap exposes the shard's underlying error to errors.Is/As.
func (e *ShardError) Unwrap() error { return e.Err }

// shardCall answers one shard's part of a scatter: ascending local ids
// plus an error. ctx is canceled when a sibling shard fails first.
type shardCall func(ctx context.Context, shard int) ([]uint32, error)

// scatterGather fans call out to every shard concurrently, cancels the
// siblings as soon as one shard fails, and merges the ascending local
// answers into one ascending global-id slice through the partitioner.
// The first causal failure comes back wrapped in ShardError; if the
// caller's own ctx was canceled, that ctx error is returned unwrapped
// (the caller asked to stop — no shard is at fault).
func scatterGather(ctx context.Context, part Partitioner, call shardCall) ([]uint32, error) {
	locals, err := scatterLocals(ctx, part.NumShards(), call)
	if err != nil {
		return nil, err
	}
	return mergeLocals(part, locals), nil
}

// scatterLocals is scatterGather without the merge: the per-shard
// answers in shard order, for callers that post-process locals
// themselves (the limit pushdown truncates after merging; snapshot
// assembly wants raw frames).
func scatterLocals(ctx context.Context, n int, call shardCall) ([][]uint32, error) {
	if n == 1 {
		// One shard: no goroutine, no derived context, direct call.
		local, err := call(ctx, 0)
		if err != nil {
			return nil, gatherErr(ctx, []error{err})
		}
		return [][]uint32{local}, nil
	}
	// Always derive a cancelable context, even from context.Background:
	// the first shard failure must reach the siblings (a blocked remote
	// call on a healthy shard would otherwise outlive a dead one).
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	locals := make([][]uint32, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for s := 0; s < n; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			locals[s], errs[s] = call(cctx, s)
			if errs[s] != nil {
				cancel()
			}
		}(s)
	}
	wg.Wait()
	if err := gatherErr(ctx, errs); err != nil {
		return nil, err
	}
	return locals, nil
}

// gatherErr reduces per-shard errors to the one the caller should see:
// the caller's own cancellation verbatim, else the first shard error
// that is not a sibling-cancellation casualty, wrapped in ShardError.
func gatherErr(ctx context.Context, errs []error) error {
	first := -1
	for s, err := range errs {
		if err == nil {
			continue
		}
		if first < 0 {
			first = s
		}
		if !errors.Is(err, context.Canceled) {
			first = s
			break
		}
	}
	if first < 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return &ShardError{Shard: first, Err: errs[first]}
}

// forEachShard runs f for every shard index concurrently, bounded by at
// most `bound` goroutines (<= 0 selects GOMAXPROCS), and returns the
// per-shard errors. It is the bounded fan-out loop behind parallel
// shard builds, merges, and snapshot encode/decode — control-plane
// work, where a goroutine per shard times cores is too many. The query
// path uses scatterGather, whose fan-out is one goroutine per shard.
func forEachShard(n, bound int, f func(s int) error) []error {
	if bound <= 0 {
		bound = runtime.GOMAXPROCS(0)
	}
	if bound > n {
		bound = n
	}
	errs := make([]error, n)
	sem := make(chan struct{}, bound)
	var wg sync.WaitGroup
	for s := 0; s < n; s++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(s int) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[s] = f(s)
		}(s)
	}
	wg.Wait()
	return errs
}

// mergeLocals interleaves the shards' ascending local answers into one
// ascending global-id slice, mapping local ids to global through the
// partitioner. Each head's global id is computed once when the head
// advances (not re-derived per comparison), so the merge costs one
// GlobalOf per output id plus a k-wide scan per round.
func mergeLocals(part Partitioner, locals [][]uint32) []uint32 {
	n := len(locals)
	total := 0
	for _, l := range locals {
		total += len(l)
	}
	out := make([]uint32, 0, total)
	if total == 0 {
		return out
	}
	if n == 1 {
		for _, l := range locals[0] {
			out = append(out, part.GlobalOf(0, l))
		}
		return out
	}
	pos := make([]int, n)
	heads := make([]uint32, n) // current global id per shard; 0 = exhausted
	live := 0
	for s, l := range locals {
		if len(l) > 0 {
			heads[s] = part.GlobalOf(s, l[0])
			live++
		}
	}
	for live > 0 {
		best := -1
		var bestID uint32
		for s, id := range heads {
			if id == 0 {
				continue
			}
			if best < 0 || id < bestID {
				best, bestID = s, id
			}
		}
		out = append(out, bestID)
		pos[best]++
		if pos[best] < len(locals[best]) {
			heads[best] = part.GlobalOf(best, locals[best][pos[best]])
		} else {
			heads[best] = 0
			live--
		}
	}
	return out
}

// MergeSeqs interleaves already-ascending id sequences into one
// ascending sequence, consuming each input lazily (via iter.Pull) — the
// streaming form of the k-way interleave the scatter-gather executor
// performs directly (mergeLocals). Inputs must yield comparable ids
// from the same id space: per-shard *local* answers need the
// partitioner's global mapping applied first. Nil sequences are
// skipped, and abandoning the merged sequence early stops every input.
func MergeSeqs(seqs ...iter.Seq[uint32]) iter.Seq[uint32] {
	return func(yield func(uint32) bool) {
		type head struct {
			v    uint32
			next func() (uint32, bool)
			stop func()
		}
		heads := make([]head, 0, len(seqs))
		defer func() {
			for _, h := range heads {
				h.stop()
			}
		}()
		for _, s := range seqs {
			if s == nil {
				continue
			}
			next, stop := iter.Pull(s)
			v, ok := next()
			if !ok {
				stop()
				continue
			}
			heads = append(heads, head{v: v, next: next, stop: stop})
		}
		for len(heads) > 0 {
			mi := 0
			for i := 1; i < len(heads); i++ {
				if heads[i].v < heads[mi].v {
					mi = i
				}
			}
			if !yield(heads[mi].v) {
				return
			}
			if v, ok := heads[mi].next(); ok {
				heads[mi].v = v
			} else {
				heads[mi].stop()
				heads[mi] = heads[len(heads)-1]
				heads = heads[:len(heads)-1]
			}
		}
	}
}
