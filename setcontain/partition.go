package setcontain

import "fmt"

// The partition layer owns the one fact everything sharded depends on:
// which shard holds a global record id, and how that id translates to
// the shard's local id space. Build splits, query merges, insert
// routing, delete routing, and snapshot manifests all consult the same
// Partitioner value, so changing the partition scheme is a one-file
// change (plus a registry entry) instead of a hunt through the engine.
//
// A Partitioner must be a bijection between global ids and
// (shard, local) pairs, and must preserve order within a shard:
// ascending locals on one shard map to ascending globals. That
// monotonicity is what keeps the scatter-gather merge a pure k-way
// interleave and sharded answers byte-identical to single-engine ones.

// PartitionScheme identifies a partition scheme in snapshot manifests
// and on the wire. Values are persistent: never renumber them.
type PartitionScheme uint32

// The registered partition schemes.
const (
	// SchemeRoundRobin routes global id g to shard (g-1) mod N — the
	// scheme sharded builds use. Local ids are dense per shard and new
	// ids rotate across shards, so shard sizes stay within one record
	// of each other regardless of insert order.
	SchemeRoundRobin PartitionScheme = 0
)

// Partitioner maps between the global record-id space and per-shard
// local id spaces. Implementations must be pure (no state mutated by
// the mapping calls) and safe for concurrent use; the scatter-gather
// executor consults them from every shard's goroutine.
type Partitioner interface {
	// NumShards returns the shard count N; shards are numbered [0, N).
	NumShards() int
	// Locate returns the shard owning global id g and g's local id on
	// that shard. Ids are 1-based in both spaces.
	Locate(global uint32) (shard int, local uint32)
	// GlobalOf inverts Locate: the global id of shard s's local id l.
	GlobalOf(shard int, local uint32) uint32
	// Scheme identifies the partition scheme for manifests and wire
	// protocols.
	Scheme() PartitionScheme
}

// roundRobin is the SchemeRoundRobin Partitioner.
type roundRobin struct {
	n uint32
}

// NewRoundRobinPartitioner returns the round-robin Partitioner over n
// shards (n must be >= 1): global id g lives on shard (g-1) mod n as
// local id (g-1)/n + 1.
func NewRoundRobinPartitioner(n int) Partitioner {
	if n < 1 {
		panic("setcontain: round-robin partitioner needs at least one shard")
	}
	return roundRobin{n: uint32(n)}
}

func (p roundRobin) NumShards() int { return int(p.n) }

func (p roundRobin) Locate(global uint32) (int, uint32) {
	return int((global - 1) % p.n), (global-1)/p.n + 1
}

func (p roundRobin) GlobalOf(shard int, local uint32) uint32 {
	return (local-1)*p.n + uint32(shard) + 1
}

func (p roundRobin) Scheme() PartitionScheme { return SchemeRoundRobin }

// partitionerOfScheme reconstructs the Partitioner a snapshot manifest
// (or wire handshake) names. Unknown schemes fail loudly — a newer
// writer's snapshot must not be silently misrouted by an older reader.
func partitionerOfScheme(scheme PartitionScheme, shards int) (Partitioner, error) {
	switch scheme {
	case SchemeRoundRobin:
		return NewRoundRobinPartitioner(shards), nil
	default:
		return nil, fmt.Errorf("%w: unknown partition scheme %d", ErrBadSnapshot, scheme)
	}
}
