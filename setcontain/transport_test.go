// Transport equivalence is the payoff property of the shard transport
// abstraction: the same collection served through four different
// stacks — one engine, a sharded engine, in-process ShardClients, and
// remote HTTP shard daemons — must answer every query, expression, and
// limited expression with byte-identical id slices, through pending
// inserts and deletes, after the delta merge, and under cancellation.
// This file lives in the external test package so it can stand real
// daemons up with setcontain/serve without an import cycle.
package setcontain_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"slices"
	"strings"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/setcontain"
	"repro/setcontain/serve"
)

// transportVariant is one way of serving the shared collection.
type transportVariant struct {
	name  string
	store *setcontain.Store
}

// buildTransportVariants stands up the four stacks over identical data.
// Each variant gets its own engines — mutations must not alias across
// variants — and the HTTP one gets a live httptest daemon per shard.
func buildTransportVariants(t *testing.T, sets [][]setcontain.Item, domain, shards int) []transportVariant {
	t.Helper()
	build := func(kind setcontain.Kind) *setcontain.Index {
		c := setcontain.NewCollection(domain)
		for _, s := range sets {
			if _, err := c.Add(s); err != nil {
				t.Fatal(err)
			}
		}
		idx, err := setcontain.New(c, setcontain.WithKind(kind), setcontain.WithShards(shards),
			setcontain.WithPageSize(512), setcontain.WithBlockPostings(8))
		if err != nil {
			t.Fatal(err)
		}
		return idx
	}

	single := build(setcontain.OIF)
	sharded := build(setcontain.Sharded)

	inprocBase := build(setcontain.Sharded)
	inprocClients := make([]setcontain.ShardClient, 0, shards)
	for _, eng := range setcontain.ShardEngines(inprocBase.Engine()) {
		inprocClients = append(inprocClients, setcontain.InprocShard(eng))
	}
	inproc, err := setcontain.ShardedOverClients(context.Background(), inprocClients)
	if err != nil {
		t.Fatalf("inproc coordinator: %v", err)
	}

	httpBase := build(setcontain.Sharded)
	httpClients := make([]setcontain.ShardClient, 0, shards)
	for _, eng := range setcontain.ShardEngines(httpBase.Engine()) {
		sidx := setcontain.IndexOver(eng)
		sv := serve.NewServer(sidx, setcontain.NewStore(sidx, 8), serve.Config{})
		ts := httptest.NewServer(sv.Handler())
		t.Cleanup(ts.Close)
		t.Cleanup(sv.Close)
		httpClients = append(httpClients, setcontain.NewRemoteShard(ts.URL, nil))
	}
	remote, err := setcontain.ShardedOverClients(context.Background(), httpClients)
	if err != nil {
		t.Fatalf("http coordinator: %v", err)
	}

	return []transportVariant{
		{"single", setcontain.NewStore(single, 8)},
		{"sharded", setcontain.NewStore(sharded, 8)},
		{"inproc", setcontain.NewStore(inproc, 8)},
		{"http", setcontain.NewStore(remote, 8)},
	}
}

// randomExprText draws a boolean expression over Zipf-skewed leaves in
// the ParseExpr grammar.
func randomExprText(rng *rand.Rand, z *dataset.Zipf) string {
	leaf := func() string {
		preds := []string{"subset", "equality", "superset"}
		items := z.SampleDistinct(rng, 1+rng.Intn(4))
		strs := make([]string, len(items))
		for i, it := range items {
			strs[i] = fmt.Sprint(it)
		}
		return fmt.Sprintf("%s{%s}", preds[rng.Intn(len(preds))], strings.Join(strs, " "))
	}
	switch rng.Intn(4) {
	case 0:
		return leaf()
	case 1:
		return leaf() + " and " + leaf()
	case 2:
		return leaf() + " or not " + leaf()
	default:
		return "(" + leaf() + " or " + leaf() + ") and not " + leaf()
	}
}

// TestTransportEquivalence is the property test: remote == in-process
// clients == sharded engine == single engine, byte-identical, with
// pending inserts and deletes, after the merge, and canceled cleanly.
func TestTransportEquivalence(t *testing.T) {
	const (
		domain  = 48
		shards  = 3
		records = 900
	)
	rng := rand.New(rand.NewSource(7))
	z := dataset.NewZipf(domain, 0.9)
	sets := make([][]setcontain.Item, records)
	for i := range sets {
		sets[i] = z.SampleDistinct(rng, 1+rng.Intn(6))
	}
	variants := buildTransportVariants(t, sets, domain, shards)

	queries := make([]setcontain.Query, 60)
	preds := []setcontain.Predicate{setcontain.PredicateSubset, setcontain.PredicateEquality, setcontain.PredicateSuperset}
	for i := range queries {
		queries[i] = setcontain.Query{
			Pred:  preds[rng.Intn(len(preds))],
			Items: z.SampleDistinct(rng, 1+rng.Intn(5)),
		}
	}
	type exprCase struct {
		expr  *setcontain.Expr
		limit int
	}
	exprs := make([]exprCase, 25)
	for i := range exprs {
		text := randomExprText(rng, z)
		e, err := setcontain.ParseExpr(text)
		if err != nil {
			t.Fatalf("generated unparseable expr %q: %v", text, err)
		}
		exprs[i] = exprCase{expr: e, limit: rng.Intn(12)} // 0 = unlimited
	}

	ctx := context.Background()
	compare := func(stage string) {
		t.Helper()
		for qi, q := range queries {
			want, err := variants[0].store.Exec(ctx, q)
			if err != nil {
				t.Fatalf("%s: %s query %d (%s): %v", stage, variants[0].name, qi, q, err)
			}
			for _, v := range variants[1:] {
				got, err := v.store.Exec(ctx, q)
				if err != nil {
					t.Fatalf("%s: %s query %d (%s): %v", stage, v.name, qi, q, err)
				}
				if !slices.Equal(got, want) && !(len(got) == 0 && len(want) == 0) {
					t.Fatalf("%s: %s query %d (%s): %v, single says %v", stage, v.name, qi, q, got, want)
				}
			}
		}
		for ei, ec := range exprs {
			want, err := variants[0].store.ExecExprLimit(ctx, ec.expr, ec.limit)
			if ec.limit == 0 {
				want, err = variants[0].store.ExecExpr(ctx, ec.expr)
			}
			if err != nil {
				t.Fatalf("%s: %s expr %d (%s): %v", stage, variants[0].name, ei, ec.expr, err)
			}
			for _, v := range variants[1:] {
				got, err := v.store.ExecExprLimit(ctx, ec.expr, ec.limit)
				if ec.limit == 0 {
					got, err = v.store.ExecExpr(ctx, ec.expr)
				}
				if err != nil {
					t.Fatalf("%s: %s expr %d (%s): %v", stage, v.name, ei, ec.expr, err)
				}
				if !slices.Equal(got, want) && !(len(got) == 0 && len(want) == 0) {
					t.Fatalf("%s: %s expr %d (%s) limit %d: %v, single says %v",
						stage, v.name, ei, ec.expr, ec.limit, got, want)
				}
			}
		}
	}
	compare("built")

	// Mutations travel through every transport's own store; ids must
	// match across variants because they share one global id space.
	extra := make([][]setcontain.Item, 20)
	for i := range extra {
		extra[i] = z.SampleDistinct(rng, 1+rng.Intn(6))
	}
	var wantIDs []uint32
	for vi, v := range variants {
		ids, err := v.store.InsertSets(extra)
		if err != nil {
			t.Fatalf("%s: inserts: %v", v.name, err)
		}
		if vi == 0 {
			wantIDs = ids
		} else if !slices.Equal(ids, wantIDs) {
			t.Fatalf("%s: insert ids %v, single got %v", v.name, ids, wantIDs)
		}
	}
	doomed := []uint32{5, 17, uint32(records + 3)}
	for _, v := range variants {
		if err := v.store.DeleteIDs(doomed); err != nil {
			t.Fatalf("%s: deletes: %v", v.name, err)
		}
	}
	compare("pending")

	for _, v := range variants {
		if err := v.store.MergeDelta(); err != nil {
			t.Fatalf("%s: merge: %v", v.name, err)
		}
	}
	compare("merged")

	// A canceled context must stop every transport with the caller's own
	// context error, never a transport artifact.
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	for _, v := range variants {
		if _, err := v.store.Exec(canceled, queries[0]); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: canceled Exec: %v, want context.Canceled", v.name, err)
		}
		if _, err := v.store.ExecExpr(canceled, exprs[0].expr); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: canceled ExecExpr: %v, want context.Canceled", v.name, err)
		}
	}
}

// TestTransportConcurrentCancel hammers the HTTP transport from several
// goroutines and cancels mid-stream: every query must either match the
// single-engine answer exactly or fail with context.Canceled — no
// corrupt merges, no hung watchdogs. Run under -race this is the
// concurrency acceptance test for the remote session layer.
func TestTransportConcurrentCancel(t *testing.T) {
	const (
		domain  = 40
		shards  = 2
		records = 600
	)
	rng := rand.New(rand.NewSource(13))
	z := dataset.NewZipf(domain, 0.9)
	sets := make([][]setcontain.Item, records)
	for i := range sets {
		sets[i] = z.SampleDistinct(rng, 1+rng.Intn(6))
	}
	variants := buildTransportVariants(t, sets, domain, shards)
	single, remote := variants[0].store, variants[3].store

	queries := make([]setcontain.Query, 120)
	preds := []setcontain.Predicate{setcontain.PredicateSubset, setcontain.PredicateEquality, setcontain.PredicateSuperset}
	for i := range queries {
		queries[i] = setcontain.Query{
			Pred:  preds[rng.Intn(len(preds))],
			Items: z.SampleDistinct(rng, 1+rng.Intn(4)),
		}
	}
	want := make([][]uint32, len(queries))
	for i, q := range queries {
		var err error
		if want[i], err = single.Exec(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(queries); i += 4 {
				if i == 40 {
					cancel()
				}
				got, err := remote.Exec(ctx, queries[i])
				switch {
				case errors.Is(err, context.Canceled):
				case err != nil:
					errs <- fmt.Errorf("query %d (%s): %v", i, queries[i], err)
					return
				case !slices.Equal(got, want[i]) && !(len(got) == 0 && len(want[i]) == 0):
					errs <- fmt.Errorf("query %d (%s): got %v want %v", i, queries[i], got, want[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if _, err := remote.Exec(ctx, queries[0]); !errors.Is(err, context.Canceled) {
		t.Errorf("post-cancel Exec: %v, want context.Canceled", err)
	}
}

// TestTransportPartialFailure kills one shard daemon under a live
// coordinator: queries must fail with a ShardError naming the dead
// shard (or the transport error wrapped in it), not hang and not
// silently return partial answers.
func TestTransportPartialFailure(t *testing.T) {
	const (
		domain  = 30
		shards  = 3
		records = 300
	)
	rng := rand.New(rand.NewSource(23))
	z := dataset.NewZipf(domain, 0.8)
	c := setcontain.NewCollection(domain)
	for i := 0; i < records; i++ {
		if _, err := c.Add(z.SampleDistinct(rng, 1+rng.Intn(5))); err != nil {
			t.Fatal(err)
		}
	}
	idx, err := setcontain.New(c, setcontain.WithKind(setcontain.Sharded), setcontain.WithShards(shards),
		setcontain.WithPageSize(512), setcontain.WithBlockPostings(8))
	if err != nil {
		t.Fatal(err)
	}
	servers := make([]*httptest.Server, 0, shards)
	clients := make([]setcontain.ShardClient, 0, shards)
	for _, eng := range setcontain.ShardEngines(idx.Engine()) {
		sidx := setcontain.IndexOver(eng)
		sv := serve.NewServer(sidx, setcontain.NewStore(sidx, 8), serve.Config{})
		ts := httptest.NewServer(sv.Handler())
		t.Cleanup(ts.Close)
		t.Cleanup(sv.Close)
		servers = append(servers, ts)
		clients = append(clients, setcontain.NewRemoteShard(ts.URL, nil))
	}
	remote, err := setcontain.ShardedOverClients(context.Background(), clients)
	if err != nil {
		t.Fatal(err)
	}
	store := setcontain.NewStore(remote, 8)

	q := setcontain.SubsetQuery([]setcontain.Item{1})
	if _, err := store.Exec(context.Background(), q); err != nil {
		t.Fatalf("healthy fleet: %v", err)
	}

	servers[1].Close() // shard 1 dies
	_, err = store.Exec(context.Background(), q)
	var se *setcontain.ShardError
	if !errors.As(err, &se) {
		t.Fatalf("dead shard: got %v, want a ShardError", err)
	}
	if se.Shard != 1 {
		t.Fatalf("dead shard misattributed: %v names shard %d, shard 1 died", err, se.Shard)
	}
}
