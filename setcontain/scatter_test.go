package setcontain

import (
	"context"
	"errors"
	"iter"
	"math/rand"
	"runtime"
	"slices"
	"sync/atomic"
	"testing"
	"time"
)

// checkGoroutines fails the test if the goroutine count has not settled
// back to base within a grace period — the leak detector behind the
// abandonment tests.
func checkGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d, started with %d\n%s",
				n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMergeSeqsEdges pins the degenerate shapes the random TestMergeSeqs
// rarely draws: no inputs, one input, every input empty, and immediate
// abandonment — each must terminate cleanly and leak nothing.
func TestMergeSeqsEdges(t *testing.T) {
	base := runtime.NumGoroutine()

	if got := slices.Collect(MergeSeqs()); len(got) != 0 {
		t.Fatalf("MergeSeqs() yielded %v", got)
	}
	one := []uint32{3, 17, 29}
	if got := slices.Collect(MergeSeqs(seqOfSlice(one))); !slices.Equal(got, one) {
		t.Fatalf("single-input merge: %v, want %v", got, one)
	}
	empties := MergeSeqs(seqOfSlice(nil), seqOfSlice([]uint32{}), nil)
	if got := slices.Collect(empties); len(got) != 0 {
		t.Fatalf("all-empty merge yielded %v", got)
	}

	// Abandon at every prefix length, including before the first yield;
	// each input's pull iterator must be stopped, not left suspended.
	inputs := [][]uint32{{1, 4, 7}, {2, 5, 8}, {3, 6, 9}}
	for stop := 0; stop <= 9; stop++ {
		var prefix []uint32
		for id := range MergeSeqs(seqOfSlice(inputs[0]), seqOfSlice(inputs[1]), seqOfSlice(inputs[2])) {
			if len(prefix) == stop {
				break
			}
			prefix = append(prefix, id)
		}
		for i, id := range prefix {
			if id != uint32(i+1) {
				t.Fatalf("stop=%d: prefix %v not the merged prefix", stop, prefix)
			}
		}
	}
	checkGoroutines(t, base)
}

// TestMergeLocalsEdges: the eager k-way interleave must reproduce the
// globally sorted id sequence from partitioned locals in every
// degenerate shape — all shards empty, one live shard, one shard, and
// random splits.
func TestMergeLocalsEdges(t *testing.T) {
	part3 := NewRoundRobinPartitioner(3)
	if got := mergeLocals(part3, [][]uint32{nil, nil, nil}); len(got) != 0 {
		t.Fatalf("all-empty shards merged to %v", got)
	}
	if got := mergeLocals(part3, [][]uint32{nil, {1, 2}, nil}); !slices.Equal(got, []uint32{2, 5}) {
		t.Fatalf("single live shard merged to %v, want [2 5]", got)
	}
	if got := mergeLocals(NewRoundRobinPartitioner(1), [][]uint32{{1, 3, 9}}); !slices.Equal(got, []uint32{1, 3, 9}) {
		t.Fatalf("one-shard fast path merged to %v", got)
	}

	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		part := NewRoundRobinPartitioner(n)
		total := rng.Intn(200)
		// Route a random subset of globals 1..total through the
		// partitioner, exactly as a per-shard answer set would be.
		var want []uint32
		locals := make([][]uint32, n)
		for g := uint32(1); g <= uint32(total); g++ {
			if rng.Intn(3) == 0 {
				continue
			}
			s, local := part.Locate(g)
			locals[s] = append(locals[s], local)
			want = append(want, g)
		}
		if got := mergeLocals(part, locals); !slices.Equal(got, want) {
			t.Fatalf("trial %d (n=%d): merged %v, want %v", trial, n, got, want)
		}
	}
}

// TestScatterErrorAggregation: a failing shard surfaces as a ShardError
// naming it, sibling cancellation casualties never mask the root cause,
// and the caller's own cancellation comes back unwrapped.
func TestScatterErrorAggregation(t *testing.T) {
	base := runtime.NumGoroutine()
	part := NewRoundRobinPartitioner(4)
	boom := errors.New("boom")

	// Shard 2 fails; the siblings observe the cancellation and bail with
	// ctx.Err(), which must not be reported as the failure.
	_, err := scatterGather(context.Background(), part, func(ctx context.Context, shard int) ([]uint32, error) {
		if shard == 2 {
			return nil, boom
		}
		<-ctx.Done()
		return nil, ctx.Err()
	})
	var se *ShardError
	if !errors.As(err, &se) || se.Shard != 2 || !errors.Is(err, boom) {
		t.Fatalf("got %v, want ShardError{Shard: 2, Err: boom}", err)
	}

	// The caller canceled: its own ctx error, no shard blamed.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = scatterGather(ctx, part, func(ctx context.Context, shard int) ([]uint32, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) || errors.As(err, &se) {
		t.Fatalf("caller cancel: got %v, want bare context.Canceled", err)
	}

	// Same for the single-shard fast path.
	_, err = scatterGather(context.Background(), NewRoundRobinPartitioner(1),
		func(context.Context, int) ([]uint32, error) { return nil, boom })
	if !errors.As(err, &se) || se.Shard != 0 || !errors.Is(err, boom) {
		t.Fatalf("one shard: got %v, want ShardError{Shard: 0, Err: boom}", err)
	}
	checkGoroutines(t, base)
}

// TestScatterSiblingCancellation: the first failure must actually reach
// the siblings' contexts — the property the partial-failure path (one
// dead remote shard) depends on to avoid hanging on the healthy ones.
func TestScatterSiblingCancellation(t *testing.T) {
	base := runtime.NumGoroutine()
	part := NewRoundRobinPartitioner(3)
	var canceled atomic.Int32
	_, err := scatterGather(context.Background(), part, func(ctx context.Context, shard int) ([]uint32, error) {
		if shard == 0 {
			return nil, errors.New("shard down")
		}
		select {
		case <-ctx.Done():
			canceled.Add(1)
			return nil, ctx.Err()
		case <-time.After(5 * time.Second):
			return nil, errors.New("sibling never canceled")
		}
	})
	var se *ShardError
	if !errors.As(err, &se) || se.Shard != 0 {
		t.Fatalf("got %v, want ShardError naming shard 0", err)
	}
	if canceled.Load() != 2 {
		t.Fatalf("%d siblings saw the cancellation, want 2", canceled.Load())
	}
	checkGoroutines(t, base)
}

// TestScatterGatherMergesThroughPartitioner: answers fan back in through
// the partitioner's global mapping, whatever the scheme.
func TestScatterGatherMergesThroughPartitioner(t *testing.T) {
	for _, part := range []Partitioner{NewRoundRobinPartitioner(3), reversedRobin{n: 3}} {
		want := make([]uint32, 0, 30)
		for g := uint32(1); g <= 30; g++ {
			want = append(want, g)
		}
		got, err := scatterGather(context.Background(), part, func(_ context.Context, shard int) ([]uint32, error) {
			var locals []uint32
			for g := uint32(1); g <= 30; g++ {
				if s, local := part.Locate(g); s == shard {
					locals = append(locals, local)
				}
			}
			return locals, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(got, want) {
			t.Fatalf("scheme %d: merged %v, want 1..30", part.Scheme(), got)
		}
	}
}

// TestMergeSeqsMatchesMergeLocals ties the lazy and eager merges
// together: mapping each shard's locals to globals and MergeSeqs-ing
// them must equal mergeLocals on the raw locals.
func TestMergeSeqsMatchesMergeLocals(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	part := NewRoundRobinPartitioner(4)
	locals := make([][]uint32, 4)
	for g := uint32(1); g <= 300; g++ {
		if rng.Intn(2) == 0 {
			continue
		}
		s, local := part.Locate(g)
		locals[s] = append(locals[s], local)
	}
	seqs := make([]iter.Seq[uint32], 4)
	for s := range seqs {
		shard, ids := s, locals[s]
		seqs[s] = func(yield func(uint32) bool) {
			for _, local := range ids {
				if !yield(part.GlobalOf(shard, local)) {
					return
				}
			}
		}
	}
	lazy := slices.Collect(MergeSeqs(seqs...))
	eager := mergeLocals(part, locals)
	if !slices.Equal(lazy, eager) && !(len(lazy) == 0 && len(eager) == 0) {
		t.Fatalf("lazy merge %v != eager merge %v", lazy, eager)
	}
}
