package setcontain

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/storage"
)

// Kind selects an engine from the registry.
type Kind int

// The registered engine kinds.
const (
	// OIF is the paper's Ordered Inverted File (default).
	OIF Kind = iota
	// InvertedFile is the classic inverted-file baseline.
	InvertedFile
	// UnorderedBTree indexes list blocks in a B-tree without the OIF's
	// global ordering or metadata (the paper's ablation).
	UnorderedBTree
	// Sharded hash-partitions records across N inner engines built in
	// parallel, each chosen per shard by item-frequency skew (OIF for
	// skewed shards, InvertedFile otherwise); queries fan out to every
	// shard and merge in global id order. See WithShards.
	Sharded
)

// String returns the kind's conventional short name ("OIF", "IF",
// "UBT", or "Sharded"), as the experiment reports print it.
func (k Kind) String() string {
	switch k {
	case OIF:
		return "OIF"
	case InvertedFile:
		return "IF"
	case UnorderedBTree:
		return "UBT"
	case Sharded:
		return "Sharded"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind resolves the conventional engine names used by the CLIs:
// "oif", "if" (or "invfile"), "ubt" (or "ubtree"), and "sharded",
// case-insensitively.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "oif":
		return OIF, nil
	case "if", "invfile", "inverted-file":
		return InvertedFile, nil
	case "ubt", "ubtree", "unordered-btree":
		return UnorderedBTree, nil
	case "sharded":
		return Sharded, nil
	default:
		return 0, fmt.Errorf("setcontain: unknown index kind %q (want oif, if, ubt, or sharded)", s)
	}
}

// Options configures Build. The zero value selects the OIF with 4 KB
// pages, 64-posting blocks, and the paper's minimal 32 KB query cache.
// NewOptions assembles one from functional options.
type Options struct {
	Kind Kind
	// PageSize of the index file in bytes (default 4096).
	PageSize int
	// BlockPostings caps postings per OIF/UBT list block (default 64).
	BlockPostings int
	// CachePages sizes the buffer pool queries run through (default 8,
	// the paper's 32 KB minimum). Larger caches reduce page accesses.
	CachePages int
	// TagPrefix truncates OIF block tags to this many leading items
	// (0 keeps full tags). The paper's suggested key compression; shorter
	// tags shrink the index markedly at a small cost in extra boundary
	// block reads. Ignored by the other kinds.
	TagPrefix int
	// Shards is the Sharded engine's partition count (default: one per
	// CPU, minimum 2). Ignored by the other kinds.
	Shards int
	// BuildParallelism bounds the goroutines building shards in parallel
	// (default GOMAXPROCS). Ignored by the other kinds.
	BuildParallelism int
	// DecodedCachePostings sizes the OIF's decoded-block cache in
	// postings (8 bytes each): hot inverted-list blocks are kept in
	// decoded form so repeat visits skip the vbyte decode entirely, with
	// admission weighted by the item-frequency profile when it is skewed
	// (hot lists stay decoded; see the README's "CPU performance").
	// 0 selects DefaultDecodedCachePostings; negative disables the
	// cache. The budget is per query handle — the engine and every
	// Reader (including Store's pooled readers, and each shard of a
	// Sharded reader) carry their own cache. Ignored by the IF/UBT
	// kinds.
	DecodedCachePostings int

	// blockPostingsExplicit records (at fill time) whether the caller set
	// BlockPostings, so the sharded planner only sizes the OIF frontier
	// when the value is the filled-in default — an explicit
	// WithBlockPostings always wins, even when it equals the default.
	blockPostingsExplicit bool
}

// DefaultDecodedCachePostings is the decoded-block cache budget when
// WithDecodedCache is absent: 32 Ki postings = 256 KB per query handle,
// enough to keep the hottest lists of the paper's synthetic defaults
// decoded.
const DefaultDecodedCachePostings = 1 << 15

// fill applies the documented defaults in place.
func (o *Options) fill() {
	if o.PageSize == 0 {
		o.PageSize = storage.DefaultPageSize
	}
	o.blockPostingsExplicit = o.BlockPostings != 0
	if o.BlockPostings == 0 {
		o.BlockPostings = core.DefaultBlockPostings
	}
	if o.CachePages == 0 {
		o.CachePages = storage.DefaultPoolPages
	}
	switch {
	case o.DecodedCachePostings == 0:
		o.DecodedCachePostings = DefaultDecodedCachePostings
	case o.DecodedCachePostings < 0:
		o.DecodedCachePostings = 0 // disabled at the core level
	}
}

// Option mutates an Options; pass them to New or NewOptions.
type Option func(*Options)

// NewOptions assembles an Options from functional options (zero-valued
// fields keep their documented defaults).
func NewOptions(opts ...Option) Options {
	var o Options
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// WithKind selects the engine.
func WithKind(k Kind) Option { return func(o *Options) { o.Kind = k } }

// WithPageSize sets the index file's page size in bytes.
func WithPageSize(n int) Option { return func(o *Options) { o.PageSize = n } }

// WithBlockPostings caps postings per OIF/UBT list block.
func WithBlockPostings(n int) Option { return func(o *Options) { o.BlockPostings = n } }

// WithCachePages sizes the query cache in pages.
func WithCachePages(n int) Option { return func(o *Options) { o.CachePages = n } }

// WithTagPrefix truncates OIF block tags to n leading items.
func WithTagPrefix(n int) Option { return func(o *Options) { o.TagPrefix = n } }

// WithShards sets the Sharded engine's partition count (n <= 0 keeps
// the default: one shard per CPU, minimum 2).
func WithShards(n int) Option { return func(o *Options) { o.Shards = n } }

// WithBuildParallelism bounds the goroutines building shards in
// parallel (n <= 0 keeps the default GOMAXPROCS).
func WithBuildParallelism(n int) Option { return func(o *Options) { o.BuildParallelism = n } }

// WithDecodedCache sizes the OIF's decoded-block cache in postings per
// query handle (n < 0 disables it, 0 keeps the default
// DefaultDecodedCachePostings). See Options.DecodedCachePostings.
func WithDecodedCache(n int) Option { return func(o *Options) { o.DecodedCachePostings = n } }
