package setcontain_test

import (
	"context"
	"fmt"
	"log"

	"repro/setcontain"
)

// Example indexes a small collection with the default OIF engine and
// answers one query of each containment predicate.
func Example() {
	coll := setcontain.NewCollection(10)
	for _, set := range [][]setcontain.Item{
		{0, 1, 3, 6}, {0, 1, 4}, {0, 1, 4, 5}, {0, 1, 3}, {0, 1, 2, 5},
		{0, 2}, {3, 7}, {0, 1, 5}, {1, 2}, {1, 6, 9}, {0, 1, 2}, {3, 8},
	} {
		if _, err := coll.Add(set); err != nil {
			log.Fatal(err)
		}
	}
	idx, err := setcontain.New(coll)
	if err != nil {
		log.Fatal(err)
	}

	subset, _ := idx.Subset([]setcontain.Item{0, 3})     // records ⊇ {0,3}
	equality, _ := idx.Equality([]setcontain.Item{0, 2}) // records = {0,2}
	superset, _ := idx.Superset([]setcontain.Item{0, 2}) // records ⊆ {0,2}
	fmt.Println("subset{0 3}  ", subset)
	fmt.Println("equality{0 2}", equality)
	fmt.Println("superset{0 2}", superset)
	// Output:
	// subset{0 3}   [1 4]
	// equality{0 2} [6]
	// superset{0 2} [6]
}

// ExampleParseQuery shows the textual query form round-tripping through
// ParseQuery and Query.String — the same vocabulary the CLIs and the
// serve package's ?q= parameter use.
func ExampleParseQuery() {
	q, err := setcontain.ParseQuery("subset{3 17 29}")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(q.Pred, len(q.Items))
	fmt.Println(q.String())

	_, err = setcontain.ParseQuery("between{1 2}")
	fmt.Println(err != nil)
	// Output:
	// subset 3
	// subset{3 17 29}
	// true
}

// ExampleStore_Exec serves queries concurrently through a Store, the
// concurrency-safe facade over an Index.
func ExampleStore_Exec() {
	coll := setcontain.NewCollection(100)
	for _, set := range [][]setcontain.Item{
		{1, 2, 3}, {2, 3}, {1, 3, 4}, {3},
	} {
		if _, err := coll.Add(set); err != nil {
			log.Fatal(err)
		}
	}
	idx, err := setcontain.New(coll)
	if err != nil {
		log.Fatal(err)
	}
	store := setcontain.NewStore(idx, 0)

	ids, err := store.Exec(context.Background(), setcontain.SubsetQuery([]setcontain.Item{3}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ids)
	// Output:
	// [1 2 3 4]
}

// ExampleStore_ExecBatchAppend answers a whole batch on one pooled
// reader with caller-owned answer buffers — the fan-in entry point the
// serve package's micro-batcher uses.
func ExampleStore_ExecBatchAppend() {
	coll := setcontain.NewCollection(100)
	for _, set := range [][]setcontain.Item{
		{1, 2, 3}, {2, 3}, {1, 3, 4}, {3},
	} {
		if _, err := coll.Add(set); err != nil {
			log.Fatal(err)
		}
	}
	idx, err := setcontain.New(coll)
	if err != nil {
		log.Fatal(err)
	}
	store := setcontain.NewStore(idx, 0)

	items := []setcontain.BatchItem{
		{Query: setcontain.SubsetQuery([]setcontain.Item{3})},
		{Query: setcontain.SupersetQuery([]setcontain.Item{2, 3})},
	}
	if _, err := store.ExecBatchAppend(context.Background(), items); err != nil {
		log.Fatal(err)
	}
	for _, it := range items {
		fmt.Println(it.Query, it.Out)
	}
	// Output:
	// subset{3} [1 2 3 4]
	// superset{2 3} [2 4]
}

// ExampleMergeSeqs interleaves ascending id streams in global order —
// the lazy form of the sharded engine's k-way merge.
func ExampleMergeSeqs() {
	a := func(yield func(uint32) bool) {
		for _, id := range []uint32{1, 4, 9} {
			if !yield(id) {
				return
			}
		}
	}
	b := func(yield func(uint32) bool) {
		for _, id := range []uint32{2, 3, 10} {
			if !yield(id) {
				return
			}
		}
	}
	for id := range setcontain.MergeSeqs(a, b) {
		fmt.Print(id, " ")
	}
	// Output:
	// 1 2 3 4 9 10
}
