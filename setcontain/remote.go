package setcontain

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// The remote shard client speaks the compact HTTP/NDJSON shard protocol
// served by setcontain/serve's /shard/* handler group (which defines
// the wire fields; the unexported mirror structs here must match them):
//
//	GET  /shard/info      -> {"kind","records","domain","pending_inserts","deleted"}
//	GET  /shard/supports  -> {"domain","supports":[...]}
//	POST /shard/query     {"q":"<expr text>","limit":n}
//	                      -> NDJSON result lines {"ids":[...],"more":true}* {"done":true,"count":n}
//	POST /shard/insert    {"set":[...]}     -> {"id":n}
//	POST /shard/delete    {"id":n}          -> {"deleted":1}
//	POST /shard/merge     -> mutation-state JSON
//	POST /shard/snapshot  -> binary snapshot container
//
// Queries travel in the setcontain.ParseExpr grammar (Query.String and
// Expr.String render it), so the daemon's parser is the single wire
// authority, and answers stream back as ascending shard-local ids.
// Cancellation is end-to-end: aborting the request closes the HTTP
// stream, which cancels the daemon's request context, which interrupts
// the shard's evaluation between list-block reads.

// interruptPollInterval is how often an in-flight remote call polls the
// session's interrupt hook. The hook is a poll-style func (the Store's
// reusable context check), so a watchdog converts it into request
// cancellation; fast queries finish before the first tick.
const interruptPollInterval = 2 * time.Millisecond

// NewRemoteShard returns a ShardClient for the shard daemon at baseURL
// (e.g. "http://127.0.0.1:7411"). hc is the HTTP client to use; nil
// selects a dedicated client with no overall timeout — per-call
// deadlines come from the caller's contexts, and streaming queries may
// legitimately run long.
func NewRemoteShard(baseURL string, hc *http.Client) ShardClient {
	if hc == nil {
		hc = &http.Client{}
	}
	return &remoteClient{base: strings.TrimRight(baseURL, "/"), hc: hc}
}

// ConnectShards dials one remote shard daemon per URL (in shard order,
// matching the partition the daemons hold) and assembles them into a
// coordinator Index; see ShardedOverClients for the validation applied.
func ConnectShards(ctx context.Context, urls []string) (*Index, error) {
	clients := make([]ShardClient, len(urls))
	for i, u := range urls {
		clients[i] = NewRemoteShard(u, nil)
	}
	return ShardedOverClients(ctx, clients)
}

// Wire mirrors of the serve package's shard protocol bodies (setcontain
// cannot import serve — serve imports setcontain).
type (
	shardInfoWire struct {
		Kind    string `json:"kind"`
		Records int    `json:"records"`
		Domain  int    `json:"domain"`
		Pending int    `json:"pending_inserts"`
		Deleted int    `json:"deleted"`
	}
	shardSupportsWire struct {
		Domain   int     `json:"domain"`
		Supports []int64 `json:"supports"`
	}
	shardQueryWire struct {
		Q     string `json:"q"`
		Limit int    `json:"limit,omitempty"`
	}
	shardInsertWire struct {
		Set []Item `json:"set"`
	}
	shardInsertedWire struct {
		ID uint32 `json:"id"`
	}
	shardDeleteWire struct {
		ID uint32 `json:"id"`
	}
	shardResultWire struct {
		IDs   []uint32 `json:"ids"`
		More  bool     `json:"more"`
		Done  bool     `json:"done"`
		Count int      `json:"count"`
		Error string   `json:"error"`
	}
)

type remoteClient struct {
	base string
	hc   *http.Client
}

func (c *remoteClient) Info(ctx context.Context) (ShardInfo, error) {
	var w shardInfoWire
	if err := c.do(ctx, http.MethodGet, "/shard/info", nil, &w); err != nil {
		return ShardInfo{}, err
	}
	kind, err := ParseKind(w.Kind)
	if err != nil {
		return ShardInfo{}, fmt.Errorf("setcontain: shard %s: %w", c.base, err)
	}
	return ShardInfo{
		Kind:    kind,
		Records: w.Records,
		Domain:  w.Domain,
		Pending: w.Pending,
		Deleted: w.Deleted,
	}, nil
}

// Session opens a data-plane session. The protocol is stateless per
// call, so sessions carry only the interrupt hook; cachePages is the
// daemon's concern and is ignored here.
func (c *remoteClient) Session(int) (ShardSession, error) {
	return &remoteSession{c: c}, nil
}

func (c *remoteClient) ItemSupports(ctx context.Context) ([]int64, error) {
	var w shardSupportsWire
	if err := c.do(ctx, http.MethodGet, "/shard/supports", nil, &w); err != nil {
		return nil, err
	}
	if len(w.Supports) != w.Domain {
		return nil, fmt.Errorf("setcontain: shard %s: supports table has %d entries, domain is %d",
			c.base, len(w.Supports), w.Domain)
	}
	return w.Supports, nil
}

func (c *remoteClient) Insert(ctx context.Context, set []Item) (uint32, error) {
	var w shardInsertedWire
	if err := c.do(ctx, http.MethodPost, "/shard/insert", shardInsertWire{Set: set}, &w); err != nil {
		return 0, err
	}
	return w.ID, nil
}

func (c *remoteClient) Delete(ctx context.Context, local uint32) error {
	return c.do(ctx, http.MethodPost, "/shard/delete", shardDeleteWire{ID: local}, nil)
}

func (c *remoteClient) MergeDelta(ctx context.Context) error {
	return c.do(ctx, http.MethodPost, "/shard/merge", nil, nil)
}

func (c *remoteClient) Snapshot(ctx context.Context, w io.Writer) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/shard/snapshot", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("setcontain: shard %s: %w", c.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return c.httpError(resp)
	}
	_, err = io.Copy(w, resp.Body)
	return err
}

func (c *remoteClient) Close() error {
	c.hc.CloseIdleConnections()
	return nil
}

// do runs one JSON round-trip: in (nil for an empty body) marshalled as
// the request, out (nil to discard) decoded from a 200 response.
func (c *remoteClient) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("setcontain: shard %s: %w", c.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return c.httpError(resp)
	}
	if out == nil {
		_, err = io.Copy(io.Discard, resp.Body)
		return err
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// httpError turns a non-200 response into an error carrying the shard's
// own message: the JSON {"error": …} body where the daemon wrote one,
// the plain-text body otherwise.
func (c *remoteClient) httpError(resp *http.Response) error {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	msg := strings.TrimSpace(string(b))
	var je struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(b, &je) == nil && je.Error != "" {
		msg = je.Error
	}
	if msg == "" {
		msg = resp.Status
	}
	return fmt.Errorf("setcontain: shard %s: %s (HTTP %d)", c.base, msg, resp.StatusCode)
}

// remoteSession is the data plane: one streaming query at a time, with
// the Store's interrupt hook converted into HTTP request cancellation
// by a per-call watchdog.
type remoteSession struct {
	c *remoteClient

	mu        sync.Mutex
	interrupt func() error
}

func (s *remoteSession) SetInterrupt(fn func() error) {
	s.mu.Lock()
	s.interrupt = fn
	s.mu.Unlock()
}

// check consults the installed interrupt hook, if any.
func (s *remoteSession) check() error {
	s.mu.Lock()
	fn := s.interrupt
	s.mu.Unlock()
	if fn == nil {
		return nil
	}
	return fn()
}

func (s *remoteSession) AppendQuery(ctx context.Context, dst []uint32, q Query) ([]uint32, error) {
	if !q.Pred.known() {
		return nil, ErrUnknownPredicate
	}
	return s.appendWire(ctx, dst, q.String(), 0)
}

func (s *remoteSession) AppendExpr(ctx context.Context, dst []uint32, expr *Expr, limit int) ([]uint32, error) {
	return s.appendWire(ctx, dst, expr.String(), limit)
}

// appendWire posts one textual query and appends the streamed NDJSON
// answer chunks to dst. The final line's count must match what was
// received — a short stream (daemon died mid-answer) fails rather than
// silently truncating.
func (s *remoteSession) appendWire(ctx context.Context, dst []uint32, q string, limit int) ([]uint32, error) {
	if err := s.check(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cctx, stop := s.watch(ctx)
	defer stop()
	body, err := json.Marshal(shardQueryWire{Q: q, Limit: limit})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(cctx, http.MethodPost, s.c.base+"/shard/query", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.c.hc.Do(req)
	if err != nil {
		return nil, s.failure(ctx, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, s.c.httpError(resp)
	}
	dec := json.NewDecoder(resp.Body)
	base := len(dst)
	for {
		var line shardResultWire
		if err := dec.Decode(&line); err != nil {
			if errors.Is(err, io.EOF) {
				return nil, s.failure(ctx, fmt.Errorf("setcontain: shard %s: answer stream ended before its final line", s.c.base))
			}
			return nil, s.failure(ctx, err)
		}
		if line.Error != "" {
			return nil, fmt.Errorf("setcontain: shard %s: %s", s.c.base, line.Error)
		}
		dst = append(dst, line.IDs...)
		if line.Done {
			if got := len(dst) - base; got != line.Count {
				return nil, fmt.Errorf("setcontain: shard %s: answer carries %d ids, final line says %d",
					s.c.base, got, line.Count)
			}
			return dst, nil
		}
		if err := s.check(); err != nil {
			return nil, err
		}
	}
}

// failure maps a transport error to what the caller should see: the
// interrupt hook's error (the Store ctx that tripped the watchdog), the
// caller's own ctx error, then the transport error itself.
func (s *remoteSession) failure(ctx context.Context, err error) error {
	if herr := s.check(); herr != nil {
		return herr
	}
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	return fmt.Errorf("setcontain: shard %s: %w", s.c.base, err)
}

// watch converts the poll-style interrupt hook into context
// cancellation for the duration of one call: a goroutine polls the hook
// and cancels the derived context when it trips, which closes the HTTP
// stream and propagates the cancellation to the daemon. Without a hook
// installed the caller's ctx is returned untouched and no goroutine
// starts.
func (s *remoteSession) watch(ctx context.Context) (context.Context, func()) {
	s.mu.Lock()
	hooked := s.interrupt != nil
	s.mu.Unlock()
	if !hooked {
		return ctx, func() {}
	}
	cctx, cancel := context.WithCancel(ctx)
	done := make(chan struct{})
	stopped := make(chan struct{})
	go func() {
		defer close(stopped)
		ticker := time.NewTicker(interruptPollInterval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-cctx.Done():
				return
			case <-ticker.C:
				if s.check() != nil {
					cancel()
					return
				}
			}
		}
	}()
	var once sync.Once
	// stop waits for the watchdog to exit: the hook closure reads state
	// the caller (the Store's reader lifecycle) mutates right after the
	// call returns, so a merely-signaled watchdog could still be mid-poll.
	return cctx, func() {
		once.Do(func() {
			close(done)
			cancel()
			<-stopped
		})
	}
}

func (s *remoteSession) Stats() CacheStats { return CacheStats{} }
func (s *remoteSession) ResetStats()       {}
func (s *remoteSession) Close() error      { return nil }
