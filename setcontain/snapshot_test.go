package setcontain

import (
	"bytes"
	"errors"
	"math/rand"
	"slices"
	"testing"
)

// mutateForSnapshot leaves realistic pre-merge state on ix: pending
// inserts and tombstones (including a tombstoned delta record), drawn
// deterministically from seed. It returns the inserted ids.
func mutateForSnapshot(t *testing.T, ix *Index, domain int, seed int64) []uint32 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var inserted []uint32
	for i := 0; i < 12; i++ {
		set := make([]Item, 1+rng.Intn(5))
		for j := range set {
			set[j] = Item(rng.Intn(domain))
		}
		id, err := ix.Insert(set)
		if err != nil {
			t.Fatal(err)
		}
		inserted = append(inserted, id)
	}
	// Tombstone a spread of base records plus one fresh delta record.
	for _, id := range []uint32{1, 7, uint32(ix.NumRecords()) - 20, inserted[3]} {
		if err := ix.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	return inserted
}

// compareWorkload asserts two indexes answer a workload byte-identically.
func compareWorkload(t *testing.T, stage string, want, got *Index, queries []Query) {
	t.Helper()
	for _, q := range queries {
		a, err := want.Eval(q)
		if err != nil {
			t.Fatalf("%s: original %s: %v", stage, q, err)
		}
		b, err := got.Eval(q)
		if err != nil {
			t.Fatalf("%s: restored %s: %v", stage, q, err)
		}
		if !slices.Equal(a, b) && !(len(a) == 0 && len(b) == 0) {
			t.Fatalf("%s: %s diverged: original %v, restored %v", stage, q, a, b)
		}
	}
}

// TestSnapshotRoundTripProperty is the durability contract: for skewed
// workloads over every snapshot-capable kind — single engines and the
// sharded matrix — Save→Open restores an index whose answers are
// byte-identical, with pending deltas and tombstones intact; merging
// both sides afterwards keeps them identical (and physically drops the
// tombstoned postings on each).
func TestSnapshotRoundTripProperty(t *testing.T) {
	const domain = 60
	queries := zipfWorkload(120, domain, 0.9, 91)
	cases := []struct {
		name string
		opts []Option
	}{
		{"OIF", []Option{WithKind(OIF), WithPageSize(512), WithBlockPostings(8)}},
		{"IF", []Option{WithKind(InvertedFile), WithPageSize(512)}},
		{"Sharded3", []Option{WithKind(Sharded), WithShards(3), WithPageSize(512), WithBlockPostings(8)}},
		{"Sharded5", []Option{WithKind(Sharded), WithShards(5), WithPageSize(512), WithBlockPostings(8)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := skewedCollection(t, 2500, domain, 0.9, 90)
			ix, err := New(c, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			mutateForSnapshot(t, ix, domain, 92)

			var snap bytes.Buffer
			if err := ix.Save(&snap); err != nil {
				t.Fatalf("Save: %v", err)
			}
			restored, err := Open(bytes.NewReader(snap.Bytes()))
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			if restored.Kind() != ix.Kind() {
				t.Fatalf("restored kind %v, want %v", restored.Kind(), ix.Kind())
			}
			if restored.NumRecords() != ix.NumRecords() ||
				restored.PendingInserts() != ix.PendingInserts() ||
				restored.Deleted() != ix.Deleted() {
				t.Fatalf("restored shape %d/%d/%d, want %d/%d/%d",
					restored.NumRecords(), restored.PendingInserts(), restored.Deleted(),
					ix.NumRecords(), ix.PendingInserts(), ix.Deleted())
			}
			compareWorkload(t, "pre-merge", ix, restored, queries)

			// Both sides merge independently and stay identical; the
			// restored side keeps accepting updates.
			if err := ix.MergeDelta(); err != nil {
				t.Fatal(err)
			}
			if err := restored.MergeDelta(); err != nil {
				t.Fatalf("MergeDelta after restore: %v", err)
			}
			compareWorkload(t, "post-merge", ix, restored, queries)

			idA, err := ix.Insert([]Item{2, 4})
			if err != nil {
				t.Fatal(err)
			}
			idB, err := restored.Insert([]Item{2, 4})
			if err != nil {
				t.Fatalf("Insert after restore: %v", err)
			}
			if idA != idB {
				t.Fatalf("post-restore insert ids diverged: %d vs %d", idA, idB)
			}
			compareWorkload(t, "post-insert", ix, restored, queries)

			// A second snapshot of the merged index round-trips too.
			snap.Reset()
			if err := ix.Save(&snap); err != nil {
				t.Fatal(err)
			}
			again, err := Open(bytes.NewReader(snap.Bytes()))
			if err != nil {
				t.Fatalf("Open after merge: %v", err)
			}
			compareWorkload(t, "re-snapshot", ix, again, queries)
		})
	}
}

// TestSnapshotSurvivesStore drives the restored index through a Store,
// the way setcontaind -snapshot serves it.
func TestSnapshotSurvivesStore(t *testing.T) {
	const domain = 50
	c := skewedCollection(t, 1500, domain, 0.8, 95)
	ix, err := New(c, WithKind(Sharded), WithShards(3), WithPageSize(512), WithBlockPostings(8))
	if err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := ix.Save(&snap); err != nil {
		t.Fatal(err)
	}
	restored, err := Open(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	store := NewStore(restored, 4)
	for _, q := range zipfWorkload(40, domain, 0.8, 96) {
		want, err := ix.Eval(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := store.Exec(t.Context(), q)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(got, want) && !(len(got) == 0 && len(want) == 0) {
			t.Fatalf("%s: store over restored index diverged", q)
		}
	}
}

// TestOpenRejectsCorruption flips bytes across a sharded container (the
// format with the most framing) and truncates it at several points;
// every Open must fail cleanly, never panic, never silently succeed.
func TestOpenRejectsCorruption(t *testing.T) {
	c := skewedCollection(t, 600, 30, 0.8, 97)
	ix, err := New(c, WithKind(Sharded), WithShards(2), WithPageSize(512), WithBlockPostings(8))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()
	for pos := 0; pos < len(snap); pos += 211 {
		corrupted := append([]byte(nil), snap...)
		corrupted[pos] ^= 0x40
		if _, err := Open(bytes.NewReader(corrupted)); err == nil {
			t.Fatalf("corruption at byte %d went undetected", pos)
		}
	}
	for _, cut := range []int{0, 5, len(snap) / 3, len(snap) - 1} {
		if _, err := Open(bytes.NewReader(snap[:cut])); err == nil {
			t.Fatalf("truncation at %d went undetected", cut)
		}
	}
	if _, err := Open(bytes.NewReader([]byte("not a container at all"))); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("foreign data: got %v, want ErrBadSnapshot", err)
	}
}
