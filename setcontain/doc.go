// Package setcontain answers set-containment queries — subset, equality,
// and superset — over collections of set-valued records, implementing the
// Ordered Inverted File (OIF) of Terrovitis, Bouros, Vassiliadis, Sellis
// and Mamoulis, "Efficient Answering of Set Containment Queries for Skewed
// Item Distributions" (EDBT 2011), together with the paper's baselines.
//
// A Collection holds records (sets of uint32 items over a fixed
// vocabulary). Build creates an index over it:
//
//	c := setcontain.NewCollection(1000)
//	c.Add([]setcontain.Item{3, 17, 29})
//	idx, err := setcontain.New(c, setcontain.WithKind(setcontain.OIF))
//	ids, err := idx.Subset([]setcontain.Item{3, 29}) // records ⊇ {3,29}
//
// # Engines
//
// Every index kind is an Engine: a pluggable backend implementing the
// uniform query/update interface. Four engines are registered: OIF (the
// paper's contribution, default), InvertedFile (the classic baseline),
// UnorderedBTree (the paper's ablation), and Sharded (records
// hash-partitioned across N inner engines built in parallel, each
// chosen per shard by item-frequency skew, with queries fanned out and
// merged in global id order — see WithShards). All answer the same
// queries with identical results; they differ in I/O behaviour, which
// CacheStats exposes. Kind and Options form the registry that selects
// an engine; Index is a thin convenience wrapper around one.
//
// # Queries
//
// A Query pairs a Predicate with its items and evaluates against any
// Queryable (an Index, a Reader, or an Engine):
//
//	q := setcontain.Query{Pred: setcontain.PredicateSubset, Items: items}
//	ids, err := q.Eval(idx)
//
// The …Seq variants (SubsetSeq, EvalSeq, …) return the answer as a lazy
// iter.Seq[uint32] for callers that stream rather than materialize, and
// the Append… variants write answers into a caller-owned slice on the
// zero-allocation hot path. Query.String and ParseQuery round-trip the
// textual form ("subset{3 17 29}") the CLIs and the serve package's
// wire format use.
//
// # Concurrency
//
// An Index is not safe for concurrent use — queries share a buffer pool
// whose cache state they mutate, mirroring the paper's single-stream
// evaluation. For parallel traffic either create one Reader per goroutine
// with NewReader, or use a Store: a concurrency-safe facade that pools
// readers internally and honours context cancellation:
//
//	st := setcontain.NewStore(idx, 0)
//	ids, err := st.Exec(ctx, q)
//
// Store.ExecBatchAppend additionally answers many queries on one pooled
// reader — the fan-in form the setcontain/serve package's micro-batcher
// dispatches through.
//
// # Durability and mutation
//
// The OIF is a disk-resident structure, and the package treats indexes
// as restartable state. Index.Save writes a self-describing snapshot
// container — engine kind, build options, pages or lists, pending
// inserts, and tombstones, CRC-guarded throughout — and Open
// reconstructs the right engine from it without the original dataset:
//
//	err := idx.Save(f)
//	restored, err := setcontain.Open(f)
//
// Collections evolve in place: Insert adds records to a memory delta
// (visible immediately), Delete tombstones them (masked immediately,
// ids never reused), and MergeDelta folds both into the disk structures
// — postings of deleted records are physically removed, while
// CacheStats/DecodedCacheStats carry across the merge cumulatively.
// OIF, InvertedFile, and Sharded support the full lifecycle; the UBT
// ablation answers queries only.
package setcontain
