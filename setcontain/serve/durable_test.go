package serve_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/wal"
	"repro/setcontain"
	"repro/setcontain/serve"
)

// newDurableServer builds a durable index over a fresh WAL directory
// and serves it: the returned httptest server routes /admin mutations
// through the write-ahead log. The Durable is returned so the test can
// close it and reopen the directory to check recovery.
func newDurableServer(t *testing.T, dir string) (*setcontain.Durable, *httptest.Server) {
	t.Helper()
	c := serveCollection(t)
	idx, err := setcontain.New(c,
		setcontain.WithKind(setcontain.Sharded),
		setcontain.WithShards(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	d, err := setcontain.NewDurable(dir, idx, setcontain.DurableOptions{
		Sync:            wal.SyncAlways,
		CheckpointBytes: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(d.Index(), d.Store(), serve.Config{Durable: d})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		d.Close()
	})
	return d, ts
}

// TestDurableServerLifecycle drives the logged mutation surface end to
// end over HTTP: inserts and deletes are acknowledged only after the
// WAL record is durable, /admin/checkpoint folds the log into a
// snapshot, /stats and /healthz expose the WAL's state, and reopening
// the directory after the server is gone recovers every acknowledged
// mutation.
func TestDurableServerLifecycle(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	d, ts := newDurableServer(t, dir)

	probe := setcontain.SubsetQuery([]setcontain.Item{2, 5})
	baseline := queryIDs(t, ts.URL, probe)

	// Insert two records matching the probe; the ack implies the log
	// records are on disk.
	var ins serve.InsertResponse
	postJSON(t, ts.URL+"/admin/insert", serve.InsertRequest{
		Sets: [][]setcontain.Item{{2, 5, 9}, {2, 5}},
	}, &ins, http.StatusOK)
	if len(ins.IDs) != 2 {
		t.Fatalf("insert returned ids %v, want 2", ins.IDs)
	}
	after := queryIDs(t, ts.URL, probe)
	if len(after) != len(baseline)+2 {
		t.Fatalf("probe answered %d ids after insert, want %d", len(after), len(baseline)+2)
	}

	// Delete one of them; also logged before the ack.
	var del serve.DeleteResponse
	postJSON(t, ts.URL+"/admin/delete", serve.DeleteRequest{IDs: ins.IDs[:1]}, &del, http.StatusOK)
	if del.Deleted != 1 {
		t.Fatalf("delete reported %d, want 1", del.Deleted)
	}

	if lsn := d.Stats().Log.LastLSN; lsn != 3 {
		t.Fatalf("LastLSN = %d after 3 logged mutations, want 3", lsn)
	}

	// The WAL surfaces in /stats and /healthz.
	var stats serve.StatsResponse
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.WAL == nil {
		t.Fatal("/stats has no wal section on a durable server")
	}
	if stats.WAL.Appends != 3 || stats.WAL.LastLSN != 3 {
		t.Fatalf("/stats wal = %+v, want 3 appends at lsn 3", stats.WAL)
	}
	if stats.WAL.Syncs == 0 {
		t.Fatalf("/stats wal reports no syncs under the always policy: %+v", stats.WAL)
	}
	var health serve.HealthResponse
	getJSON(t, ts.URL+"/healthz", &health)
	if health.WAL == nil || health.WAL.LastLSN != 3 || health.WAL.Wedged {
		t.Fatalf("/healthz wal = %+v, want healthy lsn 3", health.WAL)
	}

	// Checkpoint: the log folds into a snapshot and truncates.
	var ckpt serve.CheckpointResponse
	postJSON(t, ts.URL+"/admin/checkpoint", nil, &ckpt, http.StatusOK)
	if ckpt.CheckpointLSN != 3 {
		t.Fatalf("checkpoint watermark %d, want 3", ckpt.CheckpointLSN)
	}
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.WAL.CheckpointLSN != 3 || stats.WAL.BytesSinceCheckpoint != 0 {
		t.Fatalf("/stats wal after checkpoint = %+v, want watermark 3 and 0 bytes since", stats.WAL)
	}

	// One more acked insert after the checkpoint, so recovery must
	// combine snapshot and log tail.
	postJSON(t, ts.URL+"/admin/insert", serve.InsertRequest{
		Sets: [][]setcontain.Item{{2, 5, 11}},
	}, &ins, http.StatusOK)
	want := queryIDs(t, ts.URL, probe)

	// Tear the server down and reopen the directory cold: everything
	// acknowledged above must still be there.
	records := d.Index().NumRecords()
	ts.Close()
	d.Close()

	re, err := setcontain.OpenDurable(dir, setcontain.DurableOptions{CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Index().NumRecords(); got != records {
		t.Fatalf("recovered %d records, want %d", got, records)
	}
	if st := re.Stats(); st.Replay.Records != 1 {
		t.Fatalf("replayed %d log records, want 1 (the post-checkpoint insert)", st.Replay.Records)
	}
	got, err := re.Index().Eval(probe)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered probe answer %v, want %v", got, want)
	}
}

// TestCheckpointWithoutWAL checks that /admin/checkpoint on a plain
// in-memory server fails with 412 rather than pretending to persist.
func TestCheckpointWithoutWAL(t *testing.T) {
	_, _, _, ts := newTestServer(t, serve.Config{})
	postJSON(t, ts.URL+"/admin/checkpoint", nil, nil, http.StatusPreconditionFailed)

	// And its /stats and /healthz omit the wal section entirely.
	var stats serve.StatsResponse
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.WAL != nil {
		t.Fatalf("/stats wal = %+v on a non-durable server, want absent", stats.WAL)
	}
	var health serve.HealthResponse
	getJSON(t, ts.URL+"/healthz", &health)
	if health.WAL != nil {
		t.Fatalf("/healthz wal = %+v on a non-durable server, want absent", health.WAL)
	}
}

// getJSON decodes one GET endpoint's JSON body.
func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// TestInsertPartialFailureReportsIDs: a mid-batch insert failure must
// return the ids assigned before the failing set — with a WAL they are
// already durably acknowledged server-side, so discarding them would
// leave the client unable to reconcile the partial batch.
func TestInsertPartialFailureReportsIDs(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	_, ts := newDurableServer(t, dir)

	body, err := json.Marshal(serve.InsertRequest{
		Sets: [][]setcontain.Item{{2, 5}, {4000000000}, {3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/admin/insert", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("partial insert status %d, want 400", resp.StatusCode)
	}
	var e serve.InsertErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("decoding error body: %v", err)
	}
	if e.Error == "" || len(e.IDs) != 1 || e.FailedSet != 1 {
		t.Fatalf("error body %+v, want 1 id and failed_set 1", e)
	}
	// The acknowledged first set answers queries under its reported id.
	got := queryIDs(t, ts.URL, setcontain.SubsetQuery([]setcontain.Item{2, 5}))
	found := false
	for _, id := range got {
		found = found || id == e.IDs[0]
	}
	if !found {
		t.Fatalf("acked id %d from error body not answering: %v", e.IDs[0], got)
	}
}

// TestMutationStatusClassifiesError: the 503-vs-400 split must follow
// the request's own error, not the log's global state — a wedged log
// answers 503 for the requests that hit the wedge, while a request
// failing on its own engine error still gets 400 even though the log
// is wedged.
func TestMutationStatusClassifiesError(t *testing.T) {
	c := serveCollection(t)
	idx, err := setcontain.New(c,
		setcontain.WithKind(setcontain.Sharded),
		setcontain.WithShards(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	faulty := wal.NewFaultyFS(wal.NewMemFS(), 0)
	d, err := setcontain.NewDurable("w", idx, setcontain.DurableOptions{
		Sync:            wal.SyncAlways,
		CheckpointBytes: -1,
		FS:              faulty,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(d.Index(), d.Store(), serve.Config{Durable: d})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		d.Close()
	})

	faulty.FailAt = faulty.Ops() + 1
	postJSON(t, ts.URL+"/admin/insert", serve.InsertRequest{
		Sets: [][]setcontain.Item{{2, 5}},
	}, nil, http.StatusServiceUnavailable)

	// The log is now wedged, but a delete of an unknown id fails in the
	// engine before reaching it: still the client's own 400.
	postJSON(t, ts.URL+"/admin/delete", serve.DeleteRequest{
		IDs: []uint32{4000000000},
	}, nil, http.StatusBadRequest)

	// A mutation that does reach the wedged log keeps answering 503.
	postJSON(t, ts.URL+"/admin/insert", serve.InsertRequest{
		Sets: [][]setcontain.Item{{3}},
	}, nil, http.StatusServiceUnavailable)
}
