package serve_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/wal"
	"repro/setcontain"
	"repro/setcontain/serve"
)

// newDurableServer builds a durable index over a fresh WAL directory
// and serves it: the returned httptest server routes /admin mutations
// through the write-ahead log. The Durable is returned so the test can
// close it and reopen the directory to check recovery.
func newDurableServer(t *testing.T, dir string) (*setcontain.Durable, *httptest.Server) {
	t.Helper()
	c := serveCollection(t)
	idx, err := setcontain.New(c,
		setcontain.WithKind(setcontain.Sharded),
		setcontain.WithShards(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	d, err := setcontain.NewDurable(dir, idx, setcontain.DurableOptions{
		Sync:            wal.SyncAlways,
		CheckpointBytes: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(d.Index(), d.Store(), serve.Config{Durable: d})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		d.Close()
	})
	return d, ts
}

// TestDurableServerLifecycle drives the logged mutation surface end to
// end over HTTP: inserts and deletes are acknowledged only after the
// WAL record is durable, /admin/checkpoint folds the log into a
// snapshot, /stats and /healthz expose the WAL's state, and reopening
// the directory after the server is gone recovers every acknowledged
// mutation.
func TestDurableServerLifecycle(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	d, ts := newDurableServer(t, dir)

	probe := setcontain.SubsetQuery([]setcontain.Item{2, 5})
	baseline := queryIDs(t, ts.URL, probe)

	// Insert two records matching the probe; the ack implies the log
	// records are on disk.
	var ins serve.InsertResponse
	postJSON(t, ts.URL+"/admin/insert", serve.InsertRequest{
		Sets: [][]setcontain.Item{{2, 5, 9}, {2, 5}},
	}, &ins, http.StatusOK)
	if len(ins.IDs) != 2 {
		t.Fatalf("insert returned ids %v, want 2", ins.IDs)
	}
	after := queryIDs(t, ts.URL, probe)
	if len(after) != len(baseline)+2 {
		t.Fatalf("probe answered %d ids after insert, want %d", len(after), len(baseline)+2)
	}

	// Delete one of them; also logged before the ack.
	var del serve.DeleteResponse
	postJSON(t, ts.URL+"/admin/delete", serve.DeleteRequest{IDs: ins.IDs[:1]}, &del, http.StatusOK)
	if del.Deleted != 1 {
		t.Fatalf("delete reported %d, want 1", del.Deleted)
	}

	if lsn := d.Stats().Log.LastLSN; lsn != 3 {
		t.Fatalf("LastLSN = %d after 3 logged mutations, want 3", lsn)
	}

	// The WAL surfaces in /stats and /healthz.
	var stats serve.StatsResponse
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.WAL == nil {
		t.Fatal("/stats has no wal section on a durable server")
	}
	if stats.WAL.Appends != 3 || stats.WAL.LastLSN != 3 {
		t.Fatalf("/stats wal = %+v, want 3 appends at lsn 3", stats.WAL)
	}
	if stats.WAL.Syncs == 0 {
		t.Fatalf("/stats wal reports no syncs under the always policy: %+v", stats.WAL)
	}
	var health serve.HealthResponse
	getJSON(t, ts.URL+"/healthz", &health)
	if health.WAL == nil || health.WAL.LastLSN != 3 || health.WAL.Wedged {
		t.Fatalf("/healthz wal = %+v, want healthy lsn 3", health.WAL)
	}

	// Checkpoint: the log folds into a snapshot and truncates.
	var ckpt serve.CheckpointResponse
	postJSON(t, ts.URL+"/admin/checkpoint", nil, &ckpt, http.StatusOK)
	if ckpt.CheckpointLSN != 3 {
		t.Fatalf("checkpoint watermark %d, want 3", ckpt.CheckpointLSN)
	}
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.WAL.CheckpointLSN != 3 || stats.WAL.BytesSinceCheckpoint != 0 {
		t.Fatalf("/stats wal after checkpoint = %+v, want watermark 3 and 0 bytes since", stats.WAL)
	}

	// One more acked insert after the checkpoint, so recovery must
	// combine snapshot and log tail.
	postJSON(t, ts.URL+"/admin/insert", serve.InsertRequest{
		Sets: [][]setcontain.Item{{2, 5, 11}},
	}, &ins, http.StatusOK)
	want := queryIDs(t, ts.URL, probe)

	// Tear the server down and reopen the directory cold: everything
	// acknowledged above must still be there.
	records := d.Index().NumRecords()
	ts.Close()
	d.Close()

	re, err := setcontain.OpenDurable(dir, setcontain.DurableOptions{CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Index().NumRecords(); got != records {
		t.Fatalf("recovered %d records, want %d", got, records)
	}
	if st := re.Stats(); st.Replay.Records != 1 {
		t.Fatalf("replayed %d log records, want 1 (the post-checkpoint insert)", st.Replay.Records)
	}
	got, err := re.Index().Eval(probe)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered probe answer %v, want %v", got, want)
	}
}

// TestCheckpointWithoutWAL checks that /admin/checkpoint on a plain
// in-memory server fails with 412 rather than pretending to persist.
func TestCheckpointWithoutWAL(t *testing.T) {
	_, _, _, ts := newTestServer(t, serve.Config{})
	postJSON(t, ts.URL+"/admin/checkpoint", nil, nil, http.StatusPreconditionFailed)

	// And its /stats and /healthz omit the wal section entirely.
	var stats serve.StatsResponse
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.WAL != nil {
		t.Fatalf("/stats wal = %+v on a non-durable server, want absent", stats.WAL)
	}
	var health serve.HealthResponse
	getJSON(t, ts.URL+"/healthz", &health)
	if health.WAL != nil {
		t.Fatalf("/healthz wal = %+v on a non-durable server, want absent", health.WAL)
	}
}

// getJSON decodes one GET endpoint's JSON body.
func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}
