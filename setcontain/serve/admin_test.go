package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"slices"
	"strings"
	"testing"

	"repro/setcontain"
	"repro/setcontain/serve"
)

// postJSON POSTs a JSON body and decodes the JSON response into out
// (skipped when out is nil), failing on a non-2xx status unless
// wantStatus says otherwise.
func postJSON(t *testing.T, url string, body any, out any, wantStatus int) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if out != nil && wantStatus == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

// queryIDs runs one GET /query and returns the answer ids.
func queryIDs(t *testing.T, base string, q setcontain.Query) []uint32 {
	t.Helper()
	resp, err := http.Get(base + "/query?q=" + strings.ReplaceAll(q.String(), " ", "+"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /query: status %d", resp.StatusCode)
	}
	ids, errs := decodeResults(t, resp.Body)
	if len(errs) != 0 {
		t.Fatalf("query errors: %v", errs)
	}
	return ids[0]
}

// TestAdminLifecycle drives the full mutation surface end to end:
// insert records (visible to queries immediately after the response),
// delete one (masked immediately), merge (physical fold-out), snapshot
// (the body restores via setcontain.Open with identical answers).
func TestAdminLifecycle(t *testing.T) {
	_, _, _, ts := newTestServer(t, serve.Config{})

	probe := setcontain.SubsetQuery([]setcontain.Item{2, 5})
	baseline := queryIDs(t, ts.URL, probe)

	// Insert two records matching the probe.
	var ins serve.InsertResponse
	postJSON(t, ts.URL+"/admin/insert", serve.InsertRequest{
		Sets: [][]setcontain.Item{{2, 5, 9}, {2, 5}},
	}, &ins, http.StatusOK)
	if len(ins.IDs) != 2 {
		t.Fatalf("insert returned ids %v, want 2", ins.IDs)
	}
	afterInsert := queryIDs(t, ts.URL, probe)
	for _, id := range ins.IDs {
		if _, found := slices.BinarySearch(afterInsert, id); !found {
			t.Fatalf("inserted id %d invisible to queries: %v -> %v", id, baseline, afterInsert)
		}
	}

	// Delete one of them plus an original record from the baseline.
	var del serve.DeleteResponse
	postJSON(t, ts.URL+"/admin/delete", serve.DeleteRequest{
		IDs: []uint32{ins.IDs[0], baseline[0]},
	}, &del, http.StatusOK)
	if del.Deleted != 2 {
		t.Fatalf("delete reported %d, want 2", del.Deleted)
	}
	afterDelete := queryIDs(t, ts.URL, probe)
	for _, id := range []uint32{ins.IDs[0], baseline[0]} {
		if _, found := slices.BinarySearch(afterDelete, id); found {
			t.Fatalf("deleted id %d still answering", id)
		}
	}

	// Health reflects the mutation state.
	var health serve.HealthResponse
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Pending != 2 || health.Deleted != 2 {
		t.Fatalf("healthz pending/deleted = %d/%d, want 2/2", health.Pending, health.Deleted)
	}

	// Merge folds everything in; answers must not change.
	var merged serve.AdminStateResponse
	postJSON(t, ts.URL+"/admin/merge", nil, &merged, http.StatusOK)
	if merged.Pending != 0 || merged.Deleted != 2 {
		t.Fatalf("merge state %+v, want pending 0, deleted 2", merged)
	}
	if got := queryIDs(t, ts.URL, probe); !slices.Equal(got, afterDelete) {
		t.Fatalf("answers changed across merge: %v -> %v", afterDelete, got)
	}

	// Snapshot: the response body must restore to an index answering
	// exactly like the live daemon.
	snapResp, err := http.Post(ts.URL+"/admin/snapshot", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer snapResp.Body.Close()
	if snapResp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d", snapResp.StatusCode)
	}
	restored, err := setcontain.Open(snapResp.Body)
	if err != nil {
		t.Fatalf("Open(snapshot body): %v", err)
	}
	want := queryIDs(t, ts.URL, probe)
	got, err := restored.Eval(probe)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got, want) {
		t.Fatalf("restored snapshot answers %v, live daemon %v", got, want)
	}
	if restored.Deleted() != 2 {
		t.Fatalf("restored snapshot lost tombstones: %d", restored.Deleted())
	}
}

// TestAdminValidation: malformed bodies, empty payloads, bad ids, and
// wrong methods all fail with client errors and leave the index serving.
func TestAdminValidation(t *testing.T) {
	_, _, _, ts := newTestServer(t, serve.Config{})

	for _, tc := range []struct {
		path   string
		body   string
		status int
	}{
		{"/admin/insert", `{"sets":[]}`, http.StatusBadRequest},
		{"/admin/insert", `{"nope":1}`, http.StatusBadRequest},
		{"/admin/delete", `{"ids":[]}`, http.StatusBadRequest},
		{"/admin/delete", `{"ids":[0]}`, http.StatusBadRequest},
		{"/admin/delete", `{"ids":[4000000000]}`, http.StatusBadRequest},
	} {
		resp, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("POST %s %s: status %d, want %d", tc.path, tc.body, resp.StatusCode, tc.status)
		}
	}
	for _, path := range []string{"/admin/insert", "/admin/delete", "/admin/merge", "/admin/snapshot"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET %s: status %d, want 405", path, resp.StatusCode)
		}
	}
	// Still serving.
	if ids := queryIDs(t, ts.URL, setcontain.SubsetQuery([]setcontain.Item{2})); len(ids) == 0 {
		t.Error("index stopped answering after validation failures")
	}
}

// TestAdminMutationsDuringTraffic mutates and snapshots while queries,
// /healthz, and /stats hammer the server from several goroutines — the
// warm-backup-under-load scenario, and (under -race) the regression
// test for the read-only handlers touching mutable index state without
// the admin lock. Snapshots must restore, reads must never fail.
func TestAdminMutationsDuringTraffic(t *testing.T) {
	c, _, _, ts := newTestServer(t, serve.Config{})
	queries := serveQueries(t, c, 16)

	stop := make(chan struct{})
	errc := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func(g int) {
			for i := 0; ; i++ {
				select {
				case <-stop:
					errc <- nil
					return
				default:
				}
				path := "/query?q=" + strings.ReplaceAll(queries[(g+i)%len(queries)].String(), " ", "+")
				switch i % 3 {
				case 1:
					path = "/healthz"
				case 2:
					path = "/stats"
				}
				resp, err := http.Get(ts.URL + path)
				if err != nil {
					errc <- fmt.Errorf("worker %d: %v", g, err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
					errc <- fmt.Errorf("worker %d: %s: status %d", g, path, resp.StatusCode)
					return
				}
			}
		}(g)
	}
	for i := 0; i < 3; i++ {
		var ins serve.InsertResponse
		postJSON(t, ts.URL+"/admin/insert", serve.InsertRequest{
			Sets: [][]setcontain.Item{{1, 2}, {uint32(i), 3}},
		}, &ins, http.StatusOK)
		postJSON(t, ts.URL+"/admin/delete", serve.DeleteRequest{IDs: []uint32{ins.IDs[0]}},
			nil, http.StatusOK)
		if i == 1 {
			postJSON(t, ts.URL+"/admin/merge", nil, nil, http.StatusOK)
		}
		resp, err := http.Post(ts.URL+"/admin/snapshot", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := setcontain.Open(resp.Body); err != nil {
			t.Fatalf("snapshot %d under traffic failed to restore: %v", i, err)
		}
		resp.Body.Close()
	}
	close(stop)
	for g := 0; g < 4; g++ {
		if err := <-errc; err != nil {
			t.Error(err)
		}
	}
}
