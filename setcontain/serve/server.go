package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"iter"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wal"
	"repro/setcontain"
)

// maxRequestBytes bounds a POST /query body; a request this size is
// thousands of queries, far beyond what one batch round-trip should
// carry.
const maxRequestBytes = 8 << 20

// Server is the HTTP face of a Store: a Batcher plus the handlers
// described in the package documentation. Create one with NewServer,
// mount Handler on any mux or http.Server, and Close when done.
type Server struct {
	idx     *setcontain.Index
	store   *setcontain.Store
	batcher *Batcher
	cfg     Config
	start   time.Time

	// mut is the mutation path behind the /admin endpoints: the plain
	// store, or the Durable when cfg.Durable attaches a write-ahead log.
	mut     setcontain.Mutator
	durable *setcontain.Durable

	bufs sync.Pool // *[]uint32 answer buffers, recycled across requests

	// admin serializes the mutating endpoints (insert, delete, merge,
	// snapshot — a snapshot mutates the engine's own buffer pool while
	// it reads) against each other and against the read-only handlers
	// that inspect mutable index state (/healthz, /stats take the read
	// side). Queries keep flowing — they run on the Store's pooled
	// readers, and each individual mutation goes through Store.Update,
	// which additionally excludes it from pooled-reader creation.
	admin sync.RWMutex

	streamsServed   atomic.Int64
	streamsAborted  atomic.Int64
	snapshotsServed atomic.Int64
	snapshotsFailed atomic.Int64
}

// NewServer wraps idx and its store in a serving layer configured by
// cfg (zero value for defaults). The store must serve the same index;
// the server uses idx only for identity ( /healthz, shard plans) and
// routes every query through store. Close stops the dispatchers.
func NewServer(idx *setcontain.Index, store *setcontain.Store, cfg Config) *Server {
	cfg = cfg.Filled()
	var mut setcontain.Mutator = store
	if cfg.Durable != nil {
		mut = cfg.Durable
	}
	return &Server{
		idx:     idx,
		store:   store,
		batcher: NewBatcher(store, cfg),
		cfg:     cfg,
		start:   time.Now(),
		mut:     mut,
		durable: cfg.Durable,
	}
}

// Batcher exposes the server's batcher (load tests assert on its
// statistics directly).
func (s *Server) Batcher() *Batcher { return s.batcher }

// Close stops the batcher's dispatchers. In-flight requests fail with
// ErrClosed; the HTTP listener (owned by the caller) is unaffected.
func (s *Server) Close() { s.batcher.Close() }

// Handler returns the route mux:
//
//	POST /query, GET /query?q=…, GET /stream?q=…, GET /stats, GET /healthz
//	POST /admin/insert, /admin/delete, /admin/merge, /admin/snapshot
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/stream", s.handleStream)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/admin/insert", s.handleInsert)
	mux.HandleFunc("/admin/delete", s.handleDelete)
	mux.HandleFunc("/admin/merge", s.handleMerge)
	mux.HandleFunc("/admin/snapshot", s.handleSnapshot)
	mux.HandleFunc("/admin/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("/shard/info", s.handleShardInfo)
	mux.HandleFunc("/shard/supports", s.handleShardSupports)
	mux.HandleFunc("/shard/query", s.handleShardQuery)
	mux.HandleFunc("/shard/insert", s.handleShardInsert)
	mux.HandleFunc("/shard/delete", s.handleShardDelete)
	mux.HandleFunc("/shard/merge", s.handleMerge)
	mux.HandleFunc("/shard/snapshot", s.handleSnapshot)
	return mux
}

// getBuf borrows an answer buffer; putBuf returns it. Buffers forfeited
// to an abandoned batch are simply not returned.
func (s *Server) getBuf() []uint32 {
	if p, _ := s.bufs.Get().(*[]uint32); p != nil {
		return (*p)[:0]
	}
	return make([]uint32, 0, 1024)
}

func (s *Server) putBuf(buf []uint32) { s.bufs.Put(&buf) }

// exprReq is one parsed query of a request: the expression tree plus
// its answer limit (0 = unlimited).
type exprReq struct {
	expr  *setcontain.Expr
	limit int
}

// parseLimit reads an optional ?limit= query parameter: absent means
// unlimited (0), anything that is not a non-negative integer is a
// client error.
func parseLimit(r *http.Request) (int, error) {
	raw := r.URL.Query().Get("limit")
	if raw == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("serve: limit must be a non-negative integer, got %q", raw)
	}
	return n, nil
}

// parseRequest extracts the request's queries as expression trees: the
// JSON body on POST (structured Pred/Items specs and textual Expr
// specs alike), the ?q= textual form on GET, both through the
// setcontain.ParseExpr grammar — a plain predicate parses as its
// one-leaf degenerate expression. Each query carries its answer limit:
// the spec's "limit" field on POST, the ?limit= parameter on GET; a
// negative limit is a client error. Parse failures surface the
// *setcontain.ParseError so the handler can answer with the offset.
func parseRequest(r *http.Request) ([]exprReq, error) {
	switch r.Method {
	case http.MethodPost:
		var req QueryRequest
		dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxRequestBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return nil, fmt.Errorf("serve: decoding request: %w", err)
		}
		if len(req.Queries) == 0 {
			return nil, errors.New("serve: request carries no queries")
		}
		es := make([]exprReq, len(req.Queries))
		for i, spec := range req.Queries {
			if spec.Limit < 0 {
				return nil, fmt.Errorf("serve: query %d: %w", i, setcontain.ErrNegativeLimit)
			}
			e, err := spec.Parse()
			if err != nil {
				return nil, fmt.Errorf("serve: query %d: %w", i, err)
			}
			es[i] = exprReq{expr: e, limit: spec.Limit}
		}
		return es, nil
	case http.MethodGet:
		limit, err := parseLimit(r)
		if err != nil {
			return nil, err
		}
		e, err := setcontain.ParseExpr(r.URL.Query().Get("q"))
		if err != nil {
			return nil, err
		}
		return []exprReq{{expr: e, limit: limit}}, nil
	default:
		return nil, fmt.Errorf("serve: method %s not allowed", r.Method)
	}
}

// writeQueryError answers a failed request parse as JSON: positioned
// *setcontain.ParseError failures carry the byte offset of the failing
// token alongside the message, so clients point at the error instead
// of re-lexing it.
func writeQueryError(w http.ResponseWriter, err error, status int) {
	body := QueryErrorResponse{Error: err.Error()}
	var pe *setcontain.ParseError
	if errors.As(err, &pe) {
		off := pe.Offset
		body.Offset = &off
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

// handleQuery answers a batch of queries through the batcher, streaming
// NDJSON result chunks in query order.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	qs, err := parseRequest(r)
	if err != nil {
		status := http.StatusBadRequest
		if r.Method != http.MethodGet && r.Method != http.MethodPost {
			status = http.StatusMethodNotAllowed
		}
		writeQueryError(w, err, status)
		return
	}
	ctx := r.Context()
	enc := json.NewEncoder(w)
	started := false
	for i, q := range qs {
		// Buffer ownership follows DoExprLimit's contract: a non-nil out
		// is ours to recycle, a nil out is forfeited to a live dispatcher.
		out, err := s.batcher.DoExprLimit(ctx, s.getBuf(), q.expr, q.limit)
		switch {
		case err == nil:
			if !started {
				started = true
				w.Header().Set("Content-Type", "application/x-ndjson")
			}
			werr := s.writeIDs(ctx, enc, i, out)
			s.putBuf(out)
			if werr != nil {
				return // client gone; remaining queries were never admitted
			}
		case errors.Is(err, ErrSaturated) && !started:
			// Nothing written yet: refuse the whole request so the
			// client retries with backoff.
			w.Header().Set("Retry-After", "1")
			http.Error(w, err.Error(), http.StatusTooManyRequests)
			s.putBuf(out)
			return
		case ctx.Err() != nil:
			// Client disconnected or deadline passed; the buffer may
			// still be owned by a dispatcher — forfeited.
			return
		default:
			if !started {
				started = true
				w.Header().Set("Content-Type", "application/x-ndjson")
			}
			if werr := enc.Encode(Result{Query: i, Done: true, Error: err.Error()}); werr != nil {
				return
			}
			if out != nil {
				s.putBuf(out)
			}
		}
	}
}

// writeIDs streams one query's materialized answer as NDJSON chunks of
// at most cfg.ChunkIDs ids, honouring ctx between chunks.
func (s *Server) writeIDs(ctx context.Context, enc *json.Encoder, query int, ids []uint32) error {
	chunk := s.cfg.ChunkIDs
	total := len(ids)
	for len(ids) > chunk {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := enc.Encode(Result{Query: query, IDs: ids[:chunk], More: true}); err != nil {
			return err
		}
		ids = ids[chunk:]
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return enc.Encode(Result{Query: query, IDs: ids, Done: true, Count: total})
}

// handleStream answers one ?q= query — a single predicate or a full
// boolean expression — through the Store's iter.Seq streaming variant,
// flushing each NDJSON chunk as it forms: the
// response path holds at most one chunk of ids as JSON, so the client
// can consume arbitrarily large answers incrementally. (The current
// engines still compute the full answer slice before the sequence
// yields — see Index.SubsetSeq for that contract; the handler inherits
// engine-side streaming the day an engine provides it.) A client that
// disconnects cancels the request context, which interrupts the Store
// execution between list-block reads while the query is running and
// stops the chunk loop once streaming has begun.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "serve: GET only", http.StatusMethodNotAllowed)
		return
	}
	limit, err := parseLimit(r)
	if err != nil {
		writeQueryError(w, err, http.StatusBadRequest)
		return
	}
	expr, err := setcontain.ParseExpr(r.URL.Query().Get("q"))
	if err != nil {
		writeQueryError(w, err, http.StatusBadRequest)
		return
	}
	ctx := r.Context()
	var seq iter.Seq[uint32]
	if limit > 0 {
		seq, err = s.store.ExecExprLimitSeq(ctx, expr, limit)
	} else {
		seq, err = s.store.ExecExprSeq(ctx, expr)
	}
	if err != nil {
		if ctx.Err() != nil {
			s.streamsAborted.Add(1)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	if err := s.streamSeq(ctx, w, flusher, seq); err != nil {
		s.streamsAborted.Add(1)
		return
	}
	s.streamsServed.Add(1)
}

// streamSeq consumes seq in cfg.ChunkIDs-sized chunks, encoding and
// flushing each as an NDJSON line.
func (s *Server) streamSeq(ctx context.Context, w http.ResponseWriter, flusher http.Flusher, seq iter.Seq[uint32]) error {
	enc := json.NewEncoder(w)
	buf := make([]uint32, 0, s.cfg.ChunkIDs)
	count := 0
	var werr error
	flush := func(more bool) bool {
		if werr = ctx.Err(); werr != nil {
			return false
		}
		res := Result{IDs: buf, More: more}
		if !more {
			res.Done, res.Count = true, count
		}
		if werr = enc.Encode(res); werr != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		buf = buf[:0]
		return true
	}
	for id := range seq {
		buf = append(buf, id)
		count++
		if len(buf) == cap(buf) && !flush(true) {
			return werr
		}
	}
	if !flush(false) {
		return werr
	}
	return nil
}

// handleStats reports the serving-side counters; see StatsResponse.
// The shard plans live in mutable engine state (Insert bumps per-shard
// record counts), so the handler holds the admin read lock.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.admin.RLock()
	defer s.admin.RUnlock()
	bst := s.batcher.Stats()
	sst := s.store.Stats()
	resp := StatsResponse{
		Batcher: BatcherStatsJSON{
			Queries:    bst.Queries,
			Batches:    bst.Batches,
			MeanBatch:  bst.MeanBatch(),
			Rejected:   bst.Rejected,
			Canceled:   bst.Canceled,
			Pending:    bst.Pending,
			BatchSizes: bst.BatchSizes,
		},
		Store: StoreStatsJSON{
			CacheHits:      sst.Cache.Hits,
			PageReads:      sst.Cache.PageReads,
			DecodedHits:    sst.Decoded.Hits,
			DecodedMisses:  sst.Decoded.Misses,
			DecodedHitRate: sst.Decoded.HitRate(),
		},
		Streams: StreamStatsJSON{
			Served:  s.streamsServed.Load(),
			Aborted: s.streamsAborted.Load(),
		},
		Snapshots: SnapshotStatsJSON{
			Served: s.snapshotsServed.Load(),
			Failed: s.snapshotsFailed.Load(),
		},
		UptimeSeconds: time.Since(s.start).Seconds(),
	}
	est := s.store.ExprStats()
	resp.Planner = PlannerStatsJSON{
		Expressions:     est.Expressions,
		EvaluatedLeaves: est.EvaluatedLeaves,
		StreamedLeaves:  est.StreamedLeaves,
		SkippedLeaves:   est.SkippedLeaves,
		CSEHits:         est.CSEHits,
		CSEMisses:       est.CSEMisses,
		CSESavedLeaves:  est.CSESavedLeaves,
		Theta:           s.store.Supports().Theta,
	}
	for _, p := range setcontain.ShardPlans(s.idx.Engine()) {
		resp.ShardPlans = append(resp.ShardPlans, ShardPlanJSON{
			Shard:         p.Shard,
			Kind:          p.Kind.String(),
			Records:       p.Records,
			Theta:         p.Theta,
			BlockPostings: p.BlockPostings,
		})
	}
	if s.durable != nil {
		resp.WAL = walStatsJSON(s.durable.Stats())
	}
	writeJSON(w, resp)
}

// walStatsJSON renders the durability layer's counters for /stats.
func walStatsJSON(st setcontain.DurableStats) *WALStatsJSON {
	j := &WALStatsJSON{
		Segments:             st.Log.Segments,
		TotalBytes:           st.Log.TotalBytes,
		LastLSN:              st.Log.LastLSN,
		CheckpointLSN:        st.CheckpointLSN,
		BytesSinceCheckpoint: st.Log.BytesSinceCheckpoint,
		Appends:              st.Log.Appends,
		Syncs:                st.Log.Syncs,
		LastSyncMicros:       float64(st.Log.LastSyncNanos) / 1e3,
		Checkpoints:          st.Checkpoints,
		ReplayRecords:        st.Replay.Records,
		ReplayMillis:         float64(st.Replay.Duration.Nanoseconds()) / 1e6,
		ReplayTruncated:      st.Replay.Truncated,
		Wedged:               st.Log.Wedged,
	}
	if st.Log.Syncs > 0 {
		j.MeanSyncMicros = float64(st.Log.TotalSyncNanos) / float64(st.Log.Syncs) / 1e3
	}
	return j
}

// handleHealthz reports liveness plus the served index's identity. The
// record/pending/deleted gauges read mutable index state, hence the
// admin read lock.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.admin.RLock()
	defer s.admin.RUnlock()
	resp := HealthResponse{
		OK:      true,
		Kind:    s.idx.Kind().String(),
		Records: s.idx.NumRecords(),
		Domain:  s.idx.Engine().DomainSize(),
		Pending: s.idx.PendingInserts(),
		Deleted: s.idx.Deleted(),
	}
	if s.durable != nil {
		st := s.durable.Stats()
		resp.WAL = &WALHealthJSON{
			LastLSN:       st.Log.LastLSN,
			CheckpointLSN: st.CheckpointLSN,
			Segments:      st.Log.Segments,
			Wedged:        st.Log.Wedged,
		}
	}
	writeJSON(w, resp)
}

// decodeAdminBody decodes a POST body into v with the same limits and
// strictness as the query path; a false return means the response was
// already written.
func decodeAdminBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "serve: POST only", http.StatusMethodNotAllowed)
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("serve: decoding request: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

// mutationStatus picks the HTTP status for a failed mutation by
// inspecting the error itself: one that went through a wedged
// write-ahead log is a server-side durability fault (503 — the process
// must restart to recover), anything else is the request's own engine
// error (400). Classifying the returned error, not the log's current
// state, keeps a concurrent wedge from mislabeling an unrelated
// request's engine error — and vice versa.
func mutationStatus(err error) int {
	if errors.Is(err, wal.ErrWedged) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

// handleInsert adds records through the mutation path — the plain store
// or, with a WAL attached, the logged path that acknowledges only after
// the records are durable — and reports the assigned ids. On a
// mid-batch failure the earlier inserts of the request stick; the error
// names the failing set.
func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req InsertRequest
	if !decodeAdminBody(w, r, &req) {
		return
	}
	if len(req.Sets) == 0 {
		http.Error(w, "serve: request carries no sets", http.StatusBadRequest)
		return
	}
	s.admin.Lock()
	defer s.admin.Unlock()
	ids, err := s.mut.InsertSets(req.Sets)
	if err != nil {
		// The inserts before the failing set stick (with a WAL they are
		// already durably acknowledged server-side), so the client must
		// learn their ids: a plain error with the ids discarded would
		// leave it unable to reconcile the partial batch.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(mutationStatus(err))
		json.NewEncoder(w).Encode(InsertErrorResponse{
			Error:     fmt.Sprintf("serve: %v", err),
			IDs:       ids,
			FailedSet: len(ids),
		})
		return
	}
	writeJSON(w, InsertResponse{IDs: ids})
}

// handleDelete tombstones records through the mutation path, so the ids
// vanish from every answer served after the response (and, with a WAL,
// survive a crash once acknowledged).
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req DeleteRequest
	if !decodeAdminBody(w, r, &req) {
		return
	}
	if len(req.IDs) == 0 {
		http.Error(w, "serve: request carries no ids", http.StatusBadRequest)
		return
	}
	s.admin.Lock()
	defer s.admin.Unlock()
	if err := s.mut.DeleteIDs(req.IDs); err != nil {
		http.Error(w, fmt.Sprintf("serve: %v", err), mutationStatus(err))
		return
	}
	writeJSON(w, DeleteResponse{Deleted: len(req.IDs)})
}

// handleMerge folds pending inserts and tombstones into the disk
// structures (setcontain.Index.MergeDelta) and refreshes the store.
func (s *Server) handleMerge(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "serve: POST only", http.StatusMethodNotAllowed)
		return
	}
	s.admin.Lock()
	defer s.admin.Unlock()
	if err := s.mut.MergeDelta(); err != nil {
		http.Error(w, fmt.Sprintf("serve: merge: %v", err), http.StatusInternalServerError)
		return
	}
	writeJSON(w, AdminStateResponse{
		Records: s.idx.NumRecords(),
		Pending: s.idx.PendingInserts(),
		Deleted: s.idx.Deleted(),
	})
}

// handleCheckpoint folds the write-ahead log into a fresh checkpoint
// snapshot and truncates the covered segments. Without a WAL attached
// the endpoint answers 412: there is no log to fold.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "serve: POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.durable == nil {
		http.Error(w, "serve: no write-ahead log attached (start with -wal-dir)", http.StatusPreconditionFailed)
		return
	}
	// No admin lock: Checkpoint serializes against mutations on the
	// Durable's own mutex, and holding admin here would stall mutation
	// traffic for the whole snapshot write rather than its serialize step.
	if err := s.durable.Checkpoint(); err != nil {
		http.Error(w, fmt.Sprintf("serve: checkpoint: %v", err), http.StatusInternalServerError)
		return
	}
	st := s.durable.Stats()
	writeJSON(w, CheckpointResponse{
		CheckpointLSN: st.CheckpointLSN,
		Segments:      st.Log.Segments,
		LogBytes:      st.Log.TotalBytes,
	})
}

// handleSnapshot streams the index's self-describing snapshot container
// as the response body — `curl -X POST …/admin/snapshot -o idx.snap`
// captures a file that `setcontaind -snapshot idx.snap` (or
// setcontain.Open) restores without the original dataset. The admin
// lock keeps mutations out while the pages stream; queries keep being
// served.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "serve: POST only", http.StatusMethodNotAllowed)
		return
	}
	// Serialize into memory under the lock, then stream with the lock
	// released: the mutation endpoints are blocked only for local
	// encoding time, never for a slow client's download. (The sharded
	// container already buffers per-shard payloads, so this adds no new
	// peak for the largest configurations.) With a WAL attached the
	// serialization routes through Durable.Snapshot, whose mutex also
	// excludes the background checkpointer's concurrent Save.
	s.admin.Lock()
	var snap bytes.Buffer
	var err error
	if s.durable != nil {
		err = s.durable.Snapshot(&snap)
	} else {
		err = s.idx.Save(&snap)
	}
	s.admin.Unlock()
	if err != nil {
		http.Error(w, fmt.Sprintf("serve: snapshot: %v", err), http.StatusInternalServerError)
		s.snapshotsFailed.Add(1)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", "attachment; filename=index.snap")
	w.Header().Set("Content-Length", fmt.Sprint(snap.Len()))
	if _, err := snap.WriteTo(w); err != nil {
		// Headers are gone; the short body fails the client's length and
		// CRC checks, which is the detection path snapshots are built
		// around.
		s.snapshotsFailed.Add(1)
		return
	}
	s.snapshotsServed.Add(1)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
