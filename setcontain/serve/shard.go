package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/setcontain"
)

// The /shard/* handler group is the daemon side of the shard wire
// protocol spoken by setcontain.NewRemoteShard: a compact HTTP/NDJSON
// surface a coordinator uses to treat this process as one shard of a
// sharded engine. The group reuses the server's existing machinery —
// queries are admitted through the batcher (so coordinator fan-in
// traffic batches and saturates exactly like client traffic), and
// mutations go through the same Mutator path (and therefore the WAL,
// when one is attached). /shard/merge and /shard/snapshot are aliases
// of their /admin twins; the rest are shard-shaped:
//
//	GET  /shard/info      identity: kind, records, domain, pending, deleted
//	GET  /shard/supports  full per-item support table (coordinator planning)
//	POST /shard/query     {"q","limit"} -> NDJSON Result lines
//	POST /shard/insert    {"set"} -> {"id"} (shard-local id)
//	POST /shard/delete    {"id"} -> {"deleted"}
//
// setcontain/remote.go keeps unexported mirrors of these body types;
// the JSON tags here are the protocol.

// ShardInfoResponse is the GET /shard/info body.
type ShardInfoResponse struct {
	Kind    string `json:"kind"`
	Records int    `json:"records"`
	Domain  int    `json:"domain"`
	Pending int    `json:"pending_inserts"`
	Deleted int    `json:"deleted"`
}

// ShardSupportsResponse is the GET /shard/supports body: the shard's
// per-item support table, Supports[i] counting the live records that
// contain item i+1.
type ShardSupportsResponse struct {
	Domain   int     `json:"domain"`
	Supports []int64 `json:"supports"`
}

// ShardQueryRequest is the POST /shard/query body: one query in the
// setcontain.ParseExpr grammar plus an answer limit (0 = unlimited).
type ShardQueryRequest struct {
	Q     string `json:"q"`
	Limit int    `json:"limit"`
}

// ShardInsertRequest is the POST /shard/insert body: one record's item
// set, inserted into this shard's local id space.
type ShardInsertRequest struct {
	Set []setcontain.Item `json:"set"`
}

// ShardInsertResponse reports the shard-local id the insert received.
type ShardInsertResponse struct {
	ID uint32 `json:"id"`
}

// ShardDeleteRequest is the POST /shard/delete body: one shard-local id
// to tombstone.
type ShardDeleteRequest struct {
	ID uint32 `json:"id"`
}

// ShardDeleteResponse acknowledges a shard delete.
type ShardDeleteResponse struct {
	Deleted int `json:"deleted"`
}

// handleShardInfo reports the shard's identity — what a coordinator
// validates before assembling shards into an index.
func (s *Server) handleShardInfo(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "serve: GET only", http.StatusMethodNotAllowed)
		return
	}
	s.admin.RLock()
	defer s.admin.RUnlock()
	writeJSON(w, ShardInfoResponse{
		Kind:    s.idx.Kind().String(),
		Records: s.idx.NumRecords(),
		Domain:  s.idx.Engine().DomainSize(),
		Pending: s.idx.PendingInserts(),
		Deleted: s.idx.Deleted(),
	})
}

// handleShardSupports streams the full support table. The coordinator
// sums these across shards to plan expressions globally; the table
// reads mutable engine state, hence the admin read lock.
func (s *Server) handleShardSupports(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "serve: GET only", http.StatusMethodNotAllowed)
		return
	}
	s.admin.RLock()
	sup := s.idx.Engine().ItemSupports()
	domain := s.idx.Engine().DomainSize()
	s.admin.RUnlock()
	if sup == nil {
		sup = make([]int64, domain)
	}
	writeJSON(w, ShardSupportsResponse{Domain: domain, Supports: sup})
}

// handleShardQuery answers one textual query as NDJSON Result lines —
// the single-query analogue of handleQuery, admitted through the same
// batcher so coordinator traffic shares admission control and batch
// amortization with direct client traffic.
func (s *Server) handleShardQuery(w http.ResponseWriter, r *http.Request) {
	var req ShardQueryRequest
	if !decodeAdminBody(w, r, &req) {
		return
	}
	if req.Limit < 0 {
		writeQueryError(w, setcontain.ErrNegativeLimit, http.StatusBadRequest)
		return
	}
	expr, err := setcontain.ParseExpr(req.Q)
	if err != nil {
		writeQueryError(w, err, http.StatusBadRequest)
		return
	}
	ctx := r.Context()
	out, err := s.batcher.DoExprLimit(ctx, s.getBuf(), expr, req.Limit)
	switch {
	case err == nil:
		w.Header().Set("Content-Type", "application/x-ndjson")
		werr := s.writeIDs(ctx, json.NewEncoder(w), 0, out)
		s.putBuf(out)
		_ = werr // client gone mid-answer; nothing more to do
	case errors.Is(err, ErrSaturated):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		s.putBuf(out)
	case ctx.Err() != nil:
		// Client disconnected; the buffer may still be owned by a live
		// dispatcher — forfeited per DoExprLimit's contract.
	default:
		writeQueryError(w, err, http.StatusInternalServerError)
		if out != nil {
			s.putBuf(out)
		}
	}
}

// handleShardInsert inserts one record and reports its shard-local id,
// through the same mutation path (and WAL, when attached) as
// /admin/insert.
func (s *Server) handleShardInsert(w http.ResponseWriter, r *http.Request) {
	var req ShardInsertRequest
	if !decodeAdminBody(w, r, &req) {
		return
	}
	s.admin.Lock()
	defer s.admin.Unlock()
	ids, err := s.mut.InsertSets([][]setcontain.Item{req.Set})
	if err != nil {
		http.Error(w, fmt.Sprintf("serve: %v", err), mutationStatus(err))
		return
	}
	writeJSON(w, ShardInsertResponse{ID: ids[0]})
}

// handleShardDelete tombstones one shard-local id.
func (s *Server) handleShardDelete(w http.ResponseWriter, r *http.Request) {
	var req ShardDeleteRequest
	if !decodeAdminBody(w, r, &req) {
		return
	}
	s.admin.Lock()
	defer s.admin.Unlock()
	if err := s.mut.DeleteIDs([]uint32{req.ID}); err != nil {
		http.Error(w, fmt.Sprintf("serve: %v", err), mutationStatus(err))
		return
	}
	writeJSON(w, ShardDeleteResponse{Deleted: 1})
}
