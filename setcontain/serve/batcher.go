package serve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/setcontain"
)

// ErrSaturated reports that the batcher's admission bound
// (Config.MaxPending queued queries) is reached; the server maps it to
// HTTP 429. Callers should shed or retry with backoff rather than
// block.
var ErrSaturated = errors.New("serve: query queue saturated")

// ErrClosed reports a query submitted to a closed batcher.
var ErrClosed = errors.New("serve: batcher closed")

// Config tunes the serving layer. The zero value selects the documented
// defaults; Filled returns a copy with them applied.
type Config struct {
	// MaxBatch caps the queries coalesced into one dispatch through
	// Store.ExecBatchAppend (default 64).
	MaxBatch int
	// MaxLinger bounds how long a dispatcher waits for more queries to
	// join a non-full batch (default 500µs). Zero keeps the default;
	// negative disables lingering — batches then form only from queries
	// already queued.
	MaxLinger time.Duration
	// MaxPending bounds queued-but-undispatched queries; beyond it Do
	// fails fast with ErrSaturated (default 4×MaxBatch).
	MaxPending int
	// Dispatchers is the number of concurrent batch executors, each
	// driving one pooled Store reader at a time (default GOMAXPROCS).
	// Fewer dispatchers under load mean larger batches.
	Dispatchers int
	// ChunkIDs caps the ids carried by one NDJSON response line
	// (default 4096); smaller chunks flush sooner.
	ChunkIDs int
	// Durable, when set, routes the /admin mutation endpoints through
	// the write-ahead-logged mutation path: a mutation is acknowledged
	// only once its log record is durable per the WAL's fsync policy,
	// POST /admin/checkpoint becomes available, and /stats and /healthz
	// report the WAL's state. The store handed to NewServer must be
	// Durable.Store(). Nil serves the plain in-memory mutation path.
	Durable *setcontain.Durable
}

// DefaultConfig is the zero Config with every default applied.
func DefaultConfig() Config { return Config{}.Filled() }

// Filled returns the config with unset fields replaced by their
// documented defaults.
func (c Config) Filled() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxLinger == 0 {
		c.MaxLinger = 500 * time.Microsecond
	}
	if c.MaxLinger < 0 {
		c.MaxLinger = 0
	}
	if c.MaxPending <= 0 {
		c.MaxPending = 4 * c.MaxBatch
	}
	if c.Dispatchers <= 0 {
		c.Dispatchers = runtime.GOMAXPROCS(0)
	}
	if c.ChunkIDs <= 0 {
		c.ChunkIDs = 4096
	}
	return c
}

// waiter carries one query through the batcher: the request fields its
// submitter fills, and the result fields the dispatcher publishes
// before signalling done. A non-nil expr routes the waiter through the
// expression batch path (shared-subtree caching, optional limit)
// instead of the single-predicate one. Waiters recycle through a
// sync.Pool, so the warm path submits and completes queries without
// allocating.
type waiter struct {
	ctx   context.Context
	q     setcontain.Query
	expr  *setcontain.Expr
	limit int
	dst   []uint32

	out  []uint32
	err  error
	done chan struct{} // capacity 1; recycled with the waiter
}

func (w *waiter) reset() {
	w.ctx, w.q, w.expr, w.limit = nil, setcontain.Query{}, nil, 0
	w.dst, w.out, w.err = nil, nil, nil
}

// Batcher coalesces concurrent queries into micro-batches dispatched
// through Store.ExecBatchAppend. Create one with NewBatcher; submit
// with Do; stop with Close. All methods are safe for concurrent use.
type Batcher struct {
	store *setcontain.Store
	cfg   Config

	reqCh   chan *waiter
	waiters sync.Pool
	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	closed  atomic.Bool

	queries  atomic.Int64
	batches  atomic.Int64
	rejected atomic.Int64
	canceled atomic.Int64
	hist     []atomic.Int64 // hist[i] counts dispatches of size i+1
}

// NewBatcher starts cfg.Dispatchers dispatcher goroutines over store.
// Close releases them.
func NewBatcher(store *setcontain.Store, cfg Config) *Batcher {
	cfg = cfg.Filled()
	b := &Batcher{
		store: store,
		cfg:   cfg,
		reqCh: make(chan *waiter, cfg.MaxPending),
		hist:  make([]atomic.Int64, cfg.MaxBatch),
	}
	b.ctx, b.cancel = context.WithCancel(context.Background())
	b.wg.Add(cfg.Dispatchers)
	for i := 0; i < cfg.Dispatchers; i++ {
		go b.run()
	}
	return b
}

// Close stops the dispatchers, failing any still-queued queries with
// ErrClosed, and waits for them to exit. Queries submitted after Close
// fail with ErrClosed.
func (b *Batcher) Close() {
	b.closed.Store(true)
	b.cancel()
	b.wg.Wait()
}

// Do submits one query and blocks until its batch executes or ctx ends.
// The answer is appended to dst and the extended slice returned, as by
// Store.ExecAppend — but the execution is shared: the query rides
// whatever micro-batch the dispatchers form around it.
//
// Ownership of dst transfers to the batcher for the duration of the
// call, and the returned slice tells the caller whether it came back:
// a non-nil return (every normal completion, including query errors —
// the untouched dst is handed back then) supersedes dst and is the
// caller's again; a nil return means Do gave up waiting (ctx ended, or
// the batcher closed) while a dispatcher may still be writing into dst
// — the buffer is forfeited and must not be reused.
func (b *Batcher) Do(ctx context.Context, dst []uint32, q setcontain.Query) ([]uint32, error) {
	if err := ctx.Err(); err != nil {
		return dst, err
	}
	if b.closed.Load() {
		return dst, ErrClosed
	}
	w := b.getWaiter()
	w.ctx, w.q, w.dst = ctx, q, dst
	return b.submit(ctx, w, dst)
}

// DoExpr submits one boolean expression with the same coalescing,
// admission control, and buffer contract as Do. A one-leaf expression
// rides the single-predicate batch path; multi-leaf expressions join
// the same micro-batches through Store.ExecExprBatchAppend, where
// subtrees shared across the batch evaluate once on the shared warm
// reader (the cross-query subexpression cache).
func (b *Batcher) DoExpr(ctx context.Context, dst []uint32, e *setcontain.Expr) ([]uint32, error) {
	return b.DoExprLimit(ctx, dst, e, 0)
}

// DoExprLimit submits one boolean expression whose answer is truncated
// to its first `limit` ids with early-exit evaluation (0 means no
// limit, negative returns setcontain.ErrNegativeLimit); otherwise
// exactly DoExpr.
func (b *Batcher) DoExprLimit(ctx context.Context, dst []uint32, e *setcontain.Expr, limit int) ([]uint32, error) {
	if limit < 0 {
		return dst, setcontain.ErrNegativeLimit
	}
	if limit == 0 {
		if q, ok := e.AsQuery(); ok {
			return b.Do(ctx, dst, q)
		}
	}
	if err := ctx.Err(); err != nil {
		return dst, err
	}
	if b.closed.Load() {
		return dst, ErrClosed
	}
	w := b.getWaiter()
	w.ctx, w.expr, w.limit, w.dst = ctx, e, limit, dst
	return b.submit(ctx, w, dst)
}

func (b *Batcher) getWaiter() *waiter {
	w, _ := b.waiters.Get().(*waiter)
	if w == nil {
		w = &waiter{done: make(chan struct{}, 1)}
	}
	return w
}

// submit enqueues an already-filled waiter and blocks for its result —
// the admission and completion halves shared by Do and DoExprLimit.
func (b *Batcher) submit(ctx context.Context, w *waiter, dst []uint32) ([]uint32, error) {
	select {
	case b.reqCh <- w:
	default:
		w.reset()
		b.waiters.Put(w)
		b.rejected.Add(1)
		return dst, ErrSaturated
	}
	select {
	case <-w.done:
		out, err := w.out, w.err
		if out == nil {
			// Failed item: the dispatcher never extended dst, so hand
			// the caller's buffer back with the error.
			out = dst
		}
		w.reset()
		b.waiters.Put(w)
		return out, err
	case <-ctx.Done():
		// The dispatcher still owns w (it will signal the buffered done
		// channel into the void); the waiter and dst are forfeited.
		b.canceled.Add(1)
		return nil, ctx.Err()
	case <-b.ctx.Done():
		// Close raced an admitted query: a dispatcher may still be
		// executing it against dst — forfeited, like the ctx path.
		return nil, ErrClosed
	}
}

// run is one dispatcher: collect a batch, execute it, publish results.
func (b *Batcher) run() {
	defer b.wg.Done()
	batch := make([]*waiter, 0, b.cfg.MaxBatch)
	items := make([]setcontain.BatchItem, b.cfg.MaxBatch)
	eitems := make([]setcontain.ExprBatchItem, b.cfg.MaxBatch)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case <-b.ctx.Done():
			b.drain()
			return
		case w := <-b.reqCh:
			batch = append(batch, w)
		}
		batch = b.fill(batch, timer)
		b.exec(batch, items, eitems)
		batch = batch[:0]
	}
}

// fill gathers more queued queries into batch: everything immediately
// available, then — if the batch is still short and lingering is on —
// whatever arrives within MaxLinger.
func (b *Batcher) fill(batch []*waiter, timer *time.Timer) []*waiter {
	limit := b.cfg.MaxBatch
	for len(batch) < limit {
		select {
		case w := <-b.reqCh:
			batch = append(batch, w)
			continue
		default:
		}
		break
	}
	if len(batch) >= limit || b.cfg.MaxLinger <= 0 {
		return batch
	}
	timer.Reset(b.cfg.MaxLinger)
	for len(batch) < limit {
		select {
		case w := <-b.reqCh:
			batch = append(batch, w)
		case <-timer.C:
			return batch // timer already drained
		case <-b.ctx.Done():
			break
		}
		if b.ctx.Err() != nil {
			break
		}
	}
	if !timer.Stop() {
		select {
		case <-timer.C:
		default:
		}
	}
	return batch
}

// exec partitions the batch into plain queries and expressions,
// dispatches each part through its batch entry point
// (Store.ExecBatchAppend / Store.ExecExprBatchAppend — the latter
// evaluates subtrees shared across the batch once), and publishes each
// waiter's result. items and eitems are the dispatcher's reusable
// arenas.
func (b *Batcher) exec(batch []*waiter, items []setcontain.BatchItem, eitems []setcontain.ExprBatchItem) {
	n := len(batch)
	if n == 0 {
		return
	}
	nq, ne := 0, 0
	for _, w := range batch {
		if w.expr != nil {
			eitems[ne] = setcontain.ExprBatchItem{Ctx: w.ctx, Expr: w.expr, Limit: w.limit, Dst: w.dst}
			ne++
		} else {
			items[nq] = setcontain.BatchItem{Ctx: w.ctx, Query: w.q, Dst: w.dst}
			nq++
		}
	}
	var qProcessed, eProcessed int
	var qErr, eErr error
	if nq > 0 {
		qProcessed, qErr = b.store.ExecBatchAppend(b.ctx, items[:nq])
	}
	if ne > 0 {
		eProcessed, eErr = b.store.ExecExprBatchAppend(b.ctx, eitems[:ne])
	}
	if b.closed.Load() {
		if qErr != nil {
			qErr = ErrClosed
		}
		if eErr != nil {
			eErr = ErrClosed
		}
	}
	iq, ie := 0, 0
	for _, w := range batch {
		if w.expr != nil {
			if ie < eProcessed {
				w.out, w.err = eitems[ie].Out, eitems[ie].Err
			} else {
				w.out, w.err = nil, eErr
			}
			eitems[ie] = setcontain.ExprBatchItem{} // drop buffer references
			ie++
		} else {
			if iq < qProcessed {
				w.out, w.err = items[iq].Out, items[iq].Err
			} else {
				w.out, w.err = nil, qErr
			}
			items[iq] = setcontain.BatchItem{} // drop buffer references
			iq++
		}
		select {
		case w.done <- struct{}{}:
		default:
		}
	}
	b.queries.Add(int64(n))
	b.batches.Add(1)
	b.hist[n-1].Add(1)
}

// drain fails every still-queued query with ErrClosed after Close.
func (b *Batcher) drain() {
	for {
		select {
		case w := <-b.reqCh:
			w.out, w.err = nil, ErrClosed
			select {
			case w.done <- struct{}{}:
			default:
			}
		default:
			return
		}
	}
}

// BatcherStats is a snapshot of the batcher's dispatch behaviour; the
// batch-size histogram is how a load test verifies coalescing actually
// engages (a mean above 1 under concurrent traffic).
type BatcherStats struct {
	// Queries is the total queries dispatched (admitted and executed).
	Queries int64
	// Batches is the total dispatches; Queries/Batches is the mean
	// batch size, also available as MeanBatch.
	Batches int64
	// Rejected counts queries refused at admission with ErrSaturated.
	Rejected int64
	// Canceled counts Do calls abandoned by their caller's context
	// while queued or executing.
	Canceled int64
	// Pending is the queries queued awaiting dispatch at snapshot time
	// (a gauge; admission refuses beyond Config.MaxPending).
	Pending int
	// BatchSizes is the dispatch histogram: BatchSizes[i] batches
	// carried exactly i+1 queries.
	BatchSizes []int64
}

// MeanBatch returns the mean queries per dispatch, 0 before the first.
func (s BatcherStats) MeanBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.Queries) / float64(s.Batches)
}

// Stats returns a consistent-enough snapshot of the counters (each
// counter is read atomically; the set is not a single atomic cut).
func (b *Batcher) Stats() BatcherStats {
	st := BatcherStats{
		Queries:    b.queries.Load(),
		Batches:    b.batches.Load(),
		Rejected:   b.rejected.Load(),
		Canceled:   b.canceled.Load(),
		Pending:    len(b.reqCh),
		BatchSizes: make([]int64, len(b.hist)),
	}
	for i := range b.hist {
		st.BatchSizes[i] = b.hist[i].Load()
	}
	return st
}
