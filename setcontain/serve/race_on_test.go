//go:build race

package serve_test

// raceEnabled reports that the race detector is instrumenting this
// build; allocation-count assertions are skipped because the detector
// itself allocates.
const raceEnabled = true
