package serve

import (
	"fmt"

	"repro/setcontain"
)

// The wire types are the service's JSON vocabulary. Requests carry
// queries in the same textual vocabulary as the CLIs — predicate names
// from Predicate.String, items as decimal uint32s, boolean expressions
// in the setcontain.ParseExpr grammar — so setcontain.ParsePredicate /
// setcontain.ParseExpr are the single parsing authority on both the
// library and wire paths.

// QueryRequest is the POST /query body: the queries to answer, in
// order. Answers stream back as Result lines keyed by query index.
type QueryRequest struct {
	Queries []QuerySpec `json:"queries"`
}

// QuerySpec is one query on the wire: either a single containment
// predicate — a predicate name ("subset", "equality", or "superset",
// as Predicate.String spells them) plus the query items — or a boolean
// expression in Expr, the textual setcontain.ParseExpr grammar
// ("subset{1 2} and not superset{3}"). Setting Expr alongside Pred is
// an error: one spec is one query, spelled one way.
type QuerySpec struct {
	Pred  string            `json:"pred,omitempty"`
	Items []setcontain.Item `json:"items,omitempty"`
	Expr  string            `json:"expr,omitempty"`
	// Limit caps the answer to its first Limit ids (ascending). Zero or
	// absent means the full answer; a negative limit is rejected (400).
	Limit int `json:"limit,omitempty"`
}

// Query converts the spec to a setcontain.Query, validating the
// predicate name. Specs carrying an expression don't fit a single
// query; use Parse.
func (qs QuerySpec) Query() (setcontain.Query, error) {
	pred, err := setcontain.ParsePredicate(qs.Pred)
	if err != nil {
		return setcontain.Query{}, fmt.Errorf("serve: %w", err)
	}
	return setcontain.Query{Pred: pred, Items: qs.Items}, nil
}

// Parse converts the spec to an expression tree: Expr through
// setcontain.ParseExpr (errors keep their *setcontain.ParseError
// offset), a Pred/Items pair as the one-leaf degenerate expression.
func (qs QuerySpec) Parse() (*setcontain.Expr, error) {
	if qs.Expr != "" {
		if qs.Pred != "" || len(qs.Items) != 0 {
			return nil, fmt.Errorf("serve: spec sets both expr and pred/items")
		}
		return setcontain.ParseExpr(qs.Expr)
	}
	q, err := qs.Query()
	if err != nil {
		return nil, err
	}
	return setcontain.ExprOf(q), nil
}

// SpecOf renders a setcontain.Query as its wire spec.
func SpecOf(q setcontain.Query) QuerySpec {
	return QuerySpec{Pred: q.Pred.String(), Items: q.Items}
}

// SpecOfExpr renders an expression as its wire spec: one-leaf trees
// keep the structured Pred/Items form, everything else the textual
// grammar.
func SpecOfExpr(e *setcontain.Expr) QuerySpec {
	if q, ok := e.AsQuery(); ok {
		return SpecOf(q)
	}
	return QuerySpec{Expr: e.String()}
}

// QueryErrorResponse is the JSON body of a 400 answer to a query whose
// textual form failed to parse. Offset is the byte position of the
// failing token inside the query string (present exactly when the
// failure was a positioned *setcontain.ParseError), so clients can
// point at the error instead of re-lexing the message.
type QueryErrorResponse struct {
	Error  string `json:"error"`
	Offset *int   `json:"offset,omitempty"`
}

// Result is one NDJSON response line. A query's answer arrives as zero
// or more chunk lines (More true) followed by one final line (Done
// true) carrying the total count — so clients consume arbitrarily large
// answers without either side materializing them. Error lines are
// final lines with Error set.
type Result struct {
	// Query is the index of the answered query in the request.
	Query int `json:"query"`
	// IDs is this chunk's slice of the ascending answer ids.
	IDs []uint32 `json:"ids,omitempty"`
	// More marks a non-final chunk: further lines follow for this query.
	More bool `json:"more,omitempty"`
	// Done marks the query's final line.
	Done bool `json:"done,omitempty"`
	// Count is the total ids answered; meaningful on the final line
	// (always present there, including 0 for an empty answer) and 0 on
	// chunk lines.
	Count int `json:"count"`
	// Error is the query's error, set on the final line when it failed.
	Error string `json:"error,omitempty"`
}

// HealthResponse is the GET /healthz body.
type HealthResponse struct {
	OK      bool   `json:"ok"`
	Kind    string `json:"kind"`            // engine kind serving the index
	Records int    `json:"records"`         // indexed records (tombstoned slots included)
	Domain  int    `json:"domain"`          // vocabulary size
	Pending int    `json:"pending_inserts"` // unmerged inserts
	Deleted int    `json:"deleted"`         // tombstoned records
	// WAL summarizes the write-ahead log when one is attached: absent
	// means the daemon serves the plain in-memory mutation path.
	WAL *WALHealthJSON `json:"wal,omitempty"`
}

// WALHealthJSON is the /healthz WAL summary. A Wedged log means a log
// append or fsync failed: mutations are refused (503) until the process
// restarts and recovers, while queries keep being served.
type WALHealthJSON struct {
	LastLSN       uint64 `json:"last_lsn"`
	CheckpointLSN uint64 `json:"checkpoint_lsn"`
	Segments      int    `json:"segments"`
	Wedged        bool   `json:"wedged,omitempty"`
}

// InsertRequest is the POST /admin/insert body: one or more record sets
// to add to the live index's delta.
type InsertRequest struct {
	Sets [][]setcontain.Item `json:"sets"`
}

// InsertResponse reports the ids assigned to the inserted records, in
// request order.
type InsertResponse struct {
	IDs []uint32 `json:"ids"`
}

// InsertErrorResponse is the POST /admin/insert error body (status 400
// or 503). A mid-batch failure leaves the earlier inserts applied —
// with a write-ahead log attached they are already durably acknowledged
// server-side — so the body carries their ids alongside the error,
// letting the client reconcile the partial batch instead of guessing.
// FailedSet is the request index of the first set whose insert is not
// acknowledged (always len(ids)): everything before it stuck,
// everything from it on did not.
type InsertErrorResponse struct {
	Error     string   `json:"error"`
	IDs       []uint32 `json:"ids"`
	FailedSet int      `json:"failed_set"`
}

// DeleteRequest is the POST /admin/delete body: record ids to tombstone.
type DeleteRequest struct {
	IDs []uint32 `json:"ids"`
}

// DeleteResponse reports how many records the request tombstoned.
type DeleteResponse struct {
	Deleted int `json:"deleted"`
}

// AdminStateResponse reports the index's mutation state after an admin
// operation (the POST /admin/merge body, and useful to poll).
type AdminStateResponse struct {
	Records int `json:"records"`         // indexed records (tombstoned slots included)
	Pending int `json:"pending_inserts"` // unmerged inserts
	Deleted int `json:"deleted"`         // tombstoned records
}

// StatsResponse is the GET /stats body: everything a load test or
// operator needs to see whether batching and the caches are doing
// their jobs.
type StatsResponse struct {
	// Batcher is the dispatch behaviour, including the batch-size
	// histogram and its mean.
	Batcher BatcherStatsJSON `json:"batcher"`
	// Store aggregates the pooled readers' page-cache and
	// decoded-cache counters.
	Store StoreStatsJSON `json:"store"`
	// ShardPlans lists the per-shard planning decisions of a sharded
	// engine (absent otherwise).
	ShardPlans []ShardPlanJSON `json:"shard_plans,omitempty"`
	// Planner is the boolean-expression planner's accounting: how many
	// multi-leaf expressions ran and how much leaf work the cost-based
	// ordering short-circuited away.
	Planner PlannerStatsJSON `json:"planner"`
	// Streams counts GET /stream requests served and aborted
	// (client disconnect or error mid-stream).
	Streams StreamStatsJSON `json:"streams"`
	// Snapshots counts POST /admin/snapshot downloads completed and
	// failed (client disconnect or write error mid-container).
	Snapshots SnapshotStatsJSON `json:"snapshots"`
	// WAL reports the write-ahead log's state when one is attached
	// (absent otherwise).
	WAL *WALStatsJSON `json:"wal,omitempty"`
	// UptimeSeconds is the seconds since the server was created.
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// BatcherStatsJSON mirrors BatcherStats on the wire, with the mean
// precomputed.
type BatcherStatsJSON struct {
	Queries    int64   `json:"queries"`
	Batches    int64   `json:"batches"`
	MeanBatch  float64 `json:"mean_batch"`
	Rejected   int64   `json:"rejected"`
	Canceled   int64   `json:"canceled"`
	Pending    int     `json:"pending"`
	BatchSizes []int64 `json:"batch_sizes"`
}

// StoreStatsJSON mirrors setcontain.StoreStats on the wire.
type StoreStatsJSON struct {
	CacheHits      int64   `json:"cache_hits"`
	PageReads      int64   `json:"page_reads"`
	DecodedHits    int64   `json:"decoded_hits"`
	DecodedMisses  int64   `json:"decoded_misses"`
	DecodedHitRate float64 `json:"decoded_hit_rate"`
}

// ShardPlanJSON mirrors setcontain.ShardPlan on the wire.
type ShardPlanJSON struct {
	Shard         int     `json:"shard"`
	Kind          string  `json:"kind"`
	Records       int     `json:"records"`
	Theta         float64 `json:"theta"`
	BlockPostings int     `json:"block_postings,omitempty"`
}

// PlannerStatsJSON mirrors setcontain.ExprStats on the wire, plus the
// skew parameter the cost model planned against. EvaluatedLeaves and
// SkippedLeaves split each expression's containment leaves into ones
// actually run and ones the rarest-first ordering's empty-intermediate
// short-circuit discarded; StreamedLeaves counts the evaluated leaves
// that ran through the streaming tier (candidate pushdown or a lazy
// posting cursor) instead of materializing their full answer. The CSE
// counters account for the batcher's cross-query subexpression cache:
// hits and misses on shared plan subtrees within a micro-batch, and the
// leaf evaluations those hits saved. Theta is the fitted Zipf exponent
// of the store's cached support profile.
type PlannerStatsJSON struct {
	Expressions     int64   `json:"expressions"`
	EvaluatedLeaves int64   `json:"evaluated_leaves"`
	StreamedLeaves  int64   `json:"streamed_leaves"`
	SkippedLeaves   int64   `json:"skipped_leaves"`
	CSEHits         int64   `json:"cse_hits"`
	CSEMisses       int64   `json:"cse_misses"`
	CSESavedLeaves  int64   `json:"cse_saved_leaves"`
	Theta           float64 `json:"theta"`
}

// StreamStatsJSON counts the /stream endpoint's outcomes.
type StreamStatsJSON struct {
	Served  int64 `json:"served"`
	Aborted int64 `json:"aborted"`
}

// SnapshotStatsJSON counts the /admin/snapshot endpoint's outcomes.
type SnapshotStatsJSON struct {
	Served int64 `json:"served"`
	Failed int64 `json:"failed"`
}

// WALStatsJSON is the /stats view of the durability layer: the log's
// size and position, checkpoint progress, startup replay cost, and
// fsync latency. BytesSinceCheckpoint is the distance to the next
// automatic checkpoint; ReplayMillis is what the last restart paid to
// recover.
type WALStatsJSON struct {
	Segments             int     `json:"segments"`
	TotalBytes           int64   `json:"total_bytes"`
	LastLSN              uint64  `json:"last_lsn"`
	CheckpointLSN        uint64  `json:"checkpoint_lsn"`
	BytesSinceCheckpoint int64   `json:"bytes_since_checkpoint"`
	Appends              int64   `json:"appends"`
	Syncs                int64   `json:"syncs"`
	LastSyncMicros       float64 `json:"last_sync_micros"`
	MeanSyncMicros       float64 `json:"mean_sync_micros"`
	Checkpoints          int64   `json:"checkpoints"`
	ReplayRecords        int     `json:"replay_records"`
	ReplayMillis         float64 `json:"replay_ms"`
	ReplayTruncated      bool    `json:"replay_truncated,omitempty"`
	Wedged               bool    `json:"wedged,omitempty"`
}

// CheckpointResponse is the POST /admin/checkpoint body: the new
// watermark and the log's post-truncation footprint.
type CheckpointResponse struct {
	CheckpointLSN uint64 `json:"checkpoint_lsn"`
	Segments      int    `json:"segments"`
	LogBytes      int64  `json:"log_bytes"`
}
