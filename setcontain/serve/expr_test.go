package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/url"
	"strings"
	"testing"

	"repro/setcontain"
	"repro/setcontain/serve"
)

// exprFixture builds a server plus a multi-leaf expression with a
// non-trivial answer over its fixture collection.
func exprFixture(t *testing.T) (*setcontain.Store, *httptestExpr, *setcontain.Expr) {
	t.Helper()
	c, store, _, ts := newTestServer(t, serve.Config{ChunkIDs: 16})
	qs := serveQueries(t, c, 2)
	hot := hottestQuery(t, c)
	expr := setcontain.And(
		setcontain.ExprOf(hot),
		setcontain.Not(setcontain.ExprOf(setcontain.Query{
			Pred:  setcontain.PredicateSuperset,
			Items: qs[0].Items,
		})),
	)
	return store, &httptestExpr{ts.URL}, expr
}

type httptestExpr struct{ url string }

func (h *httptestExpr) get(t *testing.T, path, q string) *http.Response {
	t.Helper()
	resp, err := http.Get(h.url + path + "?q=" + url.QueryEscape(q))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestServerExprGet answers a boolean expression through GET /query and
// GET /stream, byte-identical to the store's direct planned answer.
func TestServerExprGet(t *testing.T) {
	store, h, expr := exprFixture(t)
	want, err := store.ExecExpr(context.Background(), expr)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("fixture expression answers nothing; pick a wider one")
	}
	for _, path := range []string{"/query", "/stream"} {
		resp := h.get(t, path, expr.String())
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		ids, errs := decodeResults(t, resp.Body)
		resp.Body.Close()
		if len(errs) != 0 {
			t.Fatalf("GET %s: errors %v", path, errs)
		}
		got := ids[0]
		if len(got) != len(want) {
			t.Fatalf("GET %s: %d ids, want %d", path, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("GET %s: id[%d] = %d, want %d", path, i, got[i], want[i])
			}
		}
	}
}

// TestServerExprPost mixes structured one-predicate specs and textual
// expression specs in one POST batch; each answer must match the
// store's direct one.
func TestServerExprPost(t *testing.T) {
	store, h, expr := exprFixture(t)
	leaf, _ := setcontain.ParseQuery("subset{0}")
	req := serve.QueryRequest{Queries: []serve.QuerySpec{
		serve.SpecOf(leaf),
		{Expr: expr.String()},
		serve.SpecOfExpr(expr),
	}}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(h.url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	ids, errs := decodeResults(t, resp.Body)
	if len(errs) != 0 {
		t.Fatalf("query errors: %v", errs)
	}
	ctx := context.Background()
	wantLeaf, err := store.Exec(ctx, leaf)
	if err != nil {
		t.Fatal(err)
	}
	wantExpr, err := store.ExecExpr(ctx, expr)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range [][]uint32{wantLeaf, wantExpr, wantExpr} {
		got := ids[i]
		if len(got) != len(want) {
			t.Fatalf("query %d: %d ids, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("query %d: id[%d] = %d, want %d", i, j, got[j], want[j])
			}
		}
	}
}

// TestServerExprErrors pins the expression 400 paths: the JSON error
// body carries the parse offset on GET /query, GET /stream, and POST
// expr specs, and a spec setting both expr and pred is refused.
func TestServerExprErrors(t *testing.T) {
	_, h, _ := exprFixture(t)
	decode := func(t *testing.T, resp *http.Response) serve.QueryErrorResponse {
		t.Helper()
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("Content-Type %q, want application/json", ct)
		}
		var body serve.QueryErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("decoding error body: %v", err)
		}
		if body.Error == "" {
			t.Fatal("error body carries no message")
		}
		return body
	}
	// "subset(1 2)": the failing byte is the paren at offset 6.
	for _, path := range []string{"/query", "/stream"} {
		t.Run("GET "+path, func(t *testing.T) {
			body := decode(t, h.get(t, path, "subset(1 2)"))
			if body.Offset == nil || *body.Offset != 6 {
				t.Fatalf("offset %v, want 6 (%s)", body.Offset, body.Error)
			}
		})
	}
	post := func(t *testing.T, reqBody string) *http.Response {
		t.Helper()
		resp, err := http.Post(h.url+"/query", "application/json", strings.NewReader(reqBody))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	t.Run("POST bad expr", func(t *testing.T) {
		body := decode(t, post(t, `{"queries":[{"expr":"subset(1 2)"}]}`))
		if body.Offset == nil || *body.Offset != 6 {
			t.Fatalf("offset %v, want 6 (%s)", body.Offset, body.Error)
		}
	})
	t.Run("POST expr and pred", func(t *testing.T) {
		body := decode(t, post(t, `{"queries":[{"pred":"subset","items":[1],"expr":"subset{1}"}]}`))
		if body.Offset != nil {
			t.Fatalf("ambiguous spec is not a positioned parse error, got offset %d", *body.Offset)
		}
	})
	t.Run("POST unknown predicate keeps plain 400", func(t *testing.T) {
		decode(t, post(t, `{"queries":[{"pred":"between","items":[1]}]}`))
	})
}

// TestServerExprLimit wires the limit end-to-end: GET ?limit= on /query
// and /stream, the "limit" field on POST specs — each answering exactly
// the first n ids of the unlimited answer — and 400 on a negative or
// malformed limit.
func TestServerExprLimit(t *testing.T) {
	store, h, expr := exprFixture(t)
	want, err := store.ExecExpr(context.Background(), expr)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) < 3 {
		t.Fatalf("fixture expression answers %d ids; test needs at least 3", len(want))
	}
	const n = 2
	for _, path := range []string{"/query", "/stream"} {
		resp, err := http.Get(h.url + path + "?q=" + url.QueryEscape(expr.String()) + "&limit=2")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		ids, errs := decodeResults(t, resp.Body)
		resp.Body.Close()
		if len(errs) != 0 {
			t.Fatalf("GET %s: errors %v", path, errs)
		}
		got := ids[0]
		if len(got) != n || got[0] != want[0] || got[1] != want[1] {
			t.Fatalf("GET %s limit=%d: got %v, want %v", path, n, got, want[:n])
		}
	}
	req := serve.QueryRequest{Queries: []serve.QuerySpec{
		{Expr: expr.String(), Limit: n},
		{Expr: expr.String()},
	}}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(h.url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST: status %d", resp.StatusCode)
	}
	ids, errs := decodeResults(t, resp.Body)
	resp.Body.Close()
	if len(errs) != 0 {
		t.Fatalf("POST: errors %v", errs)
	}
	if len(ids[0]) != n || ids[0][0] != want[0] {
		t.Fatalf("POST limited query: got %v, want %v", ids[0], want[:n])
	}
	if len(ids[1]) != len(want) {
		t.Fatalf("POST unlimited query: %d ids, want %d", len(ids[1]), len(want))
	}
	// Bad limits are client errors before any evaluation.
	for _, bad := range []string{"-1", "nope", "1.5"} {
		for _, path := range []string{"/query", "/stream"} {
			resp, err := http.Get(h.url + path + "?q=" + url.QueryEscape("subset{1}") + "&limit=" + url.QueryEscape(bad))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("GET %s limit=%q: status %d, want 400", path, bad, resp.StatusCode)
			}
		}
	}
	resp, err = http.Post(h.url+"/query", "application/json",
		strings.NewReader(`{"queries":[{"expr":"subset{1}","limit":-3}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("POST negative limit: status %d, want 400", resp.StatusCode)
	}
}

// TestServerStatsPlanner checks /stats reports the expression planner's
// accounting after a multi-leaf query ran.
func TestServerStatsPlanner(t *testing.T) {
	store, h, expr := exprFixture(t)
	resp := h.get(t, "/query", expr.String())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	decodeResults(t, resp.Body)
	resp.Body.Close()

	sresp, err := http.Get(h.url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st serve.StatsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	est := store.ExprStats()
	if st.Planner.Expressions != est.Expressions || est.Expressions == 0 {
		t.Fatalf("planner expressions %d over HTTP, %d direct", st.Planner.Expressions, est.Expressions)
	}
	if st.Planner.EvaluatedLeaves != est.EvaluatedLeaves {
		t.Fatalf("planner evaluated leaves %d over HTTP, %d direct", st.Planner.EvaluatedLeaves, est.EvaluatedLeaves)
	}
	if st.Planner.Theta != store.Supports().Theta {
		t.Fatalf("planner theta %v over HTTP, %v direct", st.Planner.Theta, store.Supports().Theta)
	}
}
