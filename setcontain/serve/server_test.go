package serve_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/setcontain"
	"repro/setcontain/serve"
)

// newTestServer builds a sharded skewed index, a store over it, and an
// httptest server over the serve handlers.
func newTestServer(t testing.TB, cfg serve.Config, opts ...setcontain.Option) (*setcontain.Collection, *setcontain.Store, *serve.Server, *httptest.Server) {
	t.Helper()
	if opts == nil {
		opts = []setcontain.Option{
			setcontain.WithKind(setcontain.Sharded),
			setcontain.WithShards(2),
		}
	}
	c, idx, store := newTestStore(t, opts...)
	srv := serve.NewServer(idx, store, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return c, store, srv, ts
}

// decodeResults reads an NDJSON response body and reassembles the
// answer ids per query index, checking the chunk protocol (More lines
// then one Done line whose Count matches).
func decodeResults(t *testing.T, r io.Reader) (map[int][]uint32, map[int]string) {
	t.Helper()
	ids := make(map[int][]uint32)
	errs := make(map[int]string)
	done := make(map[int]bool)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var res serve.Result
		if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if done[res.Query] {
			t.Fatalf("line for query %d after its Done line", res.Query)
		}
		if _, ok := ids[res.Query]; !ok {
			ids[res.Query] = []uint32{}
		}
		ids[res.Query] = append(ids[res.Query], res.IDs...)
		switch {
		case res.Error != "":
			errs[res.Query] = res.Error
			done[res.Query] = true
		case res.Done:
			if res.Count != len(ids[res.Query]) {
				t.Fatalf("query %d: final Count %d but %d ids streamed", res.Query, res.Count, len(ids[res.Query]))
			}
			done[res.Query] = true
		case !res.More:
			t.Fatalf("line for query %d neither More, Done, nor Error: %q", res.Query, sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for q := range ids {
		if !done[q] {
			t.Fatalf("query %d never finished", q)
		}
	}
	return ids, errs
}

// TestServerQueryEndToEnd round-trips a batch of queries over HTTP
// against a sharded index and checks the streamed answers are exactly
// the Store's, including multi-chunk answers.
func TestServerQueryEndToEnd(t *testing.T) {
	c, store, _, ts := newTestServer(t, serve.Config{ChunkIDs: 8})

	queries := serveQueries(t, c, 12)
	req := serve.QueryRequest{}
	for _, q := range queries {
		req.Queries = append(req.Queries, serve.SpecOf(q))
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type %q", ct)
	}
	ids, errs := decodeResults(t, resp.Body)
	if len(errs) != 0 {
		t.Fatalf("query errors: %v", errs)
	}
	if len(ids) != len(queries) {
		t.Fatalf("answers for %d queries, want %d", len(ids), len(queries))
	}
	for i, q := range queries {
		want, err := store.Exec(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		got := ids[i]
		if len(got) != len(want) {
			t.Fatalf("query %d %v: %d ids over HTTP, %d direct", i, q, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("query %d %v: id[%d] = %d over HTTP, %d direct", i, q, j, got[j], want[j])
			}
		}
	}
}

// TestServerQueryGet answers a single ?q= query in the textual form.
func TestServerQueryGet(t *testing.T) {
	c, store, _, ts := newTestServer(t, serve.Config{})
	q := serveQueries(t, c, 1)[0]
	resp, err := http.Get(ts.URL + "/query?q=" + strings.ReplaceAll(q.String(), " ", "+"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	ids, errs := decodeResults(t, resp.Body)
	if len(errs) != 0 {
		t.Fatalf("query errors: %v", errs)
	}
	want, err := store.Exec(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids[0]) != len(want) {
		t.Fatalf("%d ids over HTTP, %d direct", len(ids[0]), len(want))
	}
}

// TestServerBadRequests pins the 4xx paths: malformed JSON, unknown
// predicate, empty batch, bad ?q=, wrong method.
func TestServerBadRequests(t *testing.T) {
	_, _, _, ts := newTestServer(t, serve.Config{})
	cases := []struct {
		name   string
		do     func() (*http.Response, error)
		status int
	}{
		{"malformed json", func() (*http.Response, error) {
			return http.Post(ts.URL+"/query", "application/json", strings.NewReader("{"))
		}, http.StatusBadRequest},
		{"unknown predicate", func() (*http.Response, error) {
			return http.Post(ts.URL+"/query", "application/json",
				strings.NewReader(`{"queries":[{"pred":"between","items":[1]}]}`))
		}, http.StatusBadRequest},
		{"no queries", func() (*http.Response, error) {
			return http.Post(ts.URL+"/query", "application/json", strings.NewReader(`{"queries":[]}`))
		}, http.StatusBadRequest},
		{"bad q", func() (*http.Response, error) {
			return http.Get(ts.URL + "/query?q=subset(1+2)")
		}, http.StatusBadRequest},
		{"bad stream q", func() (*http.Response, error) {
			return http.Get(ts.URL + "/stream?q=")
		}, http.StatusBadRequest},
		{"delete method", func() (*http.Response, error) {
			req, err := http.NewRequest(http.MethodDelete, ts.URL+"/query", nil)
			if err != nil {
				return nil, err
			}
			return http.DefaultClient.Do(req)
		}, http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := tc.do()
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Errorf("status %d, want %d", resp.StatusCode, tc.status)
			}
		})
	}
}

// TestServerStream checks the flushed streaming endpoint delivers a
// large answer chunk-by-chunk, byte-identical to the direct answer.
func TestServerStream(t *testing.T) {
	c, store, _, ts := newTestServer(t, serve.Config{ChunkIDs: 16})
	// subset{hottest item} has the largest answer of the skewed fixture.
	q := hottestQuery(t, c)
	want, err := store.Exec(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) <= 64 {
		t.Fatalf("fixture too small: hottest answer only %d ids", len(want))
	}

	resp, err := http.Get(ts.URL + "/stream?q=" + strings.ReplaceAll(q.String(), " ", "+"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	ids, errs := decodeResults(t, resp.Body)
	if len(errs) != 0 {
		t.Fatalf("stream errors: %v", errs)
	}
	got := ids[0]
	if len(got) != len(want) {
		t.Fatalf("%d ids streamed, want %d", len(got), len(want))
	}
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("id[%d] = %d streamed, %d direct", j, got[j], want[j])
		}
	}
}

// hottestQuery returns subset{most frequent item} — the widest answer
// in the fixture.
func hottestQuery(t testing.TB, c *setcontain.Collection) setcontain.Query {
	t.Helper()
	counts := make(map[setcontain.Item]int)
	for id := uint32(1); int(id) <= c.Len(); id++ {
		set, err := c.Record(id)
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range set {
			counts[it]++
		}
	}
	var best setcontain.Item
	for it, n := range counts {
		if n > counts[best] {
			best = it
		}
	}
	return setcontain.SubsetQuery([]setcontain.Item{best})
}

// disconnectingWriter is a ResponseWriter standing in for a client
// that vanishes after the first response chunk: the first Write
// cancels the request context, exactly what net/http does to
// r.Context() when the peer disconnects.
type disconnectingWriter struct {
	header http.Header
	writes int
	cancel context.CancelFunc
}

func (w *disconnectingWriter) Header() http.Header { return w.header }
func (w *disconnectingWriter) WriteHeader(int)     {}
func (w *disconnectingWriter) Flush()              {}
func (w *disconnectingWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes == 1 {
		w.cancel()
	}
	return len(p), nil
}

// TestServerStreamClientDisconnect drops the client after the first
// chunk of a many-chunk stream and checks the handler aborts promptly
// — the cancelled request context stops the chunk loop (and, had the
// cancel landed during execution, the Store's interrupt hook; see
// TestBatcherCancelMidExecution) — rather than writing every remaining
// chunk into the void.
func TestServerStreamClientDisconnect(t *testing.T) {
	c, store, srv, _ := newTestServer(t, serve.Config{ChunkIDs: 4})
	q := hottestQuery(t, c)
	want, err := store.Exec(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	totalChunks := (len(want) + 3) / 4
	if totalChunks < 8 {
		t.Fatalf("fixture too small: only %d chunks", totalChunks)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &disconnectingWriter{header: make(http.Header), cancel: cancel}
	req := httptest.NewRequest(http.MethodGet,
		"/stream?q="+strings.ReplaceAll(q.String(), " ", "+"), nil).WithContext(ctx)
	srv.Handler().ServeHTTP(w, req)

	if w.writes >= totalChunks {
		t.Errorf("handler wrote %d chunks to a disconnected client (answer has %d)", w.writes, totalChunks)
	}
	waitFor(t, "abort to be recorded", func() bool {
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
		var st serve.StatsResponse
		if err := json.NewDecoder(rec.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st.Streams.Aborted >= 1 && st.Streams.Served == 0
	})
}

// TestServerSaturation429 parks the dispatcher, fills the admission
// queue, and checks a fresh request is refused with 429 and a
// Retry-After header — then releases the gate and checks the queued
// request completes.
func TestServerSaturation429(t *testing.T) {
	c, _, srv, ts := newTestServer(t, serve.Config{
		MaxBatch:    1,
		MaxPending:  1,
		Dispatchers: 1,
		MaxLinger:   -1,
	})
	queries := serveQueries(t, c, 3)

	gate := newBlockingCtx()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := srv.Batcher().Do(gate, nil, queries[0]); err != nil {
			t.Errorf("gated query: %v", err)
		}
	}()
	waitFor(t, "dispatcher to park on the gate", func() bool { return gate.calls.Load() >= 2 })

	// One HTTP request occupies the queue slot and blocks.
	post := func(q setcontain.Query) (*http.Response, error) {
		body, err := json.Marshal(serve.QueryRequest{Queries: []serve.QuerySpec{serve.SpecOf(q)}})
		if err != nil {
			t.Fatal(err)
		}
		return http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	}
	queuedDone := make(chan error, 1)
	go func() {
		resp, err := post(queries[1])
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("queued request: status %d", resp.StatusCode)
			}
		}
		queuedDone <- err
	}()
	waitFor(t, "queued request to occupy the slot", func() bool {
		return srv.Batcher().Stats().Pending == 1
	})

	// The queue is full: the next request must shed with 429.
	resp, err := post(queries[2])
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	close(gate.gate)
	wg.Wait()
	if err := <-queuedDone; err != nil {
		t.Fatal(err)
	}
}

// TestServerStatsAndHealth exercises /stats and /healthz after load:
// batcher counters advance, shard plans surface, health reports the
// index identity.
func TestServerStatsAndHealth(t *testing.T) {
	c, _, _, ts := newTestServer(t, serve.Config{})
	queries := serveQueries(t, c, 9)
	req := serve.QueryRequest{}
	for _, q := range queries {
		req.Queries = append(req.Queries, serve.SpecOf(q))
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	statsResp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var st serve.StatsResponse
	if err := json.NewDecoder(statsResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Batcher.Queries != int64(len(queries)) {
		t.Errorf("stats report %d queries, want %d", st.Batcher.Queries, len(queries))
	}
	if st.Batcher.Batches == 0 || st.Batcher.MeanBatch <= 0 {
		t.Errorf("batch counters missing: %+v", st.Batcher)
	}
	if len(st.ShardPlans) != 2 {
		t.Errorf("%d shard plans, want 2", len(st.ShardPlans))
	}
	if st.Store.DecodedHits+st.Store.DecodedMisses == 0 {
		t.Errorf("no decoded-cache traffic surfaced: %+v", st.Store)
	}
	if st.UptimeSeconds <= 0 {
		t.Errorf("uptime %f", st.UptimeSeconds)
	}

	healthResp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer healthResp.Body.Close()
	var h serve.HealthResponse
	if err := json.NewDecoder(healthResp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Kind != "Sharded" || h.Records != c.Len() || h.Domain != c.DomainSize() {
		t.Errorf("health = %+v", h)
	}
}
