package serve_test

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/setcontain"
	"repro/setcontain/serve"
)

// serveCollection builds a skewed synthetic collection big enough to
// exercise multi-block lists but quick to index in a unit test.
func serveCollection(t testing.TB) *setcontain.Collection {
	t.Helper()
	d, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		NumRecords: 6000,
		DomainSize: 300,
		MinLen:     2,
		MaxLen:     14,
		ZipfTheta:  0.9,
		Seed:       23,
	})
	if err != nil {
		t.Fatal(err)
	}
	return setcontain.WrapDataset(d)
}

// serveQueries draws a deterministic mixed workload whose items follow
// the records' own skew.
func serveQueries(t testing.TB, c *setcontain.Collection, count int) []setcontain.Query {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	preds := []setcontain.Predicate{
		setcontain.PredicateSubset,
		setcontain.PredicateEquality,
		setcontain.PredicateSuperset,
	}
	var qs []setcontain.Query
	for len(qs) < count {
		set, err := c.Record(uint32(1 + rng.Intn(c.Len())))
		if err != nil {
			t.Fatal(err)
		}
		if len(set) < 2 {
			continue
		}
		k := 2 + rng.Intn(len(set)-1)
		items := append([]setcontain.Item(nil), set...)
		rng.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })
		items = items[:k]
		qs = append(qs, setcontain.Query{Pred: preds[len(qs)%len(preds)], Items: items})
	}
	return qs
}

func newTestStore(t testing.TB, opts ...setcontain.Option) (*setcontain.Collection, *setcontain.Index, *setcontain.Store) {
	t.Helper()
	c := serveCollection(t)
	idx, err := setcontain.New(c, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c, idx, setcontain.NewStore(idx, 0)
}

// TestBatcherAnswersMatchStore checks concurrent queries through the
// batcher return exactly the Store's direct answers.
func TestBatcherAnswersMatchStore(t *testing.T) {
	c, _, store := newTestStore(t)
	// MaxPending must cover the 60 simultaneous submissions below —
	// admission control is exercised separately in TestBatcherSaturation.
	b := serve.NewBatcher(store, serve.Config{MaxBatch: 8, MaxPending: 128})
	defer b.Close()

	queries := serveQueries(t, c, 60)
	want := make([][]uint32, len(queries))
	for i, q := range queries {
		ids, err := store.Exec(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = ids
	}

	var wg sync.WaitGroup
	errs := make([]error, len(queries))
	got := make([][]uint32, len(queries))
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q setcontain.Query) {
			defer wg.Done()
			got[i], errs[i] = b.Do(context.Background(), nil, q)
		}(i, q)
	}
	wg.Wait()
	for i := range queries {
		if errs[i] != nil {
			t.Fatalf("query %d %v: %v", i, queries[i], errs[i])
		}
		if len(got[i]) != len(want[i]) {
			t.Fatalf("query %d %v: %d ids via batcher, %d direct", i, queries[i], len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("query %d %v: id[%d] = %d via batcher, %d direct", i, queries[i], j, got[i][j], want[i][j])
			}
		}
	}
}

// TestBatcherCoalesces drives concurrent clients into a single
// dispatcher and checks micro-batching actually engages: the dispatch
// histogram must record batches above size one.
func TestBatcherCoalesces(t *testing.T) {
	c, _, store := newTestStore(t)
	b := serve.NewBatcher(store, serve.Config{
		MaxBatch:    16,
		MaxLinger:   2 * time.Millisecond,
		Dispatchers: 1,
	})
	defer b.Close()

	queries := serveQueries(t, c, 24)
	const clients = 16
	const rounds = 20
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var buf []uint32
			for r := 0; r < rounds; r++ {
				q := queries[(w*rounds+r)%len(queries)]
				out, err := b.Do(context.Background(), buf[:0], q)
				if err != nil {
					t.Error(err)
					return
				}
				buf = out
			}
		}(w)
	}
	wg.Wait()

	st := b.Stats()
	if st.Queries != clients*rounds {
		t.Fatalf("dispatched %d queries, want %d", st.Queries, clients*rounds)
	}
	if st.MeanBatch() <= 1 {
		t.Errorf("mean batch size %.2f with %d concurrent clients, want > 1 (hist %v)",
			st.MeanBatch(), clients, st.BatchSizes)
	}
	multi := int64(0)
	for i, n := range st.BatchSizes {
		if i > 0 {
			multi += n
		}
	}
	if multi == 0 {
		t.Errorf("no batch larger than one query recorded: hist %v", st.BatchSizes)
	}
}

// blockingCtx is a context whose Err blocks from its second call until
// the gate closes — it parks the dispatcher mid-batch (the pre-check
// before executing the query consults Err), holding the admission queue
// full so saturation behaviour is testable deterministically even on
// one core. The first call passes so Do's own entry check does not
// block the submitter.
type blockingCtx struct {
	context.Context
	calls atomic.Int64
	gate  chan struct{}
	done  chan struct{}
}

func newBlockingCtx() *blockingCtx {
	return &blockingCtx{Context: context.Background(), gate: make(chan struct{}), done: make(chan struct{})}
}

func (c *blockingCtx) Done() <-chan struct{} { return c.done }

func (c *blockingCtx) Err() error {
	if c.calls.Add(1) > 1 {
		<-c.gate
	}
	return nil
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBatcherSaturation parks the only dispatcher mid-batch, fills the
// one-slot admission queue, and checks every further query is shed
// with ErrSaturated instead of queued unboundedly — then releases the
// dispatcher and checks the queued work drains normally.
func TestBatcherSaturation(t *testing.T) {
	c, _, store := newTestStore(t)
	b := serve.NewBatcher(store, serve.Config{
		MaxBatch:    1,
		MaxPending:  1,
		Dispatchers: 1,
		MaxLinger:   -1,
	})
	defer b.Close()

	queries := serveQueries(t, c, 8)
	gate := newBlockingCtx()
	var wg sync.WaitGroup
	var served, saturated atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := b.Do(gate, nil, queries[0]); err != nil {
			t.Errorf("gated query: %v", err)
			return
		}
		served.Add(1)
	}()
	// The dispatcher is parked once it consults the gate context's Err.
	waitFor(t, "dispatcher to park on the gate", func() bool { return gate.calls.Load() >= 2 })

	// With the dispatcher parked, the queue holds exactly MaxPending=1
	// query; every other submission must shed.
	const flood = 8
	for w := 0; w < flood; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, err := b.Do(context.Background(), nil, queries[1+w%4])
			switch {
			case err == nil:
				served.Add(1)
			case errors.Is(err, serve.ErrSaturated):
				saturated.Add(1)
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}(w)
	}
	waitFor(t, "floods to shed", func() bool { return saturated.Load() >= flood-1 })
	close(gate.gate)
	wg.Wait()

	if got := served.Load(); got != 2 {
		t.Errorf("served %d queries, want 2 (the gated one and the one queued slot)", got)
	}
	if got := saturated.Load(); got != flood-1 {
		t.Errorf("shed %d queries, want %d", got, flood-1)
	}
	if got := b.Stats().Rejected; got != saturated.Load() {
		t.Errorf("stats.Rejected = %d, callers saw %d ErrSaturated", got, saturated.Load())
	}
}

// countdownCtx is a context whose Err flips to context.Canceled after
// a fixed number of Err calls — a deterministic stand-in for a client
// disconnecting mid-execution. Its non-nil Done channel (never closed)
// makes the Store arm its interrupt hook, which consults Err between
// list-block reads.
type countdownCtx struct {
	context.Context
	calls atomic.Int64
	after int64
	done  chan struct{}
}

func newCountdownCtx(after int64) *countdownCtx {
	return &countdownCtx{Context: context.Background(), after: after, done: make(chan struct{})}
}

func (c *countdownCtx) Done() <-chan struct{} { return c.done }

func (c *countdownCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestBatcherCancelMidExecution proves a query cancelled *during*
// execution stops the underlying Store work: the request context's
// error surfaces through the reader's interrupt hook between
// list-block reads, and batchmates are unaffected.
func TestBatcherCancelMidExecution(t *testing.T) {
	_, _, store := newTestStore(t, setcontain.WithPageSize(512), setcontain.WithBlockPostings(8))
	b := serve.NewBatcher(store, serve.Config{Dispatchers: 1})
	defer b.Close()

	// A wide superset query walks one inverted list per query item, so
	// the interrupt hook is consulted many times mid-query.
	wide := make([]setcontain.Item, 40)
	for i := range wide {
		wide[i] = setcontain.Item(i)
	}
	q := setcontain.SupersetQuery(wide)

	ctx := newCountdownCtx(4)
	_, err := b.Do(ctx, nil, q)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-execution cancel: got %v, want context.Canceled", err)
	}
	if calls := ctx.calls.Load(); calls <= 4 {
		t.Fatalf("interrupt hook consulted %d times; cancellation did not fire mid-execution", calls)
	}

	// The batcher stays healthy: the same query on a live context
	// answers normally.
	if _, err := b.Do(context.Background(), nil, q); err != nil {
		t.Fatalf("query after cancelled batchmate: %v", err)
	}
}

// TestBatcherClosed checks Close fails queued and future queries with
// ErrClosed and is safe to call twice.
func TestBatcherClosed(t *testing.T) {
	c, _, store := newTestStore(t)
	b := serve.NewBatcher(store, serve.Config{})
	q := serveQueries(t, c, 1)[0]
	if _, err := b.Do(context.Background(), nil, q); err != nil {
		t.Fatal(err)
	}
	b.Close()
	if _, err := b.Do(context.Background(), nil, q); !errors.Is(err, serve.ErrClosed) {
		t.Errorf("Do after Close: got %v, want ErrClosed", err)
	}
	b.Close() // idempotent
}

// TestBatcherZeroAllocs is the serving-core allocation gate: a
// steady-state query through Do — waiter recycling, batch dispatch,
// Store.ExecBatchAppend, answer append — must not allocate beyond the
// caller's request decode/encode.
func TestBatcherZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; run without -race")
	}
	c, idx, _ := newTestStore(t, setcontain.WithKind(setcontain.OIF), setcontain.WithCachePages(2048))
	store := setcontain.NewStore(idx, 2048)
	b := serve.NewBatcher(store, serve.Config{
		Dispatchers: 1,
		MaxLinger:   -1, // dispatch immediately: the test is sequential
	})
	defer b.Close()

	queries := serveQueries(t, c, 20)
	ctx := context.Background()
	// Warm: caches, arenas, waiter pool, and the answer buffer reach
	// their high-water marks.
	dst := make([]uint32, 0, 64)
	var err error
	for pass := 0; pass < 3; pass++ {
		for _, q := range queries {
			if dst, err = b.Do(ctx, dst[:0], q); err != nil {
				t.Fatal(err)
			}
		}
	}

	for _, q := range queries {
		q := q
		allocs := testing.AllocsPerRun(50, func() {
			var err error
			dst, err = b.Do(ctx, dst[:0], q)
			if err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%v: %.2f allocs per steady-state batched query, want 0", q, allocs)
		}
	}
}
