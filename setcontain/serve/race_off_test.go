//go:build !race

package serve_test

// raceEnabled reports that the race detector is instrumenting this
// build.
const raceEnabled = false
