// Package serve turns a setcontain.Store into a long-lived HTTP/JSON
// query service — the serving layer behind cmd/setcontaind.
//
// The centrepiece is the Batcher: concurrent incoming queries coalesce
// into micro-batches (bounded by Config.MaxBatch, gathered for at most
// Config.MaxLinger) that dispatch through Store.ExecBatchAppend, so
// fan-in traffic shares pooled readers, warm caches, and scratch arenas
// instead of each request paying its own. This is exactly where the
// paper's skew argument pays off at the serving tier: the hottest
// inverted lists decode once per batch rather than once per query.
//
// A Server wraps the batcher with HTTP handlers:
//
//	POST /query    — batch of queries in, NDJSON answer chunks out
//	GET  /query    — single query via ?q=subset{3 17} (setcontain.ParseExpr)
//	GET  /stream   — one query streamed chunk-by-chunk with flushes
//	GET  /stats    — batcher histogram, store cache counters, shard and
//	                 expression-planner accounting
//	GET  /healthz  — liveness plus index identity and mutation state
//
// Queries on the wire are boolean expressions in the textual
// setcontain.ParseExpr grammar — GET ?q= accepts the full form
// (`?q=subset{1 2} and not superset{3}`, URL-encoded), and a POST spec
// carries either the structured {"pred","items"} pair or the same text
// under {"expr"}. A plain predicate is the one-leaf degenerate
// expression and behaves exactly as before: it rides the micro-batch
// path. Multi-leaf expressions dispatch on a pooled reader through the
// store's cost-based planner, which orders AND legs rarest-first and
// short-circuits the rest when an intermediate empties; /stats reports
// that accounting under "planner". A query string that fails to parse
// answers 400 with a JSON body carrying the error and the byte offset
// of the failing token.
//
// The /admin endpoints mutate the live collection (serialized by an
// internal lock; queries keep flowing on the store's pooled readers):
//
//	POST /admin/insert   — add record sets to the delta, returns their ids
//	POST /admin/delete   — tombstone record ids (masked immediately)
//	POST /admin/merge    — fold delta + tombstones into the disk structures
//	POST /admin/snapshot — stream a restorable snapshot container
//
// A failed mutation answers 400 when the request itself was at fault
// (bad set, unknown id) and 503 when the write-ahead log wedged — told
// apart by classifying the returned error (wal.ErrWedged), never by
// sampling global state a concurrent request may have changed. A
// mid-batch insert failure answers with InsertErrorResponse: the
// error, the ids acknowledged before the failing set (with a WAL those
// inserts are already durable), and the index of the first
// unacknowledged set.
//
// Each mutation refreshes the store, so answers served after the
// response reflect it. The snapshot body is what `setcontaind
// -snapshot` loads at boot — a warm daemon restarts without rebuilding
// from the raw dataset.
//
// Answers stream as NDJSON chunks backed by the iter.Seq variants, so a
// huge answer set never materializes in the response path. Admission is
// bounded: when Config.MaxPending queries are already queued, new ones
// are refused with ErrSaturated (HTTP 429) instead of growing an
// unbounded backlog, and every request's context deadline propagates
// into the Store's interrupt hook, so a disconnected or expired client
// stops its query mid-scan.
package serve
