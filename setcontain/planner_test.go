package setcontain

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// refSet is the map-based set-algebra reference: leaf answers come from
// plain Query.Eval, combination from map operations — an implementation
// as unlike the planner's galloping slices as possible.
func refSet(t *testing.T, e *Expr, q Queryable, universe map[uint32]bool) map[uint32]bool {
	t.Helper()
	switch e.Op {
	case OpLeaf:
		ids, err := e.Leaf.Eval(q)
		if err != nil {
			t.Fatalf("leaf %v: %v", e.Leaf, err)
		}
		set := make(map[uint32]bool, len(ids))
		for _, id := range ids {
			set[id] = true
		}
		return set
	case OpNot:
		child := refSet(t, e.Kids[0], q, universe)
		out := make(map[uint32]bool)
		for id := range universe {
			if !child[id] {
				out[id] = true
			}
		}
		return out
	case OpAnd:
		out := refSet(t, e.Kids[0], q, universe)
		for _, k := range e.Kids[1:] {
			kid := refSet(t, k, q, universe)
			for id := range out {
				if !kid[id] {
					delete(out, id)
				}
			}
		}
		return out
	default: // OpOr
		out := make(map[uint32]bool)
		for _, k := range e.Kids {
			for id := range refSet(t, k, q, universe) {
				out[id] = true
			}
		}
		return out
	}
}

func sortedIDs(set map[uint32]bool) []uint32 {
	ids := make([]uint32, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// TestExprPlannedMatchesNaive is the property test of the tentpole:
// for random expressions, the planned answer, the naive left-to-right
// answer, and the map-based reference are byte-identical, across every
// engine kind, with unmerged inserts and tombstones pending on the
// kinds that support them.
func TestExprPlannedMatchesNaive(t *testing.T) {
	c := sampleCollection(t)
	idxs := buildAll(t, c)
	rng := rand.New(rand.NewSource(1234))
	// The same pending inserts and tombstones on every updatable kind
	// (drawn once — map iteration order must not skew the collections),
	// so the delta paths and tombstone masking are under test too.
	var inserts [][]Item
	for i := 0; i < 20; i++ {
		inserts = append(inserts, []Item{Item(rng.Intn(40)), Item(rng.Intn(40))})
	}
	var deletes []uint32
	for i := 0; i < 30; i++ {
		deletes = append(deletes, uint32(1+rng.Intn(c.Len())))
	}
	for kind, ix := range idxs {
		if kind == UnorderedBTree {
			continue
		}
		for _, set := range inserts {
			if _, err := ix.Insert(set); err != nil {
				t.Fatalf("%v: insert: %v", kind, err)
			}
		}
		for _, id := range deletes {
			if err := ix.Delete(id); err != nil {
				t.Fatalf("%v: delete: %v", kind, err)
			}
		}
	}
	for trial := 0; trial < 120; trial++ {
		e := randExpr(rng, 3, 40)
		var first []uint32
		var firstKind Kind
		for kind, ix := range idxs {
			uniIDs, err := ix.Subset(nil)
			if err != nil {
				t.Fatalf("%v: universe: %v", kind, err)
			}
			universe := make(map[uint32]bool, len(uniIDs))
			for _, id := range uniIDs {
				universe[id] = true
			}
			want := sortedIDs(refSet(t, e, ix, universe))

			naive, err := e.Eval(ix)
			if err != nil {
				t.Fatalf("%v: naive %q: %v", kind, e, err)
			}
			plan, err := ix.PlanExpr(e)
			if err != nil {
				t.Fatalf("%v: plan %q: %v", kind, e, err)
			}
			planned, st, err := plan.Eval(ix)
			if err != nil {
				t.Fatalf("%v: planned %q: %v", kind, e, err)
			}
			if st.EvaluatedLeaves+st.SkippedLeaves != e.Leaves() {
				t.Fatalf("%v: %q: %d evaluated + %d skipped != %d leaves\nplan:\n%s",
					kind, e, st.EvaluatedLeaves, st.SkippedLeaves, e.Leaves(), plan)
			}
			if !reflect.DeepEqual(naive, want) {
				t.Fatalf("%v: naive %q: got %d ids, reference %d\nplan:\n%s",
					kind, e, len(naive), len(want), plan)
			}
			if !reflect.DeepEqual(planned, want) {
				t.Fatalf("%v: planned %q: got %d ids, reference %d\nplan:\n%s",
					kind, e, len(planned), len(want), plan)
			}
			// Cross-kind identity only holds among the kinds carrying
			// the same pending mutations (UBT is read-only).
			if kind == UnorderedBTree {
				continue
			}
			if first == nil {
				first, firstKind = planned, kind
			} else if !reflect.DeepEqual(planned, first) {
				t.Fatalf("%q: %v and %v diverge", e, firstKind, kind)
			}
		}
	}
}

// TestSetAlgebra holds the galloping slice operations to a map
// reference, including the lopsided inputs that trigger galloping.
func TestSetAlgebra(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randSet := func(n, max int) []uint32 {
		seen := make(map[uint32]bool)
		for len(seen) < n {
			seen[uint32(rng.Intn(max))] = true
		}
		return sortedIDs(seen)
	}
	sizes := []struct{ na, nb int }{
		{0, 0}, {0, 50}, {50, 0}, {1, 1}, {8, 8}, {100, 100},
		{3, 400}, {400, 3}, {1, 5000}, {5000, 1}, {64, 4096},
	}
	for _, sz := range sizes {
		for trial := 0; trial < 20; trial++ {
			a := randSet(sz.na, 8192)
			b := randSet(sz.nb, 8192)
			inA := make(map[uint32]bool, len(a))
			for _, v := range a {
				inA[v] = true
			}
			inB := make(map[uint32]bool, len(b))
			for _, v := range b {
				inB[v] = true
			}
			wantInter := make(map[uint32]bool)
			wantUnion := make(map[uint32]bool)
			wantDiff := make(map[uint32]bool)
			for v := range inA {
				if inB[v] {
					wantInter[v] = true
				} else {
					wantDiff[v] = true
				}
				wantUnion[v] = true
			}
			for v := range inB {
				wantUnion[v] = true
			}
			check := func(name string, got []uint32, want map[uint32]bool) {
				if len(got) == 0 && len(want) == 0 {
					return
				}
				if !reflect.DeepEqual(got, sortedIDs(want)) {
					t.Fatalf("%s(|a|=%d,|b|=%d): got %d ids, want %d",
						name, len(a), len(b), len(got), len(want))
				}
			}
			check("intersect", intersectInto(nil, a, b), wantInter)
			check("union", unionInto(nil, a, b), wantUnion)
			check("difference", differenceInto(nil, a, b), wantDiff)
		}
	}
}

// TestPlannerShortCircuit pins the planner's win: ANDing an impossible
// (out-of-domain, hence zero-cost) leaf with others runs only that leaf
// and skips the rest, while the naive baseline evaluates everything.
func TestPlannerShortCircuit(t *testing.T) {
	// Domain 50, but no record ever contains items 40-49: subset{40} is
	// an in-domain leaf with support 0 — the cheapest possible.
	c := NewCollection(50)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		set := []Item{Item(rng.Intn(40)), Item(rng.Intn(40)), Item(rng.Intn(40))}
		if _, err := c.Add(set); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := Build(c, Options{Kind: OIF, PageSize: 512, BlockPostings: 8})
	if err != nil {
		t.Fatal(err)
	}
	e, err := ParseExpr("subset{0} and subset{1} and subset{40}")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ix.PlanExpr(e)
	if err != nil {
		t.Fatal(err)
	}
	ids, st, err := plan.Eval(ix)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Fatalf("impossible AND answered %d ids", len(ids))
	}
	if st.EvaluatedLeaves != 1 || st.SkippedLeaves != 2 {
		t.Fatalf("evaluated %d, skipped %d; want 1 evaluated, 2 skipped\nplan:\n%s",
			st.EvaluatedLeaves, st.SkippedLeaves, plan)
	}
	// The rarest leaf must have been ordered first.
	if got := plan.Root.Kids[0].Leaf.String(); got != "subset{40}" {
		t.Fatalf("first planned child is %s, want subset{40}\nplan:\n%s", got, plan)
	}
}

// TestErrUnknownPredicateUnified pins the satellite: every evaluation
// path returns the bare sentinel for an invalid predicate.
func TestErrUnknownPredicateUnified(t *testing.T) {
	c := sampleCollection(t)
	ix, err := Build(c, Options{Kind: OIF, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	inv, err := Build(c, Options{Kind: InvertedFile, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	bad := Query{Pred: Predicate(42), Items: []Item{1}}
	if _, err := bad.Eval(ix); err != ErrUnknownPredicate {
		t.Errorf("Eval: %v, want bare ErrUnknownPredicate", err)
	}
	// EvalAppend on both the AppendQueryable path (OIF) and the
	// fallback path (inverted file) — the fallback used to double-wrap.
	if _, err := bad.EvalAppend(nil, ix); err != ErrUnknownPredicate {
		t.Errorf("EvalAppend(OIF): %v, want bare ErrUnknownPredicate", err)
	}
	if _, err := bad.EvalAppend(nil, inv.Engine()); err != ErrUnknownPredicate {
		t.Errorf("EvalAppend(fallback): %v, want bare ErrUnknownPredicate", err)
	}
	if _, err := bad.EvalSeq(ix); err != ErrUnknownPredicate {
		t.Errorf("EvalSeq: %v, want bare ErrUnknownPredicate", err)
	}
	badExpr := And(ExprOf(bad), ExprOf(SubsetQuery(nil)))
	if _, err := ix.PlanExpr(badExpr); err != ErrUnknownPredicate {
		t.Errorf("PlanExpr: %v, want bare ErrUnknownPredicate", err)
	}
	if _, err := badExpr.Eval(ix); err != ErrUnknownPredicate {
		t.Errorf("Expr.Eval: %v, want bare ErrUnknownPredicate", err)
	}
	s := NewStore(ix, 0)
	if _, err := s.ExecExpr(context.Background(), badExpr); !errors.Is(err, ErrUnknownPredicate) {
		t.Errorf("ExecExpr: %v, want ErrUnknownPredicate", err)
	}
}

// TestStoreExecExpr exercises the Store expression surface: planned
// answers match Index.EvalExpr, the one-leaf degenerate case routes
// like Exec, the sharded fan-out stays byte-identical, counters
// advance, and cancellation is honoured.
func TestStoreExecExpr(t *testing.T) {
	c := sampleCollection(t)
	ctx := context.Background()
	e, err := ParseExpr("subset{1 2} and not superset{0 1 2 3 4 5 6 7 8 9} or equality{3}")
	if err != nil {
		t.Fatal(err)
	}
	var want []uint32
	for _, kind := range []Kind{OIF, InvertedFile, Sharded} {
		ix, err := Build(c, Options{Kind: kind, PageSize: 512, BlockPostings: 8, Shards: 3})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		s := NewStore(ix, 0)
		got, err := s.ExecExpr(ctx, e)
		if err != nil {
			t.Fatalf("%v: ExecExpr: %v", kind, err)
		}
		direct, err := ix.EvalExpr(e)
		if err != nil {
			t.Fatalf("%v: EvalExpr: %v", kind, err)
		}
		if !reflect.DeepEqual(got, direct) {
			t.Fatalf("%v: ExecExpr and EvalExpr diverge (%d vs %d ids)", kind, len(got), len(direct))
		}
		if want == nil {
			want = got
		} else if !reflect.DeepEqual(got, want) {
			t.Fatalf("%v: diverges from OIF (%d vs %d ids)", kind, len(got), len(want))
		}
		if st := s.ExprStats(); st.Expressions != 1 || st.EvaluatedLeaves == 0 {
			t.Fatalf("%v: ExprStats = %+v after one expression", kind, st)
		}

		// Seq form agrees with the slice form.
		seq, err := s.ExecExprSeq(ctx, e)
		if err != nil {
			t.Fatalf("%v: ExecExprSeq: %v", kind, err)
		}
		var seqIDs []uint32
		for id := range seq {
			seqIDs = append(seqIDs, id)
		}
		if len(seqIDs) != len(want) {
			t.Fatalf("%v: seq yielded %d ids, want %d", kind, len(seqIDs), len(want))
		}

		// One-leaf degenerate case: same answer as Exec, not counted as
		// a planned expression (counters unchanged from before).
		preLeaf := s.ExprStats()
		leaf := ExprOf(SubsetQuery([]Item{1, 2}))
		viaExpr, err := s.ExecExpr(ctx, leaf)
		if err != nil {
			t.Fatalf("%v: one-leaf ExecExpr: %v", kind, err)
		}
		viaExec, err := s.Exec(ctx, SubsetQuery([]Item{1, 2}))
		if err != nil {
			t.Fatalf("%v: Exec: %v", kind, err)
		}
		if !reflect.DeepEqual(viaExpr, viaExec) {
			t.Fatalf("%v: one-leaf expression diverges from Exec", kind)
		}
		if st := s.ExprStats(); st != preLeaf {
			t.Fatalf("%v: one-leaf expression counted as planned (%+v -> %+v)", kind, preLeaf, st)
		}

		// A cancelled context refuses evaluation.
		cctx, cancel := context.WithCancel(ctx)
		cancel()
		if _, err := s.ExecExpr(cctx, e); !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: cancelled ExecExpr: %v", kind, err)
		}
	}
}

// TestStoreSupportsRefresh pins the generation-keyed profile cache:
// mutations through Update retire the cached supports.
func TestStoreSupportsRefresh(t *testing.T) {
	c := sampleCollection(t)
	ix, err := Build(c, Options{Kind: OIF, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(ix, 0)
	before := s.Supports()
	if again := s.Supports(); again != before {
		t.Fatal("supports profile not cached across calls")
	}
	if err := s.Update(func() error { _, err := ix.Insert([]Item{1, 2}); return err }); err != nil {
		t.Fatal(err)
	}
	if err := s.Update(ix.MergeDelta); err != nil {
		t.Fatal(err)
	}
	after := s.Supports()
	if after == before {
		t.Fatal("supports profile not refreshed after mutation")
	}
	if after.NumRecords != before.NumRecords+1 {
		t.Fatalf("refreshed NumRecords = %d, want %d", after.NumRecords, before.NumRecords+1)
	}
}
