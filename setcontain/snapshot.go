package setcontain

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/invfile"
	"repro/internal/snapio"
)

// Engine snapshots travel in a self-describing container: an 8-byte
// magic, a format version, the engine kind, and the runtime cache
// budget, followed by the engine's own versioned payload (the OIF or
// inverted-file snapshot stream, each guarded by its own CRC trailer).
// Open reads the header and reconstructs the right engine without the
// caller restating build options — everything structural (page size,
// block postings, tag prefix, decoded-cache budget, tombstones, pending
// deltas) lives inside the payloads.
//
// A sharded engine's payload is a manifest — shard count, partition
// scheme, per-shard plans — followed by one length-framed sub-container
// per shard. Shard payloads are encoded and decoded in parallel, so
// snapshotting scales with cores the same way building does.

const (
	containerMagic   = "SCSNAP01"
	containerVersion = 1

	// maxSnapshotShards bounds the manifest's shard count so a corrupt
	// header cannot force a huge allocation.
	maxSnapshotShards = 1 << 16
)

// ErrBadSnapshot reports a corrupt or foreign snapshot container.
var ErrBadSnapshot = errors.New("setcontain: bad snapshot")

// saveContainer writes the CRC-guarded container header, then the
// payload. The payload brings its own CRC trailer (the backend snapshot
// streams do; the sharded manifest adds one), so every byte of a
// container is covered by some checksum.
func saveContainer(w io.Writer, kind Kind, cachePages int, payload func(io.Writer) error) error {
	cw := snapio.NewWriter(w)
	if _, err := io.WriteString(cw, containerMagic); err != nil {
		return err
	}
	for _, v := range []uint32{containerVersion, uint32(kind), uint32(cachePages), 0} {
		if err := snapio.WriteU32(cw, v); err != nil {
			return err
		}
	}
	if err := cw.WriteTrailer(); err != nil {
		return err
	}
	return payload(w)
}

// readContainerHeader consumes and validates the container header.
func readContainerHeader(r io.Reader) (kind Kind, cachePages int, err error) {
	cr := snapio.NewReader(r)
	magic := make([]byte, len(containerMagic))
	if _, err := io.ReadFull(cr, magic); err != nil {
		return 0, 0, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if string(magic) != containerMagic {
		return 0, 0, fmt.Errorf("%w: magic %q", ErrBadSnapshot, magic)
	}
	var hdr [4]uint32
	for i := range hdr {
		v, err := snapio.ReadU32(cr)
		if err != nil {
			return 0, 0, fmt.Errorf("%w: header: %v", ErrBadSnapshot, err)
		}
		hdr[i] = v
	}
	if err := cr.VerifyTrailer(); err != nil {
		return 0, 0, fmt.Errorf("%w: header: %v", ErrBadSnapshot, err)
	}
	if hdr[0] != containerVersion {
		return 0, 0, fmt.Errorf("%w: unsupported container version %d", ErrBadSnapshot, hdr[0])
	}
	return Kind(hdr[1]), int(hdr[2]), nil
}

// Open reconstructs an Index from a snapshot written by Index.Save (or
// Engine.Save): the container header selects the engine kind, the
// payload restores its state — including pending inserts and tombstones
// — without touching the original dataset. Functional options override
// only runtime knobs; currently WithCachePages (0 keeps the cache budget
// recorded in the snapshot). Structural options are always taken from
// the snapshot itself.
func Open(r io.Reader, opts ...Option) (*Index, error) {
	eng, err := openEngine(r, NewOptions(opts...), false)
	if err != nil {
		return nil, err
	}
	return &Index{eng: eng}, nil
}

// openEngine reads one container and reconstructs its engine. nested
// guards against sharded-inside-sharded streams, which the writer never
// produces.
func openEngine(r io.Reader, o Options, nested bool) (Engine, error) {
	kind, cachePages, err := readContainerHeader(r)
	if err != nil {
		return nil, err
	}
	if o.CachePages == 0 && cachePages > 0 {
		o.CachePages = cachePages
	}
	o.Kind = kind
	o.fill()
	switch kind {
	case OIF:
		ix, err := core.Load(r)
		if err != nil {
			return nil, err
		}
		return attachOIF(ix, o)
	case InvertedFile:
		ix, err := invfile.Load(r)
		if err != nil {
			return nil, err
		}
		if err := attachCache(ix, o.CachePages); err != nil {
			return nil, err
		}
		return &invEngine{baseEngine{b: ix, kind: InvertedFile}}, nil
	case Sharded:
		if nested {
			return nil, fmt.Errorf("%w: nested sharded container", ErrBadSnapshot)
		}
		return loadShardedPayload(r, o)
	default:
		return nil, fmt.Errorf("%w: kind %v has no snapshot support", ErrBadSnapshot, kind)
	}
}

// Save on a sharded engine: the manifest plus per-shard sub-containers,
// encoded in parallel and written as length-framed blobs.
func (e *shardedEngine) Save(w io.Writer) error {
	// Remote shards have no local buffer pool; record a zero cache
	// budget and let Open's defaults (or WithCachePages) decide.
	cachePages := 0
	if p := e.shards[0].Pool(); p != nil {
		cachePages = p.Capacity()
	}
	return saveContainer(w, Sharded, cachePages, e.saveShardedPayload)
}

func (e *shardedEngine) saveShardedPayload(w io.Writer) error {
	n := len(e.shards)
	bufs := make([]bytes.Buffer, n)
	errs := forEachShard(n, 0, func(s int) error {
		return e.shards[s].Save(&bufs[s])
	})
	for s, err := range errs {
		if err != nil {
			return fmt.Errorf("setcontain: snapshotting shard %d: %w", s, err)
		}
	}

	// The manifest — shard count, partition scheme, plans, and the frame
	// lengths — carries its own CRC trailer; the frames that follow are
	// nested containers verifying themselves.
	cw := snapio.NewWriter(w)
	for _, v := range []uint32{uint32(n), uint32(e.part.Scheme()), uint32(e.domain)} {
		if err := snapio.WriteU32(cw, v); err != nil {
			return err
		}
	}
	for _, p := range e.plans {
		for _, v := range []uint32{uint32(p.Kind), uint32(p.Records), uint32(p.BlockPostings)} {
			if err := snapio.WriteU32(cw, v); err != nil {
				return err
			}
		}
		if err := snapio.WriteU64(cw, math.Float64bits(p.Theta)); err != nil {
			return err
		}
	}
	for s := range bufs {
		if err := snapio.WriteU64(cw, uint64(bufs[s].Len())); err != nil {
			return err
		}
	}
	if err := cw.WriteTrailer(); err != nil {
		return err
	}
	for s := range bufs {
		if _, err := w.Write(bufs[s].Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// shardManifest is the decoded sharded-payload manifest: the partition
// scheme, vocabulary, build-time plans, and the byte length of every
// shard's nested sub-container frame that follows it.
type shardManifest struct {
	scheme    PartitionScheme
	domain    int
	plans     []ShardPlan
	frameLens []uint64
}

// readShardManifest consumes and validates the CRC-trailed sharded
// manifest, leaving r positioned at the first shard frame.
func readShardManifest(r io.Reader) (*shardManifest, error) {
	cr := snapio.NewReader(r)
	var hdr [3]uint32
	for i := range hdr {
		v, err := snapio.ReadU32(cr)
		if err != nil {
			return nil, fmt.Errorf("%w: sharded manifest: %v", ErrBadSnapshot, err)
		}
		hdr[i] = v
	}
	n := int(hdr[0])
	if n <= 0 || n > maxSnapshotShards {
		return nil, fmt.Errorf("%w: implausible shard count %d", ErrBadSnapshot, n)
	}
	m := &shardManifest{
		scheme:    PartitionScheme(hdr[1]),
		domain:    int(hdr[2]),
		plans:     make([]ShardPlan, n),
		frameLens: make([]uint64, n),
	}
	for s := range m.plans {
		var pw [3]uint32
		for i := range pw {
			v, err := snapio.ReadU32(cr)
			if err != nil {
				return nil, fmt.Errorf("%w: shard %d plan: %v", ErrBadSnapshot, s, err)
			}
			pw[i] = v
		}
		theta, err := snapio.ReadU64(cr)
		if err != nil {
			return nil, fmt.Errorf("%w: shard %d plan: %v", ErrBadSnapshot, s, err)
		}
		m.plans[s] = ShardPlan{
			Shard:         s,
			Kind:          Kind(pw[0]),
			Records:       int(pw[1]),
			BlockPostings: int(pw[2]),
			Theta:         math.Float64frombits(theta),
		}
	}
	for s := range m.frameLens {
		v, err := snapio.ReadU64(cr)
		if err != nil || v > snapio.MaxSliceLen {
			return nil, fmt.Errorf("%w: shard %d frame length", ErrBadSnapshot, s)
		}
		m.frameLens[s] = v
	}
	if err := cr.VerifyTrailer(); err != nil {
		return nil, fmt.Errorf("%w: manifest: %v", ErrBadSnapshot, err)
	}
	return m, nil
}

// loadShardedPayload reads the manifest, reconstructs the partitioner
// the manifest names, then decodes every shard's sub-container in
// parallel and reassembles the sharded engine with its build-time
// plans.
func loadShardedPayload(r io.Reader, o Options) (Engine, error) {
	m, err := readShardManifest(r)
	if err != nil {
		return nil, err
	}
	n := len(m.plans)
	part, err := partitionerOfScheme(m.scheme, n)
	if err != nil {
		return nil, err
	}
	frames := make([][]byte, n)
	for s := range frames {
		frames[s] = make([]byte, m.frameLens[s])
		if _, err := io.ReadFull(r, frames[s]); err != nil {
			return nil, fmt.Errorf("%w: shard %d frame: %v", ErrBadSnapshot, s, err)
		}
	}

	shards := make([]Engine, n)
	errs := forEachShard(n, 0, func(s int) error {
		eng, err := openEngine(bytes.NewReader(frames[s]), o, true)
		if err != nil {
			return err
		}
		if eng.Kind() != m.plans[s].Kind {
			return fmt.Errorf("%w: shard is %v, manifest says %v",
				ErrBadSnapshot, eng.Kind(), m.plans[s].Kind)
		}
		shards[s] = eng
		return nil
	})
	for s, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
	}
	eng := &shardedEngine{shards: shards, part: part, plans: m.plans, domain: m.domain}
	eng.nextID = uint32(eng.NumRecords())
	return eng, nil
}

// SplitSnapshot reads a sharded snapshot container from r and emits
// every shard's frame in shard order. Each frame is itself a complete
// single-engine snapshot container — bootable standalone by Open or
// `setcontaind -snapshot` — which is how a coordinator's snapshot is
// decomposed into per-shard snapshots for remote shard daemons to
// restore from. emit must consume the frame before returning (any
// unread remainder is drained); a non-nil emit error aborts the split.
func SplitSnapshot(r io.Reader, emit func(shard int, plan ShardPlan, frame io.Reader) error) error {
	kind, _, err := readContainerHeader(r)
	if err != nil {
		return err
	}
	if kind != Sharded {
		return fmt.Errorf("%w: cannot split a %v container into shards", ErrBadSnapshot, kind)
	}
	m, err := readShardManifest(r)
	if err != nil {
		return err
	}
	if _, err := partitionerOfScheme(m.scheme, len(m.plans)); err != nil {
		return err
	}
	for s := range m.plans {
		lr := io.LimitReader(r, int64(m.frameLens[s]))
		if err := emit(s, m.plans[s], lr); err != nil {
			return fmt.Errorf("setcontain: splitting shard %d: %w", s, err)
		}
		if _, err := io.Copy(io.Discard, lr); err != nil {
			return fmt.Errorf("%w: shard %d frame: %v", ErrBadSnapshot, s, err)
		}
	}
	return nil
}
