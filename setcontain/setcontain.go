// Package setcontain answers set-containment queries — subset, equality,
// and superset — over collections of set-valued records, implementing the
// Ordered Inverted File (OIF) of Terrovitis, Bouros, Vassiliadis, Sellis
// and Mamoulis, "Efficient Answering of Set Containment Queries for Skewed
// Item Distributions" (EDBT 2011), together with the paper's baselines.
//
// A Collection holds records (sets of uint32 items over a fixed
// vocabulary). Build creates an index over it:
//
//	c := setcontain.NewCollection(1000)
//	c.Add([]setcontain.Item{3, 17, 29})
//	idx, err := setcontain.Build(c, setcontain.Options{})
//	ids, err := idx.Subset([]setcontain.Item{3, 29}) // records ⊇ {3,29}
//
// Three index kinds are available: OIF (the paper's contribution, default),
// InvertedFile (the classic baseline), and UnorderedBTree (the paper's
// ablation). All three answer the same queries with identical results;
// they differ in I/O behaviour, which CacheStats exposes.
//
// Concurrency: an Index is not safe for concurrent use — queries share a
// buffer pool whose cache state they mutate, mirroring the paper's
// single-stream evaluation. For parallel queries create one Reader per
// goroutine with NewReader: readers share the immutable index pages but
// own their caches.
package setcontain

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/invfile"
	"repro/internal/storage"
	"repro/internal/ubtree"
)

// Item is a vocabulary element: a dense uint32 in [0, DomainSize).
type Item = uint32

// Collection is an in-memory set of records awaiting indexing. Records
// receive 1-based ids in insertion order; queries return these ids.
type Collection struct {
	ds *dataset.Dataset
}

// NewCollection returns an empty collection over items [0, domainSize).
func NewCollection(domainSize int) *Collection {
	return &Collection{ds: dataset.New(domainSize)}
}

// Add appends a record (copied, sorted, deduplicated) and returns its id.
// Empty sets are allowed.
func (c *Collection) Add(set []Item) (uint32, error) { return c.ds.Add(set) }

// Len returns the number of records.
func (c *Collection) Len() int { return c.ds.Len() }

// DomainSize returns the vocabulary size.
func (c *Collection) DomainSize() int { return c.ds.DomainSize() }

// Record returns the item set of record id (1-based). The slice is owned
// by the collection.
func (c *Collection) Record(id uint32) ([]Item, error) {
	if id == 0 || int(id) > c.ds.Len() {
		return nil, fmt.Errorf("setcontain: record %d of %d", id, c.ds.Len())
	}
	return c.ds.Record(int(id - 1)).Set, nil
}

// SetLabels attaches item labels used by Label.
func (c *Collection) SetLabels(labels []string) error { return c.ds.SetLabels(labels) }

// Label returns item's label, or its decimal form if unlabeled.
func (c *Collection) Label(it Item) string { return c.ds.Label(it) }

// ReadCollection parses the text format (one record per line of
// space-separated item ids, optional "domain N" header).
func ReadCollection(r io.Reader) (*Collection, error) {
	ds, err := dataset.Read(r)
	if err != nil {
		return nil, err
	}
	return &Collection{ds: ds}, nil
}

// Write serialises the collection in the text format.
func (c *Collection) Write(w io.Writer) error { return dataset.Write(w, c.ds) }

// ReadMSWebCollection parses the UCI KDD "Anonymous Microsoft Web Data"
// format — the actual msweb log the paper evaluates on — replicating the
// sessions the given number of times (the paper uses 10 to simulate a
// ten-week log). Item labels carry the area titles.
func ReadMSWebCollection(r io.Reader, replicas int) (*Collection, error) {
	ds, err := dataset.ReadMSWeb(r)
	if err != nil {
		return nil, err
	}
	if replicas > 1 {
		ds, err = dataset.Replicate(ds, replicas)
		if err != nil {
			return nil, err
		}
	}
	return &Collection{ds: ds}, nil
}

// Kind selects an index implementation.
type Kind int

// The available index kinds.
const (
	// OIF is the paper's Ordered Inverted File (default).
	OIF Kind = iota
	// InvertedFile is the classic inverted-file baseline.
	InvertedFile
	// UnorderedBTree indexes list blocks in a B-tree without the OIF's
	// global ordering or metadata (the paper's ablation).
	UnorderedBTree
)

func (k Kind) String() string {
	switch k {
	case OIF:
		return "OIF"
	case InvertedFile:
		return "IF"
	case UnorderedBTree:
		return "UBT"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Options configures Build. The zero value selects the OIF with 4 KB
// pages, 64-posting blocks, and the paper's minimal 32 KB query cache.
type Options struct {
	Kind Kind
	// PageSize of the index file in bytes (default 4096).
	PageSize int
	// BlockPostings caps postings per OIF/UBT list block (default 64).
	BlockPostings int
	// CachePages sizes the buffer pool queries run through (default 8,
	// the paper's 32 KB minimum). Larger caches reduce page accesses.
	CachePages int
	// TagPrefix truncates OIF block tags to this many leading items
	// (0 keeps full tags). The paper's suggested key compression; shorter
	// tags shrink the index markedly at a small cost in extra boundary
	// block reads. Ignored by the other kinds.
	TagPrefix int
}

// Index answers the three containment predicates. Results are ascending
// record ids, identical across kinds.
type Index struct {
	kind Kind
	oif  *core.Index
	ifx  *invfile.Index
	ubt  *ubtree.Index
	pool *storage.BufferPool
}

// Build indexes the collection. The collection may keep growing
// afterwards, but new records are invisible to the index; use Insert on
// updatable kinds instead.
func Build(c *Collection, opts Options) (*Index, error) {
	if c == nil || c.ds == nil {
		return nil, errors.New("setcontain: nil collection")
	}
	if opts.PageSize == 0 {
		opts.PageSize = storage.DefaultPageSize
	}
	if opts.BlockPostings == 0 {
		opts.BlockPostings = core.DefaultBlockPostings
	}
	if opts.CachePages == 0 {
		opts.CachePages = storage.DefaultPoolPages
	}
	ix := &Index{kind: opts.Kind}
	var err error
	switch opts.Kind {
	case OIF:
		ix.oif, err = core.Build(c.ds, core.Options{
			PageSize:      opts.PageSize,
			BlockPostings: opts.BlockPostings,
			TagPrefix:     opts.TagPrefix,
		})
		if err != nil {
			return nil, err
		}
		ix.pool = storage.NewBufferPool(ix.oif.Pool().Pager(), opts.CachePages)
		err = ix.oif.SetPool(ix.pool)
	case InvertedFile:
		ix.ifx, err = invfile.Build(c.ds, invfile.BuildOptions{PageSize: opts.PageSize})
		if err != nil {
			return nil, err
		}
		ix.pool = storage.NewBufferPool(ix.ifx.Pool().Pager(), opts.CachePages)
		err = ix.ifx.SetPool(ix.pool)
	case UnorderedBTree:
		ix.ubt, err = ubtree.Build(c.ds, ubtree.Options{
			PageSize:      opts.PageSize,
			BlockPostings: opts.BlockPostings,
		})
		if err != nil {
			return nil, err
		}
		ix.pool = storage.NewBufferPool(ix.ubt.Pool().Pager(), opts.CachePages)
		err = ix.ubt.SetPool(ix.pool)
	default:
		return nil, fmt.Errorf("setcontain: unknown index kind %v", opts.Kind)
	}
	if err != nil {
		return nil, err
	}
	return ix, nil
}

// Kind returns the index implementation in use.
func (ix *Index) Kind() Kind { return ix.kind }

// Subset returns ids of records whose sets contain every item of qs.
func (ix *Index) Subset(qs []Item) ([]uint32, error) {
	switch ix.kind {
	case OIF:
		return ix.oif.Subset(qs)
	case InvertedFile:
		return ix.ifx.Subset(qs)
	default:
		return ix.ubt.Subset(qs)
	}
}

// Equality returns ids of records whose sets equal qs.
func (ix *Index) Equality(qs []Item) ([]uint32, error) {
	switch ix.kind {
	case OIF:
		return ix.oif.Equality(qs)
	case InvertedFile:
		return ix.ifx.Equality(qs)
	default:
		return ix.ubt.Equality(qs)
	}
}

// Superset returns ids of records whose sets are contained in qs.
func (ix *Index) Superset(qs []Item) ([]uint32, error) {
	switch ix.kind {
	case OIF:
		return ix.oif.Superset(qs)
	case InvertedFile:
		return ix.ifx.Superset(qs)
	default:
		return ix.ubt.Superset(qs)
	}
}

// ErrNoUpdates reports an index kind without update support.
var ErrNoUpdates = errors.New("setcontain: index kind does not support updates")

// Insert adds a record to the index's in-memory delta (visible to queries
// immediately) and returns its id. Supported by OIF and InvertedFile;
// call MergeDelta to fold the delta into the disk structures.
func (ix *Index) Insert(set []Item) (uint32, error) {
	switch ix.kind {
	case OIF:
		return ix.oif.Insert(set)
	case InvertedFile:
		return ix.ifx.Insert(set)
	default:
		return 0, ErrNoUpdates
	}
}

// MergeDelta folds pending inserts into the disk structures: a cheap list
// append for InvertedFile, a full re-sort and rebuild for OIF (§4.4 of the
// paper). After an OIF merge the query cache is re-attached automatically.
func (ix *Index) MergeDelta() error {
	switch ix.kind {
	case OIF:
		if err := ix.oif.MergeDelta(); err != nil {
			return err
		}
		// The rebuild replaced the pager; re-attach a measurement cache
		// of the same capacity.
		ix.pool = storage.NewBufferPool(ix.oif.Pool().Pager(), ix.pool.Capacity())
		return ix.oif.SetPool(ix.pool)
	case InvertedFile:
		if err := ix.ifx.MergeDelta(); err != nil {
			return err
		}
		ix.pool = storage.NewBufferPool(ix.ifx.Pool().Pager(), ix.pool.Capacity())
		return ix.ifx.SetPool(ix.pool)
	default:
		return ErrNoUpdates
	}
}

// PendingInserts returns the number of unmerged inserts.
func (ix *Index) PendingInserts() int {
	switch ix.kind {
	case OIF:
		return ix.oif.DeltaLen()
	case InvertedFile:
		return ix.ifx.DeltaLen()
	default:
		return 0
	}
}

// ErrNoSnapshots reports a kind without snapshot support.
var ErrNoSnapshots = errors.New("setcontain: only the OIF kind supports snapshots")

// Save writes a self-contained snapshot of an OIF index (pages, ordering,
// metadata, pending inserts) guarded by a CRC trailer. Baseline kinds
// rebuild quickly from their collections and do not support snapshots.
func (ix *Index) Save(w io.Writer) error {
	if ix.kind != OIF {
		return ErrNoSnapshots
	}
	return ix.oif.Save(w)
}

// LoadIndex reconstructs an OIF index from a snapshot produced by Save.
// Only opts.CachePages is consulted (0 selects the default 32 KB cache).
func LoadIndex(r io.Reader, opts Options) (*Index, error) {
	oif, err := core.Load(r)
	if err != nil {
		return nil, err
	}
	if opts.CachePages == 0 {
		opts.CachePages = storage.DefaultPoolPages
	}
	ix := &Index{kind: OIF, oif: oif}
	ix.pool = storage.NewBufferPool(oif.Pool().Pager(), opts.CachePages)
	if err := oif.SetPool(ix.pool); err != nil {
		return nil, err
	}
	return ix, nil
}

// CacheStats reports the index's I/O behaviour since the last reset.
type CacheStats struct {
	Hits       int64 // page requests served from cache
	PageReads  int64 // pages fetched from storage ("disk page accesses")
	Sequential int64 // reads of physically adjacent pages
	Near       int64 // short-jump reads
	Random     int64 // full-seek reads
}

// CacheStats returns accumulated statistics.
func (ix *Index) CacheStats() CacheStats {
	s := ix.pool.Stats()
	return CacheStats{
		Hits:       s.Hits,
		PageReads:  s.Misses,
		Sequential: s.SeqMisses,
		Near:       s.NearMisses,
		Random:     s.RandMisses,
	}
}

// ResetCacheStats zeroes the statistics (the cache contents remain).
func (ix *Index) ResetCacheStats() { ix.pool.ResetStats() }

// Reader is an isolated, concurrency-safe-by-design query handle created
// by Index.NewReader: it shares the parent's immutable pages but owns its
// cache, so one reader per goroutine queries in parallel. Readers see the
// inserts that existed when they were created and never the later ones.
type Reader struct {
	kind Kind
	oif  *core.Reader
	ifx  *invfile.Reader
	ubt  *ubtree.Reader
}

// NewReader creates a parallel query handle with its own cache of
// cachePages pages (0 selects the default 32 KB).
func (ix *Index) NewReader(cachePages int) (*Reader, error) {
	if cachePages <= 0 {
		cachePages = storage.DefaultPoolPages
	}
	r := &Reader{kind: ix.kind}
	var err error
	switch ix.kind {
	case OIF:
		r.oif, err = ix.oif.NewReader(cachePages)
	case InvertedFile:
		r.ifx, err = ix.ifx.NewReader(cachePages)
	default:
		r.ubt, err = ix.ubt.NewReader(cachePages)
	}
	if err != nil {
		return nil, err
	}
	return r, nil
}

// Subset answers like Index.Subset.
func (r *Reader) Subset(qs []Item) ([]uint32, error) {
	switch r.kind {
	case OIF:
		return r.oif.Subset(qs)
	case InvertedFile:
		return r.ifx.Subset(qs)
	default:
		return r.ubt.Subset(qs)
	}
}

// Equality answers like Index.Equality.
func (r *Reader) Equality(qs []Item) ([]uint32, error) {
	switch r.kind {
	case OIF:
		return r.oif.Equality(qs)
	case InvertedFile:
		return r.ifx.Equality(qs)
	default:
		return r.ubt.Equality(qs)
	}
}

// Superset answers like Index.Superset.
func (r *Reader) Superset(qs []Item) ([]uint32, error) {
	switch r.kind {
	case OIF:
		return r.oif.Superset(qs)
	case InvertedFile:
		return r.ifx.Superset(qs)
	default:
		return r.ubt.Superset(qs)
	}
}
