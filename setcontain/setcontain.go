package setcontain

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dataset"
)

// Item is a vocabulary element: a dense uint32 in [0, DomainSize).
type Item = uint32

// Collection is an in-memory set of records awaiting indexing. Records
// receive 1-based ids in insertion order; queries return these ids.
type Collection struct {
	ds *dataset.Dataset
}

// NewCollection returns an empty collection over items [0, domainSize).
func NewCollection(domainSize int) *Collection {
	return &Collection{ds: dataset.New(domainSize)}
}

// WrapDataset adapts a low-level dataset into a Collection. It is the
// bridge used by the in-module measurement layer (internal/experiments);
// external callers build collections with NewCollection or the readers.
func WrapDataset(ds *dataset.Dataset) *Collection { return &Collection{ds: ds} }

// Add appends a record (copied, sorted, deduplicated) and returns its id.
// Empty sets are allowed.
func (c *Collection) Add(set []Item) (uint32, error) { return c.ds.Add(set) }

// Len returns the number of records.
func (c *Collection) Len() int { return c.ds.Len() }

// DomainSize returns the vocabulary size.
func (c *Collection) DomainSize() int { return c.ds.DomainSize() }

// Record returns the item set of record id (1-based). The slice is owned
// by the collection.
func (c *Collection) Record(id uint32) ([]Item, error) {
	if id == 0 || int(id) > c.ds.Len() {
		return nil, fmt.Errorf("setcontain: record %d of %d", id, c.ds.Len())
	}
	return c.ds.Record(int(id - 1)).Set, nil
}

// SetLabels attaches item labels used by Label.
func (c *Collection) SetLabels(labels []string) error { return c.ds.SetLabels(labels) }

// Label returns item's label, or its decimal form if unlabeled.
func (c *Collection) Label(it Item) string { return c.ds.Label(it) }

// ReadCollection parses the text format (one record per line of
// space-separated item ids, optional "domain N" header).
func ReadCollection(r io.Reader) (*Collection, error) {
	ds, err := dataset.Read(r)
	if err != nil {
		return nil, err
	}
	return &Collection{ds: ds}, nil
}

// Write serialises the collection in the text format.
func (c *Collection) Write(w io.Writer) error { return dataset.Write(w, c.ds) }

// ReadMSWebCollection parses the UCI KDD "Anonymous Microsoft Web Data"
// format — the actual msweb log the paper evaluates on — replicating the
// sessions the given number of times (the paper uses 10 to simulate a
// ten-week log). Item labels carry the area titles.
func ReadMSWebCollection(r io.Reader, replicas int) (*Collection, error) {
	ds, err := dataset.ReadMSWeb(r)
	if err != nil {
		return nil, err
	}
	if replicas > 1 {
		ds, err = dataset.Replicate(ds, replicas)
		if err != nil {
			return nil, err
		}
	}
	return &Collection{ds: ds}, nil
}

// Index answers the three containment predicates through whichever
// Engine it wraps. Results are ascending record ids, identical across
// engines. An Index adds nothing over its Engine except a concrete type
// for call sites; IndexOver wraps an existing engine.
type Index struct {
	eng Engine
}

// Build indexes the collection with the engine selected by opts.Kind.
// The collection may keep growing afterwards, but new records are
// invisible to the index; use Insert on updatable engines instead.
func Build(c *Collection, opts Options) (*Index, error) {
	if c == nil || c.ds == nil {
		return nil, errors.New("setcontain: nil collection")
	}
	opts.fill()
	build, ok := engineBuilders[opts.Kind]
	if !ok {
		return nil, fmt.Errorf("setcontain: unknown index kind %v", opts.Kind)
	}
	eng, err := build(c.ds, opts)
	if err != nil {
		return nil, err
	}
	return &Index{eng: eng}, nil
}

// New indexes the collection, configured by functional options:
//
//	idx, err := setcontain.New(c, setcontain.WithKind(setcontain.OIF),
//		setcontain.WithCachePages(64))
func New(c *Collection, opts ...Option) (*Index, error) {
	return Build(c, NewOptions(opts...))
}

// IndexOver wraps an existing engine. The engine is used as-is; callers
// that built it with EngineOf keep full ownership of its pools.
func IndexOver(e Engine) *Index { return &Index{eng: e} }

// Engine returns the backing engine.
func (ix *Index) Engine() Engine { return ix.eng }

// Kind returns the index implementation in use.
func (ix *Index) Kind() Kind { return ix.eng.Kind() }

// NumRecords returns the number of indexed records, pending inserts
// included.
func (ix *Index) NumRecords() int { return ix.eng.NumRecords() }

// Subset returns ids of records whose sets contain every item of qs.
func (ix *Index) Subset(qs []Item) ([]uint32, error) { return ix.eng.Subset(qs) }

// Equality returns ids of records whose sets equal qs.
func (ix *Index) Equality(qs []Item) ([]uint32, error) { return ix.eng.Equality(qs) }

// Superset returns ids of records whose sets are contained in qs.
func (ix *Index) Superset(qs []Item) ([]uint32, error) { return ix.eng.Superset(qs) }

// Eval answers a first-class Query.
func (ix *Index) Eval(q Query) ([]uint32, error) { return q.Eval(ix.eng) }

// ErrNoUpdates reports an engine without update support.
var ErrNoUpdates = errors.New("setcontain: engine does not support updates")

// Insert adds a record to the engine's in-memory delta (visible to
// queries immediately) and returns its id. Supported by OIF,
// InvertedFile, and Sharded; call MergeDelta to fold the delta into the
// disk structures.
func (ix *Index) Insert(set []Item) (uint32, error) { return ix.eng.Insert(set) }

// Delete tombstones the record with the given id: it disappears from
// every subsequent answer immediately, its postings are physically
// removed from the disk lists by the next MergeDelta, and its id is
// never reused. Supported by the engines that support Insert. Readers
// created before the delete (including a Store's pooled readers) still
// serve their original snapshot — call Store.Refresh after deleting,
// exactly as after Insert.
func (ix *Index) Delete(id uint32) error { return ix.eng.Delete(id) }

// Deleted returns the number of tombstoned records.
func (ix *Index) Deleted() int { return ix.eng.Deleted() }

// MergeDelta folds pending inserts and tombstones into the disk
// structures: a cheap list append (plus a list rewrite when deletions
// are pending) for InvertedFile, a full re-sort and rebuild for OIF
// (§4.4 of the paper).
//
// Merging swaps the engine's page file, so a fresh query cache of the
// same capacity is attached afterwards. The fresh cache is seeded with
// the pre-merge counters, so CacheStats and DecodedCacheStats stay
// cumulative across merges; the cache contents start cold either way.
// Create new Readers (or call Store.Refresh) so parallel handles see
// the merged records.
func (ix *Index) MergeDelta() error { return ix.eng.MergeDelta() }

// PendingInserts returns the number of unmerged inserts.
func (ix *Index) PendingInserts() int { return ix.eng.PendingInserts() }

// ErrNoSnapshots reports an engine without snapshot support.
var ErrNoSnapshots = errors.New("setcontain: engine does not support snapshots")

// Save writes a self-contained, self-describing snapshot of the index:
// a container header naming the engine kind followed by the engine's
// own versioned payload (pages or lists, ordering, metadata, pending
// inserts, tombstones), guarded by CRC trailers. Open reconstructs the
// index from it without the original dataset. Supported by OIF,
// InvertedFile, and Sharded; the UBT ablation rebuilds quickly from its
// collection and does not snapshot.
func (ix *Index) Save(w io.Writer) error { return ix.eng.Save(w) }

// LoadIndex reconstructs an index from a snapshot produced by Save.
// Only opts.CachePages is consulted (0 keeps the snapshot's recorded
// cache budget).
//
// Deprecated: use Open, which reads the same container format and
// accepts functional options.
func LoadIndex(r io.Reader, opts Options) (*Index, error) {
	return Open(r, WithCachePages(opts.CachePages))
}

// CacheStats reports the index's I/O behaviour since the last reset.
// Counters are cumulative across MergeDelta: the post-merge cache is
// seeded with the pre-merge totals.
type CacheStats struct {
	Hits       int64 // page requests served from cache
	PageReads  int64 // pages fetched from storage ("disk page accesses")
	Sequential int64 // reads of physically adjacent pages
	Near       int64 // short-jump reads
	Random     int64 // full-seek reads
}

// CacheStats returns accumulated statistics.
func (ix *Index) CacheStats() CacheStats { return ix.eng.Stats() }

// ResetCacheStats zeroes the statistics (the cache contents remain).
func (ix *Index) ResetCacheStats() { ix.eng.ResetStats() }

// DecodedCacheStats reports the decoded-block cache's effectiveness:
// how many inverted-list block visits were served in already-decoded
// form (Hits) versus decoded from page bytes (Misses), and what the
// skew-aware admission policy did with the decoded blocks. All fields
// are zero for engines without a decoded cache (IF, UBT, or an OIF
// built with WithDecodedCache(-1)).
type DecodedCacheStats struct {
	Hits     int64 // block visits served without decoding
	Misses   int64 // block visits that decoded from page bytes
	Admitted int64 // decoded blocks copied into the cache
	Rejected int64 // decoded blocks denied admission (colder than residents)
	Evicted  int64 // cached blocks displaced by hotter arrivals
	Postings int   // postings currently cached
	Capacity int   // maximum postings (summed across shards)
}

// HitRate returns Hits / (Hits + Misses), or 0 before any block visit.
func (s DecodedCacheStats) HitRate() float64 {
	if total := s.Hits + s.Misses; total > 0 {
		return float64(s.Hits) / float64(total)
	}
	return 0
}

// add sums two snapshots (used to aggregate shard caches).
func (s DecodedCacheStats) add(t DecodedCacheStats) DecodedCacheStats {
	return DecodedCacheStats{
		Hits:     s.Hits + t.Hits,
		Misses:   s.Misses + t.Misses,
		Admitted: s.Admitted + t.Admitted,
		Rejected: s.Rejected + t.Rejected,
		Evicted:  s.Evicted + t.Evicted,
		Postings: s.Postings + t.Postings,
		Capacity: s.Capacity + t.Capacity,
	}
}

func decodedStatsOf(s core.DecodedCacheStats) DecodedCacheStats {
	return DecodedCacheStats{
		Hits:     s.Hits,
		Misses:   s.Misses,
		Admitted: s.Admitted,
		Rejected: s.Rejected,
		Evicted:  s.Evicted,
		Postings: s.Postings,
		Capacity: s.Capacity,
	}
}

// decodedStatser is the optional engine/reader surface behind
// DecodedCacheStats.
type decodedStatser interface {
	DecodedStats() DecodedCacheStats
}

// DecodedCacheStats returns the engine's decoded-block cache statistics
// (the engine's own cache only — Readers carry private caches, reported
// by Reader.DecodedCacheStats).
func (ix *Index) DecodedCacheStats() DecodedCacheStats {
	if ds, ok := ix.eng.(decodedStatser); ok {
		return ds.DecodedStats()
	}
	return DecodedCacheStats{}
}

// AppendSubset appends Subset's answer to dst and returns the extended
// slice — the zero-allocation form: on an OIF engine with warm page and
// decoded caches, the query reuses per-engine scratch arenas throughout
// and allocates nothing beyond dst's capacity. Existing dst contents
// are preserved; only the appended region is sorted. Engines without an
// append-form backend fall back to the plain call plus a copy.
func (ix *Index) AppendSubset(dst []uint32, qs []Item) ([]uint32, error) {
	return SubsetQuery(qs).EvalAppend(dst, ix.eng)
}

// AppendEquality appends Equality's answer to dst; see AppendSubset.
func (ix *Index) AppendEquality(dst []uint32, qs []Item) ([]uint32, error) {
	return EqualityQuery(qs).EvalAppend(dst, ix.eng)
}

// AppendSuperset appends Superset's answer to dst; see AppendSubset.
func (ix *Index) AppendSuperset(dst []uint32, qs []Item) ([]uint32, error) {
	return SupersetQuery(qs).EvalAppend(dst, ix.eng)
}

// NewReader creates a parallel query handle with its own cache of
// cachePages pages (0 selects the default 32 KB). The reader shares the
// index's immutable pages but owns its cache, so one reader per
// goroutine queries in parallel; readers see the inserts that existed
// when they were created and never the later ones.
func (ix *Index) NewReader(cachePages int) (*Reader, error) {
	return ix.eng.NewReader(cachePages)
}
