package setcontain

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/invfile"
	"repro/internal/storage"
	"repro/internal/ubtree"
)

// Engine is the uniform backend interface every index kind implements:
// the three containment predicates, the update path, parallel reader
// creation, and the I/O instrumentation the paper's evaluation rests on.
// Engines are selected through the Kind registry (Build/New) or wrapped
// directly with EngineOf; Index and Store are thin facades over one.
//
// Engines that lack a capability return an error wrapping the sentinels
// ErrNoUpdates (Insert, Delete, MergeDelta) or ErrNoSnapshots (Save)
// rather than omitting the method, so callers can feature-test with
// errors.Is while the message names the offending engine kind.
//
// Pool and SetPool expose the engine's buffer pool for the in-module
// measurement layer (the pool type lives in an internal package); they
// re-point the engine at a caller-owned cache, which is how experiments
// meter page accesses under the paper's 32 KB budget.
//
// An Engine, like an Index, is not safe for concurrent use; NewReader
// hands out isolated handles that are.
type Engine interface {
	// Kind identifies the engine in the registry.
	Kind() Kind
	// NumRecords returns the number of indexed records, pending
	// inserts included.
	NumRecords() int
	// DomainSize returns the vocabulary size.
	DomainSize() int

	// Subset returns ids of records whose sets contain every item of qs.
	Subset(qs []Item) ([]uint32, error)
	// Equality returns ids of records whose sets equal qs.
	Equality(qs []Item) ([]uint32, error)
	// Superset returns ids of records whose sets are contained in qs.
	Superset(qs []Item) ([]uint32, error)

	// Insert adds a record to the in-memory delta, visible immediately.
	Insert(set []Item) (uint32, error)
	// Delete tombstones a record id: masked from answers immediately,
	// physically removed by MergeDelta, never reused.
	Delete(id uint32) error
	// Deleted returns the number of tombstoned records.
	Deleted() int
	// MergeDelta folds pending inserts and tombstones into the disk
	// structures and re-attaches a fresh query cache seeded with the
	// previous cache's statistics (counters stay cumulative).
	MergeDelta() error
	// PendingInserts returns the number of unmerged inserts.
	PendingInserts() int

	// NewReader creates an isolated parallel query handle.
	NewReader(cachePages int) (*Reader, error)
	// Save writes a self-contained snapshot.
	Save(w io.Writer) error

	// ItemSupports returns the per-item support table (index = item id,
	// value = records containing the item in the merged structures) the
	// expression planner costs containment leaves with. Pending delta
	// inserts and tombstones are not reflected; the table is a planning
	// estimate, not an answer. The caller owns the returned slice.
	ItemSupports() []int64

	// Space reports the persistent footprint.
	Space() SpaceInfo
	// Stats reports I/O behaviour since the last reset.
	Stats() CacheStats
	// ResetStats zeroes the statistics.
	ResetStats()

	// SetPool re-points the engine at pool (metering hook).
	SetPool(pool *storage.BufferPool) error
	// Pool returns the active buffer pool (metering hook).
	Pool() *storage.BufferPool
	// Unwrap returns the backend index (*core.Index, *invfile.Index, or
	// *ubtree.Index) for measurement code that needs kind-specific
	// details (space breakdowns, the OIF ordering).
	Unwrap() any
}

// SpaceInfo is an engine's persistent footprint.
type SpaceInfo struct {
	Pages int64 // pages allocated by the index file
	Bytes int64 // Pages times the page size
}

// engineBuilders is the Kind registry consulted by Build.
var engineBuilders = map[Kind]func(*dataset.Dataset, Options) (Engine, error){
	OIF:            buildOIFEngine,
	InvertedFile:   buildInvEngine,
	UnorderedBTree: buildUBTEngine,
	Sharded:        buildShardedEngine,
}

// Kinds lists the registered engine kinds in declaration order.
func Kinds() []Kind { return []Kind{OIF, InvertedFile, UnorderedBTree, Sharded} }

// EngineOf wraps an already-built backend index (*core.Index,
// *invfile.Index, or *ubtree.Index) in its Engine adapter, or rewraps a
// []Engine shard slice (as returned by a sharded engine's Unwrap) into a
// sharded engine. The backend's current buffer pool is kept; this is the
// entry point for measurement code that builds backends with non-default
// knobs.
func EngineOf(backend any) (Engine, error) {
	switch ix := backend.(type) {
	case *core.Index:
		return &oifEngine{baseEngine{b: ix, kind: OIF}}, nil
	case *invfile.Index:
		return &invEngine{baseEngine{b: ix, kind: InvertedFile}}, nil
	case *ubtree.Index:
		return &ubtEngine{baseEngine{b: ix, kind: UnorderedBTree}}, nil
	case []Engine:
		return shardedOf(ix)
	default:
		return nil, fmt.Errorf("setcontain: no engine adapter for %T", backend)
	}
}

// backend is the surface the three index implementations share; the
// per-kind adapters add what differs (updates, snapshots, readers,
// space accounting).
type backend interface {
	Queryable
	NumRecords() int
	DomainSize() int
	ItemSupports() []int64
	SetPool(pool *storage.BufferPool) error
	Pool() *storage.BufferPool
}

// baseEngine implements the Engine methods every backend shares
// identically; the kind-specific adapters embed it.
type baseEngine struct {
	b    backend
	kind Kind
}

func (e *baseEngine) Kind() Kind            { return e.kind }
func (e *baseEngine) NumRecords() int       { return e.b.NumRecords() }
func (e *baseEngine) DomainSize() int       { return e.b.DomainSize() }
func (e *baseEngine) ItemSupports() []int64 { return e.b.ItemSupports() }
func (e *baseEngine) Unwrap() any           { return e.b }

func (e *baseEngine) Subset(qs []Item) ([]uint32, error)   { return e.b.Subset(qs) }
func (e *baseEngine) Equality(qs []Item) ([]uint32, error) { return e.b.Equality(qs) }
func (e *baseEngine) Superset(qs []Item) ([]uint32, error) { return e.b.Superset(qs) }

func (e *baseEngine) Stats() CacheStats { return cacheStatsOf(e.b.Pool().Stats()) }
func (e *baseEngine) ResetStats()       { e.b.Pool().ResetStats() }

func (e *baseEngine) SetPool(pool *storage.BufferPool) error { return e.b.SetPool(pool) }
func (e *baseEngine) Pool() *storage.BufferPool              { return e.b.Pool() }

// pagedSpace is the footprint of a backend whose persistent state is
// exactly its pager's pages.
func (e *baseEngine) pagedSpace() SpaceInfo {
	pool := e.b.Pool()
	pages := pool.Pager().NumPages()
	return SpaceInfo{Pages: pages, Bytes: pages * int64(pool.PageSize())}
}

// attachCache replaces the backend's current pool with a query cache of
// the given page count over the same pager.
func attachCache(b backend, pages int) error {
	return b.SetPool(storage.NewBufferPool(b.Pool().Pager(), pages))
}

// capabilityError wraps a capability sentinel with the engine kind, so
// errors.Is(err, ErrNoUpdates/ErrNoSnapshots) still matches while the
// message identifies the offending engine.
type capabilityError struct {
	kind     Kind
	sentinel error
}

func (e *capabilityError) Error() string {
	switch e.sentinel {
	case ErrNoUpdates:
		return fmt.Sprintf("setcontain: %s engine does not support updates", e.kind)
	case ErrNoSnapshots:
		return fmt.Sprintf("setcontain: %s engine does not support snapshots", e.kind)
	}
	return fmt.Sprintf("setcontain: %s engine: %v", e.kind, e.sentinel)
}

func (e *capabilityError) Unwrap() error { return e.sentinel }

// capErr returns kind's wrapped form of a capability sentinel.
func capErr(kind Kind, sentinel error) error {
	return &capabilityError{kind: kind, sentinel: sentinel}
}

// mergeAndRepool runs a backend's delta merge and re-attaches a fresh
// cache of the previous capacity: the merge swaps the page file, so the
// old pool's frames cannot carry over. Its statistics do — the new pool
// is seeded with the pre-merge counters, keeping CacheStats cumulative
// across merges.
func mergeAndRepool(b backend, merge func() error) error {
	capacity := b.Pool().Capacity()
	pre := b.Pool().Stats()
	if err := merge(); err != nil {
		return err
	}
	if err := attachCache(b, capacity); err != nil {
		return err
	}
	b.Pool().AddStats(pre)
	return nil
}

// wrapReader applies the default cache size and boxes a backend reader.
func wrapReader(cachePages int, open func(int) (engineReader, error)) (*Reader, error) {
	if cachePages <= 0 {
		cachePages = storage.DefaultPoolPages
	}
	r, err := open(cachePages)
	if err != nil {
		return nil, err
	}
	return &Reader{r: r}, nil
}

func cacheStatsOf(s storage.AccessStats) CacheStats {
	return CacheStats{
		Hits:       s.Hits,
		PageReads:  s.Misses,
		Sequential: s.SeqMisses,
		Near:       s.NearMisses,
		Random:     s.RandMisses,
	}
}

// --- OIF ----------------------------------------------------------------

type oifEngine struct {
	baseEngine
}

func (e *oifEngine) ix() *core.Index { return e.b.(*core.Index) }

func buildOIFEngine(ds *dataset.Dataset, opts Options) (Engine, error) {
	ix, err := core.Build(ds, core.Options{
		PageSize:             opts.PageSize,
		BlockPostings:        opts.BlockPostings,
		TagPrefix:            opts.TagPrefix,
		DecodedCachePostings: opts.DecodedCachePostings,
	})
	if err != nil {
		return nil, err
	}
	return attachOIF(ix, opts)
}

func attachOIF(ix *core.Index, opts Options) (Engine, error) {
	if err := attachCache(ix, opts.CachePages); err != nil {
		return nil, err
	}
	return &oifEngine{baseEngine{b: ix, kind: OIF}}, nil
}

func (e *oifEngine) Insert(set []Item) (uint32, error) { return e.ix().Insert(set) }
func (e *oifEngine) Delete(id uint32) error            { return e.ix().Delete(id) }
func (e *oifEngine) Deleted() int                      { return e.ix().Deleted() }
func (e *oifEngine) MergeDelta() error                 { return mergeAndRepool(e.b, e.ix().MergeDelta) }
func (e *oifEngine) PendingInserts() int               { return e.ix().DeltaLen() }

func (e *oifEngine) NewReader(cachePages int) (*Reader, error) {
	return wrapReader(cachePages, func(pages int) (engineReader, error) {
		return e.ix().NewReader(pages)
	})
}

// Save writes the self-describing engine container (see Open): the
// header names the kind, the payload is the OIF's own snapshot stream.
func (e *oifEngine) Save(w io.Writer) error {
	return saveContainer(w, OIF, e.b.Pool().Capacity(), e.ix().Save)
}

func (e *oifEngine) Space() SpaceInfo {
	s := e.ix().Space()
	return SpaceInfo{Pages: s.TreePages, Bytes: s.TreeBytes}
}

// AppendSubset implements AppendQueryable on the OIF's zero-allocation
// query path; likewise AppendEquality and AppendSuperset.
func (e *oifEngine) AppendSubset(dst []uint32, qs []Item) ([]uint32, error) {
	return e.ix().AppendSubset(dst, qs)
}

func (e *oifEngine) AppendEquality(dst []uint32, qs []Item) ([]uint32, error) {
	return e.ix().AppendEquality(dst, qs)
}

func (e *oifEngine) AppendSuperset(dst []uint32, qs []Item) ([]uint32, error) {
	return e.ix().AppendSuperset(dst, qs)
}

// AppendSubsetWithin restricts the subset answer to a sorted candidate
// set in one pass — the planner's streaming-AND pushdown capability
// (see subsetWithiner).
func (e *oifEngine) AppendSubsetWithin(dst []uint32, qs []Item, cands []uint32) ([]uint32, error) {
	return e.ix().AppendSubsetWithin(dst, qs, cands)
}

// DecodedStats exposes the OIF's decoded-block cache statistics.
func (e *oifEngine) DecodedStats() DecodedCacheStats {
	return decodedStatsOf(e.ix().DecodedStats())
}

// --- Inverted file ------------------------------------------------------

type invEngine struct {
	baseEngine
}

func (e *invEngine) ix() *invfile.Index { return e.b.(*invfile.Index) }

func buildInvEngine(ds *dataset.Dataset, opts Options) (Engine, error) {
	ix, err := invfile.Build(ds, invfile.BuildOptions{PageSize: opts.PageSize})
	if err != nil {
		return nil, err
	}
	if err := attachCache(ix, opts.CachePages); err != nil {
		return nil, err
	}
	return &invEngine{baseEngine{b: ix, kind: InvertedFile}}, nil
}

func (e *invEngine) Insert(set []Item) (uint32, error) { return e.ix().Insert(set) }
func (e *invEngine) Delete(id uint32) error            { return e.ix().Delete(id) }
func (e *invEngine) Deleted() int                      { return e.ix().Deleted() }
func (e *invEngine) MergeDelta() error                 { return mergeAndRepool(e.b, e.ix().MergeDelta) }
func (e *invEngine) PendingInserts() int               { return e.ix().DeltaLen() }

func (e *invEngine) NewReader(cachePages int) (*Reader, error) {
	return wrapReader(cachePages, func(pages int) (engineReader, error) {
		return e.ix().NewReader(pages)
	})
}

// Save writes the self-describing engine container (see Open) with the
// inverted file's versioned snapshot as payload.
func (e *invEngine) Save(w io.Writer) error {
	return saveContainer(w, InvertedFile, e.b.Pool().Capacity(), e.ix().Save)
}

func (e *invEngine) Space() SpaceInfo {
	pages := e.ix().ListPages()
	return SpaceInfo{Pages: pages, Bytes: pages * int64(e.b.Pool().PageSize())}
}

// SubsetCursor streams the subset answer with lazily decoded postings —
// the planner's early-exit capability (see subsetCursorer).
func (e *invEngine) SubsetCursor(qs []Item) (*invfile.SubsetCursor, error) {
	return e.ix().SubsetCursor(qs)
}

// --- Unordered B-tree ---------------------------------------------------

type ubtEngine struct {
	baseEngine
}

func (e *ubtEngine) ix() *ubtree.Index { return e.b.(*ubtree.Index) }

func buildUBTEngine(ds *dataset.Dataset, opts Options) (Engine, error) {
	ix, err := ubtree.Build(ds, ubtree.Options{
		PageSize:      opts.PageSize,
		BlockPostings: opts.BlockPostings,
	})
	if err != nil {
		return nil, err
	}
	if err := attachCache(ix, opts.CachePages); err != nil {
		return nil, err
	}
	return &ubtEngine{baseEngine{b: ix, kind: UnorderedBTree}}, nil
}

func (e *ubtEngine) Insert([]Item) (uint32, error) { return 0, capErr(UnorderedBTree, ErrNoUpdates) }
func (e *ubtEngine) Delete(uint32) error           { return capErr(UnorderedBTree, ErrNoUpdates) }
func (e *ubtEngine) Deleted() int                  { return 0 }
func (e *ubtEngine) MergeDelta() error             { return capErr(UnorderedBTree, ErrNoUpdates) }
func (e *ubtEngine) PendingInserts() int           { return 0 }

func (e *ubtEngine) NewReader(cachePages int) (*Reader, error) {
	return wrapReader(cachePages, func(pages int) (engineReader, error) {
		return e.ix().NewReader(pages)
	})
}

func (e *ubtEngine) Save(io.Writer) error { return capErr(UnorderedBTree, ErrNoSnapshots) }

func (e *ubtEngine) Space() SpaceInfo { return e.pagedSpace() }
