package setcontain

import (
	"errors"
	"fmt"
	"iter"
	"strings"
)

// Predicate names one of the three containment relations.
type Predicate int

// The containment relations.
const (
	// PredicateSubset matches records whose sets contain every query
	// item (the query is a subset of the record).
	PredicateSubset Predicate = iota
	// PredicateEquality matches records whose sets equal the query.
	PredicateEquality
	// PredicateSuperset matches records contained in the query (the
	// query is a superset of the record).
	PredicateSuperset
)

// ErrUnknownPredicate reports an invalid Predicate value.
var ErrUnknownPredicate = errors.New("setcontain: unknown predicate")

// String returns the predicate's conventional lowercase name, as the
// CLIs spell it: "subset", "equality", or "superset".
func (p Predicate) String() string {
	switch p {
	case PredicateSubset:
		return "subset"
	case PredicateEquality:
		return "equality"
	case PredicateSuperset:
		return "superset"
	default:
		return fmt.Sprintf("Predicate(%d)", int(p))
	}
}

// ParsePredicate resolves the names produced by Predicate.String,
// case-insensitively.
func ParsePredicate(s string) (Predicate, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "subset":
		return PredicateSubset, nil
	case "equality":
		return PredicateEquality, nil
	case "superset":
		return PredicateSuperset, nil
	default:
		return 0, fmt.Errorf("setcontain: unknown predicate %q (want subset, equality, or superset)", s)
	}
}

// Query is a first-class containment query: a predicate plus its items.
// It evaluates against any Queryable and is the unit Store executes.
type Query struct {
	Pred  Predicate
	Items []Item
}

// SubsetQuery returns a Query matching records that contain every item.
func SubsetQuery(items []Item) Query { return Query{Pred: PredicateSubset, Items: items} }

// EqualityQuery returns a Query matching records equal to items.
func EqualityQuery(items []Item) Query { return Query{Pred: PredicateEquality, Items: items} }

// SupersetQuery returns a Query matching records contained in items.
func SupersetQuery(items []Item) Query { return Query{Pred: PredicateSuperset, Items: items} }

// String renders the query log-friendly, e.g. "subset{3 17 29}".
func (q Query) String() string {
	var b strings.Builder
	b.WriteString(q.Pred.String())
	b.WriteByte('{')
	for i, it := range q.Items {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", it)
	}
	b.WriteByte('}')
	return b.String()
}

// ParseQuery parses the textual form produced by Query.String —
// "subset{3 17 29}" — back into a Query, so the string form round-trips
// and can serve as a compact wire format (the serve package's ?q=
// parameter uses it). The predicate name is matched like ParsePredicate
// (case-insensitively); items are decimal uint32s separated by spaces,
// and "{}" denotes the empty query. Surrounding whitespace is ignored;
// anything after the closing brace is an error.
func ParseQuery(s string) (Query, error) {
	trimmed := strings.TrimSpace(s)
	open := strings.IndexByte(trimmed, '{')
	if open < 0 || !strings.HasSuffix(trimmed, "}") {
		return Query{}, fmt.Errorf("setcontain: query %q: want predicate{items...}", s)
	}
	pred, err := ParsePredicate(trimmed[:open])
	if err != nil {
		return Query{}, fmt.Errorf("setcontain: query %q: %w", s, err)
	}
	body := trimmed[open+1 : len(trimmed)-1]
	if strings.ContainsAny(body, "{}") {
		return Query{}, fmt.Errorf("setcontain: query %q: nested braces", s)
	}
	fields := strings.Fields(body)
	items := make([]Item, 0, len(fields))
	for _, f := range fields {
		var it uint64
		for i := 0; i < len(f); i++ {
			d := f[i] - '0'
			if d > 9 {
				return Query{}, fmt.Errorf("setcontain: query %q: item %q is not a decimal uint32", s, f)
			}
			it = it*10 + uint64(d)
			if it > 1<<32-1 {
				return Query{}, fmt.Errorf("setcontain: query %q: item %q overflows uint32", s, f)
			}
		}
		items = append(items, Item(it))
	}
	return Query{Pred: pred, Items: items}, nil
}

// Queryable is anything that answers the three containment predicates:
// an Index, a Reader, or an Engine.
type Queryable interface {
	Subset(qs []Item) ([]uint32, error)
	Equality(qs []Item) ([]uint32, error)
	Superset(qs []Item) ([]uint32, error)
}

// Eval answers the query against t. This is the single dispatch point
// from predicates to engine methods.
func (q Query) Eval(t Queryable) ([]uint32, error) {
	switch q.Pred {
	case PredicateSubset:
		return t.Subset(q.Items)
	case PredicateEquality:
		return t.Equality(q.Items)
	case PredicateSuperset:
		return t.Superset(q.Items)
	default:
		return nil, ErrUnknownPredicate
	}
}

// AppendQueryable is the append-form query surface: answers are
// appended to a caller-provided slice instead of freshly allocated.
// The OIF engine and its readers implement it on the zero-allocation
// query path; EvalAppend falls back to Eval plus a copy for the rest.
type AppendQueryable interface {
	AppendSubset(dst []uint32, qs []Item) ([]uint32, error)
	AppendEquality(dst []uint32, qs []Item) ([]uint32, error)
	AppendSuperset(dst []uint32, qs []Item) ([]uint32, error)
}

// EvalAppend answers the query against t, appending the answer to dst
// and returning the extended slice. With a target implementing
// AppendQueryable (an OIF Index, Engine, or Reader) and warm caches the
// call performs no allocations beyond growing dst; other targets answer
// through Eval and copy.
func (q Query) EvalAppend(dst []uint32, t Queryable) ([]uint32, error) {
	if at, ok := t.(AppendQueryable); ok {
		switch q.Pred {
		case PredicateSubset:
			return at.AppendSubset(dst, q.Items)
		case PredicateEquality:
			return at.AppendEquality(dst, q.Items)
		case PredicateSuperset:
			return at.AppendSuperset(dst, q.Items)
		default:
			return nil, ErrUnknownPredicate
		}
	}
	ids, err := q.Eval(t)
	if err != nil {
		return nil, err
	}
	return append(dst, ids...), nil
}

// EvalSeq answers the query as a lazy sequence; see Index.SubsetSeq for
// the streaming contract.
func (q Query) EvalSeq(t Queryable) (iter.Seq[uint32], error) {
	return seqOf(q.Eval(t))
}

// seqOf adapts a slice answer (and its error) to the iterator form.
func seqOf(ids []uint32, err error) (iter.Seq[uint32], error) {
	if err != nil {
		return nil, err
	}
	return func(yield func(uint32) bool) {
		for _, id := range ids {
			if !yield(id) {
				return
			}
		}
	}, nil
}

// SubsetSeq returns the Subset answer as an iter.Seq, for callers that
// stream large answer sets instead of holding the whole id slice:
//
//	seq, err := idx.SubsetSeq(qs)
//	for id := range seq { ... }
//
// Iteration may be abandoned early at no cost. The current engines
// compute the full answer before the sequence yields (their final
// sort/remap steps need it); the iterator surface frees callers from
// that detail and is the contract future incremental engines stream
// through. The slice forms remain as the materializing convenience.
func (ix *Index) SubsetSeq(qs []Item) (iter.Seq[uint32], error) {
	return seqOf(ix.eng.Subset(qs))
}

// EqualitySeq streams the Equality answer; see SubsetSeq.
func (ix *Index) EqualitySeq(qs []Item) (iter.Seq[uint32], error) {
	return seqOf(ix.eng.Equality(qs))
}

// SupersetSeq streams the Superset answer; see SubsetSeq.
func (ix *Index) SupersetSeq(qs []Item) (iter.Seq[uint32], error) {
	return seqOf(ix.eng.Superset(qs))
}
