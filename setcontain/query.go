package setcontain

import (
	"errors"
	"fmt"
	"iter"
	"strings"
)

// Predicate names one of the three containment relations.
type Predicate int

// The containment relations.
const (
	// PredicateSubset matches records whose sets contain every query
	// item (the query is a subset of the record).
	PredicateSubset Predicate = iota
	// PredicateEquality matches records whose sets equal the query.
	PredicateEquality
	// PredicateSuperset matches records contained in the query (the
	// query is a superset of the record).
	PredicateSuperset
)

// ErrUnknownPredicate reports an invalid Predicate value. Every
// evaluation path — Eval, EvalAppend, EvalSeq, and the expression
// planner — returns exactly this sentinel (never wrapped twice) for a
// query whose Pred is not one of the three containment relations, so
// callers can test errors.Is(err, ErrUnknownPredicate) uniformly.
var ErrUnknownPredicate = errors.New("setcontain: unknown predicate")

// String returns the predicate's conventional lowercase name, as the
// CLIs spell it: "subset", "equality", or "superset".
func (p Predicate) String() string {
	switch p {
	case PredicateSubset:
		return "subset"
	case PredicateEquality:
		return "equality"
	case PredicateSuperset:
		return "superset"
	default:
		return fmt.Sprintf("Predicate(%d)", int(p))
	}
}

// known reports whether p is one of the three containment relations.
func (p Predicate) known() bool {
	return p == PredicateSubset || p == PredicateEquality || p == PredicateSuperset
}

// ParsePredicate resolves the names produced by Predicate.String,
// case-insensitively.
func ParsePredicate(s string) (Predicate, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "subset":
		return PredicateSubset, nil
	case "equality":
		return PredicateEquality, nil
	case "superset":
		return PredicateSuperset, nil
	default:
		return 0, fmt.Errorf("setcontain: unknown predicate %q (want subset, equality, or superset)", s)
	}
}

// Query is a first-class containment query: a predicate plus its items.
// It evaluates against any Queryable and is the unit Store executes.
type Query struct {
	Pred  Predicate
	Items []Item
}

// SubsetQuery returns a Query matching records that contain every item.
func SubsetQuery(items []Item) Query { return Query{Pred: PredicateSubset, Items: items} }

// EqualityQuery returns a Query matching records equal to items.
func EqualityQuery(items []Item) Query { return Query{Pred: PredicateEquality, Items: items} }

// SupersetQuery returns a Query matching records contained in items.
func SupersetQuery(items []Item) Query { return Query{Pred: PredicateSuperset, Items: items} }

// String renders the query log-friendly, e.g. "subset{3 17 29}".
func (q Query) String() string {
	var b strings.Builder
	b.WriteString(q.Pred.String())
	b.WriteByte('{')
	for i, it := range q.Items {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", it)
	}
	b.WriteByte('}')
	return b.String()
}

// Queryable is anything that answers the three containment predicates:
// an Index, a Reader, or an Engine.
type Queryable interface {
	Subset(qs []Item) ([]uint32, error)
	Equality(qs []Item) ([]uint32, error)
	Superset(qs []Item) ([]uint32, error)
}

// Eval answers the query against t. This is the single dispatch point
// from predicates to engine methods.
func (q Query) Eval(t Queryable) ([]uint32, error) {
	switch q.Pred {
	case PredicateSubset:
		return t.Subset(q.Items)
	case PredicateEquality:
		return t.Equality(q.Items)
	case PredicateSuperset:
		return t.Superset(q.Items)
	default:
		return nil, ErrUnknownPredicate
	}
}

// AppendQueryable is the append-form query surface: answers are
// appended to a caller-provided slice instead of freshly allocated.
// The OIF engine and its readers implement it on the zero-allocation
// query path; EvalAppend falls back to Eval plus a copy for the rest.
type AppendQueryable interface {
	AppendSubset(dst []uint32, qs []Item) ([]uint32, error)
	AppendEquality(dst []uint32, qs []Item) ([]uint32, error)
	AppendSuperset(dst []uint32, qs []Item) ([]uint32, error)
}

// EvalAppend answers the query against t, appending the answer to dst
// and returning the extended slice. With a target implementing
// AppendQueryable (an OIF Index, Engine, or Reader) and warm caches the
// call performs no allocations beyond growing dst; other targets answer
// through Eval and copy. An invalid predicate returns the bare
// ErrUnknownPredicate sentinel on both paths.
func (q Query) EvalAppend(dst []uint32, t Queryable) ([]uint32, error) {
	if !q.Pred.known() {
		return nil, ErrUnknownPredicate
	}
	if at, ok := t.(AppendQueryable); ok {
		switch q.Pred {
		case PredicateSubset:
			return at.AppendSubset(dst, q.Items)
		case PredicateEquality:
			return at.AppendEquality(dst, q.Items)
		default:
			return at.AppendSuperset(dst, q.Items)
		}
	}
	ids, err := q.Eval(t)
	if err != nil {
		return nil, err
	}
	return append(dst, ids...), nil
}

// EvalSeq answers the query as a lazy sequence; see Index.SubsetSeq for
// the streaming contract. The error covers evaluation up front: a
// non-nil sequence never fails mid-iteration, yields ascending unique
// record ids, may be ranged over at most once, and may be abandoned
// early at no cost. An invalid predicate returns the bare
// ErrUnknownPredicate sentinel.
func (q Query) EvalSeq(t Queryable) (iter.Seq[uint32], error) {
	return seqOf(q.Eval(t))
}

// seqOf adapts a slice answer (and its error) to the iterator form.
func seqOf(ids []uint32, err error) (iter.Seq[uint32], error) {
	if err != nil {
		return nil, err
	}
	return func(yield func(uint32) bool) {
		for _, id := range ids {
			if !yield(id) {
				return
			}
		}
	}, nil
}

// SubsetSeq returns the Subset answer as an iter.Seq, for callers that
// stream large answer sets instead of holding the whole id slice:
//
//	seq, err := idx.SubsetSeq(qs)
//	for id := range seq { ... }
//
// The contract: the error covers evaluation up front, so a non-nil
// sequence never fails mid-iteration; it yields record ids ascending
// and without duplicates; it is single-use (range over it at most
// once); and iteration may be abandoned early at no cost. The current
// engines compute the full answer before the sequence yields (their
// final sort/remap steps need it); the iterator surface frees callers
// from that detail and is the contract future incremental engines
// stream through. The slice forms remain as the materializing
// convenience.
func (ix *Index) SubsetSeq(qs []Item) (iter.Seq[uint32], error) {
	return seqOf(ix.eng.Subset(qs))
}

// EqualitySeq streams the Equality answer; see SubsetSeq.
func (ix *Index) EqualitySeq(qs []Item) (iter.Seq[uint32], error) {
	return seqOf(ix.eng.Equality(qs))
}

// SupersetSeq streams the Superset answer; see SubsetSeq.
func (ix *Index) SupersetSeq(qs []Item) (iter.Seq[uint32], error) {
	return seqOf(ix.eng.Superset(qs))
}
