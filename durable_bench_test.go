package repro

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/wal"
	"repro/setcontain"
)

// BenchmarkWALAppend measures the logged-mutation hot path — encode a
// record, append it to the open segment, commit per policy — over the
// in-memory filesystem, so the numbers isolate the log's own cost from
// the device's fsync latency. The "os" policy is the encode+write
// floor; "always" adds a (memory-priced) sync per commit.
func BenchmarkWALAppend(b *testing.B) {
	set := []uint32{3, 17, 255, 4096, 70000}
	for _, policy := range []wal.SyncPolicy{wal.SyncAlways, wal.SyncOS} {
		b.Run(policy.String(), func(b *testing.B) {
			fs := wal.NewMemFS()
			log, _, err := wal.Open("wal", wal.Options{FS: fs}, 0, nil)
			if err != nil {
				b.Fatal(err)
			}
			defer log.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := log.Append(wal.Record{Op: wal.OpInsert, ID: uint32(i), Set: set}); err != nil {
					b.Fatal(err)
				}
				if policy == wal.SyncAlways {
					if err := log.Sync(); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			st := log.Stats()
			b.SetBytes(st.AppendedBytes / int64(b.N))
			b.ReportMetric(float64(st.AppendedBytes)/float64(b.N), "log_bytes/op")
		})
	}
}

// BenchmarkDurableRecover measures the restart path a durable daemon
// pays: open the newest checkpoint snapshot and replay the log tail.
// The log holds 1000 single-set inserts past the checkpoint, so
// replay_ms/op is the cost of a kill -9 with a 1000-record tail.
func BenchmarkDurableRecover(b *testing.B) {
	const tail = 1000
	fs := wal.NewMemFS()
	idx, err := setcontain.New(benchCollection(b),
		setcontain.WithKind(setcontain.Sharded), setcontain.WithShards(2))
	if err != nil {
		b.Fatal(err)
	}
	opts := setcontain.DurableOptions{FS: fs, CheckpointBytes: -1}
	d, err := setcontain.NewDurable("wal", idx, opts)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < tail; i++ {
		if _, err := d.InsertSets([][]setcontain.Item{{2, 5, setcontain.Item(i)}}); err != nil {
			b.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		b.Fatal(err)
	}

	var replayed int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		re, err := setcontain.OpenDurable("wal", opts)
		if err != nil {
			b.Fatal(err)
		}
		replayed = re.Stats().Replay.Records
		b.StopTimer()
		re.Close()
		b.StartTimer()
	}
	b.StopTimer()
	if replayed != tail {
		b.Fatalf("replayed %d records, want %d", replayed, tail)
	}
	b.ReportMetric(float64(b.Elapsed().Milliseconds())/float64(b.N), "replay_ms/op")
	b.ReportMetric(float64(replayed), "replay_records")
}

// benchCollection is a small skewed collection for the durability
// benches (the shared fixtures at benchCfg scale make recovery builds
// needlessly slow).
func benchCollection(b *testing.B) *setcontain.Collection {
	cfg := benchCfg()
	cfg.Scale = 0.0005 // 5 000 records
	d, err := dataset.GenerateSynthetic(cfg.SyntheticDefaults())
	if err != nil {
		b.Fatal(err)
	}
	return setcontain.WrapDataset(d)
}
