GO ?= go

.PHONY: all build vet test bench check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x .

check: build vet test
