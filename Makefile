GO ?= go
GOLANGCI ?= golangci-lint
# Coverage floor (percent) enforced by `make cover` over the public API
# package and the shard planner.
COVER_FLOOR ?= 75
COVER_PKGS = ./setcontain/... ./internal/stats/...

.PHONY: all build vet test bench lint cover check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

# Run every benchmark once, across all packages, without re-running unit
# tests — the CI bench-smoke job uses the same invocation.
bench:
	$(GO) test -run '^$$' -bench=. -benchtime=1x ./...

lint:
	$(GOLANGCI) run ./...

cover:
	$(GO) test -coverprofile=coverage.out $(COVER_PKGS)
	@$(GO) tool cover -func=coverage.out | awk -v floor=$(COVER_FLOOR) \
		'/^total:/ { seen = 1; sub(/%/, "", $$3); \
		 if ($$3 + 0 < floor) { printf "FAIL: coverage %.1f%% below floor %d%%\n", $$3, floor; exit 1 } \
		 else { printf "coverage %.1f%% (floor %d%%)\n", $$3, floor } } \
		 END { if (!seen) { print "FAIL: no coverage total (go tool cover failed?)"; exit 1 } }'

check: build vet test
