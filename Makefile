GO ?= go
GOLANGCI ?= golangci-lint
# Coverage floor (percent) enforced by `make cover` over the public API
# package and the shard planner.
COVER_FLOOR ?= 75
COVER_PKGS = ./setcontain/... ./internal/stats/...

.PHONY: all build vet test bench bench-baseline bench-compare fuzz-smoke lint cover check linkcheck vet-examples serve snapshot-smoke crash-smoke scatter-smoke clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

# Run every benchmark once, across all packages, without re-running unit
# tests — the CI bench-smoke job uses the same invocation.
bench:
	$(GO) test -run '^$$' -bench=. -benchtime=1x ./...

# Tier-1 hot-path benchmarks: the CPU-performance gate of the README's
# "CPU performance" section, plus the expression planner's
# planned-vs-naive pair and the streaming-execution trio
# (streaming-vs-materializing, limit early exit, batch CSE).
TIER1_BENCH = BenchmarkSubset|BenchmarkEquality|BenchmarkSuperset|BenchmarkExprPlanner|BenchmarkExprStream|BenchmarkExprLimit|BenchmarkExprCSE
BENCH_TIME ?= 500x
# Samples per benchmark; benchjson keeps the fastest (min ns/op), which
# gates robustly on machines with background load.
BENCH_COUNT ?= 5
# ns/op regression tolerance for bench-compare, in percent.
BENCH_TOLERANCE ?= 10

# Refresh the checked-in CPU baseline: BENCH_PR3.json (standardized
# ns/op, allocs/op, pages/op, decoded-hit-rate per benchmark) plus its
# raw-text twin for benchstat.
bench-baseline:
	$(GO) test -run '^$$' -bench '$(TIER1_BENCH)' -benchtime=$(BENCH_TIME) -count=$(BENCH_COUNT) -benchmem . \
		| tee BENCH_PR3.txt | $(GO) run ./cmd/benchjson > BENCH_PR3.json

# Compare a fresh tier-1 run against the checked-in baseline, failing on
# >$(BENCH_TOLERANCE)% ns/op regression. benchstat summarises the raw
# runs when installed; the pass/fail gate is benchjson -compare either
# way (no external dependency).
bench-compare:
	$(GO) test -run '^$$' -bench '$(TIER1_BENCH)' -benchtime=$(BENCH_TIME) -count=$(BENCH_COUNT) -benchmem . \
		| tee bench-new.txt | $(GO) run ./cmd/benchjson > bench-new.json
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat BENCH_PR3.txt bench-new.txt; \
	else \
		echo "benchstat not installed; skipping statistical summary"; \
	fi
	$(GO) run ./cmd/benchjson -compare -threshold $(BENCH_TOLERANCE) \
		-filter '^Benchmark(Subset|Equality|Superset|ExprPlanner|ExprStream|ExprLimit|ExprCSE)' BENCH_PR3.json bench-new.json

# Short coverage-guided runs of every fuzz target (go allows one -fuzz
# target per invocation): the expression-grammar round-trip fuzzer, the
# WAL replay/record fuzzers, and the vbyte codec fuzzers. The CI fuzz
# job uses the same invocations; corpus findings land in testdata and
# fail `make test` thereafter.
FUZZ_TIME ?= 10s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzParseExpr$$' -fuzztime $(FUZZ_TIME) ./setcontain
	$(GO) test -run '^$$' -fuzz '^FuzzReplaySegment$$' -fuzztime $(FUZZ_TIME) ./internal/wal
	$(GO) test -run '^$$' -fuzz '^FuzzRecordDecode$$' -fuzztime $(FUZZ_TIME) ./internal/wal
	$(GO) test -run '^$$' -fuzz '^FuzzUint32$$' -fuzztime $(FUZZ_TIME) ./internal/vbyte
	$(GO) test -run '^$$' -fuzz '^FuzzDecodePostings$$' -fuzztime $(FUZZ_TIME) ./internal/vbyte

lint:
	$(GOLANGCI) run ./...

# Verify relative markdown links in README.md, docs/, and the example
# READMEs resolve; the CI docs job runs this.
linkcheck:
	./scripts/linkcheck.sh

# The examples are the documentation's code snippets writ large: vet
# them explicitly so a drifting API fails the docs job, not a reader.
vet-examples:
	$(GO) vet ./examples/...

# Serve a demo dataset locally (see cmd/setcontaind -help for flags).
serve:
	$(GO) run ./cmd/setcontaind -synthetic 100000 -index sharded

# Durability end-to-end: build a synthetic index, snapshot, restore, and
# verify the restored instance's answer digest matches — per engine kind,
# clean and with pending inserts + tombstones. The CI matrix runs this.
snapshot-smoke:
	./scripts/snapshot-smoke.sh

# Durability under fire: start setcontaind with a write-ahead log, apply
# acknowledged mutations over HTTP, kill -9, restart, and verify every
# acknowledged write survived (then again across a checkpoint). The CI
# matrix runs this.
crash-smoke:
	./scripts/crash-smoke.sh

# Distribution end-to-end: two shard daemons plus a coordinator versus a
# single-node daemon on the same dataset — mixed query/expr/limit
# traffic must digest-compare identical (built, pending, merged), and
# killing one shard must surface a clean error naming it. The CI matrix
# runs this.
scatter-smoke:
	./scripts/scatter-smoke.sh

cover:
	$(GO) test -coverprofile=coverage.out $(COVER_PKGS)
	@$(GO) tool cover -func=coverage.out | awk -v floor=$(COVER_FLOOR) \
		'/^total:/ { seen = 1; sub(/%/, "", $$3); \
		 if ($$3 + 0 < floor) { printf "FAIL: coverage %.1f%% below floor %d%%\n", $$3, floor; exit 1 } \
		 else { printf "coverage %.1f%% (floor %d%%)\n", $$3, floor } } \
		 END { if (!seen) { print "FAIL: no coverage total (go tool cover failed?)"; exit 1 } }'

# Remove build/bench/coverage droppings (all of them .gitignore'd):
# bench-compare output, coverage profiles, locally built CLI binaries,
# and the cached fuzzing corpus.
clean:
	rm -f bench-new.json bench-new.txt coverage.out bench-output.txt
	rm -f oifbench oifquery setcontaind setgen benchjson
	$(GO) clean -fuzzcache

check: build vet test
