package repro

// Streaming-execution benchmarks: the three artifacts the streaming PR
// gates on. BenchmarkExprStream holds the streaming evaluator (AND-leg
// candidate pushdown through a persistent free list) to zero steady-
// state allocations against the materializing baseline.
// BenchmarkExprLimit measures LIMIT-driven early exit on an
// inverted-file index, where lazy posting cursors abandon the undecoded
// list tails after the first ids. BenchmarkExprCSE measures the
// cross-query subexpression cache on a micro-batch sharing a hot
// subtree, against answering the same batch one expression at a time.

import (
	"context"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/setcontain"
)

// streamBenchIndex builds a warm index of the given kind over the
// shared synthetic scale and splits its domain into hot and cold items
// by support.
func streamBenchIndex(b *testing.B, kind setcontain.Kind) (*setcontain.Index, []setcontain.Item, []setcontain.Item) {
	b.Helper()
	cfg := benchCfg()
	d, err := dataset.GenerateSynthetic(cfg.SyntheticDefaults())
	if err != nil {
		b.Fatal(err)
	}
	idx, err := setcontain.New(setcontain.WrapDataset(d),
		setcontain.WithKind(kind),
		setcontain.WithCachePages(hotPoolPages),
	)
	if err != nil {
		b.Fatal(err)
	}
	prof := idx.Supports()
	var order []setcontain.Item
	for it, n := range prof.PerItem {
		if n > 0 {
			order = append(order, setcontain.Item(it))
		}
	}
	if len(order) < 8 {
		b.Skip("domain too small at this scale")
	}
	sort.Slice(order, func(i, j int) bool { return prof.Support(order[i]) > prof.Support(order[j]) })
	return idx, order[:len(order)/10+1], order[len(order)*3/4:]
}

// BenchmarkExprStream compares the streaming evaluator to the
// materializing one on an AND workload whose second leg stays non-empty
// (a hot pair, not a cold triple), so the intersection is real work in
// both modes: the materializing path decodes the second leg's full list
// and intersects, the streaming path pushes the accumulator down as
// candidates and only confirms those. Both sub-benchmarks reuse one
// evaluator and one answer buffer — the streaming side's steady state
// must allocate nothing.
func BenchmarkExprStream(b *testing.B) {
	idx, hot, _ := streamBenchIndex(b, setcontain.OIF)
	rng := rand.New(rand.NewSource(43))
	exprs := make([]*setcontain.Expr, 64)
	plans := make([]*setcontain.ExprPlan, len(exprs))
	prof := idx.Supports()
	var err error
	for i := range exprs {
		a := hot[rng.Intn(len(hot))]
		c := hot[rng.Intn(len(hot)/2)]
		exprs[i] = setcontain.And(
			setcontain.ExprOf(setcontain.SubsetQuery([]setcontain.Item{a})),
			setcontain.ExprOf(setcontain.SubsetQuery([]setcontain.Item{c})),
		)
		if plans[i], err = setcontain.PlanExpr(exprs[i], prof); err != nil {
			b.Fatal(err)
		}
	}
	for _, mode := range []struct {
		name string
		mode setcontain.EvalMode
	}{
		{"streaming", setcontain.EvalAuto},
		{"materializing", setcontain.EvalMaterialize},
	} {
		b.Run(mode.name, func(b *testing.B) {
			ev := setcontain.NewEvaluator(mode.mode)
			dst := make([]uint32, 0, 4096)
			// Warm-up: touch every page, grow the free list and dst to
			// their high-water marks.
			for _, p := range plans {
				if dst, _, err = ev.EvalAppend(dst[:0], p, idx); err != nil {
					b.Fatal(err)
				}
			}
			var streamed, evaluated int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var st setcontain.ExprEvalStats
				if dst, st, err = ev.EvalAppend(dst[:0], plans[i%len(plans)], idx); err != nil {
					b.Fatal(err)
				}
				streamed += st.StreamedLeaves
				evaluated += st.EvaluatedLeaves
			}
			b.StopTimer()
			if evaluated > 0 {
				b.ReportMetric(float64(streamed)/float64(evaluated), "streamed-leaf-rate")
			}
		})
	}
}

// BenchmarkExprLimit measures LIMIT-driven early exit: an OR of hot
// subset leaves on an inverted-file index, answered limited (first 10
// ids through lazy posting cursors and the streaming union) and
// unlimited (every hot list decoded and merged). The limited/unlimited
// ratio is the early-exit artifact this PR gates on.
func BenchmarkExprLimit(b *testing.B) {
	idx, hot, _ := streamBenchIndex(b, setcontain.InvertedFile)
	rng := rand.New(rand.NewSource(44))
	exprs := make([]*setcontain.Expr, 64)
	plans := make([]*setcontain.ExprPlan, len(exprs))
	prof := idx.Supports()
	var err error
	for i := range exprs {
		kids := make([]*setcontain.Expr, 3)
		for j := range kids {
			kids[j] = setcontain.ExprOf(setcontain.SubsetQuery(
				[]setcontain.Item{hot[rng.Intn(len(hot))]}))
		}
		exprs[i] = setcontain.Or(kids...)
		if plans[i], err = setcontain.PlanExpr(exprs[i], prof); err != nil {
			b.Fatal(err)
		}
	}
	ev := setcontain.NewEvaluator(setcontain.EvalAuto)
	dst := make([]uint32, 0, 4096)
	for _, p := range plans {
		if dst, _, err = ev.EvalAppend(dst[:0], p, idx); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("limit10", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if dst, _, err = ev.EvalLimitAppend(dst[:0], plans[i%len(plans)], idx, 10); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if dst, _, err = ev.EvalAppend(dst[:0], plans[i%len(plans)], idx); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExprCSE measures the cross-query subexpression cache: a
// micro-batch of eight ORs sharing one hot AND subtree, answered as one
// ExecExprBatchAppend (the shared subtree evaluated once, seven cache
// hits) versus one ExecExprAppend per expression (the subtree
// re-evaluated every time). OR keeps the unshared legs cheap, so the
// shared work dominates and the batched/separate ratio is the cache's
// win.
func BenchmarkExprCSE(b *testing.B) {
	idx, hot, cold := streamBenchIndex(b, setcontain.OIF)
	store := setcontain.NewStore(idx, 0)
	shared := setcontain.And(
		setcontain.ExprOf(setcontain.SubsetQuery([]setcontain.Item{hot[0]})),
		setcontain.ExprOf(setcontain.SubsetQuery([]setcontain.Item{hot[1]})),
	)
	rng := rand.New(rand.NewSource(45))
	exprs := make([]*setcontain.Expr, 8)
	for i := range exprs {
		exprs[i] = setcontain.Or(shared, setcontain.ExprOf(setcontain.SubsetQuery(
			[]setcontain.Item{cold[rng.Intn(len(cold))]})))
	}
	ctx := context.Background()
	b.Run("batched", func(b *testing.B) {
		items := make([]setcontain.ExprBatchItem, len(exprs))
		dsts := make([][]uint32, len(exprs))
		for i := range dsts {
			dsts[i] = make([]uint32, 0, 4096)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range items {
				items[j] = setcontain.ExprBatchItem{Expr: exprs[j], Dst: dsts[j][:0]}
			}
			if _, err := store.ExecExprBatchAppend(ctx, items); err != nil {
				b.Fatal(err)
			}
			for j := range items {
				if items[j].Err != nil {
					b.Fatal(items[j].Err)
				}
				dsts[j] = items[j].Out
			}
		}
	})
	b.Run("separate", func(b *testing.B) {
		dst := make([]uint32, 0, 4096)
		var err error
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, e := range exprs {
				if dst, err = store.ExecExprAppend(ctx, dst[:0], e); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
