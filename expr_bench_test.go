package repro

// Expression-planner benchmarks: the cost-based rarest-first AND order
// against the naive left-to-right baseline, on the same skewed
// synthetic workload the hot-path benchmarks use. Every expression is
// written widest-leaf-first — a subset leaf on a hot item, then a
// subset leaf on three cold items whose conjunction is usually empty —
// so "naive" pays the hot list every time while "planned" reorders and
// short-circuits it away. The planned/naive ratio is the artifact the
// planner PR gates on.

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/setcontain"
)

// exprBenchFixture builds the warm-cache index plus the adversarial
// AND workload, planned once against the index's support profile (the
// Store caches that profile per generation; planning per query would
// re-sort the domain every time and measure the wrong thing).
func exprBenchFixture(b *testing.B) (*setcontain.Index, []*setcontain.Expr, []*setcontain.ExprPlan) {
	b.Helper()
	cfg := benchCfg()
	d, err := dataset.GenerateSynthetic(cfg.SyntheticDefaults())
	if err != nil {
		b.Fatal(err)
	}
	idx, err := setcontain.New(setcontain.WrapDataset(d),
		setcontain.WithKind(setcontain.OIF),
		setcontain.WithCachePages(hotPoolPages),
	)
	if err != nil {
		b.Fatal(err)
	}
	prof := idx.Supports()
	var order []setcontain.Item
	for it, n := range prof.PerItem {
		if n > 0 {
			order = append(order, setcontain.Item(it))
		}
	}
	if len(order) < 8 {
		b.Skip("domain too small at this scale")
	}
	sort.Slice(order, func(i, j int) bool { return prof.Support(order[i]) > prof.Support(order[j]) })
	hot, cold := order[:len(order)/10+1], order[len(order)*3/4:]

	rng := rand.New(rand.NewSource(42))
	exprs := make([]*setcontain.Expr, 64)
	plans := make([]*setcontain.ExprPlan, len(exprs))
	for i := range exprs {
		wide := setcontain.ExprOf(setcontain.SubsetQuery(
			[]setcontain.Item{hot[rng.Intn(len(hot))]}))
		rare := setcontain.ExprOf(setcontain.SubsetQuery(
			[]setcontain.Item{
				cold[rng.Intn(len(cold))],
				cold[rng.Intn(len(cold))],
				cold[rng.Intn(len(cold))],
			}))
		exprs[i] = setcontain.And(wide, rare)
		if plans[i], err = setcontain.PlanExpr(exprs[i], prof); err != nil {
			b.Fatal(err)
		}
	}
	return idx, exprs, plans
}

// BenchmarkExprPlanner measures planned vs naive evaluation of the
// adversarial AND workload; the "planned" sub-benchmark also reports
// what fraction of leaves the short-circuit skipped.
func BenchmarkExprPlanner(b *testing.B) {
	idx, exprs, plans := exprBenchFixture(b)

	b.Run("planned", func(b *testing.B) {
		// Warm-up pass: load every touched page and grow the answer
		// buffer to its high-water mark.
		dst := make([]uint32, 0, 1024)
		var err error
		for _, p := range plans {
			if dst, _, err = p.EvalAppend(dst[:0], idx); err != nil {
				b.Fatal(err)
			}
		}
		var evaluated, skipped int
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var st setcontain.ExprEvalStats
			if dst, st, err = plans[i%len(plans)].EvalAppend(dst[:0], idx); err != nil {
				b.Fatal(err)
			}
			evaluated += st.EvaluatedLeaves
			skipped += st.SkippedLeaves
		}
		b.StopTimer()
		if total := evaluated + skipped; total > 0 {
			b.ReportMetric(float64(skipped)/float64(total), "skipped-leaf-rate")
		}
	})

	b.Run("naive", func(b *testing.B) {
		var err error
		for _, e := range exprs {
			if _, err = e.Eval(idx); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err = exprs[i%len(exprs)].Eval(idx); err != nil {
				b.Fatal(err)
			}
		}
	})
}
