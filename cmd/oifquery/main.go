// Command oifquery builds a containment index over a dataset file and
// answers interactive queries. OIF, inverted-file, and sharded indexes
// can be snapshotted to disk and reloaded, skipping the build.
//
// Usage:
//
//	setgen -kind msweb -out data.txt
//	oifquery -data data.txt -index sharded -save idx.snap
//	oifquery -load idx.snap
//
// Then, on stdin (items are decimal ids):
//
//	subset 3 17        records containing both items
//	equality 3 17 29   records whose set is exactly {3,17,29}
//	superset 3 17 29   records contained in {3,17,29}
//	subset{3} and not superset{17 29}
//	                   boolean expression (setcontain.ParseExpr grammar),
//	                   answered through the cost-based planner
//	limit 10 EXPR      first 10 ids of EXPR's answer (early exit)
//	explain EXPR       print the planner's cost-ordered tree for EXPR
//	insert 3 17 29     add a record, print its id
//	delete 42          tombstone record 42
//	merge              fold pending inserts and tombstones to disk
//	digest             deterministic query sweep, print an answer hash
//	stats              cumulative page-access statistics
//	help, quit
//
// The digest command hashes the answers of a fixed query sweep, so two
// instances over the same logical collection — say, one built from the
// dataset and one restored from its snapshot — can be compared for
// byte-identical behaviour (make snapshot-smoke does exactly that).
package main

import (
	"bufio"
	"encoding/binary"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/wal"
	"repro/setcontain"
)

func main() {
	var (
		dataPath = flag.String("data", "", "dataset file")
		format   = flag.String("format", "text", "dataset format: text, or msweb (UCI Anonymous Microsoft Web Data)")
		replicas = flag.Int("replicas", 1, "replicate the dataset this many times (the paper uses 10 for msweb)")
		kindName = flag.String("index", "oif", "index kind: oif, if, ubt, or sharded")
		shards   = flag.Int("shards", 0, "shard count for -index sharded (0 = one per CPU)")
		maxShow  = flag.Int("maxshow", 20, "maximum record ids to print per answer")
		savePath = flag.String("save", "", "write an index snapshot here after building")
		loadPath = flag.String("load", "", "load an index snapshot instead of building from -data")
	)
	flag.Parse()
	if *dataPath == "" && *loadPath == "" {
		fmt.Fprintln(os.Stderr, "oifquery: one of -data or -load is required")
		flag.Usage()
		os.Exit(2)
	}
	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "oifquery: %v\n", err)
			os.Exit(1)
		}
		start := time.Now()
		idx, err := setcontain.Open(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "oifquery: load: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("loaded %s snapshot (%d records) in %v; type 'help' for commands\n",
			idx.Kind(), idx.NumRecords(), time.Since(start).Round(time.Millisecond))
		repl(idx, nil, *maxShow)
		return
	}
	kind, err := setcontain.ParseKind(*kindName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "oifquery: %v\n", err)
		os.Exit(2)
	}

	coll, err := loadCollection(*dataPath, *format, *replicas)
	if err != nil {
		fmt.Fprintf(os.Stderr, "oifquery: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("loaded %d records over %d items; building %s index...\n",
		coll.Len(), coll.DomainSize(), kind)
	start := time.Now()
	idx, err := setcontain.New(coll, setcontain.WithKind(kind), setcontain.WithShards(*shards))
	if err != nil {
		fmt.Fprintf(os.Stderr, "oifquery: build: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("built in %v; type 'help' for commands\n", time.Since(start).Round(time.Millisecond))
	if *savePath != "" {
		// Crash-atomic: the container lands under a temp name, is
		// fsynced, and renames into place — a crash mid-save can never
		// leave a torn snapshot where a good one (or nothing) was.
		err := wal.WriteFileAtomic(wal.OSFS{}, *savePath, func(w io.Writer) error {
			return idx.Save(w)
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "oifquery: save: %v\n", err)
			os.Exit(1)
		}
		info, _ := os.Stat(*savePath)
		fmt.Printf("snapshot written to %s (%d bytes)\n", *savePath, info.Size())
	}
	repl(idx, coll, *maxShow)
}

// repl runs the interactive loop; coll may be nil when loading snapshots.
func repl(idx *setcontain.Index, coll *setcontain.Collection, maxShow int) {
	_ = coll
	sc := bufio.NewScanner(os.Stdin)
	for fmt.Print("> "); sc.Scan(); fmt.Print("> ") {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		cmd := strings.ToLower(fields[0])
		switch cmd {
		case "quit", "exit":
			return
		case "help":
			fmt.Println("commands: subset ITEMS..., equality ITEMS..., superset ITEMS...,")
			fmt.Println("          insert ITEMS..., delete ID, merge, digest, stats, quit")
			fmt.Println("expressions: subset{1 2} and not superset{3}  (and/or/not, parens)")
			fmt.Println("          limit N EXPR answers only the first N ids (early exit)")
			fmt.Println("          explain EXPR prints the planner's cost-ordered tree")
		case "limit":
			if len(fields) < 3 {
				fmt.Println("usage: limit N EXPR")
				continue
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				fmt.Printf("bad limit %q (want a non-negative integer)\n", fields[1])
				continue
			}
			expr, err := setcontain.ParseExpr(strings.Join(fields[2:], " "))
			if err != nil {
				fmt.Println(err)
				continue
			}
			t0 := time.Now()
			ids, err := idx.EvalExprLimit(expr, n)
			if err != nil {
				fmt.Printf("%s: %v\n", expr, err)
				continue
			}
			show := ids
			if len(show) > maxShow {
				show = show[:maxShow]
			}
			fmt.Printf("%s limit %d: %d records in %v: %v", expr, n, len(ids), time.Since(t0).Round(time.Microsecond), show)
			if len(ids) > maxShow {
				fmt.Printf(" ... (+%d more)", len(ids)-maxShow)
			}
			fmt.Println()
		case "explain":
			expr, err := setcontain.ParseExpr(strings.Join(fields[1:], " "))
			if err != nil {
				fmt.Println(err)
				continue
			}
			plan, err := idx.PlanExpr(expr)
			if err != nil {
				fmt.Printf("explain: %v\n", err)
				continue
			}
			fmt.Printf("%s\n(%d records, theta %.3f)\n%s\n", expr, plan.NumRecords, plan.Theta, plan)
		case "insert":
			items, err := parseItems(fields[1:])
			if err != nil {
				fmt.Println(err)
				continue
			}
			id, err := idx.Insert(items)
			if err != nil {
				fmt.Printf("insert: %v\n", err)
				continue
			}
			fmt.Printf("inserted record %d (%d pending)\n", id, idx.PendingInserts())
		case "delete":
			if len(fields) != 2 {
				fmt.Println("usage: delete ID")
				continue
			}
			id, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				fmt.Printf("bad id %q\n", fields[1])
				continue
			}
			if err := idx.Delete(uint32(id)); err != nil {
				fmt.Printf("delete: %v\n", err)
				continue
			}
			fmt.Printf("deleted record %d (%d tombstoned)\n", id, idx.Deleted())
		case "merge":
			t0 := time.Now()
			if err := idx.MergeDelta(); err != nil {
				fmt.Printf("merge: %v\n", err)
				continue
			}
			fmt.Printf("merged in %v (%d records, %d tombstoned)\n",
				time.Since(t0).Round(time.Microsecond), idx.NumRecords(), idx.Deleted())
		case "digest":
			d, err := answerDigest(idx)
			if err != nil {
				fmt.Printf("digest: %v\n", err)
				continue
			}
			fmt.Printf("digest: %016x\n", d)
		case "stats":
			st := idx.CacheStats()
			fmt.Printf("page reads: %d (seq %d, near %d, random %d), cache hits: %d\n",
				st.PageReads, st.Sequential, st.Near, st.Random, st.Hits)
		case "subset", "equality", "superset":
			pred, err := setcontain.ParsePredicate(cmd)
			if err != nil {
				fmt.Println(err)
				continue
			}
			items, err := parseItems(fields[1:])
			if err != nil {
				fmt.Println(err)
				continue
			}
			q := setcontain.Query{Pred: pred, Items: items}
			t0 := time.Now()
			ids, err := idx.Eval(q)
			if err != nil {
				fmt.Printf("%s: %v\n", q, err)
				continue
			}
			show := ids
			if len(show) > maxShow {
				show = show[:maxShow]
			}
			fmt.Printf("%s: %d records in %v: %v", q, len(ids), time.Since(t0).Round(time.Microsecond), show)
			if len(ids) > maxShow {
				fmt.Printf(" ... (+%d more)", len(ids)-maxShow)
			}
			fmt.Println()
		default:
			// Anything else is tried as a boolean expression in the
			// ParseExpr grammar: `subset{3} and not superset{17}`. Lines
			// that don't even look like one (no brace anywhere) keep the
			// unknown-command hint; a malformed expression gets the
			// parser's positioned error.
			line := strings.TrimSpace(sc.Text())
			if !strings.Contains(line, "{") {
				fmt.Printf("unknown command %q (try 'help')\n", cmd)
				continue
			}
			expr, err := setcontain.ParseExpr(line)
			if err != nil {
				fmt.Println(err)
				continue
			}
			t0 := time.Now()
			ids, err := idx.EvalExpr(expr)
			if err != nil {
				fmt.Printf("%s: %v\n", expr, err)
				continue
			}
			show := ids
			if len(show) > maxShow {
				show = show[:maxShow]
			}
			fmt.Printf("%s: %d records in %v: %v", expr, len(ids), time.Since(t0).Round(time.Microsecond), show)
			if len(ids) > maxShow {
				fmt.Printf(" ... (+%d more)", len(ids)-maxShow)
			}
			fmt.Println()
		}
	}
}

// answerDigest runs a deterministic query sweep — 64 queries per
// predicate, items drawn from a fixed-seed RNG over the index's domain —
// and folds every answer id into an FNV-1a hash. Identical collections
// produce identical digests regardless of engine kind or whether the
// index was built or restored.
func answerDigest(idx *setcontain.Index) (uint64, error) {
	h := fnv.New64a()
	var word [8]byte
	domain := idx.Engine().DomainSize()
	if domain == 0 {
		return 0, fmt.Errorf("empty domain")
	}
	rng := rand.New(rand.NewSource(1))
	for _, pred := range []setcontain.Predicate{
		setcontain.PredicateSubset, setcontain.PredicateEquality, setcontain.PredicateSuperset,
	} {
		for i := 0; i < 64; i++ {
			k := 1 + rng.Intn(4)
			items := make([]setcontain.Item, k)
			for j := range items {
				items[j] = setcontain.Item(rng.Intn(domain))
			}
			ids, err := idx.Eval(setcontain.Query{Pred: pred, Items: items})
			if err != nil {
				return 0, err
			}
			binary.LittleEndian.PutUint64(word[:], uint64(len(ids))^uint64(pred)<<32)
			h.Write(word[:])
			for _, id := range ids {
				binary.LittleEndian.PutUint32(word[:4], id)
				h.Write(word[:4])
			}
		}
	}
	return h.Sum64(), nil
}

// loadCollection reads a dataset file in the requested format, applying
// replication for the paper's msweb methodology.
func loadCollection(path, format string, replicas int) (*setcontain.Collection, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch strings.ToLower(format) {
	case "text":
		return setcontain.ReadCollection(f)
	case "msweb":
		return setcontain.ReadMSWebCollection(f, replicas)
	default:
		return nil, fmt.Errorf("unknown format %q", format)
	}
}

func parseItems(fields []string) ([]setcontain.Item, error) {
	items := make([]setcontain.Item, 0, len(fields))
	for _, f := range fields {
		v, err := strconv.ParseUint(f, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad item %q", f)
		}
		items = append(items, setcontain.Item(v))
	}
	return items, nil
}
