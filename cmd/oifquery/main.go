// Command oifquery builds a containment index over a dataset file and
// answers interactive queries. OIF indexes can be snapshotted to disk and
// reloaded, skipping the build.
//
// Usage:
//
//	setgen -kind msweb -out data.txt
//	oifquery -data data.txt -index oif -save idx.oif
//	oifquery -load idx.oif
//
// Then, on stdin (items are decimal ids):
//
//	subset 3 17        records containing both items
//	equality 3 17 29   records whose set is exactly {3,17,29}
//	superset 3 17 29   records contained in {3,17,29}
//	stats              cumulative page-access statistics
//	help, quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/setcontain"
)

func main() {
	var (
		dataPath = flag.String("data", "", "dataset file")
		format   = flag.String("format", "text", "dataset format: text, or msweb (UCI Anonymous Microsoft Web Data)")
		replicas = flag.Int("replicas", 1, "replicate the dataset this many times (the paper uses 10 for msweb)")
		kindName = flag.String("index", "oif", "index kind: oif, if, ubt, or sharded")
		shards   = flag.Int("shards", 0, "shard count for -index sharded (0 = one per CPU)")
		maxShow  = flag.Int("maxshow", 20, "maximum record ids to print per answer")
		savePath = flag.String("save", "", "write an OIF snapshot here after building")
		loadPath = flag.String("load", "", "load an OIF snapshot instead of building from -data")
	)
	flag.Parse()
	if *dataPath == "" && *loadPath == "" {
		fmt.Fprintln(os.Stderr, "oifquery: one of -data or -load is required")
		flag.Usage()
		os.Exit(2)
	}
	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "oifquery: %v\n", err)
			os.Exit(1)
		}
		start := time.Now()
		idx, err := setcontain.LoadIndex(f, setcontain.Options{})
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "oifquery: load: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("loaded snapshot in %v; type 'help' for commands\n", time.Since(start).Round(time.Millisecond))
		repl(idx, nil, *maxShow)
		return
	}
	kind, err := setcontain.ParseKind(*kindName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "oifquery: %v\n", err)
		os.Exit(2)
	}

	coll, err := loadCollection(*dataPath, *format, *replicas)
	if err != nil {
		fmt.Fprintf(os.Stderr, "oifquery: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("loaded %d records over %d items; building %s index...\n",
		coll.Len(), coll.DomainSize(), kind)
	start := time.Now()
	idx, err := setcontain.New(coll, setcontain.WithKind(kind), setcontain.WithShards(*shards))
	if err != nil {
		fmt.Fprintf(os.Stderr, "oifquery: build: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("built in %v; type 'help' for commands\n", time.Since(start).Round(time.Millisecond))
	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "oifquery: %v\n", err)
			os.Exit(1)
		}
		if err := idx.Save(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "oifquery: save: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "oifquery: save: %v\n", err)
			os.Exit(1)
		}
		info, _ := os.Stat(*savePath)
		fmt.Printf("snapshot written to %s (%d bytes)\n", *savePath, info.Size())
	}
	repl(idx, coll, *maxShow)
}

// repl runs the interactive loop; coll may be nil when loading snapshots.
func repl(idx *setcontain.Index, coll *setcontain.Collection, maxShow int) {
	_ = coll
	sc := bufio.NewScanner(os.Stdin)
	for fmt.Print("> "); sc.Scan(); fmt.Print("> ") {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		cmd := strings.ToLower(fields[0])
		switch cmd {
		case "quit", "exit":
			return
		case "help":
			fmt.Println("commands: subset ITEMS..., equality ITEMS..., superset ITEMS..., stats, quit")
		case "stats":
			st := idx.CacheStats()
			fmt.Printf("page reads: %d (seq %d, near %d, random %d), cache hits: %d\n",
				st.PageReads, st.Sequential, st.Near, st.Random, st.Hits)
		case "subset", "equality", "superset":
			pred, err := setcontain.ParsePredicate(cmd)
			if err != nil {
				fmt.Println(err)
				continue
			}
			items, err := parseItems(fields[1:])
			if err != nil {
				fmt.Println(err)
				continue
			}
			q := setcontain.Query{Pred: pred, Items: items}
			t0 := time.Now()
			ids, err := idx.Eval(q)
			if err != nil {
				fmt.Printf("%s: %v\n", q, err)
				continue
			}
			show := ids
			if len(show) > maxShow {
				show = show[:maxShow]
			}
			fmt.Printf("%s: %d records in %v: %v", q, len(ids), time.Since(t0).Round(time.Microsecond), show)
			if len(ids) > maxShow {
				fmt.Printf(" ... (+%d more)", len(ids)-maxShow)
			}
			fmt.Println()
		default:
			fmt.Printf("unknown command %q (try 'help')\n", cmd)
		}
	}
}

// loadCollection reads a dataset file in the requested format, applying
// replication for the paper's msweb methodology.
func loadCollection(path, format string, replicas int) (*setcontain.Collection, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch strings.ToLower(format) {
	case "text":
		return setcontain.ReadCollection(f)
	case "msweb":
		return setcontain.ReadMSWebCollection(f, replicas)
	default:
		return nil, fmt.Errorf("unknown format %q", format)
	}
}

func parseItems(fields []string) ([]setcontain.Item, error) {
	items := make([]setcontain.Item, 0, len(fields))
	for _, f := range fields {
		v, err := strconv.ParseUint(f, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad item %q", f)
		}
		items = append(items, setcontain.Item(v))
	}
	return items, nil
}
