// Command setcontaind serves set-containment queries over HTTP: it
// indexes a dataset (a file in the text or msweb formats, or a
// generated skewed synthetic collection), wraps the index in a
// concurrency-safe Store, and answers remote clients through the
// serve package's micro-batching layer.
//
// Usage:
//
//	setcontaind -synthetic 100000 -index sharded -shards 4
//	setcontaind -data sets.txt -addr :8080
//	setcontaind -msweb anonymous-msweb.data -replicas 10
//	setcontaind -snapshot idx.snap
//
// With -snapshot the daemon boots from a snapshot container (written by
// POST /admin/snapshot, oifquery -save, or setcontain.Index.Save)
// instead of rebuilding from a raw dataset — the restart path for a
// warm production daemon.
//
// With -wal-dir the daemon is durable: every /admin/insert and
// /admin/delete is written to a write-ahead log in that directory and
// acknowledged only once durable per -fsync (always, interval, or os),
// and on restart the daemon restores the newest checkpoint snapshot and
// replays the log tail — an acknowledged write survives kill -9 and
// power loss (under -fsync always). The dataset/-snapshot flags seed
// the directory on first boot and are ignored afterwards; a checkpoint
// folds the log into a fresh snapshot automatically every
// -checkpoint-bytes of log, or on POST /admin/checkpoint.
//
//	setcontaind -synthetic 100000 -wal-dir /var/lib/setcontain -fsync always
//
// Endpoints: POST /query (batch, NDJSON answers), GET /query?q=…,
// GET /stream?q=… (flushed chunks), GET /stats, GET /healthz, plus the
// mutation surface POST /admin/{insert,delete,merge,snapshot,checkpoint}.
// Try it:
//
//	curl -sg 'localhost:8080/query?q=subset{3+17}'
//	curl -s -d '{"queries":[{"pred":"superset","items":[1,2,3]}]}' localhost:8080/query
//	curl -s -X POST localhost:8080/admin/snapshot -o idx.snap
//
// Load-test a running instance with
// `oifbench -experiment serve -addr http://localhost:8080`.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/dataset"
	"repro/internal/wal"
	"repro/setcontain"
	"repro/setcontain/serve"
)

func main() {
	var (
		addr = flag.String("addr", ":8080", "listen address")

		snapshot = flag.String("snapshot", "", "boot from this snapshot container instead of building from a dataset")

		data      = flag.String("data", "", "dataset file in the text format (one record per line)")
		msweb     = flag.String("msweb", "", "dataset file in the UCI msweb format")
		replicas  = flag.Int("replicas", 1, "msweb session replication factor (the paper uses 10)")
		synthetic = flag.Int("synthetic", 100000, "records of skewed synthetic data when no -data/-msweb is given")
		domain    = flag.Int("domain", 2000, "synthetic vocabulary size")
		zipf      = flag.Float64("zipf", 0.8, "synthetic Zipf exponent (the paper's default skew)")
		seed      = flag.Int64("seed", 1, "synthetic generator seed")

		index     = flag.String("index", "sharded", "index kind: oif, if, ubt, or sharded")
		shards    = flag.Int("shards", 0, "sharded partition count (0 = one per CPU, minimum 2)")
		pageSize  = flag.Int("pagesize", 0, "index page size in bytes (0 = 4096)")
		blockPost = flag.Int("blockpostings", 0, "postings per OIF/UBT block (0 = default 64; sharded plans per shard)")
		cache     = flag.Int("cachepages", 0, "page cache per pooled reader, in pages (0 = 32 KB)")
		decoded   = flag.Int("decodedcache", 0, "decoded-block cache per query handle, in postings (0 = default, <0 disables)")

		walDir     = flag.String("wal-dir", "", "write-ahead log directory; mutations become durable and restarts recover from it")
		fsync      = flag.String("fsync", "always", "WAL fsync policy: always (ack = durable), interval (background flush), or os (no fsync)")
		fsyncEvery = flag.Duration("fsync-interval", 0, "background flush period under -fsync interval (0 = 25ms)")
		walSegment = flag.Int64("wal-segment", 0, "WAL segment rotation threshold in bytes (0 = 4MB)")
		ckptBytes  = flag.Int64("checkpoint-bytes", 0, "log bytes between automatic checkpoints (0 = 64MB, negative disables)")

		maxBatch    = flag.Int("maxbatch", 0, "max queries per coalesced dispatch (0 = 64)")
		linger      = flag.Duration("linger", 0, "max wait to fill a batch (0 = 500µs, negative disables)")
		maxPending  = flag.Int("maxpending", 0, "admission bound on queued queries (0 = 4x maxbatch)")
		dispatchers = flag.Int("dispatchers", 0, "concurrent batch executors (0 = GOMAXPROCS)")
		chunk       = flag.Int("chunk", 0, "ids per NDJSON response line (0 = 4096)")
	)
	flag.Parse()

	build := func() *setcontain.Index {
		if *snapshot != "" {
			f, err := os.Open(*snapshot)
			if err != nil {
				log.Fatalf("setcontaind: %v", err)
			}
			restoreStart := time.Now()
			idx, err := setcontain.Open(f, setcontain.WithCachePages(*cache))
			f.Close()
			if err != nil {
				log.Fatalf("setcontaind: loading snapshot: %v", err)
			}
			log.Printf("restored %s index (%d records, %d pending, %d deleted) from %s in %v",
				idx.Kind(), idx.NumRecords(), idx.PendingInserts(), idx.Deleted(),
				*snapshot, time.Since(restoreStart).Round(time.Millisecond))
			return idx
		}
		coll, source, err := loadCollection(*data, *msweb, *replicas, *synthetic, *domain, *zipf, *seed)
		if err != nil {
			log.Fatalf("setcontaind: %v", err)
		}
		kind, err := setcontain.ParseKind(*index)
		if err != nil {
			log.Fatalf("setcontaind: %v", err)
		}

		buildStart := time.Now()
		idx, err := setcontain.New(coll,
			setcontain.WithKind(kind),
			setcontain.WithShards(*shards),
			setcontain.WithPageSize(*pageSize),
			setcontain.WithBlockPostings(*blockPost),
			setcontain.WithCachePages(*cache),
			setcontain.WithDecodedCache(*decoded),
		)
		if err != nil {
			log.Fatalf("setcontaind: building index: %v", err)
		}
		log.Printf("indexed %d records over %d items from %s: %s in %v",
			coll.Len(), coll.DomainSize(), source, kind, time.Since(buildStart).Round(time.Millisecond))
		return idx
	}

	var (
		idx     *setcontain.Index
		store   *setcontain.Store
		durable *setcontain.Durable
	)
	if *walDir != "" {
		policy, err := wal.ParseSyncPolicy(*fsync)
		if err != nil {
			log.Fatalf("setcontaind: %v", err)
		}
		dopts := setcontain.DurableOptions{
			CachePages:      *cache,
			SegmentBytes:    *walSegment,
			Sync:            policy,
			SyncEvery:       *fsyncEvery,
			CheckpointBytes: *ckptBytes,
			Logf:            log.Printf,
		}
		openStart := time.Now()
		durable, err = setcontain.OpenDurable(*walDir, dopts)
		switch {
		case err == nil:
			st := durable.Stats()
			log.Printf("recovered %s index (%d records) from %s in %v: checkpoint lsn %d, %d log records replayed",
				durable.Index().Kind(), durable.Index().NumRecords(), *walDir,
				time.Since(openStart).Round(time.Millisecond), st.CheckpointLSN, st.Replay.Records)
		case errors.Is(err, setcontain.ErrNoCheckpoint):
			// First boot: seed the WAL directory from the dataset flags.
			durable, err = setcontain.NewDurable(*walDir, build(), dopts)
			if err != nil {
				log.Fatalf("setcontaind: initializing %s: %v", *walDir, err)
			}
			log.Printf("initialized durable index in %s (fsync %s)", *walDir, policy)
		default:
			log.Fatalf("setcontaind: opening %s: %v", *walDir, err)
		}
		idx = durable.Index()
		store = durable.Store()
	} else {
		idx = build()
		store = setcontain.NewStore(idx, *cache)
	}
	for _, p := range setcontain.ShardPlans(idx.Engine()) {
		log.Printf("shard %d: %s, %d records, theta %.2f", p.Shard, p.Kind, p.Records, p.Theta)
	}

	sv := serve.NewServer(idx, store, serve.Config{
		MaxBatch:    *maxBatch,
		MaxLinger:   *linger,
		MaxPending:  *maxPending,
		Dispatchers: *dispatchers,
		ChunkIDs:    *chunk,
		Durable:     durable,
	})
	defer sv.Close()

	hs := &http.Server{Addr: *addr, Handler: sv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Shutdown closes the listener (ListenAndServe returns immediately)
	// and then drains in-flight connections; main must wait for the
	// drain before closing the batcher, or live queries die mid-answer.
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			log.Printf("setcontaind: shutdown: %v", err)
		}
	}()

	log.Printf("serving on %s (POST /query, GET /query?q=…, /stream, /stats, /healthz, /admin/*)", *addr)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("setcontaind: %v", err)
	}
	stop()
	<-drained
	if durable != nil {
		// Flush the log's unsynced tail so even -fsync interval/os lose
		// nothing on a graceful shutdown.
		if err := durable.Close(); err != nil {
			log.Printf("setcontaind: closing WAL: %v", err)
		}
	}
	log.Printf("shut down cleanly")
}

// loadCollection resolves the dataset flags to an indexed collection
// and a human-readable source description.
func loadCollection(data, msweb string, replicas, synthetic, domain int, zipf float64, seed int64) (*setcontain.Collection, string, error) {
	switch {
	case data != "" && msweb != "":
		return nil, "", errors.New("-data and -msweb are mutually exclusive")
	case data != "":
		f, err := os.Open(data)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		coll, err := setcontain.ReadCollection(f)
		return coll, data, err
	case msweb != "":
		f, err := os.Open(msweb)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		coll, err := setcontain.ReadMSWebCollection(f, replicas)
		return coll, fmt.Sprintf("%s (x%d)", msweb, replicas), err
	default:
		d, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
			NumRecords: synthetic,
			DomainSize: domain,
			MinLen:     2,
			MaxLen:     16,
			ZipfTheta:  zipf,
			Seed:       seed,
		})
		if err != nil {
			return nil, "", err
		}
		src := fmt.Sprintf("synthetic (|D|=%d, domain %d, zipf %.2f, seed %d)", synthetic, domain, zipf, seed)
		return setcontain.WrapDataset(d), src, nil
	}
}
