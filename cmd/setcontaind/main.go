// Command setcontaind serves set-containment queries over HTTP: it
// indexes a dataset (a file in the text or msweb formats, or a
// generated skewed synthetic collection), wraps the index in a
// concurrency-safe Store, and answers remote clients through the
// serve package's micro-batching layer.
//
// Usage:
//
//	setcontaind -synthetic 100000 -index sharded -shards 4
//	setcontaind -data sets.txt -addr :8080
//	setcontaind -msweb anonymous-msweb.data -replicas 10
//	setcontaind -snapshot idx.snap
//
// With -snapshot the daemon boots from a snapshot container (written by
// POST /admin/snapshot, oifquery -save, or setcontain.Index.Save)
// instead of rebuilding from a raw dataset — the restart path for a
// warm production daemon.
//
// With -wal-dir the daemon is durable: every /admin/insert and
// /admin/delete is written to a write-ahead log in that directory and
// acknowledged only once durable per -fsync (always, interval, or os),
// and on restart the daemon restores the newest checkpoint snapshot and
// replays the log tail — an acknowledged write survives kill -9 and
// power loss (under -fsync always). The dataset/-snapshot flags seed
// the directory on first boot and are ignored afterwards; a checkpoint
// folds the log into a fresh snapshot automatically every
// -checkpoint-bytes of log, or on POST /admin/checkpoint.
//
//	setcontaind -synthetic 100000 -wal-dir /var/lib/setcontain -fsync always
//
// The daemon also runs distributed. A shard daemon holds one slice of a
// round-robin partition; a coordinator fans queries out to shard
// daemons over the /shard/* wire protocol and merges their answers:
//
//	setcontaind -addr :8081 -synthetic 100000 -shard-of 0 -shard-count 2 -index oif
//	setcontaind -addr :8082 -synthetic 100000 -shard-of 1 -shard-count 2 -index oif
//	setcontaind -addr :8080 -coordinator http://localhost:8081,http://localhost:8082
//
// Every shard daemon must load the same dataset flags (or its own split
// snapshot); -shard-of keeps only the records the round-robin scheme
// routes to that shard. -split-snapshot decomposes a coordinator (or
// any sharded) snapshot into per-shard snapshot files that shard
// daemons boot from directly:
//
//	setcontaind -snapshot idx.snap -split-snapshot shards/
//	setcontaind -addr :8081 -snapshot shards/shard-000.snap
//
// Endpoints: POST /query (batch, NDJSON answers), GET /query?q=…,
// GET /stream?q=… (flushed chunks), GET /stats, GET /healthz, the
// mutation surface POST /admin/{insert,delete,merge,snapshot,checkpoint},
// and the shard wire protocol /shard/{info,supports,query,insert,delete,
// merge,snapshot}. Try it:
//
//	curl -sg 'localhost:8080/query?q=subset{3+17}'
//	curl -s -d '{"queries":[{"pred":"superset","items":[1,2,3]}]}' localhost:8080/query
//	curl -s -X POST localhost:8080/admin/snapshot -o idx.snap
//
// Load-test a running instance with
// `oifbench -experiment serve -addr http://localhost:8080`.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/dataset"
	"repro/internal/wal"
	"repro/setcontain"
	"repro/setcontain/serve"
)

func main() {
	var (
		addr = flag.String("addr", ":8080", "listen address")

		snapshot = flag.String("snapshot", "", "boot from this snapshot container instead of building from a dataset")

		shardOf     = flag.Int("shard-of", -1, "serve only this shard of a -shard-count way round-robin partition of the dataset")
		shardCount  = flag.Int("shard-count", 0, "total shards in the partition this daemon is one slice of (with -shard-of)")
		coordinator = flag.String("coordinator", "", "comma-separated shard daemon base URLs to coordinate instead of holding data locally")
		splitSnap   = flag.String("split-snapshot", "", "split the -snapshot sharded container into per-shard snapshots in this directory, then exit")

		data      = flag.String("data", "", "dataset file in the text format (one record per line)")
		msweb     = flag.String("msweb", "", "dataset file in the UCI msweb format")
		replicas  = flag.Int("replicas", 1, "msweb session replication factor (the paper uses 10)")
		synthetic = flag.Int("synthetic", 100000, "records of skewed synthetic data when no -data/-msweb is given")
		domain    = flag.Int("domain", 2000, "synthetic vocabulary size")
		zipf      = flag.Float64("zipf", 0.8, "synthetic Zipf exponent (the paper's default skew)")
		seed      = flag.Int64("seed", 1, "synthetic generator seed")

		index     = flag.String("index", "sharded", "index kind: oif, if, ubt, or sharded")
		shards    = flag.Int("shards", 0, "sharded partition count (0 = one per CPU, minimum 2)")
		pageSize  = flag.Int("pagesize", 0, "index page size in bytes (0 = 4096)")
		blockPost = flag.Int("blockpostings", 0, "postings per OIF/UBT block (0 = default 64; sharded plans per shard)")
		cache     = flag.Int("cachepages", 0, "page cache per pooled reader, in pages (0 = 32 KB)")
		decoded   = flag.Int("decodedcache", 0, "decoded-block cache per query handle, in postings (0 = default, <0 disables)")

		walDir     = flag.String("wal-dir", "", "write-ahead log directory; mutations become durable and restarts recover from it")
		fsync      = flag.String("fsync", "always", "WAL fsync policy: always (ack = durable), interval (background flush), or os (no fsync)")
		fsyncEvery = flag.Duration("fsync-interval", 0, "background flush period under -fsync interval (0 = 25ms)")
		walSegment = flag.Int64("wal-segment", 0, "WAL segment rotation threshold in bytes (0 = 4MB)")
		ckptBytes  = flag.Int64("checkpoint-bytes", 0, "log bytes between automatic checkpoints (0 = 64MB, negative disables)")

		maxBatch    = flag.Int("maxbatch", 0, "max queries per coalesced dispatch (0 = 64)")
		linger      = flag.Duration("linger", 0, "max wait to fill a batch (0 = 500µs, negative disables)")
		maxPending  = flag.Int("maxpending", 0, "admission bound on queued queries (0 = 4x maxbatch)")
		dispatchers = flag.Int("dispatchers", 0, "concurrent batch executors (0 = GOMAXPROCS)")
		chunk       = flag.Int("chunk", 0, "ids per NDJSON response line (0 = 4096)")
	)
	flag.Parse()

	if *splitSnap != "" {
		if *snapshot == "" {
			log.Fatalf("setcontaind: -split-snapshot needs -snapshot naming the sharded container to split")
		}
		splitSnapshot(*snapshot, *splitSnap)
		return
	}
	if *shardOf >= 0 && (*shardCount < 1 || *shardOf >= *shardCount) {
		log.Fatalf("setcontaind: -shard-of %d needs -shard-count > %d", *shardOf, *shardOf)
	}

	build := func() *setcontain.Index {
		if *snapshot != "" {
			f, err := os.Open(*snapshot)
			if err != nil {
				log.Fatalf("setcontaind: %v", err)
			}
			restoreStart := time.Now()
			idx, err := setcontain.Open(f, setcontain.WithCachePages(*cache))
			f.Close()
			if err != nil {
				log.Fatalf("setcontaind: loading snapshot: %v", err)
			}
			log.Printf("restored %s index (%d records, %d pending, %d deleted) from %s in %v",
				idx.Kind(), idx.NumRecords(), idx.PendingInserts(), idx.Deleted(),
				*snapshot, time.Since(restoreStart).Round(time.Millisecond))
			return idx
		}
		coll, source, err := loadCollection(*data, *msweb, *replicas, *synthetic, *domain, *zipf, *seed)
		if err != nil {
			log.Fatalf("setcontaind: %v", err)
		}
		if *shardOf >= 0 {
			// A shard daemon loads the full dataset and keeps only the
			// records the partitioner routes here, re-numbered into this
			// shard's local id space — exactly the slice an in-process
			// sharded build would hand this shard.
			coll, err = shardSlice(coll, *shardOf, *shardCount)
			if err != nil {
				log.Fatalf("setcontaind: %v", err)
			}
			source = fmt.Sprintf("%s [shard %d/%d]", source, *shardOf, *shardCount)
		}
		kind, err := setcontain.ParseKind(*index)
		if err != nil {
			log.Fatalf("setcontaind: %v", err)
		}

		buildStart := time.Now()
		idx, err := setcontain.New(coll,
			setcontain.WithKind(kind),
			setcontain.WithShards(*shards),
			setcontain.WithPageSize(*pageSize),
			setcontain.WithBlockPostings(*blockPost),
			setcontain.WithCachePages(*cache),
			setcontain.WithDecodedCache(*decoded),
		)
		if err != nil {
			log.Fatalf("setcontaind: building index: %v", err)
		}
		log.Printf("indexed %d records over %d items from %s: %s in %v",
			coll.Len(), coll.DomainSize(), source, kind, time.Since(buildStart).Round(time.Millisecond))
		return idx
	}

	var (
		idx     *setcontain.Index
		store   *setcontain.Store
		durable *setcontain.Durable
	)
	if *coordinator != "" {
		if *walDir != "" {
			log.Fatalf("setcontaind: -coordinator forwards mutations to the shard daemons; attach -wal-dir to them, not to the coordinator")
		}
		urls := splitURLs(*coordinator)
		if len(urls) == 0 {
			log.Fatalf("setcontaind: -coordinator carries no shard URLs")
		}
		dialCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		var err error
		idx, err = setcontain.ConnectShards(dialCtx, urls)
		cancel()
		if err != nil {
			log.Fatalf("setcontaind: connecting shards: %v", err)
		}
		store = setcontain.NewStore(idx, *cache)
		log.Printf("coordinating %d remote shards: %d records over %d items",
			len(urls), idx.NumRecords(), idx.Engine().DomainSize())
	} else if *walDir != "" {
		policy, err := wal.ParseSyncPolicy(*fsync)
		if err != nil {
			log.Fatalf("setcontaind: %v", err)
		}
		dopts := setcontain.DurableOptions{
			CachePages:      *cache,
			SegmentBytes:    *walSegment,
			Sync:            policy,
			SyncEvery:       *fsyncEvery,
			CheckpointBytes: *ckptBytes,
			Logf:            log.Printf,
		}
		openStart := time.Now()
		durable, err = setcontain.OpenDurable(*walDir, dopts)
		switch {
		case err == nil:
			st := durable.Stats()
			log.Printf("recovered %s index (%d records) from %s in %v: checkpoint lsn %d, %d log records replayed",
				durable.Index().Kind(), durable.Index().NumRecords(), *walDir,
				time.Since(openStart).Round(time.Millisecond), st.CheckpointLSN, st.Replay.Records)
		case errors.Is(err, setcontain.ErrNoCheckpoint):
			// First boot: seed the WAL directory from the dataset flags.
			durable, err = setcontain.NewDurable(*walDir, build(), dopts)
			if err != nil {
				log.Fatalf("setcontaind: initializing %s: %v", *walDir, err)
			}
			log.Printf("initialized durable index in %s (fsync %s)", *walDir, policy)
		default:
			log.Fatalf("setcontaind: opening %s: %v", *walDir, err)
		}
		idx = durable.Index()
		store = durable.Store()
	} else {
		idx = build()
		store = setcontain.NewStore(idx, *cache)
	}
	for _, p := range setcontain.ShardPlans(idx.Engine()) {
		log.Printf("shard %d: %s, %d records, theta %.2f", p.Shard, p.Kind, p.Records, p.Theta)
	}

	sv := serve.NewServer(idx, store, serve.Config{
		MaxBatch:    *maxBatch,
		MaxLinger:   *linger,
		MaxPending:  *maxPending,
		Dispatchers: *dispatchers,
		ChunkIDs:    *chunk,
		Durable:     durable,
	})
	defer sv.Close()

	hs := &http.Server{Addr: *addr, Handler: sv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Shutdown closes the listener (ListenAndServe returns immediately)
	// and then drains in-flight connections; main must wait for the
	// drain before closing the batcher, or live queries die mid-answer.
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			log.Printf("setcontaind: shutdown: %v", err)
		}
	}()

	log.Printf("serving on %s (POST /query, GET /query?q=…, /stream, /stats, /healthz, /admin/*)", *addr)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("setcontaind: %v", err)
	}
	stop()
	<-drained
	if durable != nil {
		// Flush the log's unsynced tail so even -fsync interval/os lose
		// nothing on a graceful shutdown.
		if err := durable.Close(); err != nil {
			log.Printf("setcontaind: closing WAL: %v", err)
		}
	}
	log.Printf("shut down cleanly")
}

// shardSlice keeps only the records the round-robin partitioner routes
// to shard, re-numbered into the shard's local id space. The returned
// collection's id i is global id (i-1)*count + shard + 1 — the mapping
// a coordinator's Partitioner applies when merging this shard's
// answers.
func shardSlice(coll *setcontain.Collection, shard, count int) (*setcontain.Collection, error) {
	part := setcontain.NewRoundRobinPartitioner(count)
	out := setcontain.NewCollection(coll.DomainSize())
	for g := uint32(1); g <= uint32(coll.Len()); g++ {
		s, local := part.Locate(g)
		if s != shard {
			continue
		}
		set, err := coll.Record(g)
		if err != nil {
			return nil, err
		}
		id, err := out.Add(set)
		if err != nil {
			return nil, fmt.Errorf("shard slice: record %d: %w", g, err)
		}
		if id != local {
			return nil, fmt.Errorf("shard slice: record %d landed at local id %d, partitioner says %d", g, id, local)
		}
	}
	return out, nil
}

// splitURLs parses the -coordinator flag: comma-separated base URLs,
// blanks tolerated.
func splitURLs(s string) []string {
	var urls []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	return urls
}

// splitSnapshot decomposes a sharded snapshot container into one
// bootable single-engine snapshot file per shard (shard-000.snap, …)
// in dir.
func splitSnapshot(path, dir string) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatalf("setcontaind: %v", err)
	}
	defer f.Close()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatalf("setcontaind: %v", err)
	}
	err = setcontain.SplitSnapshot(f, func(s int, plan setcontain.ShardPlan, frame io.Reader) error {
		name := filepath.Join(dir, fmt.Sprintf("shard-%03d.snap", s))
		out, err := os.Create(name)
		if err != nil {
			return err
		}
		n, err := io.Copy(out, frame)
		if cerr := out.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		log.Printf("shard %d: %s, %d records, %d bytes -> %s", s, plan.Kind, plan.Records, n, name)
		return nil
	})
	if err != nil {
		log.Fatalf("setcontaind: %v", err)
	}
}

// loadCollection resolves the dataset flags to an indexed collection
// and a human-readable source description.
func loadCollection(data, msweb string, replicas, synthetic, domain int, zipf float64, seed int64) (*setcontain.Collection, string, error) {
	switch {
	case data != "" && msweb != "":
		return nil, "", errors.New("-data and -msweb are mutually exclusive")
	case data != "":
		f, err := os.Open(data)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		coll, err := setcontain.ReadCollection(f)
		return coll, data, err
	case msweb != "":
		f, err := os.Open(msweb)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		coll, err := setcontain.ReadMSWebCollection(f, replicas)
		return coll, fmt.Sprintf("%s (x%d)", msweb, replicas), err
	default:
		d, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
			NumRecords: synthetic,
			DomainSize: domain,
			MinLen:     2,
			MaxLen:     16,
			ZipfTheta:  zipf,
			Seed:       seed,
		})
		if err != nil {
			return nil, "", err
		}
		src := fmt.Sprintf("synthetic (|D|=%d, domain %d, zipf %.2f, seed %d)", synthetic, domain, zipf, seed)
		return setcontain.WrapDataset(d), src, nil
	}
}
