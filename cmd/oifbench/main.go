// Command oifbench regenerates the paper's evaluation artefacts (Figures
// 7-10, the space-overhead comparison, the ordering ablation, and the
// query/update performance summary) at a configurable fraction of the
// paper's data sizes.
//
// Usage:
//
//	oifbench -experiment all -scale 0.01
//	oifbench -experiment fig9 -scale 0.1 -queries 10
//
// At -scale 1 the synthetic sweeps use the paper's full |D| (up to 50M
// records); the default 0.01 preserves every comparison's shape on a
// laptop. See EXPERIMENTS.md for recorded runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/workload"
	"repro/setcontain"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "one of: all (= every paper artefact: fig7-fig10, space, ordering, summary, ablations), concurrency (extra-paper Store sweep), sharding (Sharded engine scale-out sweep), serve (HTTP serving-layer load sweep), restore (snapshot save/load round-trip timing), recovery (WAL ack latency per fsync policy + crash-replay timing), or planner (boolean-expression planner vs naive left-to-right baseline)")
		engine     = flag.String("engine", "oif", "engine for -experiment concurrency: oif, if, ubt, or sharded")
		workers    = flag.Int("workers", 8, "max goroutines for -experiment concurrency (swept 1,2,4,...), the -experiment sharding query load, and the -experiment serve client sweep")
		addr       = flag.String("addr", "", "for -experiment serve: a live setcontaind base URL (empty starts an in-process server)")
		shards     = flag.Int("shards", 8, "max shard count for -experiment sharding (swept 1,2,4,...)")
		transport  = flag.String("transport", "engine", "for -experiment sharding: engine (direct), inproc (ShardClient layer), or http (per-shard HTTP daemons)")
		rounds     = flag.Int("rounds", 5, "workload repetitions for -experiment planner")
		scale      = flag.Float64("scale", 0.01, "fraction of the paper's synthetic |D| (1.0 = paper scale)")
		realScale  = flag.Float64("realscale", 0.1, "fraction of the real-dataset twins' record counts")
		queries    = flag.Int("queries", 10, "queries per size and type (the paper uses 10)")
		seed       = flag.Int64("seed", 1, "random seed for datasets and workloads")
		pageSize   = flag.Int("pagesize", 4096, "index page size in bytes")
		blockPost  = flag.Int("blockpostings", 64, "postings per OIF/UBT block")
		poolPages  = flag.Int("poolpages", 8, "query cache size in pages (8 x 4 KB = the paper's 32 KB)")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig(os.Stdout)
	cfg.Scale = *scale
	cfg.RealScale = *realScale
	cfg.QueriesPerSize = *queries
	cfg.Seed = *seed
	cfg.PageSize = *pageSize
	cfg.BlockPostings = *blockPost
	cfg.PoolPages = *poolPages

	start := time.Now()
	var err error
	switch *experiment {
	case "all":
		err = experiments.RunAll(cfg)
	case "fig7":
		_, err = experiments.RunFig7(cfg)
	case "fig8":
		_, err = experiments.RunSyntheticFigure(cfg, workload.Subset)
	case "fig9":
		_, err = experiments.RunSyntheticFigure(cfg, workload.Equality)
	case "fig10":
		_, err = experiments.RunSyntheticFigure(cfg, workload.Superset)
	case "space":
		_, err = experiments.RunSpace(cfg)
	case "ordering":
		_, err = experiments.RunOrdering(cfg)
	case "summary":
		_, err = experiments.RunSummary(cfg)
	case "ablations":
		_, err = experiments.RunAblations(cfg)
	case "concurrency":
		var kind setcontain.Kind
		kind, err = setcontain.ParseKind(*engine)
		if err != nil {
			fmt.Fprintf(os.Stderr, "oifbench: %v\n", err)
			os.Exit(2)
		}
		_, err = experiments.RunConcurrency(cfg, kind, *workers)
	case "sharding":
		_, err = experiments.RunSharding(cfg, *shards, *workers, *transport)
	case "serve":
		_, err = experiments.RunServe(cfg, *workers, *addr)
	case "restore":
		_, err = experiments.RunRestore(cfg)
	case "recovery":
		_, err = experiments.RunRecovery(cfg)
	case "planner":
		_, err = experiments.RunPlanner(cfg, *rounds)
	default:
		fmt.Fprintf(os.Stderr, "oifbench: unknown experiment %q\n", *experiment)
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "oifbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\ncompleted in %v\n", time.Since(start).Round(time.Millisecond))
}
