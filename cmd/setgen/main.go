// Command setgen generates set-valued datasets in the repository's text
// format: the paper's synthetic Zipfian collections or the statistical
// twins of the UCI msweb/msnbc logs it evaluates on.
//
// Usage:
//
//	setgen -kind synthetic -records 100000 -domain 2000 -zipf 0.8 > data.txt
//	setgen -kind msweb -out msweb.txt
//	setgen -kind msnbc -records 50000 -out msnbc.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/dataset"
)

func main() {
	var (
		kind    = flag.String("kind", "synthetic", "synthetic, msweb, or msnbc")
		records = flag.Int("records", 100000, "number of records (base records for msweb)")
		domain  = flag.Int("domain", 2000, "vocabulary size (synthetic only)")
		zipf    = flag.Float64("zipf", 0.8, "Zipf order of the item distribution (synthetic only)")
		minLen  = flag.Int("minlen", 2, "minimum record cardinality (synthetic only)")
		maxLen  = flag.Int("maxlen", 20, "maximum record cardinality (synthetic only)")
		seed    = flag.Int64("seed", 1, "random seed")
		outPath = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	var (
		d   *dataset.Dataset
		err error
	)
	switch *kind {
	case "synthetic":
		d, err = dataset.GenerateSynthetic(dataset.SyntheticConfig{
			NumRecords: *records,
			DomainSize: *domain,
			MinLen:     *minLen,
			MaxLen:     *maxLen,
			ZipfTheta:  *zipf,
			Seed:       *seed,
		})
	case "msweb":
		cfg := dataset.DefaultMSWeb()
		cfg.Seed = *seed
		if flag.Lookup("records").Value.String() != "100000" {
			cfg.BaseRecords = *records
		}
		d, err = dataset.GenerateMSWeb(cfg)
	case "msnbc":
		cfg := dataset.DefaultMSNBC()
		cfg.Seed = *seed
		if flag.Lookup("records").Value.String() != "100000" {
			cfg.NumRecords = *records
		}
		d, err = dataset.GenerateMSNBC(cfg)
	default:
		fmt.Fprintf(os.Stderr, "setgen: unknown kind %q\n", *kind)
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "setgen: %v\n", err)
		os.Exit(1)
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "setgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	if err := dataset.Write(out, d); err != nil {
		fmt.Fprintf(os.Stderr, "setgen: %v\n", err)
		os.Exit(1)
	}
	st := d.ComputeStats()
	fmt.Fprintf(os.Stderr, "setgen: wrote %d records, domain %d, avg cardinality %.2f\n",
		st.NumRecords, st.DomainSize, st.AvgCardinal)
}
