// Command benchjson converts `go test -bench` output into a
// standardized JSON document and compares two such documents for
// regressions.
//
// Convert (reads bench output on stdin, writes JSON on stdout):
//
//	go test -run '^$' -bench=. -benchtime=100x ./... | benchjson > BENCH_PR3.json
//
// Compare (exit status 1 when any matching benchmark's ns/op regressed
// beyond the threshold):
//
//	benchjson -compare -threshold 10 -filter '^Benchmark(Subset|Equality|Superset)' BENCH_PR3.json bench-new.json
//
// The JSON schema is the contract the CI bench-smoke job and `make
// bench-compare` share: every benchmark carries its full metric row
// (ns/op, B/op, allocs/op, and custom ReportMetric units such as
// pages/op, decoded-hit-rate, and the durability path's restore_ms/op
// and snapshot_bytes from BenchmarkSnapshotRestore), so regressions in
// any dimension can be diffed from per-SHA artifacts.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Report is the top-level BENCH_PR3.json document.
type Report struct {
	Schema     string      `json:"schema"` // "setcontain-bench/v1"
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"` // last pkg header seen
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one benchmark result line.
type Benchmark struct {
	Name       string             `json:"name"`            // without the -N procs suffix
	Procs      int                `json:"procs,omitempty"` // GOMAXPROCS suffix (absent on single-CPU runs)
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	Samples    int                `json:"samples,omitempty"` // -count runs folded into this entry
	Metrics    map[string]float64 `json:"metrics"`           // unit -> value (ns/op, allocs/op, ...)
}

func main() {
	compare := flag.Bool("compare", false, "compare two JSON reports instead of converting")
	threshold := flag.Float64("threshold", 10, "ns/op regression threshold in percent (compare mode)")
	filter := flag.String("filter", "", "regexp of benchmark names to compare (empty = all)")
	flag.Parse()

	if *compare {
		args := flag.Args()
		if len(args) != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -compare old.json new.json [-threshold pct] [-filter re]")
			os.Exit(2)
		}
		os.Exit(runCompare(args[0], args[1], *threshold, *filter))
	}
	report, err := parseBench(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// benchLine matches "BenchmarkName-8   	 100	  123 ns/op	 4 B/op ...".
var benchLine = regexp.MustCompile(`^(Benchmark\S*?)(?:-(\d+))?\s+(\d+)\s+(.*)$`)

func parseBench(sc *bufio.Scanner) (*Report, error) {
	r := &Report{Schema: "setcontain-bench/v1"}
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			r.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			r.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
			r.Pkg = pkg
			continue
		case strings.HasPrefix(line, "cpu: "):
			r.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		b := Benchmark{Name: m[1], Package: pkg, Metrics: map[string]float64{}}
		if m[2] != "" {
			b.Procs, _ = strconv.Atoi(m[2])
		}
		iters, err := strconv.ParseInt(m[3], 10, 64)
		if err != nil {
			continue
		}
		b.Iterations = iters
		fields := strings.Fields(m[4])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			b.Metrics[fields[i+1]] = v
		}
		if len(b.Metrics) == 0 {
			continue
		}
		b.Samples = 1
		r.Benchmarks = append(r.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(r.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found on stdin")
	}
	r.Benchmarks = foldSamples(r.Benchmarks)
	return r, nil
}

// foldSamples collapses repeated runs of the same benchmark (go test
// -count=N) into one entry holding the fastest sample's metric row —
// the minimum ns/op is the standard noise-robust statistic for
// regression gating on machines with background load.
func foldSamples(in []Benchmark) []Benchmark {
	index := map[string]int{}
	out := in[:0]
	for _, b := range in {
		key := b.Package + "\x00" + b.Name
		if i, ok := index[key]; ok {
			prev := &out[i]
			prev.Samples += b.Samples
			if b.Metrics["ns/op"] < prev.Metrics["ns/op"] {
				prev.Iterations = b.Iterations
				prev.Metrics = b.Metrics
			}
			continue
		}
		index[key] = len(out)
		out = append(out, b)
	}
	return out
}

func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// runCompare diffs new against old on ns/op and returns the process
// exit status: 0 when every matched benchmark is within threshold, 1
// otherwise.
func runCompare(oldPath, newPath string, threshold float64, filter string) int {
	oldR, err := loadReport(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	newR, err := loadReport(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	var re *regexp.Regexp
	if filter != "" {
		re, err = regexp.Compile(filter)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: bad -filter:", err)
			return 2
		}
	}
	// Benchmarks are keyed by package+name so same-named benchmarks from
	// different packages (a ./... run) never collide.
	key := func(b Benchmark) string { return b.Package + "\x00" + b.Name }
	display := func(k string) string {
		pkg, name, _ := strings.Cut(k, "\x00")
		if pkg == "" {
			return name
		}
		return pkg + ":" + name
	}
	oldNs := map[string]float64{}
	var baseline []string
	for _, b := range oldR.Benchmarks {
		v, ok := b.Metrics["ns/op"]
		if !ok || (re != nil && !re.MatchString(b.Name)) {
			continue
		}
		oldNs[key(b)] = v
		baseline = append(baseline, key(b))
	}
	sort.Strings(baseline)
	if len(baseline) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no baseline benchmarks match the filter")
		return 2
	}
	newNs := map[string]float64{}
	for _, b := range newR.Benchmarks {
		if v, ok := b.Metrics["ns/op"]; ok {
			newNs[key(b)] = v
		}
	}
	failed, missing := 0, 0
	for _, k := range baseline {
		o := oldNs[k]
		n, ok := newNs[k]
		if !ok {
			// A baseline benchmark that no longer runs is a gate hole,
			// not a pass: renames/deletions must update the baseline
			// deliberately.
			fmt.Printf("%-50s %12.1f -> %12s\n", display(k), o, "MISSING")
			missing++
			continue
		}
		deltaPct := 0.0
		if o > 0 {
			deltaPct = (n - o) / o * 100
		}
		status := "ok"
		if deltaPct > threshold {
			status = "REGRESSION"
			failed++
		}
		fmt.Printf("%-50s %12.1f -> %12.1f ns/op  %+7.1f%%  %s\n", display(k), o, n, deltaPct, status)
	}
	if failed > 0 || missing > 0 {
		fmt.Printf("FAIL: %d of %d baseline benchmarks regressed more than %.0f%% in ns/op, %d missing from the new run\n",
			failed, len(baseline), threshold, missing)
		return 1
	}
	fmt.Printf("ok: %d benchmarks within %.0f%% of baseline\n", len(baseline), threshold)
	return 0
}
