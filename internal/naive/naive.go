// Package naive evaluates containment queries by scanning the whole
// dataset. It is the correctness oracle for every index implementation in
// this repository: tests compare IF, OIF and unordered-B-tree answers
// against it, and the workload generator uses it to report true
// selectivities.
package naive

import (
	"sort"

	"repro/internal/dataset"
)

// prep returns qs sorted ascending and deduplicated, without mutating the
// caller's slice.
func prep(qs []dataset.Item) []dataset.Item {
	cp := make([]dataset.Item, len(qs))
	copy(cp, qs)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	out := cp[:0]
	for i, v := range cp {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// Subset returns the ids of all records t with qs ⊆ t.s, ascending.
func Subset(d *dataset.Dataset, qs []dataset.Item) []uint32 {
	q := prep(qs)
	var out []uint32
	for _, r := range d.Records() {
		if r.ContainsAll(q) {
			out = append(out, r.ID)
		}
	}
	return out
}

// Equality returns the ids of all records t with t.s = qs, ascending.
func Equality(d *dataset.Dataset, qs []dataset.Item) []uint32 {
	q := prep(qs)
	var out []uint32
	for _, r := range d.Records() {
		if r.EqualSet(q) {
			out = append(out, r.ID)
		}
	}
	return out
}

// Superset returns the ids of all records t with t.s ⊆ qs, ascending.
// Note the paper's naming: a superset query asks for records whose items
// are all contained in the query set.
func Superset(d *dataset.Dataset, qs []dataset.Item) []uint32 {
	q := prep(qs)
	var out []uint32
	for _, r := range d.Records() {
		if r.SubsetOf(q) {
			out = append(out, r.ID)
		}
	}
	return out
}
