package naive

import (
	"testing"

	"repro/internal/dataset"
)

func fixture(t *testing.T) *dataset.Dataset {
	t.Helper()
	d := dataset.New(6)
	sets := [][]dataset.Item{
		{0, 1, 2}, // 1
		{0, 1},    // 2
		{2},       // 3
		nil,       // 4
		{0, 1, 2}, // 5
		{3, 4, 5}, // 6
	}
	for _, s := range sets {
		if _, err := d.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func eq(a []uint32, b ...uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSubset(t *testing.T) {
	d := fixture(t)
	if got := Subset(d, []dataset.Item{0, 1}); !eq(got, 1, 2, 5) {
		t.Fatalf("Subset({0,1}) = %v", got)
	}
	if got := Subset(d, nil); !eq(got, 1, 2, 3, 4, 5, 6) {
		t.Fatalf("Subset(∅) = %v", got)
	}
	if got := Subset(d, []dataset.Item{0, 3}); len(got) != 0 {
		t.Fatalf("Subset({0,3}) = %v", got)
	}
	// Unsorted, duplicated query items behave like the set.
	if got := Subset(d, []dataset.Item{1, 0, 1}); !eq(got, 1, 2, 5) {
		t.Fatalf("Subset dup = %v", got)
	}
}

func TestEquality(t *testing.T) {
	d := fixture(t)
	if got := Equality(d, []dataset.Item{0, 1, 2}); !eq(got, 1, 5) {
		t.Fatalf("Equality = %v", got)
	}
	if got := Equality(d, nil); !eq(got, 4) {
		t.Fatalf("Equality(∅) = %v", got)
	}
}

func TestSuperset(t *testing.T) {
	d := fixture(t)
	if got := Superset(d, []dataset.Item{0, 1, 2}); !eq(got, 1, 2, 3, 4, 5) {
		t.Fatalf("Superset = %v", got)
	}
	if got := Superset(d, nil); !eq(got, 4) {
		t.Fatalf("Superset(∅) = %v", got)
	}
}
