package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/workload"
)

// tinyConfig keeps experiment tests fast: a couple of thousand records.
func tinyConfig(out *bytes.Buffer) Config {
	cfg := DefaultConfig(out)
	cfg.Scale = 0.0001 // floor of 2000 records kicks in
	cfg.RealScale = 0.02
	cfg.QueriesPerSize = 3
	return cfg
}

func TestMeasureWorkloadBasics(t *testing.T) {
	var out bytes.Buffer
	cfg := tinyConfig(&out)
	cfg.fill()
	d, err := dataset.GenerateSynthetic(cfg.SyntheticDefaults())
	if err != nil {
		t.Fatal(err)
	}
	pair, err := cfg.BuildPair(d)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(d, 3)
	queries := gen.SubsetQueries(3, 5)
	m, err := MeasureWorkload(pair.OIF, queries, cfg.Disk)
	if err != nil {
		t.Fatal(err)
	}
	if m.Queries != 5 {
		t.Fatalf("measured %d queries", m.Queries)
	}
	if m.Pages <= 0 {
		t.Fatal("no page accesses recorded")
	}
	if m.Answers <= 0 {
		t.Fatal("queries had no answers — workload contract broken")
	}
	if m.IO <= 0 {
		t.Fatal("no modelled I/O time")
	}
}

func TestBuildPairAndSystems(t *testing.T) {
	var out bytes.Buffer
	cfg := tinyConfig(&out)
	cfg.fill()
	d, err := dataset.GenerateSynthetic(cfg.SyntheticDefaults())
	if err != nil {
		t.Fatal(err)
	}
	pair, err := cfg.BuildPair(d)
	if err != nil {
		t.Fatal(err)
	}
	sys := pair.Systems()
	if len(sys) != 2 || sys[0].Name != "IF" || sys[1].Name != "OIF" {
		t.Fatalf("systems = %+v", sys)
	}
	// Both pools must be at the measurement size.
	if pair.IF.Pool().Capacity() != cfg.PoolPages || pair.OIF.Pool().Capacity() != cfg.PoolPages {
		t.Fatal("pair not metered")
	}
}

// TestIFandOIFAgreeUnderHarness is the harness-level cross-check: both
// systems must return identical answers for every workload query.
func TestIFandOIFAgreeUnderHarness(t *testing.T) {
	var out bytes.Buffer
	cfg := tinyConfig(&out)
	cfg.fill()
	d, err := dataset.GenerateSynthetic(cfg.SyntheticDefaults())
	if err != nil {
		t.Fatal(err)
	}
	pair, err := cfg.BuildPair(d)
	if err != nil {
		t.Fatal(err)
	}
	ub, err := cfg.BuildUnordered(d)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(d, 9)
	for _, kind := range []workload.Kind{workload.Subset, workload.Equality, workload.Superset} {
		for size := 2; size <= 6; size++ {
			for _, q := range gen.Queries(kind, size, 3) {
				a, err := runQuery(pair.IF, q)
				if err != nil {
					t.Fatal(err)
				}
				b, err := runQuery(pair.OIF, q)
				if err != nil {
					t.Fatal(err)
				}
				c, err := runQuery(ub, q)
				if err != nil {
					t.Fatal(err)
				}
				if len(a) != len(b) || len(a) != len(c) {
					t.Fatalf("%v %v: IF %d, OIF %d, UBT %d answers", kind, q.Items, len(a), len(b), len(c))
				}
				for i := range a {
					if a[i] != b[i] || a[i] != c[i] {
						t.Fatalf("%v %v: answers diverge at %d", kind, q.Items, i)
					}
				}
			}
		}
	}
}

func TestRunFig7Small(t *testing.T) {
	var out bytes.Buffer
	cfg := tinyConfig(&out)
	fig, err := RunFig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Panels) != 6 { // 2 datasets x 3 predicates
		t.Fatalf("fig7 has %d panels, want 6", len(fig.Panels))
	}
	for _, p := range fig.Panels {
		if len(p.Points) == 0 {
			t.Fatalf("panel %q empty", p.Title)
		}
	}
	if !strings.Contains(out.String(), "Figure 7") {
		t.Fatal("no printed output")
	}
}

func TestRunSyntheticFigureSmall(t *testing.T) {
	var out bytes.Buffer
	cfg := tinyConfig(&out)
	fig, err := RunSyntheticFigure(cfg, workload.Equality)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Panels) != 4 {
		t.Fatalf("fig has %d panels, want 4", len(fig.Panels))
	}
	for _, p := range fig.Panels {
		if len(p.Points) == 0 {
			t.Fatalf("panel %q empty", p.Title)
		}
	}
}

// TestEqualityShapeAtModerateScale asserts the paper's headline on a
// database large enough for lists to span many pages: OIF equality pages
// far below IF pages (Fig. 9). At tiny scale the paper itself observes
// the advantage vanish ("for the smallest dataset of 1M records ... the
// I/O cost is similar"), so shape checks need this size.
func TestEqualityShapeAtModerateScale(t *testing.T) {
	if testing.Short() {
		t.Skip("moderate-scale shape check")
	}
	var out bytes.Buffer
	cfg := tinyConfig(&out)
	cfg.fill()
	sc := cfg.SyntheticDefaults()
	sc.NumRecords = 100000
	d, err := dataset.GenerateSynthetic(sc)
	if err != nil {
		t.Fatal(err)
	}
	pair, err := cfg.BuildPair(d)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(d, 7)
	queries := gen.EqualityQueries(4, 10)
	sys, err := MeasureSystems(pair.Systems(), queries, cfg.Disk)
	if err != nil {
		t.Fatal(err)
	}
	ifM, oifM := sys[0].M, sys[1].M
	if oifM.Pages*2 >= ifM.Pages {
		t.Fatalf("equality at 100K records: OIF pages %.1f not well below IF pages %.1f", oifM.Pages, ifM.Pages)
	}
	// Subset at the same scale must also favour the OIF.
	queries = gen.SubsetQueries(4, 10)
	sys, err = MeasureSystems(pair.Systems(), queries, cfg.Disk)
	if err != nil {
		t.Fatal(err)
	}
	if sys[1].M.Pages >= sys[0].M.Pages {
		t.Fatalf("subset at 100K records: OIF pages %.1f >= IF pages %.1f", sys[1].M.Pages, sys[0].M.Pages)
	}
}

func TestRunSpaceSmall(t *testing.T) {
	var out bytes.Buffer
	cfg := tinyConfig(&out)
	res, err := RunSpace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DataBytes <= 0 || res.IFStoreBytes <= 0 || res.OIFTreeBytes <= 0 {
		t.Fatalf("empty space result: %+v", res)
	}
	// Paper shape: the OIF table is larger than the IF store.
	if res.OIFTreeBytes <= res.IFStoreBytes {
		t.Fatalf("OIF tree %d <= IF store %d; paper shape violated", res.OIFTreeBytes, res.IFStoreBytes)
	}
	// And OIF lists must not exceed IF lists (metadata absorbs postings).
	if res.OIFListBytes > res.IFListBytes {
		t.Fatalf("OIF lists %d > IF lists %d", res.OIFListBytes, res.IFListBytes)
	}
}

// TestSpaceFractionsAtModerateScale pins the paper's reported bands
// loosely: IF around a fifth of the data, OIF noticeably larger.
func TestSpaceFractionsAtModerateScale(t *testing.T) {
	if testing.Short() {
		t.Skip("moderate-scale shape check")
	}
	var out bytes.Buffer
	cfg := tinyConfig(&out)
	cfg.fill()
	sc := cfg.SyntheticDefaults()
	sc.NumRecords = 100000
	d, err := dataset.GenerateSynthetic(sc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSpaceOn(cfg, d)
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports IF ~22% and OIF ~35% of "the original data" — a
	// Berkeley DB relation with physical record overheads. Our DataBytes
	// baseline is a dense logical encoding (4 bytes/item), so absolute
	// fractions shift up by a constant; the orderings are the comparison.
	if f := res.IFFraction(); f <= 0 || f >= 1.0 {
		t.Fatalf("IF fraction %.2f implausible: compressed lists must beat raw data", f)
	}
	if res.OIFFraction() <= res.IFFraction() {
		t.Fatalf("OIF fraction %.2f <= IF fraction %.2f", res.OIFFraction(), res.IFFraction())
	}
	if res.OIFWithMapFraction() <= res.OIFFraction() {
		t.Fatal("map must add space")
	}
	// OIF lists stay within a few percent of IF lists (paper: ~5% smaller;
	// the d-gap re-basing per block costs some of the metadata savings).
	if s := res.ListShrink(); s < 0.7 || s > 1.05 {
		t.Fatalf("OIF/IF list ratio %.2f outside plausible band", s)
	}
}

func TestRunOrderingSmall(t *testing.T) {
	var out bytes.Buffer
	cfg := tinyConfig(&out)
	fig, err := RunOrdering(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Panels) != 2 {
		t.Fatalf("ordering ablation has %d panels, want selectivity + frequent-item", len(fig.Panels))
	}
	if len(fig.Panels[0].Points) == 0 || len(fig.Panels[1].Points) == 0 {
		t.Fatal("ordering ablation produced no points")
	}
	// Each point must carry both systems.
	for _, p := range fig.Panels[1].Points {
		if _, ok := p.Get("UBT"); !ok {
			t.Fatal("missing UBT metrics")
		}
		if _, ok := p.Get("OIF"); !ok {
			t.Fatal("missing OIF metrics")
		}
	}
}

func TestRunSummarySmall(t *testing.T) {
	var out bytes.Buffer
	cfg := tinyConfig(&out)
	res, err := RunSummary(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.QueryIF <= 0 || res.QueryOIF <= 0 || res.UpdateIF <= 0 || res.UpdateOIF <= 0 {
		t.Fatalf("summary fields empty: %+v", res)
	}
	if !strings.Contains(out.String(), "break-even") {
		t.Fatal("summary not printed")
	}
}

// TestSummaryShapeAtPaperScale asserts the paper's trade-off at its own
// dataset size (1M records). At 1M our disk model puts the combined
// average near parity (the time crossover sits slightly above 1M in our
// substrate — see EXPERIMENTS.md), so the robust assertions are: OIF
// clearly faster on equality and superset, combined average within a
// narrow band of the IF's, and updates 2-6x dearer for the OIF (the
// paper reports 3-5x); all at the paper's 20% delta ratio.
func TestSummaryShapeAtPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale shape check (~30s)")
	}
	if raceEnabled {
		t.Skip("wall-clock ratios skew under the race detector")
	}
	var out bytes.Buffer
	cfg := tinyConfig(&out)
	cfg.Scale = 1.0 // summary dataset: 1M records as in the paper
	cfg.QueriesPerSize = 3
	res, err := RunSummary(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if eqIF, eqOIF := res.PerPredicateIF[workload.Equality], res.PerPredicateOIF[workload.Equality]; eqOIF >= eqIF {
		t.Fatalf("equality: OIF %v >= IF %v", eqOIF, eqIF)
	}
	if supIF, supOIF := res.PerPredicateIF[workload.Superset], res.PerPredicateOIF[workload.Superset]; supOIF >= supIF {
		t.Fatalf("superset: OIF %v >= IF %v", supOIF, supIF)
	}
	if float64(res.QueryOIF) > 1.3*float64(res.QueryIF) {
		t.Fatalf("combined: OIF %v far above IF %v", res.QueryOIF, res.QueryIF)
	}
	slow := float64(res.UpdateOIF) / float64(res.UpdateIF)
	if slow < 1.5 || slow > 8 {
		t.Fatalf("OIF update slowdown %.1fx outside the paper's band", slow)
	}
}

func TestConfigFillDefaults(t *testing.T) {
	var c Config
	c.fill()
	if c.Scale <= 0 || c.PageSize <= 0 || c.PoolPages <= 0 || c.QueriesPerSize <= 0 {
		t.Fatalf("fill left zero fields: %+v", c)
	}
	if c.Disk.RandomLatency == 0 {
		t.Fatal("disk model not defaulted")
	}
	if c.scaled(10_000_000) < 2000 {
		t.Fatal("scaled floor broken")
	}
}

func TestRunAblationsSmall(t *testing.T) {
	var out bytes.Buffer
	cfg := tinyConfig(&out)
	fig, err := RunAblations(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Panels) != 3 {
		t.Fatalf("ablations produced %d panels, want 3", len(fig.Panels))
	}
	for _, p := range fig.Panels {
		if len(p.Points) == 0 {
			t.Fatalf("panel %q empty", p.Title)
		}
	}
	// Cache panel: a bigger cache can only reduce page reads.
	cache := fig.Panels[2]
	firstIF, _ := cache.Points[0].Get("IF")
	lastIF, _ := cache.Points[len(cache.Points)-1].Get("IF")
	if lastIF.Pages > firstIF.Pages {
		t.Fatalf("IF pages rose with cache size: %.1f -> %.1f", firstIF.Pages, lastIF.Pages)
	}
	firstOIF, _ := cache.Points[0].Get("OIF")
	lastOIF, _ := cache.Points[len(cache.Points)-1].Get("OIF")
	if lastOIF.Pages > firstOIF.Pages {
		t.Fatalf("OIF pages rose with cache size: %.1f -> %.1f", firstOIF.Pages, lastOIF.Pages)
	}
	// Tag-prefix panel points carry tree sizes in their labels.
	if !strings.Contains(fig.Panels[1].Points[0].Param, "tree") {
		t.Fatalf("tag panel label %q lacks tree size", fig.Panels[1].Points[0].Param)
	}
}

// TestRunShardingSweep smoke-tests the scale-out sweep: every point
// must report a build time, sustained throughput, and one planning
// decision per shard, and the shard counts must double up to the cap.
func TestRunShardingSweep(t *testing.T) {
	var out bytes.Buffer
	cfg := tinyConfig(&out)
	res, err := RunSharding(cfg, 4, 2, "engine")
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries <= 0 || res.Workers != 2 {
		t.Fatalf("sweep shape wrong: %+v", res)
	}
	wantShards := []int{1, 2, 4}
	if len(res.Points) != len(wantShards) {
		t.Fatalf("swept %d points, want %d", len(res.Points), len(wantShards))
	}
	for i, pt := range res.Points {
		if pt.Shards != wantShards[i] {
			t.Errorf("point %d: shards %d, want %d", i, pt.Shards, wantShards[i])
		}
		if pt.BuildTime <= 0 || pt.Elapsed <= 0 || pt.QPS <= 0 {
			t.Errorf("point %d: empty measurements: %+v", i, pt)
		}
		if len(pt.Plans) != pt.Shards {
			t.Errorf("point %d: %d plans for %d shards", i, len(pt.Plans), pt.Shards)
		}
	}
	if !strings.Contains(out.String(), "Sharded engine sweep") {
		t.Fatalf("report missing header:\n%s", out.String())
	}
}

// TestRunShardingTransports smoke-tests the transport ladder: the sweep
// must complete over the ShardClient layer and over per-shard HTTP
// daemons, and reject transports it does not know.
func TestRunShardingTransports(t *testing.T) {
	for _, transport := range []string{"inproc", "http"} {
		var out bytes.Buffer
		res, err := RunSharding(tinyConfig(&out), 2, 2, transport)
		if err != nil {
			t.Fatalf("%s: %v", transport, err)
		}
		if res.Transport != transport || len(res.Points) != 2 {
			t.Fatalf("%s sweep shape wrong: %+v", transport, res)
		}
		for _, pt := range res.Points {
			if pt.QPS <= 0 {
				t.Errorf("%s: %d shards: no throughput: %+v", transport, pt.Shards, pt)
			}
		}
	}
	if _, err := RunSharding(tinyConfig(&bytes.Buffer{}), 2, 2, "carrier-pigeon"); err == nil {
		t.Fatal("unknown transport accepted")
	}
}

func TestRunPlannerSweep(t *testing.T) {
	var out bytes.Buffer
	cfg := tinyConfig(&out)
	res, err := RunPlanner(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	// RunPlanner itself verifies planned == naive answers; here we check
	// the sweep's shape and that the accounting adds up.
	if res.Queries <= 0 || res.PlannedTime <= 0 || res.NaiveTime <= 0 {
		t.Fatalf("empty measurements: %+v", res)
	}
	if res.EvaluatedLeaves+res.SkippedLeaves != res.TotalLeaves {
		t.Fatalf("leaf accounting: %d evaluated + %d skipped != %d total",
			res.EvaluatedLeaves, res.SkippedLeaves, res.TotalLeaves)
	}
	if res.SkippedLeaves == 0 {
		t.Fatal("adversarial workload never short-circuited — the sweep measures nothing")
	}
	if !strings.Contains(out.String(), "Expression planner sweep") {
		t.Fatalf("report missing header:\n%s", out.String())
	}
}
