package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/workload"
)

// RunAblations sweeps the OIF's own design knobs — beyond the paper's
// evaluation, but directly motivated by its §3 discussion of block size,
// key compression ("considering prefixes of the ordered set-values used
// as tags") and §5's cache-budget framing. Three panels:
//
//   - block size: postings per block vs pages/space (finer pruning vs
//     more B-tree entries);
//   - tag prefix: key truncation vs space and extra boundary reads;
//   - cache size: the minimal-memory claim — how quickly the IF/OIF gap
//     closes as the cache grows.
func RunAblations(cfg Config) (Figure, error) {
	cfg.fill()
	d, err := dataset.GenerateSynthetic(cfg.SyntheticDefaults())
	if err != nil {
		return Figure{}, err
	}
	fig := Figure{Name: fmt.Sprintf("Design ablations (|D|=%d, |I|=2000, zipf=0.8)", d.Len())}
	gen := workload.NewGenerator(d, cfg.Seed+900)
	subset := gen.Queries(workload.Subset, 4, cfg.QueriesPerSize)
	equality := gen.Queries(workload.Equality, 4, cfg.QueriesPerSize)

	measureOIF := func(opts core.Options) (Point, int64, error) {
		ix, err := core.Build(d, opts)
		if err != nil {
			return Point{}, 0, err
		}
		if _, err := Meter(ix, cfg.PoolPages); err != nil {
			return Point{}, 0, err
		}
		mSub, err := MeasureWorkload(ix, subset, cfg.Disk)
		if err != nil {
			return Point{}, 0, err
		}
		mEq, err := MeasureWorkload(ix, equality, cfg.Disk)
		if err != nil {
			return Point{}, 0, err
		}
		return Point{
			Param: "",
			Systems: []SystemMetrics{
				{Name: "subset", M: mSub},
				{Name: "equality", M: mEq},
			},
		}, ix.Space().TreeBytes, nil
	}

	// Panel 1: block size.
	blockPanel := Panel{Title: "OIF block size (postings per block)", XLabel: "block"}
	for _, bp := range []int{16, 64, 256} {
		pt, treeBytes, err := measureOIF(core.Options{PageSize: cfg.PageSize, BlockPostings: bp})
		if err != nil {
			return Figure{}, err
		}
		pt.Param = fmt.Sprintf("%d (tree %d KB)", bp, bytes2kb(treeBytes))
		blockPanel.Points = append(blockPanel.Points, pt)
	}
	fig.Panels = append(fig.Panels, blockPanel)

	// Panel 2: tag prefix length (0 = full tags).
	tagPanel := Panel{Title: "OIF tag prefix (0 = full sequence form)", XLabel: "prefix"}
	for _, tp := range []int{0, 4, 2, 1} {
		pt, treeBytes, err := measureOIF(core.Options{
			PageSize: cfg.PageSize, BlockPostings: cfg.BlockPostings, TagPrefix: tp,
		})
		if err != nil {
			return Figure{}, err
		}
		pt.Param = fmt.Sprintf("%d (tree %d KB)", tp, bytes2kb(treeBytes))
		tagPanel.Points = append(tagPanel.Points, pt)
	}
	fig.Panels = append(fig.Panels, tagPanel)

	// Panel 3: cache size, IF vs OIF on the same pair.
	pair, err := cfg.BuildPair(d)
	if err != nil {
		return Figure{}, err
	}
	cachePanel := Panel{Title: "cache size (pages of 4 KB), subset |qs|=4", XLabel: "cache"}
	for _, pages := range []int{8, 64, 512} {
		if _, err := Meter(pair.IF, pages); err != nil {
			return Figure{}, err
		}
		if _, err := Meter(pair.OIF, pages); err != nil {
			return Figure{}, err
		}
		sys, err := MeasureSystems(pair.Systems(), subset, cfg.Disk)
		if err != nil {
			return Figure{}, err
		}
		cachePanel.Points = append(cachePanel.Points, Point{Param: fmt.Sprint(pages), Systems: sys})
	}
	fig.Panels = append(fig.Panels, cachePanel)

	PrintFigure(cfg.Out, fig)
	return fig, nil
}

func bytes2kb(b int64) int64 { return b / 1024 }
