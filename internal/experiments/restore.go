package experiments

import (
	"bytes"
	"fmt"
	"slices"
	"time"

	"repro/internal/dataset"
	"repro/internal/workload"
	"repro/setcontain"
)

// RestorePoint is one engine's durability measurement: how long a cold
// build takes versus snapshotting a built index and restoring it, and
// how large the snapshot is. Restore is the daemon's warm-boot path
// (setcontaind -snapshot), so RestoreTime/BuildTime is the restart
// speed-up durability buys.
type RestorePoint struct {
	Kind        setcontain.Kind
	BuildTime   time.Duration
	SaveTime    time.Duration
	RestoreTime time.Duration
	Bytes       int
	// Verified reports that the restored index answered a mixed query
	// workload byte-identically to the original.
	Verified bool
}

// RestoreResult is the durability sweep over the snapshot-capable
// engine kinds.
type RestoreResult struct {
	Records int
	Points  []RestorePoint
}

// RunRestore measures the snapshot round-trip for every snapshot-capable
// engine kind (OIF, InvertedFile, Sharded) over the default synthetic
// dataset: build the index, Save it to a buffer, Open it back, verify a
// mixed workload answers identically, and report build/save/restore
// times plus the snapshot footprint. Each index carries pending inserts
// and tombstones into the snapshot, so the measured path is the full
// production state, not just the cold pages.
func RunRestore(cfg Config) (RestoreResult, error) {
	cfg.fill()
	d, err := dataset.GenerateSynthetic(cfg.SyntheticDefaults())
	if err != nil {
		return RestoreResult{}, err
	}
	gen := workload.NewGenerator(d, cfg.Seed+3000)
	queries, err := MixedQueries(gen, 4, cfg.QueriesPerSize)
	if err != nil {
		return RestoreResult{}, err
	}

	res := RestoreResult{Records: d.Len()}
	w := cfg.Out
	fmt.Fprintf(w, "=== Snapshot restore sweep (|D|=%d, %d verify queries/kind) ===\n",
		d.Len(), len(queries))
	for _, kind := range []setcontain.Kind{setcontain.OIF, setcontain.InvertedFile, setcontain.Sharded} {
		buildStart := time.Now()
		idx, err := setcontain.New(setcontain.WrapDataset(d),
			setcontain.WithKind(kind),
			setcontain.WithPageSize(cfg.PageSize),
			setcontain.WithBlockPostings(cfg.BlockPostings),
			setcontain.WithCachePages(cfg.PoolPages),
		)
		if err != nil {
			return RestoreResult{}, fmt.Errorf("experiments: build %v: %w", kind, err)
		}
		buildTime := time.Since(buildStart)

		// Leave realistic mutation state in place: pending inserts plus a
		// tombstone, both of which the snapshot must carry.
		if _, err := idx.Insert([]setcontain.Item{0, 1}); err != nil {
			return RestoreResult{}, err
		}
		if err := idx.Delete(1); err != nil {
			return RestoreResult{}, err
		}

		var buf bytes.Buffer
		saveStart := time.Now()
		if err := idx.Save(&buf); err != nil {
			return RestoreResult{}, fmt.Errorf("experiments: save %v: %w", kind, err)
		}
		saveTime := time.Since(saveStart)

		restoreStart := time.Now()
		restored, err := setcontain.Open(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return RestoreResult{}, fmt.Errorf("experiments: restore %v: %w", kind, err)
		}
		restoreTime := time.Since(restoreStart)

		verified := true
		for _, q := range queries {
			want, err := idx.Eval(q)
			if err != nil {
				return RestoreResult{}, err
			}
			got, err := restored.Eval(q)
			if err != nil {
				return RestoreResult{}, err
			}
			if !slices.Equal(got, want) && !(len(got) == 0 && len(want) == 0) {
				verified = false
				fmt.Fprintf(w, "  %v: %s diverged after restore\n", kind, q)
				break
			}
		}

		pt := RestorePoint{
			Kind: kind, BuildTime: buildTime, SaveTime: saveTime,
			RestoreTime: restoreTime, Bytes: buf.Len(), Verified: verified,
		}
		res.Points = append(res.Points, pt)
		speedup := float64(buildTime) / float64(restoreTime)
		fmt.Fprintf(w, "%-8s build=%-10s save=%-10s restore=%-10s %8.1f KB  %5.1fx faster than rebuild  verified=%v\n",
			pt.Kind, pt.BuildTime.Round(time.Millisecond), pt.SaveTime.Round(time.Millisecond),
			pt.RestoreTime.Round(time.Millisecond), float64(pt.Bytes)/1024, speedup, pt.Verified)
		if !verified {
			return res, fmt.Errorf("experiments: %v restore diverged", kind)
		}
	}
	return res, nil
}
