package experiments

import (
	"fmt"

	"repro/internal/workload"
)

// RunAll regenerates every paper artefact in order. Results are printed
// to cfg.Out; the returned error is the first failure.
func RunAll(cfg Config) error {
	cfg.fill()
	if _, err := RunFig7(cfg); err != nil {
		return fmt.Errorf("fig7: %w", err)
	}
	runner := NewRunner(cfg)
	for _, kind := range []workload.Kind{workload.Subset, workload.Equality, workload.Superset} {
		if _, err := runner.SyntheticFigure(kind); err != nil {
			return fmt.Errorf("fig %v: %w", kind, err)
		}
	}
	runner.Release()
	if _, err := RunSpace(cfg); err != nil {
		return fmt.Errorf("space: %w", err)
	}
	if _, err := RunOrdering(cfg); err != nil {
		return fmt.Errorf("ordering: %w", err)
	}
	if _, err := RunSummary(cfg); err != nil {
		return fmt.Errorf("summary: %w", err)
	}
	if _, err := RunAblations(cfg); err != nil {
		return fmt.Errorf("ablations: %w", err)
	}
	return nil
}
