package experiments

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/workload"
)

// RunSyntheticFigure regenerates Figure 8 (subset), 9 (equality) or 10
// (superset): four panels sweeping domain size, database size, query size
// and Zipf order over synthetic data, reporting page accesses and
// CPU/modelled-I/O time per query for IF vs OIF.
func RunSyntheticFigure(cfg Config, kind workload.Kind) (Figure, error) {
	return NewRunner(cfg).SyntheticFigure(kind)
}

// SyntheticFigure is RunSyntheticFigure with the runner's pair cache.
func (r *Runner) SyntheticFigure(kind workload.Kind) (Figure, error) {
	cfg := r.cfg
	figNo := map[workload.Kind]int{workload.Subset: 8, workload.Equality: 9, workload.Superset: 10}[kind]
	fig := Figure{Name: fmt.Sprintf("Figure %d: %v queries on synthetic data (|D| scale %.3f)", figNo, kind, cfg.Scale)}

	const defaultQS = 4

	// Panel a: domain size sweep.
	panelA := Panel{
		Title:  fmt.Sprintf("vary |I| (|D|=%d, zipf=0.8, |qs|=%d)", cfg.scaled(10_000_000), defaultQS),
		XLabel: "|I|",
	}
	for _, domain := range []int{500, 2000, 8000} {
		sc := cfg.SyntheticDefaults()
		sc.DomainSize = domain
		pt, err := r.measureSyntheticPoint(sc, kind, defaultQS, fmt.Sprint(domain))
		if err != nil {
			return Figure{}, err
		}
		panelA.Points = append(panelA.Points, pt)
	}
	fig.Panels = append(fig.Panels, panelA)

	// Panel b: database size sweep.
	panelB := Panel{
		Title:  fmt.Sprintf("vary |D| (|I|=2000, zipf=0.8, |qs|=%d)", defaultQS),
		XLabel: "|D|",
	}
	for _, paperD := range []int{1_000_000, 5_000_000, 10_000_000, 50_000_000} {
		sc := cfg.SyntheticDefaults()
		sc.NumRecords = cfg.scaled(paperD)
		pt, err := r.measureSyntheticPoint(sc, kind, defaultQS, fmt.Sprint(sc.NumRecords))
		if err != nil {
			return Figure{}, err
		}
		panelB.Points = append(panelB.Points, pt)
	}
	fig.Panels = append(fig.Panels, panelB)

	// Panel c: query size sweep on the default dataset.
	panelC := Panel{Title: "vary |qs| (defaults: |I|=2000, zipf=0.8)", XLabel: "|qs|"}
	pair, err := r.Pair(cfg.SyntheticDefaults())
	if err != nil {
		return Figure{}, err
	}
	gen := workload.NewGenerator(pair.Data, cfg.Seed+400)
	for size := 2; size <= 20; size += 2 {
		queries := gen.Queries(kind, size, cfg.QueriesPerSize)
		if len(queries) == 0 {
			continue
		}
		sys, err := MeasureSystems(pair.Systems(), queries, cfg.Disk)
		if err != nil {
			return Figure{}, err
		}
		panelC.Points = append(panelC.Points, Point{Param: fmt.Sprint(size), Systems: sys})
	}
	fig.Panels = append(fig.Panels, panelC)

	// Panel d: skew sweep.
	panelD := Panel{
		Title:  fmt.Sprintf("vary zipf order (|I|=2000, |D|=%d, |qs|=%d)", cfg.scaled(10_000_000), defaultQS),
		XLabel: "zipf",
	}
	for _, theta := range []float64{0, 0.4, 0.8, 1.0} {
		sc := cfg.SyntheticDefaults()
		sc.ZipfTheta = theta
		pt, err := r.measureSyntheticPoint(sc, kind, defaultQS, fmt.Sprintf("%.1f", theta))
		if err != nil {
			return Figure{}, err
		}
		panelD.Points = append(panelD.Points, pt)
	}
	fig.Panels = append(fig.Panels, panelD)

	PrintFigure(cfg.Out, fig)
	return fig, nil
}

// measureSyntheticPoint builds (or reuses) the dataset and index pair for
// one parameter combination and measures one workload on it.
func (r *Runner) measureSyntheticPoint(sc dataset.SyntheticConfig, kind workload.Kind, qsize int, label string) (Point, error) {
	pair, err := r.Pair(sc)
	if err != nil {
		return Point{}, err
	}
	gen := workload.NewGenerator(pair.Data, r.cfg.Seed+500)
	queries := gen.Queries(kind, qsize, r.cfg.QueriesPerSize)
	if len(queries) == 0 {
		return Point{Param: label}, nil
	}
	sys, err := MeasureSystems(pair.Systems(), queries, r.cfg.Disk)
	if err != nil {
		return Point{}, err
	}
	return Point{Param: label, Systems: sys}, nil
}
