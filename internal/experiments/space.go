package experiments

import (
	"fmt"

	"repro/internal/dataset"
)

// SpaceResult is the §5 "Space overhead" comparison: the paper reports
// OIF lists marginally (~5%) smaller than IF lists, but the OIF table at
// ~35% of the original data versus ~22% for the IF, rising to ~43% with
// the reassignment map.
type SpaceResult struct {
	DataBytes int64 // original data footprint (id + items, 4 bytes each)

	IFListBytes  int64 // compressed IF postings
	IFStoreBytes int64 // IF pages on disk

	OIFListBytes  int64 // compressed OIF postings (metadata absorbs one per record)
	OIFKeyBytes   int64 // block keys (item + tag + id)
	OIFTreeBytes  int64 // B-tree pages on disk
	OIFMetaBytes  int64 // memory-resident metadata table
	OIFMapBytes   int64 // reassignment map
	OIFListBlocks int64
}

// IFFraction returns IF store size over data size.
func (r SpaceResult) IFFraction() float64 { return frac(r.IFStoreBytes, r.DataBytes) }

// OIFFraction returns OIF tree size over data size.
func (r SpaceResult) OIFFraction() float64 { return frac(r.OIFTreeBytes, r.DataBytes) }

// OIFWithMapFraction includes the reassignment map.
func (r SpaceResult) OIFWithMapFraction() float64 {
	return frac(r.OIFTreeBytes+r.OIFMapBytes, r.DataBytes)
}

// ListShrink returns OIF list bytes relative to IF list bytes.
func (r SpaceResult) ListShrink() float64 { return frac(r.OIFListBytes, r.IFListBytes) }

func frac(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// RunSpace regenerates the space-overhead comparison on the default
// synthetic dataset.
func RunSpace(cfg Config) (SpaceResult, error) {
	cfg.fill()
	d, err := dataset.GenerateSynthetic(cfg.SyntheticDefaults())
	if err != nil {
		return SpaceResult{}, err
	}
	return RunSpaceOn(cfg, d)
}

// RunSpaceOn measures the space footprint of both indexes over d.
func RunSpaceOn(cfg Config, d *dataset.Dataset) (SpaceResult, error) {
	cfg.fill()
	pair, err := cfg.BuildPair(d)
	if err != nil {
		return SpaceResult{}, err
	}
	st := d.ComputeStats()
	oifSpace := pair.UnwrapOIF().Space()
	res := SpaceResult{
		// Original data: one 4-byte id plus 4 bytes per item per record.
		DataBytes:     int64(st.NumRecords)*4 + st.TotalPostings*4,
		IFListBytes:   pair.UnwrapIF().ListBytes(),
		IFStoreBytes:  pair.IF.Space().Bytes,
		OIFListBytes:  oifSpace.PostingBytes,
		OIFKeyBytes:   oifSpace.KeyBytes,
		OIFTreeBytes:  oifSpace.TreeBytes,
		OIFMetaBytes:  oifSpace.MetaBytes,
		OIFMapBytes:   oifSpace.MapBytes,
		OIFListBlocks: oifSpace.Blocks,
	}

	w := cfg.Out
	fmt.Fprintln(w, "=== Space overhead (paper §5: OIF ~35% of data vs IF ~22%; lists ~5% smaller; map +8%) ===")
	fmt.Fprintf(w, "records=%d domain=%d avg_card=%.1f\n", st.NumRecords, st.DomainSize, st.AvgCardinal)
	fmt.Fprintf(w, "original data bytes:            %12d\n", res.DataBytes)
	fmt.Fprintf(w, "IF  list bytes (compressed):    %12d\n", res.IFListBytes)
	fmt.Fprintf(w, "IF  store bytes (pages):        %12d  (%.0f%% of data)\n", res.IFStoreBytes, 100*res.IFFraction())
	fmt.Fprintf(w, "OIF list bytes (compressed):    %12d  (%.0f%% of IF lists)\n", res.OIFListBytes, 100*res.ListShrink())
	fmt.Fprintf(w, "OIF key bytes (%d blocks):   %12d\n", res.OIFListBlocks, res.OIFKeyBytes)
	fmt.Fprintf(w, "OIF tree bytes (pages):         %12d  (%.0f%% of data)\n", res.OIFTreeBytes, 100*res.OIFFraction())
	fmt.Fprintf(w, "OIF + reassignment map:         %12d  (%.0f%% of data)\n", res.OIFTreeBytes+res.OIFMapBytes, 100*res.OIFWithMapFraction())
	fmt.Fprintf(w, "OIF metadata table (memory):    %12d\n", res.OIFMetaBytes)
	fmt.Fprintf(w, "OIF/IF table size ratio:        %12.2f  (paper: 35%%/22%% = 1.59)\n",
		frac(res.OIFTreeBytes, res.IFStoreBytes))
	return res, nil
}
