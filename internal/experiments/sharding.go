package experiments

import (
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/workload"
	"repro/setcontain"
)

// ShardingPoint is one measured shard count: how long the parallel
// build took and what query throughput the Store sustained.
type ShardingPoint struct {
	Shards    int
	BuildTime time.Duration
	Elapsed   time.Duration
	QPS       float64
	// Plans records the skew-aware planner's per-shard decision.
	Plans []setcontain.ShardPlan
}

// ShardingResult is the shard-count sweep over one dataset.
type ShardingResult struct {
	Queries int
	Workers int
	Points  []ShardingPoint
}

// RunSharding sweeps the Sharded engine's shard count (1, 2, 4, ... up
// to maxShards) over the default synthetic dataset — the ROADMAP's
// scale-out scenario. For each point it times the parallel shard build,
// then replays a mixed workload through Store.Exec from `workers`
// goroutines and reports aggregate throughput; the per-shard planning
// decisions (inner engine kind, fitted skew) are printed alongside.
// Gains track the machine: on one core the sweep degenerates to
// overhead measurement, on N cores both build time and QPS scale.
func RunSharding(cfg Config, maxShards, workers int) (ShardingResult, error) {
	cfg.fill()
	if maxShards <= 0 {
		maxShards = 8
	}
	if workers <= 0 {
		workers = 8
	}
	d, err := dataset.GenerateSynthetic(cfg.SyntheticDefaults())
	if err != nil {
		return ShardingResult{}, err
	}

	gen := workload.NewGenerator(d, cfg.Seed+2000)
	queries, err := MixedQueries(gen, 4, cfg.QueriesPerSize)
	if err != nil {
		return ShardingResult{}, err
	}
	if len(queries) == 0 {
		return ShardingResult{}, fmt.Errorf("experiments: no queries at scale %g", cfg.Scale)
	}
	const rounds = 20
	total := len(queries) * rounds

	res := ShardingResult{Queries: total, Workers: workers}
	w := cfg.Out
	fmt.Fprintf(w, "=== Sharded engine sweep (|D|=%d, %d queries/point, %d workers) ===\n",
		d.Len(), total, workers)
	for shards := 1; shards <= maxShards; shards *= 2 {
		// Keep the aggregate cache budget constant across points: each
		// shard gets PoolPages/shards pages, so throughput differences
		// reflect the sharding mechanism rather than cache growth. Block
		// postings are deliberately NOT passed — sizing the OIF frontier
		// from each shard's hottest list is the planner decision this
		// sweep exists to exercise.
		perShardCache := cfg.PoolPages / shards
		if perShardCache < 1 {
			perShardCache = 1
		}
		buildStart := time.Now()
		idx, err := setcontain.New(setcontain.WrapDataset(d),
			setcontain.WithKind(setcontain.Sharded),
			setcontain.WithShards(shards),
			setcontain.WithBuildParallelism(shards),
			setcontain.WithPageSize(cfg.PageSize),
			setcontain.WithCachePages(perShardCache),
		)
		if err != nil {
			return ShardingResult{}, fmt.Errorf("experiments: build %d shards: %w", shards, err)
		}
		buildTime := time.Since(buildStart)

		store := setcontain.NewStore(idx, perShardCache)
		elapsed, err := runStoreWorkers(store, queries, rounds, workers)
		if err != nil {
			return ShardingResult{}, err
		}
		pt := ShardingPoint{
			Shards:    shards,
			BuildTime: buildTime,
			Elapsed:   elapsed,
			QPS:       float64(total) / elapsed.Seconds(),
			Plans:     setcontain.ShardPlans(idx.Engine()),
		}
		res.Points = append(res.Points, pt)
		fmt.Fprintf(w, "shards=%2d  build=%-10s  query=%-12s  %10.0f queries/s  inner=%s\n",
			pt.Shards, pt.BuildTime.Round(time.Millisecond),
			pt.Elapsed.Round(time.Microsecond), pt.QPS, summarisePlans(pt.Plans))
	}
	return res, nil
}

// summarisePlans compresses per-shard decisions into e.g. "OIF x4" or
// "OIF x3 + IF x1".
func summarisePlans(plans []setcontain.ShardPlan) string {
	counts := map[setcontain.Kind]int{}
	for _, p := range plans {
		counts[p.Kind]++
	}
	out := ""
	for _, k := range setcontain.Kinds() {
		if n := counts[k]; n > 0 {
			if out != "" {
				out += " + "
			}
			out += fmt.Sprintf("%s x%d", k, n)
		}
	}
	if out == "" {
		out = "none"
	}
	return out
}
