package experiments

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"repro/internal/dataset"
	"repro/internal/workload"
	"repro/setcontain"
	"repro/setcontain/serve"
)

// ShardingPoint is one measured shard count: how long the parallel
// build took and what query throughput the Store sustained.
type ShardingPoint struct {
	Shards    int
	BuildTime time.Duration
	Elapsed   time.Duration
	QPS       float64
	// Plans records the skew-aware planner's per-shard decision.
	Plans []setcontain.ShardPlan
}

// ShardingResult is the shard-count sweep over one dataset.
type ShardingResult struct {
	Queries   int
	Workers   int
	Transport string
	Points    []ShardingPoint
}

// RunSharding sweeps the Sharded engine's shard count (1, 2, 4, ... up
// to maxShards) over the default synthetic dataset — the ROADMAP's
// scale-out scenario. For each point it times the parallel shard build,
// then replays a mixed workload through Store.Exec from `workers`
// goroutines and reports aggregate throughput; the per-shard planning
// decisions (inner engine kind, fitted skew) are printed alongside.
// Gains track the machine: on one core the sweep degenerates to
// overhead measurement, on N cores both build time and QPS scale.
//
// transport selects how the coordinator reaches its shards: "engine"
// (or "") queries the sharded engine directly, "inproc" routes through
// the ShardClient layer with in-process clients, and "http" serves
// every shard from its own HTTP daemon and fans out over the /shard/*
// wire protocol — the cost ladder of the transport abstraction.
func RunSharding(cfg Config, maxShards, workers int, transport string) (ShardingResult, error) {
	cfg.fill()
	if maxShards <= 0 {
		maxShards = 8
	}
	if workers <= 0 {
		workers = 8
	}
	switch transport {
	case "":
		transport = "engine"
	case "engine", "inproc", "http":
	default:
		return ShardingResult{}, fmt.Errorf("experiments: unknown transport %q (engine, inproc, or http)", transport)
	}
	d, err := dataset.GenerateSynthetic(cfg.SyntheticDefaults())
	if err != nil {
		return ShardingResult{}, err
	}

	gen := workload.NewGenerator(d, cfg.Seed+2000)
	queries, err := MixedQueries(gen, 4, cfg.QueriesPerSize)
	if err != nil {
		return ShardingResult{}, err
	}
	if len(queries) == 0 {
		return ShardingResult{}, fmt.Errorf("experiments: no queries at scale %g", cfg.Scale)
	}
	const rounds = 20
	total := len(queries) * rounds

	res := ShardingResult{Queries: total, Workers: workers, Transport: transport}
	w := cfg.Out
	fmt.Fprintf(w, "=== Sharded engine sweep (|D|=%d, %d queries/point, %d workers, transport %s) ===\n",
		d.Len(), total, workers, transport)
	for shards := 1; shards <= maxShards; shards *= 2 {
		// Keep the aggregate cache budget constant across points: each
		// shard gets PoolPages/shards pages, so throughput differences
		// reflect the sharding mechanism rather than cache growth. Block
		// postings are deliberately NOT passed — sizing the OIF frontier
		// from each shard's hottest list is the planner decision this
		// sweep exists to exercise.
		perShardCache := cfg.PoolPages / shards
		if perShardCache < 1 {
			perShardCache = 1
		}
		buildStart := time.Now()
		idx, err := setcontain.New(setcontain.WrapDataset(d),
			setcontain.WithKind(setcontain.Sharded),
			setcontain.WithShards(shards),
			setcontain.WithBuildParallelism(shards),
			setcontain.WithPageSize(cfg.PageSize),
			setcontain.WithCachePages(perShardCache),
		)
		if err != nil {
			return ShardingResult{}, fmt.Errorf("experiments: build %d shards: %w", shards, err)
		}
		buildTime := time.Since(buildStart)

		store, cleanup, err := shardingStore(idx, transport, perShardCache)
		if err != nil {
			return ShardingResult{}, fmt.Errorf("experiments: %s transport over %d shards: %w", transport, shards, err)
		}
		elapsed, err := runStoreWorkers(store, queries, rounds, workers)
		cleanup()
		if err != nil {
			return ShardingResult{}, err
		}
		pt := ShardingPoint{
			Shards:    shards,
			BuildTime: buildTime,
			Elapsed:   elapsed,
			QPS:       float64(total) / elapsed.Seconds(),
			Plans:     setcontain.ShardPlans(idx.Engine()),
		}
		res.Points = append(res.Points, pt)
		fmt.Fprintf(w, "shards=%2d  build=%-10s  query=%-12s  %10.0f queries/s  inner=%s\n",
			pt.Shards, pt.BuildTime.Round(time.Millisecond),
			pt.Elapsed.Round(time.Microsecond), pt.QPS, summarisePlans(pt.Plans))
	}
	return res, nil
}

// shardingStore wraps the freshly built sharded index for the requested
// transport and returns the Store queries should run through, plus a
// cleanup tearing down whatever the transport stood up. "engine" serves
// the index as-is; "inproc" and "http" rebuild the coordinator over
// ShardClients aliasing the same shard engines, so every transport
// answers from identical data.
func shardingStore(idx *setcontain.Index, transport string, cachePages int) (*setcontain.Store, func(), error) {
	if transport == "engine" {
		return setcontain.NewStore(idx, cachePages), func() {}, nil
	}
	engines := setcontain.ShardEngines(idx.Engine())
	clients := make([]setcontain.ShardClient, len(engines))
	var downs []func()
	cleanup := func() {
		for i := len(downs) - 1; i >= 0; i-- {
			downs[i]()
		}
	}
	for i, eng := range engines {
		switch transport {
		case "inproc":
			clients[i] = setcontain.InprocShard(eng)
		case "http":
			sidx := setcontain.IndexOver(eng)
			sv := serve.NewServer(sidx, setcontain.NewStore(sidx, cachePages), serve.Config{})
			ts := httptest.NewServer(sv.Handler())
			clients[i] = setcontain.NewRemoteShard(ts.URL, nil)
			downs = append(downs, ts.Close, sv.Close)
		}
	}
	cidx, err := setcontain.ShardedOverClients(context.Background(), clients)
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	return setcontain.NewStore(cidx, cachePages), cleanup, nil
}

// summarisePlans compresses per-shard decisions into e.g. "OIF x4" or
// "OIF x3 + IF x1".
func summarisePlans(plans []setcontain.ShardPlan) string {
	counts := map[setcontain.Kind]int{}
	for _, p := range plans {
		counts[p.Kind]++
	}
	out := ""
	for _, k := range setcontain.Kinds() {
		if n := counts[k]; n > 0 {
			if out != "" {
				out += " + "
			}
			out += fmt.Sprintf("%s x%d", k, n)
		}
	}
	if out == "" {
		out = "none"
	}
	return out
}
