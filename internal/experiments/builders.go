package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/invfile"
	"repro/internal/ubtree"
	"repro/setcontain"
)

// Pair is an IF + OIF engine built over the same dataset and metered for
// measurement. The engines answer through the public setcontain.Engine
// interface; backend-specific quantities (space breakdowns, the OIF
// ordering) are reached through Engine.Unwrap.
type Pair struct {
	Data *dataset.Dataset
	IF   setcontain.Engine
	OIF  setcontain.Engine
}

// UnwrapOIF returns the pair's backing core index for the experiments
// that need the OIF's internals (ordering, space breakdown).
func (p *Pair) UnwrapOIF() *core.Index { return p.OIF.Unwrap().(*core.Index) }

// UnwrapIF returns the pair's backing inverted-file index.
func (p *Pair) UnwrapIF() *invfile.Index { return p.IF.Unwrap().(*invfile.Index) }

// BuildPair constructs and meters both competing engines.
func (c Config) BuildPair(d *dataset.Dataset) (*Pair, error) {
	ifx, err := invfile.Build(d, invfile.BuildOptions{PageSize: c.PageSize})
	if err != nil {
		return nil, fmt.Errorf("experiments: build IF: %w", err)
	}
	ifEng, err := setcontain.EngineOf(ifx)
	if err != nil {
		return nil, err
	}
	if _, err := Meter(ifEng, c.PoolPages); err != nil {
		return nil, err
	}
	oif, err := core.Build(d, core.Options{PageSize: c.PageSize, BlockPostings: c.BlockPostings})
	if err != nil {
		return nil, fmt.Errorf("experiments: build OIF: %w", err)
	}
	oifEng, err := setcontain.EngineOf(oif)
	if err != nil {
		return nil, err
	}
	if _, err := Meter(oifEng, c.PoolPages); err != nil {
		return nil, err
	}
	return &Pair{Data: d, IF: ifEng, OIF: oifEng}, nil
}

// Systems returns the pair as labelled measurement targets.
func (p *Pair) Systems() []SystemIndex {
	return []SystemIndex{
		{Name: "IF", Index: p.IF},
		{Name: "OIF", Index: p.OIF},
	}
}

// BuildUnordered constructs and meters the §5 ablation engine with the
// same block size as the OIF under comparison.
func (c Config) BuildUnordered(d *dataset.Dataset) (setcontain.Engine, error) {
	ub, err := ubtree.Build(d, ubtree.Options{PageSize: c.PageSize, BlockPostings: c.BlockPostings})
	if err != nil {
		return nil, fmt.Errorf("experiments: build unordered B-tree: %w", err)
	}
	eng, err := setcontain.EngineOf(ub)
	if err != nil {
		return nil, err
	}
	if _, err := Meter(eng, c.PoolPages); err != nil {
		return nil, err
	}
	return eng, nil
}

// SyntheticDefaults mirrors §5: domain 2 000, Zipf 0.8, cardinalities
// 2-20, |D| = 10M x Scale.
func (c Config) SyntheticDefaults() dataset.SyntheticConfig {
	return dataset.SyntheticConfig{
		NumRecords: c.scaled(10_000_000),
		DomainSize: 2000,
		MinLen:     2,
		MaxLen:     20,
		ZipfTheta:  0.8,
		Seed:       c.Seed,
	}
}
