package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/invfile"
	"repro/internal/ubtree"
)

// Pair is an IF + OIF built over the same dataset and metered for
// measurement.
type Pair struct {
	Data *dataset.Dataset
	IF   *invfile.Index
	OIF  *core.Index
}

// BuildPair constructs and meters both competing indexes.
func (c Config) BuildPair(d *dataset.Dataset) (*Pair, error) {
	ifx, err := invfile.Build(d, invfile.BuildOptions{PageSize: c.PageSize})
	if err != nil {
		return nil, fmt.Errorf("experiments: build IF: %w", err)
	}
	if _, err := Meter(ifx, c.PoolPages); err != nil {
		return nil, err
	}
	oif, err := core.Build(d, core.Options{PageSize: c.PageSize, BlockPostings: c.BlockPostings})
	if err != nil {
		return nil, fmt.Errorf("experiments: build OIF: %w", err)
	}
	if _, err := Meter(oif, c.PoolPages); err != nil {
		return nil, err
	}
	return &Pair{Data: d, IF: ifx, OIF: oif}, nil
}

// Systems returns the pair as labelled measurement targets.
func (p *Pair) Systems() []SystemIndex {
	return []SystemIndex{
		{Name: "IF", Index: p.IF},
		{Name: "OIF", Index: p.OIF},
	}
}

// BuildUnordered constructs and meters the §5 ablation index with the
// same block size as the OIF under comparison.
func (c Config) BuildUnordered(d *dataset.Dataset) (*ubtree.Index, error) {
	ub, err := ubtree.Build(d, ubtree.Options{PageSize: c.PageSize, BlockPostings: c.BlockPostings})
	if err != nil {
		return nil, fmt.Errorf("experiments: build unordered B-tree: %w", err)
	}
	if _, err := Meter(ub, c.PoolPages); err != nil {
		return nil, err
	}
	return ub, nil
}

// SyntheticDefaults mirrors §5: domain 2 000, Zipf 0.8, cardinalities
// 2-20, |D| = 10M x Scale.
func (c Config) SyntheticDefaults() dataset.SyntheticConfig {
	return dataset.SyntheticConfig{
		NumRecords: c.scaled(10_000_000),
		DomainSize: 2000,
		MinLen:     2,
		MaxLen:     20,
		ZipfTheta:  0.8,
		Seed:       c.Seed,
	}
}
