// Package experiments regenerates every table and figure of the paper's
// evaluation (§5): Fig. 7 (real-data page accesses), Figs. 8-10
// (synthetic sweeps for subset/equality/superset over domain size,
// database size, query size and skew, in page accesses and CPU+I/O time),
// the space-overhead comparison, the unordered-B-tree ordering ablation,
// and the query/update performance summary.
//
// Measurements follow the paper's protocol: indexes are built with a
// large pool, then queries run through a minimal buffer pool (32 KB by
// default — 8 pages of 4 KB) whose cache misses are the reported "disk
// page accesses". CPU time is measured wall time over the in-memory
// pager; I/O time is modelled from the sequential/random miss counts by
// storage.DiskModel (see DESIGN.md for the substitution rationale).
package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/dataset"
	"repro/internal/storage"
)

// Config controls dataset scale and measurement.
type Config struct {
	// Scale multiplies the paper's synthetic database sizes (10M default
	// |D|). 1.0 reproduces paper scale; the default 0.01 keeps the whole
	// suite laptop-fast while preserving every comparison's shape.
	Scale float64
	// RealScale multiplies the real-dataset twins' record counts
	// (msweb 327K, msnbc 990K).
	RealScale float64
	// PageSize for all index files.
	PageSize int
	// BlockPostings for OIF and unordered-B-tree blocks.
	BlockPostings int
	// PoolPages is the measurement buffer pool size; the paper's minimum
	// cache is 32 KB = 8 pages of 4 KB.
	PoolPages int
	// QueriesPerSize matches the paper's 10 queries per size and type.
	QueriesPerSize int
	// Seed drives dataset generation and workloads.
	Seed int64
	// Disk converts access traces to I/O time.
	Disk storage.DiskModel
	// Out receives the printed tables. Required.
	Out io.Writer
}

// DefaultConfig returns the laptop-scale defaults.
func DefaultConfig(out io.Writer) Config {
	return Config{
		Scale:          0.01,
		RealScale:      0.1,
		PageSize:       storage.DefaultPageSize,
		BlockPostings:  64,
		PoolPages:      storage.DefaultPoolPages,
		QueriesPerSize: 10,
		Seed:           1,
		Disk:           storage.DefaultDiskModel(),
		Out:            out,
	}
}

func (c *Config) fill() {
	if c.Scale <= 0 {
		c.Scale = 0.01
	}
	if c.RealScale <= 0 {
		c.RealScale = 0.1
	}
	if c.PageSize <= 0 {
		c.PageSize = storage.DefaultPageSize
	}
	if c.BlockPostings <= 0 {
		c.BlockPostings = 64
	}
	if c.PoolPages <= 0 {
		c.PoolPages = storage.DefaultPoolPages
	}
	if c.QueriesPerSize <= 0 {
		c.QueriesPerSize = 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Disk == (storage.DiskModel{}) {
		c.Disk = storage.DefaultDiskModel()
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
}

// scaled applies Scale to a paper-scale record count, with a small floor
// so tiny scales still exercise multi-block lists.
func (c Config) scaled(n int) int {
	v := int(float64(n) * c.Scale)
	if v < 2000 {
		v = 2000
	}
	return v
}

// ContainmentIndex is the common query surface of the three competing
// indexes (core.Index, invfile.Index, ubtree.Index).
type ContainmentIndex interface {
	Subset([]dataset.Item) ([]uint32, error)
	Equality([]dataset.Item) ([]uint32, error)
	Superset([]dataset.Item) ([]uint32, error)
	SetPool(*storage.BufferPool) error
	Pool() *storage.BufferPool
}

// Metrics aggregates per-query measurements, averaged over a workload.
type Metrics struct {
	Queries   int
	Pages     float64 // disk page accesses (buffer-pool misses)
	SeqPages  float64
	RandPages float64
	CPU       time.Duration // measured compute time
	IO        time.Duration // modelled disk time
	Answers   float64
}

// Total returns CPU + modelled I/O.
func (m Metrics) Total() time.Duration { return m.CPU + m.IO }

func (m Metrics) String() string {
	return fmt.Sprintf("pages=%.1f (seq %.1f, rand %.1f) cpu=%s io=%s answers=%.1f",
		m.Pages, m.SeqPages, m.RandPages, m.CPU, m.IO, m.Answers)
}

// SystemMetrics labels a Metrics with the system that produced it.
type SystemMetrics struct {
	Name string
	M    Metrics
}

// Point is one x-position of a figure panel: the parameter value and the
// metrics of every system measured there.
type Point struct {
	Param   string
	Systems []SystemMetrics
}

// Get returns the metrics for a system name.
func (p Point) Get(name string) (Metrics, bool) {
	for _, s := range p.Systems {
		if s.Name == name {
			return s.M, true
		}
	}
	return Metrics{}, false
}

// Panel is one sub-plot of a paper figure.
type Panel struct {
	Title  string
	XLabel string
	Points []Point
}

// Figure is a regenerated paper artefact.
type Figure struct {
	Name   string
	Panels []Panel
}
