package experiments

import (
	"fmt"
	"time"

	"repro/internal/storage"
	"repro/internal/workload"
	"repro/setcontain"
)

// Meter re-points an index at a fresh minimal buffer pool over its
// existing pager, making it measurable under the paper's cache budget.
func Meter(ix ContainmentIndex, poolPages int) (*storage.BufferPool, error) {
	pool := storage.NewBufferPool(ix.Pool().Pager(), poolPages)
	if err := ix.SetPool(pool); err != nil {
		return nil, err
	}
	return pool, nil
}

// AsQuery converts a generated workload query to the public first-class
// form, ready for Query.Eval or Store.Exec.
func AsQuery(q workload.Query) (setcontain.Query, error) {
	var pred setcontain.Predicate
	switch q.Kind {
	case workload.Subset:
		pred = setcontain.PredicateSubset
	case workload.Equality:
		pred = setcontain.PredicateEquality
	case workload.Superset:
		pred = setcontain.PredicateSuperset
	default:
		return setcontain.Query{}, fmt.Errorf("experiments: unknown query kind %v", q.Kind)
	}
	return setcontain.Query{Pred: pred, Items: q.Items}, nil
}

// MixedQueries draws the standard mixed workload — queriesPerKind
// queries of the given size for each of subset, equality, and superset
// — in the public Query form. It is the load the concurrency and
// sharding sweeps (and the root Store benchmarks) replay.
func MixedQueries(gen *workload.Generator, size, queriesPerKind int) ([]setcontain.Query, error) {
	var out []setcontain.Query
	for _, k := range []workload.Kind{workload.Subset, workload.Equality, workload.Superset} {
		for _, q := range gen.Queries(k, size, queriesPerKind) {
			pq, err := AsQuery(q)
			if err != nil {
				return nil, err
			}
			out = append(out, pq)
		}
	}
	return out, nil
}

// RunQuery dispatches one workload query against an index through the
// public Query type — the same single-dispatch path the API exposes.
func RunQuery(ix ContainmentIndex, q workload.Query) ([]uint32, error) {
	pq, err := AsQuery(q)
	if err != nil {
		return nil, err
	}
	return pq.Eval(ix)
}

// runQuery is the internal alias used by the measurement loop.
func runQuery(ix ContainmentIndex, q workload.Query) ([]uint32, error) {
	return RunQuery(ix, q)
}

// MeasureWorkload runs every query against ix and returns per-query
// averages. The index must already be metered. Following the paper's
// protocol the minimal cache starts cold for the workload but persists
// across its queries — §5 runs the 10 queries of each size sequentially
// against the live 32 KB Berkeley DB cache.
func MeasureWorkload(ix ContainmentIndex, queries []workload.Query, disk storage.DiskModel) (Metrics, error) {
	var m Metrics
	pool := ix.Pool()
	if err := pool.DropAll(); err != nil {
		return Metrics{}, err
	}
	for _, q := range queries {
		pool.ResetStats()
		start := time.Now()
		res, err := runQuery(ix, q)
		if err != nil {
			return Metrics{}, fmt.Errorf("experiments: %v query %v: %w", q.Kind, q.Items, err)
		}
		cpu := time.Since(start)
		st := pool.Stats()
		m.Queries++
		m.Pages += float64(st.Misses)
		m.SeqPages += float64(st.SeqMisses)
		m.RandPages += float64(st.RandMisses)
		m.CPU += cpu
		m.IO += disk.Time(st)
		m.Answers += float64(len(res))
	}
	if m.Queries > 0 {
		n := int64(m.Queries)
		m.Pages /= float64(n)
		m.SeqPages /= float64(n)
		m.RandPages /= float64(n)
		m.CPU /= time.Duration(n)
		m.IO /= time.Duration(n)
		m.Answers /= float64(n)
	}
	return m, nil
}

// MeasureSystems measures the same workload across several systems,
// returning one labelled entry per system.
func MeasureSystems(systems []SystemIndex, queries []workload.Query, disk storage.DiskModel) ([]SystemMetrics, error) {
	out := make([]SystemMetrics, 0, len(systems))
	for _, s := range systems {
		m, err := MeasureWorkload(s.Index, queries, disk)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.Name, err)
		}
		out = append(out, SystemMetrics{Name: s.Name, M: m})
	}
	return out, nil
}

// SystemIndex pairs an index with its display name.
type SystemIndex struct {
	Name  string
	Index ContainmentIndex
}
