package experiments

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/workload"
)

// RunOrdering regenerates the §5 "Impact of the OIF ordering" ablation:
// subset queries with selectivities swept across decades (the paper uses
// 1e-7 … 1e-2 at 10M records), OIF versus a same-block-size B-tree over
// unordered lists. The paper's finding: the OIF wins in all cases,
// because the win comes from the ordering + metadata, not from merely
// indexing the lists.
func RunOrdering(cfg Config) (Figure, error) {
	cfg.fill()
	d, err := dataset.GenerateSynthetic(cfg.SyntheticDefaults())
	if err != nil {
		return Figure{}, err
	}
	return RunOrderingOn(cfg, d)
}

// RunOrderingOn runs the ablation on a caller-provided dataset.
func RunOrderingOn(cfg Config, d *dataset.Dataset) (Figure, error) {
	cfg.fill()
	pair, err := cfg.BuildPair(d)
	if err != nil {
		return Figure{}, err
	}
	ub, err := cfg.BuildUnordered(d)
	if err != nil {
		return Figure{}, err
	}

	// Generate a pool of subset queries across sizes, classify them by
	// true selectivity decade (measured with the OIF itself — any correct
	// evaluator does), and keep up to QueriesPerSize per decade.
	gen := workload.NewGenerator(d, cfg.Seed+600)
	buckets := map[int][]workload.Query{}
	const perBucket = 5
	for size := 2; size <= 12; size++ {
		for _, q := range gen.SubsetQueries(size, 40) {
			res, err := pair.OIF.Subset(q.Items)
			if err != nil {
				return Figure{}, err
			}
			if len(res) == 0 {
				continue
			}
			sel := float64(len(res)) / float64(d.Len())
			dec := int(math.Floor(math.Log10(sel)))
			if len(buckets[dec]) < perBucket {
				buckets[dec] = append(buckets[dec], q)
			}
		}
	}

	panel := Panel{
		Title:  fmt.Sprintf("subset queries by selectivity decade (|D|=%d)", d.Len()),
		XLabel: "selectivity",
	}
	for dec := -7; dec <= -1; dec++ {
		queries := buckets[dec]
		if len(queries) == 0 {
			continue
		}
		sysOIF, err := MeasureWorkload(pair.OIF, queries, cfg.Disk)
		if err != nil {
			return Figure{}, err
		}
		sysUB, err := MeasureWorkload(ub, queries, cfg.Disk)
		if err != nil {
			return Figure{}, err
		}
		panel.Points = append(panel.Points, Point{
			Param: fmt.Sprintf("1e%d", dec),
			Systems: []SystemMetrics{
				{Name: "UBT", M: sysUB},
				{Name: "OIF", M: sysOIF},
			},
		})
	}

	// Second panel: queries that include a very frequent item — the
	// workload skew the paper's introduction motivates ("users usually
	// pose queries involving the most frequent items"). This is where the
	// ordering + metadata pay off hardest: the frequent item costs the
	// OIF a metadata lookup but costs the unordered tree a near-full scan
	// of its longest list.
	freqPanel := Panel{
		Title:  "subset queries including a top-10 item",
		XLabel: "|qs|",
	}
	ord := pair.UnwrapOIF().Order()
	for _, size := range []int{2, 3, 4, 6} {
		item := ord.Item(uint32(gen2Rank(size))) // a top-10 rank, varied per size
		queries := gen.SubsetQueriesWithItem(item, size, cfg.QueriesPerSize)
		if len(queries) == 0 {
			continue
		}
		sysOIF, err := MeasureWorkload(pair.OIF, queries, cfg.Disk)
		if err != nil {
			return Figure{}, err
		}
		sysUB, err := MeasureWorkload(ub, queries, cfg.Disk)
		if err != nil {
			return Figure{}, err
		}
		freqPanel.Points = append(freqPanel.Points, Point{
			Param: fmt.Sprint(size),
			Systems: []SystemMetrics{
				{Name: "UBT", M: sysUB},
				{Name: "OIF", M: sysOIF},
			},
		})
	}

	fig := Figure{
		Name:   "Ordering ablation: OIF vs unordered B-tree on inverted lists (subset queries)",
		Panels: []Panel{panel, freqPanel},
	}
	PrintFigure(cfg.Out, fig)
	return fig, nil
}

// gen2Rank spreads the frequent item choice over the top ranks.
func gen2Rank(size int) int { return (size * 3) % 10 }
