package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/workload"
	"repro/setcontain"
	"repro/setcontain/serve"
)

// ServePoint is the measured service behaviour at one client count.
type ServePoint struct {
	Clients int
	Queries int
	Elapsed time.Duration
	QPS     float64
	P50     time.Duration
	P90     time.Duration
	P99     time.Duration
}

// ServeResult is the serving-layer load sweep: per-client-count
// latency/throughput points plus the server's own account of how well
// micro-batching and the decoded cache engaged.
type ServeResult struct {
	Addr           string
	Points         []ServePoint
	MeanBatch      float64
	Pending        int
	Rejected       int64
	DecodedHitRate float64
}

// RunServe drives the HTTP serving layer with concurrent clients — the
// ROADMAP's heavy-traffic scenario end-to-end over the wire. Unless
// addr names a live setcontaind instance, an in-process server over a
// sharded skewed synthetic dataset is started first. A mixed workload
// is then replayed by 1, 2, 4, … up to maxClients concurrent clients
// issuing single-query POST /query requests (so any batching observed
// is the server coalescing independent requests, exactly the
// production shape), and each point reports client-observed p50/p90/p99
// latency and aggregate QPS. The final /stats fetch shows whether
// micro-batching engaged: under concurrent load the mean batch size
// should exceed 1.
func RunServe(cfg Config, maxClients int, addr string) (ServeResult, error) {
	cfg.fill()
	if maxClients <= 0 {
		maxClients = 8
	}
	w := cfg.Out

	// One synthetic dataset serves both roles: the in-process server
	// indexes it, and the workload generator draws queries from its
	// records' own skew. Against a live -addr server the queries still
	// come from these defaults — point such a server at a matching
	// -synthetic dataset for meaningful answers.
	d, err := dataset.GenerateSynthetic(cfg.SyntheticDefaults())
	if err != nil {
		return ServeResult{}, err
	}

	base := addr
	if base == "" {
		idx, err := setcontain.New(setcontain.WrapDataset(d),
			setcontain.WithKind(setcontain.Sharded),
			setcontain.WithPageSize(cfg.PageSize),
			setcontain.WithCachePages(cfg.PoolPages),
		)
		if err != nil {
			return ServeResult{}, err
		}
		store := setcontain.NewStore(idx, cfg.PoolPages)
		sv := serve.NewServer(idx, store, serve.Config{})
		defer sv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return ServeResult{}, err
		}
		hs := &http.Server{Handler: sv.Handler()}
		go func() { _ = hs.Serve(ln) }()
		defer hs.Close()
		base = "http://" + ln.Addr().String()
		fmt.Fprintf(w, "=== serve load sweep (in-process setcontaind, |D|=%d, sharded) ===\n", d.Len())
	} else {
		fmt.Fprintf(w, "=== serve load sweep (live server %s) ===\n", base)
	}

	gen := workload.NewGenerator(d, cfg.Seed+2000)
	queries, err := MixedQueries(gen, 4, cfg.QueriesPerSize)
	if err != nil {
		return ServeResult{}, err
	}
	if len(queries) == 0 {
		return ServeResult{}, fmt.Errorf("experiments: no queries at scale %g", cfg.Scale)
	}
	// Single-query request bodies, premarshalled: the load loop then
	// measures the service, not the generator.
	bodies := make([][]byte, len(queries))
	for i, q := range queries {
		body, err := json.Marshal(serve.QueryRequest{Queries: []serve.QuerySpec{serve.SpecOf(q)}})
		if err != nil {
			return ServeResult{}, err
		}
		bodies[i] = body
	}

	httpc := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        maxClients * 2,
		MaxIdleConnsPerHost: maxClients * 2,
	}}
	defer httpc.CloseIdleConnections()

	if err := probeHealth(httpc, base); err != nil {
		return ServeResult{}, err
	}

	const rounds = 10
	res := ServeResult{Addr: base}
	for clients := 1; clients <= maxClients; clients *= 2 {
		pt, err := driveClients(httpc, base, bodies, clients, rounds)
		if err != nil {
			return ServeResult{}, err
		}
		res.Points = append(res.Points, pt)
		fmt.Fprintf(w, "clients=%2d  elapsed=%-12s %8.0f qps  p50=%-10s p90=%-10s p99=%s\n",
			pt.Clients, pt.Elapsed.Round(time.Microsecond), pt.QPS,
			pt.P50.Round(time.Microsecond), pt.P90.Round(time.Microsecond), pt.P99.Round(time.Microsecond))
	}

	st, err := fetchStats(httpc, base)
	if err != nil {
		return ServeResult{}, err
	}
	res.MeanBatch = st.Batcher.MeanBatch
	res.Pending = st.Batcher.Pending
	res.Rejected = st.Batcher.Rejected
	res.DecodedHitRate = st.Store.DecodedHitRate
	fmt.Fprintf(w, "server: mean batch %.2f (histogram %v), rejected %d, decoded hit rate %.2f\n",
		st.Batcher.MeanBatch, compactHist(st.Batcher.BatchSizes), st.Batcher.Rejected, st.Store.DecodedHitRate)
	return res, nil
}

// driveClients replays the request bodies rounds times, sharded across
// clients concurrent goroutines, and collects per-request latency.
func driveClients(httpc *http.Client, base string, bodies [][]byte, clients, rounds int) (ServePoint, error) {
	perClient := make([][]time.Duration, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lat := make([]time.Duration, 0, rounds*len(bodies)/clients+1)
			for r := 0; r < rounds; r++ {
				for i := c; i < len(bodies); i += clients {
					t0 := time.Now()
					resp, err := httpc.Post(base+"/query", "application/json", bytes.NewReader(bodies[i]))
					if err != nil {
						errs[c] = err
						return
					}
					_, cerr := io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if cerr != nil {
						errs[c] = cerr
						return
					}
					if resp.StatusCode == http.StatusTooManyRequests {
						continue // shed under overload: not a latency sample
					}
					if resp.StatusCode != http.StatusOK {
						errs[c] = fmt.Errorf("experiments: serve returned status %d", resp.StatusCode)
						return
					}
					lat = append(lat, time.Since(t0))
				}
			}
			perClient[c] = lat
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return ServePoint{}, err
		}
	}
	var all []time.Duration
	for _, lat := range perClient {
		all = append(all, lat...)
	}
	if len(all) == 0 {
		return ServePoint{}, fmt.Errorf("experiments: every request was shed at %d clients", clients)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return ServePoint{
		Clients: clients,
		Queries: len(all),
		Elapsed: elapsed,
		QPS:     float64(len(all)) / elapsed.Seconds(),
		P50:     percentile(all, 0.50),
		P90:     percentile(all, 0.90),
		P99:     percentile(all, 0.99),
	}, nil
}

// percentile returns the p-quantile of the ascending latency samples.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// probeHealth fails fast when the target server is absent or serving a
// different API.
func probeHealth(httpc *http.Client, base string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return fmt.Errorf("experiments: probing %s: %w", base, err)
	}
	defer resp.Body.Close()
	var h serve.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil || !h.OK {
		return fmt.Errorf("experiments: %s/healthz not healthy (err %v)", base, err)
	}
	return nil
}

// fetchStats retrieves the server's /stats snapshot.
func fetchStats(httpc *http.Client, base string) (serve.StatsResponse, error) {
	resp, err := httpc.Get(base + "/stats")
	if err != nil {
		return serve.StatsResponse{}, err
	}
	defer resp.Body.Close()
	var st serve.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return serve.StatsResponse{}, err
	}
	return st, nil
}

// compactHist renders a batch-size histogram as size:count pairs,
// skipping empty buckets.
func compactHist(sizes []int64) string {
	var b bytes.Buffer
	b.WriteByte('[')
	first := true
	for i, n := range sizes {
		if n == 0 {
			continue
		}
		if !first {
			b.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&b, "%d:%d", i+1, n)
	}
	b.WriteByte(']')
	return b.String()
}
