package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunServe exercises the serving-layer load sweep end-to-end at
// tiny scale: an in-process server over a sharded synthetic dataset,
// concurrent HTTP clients, and a /stats readback.
func TestRunServe(t *testing.T) {
	var out bytes.Buffer
	cfg := tinyConfig(&out)
	res, err := RunServe(cfg, 4, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 { // clients 1, 2, 4
		t.Fatalf("%d sweep points, want 3", len(res.Points))
	}
	for _, pt := range res.Points {
		if pt.Queries == 0 || pt.QPS <= 0 {
			t.Errorf("clients=%d: empty point %+v", pt.Clients, pt)
		}
		if pt.P50 <= 0 || pt.P99 < pt.P50 {
			t.Errorf("clients=%d: implausible latencies p50=%v p99=%v", pt.Clients, pt.P50, pt.P99)
		}
	}
	if res.MeanBatch < 1 {
		t.Errorf("mean batch %.2f, want >= 1", res.MeanBatch)
	}
	if !strings.Contains(out.String(), "serve load sweep") {
		t.Errorf("report missing header:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "mean batch") {
		t.Errorf("report missing stats line:\n%s", out.String())
	}
}

// TestRunServeBadAddr pins the fail-fast path for an absent server.
func TestRunServeBadAddr(t *testing.T) {
	var out bytes.Buffer
	cfg := tinyConfig(&out)
	if _, err := RunServe(cfg, 1, "http://127.0.0.1:1"); err == nil {
		t.Fatal("no error probing an unreachable server")
	}
}
