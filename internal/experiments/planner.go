package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/dataset"
	"repro/setcontain"
)

// PlannerResult reports the boolean-expression planner sweep: the same
// AND-heavy workload answered twice, once through the cost-based
// planner (rarest-first leaf order, empty-intermediate short-circuit)
// and once through the naive left-to-right baseline that evaluates
// every leaf in written order.
type PlannerResult struct {
	Queries int
	Theta   float64
	// PlannedTime and NaiveTime are the total evaluation wall times.
	PlannedTime time.Duration
	NaiveTime   time.Duration
	// EvaluatedLeaves and SkippedLeaves account the planned run's leaf
	// work; the naive baseline always evaluates every leaf.
	EvaluatedLeaves int
	SkippedLeaves   int
	TotalLeaves     int
	// LimitN and the latency percentiles report the early-exit sweep: a
	// hot OR workload on an inverted-file index answered limited
	// (first LimitN ids, streaming union with early exit) and unlimited
	// (full materialized answer), per-query wall times.
	LimitN                             int
	LimitedP50, LimitedP90, LimitedP99 time.Duration
	FullP50, FullP90, FullP99          time.Duration
}

// Speedup is the naive/planned wall-time ratio (>1 means the planner
// pays off).
func (r PlannerResult) Speedup() float64 {
	if r.PlannedTime <= 0 {
		return 0
	}
	return float64(r.NaiveTime) / float64(r.PlannedTime)
}

// RunPlanner measures what the cost-based expression planner buys on a
// skewed collection. The workload is adversarial for a left-to-right
// evaluator: every expression is an AND written widest-leaf-first — a
// subset leaf on one of the hottest items, then a subset leaf on a
// pair of rare items — so the naive order materializes the huge hot
// list before the rare pair shrinks it, while the planner's
// support-based costs reorder the rare pair first and usually
// short-circuit the hot leaf away entirely. Both paths must return
// byte-identical answers; the sweep reports wall time, leaf work, and
// the speedup.
func RunPlanner(cfg Config, rounds int) (PlannerResult, error) {
	cfg.fill()
	if rounds <= 0 {
		rounds = 5
	}
	d, err := dataset.GenerateSynthetic(cfg.SyntheticDefaults())
	if err != nil {
		return PlannerResult{}, err
	}
	idx, err := setcontain.New(setcontain.WrapDataset(d),
		setcontain.WithPageSize(cfg.PageSize),
		setcontain.WithBlockPostings(cfg.BlockPostings),
		setcontain.WithCachePages(cfg.PoolPages),
	)
	if err != nil {
		return PlannerResult{}, fmt.Errorf("experiments: planner build: %w", err)
	}

	// Split the domain by support into hot and cold halves; the profile
	// is computed once, exactly as Store.ExecExpr caches it.
	prof := idx.Supports()
	order := make([]setcontain.Item, 0, len(prof.PerItem))
	for it, n := range prof.PerItem {
		if n > 0 {
			order = append(order, setcontain.Item(it))
		}
	}
	if len(order) < 8 {
		return PlannerResult{}, fmt.Errorf("experiments: planner needs a wider domain (have %d supported items)", len(order))
	}
	sort.Slice(order, func(i, j int) bool { return prof.Support(order[i]) > prof.Support(order[j]) })
	hot, cold := order[:len(order)/10+1], order[len(order)*3/4:]

	rng := rand.New(rand.NewSource(cfg.Seed + 3000))
	n := 8 * cfg.QueriesPerSize
	exprs := make([]*setcontain.Expr, n)
	for i := range exprs {
		wide := setcontain.ExprOf(setcontain.SubsetQuery(
			[]setcontain.Item{hot[rng.Intn(len(hot))]}))
		// Three items from the coldest quartile rarely co-occur, so this
		// leaf's answer is usually empty — the planner then never touches
		// the wide leaf at all.
		rare := setcontain.ExprOf(setcontain.SubsetQuery(
			[]setcontain.Item{
				cold[rng.Intn(len(cold))],
				cold[rng.Intn(len(cold))],
				cold[rng.Intn(len(cold))],
			}))
		// Written widest-first: the naive baseline's worst order.
		exprs[i] = setcontain.And(wide, rare)
	}

	res := PlannerResult{Queries: n * rounds, Theta: prof.Theta}
	w := cfg.Out
	fmt.Fprintf(w, "=== Expression planner sweep (|D|=%d, %d AND-expressions x %d rounds, theta=%.3f) ===\n",
		d.Len(), n, rounds, prof.Theta)

	plans := make([]*setcontain.ExprPlan, n)
	for i, e := range exprs {
		if plans[i], err = idx.PlanExpr(e); err != nil {
			return PlannerResult{}, err
		}
		res.TotalLeaves += e.Leaves() * rounds
	}

	// Correctness first: the planner must not change a single answer.
	for i, e := range exprs {
		planned, _, err := plans[i].Eval(idx)
		if err != nil {
			return PlannerResult{}, err
		}
		naive, err := e.Eval(idx)
		if err != nil {
			return PlannerResult{}, err
		}
		if len(planned) != len(naive) {
			return PlannerResult{}, fmt.Errorf("experiments: planner diverges on %s: %d vs %d ids", e, len(planned), len(naive))
		}
		for j := range naive {
			if planned[j] != naive[j] {
				return PlannerResult{}, fmt.Errorf("experiments: planner diverges on %s at id %d", e, j)
			}
		}
	}

	start := time.Now()
	for r := 0; r < rounds; r++ {
		for i := range exprs {
			_, st, err := plans[i].Eval(idx)
			if err != nil {
				return PlannerResult{}, err
			}
			res.EvaluatedLeaves += st.EvaluatedLeaves
			res.SkippedLeaves += st.SkippedLeaves
		}
	}
	res.PlannedTime = time.Since(start)

	start = time.Now()
	for r := 0; r < rounds; r++ {
		for _, e := range exprs {
			if _, err := e.Eval(idx); err != nil {
				return PlannerResult{}, err
			}
		}
	}
	res.NaiveTime = time.Since(start)

	fmt.Fprintf(w, "planned: %-12s  (%d/%d leaves evaluated, %d short-circuited)\n",
		res.PlannedTime.Round(time.Microsecond), res.EvaluatedLeaves, res.TotalLeaves, res.SkippedLeaves)
	fmt.Fprintf(w, "naive:   %-12s  (every leaf, written order)\n", res.NaiveTime.Round(time.Microsecond))
	fmt.Fprintf(w, "speedup: %.2fx\n", res.Speedup())

	// Early-exit sweep: the same dataset behind an inverted-file index
	// (its posting cursors stream lazily, so a limit abandons undecoded
	// list tail), answered through wide hot ORs — the worst case for a
	// materializing evaluator, the best case for limit pushdown.
	if err := runLimitSweep(&res, d, cfg, hot, rounds); err != nil {
		return PlannerResult{}, err
	}
	fmt.Fprintf(w, "--- early exit (limit %d, OR-of-hot-subsets, inverted file) ---\n", res.LimitN)
	fmt.Fprintf(w, "limited:   p50 %-10s p90 %-10s p99 %s\n",
		res.LimitedP50.Round(time.Microsecond), res.LimitedP90.Round(time.Microsecond), res.LimitedP99.Round(time.Microsecond))
	fmt.Fprintf(w, "unlimited: p50 %-10s p90 %-10s p99 %s\n",
		res.FullP50.Round(time.Microsecond), res.FullP90.Round(time.Microsecond), res.FullP99.Round(time.Microsecond))
	if res.LimitedP50 > 0 {
		fmt.Fprintf(w, "p50 speedup: %.2fx\n", float64(res.FullP50)/float64(res.LimitedP50))
	}
	return res, nil
}

// runLimitSweep fills the PlannerResult's latency percentiles: per-query
// wall times for EvalExprLimit(·, 10) versus the unlimited EvalExpr over
// an OR-of-hot-subset workload on an inverted-file index.
func runLimitSweep(res *PlannerResult, d *dataset.Dataset, cfg Config, hot []setcontain.Item, rounds int) error {
	idx, err := setcontain.New(setcontain.WrapDataset(d),
		setcontain.WithKind(setcontain.InvertedFile),
		setcontain.WithPageSize(cfg.PageSize),
		setcontain.WithCachePages(cfg.PoolPages),
	)
	if err != nil {
		return fmt.Errorf("experiments: limit sweep build: %w", err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 4000))
	n := 4 * cfg.QueriesPerSize
	exprs := make([]*setcontain.Expr, n)
	for i := range exprs {
		kids := make([]*setcontain.Expr, 3)
		for j := range kids {
			kids[j] = setcontain.ExprOf(setcontain.SubsetQuery(
				[]setcontain.Item{hot[rng.Intn(len(hot))]}))
		}
		exprs[i] = setcontain.Or(kids...)
	}
	res.LimitN = 10
	limited := make([]time.Duration, 0, n*rounds)
	full := make([]time.Duration, 0, n*rounds)
	for r := 0; r < rounds; r++ {
		for _, e := range exprs {
			t0 := time.Now()
			if _, err := idx.EvalExprLimit(e, res.LimitN); err != nil {
				return err
			}
			limited = append(limited, time.Since(t0))
			t0 = time.Now()
			if _, err := idx.EvalExpr(e); err != nil {
				return err
			}
			full = append(full, time.Since(t0))
		}
	}
	res.LimitedP50, res.LimitedP90, res.LimitedP99 = percentiles(limited)
	res.FullP50, res.FullP90, res.FullP99 = percentiles(full)
	return nil
}

// percentiles sorts samples in place and reads the p50/p90/p99 marks.
func percentiles(samples []time.Duration) (p50, p90, p99 time.Duration) {
	if len(samples) == 0 {
		return 0, 0, 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	at := func(p float64) time.Duration {
		return samples[int(float64(len(samples)-1)*p)]
	}
	return at(0.50), at(0.90), at(0.99)
}
