package experiments

import (
	"fmt"
	"os"
	"slices"
	"time"

	"repro/internal/dataset"
	"repro/internal/wal"
	"repro/setcontain"
)

// AckPoint is one fsync policy's acknowledgement cost: the latency a
// client pays for a durable (or not — see the policy's contract)
// single-record insert through the write-ahead-logged mutation path,
// measured on the real filesystem so the "always" row carries the
// device's actual fsync price.
type AckPoint struct {
	Policy    wal.SyncPolicy
	Mutations int
	MeanAck   time.Duration
	P99Ack    time.Duration
	LogBytes  int64
}

// ReplayPoint is one restart measurement: recovering an index whose log
// tail holds Records mutations past the newest checkpoint.
type ReplayPoint struct {
	Records    int
	ReplayTime time.Duration
	PerRecord  time.Duration
}

// RecoveryResult is the durability-cost sweep: what an ack costs under
// each fsync policy, and what a restart costs as the log tail grows.
type RecoveryResult struct {
	Records int
	Acks    []AckPoint
	Replays []ReplayPoint
	// Verified reports that the recovered index of the longest replay
	// answered a probe workload identically to the never-crashed one.
	Verified bool
}

// RunRecovery measures the write-ahead log's two prices. First the ack
// latency: for each fsync policy, a durable index over a real temp
// directory takes a burst of single-record inserts, and the per-call
// latency is the time-to-acknowledgement — under "always" that is
// encode + write + fsync, the cost of the no-lost-writes guarantee;
// "os" is the lower bound with no durability on power loss. Then the
// restart price: an in-memory filesystem is crashed with progressively
// longer log tails past the checkpoint, and recovery (checkpoint
// restore + tail replay) is timed, verifying the longest recovery
// answers a probe workload identically to the live index it replaced.
func RunRecovery(cfg Config) (RecoveryResult, error) {
	cfg.fill()
	synth := cfg.SyntheticDefaults()
	synth.NumRecords = min(synth.NumRecords, 20000) // index scale is not the subject here
	d, err := dataset.GenerateSynthetic(synth)
	if err != nil {
		return RecoveryResult{}, err
	}
	res := RecoveryResult{Records: d.Len()}
	w := cfg.Out

	const mutations = 400
	fmt.Fprintf(w, "=== WAL recovery sweep (|D|=%d) ===\n", d.Len())
	fmt.Fprintf(w, "--- ack latency: %d single-record inserts per fsync policy (real disk) ---\n", mutations)
	for _, policy := range []wal.SyncPolicy{wal.SyncAlways, wal.SyncInterval, wal.SyncOS} {
		pt, err := measureAcks(d, policy, mutations)
		if err != nil {
			return res, err
		}
		res.Acks = append(res.Acks, pt)
		fmt.Fprintf(w, "%-9s mean=%-10s p99=%-10s %8.1f KB logged\n",
			pt.Policy, pt.MeanAck.Round(time.Microsecond), pt.P99Ack.Round(time.Microsecond),
			float64(pt.LogBytes)/1024)
	}

	fmt.Fprintf(w, "--- restart: checkpoint restore + log-tail replay (in-memory fs) ---\n")
	for _, tail := range []int{100, 1000, 5000} {
		pt, verified, err := measureReplay(d, tail)
		if err != nil {
			return res, err
		}
		res.Replays = append(res.Replays, pt)
		res.Verified = verified
		fmt.Fprintf(w, "tail=%-6d replay=%-10s %8s/record  verified=%v\n",
			pt.Records, pt.ReplayTime.Round(time.Millisecond), pt.PerRecord.Round(time.Microsecond), verified)
	}
	if !res.Verified {
		return res, fmt.Errorf("experiments: recovered index diverged from the live one")
	}
	return res, nil
}

// measureAcks times mutations acknowledgements under one fsync policy
// against the real filesystem.
func measureAcks(d *dataset.Dataset, policy wal.SyncPolicy, mutations int) (AckPoint, error) {
	idx, err := setcontain.New(setcontain.WrapDataset(d),
		setcontain.WithKind(setcontain.Sharded), setcontain.WithShards(2))
	if err != nil {
		return AckPoint{}, err
	}
	dir, err := os.MkdirTemp("", "oif-recovery-*")
	if err != nil {
		return AckPoint{}, err
	}
	defer os.RemoveAll(dir)
	dur, err := setcontain.NewDurable(dir, idx, setcontain.DurableOptions{
		Sync:            policy,
		CheckpointBytes: -1,
	})
	if err != nil {
		return AckPoint{}, err
	}
	defer dur.Close()

	lat := make([]time.Duration, mutations)
	set := [][]setcontain.Item{{2, 5, 9}}
	for i := range lat {
		start := time.Now()
		if _, err := dur.InsertSets(set); err != nil {
			return AckPoint{}, err
		}
		lat[i] = time.Since(start)
	}
	slices.Sort(lat)
	var total time.Duration
	for _, l := range lat {
		total += l
	}
	return AckPoint{
		Policy:    policy,
		Mutations: mutations,
		MeanAck:   total / time.Duration(mutations),
		P99Ack:    lat[mutations*99/100],
		LogBytes:  dur.Stats().Log.AppendedBytes,
	}, nil
}

// measureReplay crashes an in-memory filesystem holding a checkpoint
// plus a tail-record log and times the recovery, verifying the longest
// case answers like the index that never crashed.
func measureReplay(d *dataset.Dataset, tail int) (ReplayPoint, bool, error) {
	idx, err := setcontain.New(setcontain.WrapDataset(d),
		setcontain.WithKind(setcontain.Sharded), setcontain.WithShards(2))
	if err != nil {
		return ReplayPoint{}, false, err
	}
	fs := wal.NewMemFS()
	opts := setcontain.DurableOptions{FS: fs, CheckpointBytes: -1}
	dur, err := setcontain.NewDurable("wal", idx, opts)
	if err != nil {
		return ReplayPoint{}, false, err
	}
	for i := 0; i < tail; i++ {
		if _, err := dur.InsertSets([][]setcontain.Item{{2, 5, setcontain.Item(i % 64)}}); err != nil {
			return ReplayPoint{}, false, err
		}
	}
	probe := setcontain.SubsetQuery([]setcontain.Item{2, 5})
	want, err := dur.Index().Eval(probe)
	if err != nil {
		return ReplayPoint{}, false, err
	}
	if err := dur.Close(); err != nil {
		return ReplayPoint{}, false, err
	}
	fs.Crash()

	start := time.Now()
	re, err := setcontain.OpenDurable("wal", opts)
	if err != nil {
		return ReplayPoint{}, false, err
	}
	elapsed := time.Since(start)
	defer re.Close()
	if got := re.Stats().Replay.Records; got != tail {
		return ReplayPoint{}, false, fmt.Errorf("experiments: replayed %d records, want %d", got, tail)
	}
	got, err := re.Index().Eval(probe)
	if err != nil {
		return ReplayPoint{}, false, err
	}
	verified := slices.Equal(got, want)
	return ReplayPoint{
		Records:    tail,
		ReplayTime: elapsed,
		PerRecord:  elapsed / time.Duration(max(tail, 1)),
	}, verified, nil
}
