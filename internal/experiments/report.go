package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"
)

// PrintFigure renders a figure's panels as aligned text tables: one row
// per x-value with page accesses and cpu/io milliseconds per system —
// the same series the paper plots.
func PrintFigure(w io.Writer, fig Figure) {
	fmt.Fprintf(w, "=== %s ===\n", fig.Name)
	for _, panel := range fig.Panels {
		fmt.Fprintf(w, "--- %s ---\n", panel.Title)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		// Header from the first point's system names.
		if len(panel.Points) == 0 {
			fmt.Fprintln(w, "(no data)")
			continue
		}
		fmt.Fprintf(tw, "%s", panel.XLabel)
		for _, s := range panel.Points[0].Systems {
			fmt.Fprintf(tw, "\t%s:pages\t%s:cpu_ms\t%s:io_ms\t%s:total_ms", s.Name, s.Name, s.Name, s.Name)
		}
		fmt.Fprintf(tw, "\tanswers\n")
		for _, pt := range panel.Points {
			fmt.Fprintf(tw, "%s", pt.Param)
			var answers float64
			for _, s := range pt.Systems {
				fmt.Fprintf(tw, "\t%.1f\t%.2f\t%.2f\t%.2f",
					s.M.Pages, ms(s.M.CPU), ms(s.M.IO), ms(s.M.Total()))
				answers = s.M.Answers
			}
			fmt.Fprintf(tw, "\t%.1f\n", answers)
		}
		tw.Flush()
	}
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// ratio formats a/b defensively.
func ratio(a, b float64) string {
	if b == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2fx", a/b)
}
