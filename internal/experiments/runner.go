package experiments

import (
	"repro/internal/dataset"
)

// Runner caches built dataset/index pairs across experiments: figures
// 8-10 sweep the same parameter grid, so sharing pairs cuts RunAll's
// build work roughly threefold. SyntheticConfig is comparable and serves
// directly as the cache key.
type Runner struct {
	cfg   Config
	pairs map[dataset.SyntheticConfig]*Pair
}

// NewRunner wraps a config with a pair cache.
func NewRunner(cfg Config) *Runner {
	cfg.fill()
	return &Runner{cfg: cfg, pairs: make(map[dataset.SyntheticConfig]*Pair)}
}

// Pair returns the built pair for a synthetic config, building and
// caching it on first use.
func (r *Runner) Pair(sc dataset.SyntheticConfig) (*Pair, error) {
	if p, ok := r.pairs[sc]; ok {
		return p, nil
	}
	d, err := dataset.GenerateSynthetic(sc)
	if err != nil {
		return nil, err
	}
	p, err := r.cfg.BuildPair(d)
	if err != nil {
		return nil, err
	}
	r.pairs[sc] = p
	return p, nil
}

// Release drops the cache, letting the garbage collector reclaim indexes.
func (r *Runner) Release() { r.pairs = make(map[dataset.SyntheticConfig]*Pair) }
