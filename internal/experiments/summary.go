package experiments

import (
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/workload"
)

// SummaryResult is the §5 "Performance summary" trade-off. For a 1M-record
// database over 2 000 items the paper measures the average query (all
// three predicates) at 133 ms on the IF vs 25 ms on the OIF, while batch
// inserts cost 0.06 ms/record (IF) vs 0.135 ms/record (OIF); workloads
// with fewer updates per query than the break-even ratio favour the OIF.
type SummaryResult struct {
	Records int

	QueryIF  time.Duration // avg per query, CPU + modelled I/O
	QueryOIF time.Duration

	// Per-predicate averages (same workloads as the combined figure).
	PerPredicateIF  map[workload.Kind]time.Duration
	PerPredicateOIF map[workload.Kind]time.Duration

	UpdateIF  time.Duration // avg per inserted record, CPU + modelled I/O
	UpdateOIF time.Duration

	// BreakEven is (QueryIF-QueryOIF)/(UpdateOIF-UpdateIF): how many
	// updates per query a workload must exceed before the IF's cheaper
	// maintenance outweighs the OIF's faster queries.
	BreakEven float64
}

// RunSummary regenerates the performance summary at Scale.
func RunSummary(cfg Config) (SummaryResult, error) {
	cfg.fill()
	base := cfg.SyntheticDefaults()
	base.NumRecords = cfg.scaled(1_000_000)
	d, err := dataset.GenerateSynthetic(base)
	if err != nil {
		return SummaryResult{}, err
	}
	pair, err := cfg.BuildPair(d)
	if err != nil {
		return SummaryResult{}, err
	}

	// Average query cost across the three predicates, |qs| = 2..7,
	// tracked per predicate as well.
	gen := workload.NewGenerator(d, cfg.Seed+700)
	perIF := make(map[workload.Kind]time.Duration)
	perOIF := make(map[workload.Kind]time.Duration)
	var mIF, mOIF Metrics
	var totalQueries int
	for _, kind := range []workload.Kind{workload.Subset, workload.Equality, workload.Superset} {
		var queries []workload.Query
		for size := 2; size <= 7; size++ {
			queries = append(queries, gen.Queries(kind, size, cfg.QueriesPerSize)...)
		}
		kIF, err := MeasureWorkload(pair.IF, queries, cfg.Disk)
		if err != nil {
			return SummaryResult{}, err
		}
		kOIF, err := MeasureWorkload(pair.OIF, queries, cfg.Disk)
		if err != nil {
			return SummaryResult{}, err
		}
		perIF[kind] = kIF.Total()
		perOIF[kind] = kOIF.Total()
		n := len(queries)
		mIF.CPU += kIF.CPU * time.Duration(n)
		mIF.IO += kIF.IO * time.Duration(n)
		mOIF.CPU += kOIF.CPU * time.Duration(n)
		mOIF.IO += kOIF.IO * time.Duration(n)
		totalQueries += n
	}
	if totalQueries > 0 {
		mIF.CPU /= time.Duration(totalQueries)
		mIF.IO /= time.Duration(totalQueries)
		mOIF.CPU /= time.Duration(totalQueries)
		mOIF.IO /= time.Duration(totalQueries)
	}

	// Batch-update cost: insert 200K-scaled records, then merge.
	extraCfg := base
	extraCfg.NumRecords = cfg.scaled(200_000)
	extraCfg.Seed = cfg.Seed + 800
	extra, err := dataset.GenerateSynthetic(extraCfg)
	if err != nil {
		return SummaryResult{}, err
	}
	k := extra.Len()

	// IF: delta inserts plus append-merge. Modelled I/O: the merge
	// streams the old lists in and the grown lists out sequentially.
	pagesBefore := pair.IF.Space().Pages
	startIF := time.Now()
	for _, r := range extra.Records() {
		if _, err := pair.IF.Insert(r.Set); err != nil {
			return SummaryResult{}, err
		}
	}
	if err := pair.IF.MergeDelta(); err != nil {
		return SummaryResult{}, err
	}
	cpuIF := time.Since(startIF)
	pagesAfter := pair.IF.Space().Pages
	ioIF := time.Duration(pagesBefore+pagesAfter) * cfg.Disk.SequentialLatency
	updateIF := (cpuIF + ioIF) / time.Duration(k)

	// OIF: delta inserts plus the mandated re-sort and full rebuild
	// (§4.4). Modelled I/O: the rebuilt tree is written out sequentially.
	startOIF := time.Now()
	for _, r := range extra.Records() {
		if _, err := pair.OIF.Insert(r.Set); err != nil {
			return SummaryResult{}, err
		}
	}
	if err := pair.OIF.MergeDelta(); err != nil {
		return SummaryResult{}, err
	}
	cpuOIF := time.Since(startOIF)
	ioOIF := time.Duration(pair.OIF.Space().Pages) * cfg.Disk.SequentialLatency
	updateOIF := (cpuOIF + ioOIF) / time.Duration(k)

	res := SummaryResult{
		Records:         d.Len(),
		QueryIF:         mIF.Total(),
		QueryOIF:        mOIF.Total(),
		PerPredicateIF:  perIF,
		PerPredicateOIF: perOIF,
		UpdateIF:        updateIF,
		UpdateOIF:       updateOIF,
	}
	if updateOIF > updateIF && res.QueryIF > res.QueryOIF {
		res.BreakEven = float64(res.QueryIF-res.QueryOIF) / float64(updateOIF-updateIF)
	}

	w := cfg.Out
	fmt.Fprintln(w, "=== Performance summary (paper §5: IF 133ms vs OIF 25ms queries; 0.06 vs 0.135 ms/record updates) ===")
	fmt.Fprintf(w, "records=%d inserted=%d\n", res.Records, k)
	fmt.Fprintf(w, "avg query:  IF %v  OIF %v  (OIF speedup %s)\n",
		res.QueryIF, res.QueryOIF, ratio(float64(res.QueryIF), float64(res.QueryOIF)))
	for _, kind := range []workload.Kind{workload.Subset, workload.Equality, workload.Superset} {
		fmt.Fprintf(w, "  %-9v IF %v  OIF %v\n", kind, perIF[kind], perOIF[kind])
	}
	fmt.Fprintf(w, "avg update: IF %v/rec  OIF %v/rec  (OIF slowdown %s)\n",
		res.UpdateIF, res.UpdateOIF, ratio(float64(res.UpdateOIF), float64(res.UpdateIF)))
	if res.BreakEven > 0 {
		fmt.Fprintf(w, "break-even: %.0f updates per query\n", res.BreakEven)
	} else {
		fmt.Fprintf(w, "break-even: n/a (OIF queries not faster at this scale; the paper's regime needs ~1M records)\n")
	}
	return res, nil
}
