package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/workload"
	"repro/setcontain"
)

// ConcurrencyPoint is the measured throughput at one worker count.
type ConcurrencyPoint struct {
	Workers int
	Elapsed time.Duration
	QPS     float64
}

// ConcurrencyResult is the parallel-throughput sweep for one engine.
type ConcurrencyResult struct {
	Kind    setcontain.Kind
	Queries int
	Points  []ConcurrencyPoint
}

// RunConcurrency measures parallel query throughput through the public
// Store facade — the ROADMAP's heavy-traffic scenario, beyond the
// paper's single-stream evaluation. One engine of the given kind is
// built over the default synthetic dataset, then a mixed workload
// (subset, equality, superset) is replayed through Store.Exec at
// increasing goroutine counts up to maxWorkers; each goroutine borrows
// a pooled reader, so the sweep shows how the engine's page cache
// behaviour translates to aggregate QPS.
func RunConcurrency(cfg Config, kind setcontain.Kind, maxWorkers int) (ConcurrencyResult, error) {
	cfg.fill()
	if maxWorkers <= 0 {
		maxWorkers = 8
	}
	d, err := dataset.GenerateSynthetic(cfg.SyntheticDefaults())
	if err != nil {
		return ConcurrencyResult{}, err
	}
	idx, err := setcontain.New(setcontain.WrapDataset(d),
		setcontain.WithKind(kind),
		setcontain.WithPageSize(cfg.PageSize),
		setcontain.WithBlockPostings(cfg.BlockPostings),
		setcontain.WithCachePages(cfg.PoolPages),
	)
	if err != nil {
		return ConcurrencyResult{}, err
	}

	gen := workload.NewGenerator(d, cfg.Seed+1000)
	queries, err := MixedQueries(gen, 4, cfg.QueriesPerSize)
	if err != nil {
		return ConcurrencyResult{}, err
	}
	if len(queries) == 0 {
		return ConcurrencyResult{}, fmt.Errorf("experiments: no queries at scale %g", cfg.Scale)
	}
	// Replay the workload enough times that per-point timing is stable.
	const rounds = 20
	total := len(queries) * rounds

	store := setcontain.NewStore(idx, cfg.PoolPages)
	res := ConcurrencyResult{Kind: kind, Queries: total}
	w := cfg.Out
	fmt.Fprintf(w, "=== Store.Exec concurrency (%s, |D|=%d, %d queries/point) ===\n",
		kind, d.Len(), total)
	for workers := 1; workers <= maxWorkers; workers *= 2 {
		elapsed, err := runStoreWorkers(store, queries, rounds, workers)
		if err != nil {
			return ConcurrencyResult{}, err
		}
		pt := ConcurrencyPoint{
			Workers: workers,
			Elapsed: elapsed,
			QPS:     float64(total) / elapsed.Seconds(),
		}
		res.Points = append(res.Points, pt)
		fmt.Fprintf(w, "workers=%2d  elapsed=%-12s  %10.0f queries/s\n",
			pt.Workers, pt.Elapsed.Round(time.Microsecond), pt.QPS)
	}
	return res, nil
}

// runStoreWorkers replays the workload rounds times, sharded across
// workers goroutines issuing Store.Exec concurrently.
func runStoreWorkers(store *setcontain.Store, queries []setcontain.Query, rounds, workers int) (time.Duration, error) {
	ctx := context.Background()
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		fail error
	)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i := shard; i < len(queries); i += workers {
					if _, err := store.Exec(ctx, queries[i]); err != nil {
						mu.Lock()
						if fail == nil {
							fail = err
						}
						mu.Unlock()
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	return time.Since(start), fail
}
