package experiments

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/workload"
)

// RunFig7 regenerates Figure 7: average disk page accesses per query on
// the two real-dataset twins (msweb row, msnbc row), for subset, equality
// and superset queries with |qs| = 2..7, IF vs OIF.
func RunFig7(cfg Config) (Figure, error) {
	cfg.fill()
	fig := Figure{Name: "Figure 7: containment queries on real datasets (msweb, msnbc twins)"}

	msweb, err := dataset.GenerateMSWeb(dataset.MSWebConfig{
		BaseRecords: int(32711 * cfg.RealScale),
		Replicas:    10,
		Seed:        cfg.Seed + 100,
	})
	if err != nil {
		return Figure{}, err
	}
	msnbc, err := dataset.GenerateMSNBC(dataset.MSNBCConfig{
		NumRecords: int(989818 * cfg.RealScale),
		Seed:       cfg.Seed + 200,
	})
	if err != nil {
		return Figure{}, err
	}

	for _, ds := range []struct {
		name string
		data *dataset.Dataset
	}{{"msweb", msweb}, {"msnbc", msnbc}} {
		pair, err := cfg.BuildPair(ds.data)
		if err != nil {
			return Figure{}, err
		}
		gen := workload.NewGenerator(ds.data, cfg.Seed+300)
		for _, kind := range []workload.Kind{workload.Subset, workload.Equality, workload.Superset} {
			st := ds.data.ComputeStats()
			panel := Panel{
				Title: fmt.Sprintf("%s (%d records, %d items, avg card %.1f): %v queries",
					ds.name, st.NumRecords, st.DomainSize, st.AvgCardinal, kind),
				XLabel: "|qs|",
			}
			for size := 2; size <= 7; size++ {
				queries := gen.Queries(kind, size, cfg.QueriesPerSize)
				if len(queries) == 0 {
					continue
				}
				sys, err := MeasureSystems(pair.Systems(), queries, cfg.Disk)
				if err != nil {
					return Figure{}, err
				}
				panel.Points = append(panel.Points, Point{Param: fmt.Sprint(size), Systems: sys})
			}
			fig.Panels = append(fig.Panels, panel)
		}
	}
	PrintFigure(cfg.Out, fig)
	return fig, nil
}
