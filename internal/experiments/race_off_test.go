//go:build !race

package experiments

// raceEnabled reports whether the race detector is instrumenting this
// test binary; timing-shape assertions skip under it.
const raceEnabled = false
