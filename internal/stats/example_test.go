package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

// Example profiles a skewed record stream and shows the resulting
// engine plan: the fitted exponent crosses the skew threshold, so the
// planner picks the paper's Ordered Inverted File.
func Example() {
	coll := stats.NewCollector(100)
	// A heavily skewed stream: item 0 appears in every record, item 1
	// in half, the tail items once each.
	for i := 0; i < 64; i++ {
		set := []uint32{0}
		if i%2 == 0 {
			set = append(set, 1)
		}
		set = append(set, uint32(2+i%32), uint32(34+i%64))
		coll.Add(set)
	}

	profile := coll.Profile(4)
	plan := profile.Plan()
	fmt.Println("records:", profile.NumRecords)
	fmt.Println("hottest support:", profile.MaxFreq)
	fmt.Println("use OIF:", plan.UseOIF)
	// Output:
	// records: 64
	// hottest support: 64
	// use OIF: true
}
