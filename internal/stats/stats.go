package stats

import (
	"math"
	"sort"
)

// ItemFreq is one vocabulary item with its support (number of records
// containing it).
type ItemFreq struct {
	Item  uint32
	Count int64
}

// Collector accumulates item supports while records stream past. It is
// not safe for concurrent use; shard builders run one collector each.
type Collector struct {
	support  []int64
	records  int
	postings int64
	maxCard  int
}

// NewCollector returns a collector over items [0, domainSize).
func NewCollector(domainSize int) *Collector {
	if domainSize < 0 {
		domainSize = 0
	}
	return &Collector{support: make([]int64, domainSize)}
}

// Add feeds one record's item set (items must lie in the domain;
// out-of-domain items are ignored rather than panicking, since the
// dataset layer already validates them).
func (c *Collector) Add(set []uint32) {
	c.records++
	c.postings += int64(len(set))
	if len(set) > c.maxCard {
		c.maxCard = len(set)
	}
	for _, it := range set {
		if int(it) < len(c.support) {
			c.support[it]++
		}
	}
}

// NumRecords returns how many records have been added.
func (c *Collector) NumRecords() int { return c.records }

// ProfileOfSupports summarises an already-counted per-item support table
// (index = item id, value = support). Record-level fields (NumRecords,
// cardinalities, TotalPostings) are zero; the distributional fields —
// Distinct, MaxFreq, TopK, Theta — are filled, which is all that Skewed
// and Plan consult. The OIF's decoded-block cache profiles its per-list
// posting counts this way to decide whether skew-weighted admission
// pays.
func ProfileOfSupports(support []int64, k int) Profile {
	c := Collector{support: support}
	return c.Profile(k)
}

// Profile summarises an item-frequency distribution.
type Profile struct {
	NumRecords     int
	DomainSize     int
	TotalPostings  int64
	AvgCardinality float64
	MaxCardinality int

	// Distinct is the number of items with non-zero support.
	Distinct int
	// MaxFreq is the support of the most frequent item.
	MaxFreq int64
	// TopK lists the k most frequent items, descending by support.
	TopK []ItemFreq
	// Theta is the exponent of a Zipf law fitted to the rank-frequency
	// curve by least squares in log-log space: support(rank) ~
	// C/rank^Theta. Zero means uniform; the paper sweeps 0..1.
	Theta float64
}

// Profile snapshots the collector's distribution, retaining the k most
// frequent items (k <= 0 keeps none).
func (c *Collector) Profile(k int) Profile {
	p := Profile{
		NumRecords:     c.records,
		DomainSize:     len(c.support),
		TotalPostings:  c.postings,
		MaxCardinality: c.maxCard,
	}
	if c.records > 0 {
		p.AvgCardinality = float64(c.postings) / float64(c.records)
	}
	freqs := make([]ItemFreq, 0, len(c.support))
	for it, n := range c.support {
		if n > 0 {
			freqs = append(freqs, ItemFreq{Item: uint32(it), Count: n})
		}
	}
	sort.Slice(freqs, func(i, j int) bool {
		if freqs[i].Count != freqs[j].Count {
			return freqs[i].Count > freqs[j].Count
		}
		return freqs[i].Item < freqs[j].Item
	})
	p.Distinct = len(freqs)
	if len(freqs) > 0 {
		p.MaxFreq = freqs[0].Count
	}
	if k > len(freqs) {
		k = len(freqs)
	}
	if k > 0 {
		p.TopK = append([]ItemFreq(nil), freqs[:k]...)
	}
	counts := make([]int64, len(freqs))
	for i, f := range freqs {
		counts[i] = f.Count
	}
	p.Theta = FitZipf(counts)
	return p
}

// FitZipf estimates the Zipf exponent of a descending rank-frequency
// curve: the negated slope of the least-squares line through
// (ln rank, ln count). Counts must be positive and sorted descending;
// fewer than two distinct ranks yield 0 (no measurable skew).
func FitZipf(counts []int64) float64 {
	n := len(counts)
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for i, c := range counts {
		if c <= 0 {
			n = i
			break
		}
		x := math.Log(float64(i + 1))
		y := math.Log(float64(c))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	if n < 2 {
		return 0
	}
	fn := float64(n)
	den := fn*sxx - sx*sx
	if den == 0 {
		return 0
	}
	theta := -(fn*sxy - sx*sy) / den
	if theta < 0 {
		// A rising "rank-frequency" curve cannot happen on sorted input;
		// clamp noise to uniform.
		theta = 0
	}
	return theta
}

// SkewThreshold is the fitted Zipf exponent above which a distribution
// counts as skewed. The paper's synthetic sweep uses theta in
// {0, 0.4, 0.8, 1}; its OIF gains materialise clearly from ~0.4 up, so
// the planner switches engines midway through that range.
const SkewThreshold = 0.4

// minDistinctForSkew guards the fit: with a handful of distinct items
// the log-log regression is noise, and either engine performs alike.
const minDistinctForSkew = 8

// Skewed reports whether the profiled distribution is skewed enough for
// the Ordered Inverted File to pay off.
func (p Profile) Skewed() bool {
	return p.Distinct >= minDistinctForSkew && p.Theta >= SkewThreshold
}

// Plan is the build-time decision derived from a Profile.
type Plan struct {
	// UseOIF selects the Ordered Inverted File; false selects the plain
	// inverted file (uniform distributions gain nothing from ordering).
	UseOIF bool
	// BlockPostings sizes the OIF's frontier — the block cap of its
	// longest (most frequent) inverted lists. Zero keeps the default.
	BlockPostings int
	// Theta echoes the fitted exponent the decision rests on.
	Theta float64
}

// Frontier block bounds: blocks below 16 postings waste tree fanout,
// blocks above 512 postings make boundary scans dominate.
const (
	minBlockPostings = 16
	maxBlockPostings = 512
)

// Plan turns a profile into build decisions. The frontier heuristic
// balances the two costs of a probed list of f postings split into
// blocks of B: ~B postings scanned per boundary block against ~f/B
// blocks in the tree; B = sqrt(f) of the hottest list equalises them,
// clamped to [16, 512] and rounded to a power of two so blocks pack
// pages evenly.
func (p Profile) Plan() Plan {
	plan := Plan{UseOIF: p.Skewed(), Theta: p.Theta}
	if plan.UseOIF && p.MaxFreq > 0 {
		b := nextPow2(int(math.Sqrt(float64(p.MaxFreq))))
		if b < minBlockPostings {
			b = minBlockPostings
		}
		if b > maxBlockPostings {
			b = maxBlockPostings
		}
		plan.BlockPostings = b
	}
	return plan
}

// nextPow2 returns the smallest power of two >= n (n <= 1 yields 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
