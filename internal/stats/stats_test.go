package stats

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

// zipfCounts fabricates an exact rank-frequency curve C/rank^theta.
func zipfCounts(n int, c float64, theta float64) []int64 {
	out := make([]int64, n)
	for i := range out {
		v := int64(math.Round(c / math.Pow(float64(i+1), theta)))
		if v < 1 {
			v = 1
		}
		out[i] = v
	}
	return out
}

func TestFitZipfRecoversExponent(t *testing.T) {
	for _, theta := range []float64{0, 0.4, 0.8, 1.0} {
		got := FitZipf(zipfCounts(500, 1e6, theta))
		if math.Abs(got-theta) > 0.05 {
			t.Errorf("FitZipf(theta=%g) = %g", theta, got)
		}
	}
}

func TestFitZipfDegenerate(t *testing.T) {
	if got := FitZipf(nil); got != 0 {
		t.Errorf("FitZipf(nil) = %g", got)
	}
	if got := FitZipf([]int64{7}); got != 0 {
		t.Errorf("FitZipf(single) = %g", got)
	}
	if got := FitZipf([]int64{5, 5, 5, 5}); got != 0 {
		t.Errorf("FitZipf(flat) = %g", got)
	}
}

func TestCollectorProfile(t *testing.T) {
	c := NewCollector(10)
	c.Add([]uint32{0, 1, 2})
	c.Add([]uint32{0, 1})
	c.Add([]uint32{0})
	c.Add(nil)
	p := c.Profile(2)
	if p.NumRecords != 4 || p.TotalPostings != 6 || p.DomainSize != 10 {
		t.Fatalf("profile shape wrong: %+v", p)
	}
	if p.Distinct != 3 || p.MaxFreq != 3 || p.MaxCardinality != 3 {
		t.Fatalf("distribution wrong: %+v", p)
	}
	if p.AvgCardinality != 1.5 {
		t.Fatalf("avg cardinality %g", p.AvgCardinality)
	}
	if len(p.TopK) != 2 || p.TopK[0] != (ItemFreq{Item: 0, Count: 3}) || p.TopK[1] != (ItemFreq{Item: 1, Count: 2}) {
		t.Fatalf("top-k wrong: %+v", p.TopK)
	}
}

func TestCollectorIgnoresOutOfDomain(t *testing.T) {
	c := NewCollector(2)
	c.Add([]uint32{0, 5})
	p := c.Profile(4)
	if p.Distinct != 1 || p.TotalPostings != 2 {
		t.Fatalf("out-of-domain handling wrong: %+v", p)
	}
}

// TestPlanOnGeneratedData exercises the whole pipeline on the paper's
// synthetic generator: a Zipf-0.8 collection must plan the OIF, a
// uniform one the plain inverted file.
func TestPlanOnGeneratedData(t *testing.T) {
	for _, tc := range []struct {
		theta   float64
		wantOIF bool
	}{
		{0.8, true},
		{1.0, true},
		{0.0, false},
	} {
		d, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
			NumRecords: 5000, DomainSize: 500, MinLen: 2, MaxLen: 12,
			ZipfTheta: tc.theta, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		c := NewCollector(d.DomainSize())
		for _, r := range d.Records() {
			c.Add(r.Set)
		}
		p := c.Profile(8)
		plan := p.Plan()
		if plan.UseOIF != tc.wantOIF {
			t.Errorf("theta=%g: plan.UseOIF = %v (fitted theta %.2f)", tc.theta, plan.UseOIF, p.Theta)
		}
		if plan.UseOIF {
			if plan.BlockPostings < minBlockPostings || plan.BlockPostings > maxBlockPostings {
				t.Errorf("theta=%g: frontier block %d outside [%d,%d]", tc.theta,
					plan.BlockPostings, minBlockPostings, maxBlockPostings)
			}
			if plan.BlockPostings&(plan.BlockPostings-1) != 0 {
				t.Errorf("theta=%g: frontier block %d not a power of two", tc.theta, plan.BlockPostings)
			}
		} else if plan.BlockPostings != 0 {
			t.Errorf("theta=%g: uniform plan sized a frontier: %+v", tc.theta, plan)
		}
	}
}

// TestTinyDomainNeverSkewed guards the planner against fitting noise on
// a handful of distinct items.
func TestTinyDomainNeverSkewed(t *testing.T) {
	c := NewCollector(4)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		c.Add([]uint32{uint32(rng.Intn(4))})
	}
	if p := c.Profile(4); p.Skewed() {
		t.Fatalf("4-item domain profiled as skewed: %+v", p)
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 17: 32, 64: 64}
	for in, want := range cases {
		if got := nextPow2(in); got != want {
			t.Errorf("nextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}
