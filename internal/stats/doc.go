// Package stats profiles the item-frequency distribution of a record
// stream and turns the paper's central observation — containment indexes
// should exploit skew — into a build-time planning decision. A Collector
// accumulates per-item supports during ingest; Profile summarises them
// (top-k frequencies, distinct count, a fitted Zipf exponent); Plan
// derives from the profile which engine a partition should get (the
// Ordered Inverted File when the distribution is skewed, the plain
// inverted file otherwise) and how large the OIF's frontier blocks
// should be.
//
// Two subsystems consume these decisions: the Sharded engine plans each
// shard's inner engine from the profile collected while records stream
// into the shard, and the OIF's decoded-block cache weights admission
// by ProfileOfSupports so the hottest lists stay decoded under memory
// pressure.
package stats
