package invfile

import (
	"bufio"
	"errors"
	"fmt"
	"io"

	"repro/internal/dataset"
	"repro/internal/liststore"
	"repro/internal/snapio"
	"repro/internal/storage"
)

// Index snapshots. Save serialises the inverted file — vocabulary
// counters, empty-record ids, the tombstone set, the pending delta, and
// every compressed disk list — into one versioned stream guarded by a
// CRC32 trailer; Load reconstructs a queryable index backed by an
// in-memory pager, repacking the lists through the standard writer so
// the physical layout (and therefore the I/O profile) matches a fresh
// build. The format mirrors the OIF snapshot's framing (see
// internal/snapio) so corruption handling is uniform across engines.

const snapshotMagic = "IFSNAP01"

// snapshot header flags.
const snapFlagDeadDirty = 1 << 0 // tombstoned postings still on disk

// ErrBadSnapshot reports a corrupt or foreign snapshot stream.
var ErrBadSnapshot = errors.New("invfile: bad index snapshot")

// Save writes a self-contained snapshot of the index to w.
func (ix *Index) Save(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	cw := snapio.NewWriter(bw)
	if _, err := io.WriteString(cw, snapshotMagic); err != nil {
		return err
	}
	flags := uint32(0)
	if ix.deadDirty {
		flags |= snapFlagDeadDirty
	}
	pageSize := ix.store.Pool().PageSize()
	for _, v := range []uint32{uint32(pageSize), uint32(ix.domainSize), uint32(ix.numRecords), flags} {
		if err := snapio.WriteU32(cw, v); err != nil {
			return err
		}
	}
	if err := snapio.WriteU32Slice(cw, ix.emptyIDs); err != nil {
		return err
	}
	if err := snapio.WriteU32Slice(cw, ix.lastID); err != nil {
		return err
	}
	for _, c := range ix.counts {
		if err := snapio.WriteU64(cw, uint64(c)); err != nil {
			return err
		}
	}
	if err := snapio.WriteU32Slice(cw, ix.dead); err != nil {
		return err
	}
	// Pending delta.
	if err := snapio.WriteU64(cw, uint64(len(ix.delta.records))); err != nil {
		return err
	}
	for _, r := range ix.delta.records {
		if err := snapio.WriteU32(cw, r.ID); err != nil {
			return err
		}
		if err := snapio.WriteU32Slice(cw, r.Set); err != nil {
			return err
		}
	}
	// Disk lists, one length-framed blob per item.
	for item := 0; item < ix.domainSize; item++ {
		raw, err := ix.store.ReadList(uint32(item))
		if err != nil {
			return err
		}
		if err := snapio.WriteBytes(cw, raw); err != nil {
			return err
		}
	}
	if err := cw.WriteTrailer(); err != nil {
		return err
	}
	return bw.Flush()
}

// Load reconstructs an index from a snapshot produced by Save. The index
// is backed by an in-memory pager with the snapshot's page size.
func Load(r io.Reader) (*Index, error) {
	cr := snapio.NewReader(bufio.NewReaderSize(r, 1<<16))
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(cr, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadSnapshot, magic)
	}
	var hdr [4]uint32
	for i := range hdr {
		v, err := snapio.ReadU32(cr)
		if err != nil {
			return nil, fmt.Errorf("%w: header: %v", ErrBadSnapshot, err)
		}
		hdr[i] = v
	}
	pageSize, domainSize, numRecords, flags := int(hdr[0]), int(hdr[1]), int(hdr[2]), hdr[3]
	if pageSize <= 0 || pageSize > 1<<20 || domainSize < 0 || numRecords < 0 {
		return nil, fmt.Errorf("%w: implausible header", ErrBadSnapshot)
	}
	emptyIDs, err := snapio.ReadU32Slice(cr)
	if err != nil {
		return nil, fmt.Errorf("%w: empty ids: %v", ErrBadSnapshot, err)
	}
	if len(emptyIDs) == 0 {
		emptyIDs = nil
	}
	lastID, err := snapio.ReadU32Slice(cr)
	if err != nil || len(lastID) != domainSize {
		return nil, fmt.Errorf("%w: vocabulary", ErrBadSnapshot)
	}
	counts := make([]int64, domainSize)
	for i := range counts {
		v, err := snapio.ReadU64(cr)
		if err != nil {
			return nil, fmt.Errorf("%w: counts", ErrBadSnapshot)
		}
		counts[i] = int64(v)
	}
	dead, err := snapio.ReadU32Slice(cr)
	if err != nil {
		return nil, fmt.Errorf("%w: tombstones: %v", ErrBadSnapshot, err)
	}
	if len(dead) == 0 {
		dead = nil
	}
	nDelta, err := snapio.ReadU64(cr)
	if err != nil || nDelta > snapio.MaxSliceLen {
		return nil, fmt.Errorf("%w: delta count", ErrBadSnapshot)
	}
	delta := make([]dataset.Record, 0, nDelta)
	for i := uint64(0); i < nDelta; i++ {
		id, err := snapio.ReadU32(cr)
		if err != nil {
			return nil, fmt.Errorf("%w: delta record", ErrBadSnapshot)
		}
		set, err := snapio.ReadU32Slice(cr)
		if err != nil {
			return nil, fmt.Errorf("%w: delta set", ErrBadSnapshot)
		}
		delta = append(delta, dataset.Record{ID: id, Set: set})
	}
	pool := storage.NewBufferPool(storage.NewMemPager(pageSize), 1024)
	store, err := liststore.New(pool, domainSize)
	if err != nil {
		return nil, err
	}
	w, err := store.NewWriter()
	if err != nil {
		return nil, err
	}
	for item := 0; item < domainSize; item++ {
		raw, err := snapio.ReadBytes(cr)
		if err != nil {
			return nil, fmt.Errorf("%w: list %d: %v", ErrBadSnapshot, item, err)
		}
		if err := w.WriteList(uint32(item), raw); err != nil {
			return nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	if err := cr.VerifyTrailer(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	ix := &Index{
		store:      store,
		domainSize: domainSize,
		numRecords: numRecords,
		emptyIDs:   emptyIDs,
		lastID:     lastID,
		counts:     counts,
		dead:       dead,
		deadDirty:  flags&snapFlagDeadDirty != 0,
	}
	ix.delta.records = delta
	return ix, nil
}
