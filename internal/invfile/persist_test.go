package invfile

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

func TestSnapshotRoundTrip(t *testing.T) {
	d, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		NumRecords: 2500, DomainSize: 60, MinLen: 1, MaxLen: 8, ZipfTheta: 0.8, Seed: 160,
	})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(d, BuildOptions{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	// Pending state must survive: two inserts, two deletes (one of a
	// delta record), all unmerged.
	if _, err := ix.Insert([]dataset.Item{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	freshID, err := ix.Insert([]dataset.Item{4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Delete(9); err != nil {
		t.Fatal(err)
	}
	if err := ix.Delete(freshID); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.NumRecords() != ix.NumRecords() || loaded.DomainSize() != ix.DomainSize() {
		t.Fatalf("shape changed: %d/%d records, %d/%d domain",
			loaded.NumRecords(), ix.NumRecords(), loaded.DomainSize(), ix.DomainSize())
	}
	if loaded.DeltaLen() != 2 || loaded.Deleted() != 2 {
		t.Fatalf("mutation state lost: delta %d, dead %d", loaded.DeltaLen(), loaded.Deleted())
	}
	if loaded.ListBytes() != ix.ListBytes() {
		t.Fatalf("list bytes changed: %d vs %d", loaded.ListBytes(), ix.ListBytes())
	}

	compare := func(stage string, a, b *Index) {
		t.Helper()
		rng := rand.New(rand.NewSource(161))
		for trial := 0; trial < 120; trial++ {
			k := rng.Intn(5)
			qs := make([]dataset.Item, k)
			for i := range qs {
				qs[i] = dataset.Item(rng.Intn(60))
			}
			for _, pred := range []string{"subset", "equality", "superset"} {
				var x, y []uint32
				var ex, ey error
				switch pred {
				case "subset":
					x, ex = a.Subset(qs)
					y, ey = b.Subset(qs)
				case "equality":
					x, ex = a.Equality(qs)
					y, ey = b.Equality(qs)
				default:
					x, ex = a.Superset(qs)
					y, ey = b.Superset(qs)
				}
				if ex != nil || ey != nil {
					t.Fatalf("%s %s(%v): %v / %v", stage, pred, qs, ex, ey)
				}
				if !equalIDs(x, y) {
					t.Fatalf("%s %s(%v) diverged: %v vs %v", stage, pred, qs, x, y)
				}
			}
		}
	}
	compare("pre-merge", ix, loaded)

	// Both merge; the deferred physical fold-out must shrink both alike.
	beforeBytes := loaded.ListBytes()
	if err := ix.MergeDelta(); err != nil {
		t.Fatal(err)
	}
	if err := loaded.MergeDelta(); err != nil {
		t.Fatalf("MergeDelta after load: %v", err)
	}
	if loaded.ListBytes() >= beforeBytes+16 && ix.ListBytes() != loaded.ListBytes() {
		t.Fatalf("merged list bytes diverge: %d vs %d", ix.ListBytes(), loaded.ListBytes())
	}
	compare("post-merge", ix, loaded)
}

func TestSnapshotDetectsCorruption(t *testing.T) {
	d, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		NumRecords: 400, DomainSize: 30, MinLen: 1, MaxLen: 6, ZipfTheta: 0.5, Seed: 162,
	})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(d, BuildOptions{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()
	for pos := 0; pos < len(snap); pos += 89 {
		corrupted := append([]byte(nil), snap...)
		corrupted[pos] ^= 0x20
		if _, err := Load(bytes.NewReader(corrupted)); err == nil {
			t.Fatalf("corruption at byte %d went undetected", pos)
		} else if !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("corruption at byte %d: unexpected error %v", pos, err)
		}
	}
	for _, cut := range []int{0, 3, len(snap) / 2, len(snap) - 1} {
		if _, err := Load(bytes.NewReader(snap[:cut])); err == nil {
			t.Fatalf("truncation at %d went undetected", cut)
		}
	}
}

// TestDeleteImmediateAndPhysical exercises the tombstone lifecycle on
// the raw inverted file: immediate masking, list shrink at merge, no id
// reuse.
func TestDeleteImmediateAndPhysical(t *testing.T) {
	d := dataset.New(6)
	for _, set := range [][]dataset.Item{{1, 2}, {2, 3}, {1, 2, 3}, {}, {5}} {
		if _, err := d.Add(set); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := Build(d, BuildOptions{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Delete(2); err != nil {
		t.Fatal(err)
	}
	if err := ix.Delete(4); err != nil { // the empty-set record
		t.Fatal(err)
	}
	got, err := ix.Subset([]dataset.Item{2})
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(got, []uint32{1, 3}) {
		t.Fatalf("Subset(2) = %v, want [1 3]", got)
	}
	got, err = ix.Equality(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("Equality({}) = %v, want empty (record 4 deleted)", got)
	}
	before := ix.ListBytes()
	if err := ix.MergeDelta(); err != nil {
		t.Fatal(err)
	}
	if ix.ListBytes() >= before {
		t.Fatalf("list bytes %d -> %d; want shrink", before, ix.ListBytes())
	}
	if err := ix.Delete(2); err == nil {
		t.Fatal("double delete succeeded")
	}
	id, err := ix.Insert([]dataset.Item{0})
	if err != nil {
		t.Fatal(err)
	}
	if id != 6 {
		t.Fatalf("insert after deletes got id %d, want 6 (no reuse)", id)
	}
}
