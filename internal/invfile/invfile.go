// Package invfile implements the paper's baseline: the classic inverted
// file (IF) over set-valued records, in the most efficient reported
// physical scheme (§5): one contiguous compressed list per item, a
// memory-resident vocabulary, postings of (record id, record length)
// compressed with d-gaps + v-byte. Query evaluation follows §2: subset =
// intersection of whole lists, equality = intersection with a length
// filter, superset = union with occurrence counting against the length.
//
// The defining cost property: the IF always reads each involved list in
// full ("Berkeley DB always retrieves the whole tuple"), so its I/O grows
// with list length — the weakness the OIF attacks.
package invfile

import (
	"errors"
	"fmt"
	"slices"
	"sort"

	"repro/internal/dataset"
	"repro/internal/liststore"
	"repro/internal/storage"
	"repro/internal/vbyte"
)

// Index is a built inverted file. It additionally supports the batch
// update scheme of §4.4: inserts accumulate in a memory-resident delta
// inverted file that queries consult, until MergeDelta folds them into the
// disk lists.
type Index struct {
	store      *liststore.Store
	domainSize int
	numRecords int
	emptyIDs   []uint32 // ids of empty-set records (not representable in lists)
	lastID     []uint32 // per item: last record id in its disk list
	counts     []int64  // per item: postings in its disk list

	// dead is the tombstone set: sorted ids of deleted records, masked
	// out of every answer. The slice is immutable once attached (Delete
	// installs a fresh copy), so Reader clones share it safely.
	// deadDirty marks tombstoned postings still physically present,
	// folded out by the next MergeDelta; the ids stay tombstoned forever
	// because record ids are never reused.
	dead      []uint32
	deadDirty bool

	delta deltaFile
}

// deltaFile is the §4.4 memory-resident inverted file holding records
// inserted since the last batch merge.
type deltaFile struct {
	records []dataset.Record // ids continue the main sequence
}

// BuildOptions configures Build.
type BuildOptions struct {
	// PageSize for the list file; 0 selects storage.DefaultPageSize.
	PageSize int
	// BuildPoolPages is the buffer-pool size used while writing lists;
	// 0 selects 1024 pages. Measurement swaps in a small pool afterwards
	// via SetPool.
	BuildPoolPages int
}

func (o *BuildOptions) fill() {
	if o.PageSize <= 0 {
		o.PageSize = storage.DefaultPageSize
	}
	if o.BuildPoolPages <= 0 {
		o.BuildPoolPages = 1024
	}
}

// Build constructs the inverted file for d.
func Build(d *dataset.Dataset, opts BuildOptions) (*Index, error) {
	opts.fill()
	pool := storage.NewBufferPool(storage.NewMemPager(opts.PageSize), opts.BuildPoolPages)
	return BuildOn(d, pool)
}

// BuildOn constructs the inverted file in the provided (empty) pool, which
// lets callers choose the pager backend.
func BuildOn(d *dataset.Dataset, pool *storage.BufferPool) (*Index, error) {
	domain := d.DomainSize()
	store, err := liststore.New(pool, domain)
	if err != nil {
		return nil, err
	}
	ix := &Index{
		store:      store,
		domainSize: domain,
		numRecords: d.Len(),
		lastID:     make([]uint32, domain),
		counts:     make([]int64, domain),
	}
	// Encode each list incrementally to avoid materialising postings.
	bufs := make([][]byte, domain)
	for _, r := range d.Records() {
		if len(r.Set) == 0 {
			ix.emptyIDs = append(ix.emptyIDs, r.ID)
			continue
		}
		for _, it := range r.Set {
			bufs[it] = vbyte.AppendUint32(bufs[it], r.ID-ix.lastID[it])
			bufs[it] = vbyte.AppendUint32(bufs[it], uint32(len(r.Set)))
			ix.lastID[it] = r.ID
			ix.counts[it]++
		}
	}
	w, err := store.NewWriter()
	if err != nil {
		return nil, err
	}
	for item := 0; item < domain; item++ {
		if err := w.WriteList(uint32(item), bufs[item]); err != nil {
			return nil, err
		}
		bufs[item] = nil
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return ix, nil
}

// SetPool swaps the measurement buffer pool (same pager).
func (ix *Index) SetPool(pool *storage.BufferPool) error { return ix.store.SetPool(pool) }

// Pool returns the current buffer pool.
func (ix *Index) Pool() *storage.BufferPool { return ix.store.Pool() }

// NumRecords returns the number of indexed records including the delta.
func (ix *Index) NumRecords() int { return ix.numRecords + len(ix.delta.records) }

// DomainSize returns |I|.
func (ix *Index) DomainSize() int { return ix.domainSize }

// ListBytes returns the total compressed size of the disk lists.
func (ix *Index) ListBytes() int64 { return ix.store.TotalBytes() }

// ListPages returns the pages occupied by the disk lists.
func (ix *Index) ListPages() int64 { return ix.store.TotalPages() }

// ItemSupports returns the per-item support table of the merged index:
// index = item id, value = postings in the item's disk list. Pending
// delta inserts and tombstones are not reflected — the table is a
// planning estimate, refreshed by MergeDelta, not an answer.
func (ix *Index) ItemSupports() []int64 {
	return append([]int64(nil), ix.counts...)
}

// prepQuery validates and canonicalises a query set: sorted ascending,
// deduplicated, all items in-domain.
func (ix *Index) prepQuery(qs []dataset.Item) ([]dataset.Item, error) {
	q := make([]dataset.Item, len(qs))
	copy(q, qs)
	sort.Slice(q, func(i, j int) bool { return q[i] < q[j] })
	out := q[:0]
	for i, v := range q {
		if int(v) >= ix.domainSize {
			return nil, fmt.Errorf("invfile: query item %d outside domain %d", v, ix.domainSize)
		}
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out, nil
}

// readPostings fetches and decodes item's whole disk list.
func (ix *Index) readPostings(item dataset.Item) ([]vbyte.Posting, error) {
	raw, err := ix.store.ReadList(uint32(item))
	if err != nil {
		return nil, err
	}
	if len(raw) == 0 {
		return nil, nil
	}
	return vbyte.DecodePostings(raw, 0, make([]vbyte.Posting, 0, ix.counts[item]))
}

// Subset returns ids of records containing every item of qs, ascending.
func (ix *Index) Subset(qs []dataset.Item) ([]uint32, error) {
	q, err := ix.prepQuery(qs)
	if err != nil {
		return nil, err
	}
	if len(q) == 0 {
		return ix.mergeDeltaIDs(ix.allIDs(), q, predSubset), nil
	}
	lists, err := ix.readAll(q)
	if err != nil {
		return nil, err
	}
	// Intersect smallest-first to shrink candidates early.
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	var cands []uint32
	for i, l := range lists {
		if i == 0 {
			cands = make([]uint32, 0, len(l))
			for _, p := range l {
				cands = append(cands, p.ID)
			}
			continue
		}
		cands = intersectIDs(cands, l)
		if len(cands) == 0 {
			break
		}
	}
	return ix.mergeDeltaIDs(cands, q, predSubset), nil
}

// Equality returns ids of records whose set equals qs, ascending.
func (ix *Index) Equality(qs []dataset.Item) ([]uint32, error) {
	q, err := ix.prepQuery(qs)
	if err != nil {
		return nil, err
	}
	if len(q) == 0 {
		out := append([]uint32(nil), ix.emptyIDs...)
		return ix.mergeDeltaIDs(out, q, predEqual), nil
	}
	lists, err := ix.readAll(q)
	if err != nil {
		return nil, err
	}
	n := uint32(len(q))
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	var cands []uint32
	for i, l := range lists {
		if i == 0 {
			cands = make([]uint32, 0, 16)
			for _, p := range l {
				if p.Length == n {
					cands = append(cands, p.ID)
				}
			}
			continue
		}
		cands = intersectIDs(cands, l)
		if len(cands) == 0 {
			break
		}
	}
	return ix.mergeDeltaIDs(cands, q, predEqual), nil
}

// Superset returns ids of records whose set is contained in qs, ascending.
func (ix *Index) Superset(qs []dataset.Item) ([]uint32, error) {
	q, err := ix.prepQuery(qs)
	if err != nil {
		return nil, err
	}
	lists, err := ix.readAll(q)
	if err != nil {
		return nil, err
	}
	// K-way merge over the sorted lists, counting occurrences per id; a
	// record qualifies when its occurrence count equals its length (§2).
	idx := make([]int, len(lists))
	results := append([]uint32(nil), ix.emptyIDs...)
	for {
		min := uint32(0)
		found := false
		for i, l := range lists {
			if idx[i] < len(l) {
				if !found || l[idx[i]].ID < min {
					min = l[idx[i]].ID
					found = true
				}
			}
		}
		if !found {
			break
		}
		count := uint32(0)
		length := uint32(0)
		for i, l := range lists {
			if idx[i] < len(l) && l[idx[i]].ID == min {
				count++
				length = l[idx[i]].Length
				idx[i]++
			}
		}
		if count == length {
			results = append(results, min)
		}
	}
	sort.Slice(results, func(i, j int) bool { return results[i] < results[j] })
	return ix.mergeDeltaIDs(results, q, predSubsetOf), nil
}

// SubsetCursor returns a cursor streaming Subset(qs)'s answer ids in
// ascending order, decoding each involved list lazily posting-by-posting
// instead of materializing it: a consumer that stops after n ids (a
// LIMIT) pays only for the postings actually visited, which on a hot
// list is a tiny prefix of the whole-list decode Subset performs. Legs
// intersect rarest-list-first, so the driver leg is the shortest and the
// wider lists are only probed forward to each candidate. The cursor is
// single-use and tied to this index's current delta/tombstone snapshot.
func (ix *Index) SubsetCursor(qs []dataset.Item) (*SubsetCursor, error) {
	q, err := ix.prepQuery(qs)
	if err != nil {
		return nil, err
	}
	c := &SubsetCursor{ix: ix, q: q, all: 1}
	if len(q) == 0 {
		return c, nil
	}
	// Rarest first: the driver leg (legs[0]) bounds the candidates.
	order := append([]dataset.Item(nil), q...)
	sort.Slice(order, func(i, j int) bool { return ix.counts[order[i]] < ix.counts[order[j]] })
	c.legs = make([]cursorLeg, len(order))
	c.disk = true
	for i, it := range order {
		raw, err := ix.store.ReadList(uint32(it))
		if err != nil {
			return nil, err
		}
		c.legs[i] = cursorLeg{raw: raw}
		ok, err := c.legs[i].step()
		if err != nil {
			return nil, err
		}
		if !ok {
			// An empty list makes the disk intersection empty; only the
			// delta phase can still produce answers.
			c.disk = false
			break
		}
	}
	return c, nil
}

// SubsetCursor streams one subset answer; see Index.SubsetCursor.
type SubsetCursor struct {
	ix   *Index
	q    []dataset.Item
	legs []cursorLeg
	disk bool   // disk-list intersection still live
	all  uint32 // next id for the empty-query sweep
	di   int    // next delta record to consider
	err  error
}

// cursorLeg walks one compressed list incrementally: cur is the last
// decoded id (the running d-gap sum), live whether cur is a real posting.
type cursorLeg struct {
	raw  []byte
	off  int
	cur  uint32
	live bool
}

// step decodes the leg's next posting (id gap + length, the latter
// skipped — subset needs no length filter); false means end of list.
func (l *cursorLeg) step() (bool, error) {
	if l.off >= len(l.raw) {
		l.live = false
		return false, nil
	}
	gap, n, err := vbyte.Uint32(l.raw[l.off:])
	if err != nil {
		return false, err
	}
	l.off += n
	if _, n, err = vbyte.Uint32(l.raw[l.off:]); err != nil {
		return false, err
	}
	l.off += n
	l.cur += gap
	l.live = true
	return true, nil
}

// seek advances the leg to the first posting with id >= to.
func (l *cursorLeg) seek(to uint32) (bool, error) {
	for l.live && l.cur < to {
		if ok, err := l.step(); err != nil || !ok {
			return false, err
		}
	}
	return l.live, nil
}

// Next returns the answer's next id in ascending order; ok=false without
// an error means the answer is exhausted. Errors are sticky.
func (c *SubsetCursor) Next() (uint32, bool, error) {
	if c.err != nil {
		return 0, false, c.err
	}
	if len(c.q) == 0 {
		// Every record contains the empty set.
		for c.all <= uint32(c.ix.numRecords) {
			id := c.all
			c.all++
			if len(c.ix.dead) == 0 || !c.ix.isDead(id) {
				return id, true, nil
			}
		}
	} else if c.disk {
		id, ok, err := c.nextDisk()
		if err != nil {
			c.err = err
			return 0, false, err
		}
		if ok {
			return id, true, nil
		}
		c.disk = false
	}
	// Delta phase: delta ids ascend and all exceed disk ids, so the
	// global order is preserved across the phase switch.
	for c.di < len(c.ix.delta.records) {
		r := c.ix.delta.records[c.di]
		c.di++
		if len(c.ix.dead) > 0 && c.ix.isDead(r.ID) {
			continue
		}
		if r.ContainsAll(c.q) {
			return r.ID, true, nil
		}
	}
	return 0, false, nil
}

// nextDisk advances the leg intersection to its next common id.
func (c *SubsetCursor) nextDisk() (uint32, bool, error) {
	for c.legs[0].live {
		cand := c.legs[0].cur
		matched := true
		for i := 1; i < len(c.legs); i++ {
			live, err := c.legs[i].seek(cand)
			if err != nil {
				return 0, false, err
			}
			if !live {
				return 0, false, nil
			}
			if c.legs[i].cur > cand {
				// Overshoot: the larger id becomes the candidate.
				live, err := c.legs[0].seek(c.legs[i].cur)
				if err != nil {
					return 0, false, err
				}
				if !live {
					return 0, false, nil
				}
				matched = false
				break
			}
		}
		if !matched {
			continue
		}
		// Pre-advance the driver past cand before yielding it.
		if _, err := c.legs[0].step(); err != nil {
			return 0, false, err
		}
		if len(c.ix.dead) == 0 || !c.ix.isDead(cand) {
			return cand, true, nil
		}
	}
	return 0, false, nil
}

func (ix *Index) readAll(q []dataset.Item) ([][]vbyte.Posting, error) {
	lists := make([][]vbyte.Posting, 0, len(q))
	for _, it := range q {
		l, err := ix.readPostings(it)
		if err != nil {
			return nil, err
		}
		lists = append(lists, l)
	}
	return lists, nil
}

func intersectIDs(cands []uint32, l []vbyte.Posting) []uint32 {
	out := cands[:0]
	i, j := 0, 0
	for i < len(cands) && j < len(l) {
		switch {
		case cands[i] < l[j].ID:
			i++
		case cands[i] > l[j].ID:
			j++
		default:
			out = append(out, cands[i])
			i++
			j++
		}
	}
	return out
}

func (ix *Index) allIDs() []uint32 {
	out := make([]uint32, 0, ix.numRecords)
	for id := uint32(1); id <= uint32(ix.numRecords); id++ {
		out = append(out, id)
	}
	return out
}

// Delta handling ------------------------------------------------------

type deltaPred int

const (
	predSubset deltaPred = iota
	predEqual
	predSubsetOf
)

// mergeDeltaIDs finishes an answer: it masks tombstoned ids out of the
// disk-side results, then appends matching delta-record ids (both
// ascending; delta ids are all larger than disk ids).
func (ix *Index) mergeDeltaIDs(ids []uint32, q []dataset.Item, pred deltaPred) []uint32 {
	if len(ix.dead) > 0 {
		kept := ids[:0]
		for _, id := range ids {
			if !ix.isDead(id) {
				kept = append(kept, id)
			}
		}
		ids = kept
	}
	for _, r := range ix.delta.records {
		if len(ix.dead) > 0 && ix.isDead(r.ID) {
			continue
		}
		var ok bool
		switch pred {
		case predSubset:
			ok = r.ContainsAll(q)
		case predEqual:
			ok = r.EqualSet(q)
		default:
			ok = r.SubsetOf(q)
		}
		if ok {
			ids = append(ids, r.ID)
		}
	}
	return ids
}

// Insert adds a record to the memory-resident delta (§4.4) and returns
// its id. The set is copied, sorted, and deduplicated.
func (ix *Index) Insert(set []dataset.Item) (uint32, error) {
	cp := append([]dataset.Item(nil), set...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	dedup := cp[:0]
	for i, v := range cp {
		if int(v) >= ix.domainSize {
			return 0, fmt.Errorf("invfile: item %d outside domain %d", v, ix.domainSize)
		}
		if i == 0 || v != dedup[len(dedup)-1] {
			dedup = append(dedup, v)
		}
	}
	id := uint32(ix.NumRecords() + 1)
	ix.delta.records = append(ix.delta.records, dataset.Record{ID: id, Set: dedup})
	return id, nil
}

// DeltaLen returns the number of unmerged inserted records.
func (ix *Index) DeltaLen() int { return len(ix.delta.records) }

// isDead reports whether id is tombstoned.
func (ix *Index) isDead(id uint32) bool {
	_, ok := slices.BinarySearch(ix.dead, id)
	return ok
}

// Deleted returns the number of tombstoned records.
func (ix *Index) Deleted() int { return len(ix.dead) }

// Delete tombstones the record with the given id: it vanishes from every
// answer immediately, its postings are physically removed by the next
// MergeDelta, and its id is never reused. Deleting a pending delta
// record works the same way. Deleting an unknown or already-deleted id
// is an error.
func (ix *Index) Delete(id uint32) error {
	if id == 0 || int(id) > ix.NumRecords() {
		return fmt.Errorf("invfile: delete of unknown record %d (have %d)", id, ix.NumRecords())
	}
	i, found := slices.BinarySearch(ix.dead, id)
	if found {
		return fmt.Errorf("invfile: record %d already deleted", id)
	}
	// Copy-on-write keeps the slice immutable for live Reader clones.
	dead := make([]uint32, 0, len(ix.dead)+1)
	dead = append(dead, ix.dead[:i]...)
	dead = append(dead, id)
	dead = append(dead, ix.dead[i:]...)
	ix.dead = dead
	ix.deadDirty = true
	return nil
}

// MergeDelta folds the delta into the disk lists: each list is read once,
// the new postings are appended (ids are monotonically larger, so this is
// a byte-level append after re-basing the first d-gap), and the lists are
// rewritten into a fresh pager. This is the IF's cheap batch update path:
// no global re-sort is needed, which is exactly why the paper reports IF
// updates ~3–5x faster than OIF's (§4.4). When deletions are pending,
// each list is additionally decoded and its tombstoned postings dropped
// before the rewrite, so the disk lists physically shrink; tombstoned
// ids stay masked afterwards (the slots are never reused).
// Every derived structure — the new store, the per-item counters, the
// empty-id list — is staged in fresh storage and installed only after
// the whole rewrite succeeded: a mid-merge failure leaves the index
// exactly as it was, and live Reader clones (which share the previous
// counts/lastID/emptyIDs backing arrays) never observe a write.
func (ix *Index) MergeDelta() error {
	if len(ix.delta.records) == 0 && !ix.deadDirty {
		return nil
	}
	oldPool := ix.store.Pool()
	pageSize := oldPool.PageSize()
	newPool := storage.NewBufferPool(storage.NewMemPager(pageSize), 1024)
	newStore, err := liststore.New(newPool, ix.domainSize)
	if err != nil {
		return err
	}
	lastID := append([]uint32(nil), ix.lastID...)
	counts := append([]int64(nil), ix.counts...)
	// Group delta postings per item, skipping tombstoned delta records
	// (their id slots are preserved by the numRecords advance below).
	extra := make([][]vbyte.Posting, ix.domainSize)
	emptyIDs := make([]uint32, 0, len(ix.emptyIDs))
	for _, id := range ix.emptyIDs {
		if !ix.deadDirty || !ix.isDead(id) {
			emptyIDs = append(emptyIDs, id)
		}
	}
	for _, r := range ix.delta.records {
		if len(ix.dead) > 0 && ix.isDead(r.ID) {
			continue
		}
		if len(r.Set) == 0 {
			emptyIDs = append(emptyIDs, r.ID)
			continue
		}
		for _, it := range r.Set {
			extra[it] = append(extra[it], vbyte.Posting{ID: r.ID, Length: uint32(len(r.Set))})
		}
	}
	w, err := newStore.NewWriter()
	if err != nil {
		return err
	}
	for item := 0; item < ix.domainSize; item++ {
		raw, err := ix.store.ReadList(uint32(item))
		if err != nil {
			return err
		}
		if ix.deadDirty && len(raw) > 0 {
			ps, err := vbyte.DecodePostings(raw, 0, make([]vbyte.Posting, 0, counts[item]))
			if err != nil {
				return err
			}
			kept := ps[:0]
			for _, p := range ps {
				if !ix.isDead(p.ID) {
					kept = append(kept, p)
				}
			}
			if len(kept) != len(ps) {
				raw, err = vbyte.AppendPostings(nil, kept, 0)
				if err != nil {
					return err
				}
				counts[item] = int64(len(kept))
				if len(kept) > 0 {
					lastID[item] = kept[len(kept)-1].ID
				} else {
					lastID[item] = 0
				}
			}
		}
		if len(extra[item]) > 0 {
			raw, err = vbyte.AppendPostings(raw, extra[item], lastID[item])
			if err != nil {
				return err
			}
			lastID[item] = extra[item][len(extra[item])-1].ID
			counts[item] += int64(len(extra[item]))
		}
		if err := w.WriteList(uint32(item), raw); err != nil {
			return err
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	ix.numRecords += len(ix.delta.records)
	ix.delta.records = nil
	ix.emptyIDs = emptyIDs
	ix.lastID = lastID
	ix.counts = counts
	ix.deadDirty = false
	ix.store = newStore
	return nil
}

// Errors shared with tests.
var ErrClosed = errors.New("invfile: index closed")

// NewReader returns an independent query handle over the same lists with
// its own buffer pool; see core.Index.NewReader for the concurrency
// contract (the delta is frozen at its current extent).
func (ix *Index) NewReader(poolPages int) (*Reader, error) {
	pool := storage.NewBufferPool(ix.store.Pool().Pager(), poolPages)
	view, err := ix.store.View(pool)
	if err != nil {
		return nil, err
	}
	clone := *ix
	clone.store = view
	clone.delta.records = ix.delta.records[:len(ix.delta.records):len(ix.delta.records)]
	return &Reader{ix: &clone, pool: pool}, nil
}

// Reader is an isolated query handle produced by NewReader.
type Reader struct {
	ix   *Index
	pool *storage.BufferPool
}

// Subset answers like Index.Subset.
func (r *Reader) Subset(qs []dataset.Item) ([]uint32, error) { return r.ix.Subset(qs) }

// Equality answers like Index.Equality.
func (r *Reader) Equality(qs []dataset.Item) ([]uint32, error) { return r.ix.Equality(qs) }

// Superset answers like Index.Superset.
func (r *Reader) Superset(qs []dataset.Item) ([]uint32, error) { return r.ix.Superset(qs) }

// SubsetCursor streams like Index.SubsetCursor, reading list pages
// through this reader's private pool.
func (r *Reader) SubsetCursor(qs []dataset.Item) (*SubsetCursor, error) {
	return r.ix.SubsetCursor(qs)
}

// Stats returns this reader's private access statistics.
func (r *Reader) Stats() storage.AccessStats { return r.pool.Stats() }

// ResetStats zeroes this reader's statistics.
func (r *Reader) ResetStats() { r.pool.ResetStats() }

// Pool returns the reader's private buffer pool.
func (r *Reader) Pool() *storage.BufferPool { return r.pool }
