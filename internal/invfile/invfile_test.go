package invfile

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/naive"
	"repro/internal/storage"
)

func buildSmall(t *testing.T, d *dataset.Dataset) *Index {
	t.Helper()
	ix, err := Build(d, BuildOptions{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func paperFig1(t *testing.T) *dataset.Dataset {
	t.Helper()
	sets := [][]dataset.Item{
		{6, 1, 0, 3}, {0, 4, 1}, {5, 4, 0, 1}, {3, 1, 0}, {0, 1, 5, 2},
		{2, 0}, {3, 7}, {1, 0, 5}, {1, 2}, {9, 1, 6}, {0, 2, 1}, {8, 3},
		{0}, {0, 3}, {9, 2, 0}, {8, 2}, {0, 2, 7}, {3, 2},
	}
	d := dataset.New(10)
	for _, s := range sets {
		if _, err := d.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func equalIDs(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPaperSubsetExample: qs = {a, d} must return {101, 104, 114}, which
// in 1-based positions are records 1, 4, 14 (§2).
func TestPaperSubsetExample(t *testing.T) {
	d := paperFig1(t)
	ix := buildSmall(t, d)
	got, err := ix.Subset([]dataset.Item{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(got, []uint32{1, 4, 14}) {
		t.Fatalf("Subset({a,d}) = %v, want [1 4 14]", got)
	}
}

// TestPaperSupersetExample: qs = {a, c} must return records 106 and 113
// (positions 6 and 13).
func TestPaperSupersetExample(t *testing.T) {
	d := paperFig1(t)
	ix := buildSmall(t, d)
	got, err := ix.Superset([]dataset.Item{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(got, []uint32{6, 13}) {
		t.Fatalf("Superset({a,c}) = %v, want [6 13]", got)
	}
}

func TestEqualityExample(t *testing.T) {
	d := paperFig1(t)
	ix := buildSmall(t, d)
	got, err := ix.Equality([]dataset.Item{0, 1, 3}) // {a,b,d} = record 104
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(got, []uint32{4}) {
		t.Fatalf("Equality({a,b,d}) = %v, want [4]", got)
	}
}

func TestAgainstNaiveRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	d, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		NumRecords: 4000, DomainSize: 60, MinLen: 1, MaxLen: 9, ZipfTheta: 0.9, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ix := buildSmall(t, d)
	for trial := 0; trial < 300; trial++ {
		k := 1 + rng.Intn(5)
		qs := make([]dataset.Item, k)
		for i := range qs {
			qs[i] = dataset.Item(rng.Intn(60))
		}
		sub, err := ix.Subset(qs)
		if err != nil {
			t.Fatal(err)
		}
		if want := naive.Subset(d, qs); !equalIDs(sub, want) {
			t.Fatalf("Subset(%v) = %v, want %v", qs, sub, want)
		}
		eq, err := ix.Equality(qs)
		if err != nil {
			t.Fatal(err)
		}
		if want := naive.Equality(d, qs); !equalIDs(eq, want) {
			t.Fatalf("Equality(%v) = %v, want %v", qs, eq, want)
		}
		sup, err := ix.Superset(qs)
		if err != nil {
			t.Fatal(err)
		}
		if want := naive.Superset(d, qs); !equalIDs(sup, want) {
			t.Fatalf("Superset(%v) = %v, want %v", qs, sup, want)
		}
	}
}

func TestQueriesFromExistingRecords(t *testing.T) {
	// The paper's workloads use existing records, guaranteeing answers.
	d, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		NumRecords: 2000, DomainSize: 80, MinLen: 2, MaxLen: 10, ZipfTheta: 0.8, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	ix := buildSmall(t, d)
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		r := d.Record(rng.Intn(d.Len()))
		eq, err := ix.Equality(r.Set)
		if err != nil {
			t.Fatal(err)
		}
		if len(eq) == 0 {
			t.Fatalf("Equality of existing record %d returned nothing", r.ID)
		}
		sub, err := ix.Subset(r.Set)
		if err != nil {
			t.Fatal(err)
		}
		if len(sub) == 0 {
			t.Fatal("Subset of existing record returned nothing")
		}
		sup, err := ix.Superset(r.Set)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, id := range sup {
			if id == r.ID {
				found = true
			}
		}
		if !found {
			t.Fatalf("Superset of record %d's own set did not contain it", r.ID)
		}
	}
}

func TestEmptyRecordsAndQueries(t *testing.T) {
	d := dataset.New(5)
	d.Add(nil)
	d.Add([]dataset.Item{0, 1})
	d.Add(nil)
	d.Add([]dataset.Item{2})
	ix := buildSmall(t, d)

	sup, err := ix.Superset([]dataset.Item{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(sup, []uint32{1, 2, 3}) {
		t.Fatalf("Superset = %v, want empty records 1,3 plus record 2", sup)
	}
	eq, err := ix.Equality(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(eq, []uint32{1, 3}) {
		t.Fatalf("Equality(∅) = %v", eq)
	}
	sub, err := ix.Subset(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(sub, []uint32{1, 2, 3, 4}) {
		t.Fatalf("Subset(∅) = %v", sub)
	}
}

func TestQueryValidation(t *testing.T) {
	d := paperFig1(t)
	ix := buildSmall(t, d)
	if _, err := ix.Subset([]dataset.Item{99}); err == nil {
		t.Error("out-of-domain subset query accepted")
	}
	// Duplicate query items must behave like the set.
	a, err := ix.Subset([]dataset.Item{0, 0, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ix.Subset([]dataset.Item{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(a, b) {
		t.Error("duplicate query items changed the answer")
	}
}

func TestFullListsAreRead(t *testing.T) {
	// The IF's defining property: a subset query reads every page of each
	// involved list, no matter how selective the query.
	d, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		NumRecords: 20000, DomainSize: 50, MinLen: 2, MaxLen: 6, ZipfTheta: 0.9, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(d, BuildOptions{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	small := storage.NewBufferPool(ix.Pool().Pager(), 8)
	if err := ix.SetPool(small); err != nil {
		t.Fatal(err)
	}
	qs := []dataset.Item{0, 1} // the two most frequent items
	small.ResetStats()
	if _, err := ix.Subset(qs); err != nil {
		t.Fatal(err)
	}
	var wantPages int64
	for _, it := range qs {
		ext, err := ix.store.Extent(uint32(it))
		if err != nil {
			t.Fatal(err)
		}
		wantPages += ext.Pages(512)
	}
	// Packed lists can share boundary pages, which the pool may serve
	// from cache; allow that single-page slack per list.
	got := small.Stats().Misses
	if got > wantPages || got < wantPages-int64(len(qs)) {
		t.Fatalf("subset read %d pages, want about full lists = %d", got, wantPages)
	}
}

func TestInsertAndDeltaQueries(t *testing.T) {
	d := paperFig1(t)
	ix := buildSmall(t, d)
	id, err := ix.Insert([]dataset.Item{0, 3}) // {a,d}
	if err != nil {
		t.Fatal(err)
	}
	if id != 19 {
		t.Fatalf("inserted id = %d, want 19", id)
	}
	got, err := ix.Subset([]dataset.Item{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(got, []uint32{1, 4, 14, 19}) {
		t.Fatalf("Subset after insert = %v", got)
	}
	eq, err := ix.Equality([]dataset.Item{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(eq, []uint32{14, 19}) {
		t.Fatalf("Equality after insert = %v", eq)
	}
}

func TestMergeDelta(t *testing.T) {
	d := paperFig1(t)
	ix := buildSmall(t, d)
	for i := 0; i < 50; i++ {
		if _, err := ix.Insert([]dataset.Item{0, 3}); err != nil {
			t.Fatal(err)
		}
	}
	if ix.DeltaLen() != 50 {
		t.Fatalf("DeltaLen = %d", ix.DeltaLen())
	}
	if err := ix.MergeDelta(); err != nil {
		t.Fatal(err)
	}
	if ix.DeltaLen() != 0 {
		t.Fatal("delta not cleared")
	}
	if ix.NumRecords() != 68 {
		t.Fatalf("NumRecords = %d, want 68", ix.NumRecords())
	}
	got, err := ix.Subset([]dataset.Item{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 53 { // 1, 4, 14 + 50 inserted
		t.Fatalf("Subset after merge has %d answers, want 53", len(got))
	}
	// A second merge with nothing pending is a no-op.
	if err := ix.MergeDelta(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeDeltaMatchesFreshBuild(t *testing.T) {
	base, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		NumRecords: 1000, DomainSize: 40, MinLen: 1, MaxLen: 8, ZipfTheta: 0.7, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	extra, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		NumRecords: 300, DomainSize: 40, MinLen: 1, MaxLen: 8, ZipfTheta: 0.7, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	ix := buildSmall(t, base)
	merged := dataset.New(40)
	for _, r := range base.Records() {
		merged.Add(r.Set)
	}
	for _, r := range extra.Records() {
		if _, err := ix.Insert(r.Set); err != nil {
			t.Fatal(err)
		}
		merged.Add(r.Set)
	}
	if err := ix.MergeDelta(); err != nil {
		t.Fatal(err)
	}
	fresh := buildSmall(t, merged)
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		k := 1 + rng.Intn(4)
		qs := make([]dataset.Item, k)
		for i := range qs {
			qs[i] = dataset.Item(rng.Intn(40))
		}
		a, err := ix.Subset(qs)
		if err != nil {
			t.Fatal(err)
		}
		b, err := fresh.Subset(qs)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(a, b) {
			t.Fatalf("merged and fresh disagree on Subset(%v)", qs)
		}
		a, err = ix.Superset(qs)
		if err != nil {
			t.Fatal(err)
		}
		b, err = fresh.Superset(qs)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(a, b) {
			t.Fatalf("merged and fresh disagree on Superset(%v)", qs)
		}
	}
}
