package wal

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"
)

// ErrInjected is the sentinel every injected fault wraps, the analogue
// of storage.ErrInjected for the WAL's file layer.
var ErrInjected = errors.New("wal: injected fault")

// FaultyFS wraps an FS and fails the Nth mutating operation onwards
// (1-based), in the style of storage.FaultyPager: creates, writes,
// syncs, renames, removes, truncates, and dir syncs all count; reads
// are free. After firing once it keeps failing — the process is as good
// as dead to the log, which is exactly the crash model the recovery
// tests need: run mutations over a FaultyFS around a MemFS, let the
// fault land anywhere (mid-append, mid-checkpoint, mid-truncate), then
// MemFS.Crash and recover.
//
// Two refinements beyond a plain failure sharpen the tests: ShortWrites
// makes the failing operation, when it is a write, persist roughly half
// its bytes before erroring (a torn append); DropSyncs makes Sync and
// SyncDir silently do nothing from the trip point on — acknowledged
// writes then ride only on volatile state, which is how a recovery test
// proves the fsync policy, not luck, is what preserves acked writes.
type FaultyFS struct {
	Inner FS
	// FailAt is the 1-based operation number that fails; 0 disables.
	FailAt int64
	// ShortWrites makes the tripping write persist half its bytes.
	ShortWrites bool
	// DropSyncs silences Sync/SyncDir from the trip point instead of
	// erroring them.
	DropSyncs bool

	ops     atomic.Int64
	tripped atomic.Bool
}

// NewFaultyFS wraps inner, failing the failAt-th mutating operation.
func NewFaultyFS(inner FS, failAt int64) *FaultyFS {
	return &FaultyFS{Inner: inner, FailAt: failAt}
}

// Ops returns the number of mutating operations attempted so far.
func (f *FaultyFS) Ops() int64 { return f.ops.Load() }

// Tripped reports whether the fault has fired.
func (f *FaultyFS) Tripped() bool { return f.tripped.Load() }

func (f *FaultyFS) step(op string) error {
	n := f.ops.Add(1)
	if f.tripped.Load() || (f.FailAt > 0 && n >= f.FailAt) {
		f.tripped.Store(true)
		if f.DropSyncs {
			// Lying-disk mode: operations proceed normally, but Sync and
			// SyncDir (which consult Tripped themselves) become no-ops.
			return nil
		}
		return fmt.Errorf("%w: %s (op %d)", ErrInjected, op, n)
	}
	return nil
}

// MkdirAll implements FS (not counted: pure setup).
func (f *FaultyFS) MkdirAll(dir string) error { return f.Inner.MkdirAll(dir) }

// Create implements FS.
func (f *FaultyFS) Create(path string) (File, error) {
	if err := f.step("create"); err != nil {
		return nil, err
	}
	inner, err := f.Inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultyFile{fs: f, inner: inner}, nil
}

// Open implements FS (reads are free).
func (f *FaultyFS) Open(path string) (io.ReadCloser, error) { return f.Inner.Open(path) }

// ReadDir implements FS (reads are free).
func (f *FaultyFS) ReadDir(dir string) ([]string, error) { return f.Inner.ReadDir(dir) }

// Rename implements FS.
func (f *FaultyFS) Rename(oldpath, newpath string) error {
	if err := f.step("rename"); err != nil {
		return err
	}
	return f.Inner.Rename(oldpath, newpath)
}

// Remove implements FS.
func (f *FaultyFS) Remove(path string) error {
	if err := f.step("remove"); err != nil {
		return err
	}
	return f.Inner.Remove(path)
}

// Truncate implements FS.
func (f *FaultyFS) Truncate(path string, size int64) error {
	if err := f.step("truncate"); err != nil {
		return err
	}
	return f.Inner.Truncate(path, size)
}

// SyncDir implements FS.
func (f *FaultyFS) SyncDir(dir string) error {
	if err := f.step("syncdir"); err != nil {
		return err
	}
	if f.DropSyncs && f.tripped.Load() {
		return nil
	}
	return f.Inner.SyncDir(dir)
}

// faultyFile threads the FS-wide fault counter through file writes and
// syncs.
type faultyFile struct {
	fs    *FaultyFS
	inner File
}

func (h *faultyFile) Write(p []byte) (int, error) {
	if err := h.fs.step("write"); err != nil {
		if h.fs.ShortWrites && len(p) > 1 {
			n, _ := h.inner.Write(p[:len(p)/2])
			return n, err
		}
		return 0, err
	}
	return h.inner.Write(p)
}

func (h *faultyFile) Sync() error {
	if err := h.fs.step("sync"); err != nil {
		return err
	}
	if h.fs.DropSyncs && h.fs.tripped.Load() {
		return nil
	}
	return h.inner.Sync()
}

func (h *faultyFile) Close() error { return h.inner.Close() }
