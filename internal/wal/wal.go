// Package wal is the write-ahead log behind setcontain's durability
// guarantee: a segmented, append-only log of insert/delete records,
// each frame CRC-guarded and stamped with a monotonic LSN. A mutation
// is acknowledged only after its record is durable per the configured
// fsync policy; Open replays the log tail on top of the newest
// checkpoint snapshot, tolerating a torn final record, so an
// acknowledged write survives any crash while an unacknowledged one may
// simply vanish.
//
// The file layout under the log directory is
//
//	wal-<first LSN, 16 hex digits>.seg   log segments, ascending
//	checkpoint-<LSN, 16 hex digits>.snap snapshot containers (owned by
//	                                     the checkpoint manager in
//	                                     package setcontain)
//
// Segments rotate at Options.SegmentBytes; the checkpoint manager folds
// the log into a fresh snapshot and calls TruncateThrough to drop the
// segments the snapshot covers. All file I/O goes through the FS
// abstraction so recovery tests can inject write failures (FaultyFS)
// and simulate power loss (MemFS).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SyncPolicy selects when appended records reach stable storage.
type SyncPolicy int

// The fsync policies. The zero value is SyncAlways: correctness by
// default, opt into speed.
const (
	// SyncAlways fsyncs before every Commit returns: an acknowledged
	// write survives power loss. The strongest and slowest policy.
	SyncAlways SyncPolicy = iota
	// SyncInterval acknowledges as soon as the record is written and
	// fsyncs in the background every Options.SyncEvery: a crash can lose
	// at most the last interval's acknowledged writes.
	SyncInterval
	// SyncOS never fsyncs during operation (only on Close): writes
	// survive a process kill as soon as the OS has them, but not power
	// loss. The fastest policy.
	SyncOS
)

// String names the policy as ParseSyncPolicy spells it.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncOS:
		return "os"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParseSyncPolicy resolves the CLI/wire names "always", "interval",
// and "os".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always", "":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "os", "none":
		return SyncOS, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or os)", s)
}

// Options configures a Log. The zero value selects a 4 MB segment
// threshold, the SyncAlways policy, and the real filesystem.
type Options struct {
	// SegmentBytes is the rotation threshold: an append that would grow
	// the open segment beyond it starts a new segment. 0 selects 4 MB.
	SegmentBytes int64
	// Sync is the fsync policy.
	Sync SyncPolicy
	// SyncEvery is the background flush period under SyncInterval.
	// 0 selects 25ms.
	SyncEvery time.Duration
	// FS is the filesystem; nil selects OSFS.
	FS FS
}

func (o *Options) fill() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 25 * time.Millisecond
	}
	if o.FS == nil {
		o.FS = OSFS{}
	}
}

// Segment file header: magic, format version, the first LSN the
// segment may contain, and a CRC over version+firstLSN.
const (
	segMagic       = "OIFWAL01"
	segVersion     = 1
	segHeaderBytes = 8 + 4 + 8 + 4
)

// segment is one live log file.
type segment struct {
	name  string
	first uint64 // first LSN the segment may contain
	bytes int64
}

// Stats is a point-in-time observation of a Log, the raw material of
// the serving layer's WAL observability.
type Stats struct {
	// Segments counts live segment files, the open one included.
	Segments int
	// OpenSegmentBytes is the open segment's current size.
	OpenSegmentBytes int64
	// TotalBytes sums the live segments' sizes.
	TotalBytes int64
	// LastLSN is the newest appended record's LSN (0 before any append).
	LastLSN uint64
	// Appends counts records appended since Open.
	Appends int64
	// AppendedBytes counts frame bytes appended since Open.
	AppendedBytes int64
	// BytesSinceCheckpoint counts frame bytes appended since the last
	// NoteCheckpoint — the checkpoint manager's trigger input.
	BytesSinceCheckpoint int64
	// Syncs counts fsyncs issued since Open.
	Syncs int64
	// LastSyncNanos is the duration of the most recent fsync.
	LastSyncNanos int64
	// TotalSyncNanos sums all fsync durations since Open.
	TotalSyncNanos int64
	// Wedged reports whether an append or sync failure has poisoned the
	// log (see Log.Err).
	Wedged bool
}

// ReplayStats describes what Open recovered from the directory.
type ReplayStats struct {
	// Records is the number of records applied (LSN above the
	// watermark).
	Records int
	// Skipped is the number of valid records at or below the watermark,
	// already covered by the checkpoint snapshot.
	Skipped int
	// Segments is the number of segment files scanned.
	Segments int
	// Bytes is the total segment bytes scanned.
	Bytes int64
	// Truncated reports that a torn or corrupt tail was cut off.
	Truncated bool
	// Duration is the wall-clock replay time.
	Duration time.Duration
}

// Log is the append side of the write-ahead log. One goroutine may
// append at a time (callers serialize mutations anyway); Stats is safe
// to call concurrently with appends.
//
// A Log that fails to append or sync becomes wedged: the failed record
// was applied to the in-memory index but may not be in the log, so
// allowing further logged mutations would let the log diverge from the
// index it journals. Every call after the first failure returns the
// original error; the process must restart (and thereby recover from
// the log prefix) to resume mutating. Queries are unaffected.
type Log struct {
	dir  string
	opts Options

	mu     sync.Mutex
	segs   []segment
	out    File
	next   uint64 // next LSN to assign
	dirty  bool   // unsynced bytes in the open segment
	wedged error
	closed bool
	buf    []byte

	appends       int64
	appendedBytes int64
	ckptBase      int64 // appendedBytes at the last NoteCheckpoint
	syncs         int64
	lastSyncNanos int64
	syncNanos     int64

	stop     chan struct{} // interval syncer shutdown
	syncDone chan struct{}
}

// Open recovers the log in dir and arms it for appending. Records with
// LSN above after — the newest checkpoint's watermark — are replayed
// through apply in LSN order; records at or below it are skipped as
// already covered. Replay stops cleanly at the first torn or corrupt
// record: the tail is truncated away (and any later segments removed)
// so subsequently appended records can never be shadowed by a bad tail
// on the next recovery. An error from apply aborts the open — it means
// the log and the index disagree, which truncation must not paper over.
func Open(dir string, o Options, after uint64, apply func(Record) error) (*Log, ReplayStats, error) {
	o.fill()
	fs := o.FS
	if err := fs.MkdirAll(dir); err != nil {
		return nil, ReplayStats{}, err
	}
	l := &Log{dir: dir, opts: o, next: after + 1}
	stats, err := l.recover(after, apply)
	if err != nil {
		return nil, stats, err
	}
	// Appends always start in a fresh segment: never after a truncated
	// tail, and never intermixed with replayed bytes, so one segment's
	// records are contiguous LSNs written by one process generation.
	if err := l.rotateLocked(); err != nil {
		return nil, stats, err
	}
	if o.Sync == SyncInterval {
		l.stop = make(chan struct{})
		l.syncDone = make(chan struct{})
		go l.syncLoop()
	}
	return l, stats, nil
}

// segmentName spells the canonical segment file name for a first LSN.
func segmentName(first uint64) string { return fmt.Sprintf("wal-%016x.seg", first) }

// parseSegmentName extracts the first LSN from a segment file name.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	v, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg"), 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// recover scans the directory's segments in LSN order, replaying the
// tail above the watermark and trimming torn or corrupt bytes.
func (l *Log) recover(after uint64, apply func(Record) error) (ReplayStats, error) {
	start := time.Now()
	var stats ReplayStats
	fs := l.opts.FS
	names, err := fs.ReadDir(l.dir)
	if err != nil {
		return stats, err
	}
	type segFile struct {
		name  string
		first uint64
	}
	var found []segFile
	for _, name := range names {
		if first, ok := parseSegmentName(name); ok {
			found = append(found, segFile{name, first})
		}
	}
	sort.Slice(found, func(i, j int) bool { return found[i].first < found[j].first })

	// Segments wholly covered by the checkpoint — every record at or
	// below the watermark, which holds when the next segment starts at
	// or below watermark+1 — are left over from an interrupted
	// truncation; drop them without reading.
	live := found
	for len(live) > 1 && live[1].first <= after+1 {
		fs.Remove(filepath.Join(l.dir, live[0].name))
		live = live[1:]
	}

	prev := uint64(0) // last LSN seen across segments; strict ascent required
	stop := false
	for _, sf := range live {
		path := filepath.Join(l.dir, sf.name)
		if stop {
			// A torn or corrupt record ends the log: anything in later
			// segments was appended after the bad bytes — an ordering no
			// single crash produces — and replay must not resurrect it.
			fs.Remove(path)
			stats.Truncated = true
			continue
		}
		f, err := fs.Open(path)
		if err != nil {
			return stats, err
		}
		good, segStats, serr := replaySegment(f, sf.first, after, &prev, apply)
		f.Close()
		stats.Records += segStats.Records
		stats.Skipped += segStats.Skipped
		stats.Bytes += segStats.Bytes
		stats.Segments++
		switch {
		case serr == nil:
			l.segs = append(l.segs, segment{name: sf.name, first: sf.first, bytes: good})
		case serr == io.EOF: // torn or corrupt tail: trim it away
			stats.Truncated = true
			stop = true
			if good <= segHeaderBytes {
				// Nothing but a (possibly torn) header survives: the file
				// carries no records, so drop it entirely.
				fs.Remove(path)
			} else {
				if err := fs.Truncate(path, good); err != nil {
					return stats, err
				}
				l.segs = append(l.segs, segment{name: sf.name, first: sf.first, bytes: good})
			}
		default:
			return stats, serr
		}
	}
	if prev > after {
		l.next = prev + 1
	}
	// A record-free tail segment is the leftover of a prior generation's
	// rotation (Open and the checkpoint manager both rotate; a shutdown
	// before any further append leaves just the header). Drop it from the
	// live list: Open is about to rotate into segmentName(l.next) — the
	// very same file — and keeping both entries would count one file
	// twice and make TruncateThrough remove it twice, failing forever on
	// the second attempt.
	if n := len(l.segs); n > 0 {
		if tail := l.segs[n-1]; tail.bytes == segHeaderBytes && tail.first == l.next {
			l.segs = l.segs[:n-1]
		}
	}
	// Seed the byte counter with the recovered segments' record bytes so
	// BytesSinceCheckpoint keeps counting un-checkpointed work across
	// restarts instead of resetting with the process.
	for _, s := range l.segs {
		l.appendedBytes += s.bytes - segHeaderBytes
	}
	stats.Duration = time.Since(start)
	return stats, nil
}

// replaySegment streams one segment: validates the header, then decodes
// records until the end. Records with LSN at or below the watermark are
// skipped; the rest pass through apply. prev carries the last LSN seen
// across segments — LSNs must ascend strictly, a rewound or repeated
// sequence marks the bytes as corruption, not a crash artifact. The
// return is the offset after the last valid record (the truncation
// point), plus io.EOF when the segment ended early or invalidly — the
// signal to stop replay. A non-EOF error is an apply failure.
func replaySegment(r io.Reader, first, after uint64, prev *uint64, apply func(Record) error) (good int64, stats ReplayStats, err error) {
	var hdr [segHeaderBytes]byte
	if _, rerr := io.ReadFull(r, hdr[:]); rerr != nil {
		return 0, stats, io.EOF
	}
	stats.Bytes = segHeaderBytes
	if string(hdr[:8]) != segMagic ||
		binary.LittleEndian.Uint32(hdr[8:]) != segVersion ||
		binary.LittleEndian.Uint64(hdr[12:]) != first ||
		binary.LittleEndian.Uint32(hdr[20:]) != crc32.ChecksumIEEE(hdr[8:20]) {
		return 0, stats, io.EOF
	}
	good = segHeaderBytes
	for {
		rec, frame, rerr := readRecord(r)
		if rerr != nil {
			if rerr == io.EOF {
				return good, stats, nil
			}
			// Torn or corrupt: stop here, never applying the bad record.
			return good, stats, io.EOF
		}
		stats.Bytes += frame
		if rec.LSN <= *prev || rec.LSN < first {
			return good, stats, io.EOF
		}
		if rec.LSN <= after {
			stats.Skipped++
		} else {
			if apply != nil {
				if aerr := apply(rec); aerr != nil {
					return good, stats, fmt.Errorf("wal: replaying %s lsn %d: %w", rec.Op, rec.LSN, aerr)
				}
			}
			stats.Records++
		}
		*prev = rec.LSN
		good += frame
	}
}

// rotateLocked finishes the open segment and starts a fresh one whose
// first LSN is the next to be assigned. Callers hold l.mu (or own the
// log exclusively during Open).
func (l *Log) rotateLocked() error {
	fs := l.opts.FS
	if l.out != nil {
		if l.dirty && l.opts.Sync != SyncOS {
			if err := l.syncOutLocked(); err != nil {
				return err
			}
		}
		if err := l.out.Close(); err != nil {
			return l.wedge(err)
		}
		l.out = nil
	}
	name := segmentName(l.next)
	f, err := fs.Create(filepath.Join(l.dir, name))
	if err != nil {
		return l.wedge(err)
	}
	var hdr [segHeaderBytes]byte
	copy(hdr[:8], segMagic)
	binary.LittleEndian.PutUint32(hdr[8:], segVersion)
	binary.LittleEndian.PutUint64(hdr[12:], l.next)
	binary.LittleEndian.PutUint32(hdr[20:], crc32.ChecksumIEEE(hdr[8:20]))
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return l.wedge(err)
	}
	if l.opts.Sync != SyncOS {
		// The new segment's entry must be durable before any record in it
		// is acknowledged; the header bytes ride along with the first
		// record's fsync.
		if err := fs.SyncDir(l.dir); err != nil {
			f.Close()
			return l.wedge(err)
		}
	}
	l.out = f
	l.dirty = l.opts.Sync == SyncOS // header bytes unsynced by choice
	l.segs = append(l.segs, segment{name: name, first: l.next, bytes: segHeaderBytes})
	return nil
}

// ErrWedged marks every error a wedged log returns: classify with
// errors.Is(err, ErrWedged) to distinguish a server-side durability
// fault (the process must restart to recover) from a request's own
// error. The underlying cause stays on the chain via Unwrap.
var ErrWedged = errors.New("wal: log wedged")

// wedgedError carries the wedge cause while matching ErrWedged under
// errors.Is.
type wedgedError struct{ cause error }

func (e *wedgedError) Error() string   { return ErrWedged.Error() + ": " + e.cause.Error() }
func (e *wedgedError) Unwrap() []error { return []error{ErrWedged, e.cause} }

// wedge records the first fatal error and returns it; every subsequent
// operation fails with the same error.
func (l *Log) wedge(err error) error {
	if l.wedged == nil {
		l.wedged = &wedgedError{cause: err}
	}
	return l.wedged
}

// Err returns the error that wedged the log, or nil while it is
// healthy.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.wedged
}

// Append assigns the next LSN to rec and writes its frame to the open
// segment, rotating first when the segment is full. It does NOT wait
// for durability — callers append a batch, then Commit once. The
// assigned LSN is returned.
func (l *Log) Append(rec Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.wedged != nil {
		return 0, l.wedged
	}
	if l.closed {
		return 0, fmt.Errorf("wal: log closed")
	}
	if n := recordPayloadBytes(rec); n > MaxRecordBytes {
		// Refuse before writing: replay enforces the same bound, so an
		// oversized record that slipped into the log would be truncated
		// away as a corrupt tail on the next recovery — along with every
		// acknowledged record behind it. The log stays healthy: nothing
		// was written.
		return 0, fmt.Errorf("%w: %d-byte payload (op %s, %d items; max %d items per insert)",
			ErrRecordTooLarge, n, rec.Op, len(rec.Set), MaxInsertItems)
	}
	rec.LSN = l.next
	l.buf = appendRecord(l.buf[:0], rec)
	open := &l.segs[len(l.segs)-1]
	if open.bytes+int64(len(l.buf)) > l.opts.SegmentBytes && open.bytes > segHeaderBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
		open = &l.segs[len(l.segs)-1]
	}
	n, err := l.out.Write(l.buf)
	open.bytes += int64(n)
	if err != nil {
		return 0, l.wedge(err)
	}
	l.next++
	l.dirty = true
	l.appends++
	l.appendedBytes += int64(n)
	return rec.LSN, nil
}

// Commit makes every appended record durable per the sync policy:
// SyncAlways fsyncs now and returns the fsync's outcome; SyncInterval
// and SyncOS return immediately, their durability riding on the
// background flusher and the OS respectively. Acknowledge a mutation to
// a client only after Commit returns nil.
func (l *Log) Commit() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.wedged != nil {
		return l.wedged
	}
	if l.opts.Sync != SyncAlways {
		return nil
	}
	return l.syncOutLocked()
}

// Sync forces an fsync regardless of policy (shutdown, tests).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.wedged != nil {
		return l.wedged
	}
	return l.syncOutLocked()
}

func (l *Log) syncOutLocked() error {
	if !l.dirty || l.out == nil {
		return nil
	}
	start := time.Now()
	if err := l.out.Sync(); err != nil {
		return l.wedge(err)
	}
	d := time.Since(start).Nanoseconds()
	l.syncs++
	l.lastSyncNanos = d
	l.syncNanos += d
	l.dirty = false
	return nil
}

// syncLoop is the SyncInterval background flusher.
func (l *Log) syncLoop() {
	defer close(l.syncDone)
	t := time.NewTicker(l.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.mu.Lock()
			if l.wedged == nil && !l.closed {
				l.syncOutLocked() // a failure wedges; mutators see it next call
			}
			l.mu.Unlock()
		}
	}
}

// Rotate finishes the open segment and starts a fresh one. The
// checkpoint manager calls it before snapshotting so TruncateThrough
// can drop every pre-checkpoint segment.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.wedged != nil {
		return l.wedged
	}
	return l.rotateLocked()
}

// TruncateThrough removes the segments whose every record has LSN at or
// below mark — safe once a snapshot covering mark is durable. The open
// segment is never removed.
func (l *Log) TruncateThrough(mark uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	fs := l.opts.FS
	removed := false
	for len(l.segs) > 1 && l.segs[1].first <= mark+1 {
		// A missing file is already the desired end state (an interrupted
		// earlier truncation, say); drop the entry and keep reclaiming.
		if err := fs.Remove(filepath.Join(l.dir, l.segs[0].name)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
		l.segs = l.segs[1:]
		removed = true
	}
	if removed && l.opts.Sync != SyncOS {
		return fs.SyncDir(l.dir)
	}
	return nil
}

// NoteCheckpoint resets the bytes-since-checkpoint counter; the
// checkpoint manager calls it after a successful checkpoint.
func (l *Log) NoteCheckpoint() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ckptBase = l.appendedBytes
}

// LastLSN returns the newest assigned LSN (0 before any append).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next - 1
}

// Stats returns a point-in-time observation.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	var total int64
	for _, s := range l.segs {
		total += s.bytes
	}
	st := Stats{
		Segments:             len(l.segs),
		TotalBytes:           total,
		LastLSN:              l.next - 1,
		Appends:              l.appends,
		AppendedBytes:        l.appendedBytes,
		BytesSinceCheckpoint: l.appendedBytes - l.ckptBase,
		Syncs:                l.syncs,
		LastSyncNanos:        l.lastSyncNanos,
		TotalSyncNanos:       l.syncNanos,
		Wedged:               l.wedged != nil,
	}
	if n := len(l.segs); n > 0 {
		st.OpenSegmentBytes = l.segs[n-1].bytes
	}
	return st
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// Close flushes and closes the open segment. A wedged log closes its
// file without flushing; Close reports the wedge error in that case so
// shutdown paths surface it.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	stop := l.stop
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-l.syncDone
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var err error
	if l.wedged == nil {
		err = l.syncOutLocked()
	} else {
		err = l.wedged
	}
	if l.out != nil {
		if cerr := l.out.Close(); err == nil {
			err = cerr
		}
		l.out = nil
	}
	return err
}
