package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"syscall"
)

// FS is the filesystem surface the log and the checkpoint manager write
// through. The indirection plays the role storage.Pager plays for the
// index files: recovery tests inject failures (FaultyFS) and simulate
// power loss (MemFS) without touching a real disk, while production
// code runs on OSFS. Every implementation must make Rename atomic —
// the crash-atomic snapshot protocol (WriteFileAtomic) rests on it.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// Create opens path for writing, truncating any existing file.
	Create(path string) (File, error)
	// Open opens path for reading.
	Open(path string) (io.ReadCloser, error)
	// ReadDir lists the names (not paths) of dir's entries, sorted.
	ReadDir(dir string) ([]string, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes path.
	Remove(path string) error
	// Truncate cuts path to size bytes.
	Truncate(path string, size int64) error
	// SyncDir forces dir's entry operations (creates, renames, removes)
	// to stable storage.
	SyncDir(dir string) error
}

// File is a writable log or snapshot file: sequential writes, explicit
// durability, close. Close does not imply Sync.
type File interface {
	io.Writer
	// Sync forces written bytes to stable storage.
	Sync() error
	// Close releases the file.
	Close() error
}

// OSFS is the FS backed by the real filesystem.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// Create implements FS.
func (OSFS) Create(path string) (File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

// Open implements FS.
func (OSFS) Open(path string) (io.ReadCloser, error) { return os.Open(path) }

// ReadDir implements FS.
func (OSFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// Rename implements FS.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OSFS) Remove(path string) error { return os.Remove(path) }

// Truncate implements FS.
func (OSFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

// SyncDir implements FS. Filesystems that cannot fsync a directory
// (some network and macOS configurations return EINVAL or ENOTSUP)
// are tolerated: entry durability then rides on the filesystem's own
// metadata journaling, which is the best available on such systems.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	cerr := d.Close()
	if err != nil {
		if errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) {
			return cerr
		}
		return err
	}
	return cerr
}

// WriteFileAtomic writes a file so that a crash at any point leaves
// either the previous content of path or the complete new content,
// never a torn mix: write writes the bytes into a same-directory temp
// file, which is fsynced before an atomic rename over path, followed by
// a directory fsync so the entry itself survives. Every snapshot the
// repository persists (oifquery -save, the checkpoint manager) goes
// through this protocol.
func WriteFileAtomic(fs FS, path string, write func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fs.Remove(tmp)
		return err
	}
	if err := fs.Rename(tmp, path); err != nil {
		fs.Remove(tmp)
		return fmt.Errorf("wal: publishing %s: %w", filepath.Base(path), err)
	}
	return fs.SyncDir(filepath.Dir(path))
}
