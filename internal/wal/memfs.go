package wal

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path"
	"sort"
	"strings"
	"sync"
)

// MemFS is an in-memory FS with explicit power-loss semantics, the
// substrate of the recovery property tests: bytes written to a file are
// volatile until the file is fsynced, and Crash discards everything
// volatile — so a test can cut power at an arbitrary operation and then
// recover from exactly the state a real disk would hold.
//
// The model, deliberately simple but strict where it matters:
//
//   - File content is durable only up to the last Sync; a crash
//     truncates the file back to that point (the classic torn tail).
//   - Entry operations (Create, Rename, Remove) take effect immediately
//     and survive a crash, as on a metadata-journaling filesystem.
//     SyncDir is accepted and counted but adds nothing to the model.
//
// A freshly created, never-synced file therefore survives a crash as
// zero bytes — which is exactly the torn-checkpoint shape recovery must
// tolerate when the file fsync before a rename is omitted.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
	dirs  map[string]bool
}

type memFile struct {
	buf     []byte
	durable int // bytes guaranteed to survive Crash
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: map[string]*memFile{}, dirs: map[string]bool{"/": true, ".": true}}
}

// Crash simulates power loss: every file's volatile tail — bytes
// written after its last Sync — is discarded.
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, f := range m.files {
		f.buf = f.buf[:f.durable]
	}
}

// MkdirAll implements FS.
func (m *MemFS) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for d := path.Clean(dir); d != "." && d != "/"; d = path.Dir(d) {
		m.dirs[d] = true
	}
	return nil
}

// Create implements FS.
func (m *MemFS) Create(p string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := &memFile{}
	m.files[path.Clean(p)] = f
	return &memHandle{fs: m, f: f}, nil
}

// Open implements FS.
func (m *MemFS) Open(p string) (io.ReadCloser, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[path.Clean(p)]
	if !ok {
		return nil, &os.PathError{Op: "open", Path: p, Err: os.ErrNotExist}
	}
	return io.NopCloser(bytes.NewReader(append([]byte(nil), f.buf...))), nil
}

// ReadDir implements FS.
func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	prefix := path.Clean(dir) + "/"
	var names []string
	for p := range m.files {
		if strings.HasPrefix(p, prefix) && !strings.Contains(p[len(prefix):], "/") {
			names = append(names, p[len(prefix):])
		}
	}
	sort.Strings(names)
	return names, nil
}

// Rename implements FS.
func (m *MemFS) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[path.Clean(oldpath)]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldpath, Err: os.ErrNotExist}
	}
	delete(m.files, path.Clean(oldpath))
	m.files[path.Clean(newpath)] = f
	return nil
}

// Remove implements FS.
func (m *MemFS) Remove(p string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[path.Clean(p)]; !ok {
		return &os.PathError{Op: "remove", Path: p, Err: os.ErrNotExist}
	}
	delete(m.files, path.Clean(p))
	return nil
}

// Truncate implements FS.
func (m *MemFS) Truncate(p string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[path.Clean(p)]
	if !ok {
		return &os.PathError{Op: "truncate", Path: p, Err: os.ErrNotExist}
	}
	if size > int64(len(f.buf)) {
		return fmt.Errorf("wal: memfs truncate %s beyond size", p)
	}
	f.buf = f.buf[:size]
	if f.durable > int(size) {
		f.durable = int(size)
	}
	return nil
}

// SyncDir implements FS; entry durability is immediate in this model.
func (m *MemFS) SyncDir(string) error { return nil }

// Bytes returns a copy of a file's current (volatile) content, for
// tests that corrupt or inspect it.
func (m *MemFS) Bytes(p string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[path.Clean(p)]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), f.buf...), true
}

// WriteBytes replaces a file's content (volatile and durable alike),
// for tests that plant corruption.
func (m *MemFS) WriteBytes(p string, b []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[path.Clean(p)] = &memFile{buf: append([]byte(nil), b...), durable: len(b)}
}

// memHandle is a MemFS file handle.
type memHandle struct {
	fs     *MemFS
	f      *memFile
	closed bool
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, os.ErrClosed
	}
	h.f.buf = append(h.f.buf, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return os.ErrClosed
	}
	h.f.durable = len(h.f.buf)
	return nil
}

func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.closed = true
	return nil
}
