package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"testing"
)

// validSegment builds a well-formed one-segment log for fuzz seeding.
func validSegment(first uint64, recs []Record) []byte {
	var hdr [segHeaderBytes]byte
	copy(hdr[:8], segMagic)
	binary.LittleEndian.PutUint32(hdr[8:], segVersion)
	binary.LittleEndian.PutUint64(hdr[12:], first)
	binary.LittleEndian.PutUint32(hdr[20:], crc32.ChecksumIEEE(hdr[8:20]))
	out := append([]byte(nil), hdr[:]...)
	for _, r := range recs {
		out = appendRecord(out, r)
	}
	return out
}

// FuzzReplaySegment feeds arbitrary bytes to recovery as the content of
// the first segment file. Whatever the bytes, Open must return without
// panicking, applied records must carry strictly ascending LSNs and
// known ops, and the log must remain appendable afterwards.
func FuzzReplaySegment(f *testing.F) {
	f.Add([]byte{})
	f.Add(validSegment(1, []Record{
		{LSN: 1, Op: OpInsert, ID: 1, Set: []uint32{2, 9}},
		{LSN: 2, Op: OpDelete, ID: 1},
	}))
	// A torn tail: the second record cut mid-payload.
	torn := validSegment(1, []Record{
		{LSN: 1, Op: OpInsert, ID: 1, Set: []uint32{2, 9}},
		{LSN: 2, Op: OpInsert, ID: 2, Set: []uint32{4}},
	})
	f.Add(torn[:len(torn)-5])
	// A rewound LSN sequence, which only corruption produces.
	f.Add(validSegment(1, []Record{
		{LSN: 2, Op: OpDelete, ID: 1},
		{LSN: 1, Op: OpDelete, ID: 2},
	}))
	f.Add([]byte(segMagic))

	f.Fuzz(func(t *testing.T, seg []byte) {
		fs := NewMemFS()
		fs.MkdirAll("w")
		fs.WriteBytes("w/"+segmentName(1), seg)
		var prev uint64
		l, _, err := Open("w", Options{FS: fs, Sync: SyncOS}, 0, func(r Record) error {
			if r.LSN <= prev {
				t.Fatalf("applied LSNs not ascending: %d after %d", r.LSN, prev)
			}
			if r.Op != OpInsert && r.Op != OpDelete {
				t.Fatalf("applied unknown op %d", r.Op)
			}
			prev = r.LSN
			return nil
		})
		if err != nil {
			// Recovery may only fail on FS errors, which MemFS does not
			// produce here.
			t.Fatalf("Open failed on fuzzed segment: %v", err)
		}
		// The recovered log must accept appends and replay them back.
		lsn, err := l.Append(Record{Op: OpDelete, ID: 7})
		if err != nil {
			t.Fatalf("append after fuzzed recovery: %v", err)
		}
		if lsn <= prev {
			t.Fatalf("post-recovery LSN %d not above replayed %d", lsn, prev)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		seen := false
		_, _, err = Open("w", Options{FS: fs, Sync: SyncOS}, 0, func(r Record) error {
			if r.LSN == lsn {
				seen = true
			}
			return nil
		})
		if err != nil || !seen {
			t.Fatalf("re-replay lost the appended record (err %v)", err)
		}
	})
}

// FuzzRecordDecode hammers the frame decoder directly: arbitrary bytes
// must yield either a valid record or a clean error, never a panic, and
// a decoded frame must re-encode to the same bytes it was decoded from.
func FuzzRecordDecode(f *testing.F) {
	f.Add(appendRecord(nil, Record{LSN: 9, Op: OpInsert, ID: 3, Set: []uint32{1, 2, 3}}))
	f.Add(appendRecord(nil, Record{LSN: 1, Op: OpDelete, ID: 1}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Add(make([]byte, 64))

	f.Fuzz(func(t *testing.T, b []byte) {
		rec, n, err := readRecord(bytes.NewReader(b))
		if err != nil {
			if err != io.EOF && err != errTornTail && !bytes.Contains([]byte(err.Error()), []byte("corrupt")) {
				t.Fatalf("unexpected decode error class: %v", err)
			}
			return
		}
		if n > int64(len(b)) {
			t.Fatalf("frame size %d exceeds input %d", n, len(b))
		}
		if got := appendRecord(nil, rec); !bytes.Equal(got, b[:n]) {
			t.Fatalf("re-encode mismatch:\n in  %x\n out %x", b[:n], got)
		}
	})
}
