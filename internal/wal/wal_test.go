package wal

import (
	"errors"
	"fmt"
	"io"
	"testing"
	"time"
)

// collect re-opens the log read-only-ish (apply accumulates) and
// returns the replayed records above after.
func collect(t *testing.T, fs FS, dir string, after uint64) ([]Record, ReplayStats) {
	t.Helper()
	var recs []Record
	l, stats, err := Open(dir, Options{FS: fs, Sync: SyncOS}, after, func(r Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	l.Close()
	return recs, stats
}

func mustAppend(t *testing.T, l *Log, rec Record) uint64 {
	t.Helper()
	lsn, err := l.Append(rec)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	return lsn
}

func TestAppendReplayRoundTrip(t *testing.T) {
	fs := NewMemFS()
	l, stats, err := Open("w", Options{FS: fs}, 0, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if stats.Records != 0 || stats.Segments != 0 {
		t.Fatalf("fresh log replayed something: %+v", stats)
	}
	want := []Record{
		{Op: OpInsert, ID: 1, Set: []uint32{3, 17, 29}},
		{Op: OpInsert, ID: 2, Set: nil},
		{Op: OpDelete, ID: 1},
		{Op: OpInsert, ID: 3, Set: []uint32{0, 4294967295}},
	}
	for i, rec := range want {
		if lsn := mustAppend(t, l, rec); lsn != uint64(i+1) {
			t.Fatalf("record %d got lsn %d", i, lsn)
		}
	}
	if got := l.LastLSN(); got != 4 {
		t.Fatalf("LastLSN = %d, want 4", got)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	recs, rstats := collect(t, fs, "w", 0)
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i, rec := range recs {
		if rec.LSN != uint64(i+1) || rec.Op != want[i].Op || rec.ID != want[i].ID {
			t.Fatalf("record %d = %+v, want %+v", i, rec, want[i])
		}
		if fmt.Sprint(rec.Set) != fmt.Sprint(want[i].Set) && len(want[i].Set) > 0 {
			t.Fatalf("record %d set = %v, want %v", i, rec.Set, want[i].Set)
		}
	}
	if rstats.Truncated {
		t.Fatalf("clean log reported truncation")
	}
}

func TestWatermarkSkips(t *testing.T) {
	fs := NewMemFS()
	l, _, _ := Open("w", Options{FS: fs}, 0, nil)
	for i := 0; i < 10; i++ {
		mustAppend(t, l, Record{Op: OpInsert, ID: uint32(i + 1), Set: []uint32{uint32(i)}})
	}
	l.Close()
	recs, stats := collect(t, fs, "w", 6)
	if len(recs) != 4 || stats.Skipped != 6 {
		t.Fatalf("replayed %d (skipped %d), want 4 (6)", len(recs), stats.Skipped)
	}
	if recs[0].LSN != 7 {
		t.Fatalf("first replayed lsn = %d, want 7", recs[0].LSN)
	}
}

func TestRotationAndTruncateThrough(t *testing.T) {
	fs := NewMemFS()
	// Tiny segments force rotation every couple of records.
	l, _, _ := Open("w", Options{FS: fs, SegmentBytes: 128}, 0, nil)
	for i := 0; i < 20; i++ {
		mustAppend(t, l, Record{Op: OpInsert, ID: uint32(i + 1), Set: []uint32{1, 2, 3, 4}})
	}
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected multiple segments, got %d", st.Segments)
	}
	if err := l.TruncateThrough(10); err != nil {
		t.Fatalf("TruncateThrough: %v", err)
	}
	after := l.Stats()
	if after.Segments >= st.Segments {
		t.Fatalf("truncation removed nothing: %d -> %d", st.Segments, after.Segments)
	}
	l.Close()
	// Records 11..20 must still replay; 1..10 are gone with their
	// segments (the caller only truncates through a durable checkpoint).
	recs, _ := collect(t, fs, "w", 10)
	if len(recs) != 10 || recs[0].LSN != 11 || recs[9].LSN != 20 {
		t.Fatalf("post-truncation replay wrong: %d records, first %d", len(recs), recs[0].LSN)
	}
}

func TestTornTailTruncatedAndAppendable(t *testing.T) {
	fs := NewMemFS()
	l, _, _ := Open("w", Options{FS: fs}, 0, nil)
	for i := 0; i < 5; i++ {
		mustAppend(t, l, Record{Op: OpInsert, ID: uint32(i + 1), Set: []uint32{9, 8, 7}})
	}
	l.Close()

	// Cut the final record short at every possible byte boundary; replay
	// must stop at record 4 and subsequent appends must be recoverable.
	name := segmentName(1)
	full, ok := fs.Bytes("w/" + name)
	if !ok {
		t.Fatalf("segment missing")
	}
	frame := int64(frameHeaderBytes + 13 + 4 + 12)
	for cut := int64(1); cut < frame; cut += 7 {
		fs.WriteBytes("w/"+name, full[:int64(len(full))-cut])
		var recs []Record
		l2, stats, err := Open("w", Options{FS: fs}, 0, func(r Record) error {
			recs = append(recs, r)
			return nil
		})
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		if len(recs) != 4 || !stats.Truncated {
			t.Fatalf("cut %d: replayed %d records (truncated=%v), want 4 (true)", cut, len(recs), stats.Truncated)
		}
		// The log must keep working: append after the torn tail, close,
		// and verify both old and new records replay.
		if _, err := l2.Append(Record{Op: OpDelete, ID: 2}); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		if err := l2.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
		recs2, _ := collect(t, fs, "w", 0)
		if len(recs2) != 5 || recs2[4].Op != OpDelete || recs2[4].LSN != 5 {
			t.Fatalf("cut %d: after re-append replay = %d records, last %+v", cut, len(recs2), recs2[len(recs2)-1])
		}
		fs.WriteBytes("w/"+name, full) // restore for the next cut
		// Remove the segments the recovery created so each iteration
		// starts from the same two-file state.
		names, _ := fs.ReadDir("w")
		for _, n := range names {
			if n != name {
				fs.Remove("w/" + n)
			}
		}
	}
}

func TestCorruptMiddleStopsReplay(t *testing.T) {
	fs := NewMemFS()
	l, _, _ := Open("w", Options{FS: fs}, 0, nil)
	for i := 0; i < 6; i++ {
		mustAppend(t, l, Record{Op: OpInsert, ID: uint32(i + 1), Set: []uint32{5, 6}})
	}
	l.Close()
	name := "w/" + segmentName(1)
	b, _ := fs.Bytes(name)
	// Flip a bit inside the third record's payload.
	frame := frameHeaderBytes + 13 + 4 + 8
	b[segHeaderBytes+2*frame+frameHeaderBytes+3] ^= 0x40
	fs.WriteBytes(name, b)
	recs, stats := collect(t, fs, "w", 0)
	if len(recs) != 2 || !stats.Truncated {
		t.Fatalf("replayed %d records (truncated=%v), want 2 (true)", len(recs), stats.Truncated)
	}
}

func TestCrashLosesUnsynced(t *testing.T) {
	fs := NewMemFS()
	// SyncOS never fsyncs: a power loss drops everything.
	l, _, _ := Open("w", Options{FS: fs, Sync: SyncOS}, 0, nil)
	for i := 0; i < 3; i++ {
		if _, err := l.Append(Record{Op: OpInsert, ID: uint32(i + 1)}); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	fs.Crash()
	recs, _ := collect(t, fs, "w", 0)
	if len(recs) != 0 {
		t.Fatalf("unsynced records survived a crash: %d", len(recs))
	}

	// SyncAlways: every committed record survives.
	fs2 := NewMemFS()
	l2, _, _ := Open("w", Options{FS: fs2, Sync: SyncAlways}, 0, nil)
	for i := 0; i < 3; i++ {
		mustAppend(t, l2, Record{Op: OpInsert, ID: uint32(i + 1)})
	}
	fs2.Crash()
	recs2, _ := collect(t, fs2, "w", 0)
	if len(recs2) != 3 {
		t.Fatalf("committed records lost in crash: got %d, want 3", len(recs2))
	}
}

func TestIntervalPolicyFlushes(t *testing.T) {
	fs := NewMemFS()
	l, _, err := Open("w", Options{FS: fs, Sync: SyncInterval, SyncEvery: time.Millisecond}, 0, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := l.Append(Record{Op: OpInsert, ID: 1}); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := l.Commit(); err != nil { // returns immediately under interval
		t.Fatalf("commit: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for l.Stats().Syncs == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("background syncer never flushed")
		}
		time.Sleep(time.Millisecond)
	}
	fs.Crash()
	l.Close()
	recs, _ := collect(t, fs, "w", 0)
	if len(recs) != 1 {
		t.Fatalf("interval-flushed record lost: %d", len(recs))
	}
}

func TestWedgeOnAppendFailure(t *testing.T) {
	mem := NewMemFS()
	faulty := NewFaultyFS(mem, 0)
	l, _, err := Open("w", Options{FS: faulty, Sync: SyncAlways}, 0, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	mustAppend(t, l, Record{Op: OpInsert, ID: 1, Set: []uint32{1}})
	faulty.FailAt = faulty.Ops() + 1 // next mutating op fails
	if _, err := l.Append(Record{Op: OpInsert, ID: 2, Set: []uint32{2}}); err == nil {
		t.Fatalf("append with injected fault succeeded")
	}
	// Wedged: everything fails from here, with the injected error.
	if _, err := l.Append(Record{Op: OpDelete, ID: 1}); !errors.Is(err, ErrInjected) {
		t.Fatalf("wedged append = %v, want ErrInjected", err)
	}
	if err := l.Commit(); !errors.Is(err, ErrInjected) {
		t.Fatalf("wedged commit = %v, want ErrInjected", err)
	}
	if err := l.Err(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Err = %v", err)
	}
	if !l.Stats().Wedged {
		t.Fatalf("stats not wedged")
	}
	l.Close()
	// The acked record survives the crash; the failed one is absent.
	mem.Crash()
	recs, _ := collect(t, mem, "w", 0)
	if len(recs) != 1 || recs[0].ID != 1 {
		t.Fatalf("after wedge+crash: %d records", len(recs))
	}
}

func TestShortWriteTornTail(t *testing.T) {
	mem := NewMemFS()
	faulty := NewFaultyFS(mem, 0)
	faulty.ShortWrites = true
	l, _, err := Open("w", Options{FS: faulty, Sync: SyncAlways}, 0, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	mustAppend(t, l, Record{Op: OpInsert, ID: 1, Set: []uint32{1, 2, 3}})
	faulty.FailAt = faulty.Ops() + 1
	if _, err := l.Append(Record{Op: OpInsert, ID: 2, Set: []uint32{4, 5, 6}}); err == nil {
		t.Fatalf("short write reported success")
	}
	l.Close()
	// Half the frame landed; the file fsync never happened, but even if
	// the bytes reach disk the torn frame must be cut on recovery.
	for _, f := range []*MemFS{mem} {
		recs, stats := collect(t, f, "w", 0)
		if len(recs) != 1 || recs[0].ID != 1 {
			t.Fatalf("short write leaked a record: %d replayed", len(recs))
		}
		if !stats.Truncated {
			t.Fatalf("torn tail not reported")
		}
	}
}

func TestDropSyncsLosesAckedOnCrash(t *testing.T) {
	// DropSyncs models a disk that lies about fsync: with it, even
	// SyncAlways cannot keep its promise across power loss. The test
	// pins down that the MemFS durability model really is driven by the
	// sync calls and nothing else.
	mem := NewMemFS()
	faulty := NewFaultyFS(mem, 0)
	faulty.DropSyncs = true
	l, _, _ := Open("w", Options{FS: faulty, Sync: SyncAlways}, 0, nil)
	mustAppend(t, l, Record{Op: OpInsert, ID: 1})
	faulty.FailAt = faulty.Ops() + 1 // trip: syncs silently dropped now
	for i := 0; i < 3; i++ {
		l.Append(Record{Op: OpInsert, ID: uint32(i + 2)})
		l.Commit()
	}
	mem.Crash()
	recs, _ := collect(t, mem, "w", 0)
	if len(recs) != 1 {
		t.Fatalf("dropped-sync records survived: %d", len(recs))
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
		ok   bool
	}{
		{"always", SyncAlways, true},
		{"", SyncAlways, true},
		{"Interval", SyncInterval, true},
		{"os", SyncOS, true},
		{"none", SyncOS, true},
		{"sometimes", 0, false},
	} {
		got, err := ParseSyncPolicy(tc.in)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if tc.ok && tc.in != "" && tc.in != "none" {
			if back, err := ParseSyncPolicy(got.String()); err != nil || back != got {
				t.Fatalf("%v does not round-trip its String", got)
			}
		}
	}
}

func TestWriteFileAtomic(t *testing.T) {
	fs := NewMemFS()
	fs.MkdirAll("d")
	write := func(content string) error {
		return WriteFileAtomic(fs, "d/file", func(w io.Writer) error {
			_, err := io.WriteString(w, content)
			return err
		})
	}
	if err := write("first"); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := write("second version"); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	fs.Crash()
	b, ok := fs.Bytes("d/file")
	if !ok || string(b) != "second version" {
		t.Fatalf("after crash: %q, %v", b, ok)
	}
	// A failing write must leave the previous content untouched and no
	// temp file behind.
	err := WriteFileAtomic(fs, "d/file", func(io.Writer) error { return errors.New("boom") })
	if err == nil {
		t.Fatalf("failing write succeeded")
	}
	if b, _ := fs.Bytes("d/file"); string(b) != "second version" {
		t.Fatalf("failed write clobbered the file: %q", b)
	}
	if names, _ := fs.ReadDir("d"); len(names) != 1 {
		t.Fatalf("temp file left behind: %v", names)
	}
}

func TestRecoveryCleansObsoleteSegments(t *testing.T) {
	fs := NewMemFS()
	l, _, _ := Open("w", Options{FS: fs, SegmentBytes: 128}, 0, nil)
	for i := 0; i < 20; i++ {
		mustAppend(t, l, Record{Op: OpInsert, ID: uint32(i + 1), Set: []uint32{1, 2, 3, 4}})
	}
	l.Close()
	before, _ := fs.ReadDir("w")
	// A checkpoint at LSN 20 that crashed before truncating: recovery
	// with after=20 must drop every fully-covered segment.
	l2, stats, err := Open("w", Options{FS: fs}, 20, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if stats.Records != 0 {
		t.Fatalf("watermarked records replayed: %d", stats.Records)
	}
	l2.Close()
	after, _ := fs.ReadDir("w")
	if len(after) >= len(before) {
		t.Fatalf("obsolete segments kept: %d -> %d files", len(before), len(after))
	}
}

// TestReopenWithoutAppends is the regression test for the duplicate
// segment entry: every Open rotates into segmentName(l.next), and when
// a restart left a record-free segment with that very name (any boot
// where nothing was appended to the newest segment), recovery used to
// keep it in l.segs alongside the entry the rotation adds — one file
// counted as two segments, which TruncateThrough then tried to remove
// twice, failing with ENOENT forever after the first checkpoint.
func TestReopenWithoutAppends(t *testing.T) {
	fs := NewMemFS()
	for boot := 0; boot < 3; boot++ {
		l, _, err := Open("w", Options{FS: fs}, 0, nil)
		if err != nil {
			t.Fatalf("boot %d: Open: %v", boot, err)
		}
		files, _ := fs.ReadDir("w")
		if st := l.Stats(); st.Segments != 1 || len(files) != 1 {
			t.Fatalf("boot %d: %d segments over %d files %v, want 1 over 1",
				boot, st.Segments, len(files), files)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("boot %d: Close: %v", boot, err)
		}
	}
	// The relisted file must stay reclaimable: append, rotate (as the
	// checkpoint manager does), truncate — twice, so a bookkeeping slip
	// in the first cycle cannot hide.
	l, _, err := Open("w", Options{FS: fs}, 0, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	for round := 0; round < 2; round++ {
		mustAppend(t, l, Record{Op: OpInsert, ID: uint32(round + 1), Set: []uint32{1, 2}})
		if err := l.Rotate(); err != nil {
			t.Fatalf("round %d: Rotate: %v", round, err)
		}
		if err := l.TruncateThrough(l.LastLSN()); err != nil {
			t.Fatalf("round %d: TruncateThrough: %v", round, err)
		}
		files, _ := fs.ReadDir("w")
		if st := l.Stats(); st.Segments != 1 || len(files) != 1 {
			t.Fatalf("round %d: %d segments over %d files %v, want 1 over 1",
				round, st.Segments, len(files), files)
		}
	}
}

// TestAppendRejectsOversizedRecord: a record whose payload exceeds
// MaxRecordBytes must be refused at append time — logging it would make
// the next replay truncate it (and everything after it) as a corrupt
// tail. The rejection must not wedge the log, and a record at exactly
// the bound must round-trip.
func TestAppendRejectsOversizedRecord(t *testing.T) {
	fs := NewMemFS()
	l, _, err := Open("w", Options{FS: fs}, 0, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := l.Append(Record{Op: OpInsert, ID: 1, Set: make([]uint32, MaxInsertItems+1)}); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("oversized append = %v, want ErrRecordTooLarge", err)
	}
	if err := l.Err(); err != nil {
		t.Fatalf("size rejection wedged the log: %v", err)
	}
	// Exactly the bound is appendable and replayable: the write-time
	// check and readRecord's bound must agree, or a record could be
	// accepted yet lost on recovery.
	mustAppend(t, l, Record{Op: OpInsert, ID: 1, Set: make([]uint32, MaxInsertItems)})
	mustAppend(t, l, Record{Op: OpDelete, ID: 1})
	l.Close()
	recs, stats := collect(t, fs, "w", 0)
	if len(recs) != 2 || stats.Truncated {
		t.Fatalf("replayed %d records (truncated=%v), want 2 clean", len(recs), stats.Truncated)
	}
	if len(recs[0].Set) != MaxInsertItems {
		t.Fatalf("max-size record replayed %d items, want %d", len(recs[0].Set), MaxInsertItems)
	}
}

// TestWedgedErrorMatchesSentinel: every error a wedged log returns must
// match ErrWedged under errors.Is — the serving layer classifies
// 503-vs-400 by it — while keeping the original cause on the chain.
func TestWedgedErrorMatchesSentinel(t *testing.T) {
	mem := NewMemFS()
	faulty := NewFaultyFS(mem, 0)
	l, _, err := Open("w", Options{FS: faulty}, 0, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	faulty.FailAt = faulty.Ops() + 1
	if _, err := l.Append(Record{Op: OpDelete, ID: 1}); err == nil {
		t.Fatalf("append over tripped fs succeeded")
	} else if !errors.Is(err, ErrWedged) || !errors.Is(err, ErrInjected) {
		t.Fatalf("wedge error %v must match both ErrWedged and its cause", err)
	}
	if err := l.Err(); !errors.Is(err, ErrWedged) {
		t.Fatalf("Err() = %v, want ErrWedged match", err)
	}
}
