package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Op distinguishes the logged mutation types.
type Op uint8

// The mutation types a record can carry.
const (
	// OpInsert logs a record insert: ID is the id the engine assigned,
	// Set the inserted items. Replay re-inserts the set and verifies the
	// engine assigns the same id.
	OpInsert Op = 1
	// OpDelete logs a tombstone: ID is the deleted record id.
	OpDelete Op = 2
)

// String names the op for diagnostics.
func (op Op) String() string {
	switch op {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Record is one logged mutation. LSN is assigned by Log.Append — a
// monotonic sequence number that orders the record against every other
// mutation and against checkpoint watermarks.
type Record struct {
	LSN uint64
	Op  Op
	ID  uint32
	Set []uint32 // inserted items (OpInsert only)
}

// MaxRecordBytes bounds one record's payload so a corrupt length header
// cannot force a huge allocation before the CRC check fails. A million
// 32-bit items fit with room to spare.
const MaxRecordBytes = 1 << 24

// MaxInsertItems is the largest set one OpInsert record can carry: the
// insert payload (17 fixed bytes plus 4 per item) must fit
// MaxRecordBytes. Log.Append enforces the same bound readRecord checks
// on replay, so a record the log accepts is always replayable — an
// oversized record must be rejected before it is applied or
// acknowledged, never discovered as "corrupt" at recovery time.
const MaxInsertItems = (MaxRecordBytes - 17) / 4

// ErrRecordTooLarge reports a record whose encoded payload would exceed
// MaxRecordBytes. Append refuses such a record without writing (and
// without wedging the log — nothing reached the file).
var ErrRecordTooLarge = errors.New("wal: record exceeds MaxRecordBytes")

// recordPayloadBytes is the encoded payload size appendRecord would
// produce for rec — the value the write-time MaxRecordBytes check and
// the encoder must agree on.
func recordPayloadBytes(rec Record) int64 {
	n := int64(8 + 1 + 4)
	if rec.Op == OpInsert {
		n += 4 + 4*int64(len(rec.Set))
	}
	return n
}

// ErrCorruptRecord reports a record frame whose bytes cannot be a valid
// record: implausible length, CRC mismatch, or malformed payload.
// Replay treats it (and a short tail) as the end of the log.
var ErrCorruptRecord = errors.New("wal: corrupt record")

// errTornTail reports a record frame cut short by a crash mid-append:
// replay stops there, exactly like ErrCorruptRecord, and the tail is
// truncated away so future appends cannot hide behind it.
var errTornTail = errors.New("wal: torn record tail")

// A record frame is
//
//	u32 payload length | u32 CRC32(payload) | payload
//
// with the payload spelled
//
//	u64 LSN | u8 op | u32 id | (OpInsert: u32 count | count × u32 item)
//
// in little-endian, the same integer vocabulary as internal/snapio. The
// CRC covers the payload only; the length field is validated by bounds
// and by the payload decoding consuming it exactly.
const frameHeaderBytes = 8

// appendRecord encodes rec's frame onto buf and returns the extended
// slice; Log.Append reuses one buffer so steady-state logging does not
// allocate.
func appendRecord(buf []byte, rec Record) []byte {
	payloadLen := 8 + 1 + 4
	if rec.Op == OpInsert {
		payloadLen += 4 + 4*len(rec.Set)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(payloadLen))
	crcAt := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, 0) // CRC placeholder
	payloadAt := len(buf)
	buf = binary.LittleEndian.AppendUint64(buf, rec.LSN)
	buf = append(buf, byte(rec.Op))
	buf = binary.LittleEndian.AppendUint32(buf, rec.ID)
	if rec.Op == OpInsert {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec.Set)))
		for _, it := range rec.Set {
			buf = binary.LittleEndian.AppendUint32(buf, it)
		}
	}
	crc := crc32.ChecksumIEEE(buf[payloadAt:])
	binary.LittleEndian.PutUint32(buf[crcAt:], crc)
	return buf
}

// readRecord decodes the next record frame from r, returning the frame
// size in bytes alongside. It returns io.EOF at a clean end of the
// stream, errTornTail when the frame is cut short, and ErrCorruptRecord
// when the bytes are structurally invalid — the caller stops replay on
// any of the three, never applying a bad record.
func readRecord(r io.Reader) (Record, int64, error) {
	var hdr [frameHeaderBytes]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return Record{}, 0, io.EOF
		}
		return Record{}, 0, errTornTail
	}
	payloadLen := binary.LittleEndian.Uint32(hdr[0:])
	wantCRC := binary.LittleEndian.Uint32(hdr[4:])
	if payloadLen < 13 || payloadLen > MaxRecordBytes {
		return Record{}, 0, fmt.Errorf("%w: payload length %d", ErrCorruptRecord, payloadLen)
	}
	n := int64(frameHeaderBytes) + int64(payloadLen)
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Record{}, 0, errTornTail
	}
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return Record{}, 0, fmt.Errorf("%w: CRC mismatch (stored %08x, computed %08x)",
			ErrCorruptRecord, wantCRC, got)
	}
	rec := Record{
		LSN: binary.LittleEndian.Uint64(payload[0:]),
		Op:  Op(payload[8]),
		ID:  binary.LittleEndian.Uint32(payload[9:]),
	}
	rest := payload[13:]
	switch rec.Op {
	case OpInsert:
		if len(rest) < 4 {
			return Record{}, 0, fmt.Errorf("%w: insert payload too short", ErrCorruptRecord)
		}
		items := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		if uint64(items)*4 != uint64(len(rest)) {
			return Record{}, 0, fmt.Errorf("%w: insert set length %d in %d payload bytes",
				ErrCorruptRecord, items, len(rest))
		}
		rec.Set = make([]uint32, items)
		for i := range rec.Set {
			rec.Set[i] = binary.LittleEndian.Uint32(rest[i*4:])
		}
	case OpDelete:
		if len(rest) != 0 {
			return Record{}, 0, fmt.Errorf("%w: delete payload carries %d extra bytes",
				ErrCorruptRecord, len(rest))
		}
	default:
		return Record{}, 0, fmt.Errorf("%w: unknown op %d", ErrCorruptRecord, payload[8])
	}
	return rec, n, nil
}
