package btree

import (
	"repro/internal/storage"
)

// Cursor iterates leaf entries in key order. On arrival at each leaf the
// cursor copies the leaf's entries out of the buffer pool, so it holds no
// pins while the caller processes entries (the pool stays free to evict —
// important under the paper's minimal 32 KB cache). Each leaf is therefore
// charged to the access statistics exactly once per visit.
//
// The copies land in a single flat arena that the cursor reuses from leaf
// to leaf (and, through SeekCursor, from seek to seek), so a warmed-up
// cursor walks the tree without allocating. Key and Value therefore
// return slices owned by the cursor, valid only until the next
// Next/Seek.
//
// A cursor is invalidated by writes to the tree; the indexes in this
// repository never interleave writes with scans.
type Cursor struct {
	t       *BTree
	arena   []byte   // flat copy of the current leaf's keys and values
	keys    [][]byte // per-entry subslices of arena
	vals    [][]byte // per-entry subslices of arena
	idx     int
	next    storage.PageID
	valid   bool
	exhaust bool
}

// Seek positions a fresh cursor at the first entry whose key is >= probe
// under cmp (pass BytewiseCompare for plain key seeks). After Seek, Valid
// reports whether such an entry exists.
func (t *BTree) Seek(probe []byte, cmp Compare) (*Cursor, error) {
	c := &Cursor{}
	if err := t.SeekCursor(c, probe, cmp); err != nil {
		return nil, err
	}
	return c, nil
}

// SeekCursor is Seek into a caller-owned cursor: c is repositioned at the
// first entry whose key is >= probe under cmp, reusing its leaf arena so
// repeated seeks (the OIF's id-directed list probes) allocate nothing
// once the arena has grown to the largest leaf visited. c may be the
// zero value or a cursor previously used on any tree.
func (t *BTree) SeekCursor(c *Cursor, probe []byte, cmp Compare) error {
	leaf, err := t.descend(probe, cmp)
	if err != nil {
		return err
	}
	c.t = t
	idx, _ := searchNode(leaf, probe, cmp)
	c.loadLeaf(leaf)
	if err := t.pool.Put(leaf.id); err != nil {
		return err
	}
	c.idx = idx
	return c.settle()
}

// First positions a fresh cursor at the smallest entry.
func (t *BTree) First() (*Cursor, error) {
	id := t.root
	for {
		data, err := t.pool.Get(id)
		if err != nil {
			return nil, err
		}
		n := node{id: id, data: data}
		if n.isLeaf() {
			c := &Cursor{t: t}
			c.loadLeaf(n)
			if err := t.pool.Put(id); err != nil {
				return nil, err
			}
			c.idx = 0
			return c, c.settle()
		}
		next := n.aux()
		if err := t.pool.Put(id); err != nil {
			return nil, err
		}
		id = next
	}
}

// loadLeaf copies the pinned leaf's entries into the cursor's arena. The
// arena is sized once per leaf (a single grow when the leaf is larger
// than any seen before), then filled with appends that cannot
// reallocate, keeping the recorded subslices valid.
func (c *Cursor) loadLeaf(n node) {
	num := n.numCells()
	total := 0
	for i := 0; i < num; i++ {
		total += len(n.key(i)) + len(n.value(i))
	}
	if cap(c.arena) < total {
		c.arena = make([]byte, 0, total)
	}
	arena := c.arena[:0]
	c.keys = c.keys[:0]
	c.vals = c.vals[:0]
	for i := 0; i < num; i++ {
		k, v := n.key(i), n.value(i)
		start := len(arena)
		arena = append(arena, k...)
		arena = append(arena, v...)
		kEnd := start + len(k)
		c.keys = append(c.keys, arena[start:kEnd:kEnd])
		c.vals = append(c.vals, arena[kEnd:len(arena):len(arena)])
	}
	c.arena = arena
	c.next = n.aux()
	c.idx = 0
	c.valid = num > 0
	c.exhaust = false
}

// settle advances across empty or exhausted leaves until the cursor rests
// on an entry or runs off the end of the tree.
func (c *Cursor) settle() error {
	for c.idx >= len(c.keys) {
		if c.next == storage.InvalidPageID {
			c.valid = false
			c.exhaust = true
			return nil
		}
		data, err := c.t.pool.Get(c.next)
		if err != nil {
			return err
		}
		n := node{id: c.next, data: data}
		c.loadLeaf(n)
		if err := c.t.pool.Put(n.id); err != nil {
			return err
		}
	}
	c.valid = true
	return nil
}

// Valid reports whether the cursor rests on an entry.
func (c *Cursor) Valid() bool { return c.valid && !c.exhaust }

// Key returns the current entry's key. The slice is owned by the cursor
// until the next Next/Seek.
func (c *Cursor) Key() []byte { return c.keys[c.idx] }

// Value returns the current entry's value, owned like Key.
func (c *Cursor) Value() []byte { return c.vals[c.idx] }

// Next advances to the following entry in key order.
func (c *Cursor) Next() error {
	if !c.Valid() {
		return nil
	}
	c.idx++
	return c.settle()
}
