package btree

import (
	"repro/internal/storage"
)

// Cursor iterates leaf entries in key order. On arrival at each leaf the
// cursor copies the leaf's entries out of the buffer pool, so it holds no
// pins while the caller processes entries (the pool stays free to evict —
// important under the paper's minimal 32 KB cache). Each leaf is therefore
// charged to the access statistics exactly once per visit.
//
// A cursor is invalidated by writes to the tree; the indexes in this
// repository never interleave writes with scans.
type Cursor struct {
	t       *BTree
	keys    [][]byte
	vals    [][]byte
	idx     int
	next    storage.PageID
	valid   bool
	exhaust bool
}

// Seek positions the cursor at the first entry whose key is >= probe under
// cmp (pass BytewiseCompare for plain key seeks). After Seek, Valid
// reports whether such an entry exists.
func (t *BTree) Seek(probe []byte, cmp Compare) (*Cursor, error) {
	leaf, err := t.descend(probe, cmp)
	if err != nil {
		return nil, err
	}
	c := &Cursor{t: t}
	idx, _ := searchNode(leaf, probe, cmp)
	c.loadLeaf(leaf)
	t.pool.Put(leaf.id)
	c.idx = idx
	return c, c.settle()
}

// First positions a cursor at the smallest entry.
func (t *BTree) First() (*Cursor, error) {
	id := t.root
	for {
		data, err := t.pool.Get(id)
		if err != nil {
			return nil, err
		}
		n := node{id: id, data: data}
		if n.isLeaf() {
			c := &Cursor{t: t}
			c.loadLeaf(n)
			t.pool.Put(id)
			c.idx = 0
			return c, c.settle()
		}
		next := n.aux()
		t.pool.Put(id)
		id = next
	}
}

// loadLeaf copies the pinned leaf's entries into the cursor.
func (c *Cursor) loadLeaf(n node) {
	num := n.numCells()
	c.keys = c.keys[:0]
	c.vals = c.vals[:0]
	for i := 0; i < num; i++ {
		c.keys = append(c.keys, append([]byte(nil), n.key(i)...))
		c.vals = append(c.vals, append([]byte(nil), n.value(i)...))
	}
	c.next = n.aux()
	c.idx = 0
	c.valid = num > 0
	c.exhaust = false
}

// settle advances across empty or exhausted leaves until the cursor rests
// on an entry or runs off the end of the tree.
func (c *Cursor) settle() error {
	for c.idx >= len(c.keys) {
		if c.next == storage.InvalidPageID {
			c.valid = false
			c.exhaust = true
			return nil
		}
		data, err := c.t.pool.Get(c.next)
		if err != nil {
			return err
		}
		n := node{id: c.next, data: data}
		c.loadLeaf(n)
		c.t.pool.Put(n.id)
	}
	c.valid = true
	return nil
}

// Valid reports whether the cursor rests on an entry.
func (c *Cursor) Valid() bool { return c.valid && !c.exhaust }

// Key returns the current entry's key. The slice is owned by the cursor
// until the next Next/Seek.
func (c *Cursor) Key() []byte { return c.keys[c.idx] }

// Value returns the current entry's value, owned like Key.
func (c *Cursor) Value() []byte { return c.vals[c.idx] }

// Next advances to the following entry in key order.
func (c *Cursor) Next() error {
	if !c.Valid() {
		return nil
	}
	c.idx++
	return c.settle()
}
