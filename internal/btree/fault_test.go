package btree

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/storage"
)

// TestInsertSurvivesFaultsWithoutPanic drives the tree against a pager
// that dies at every possible operation count and verifies the error is
// surfaced cleanly. (After a mid-operation fault the tree may be
// inconsistent — a real system would recover from the log — but it must
// never panic and must keep returning the injected error.)
func TestInsertSurvivesFaultsWithoutPanic(t *testing.T) {
	// First, count the fault-free operation total.
	probe := storage.NewFaultyPager(storage.NewMemPager(256), 0)
	pool := storage.NewBufferPool(probe, 4)
	tree, err := New(pool)
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	for i := 0; i < n; i++ {
		if err := tree.Insert(u32key(uint32(i)), []byte("value")); err != nil {
			t.Fatal(err)
		}
	}
	total := probe.Ops()
	if total < 50 {
		t.Fatalf("suspiciously few operations: %d", total)
	}

	for failAt := int64(1); failAt <= total; failAt += 7 {
		faulty := storage.NewFaultyPager(storage.NewMemPager(256), failAt)
		pool := storage.NewBufferPool(faulty, 4)
		tree, err := New(pool)
		if err != nil {
			if !errors.Is(err, storage.ErrInjected) {
				t.Fatalf("failAt=%d: New returned %v", failAt, err)
			}
			continue
		}
		sawErr := false
		for i := 0; i < n; i++ {
			if err := tree.Insert(u32key(uint32(i)), []byte("value")); err != nil {
				if !errors.Is(err, storage.ErrInjected) {
					t.Fatalf("failAt=%d: Insert returned %v", failAt, err)
				}
				sawErr = true
				break
			}
		}
		if !sawErr && faulty.Tripped() {
			t.Fatalf("failAt=%d: fault fired but no error surfaced", failAt)
		}
	}
}

// TestReadFaultsSurfaceFromQueries verifies Get/Seek/Next propagate read
// faults.
func TestReadFaultsSurfaceFromQueries(t *testing.T) {
	mem := storage.NewMemPager(256)
	build := storage.NewBufferPool(mem, 256)
	tree, err := New(build)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := tree.Insert(u32key(uint32(i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := build.Flush(); err != nil {
		t.Fatal(err)
	}
	// Every read op from a cold pool must eventually fail cleanly.
	for failAt := int64(1); failAt <= 12; failAt++ {
		faulty := storage.NewFaultyPager(mem, failAt)
		pool := storage.NewBufferPool(faulty, 4)
		tr := &BTree{pool: pool, root: tree.root}
		_, err := tr.Get(u32key(777))
		if err != nil && !errors.Is(err, storage.ErrInjected) {
			t.Fatalf("failAt=%d: Get returned %v", failAt, err)
		}
		c, err := tr.Seek(u32key(0), BytewiseCompare)
		if err == nil {
			for c.Valid() {
				if err = c.Next(); err != nil {
					break
				}
			}
		}
		if err != nil && !errors.Is(err, storage.ErrInjected) {
			t.Fatalf("failAt=%d: scan returned %v", failAt, err)
		}
	}
}

// TestBulkLoadFaults verifies bulk loading propagates faults.
func TestBulkLoadFaults(t *testing.T) {
	for failAt := int64(1); failAt <= 40; failAt += 3 {
		faulty := storage.NewFaultyPager(storage.NewMemPager(256), failAt)
		pool := storage.NewBufferPool(faulty, 8)
		i := 0
		_, err := BulkLoad(pool, func() ([]byte, []byte, bool, error) {
			if i == 500 {
				return nil, nil, false, nil
			}
			k := u32key(uint32(i))
			i++
			return k, []byte("v"), true, nil
		}, 90)
		if err == nil {
			if faulty.Tripped() {
				t.Fatalf("failAt=%d: fault fired but BulkLoad succeeded", failAt)
			}
			continue
		}
		if !errors.Is(err, storage.ErrInjected) {
			t.Fatalf("failAt=%d: BulkLoad returned %v", failAt, err)
		}
	}
}

// TestBulkLoadSourceError verifies an error from the entry source aborts
// the load with that error.
func TestBulkLoadSourceError(t *testing.T) {
	pool := storage.NewBufferPool(storage.NewMemPager(256), 8)
	boom := fmt.Errorf("source exploded")
	i := 0
	_, err := BulkLoad(pool, func() ([]byte, []byte, bool, error) {
		if i == 3 {
			return nil, nil, false, boom
		}
		k := u32key(uint32(i))
		i++
		return k, []byte("v"), true, nil
	}, 90)
	if !errors.Is(err, boom) {
		t.Fatalf("BulkLoad returned %v, want source error", err)
	}
}
