package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/storage"
)

func newTestTree(t testing.TB, pageSize, poolPages int) *BTree {
	t.Helper()
	pool := storage.NewBufferPool(storage.NewMemPager(pageSize), poolPages)
	tree, err := New(pool)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tree
}

func TestInsertGetSmall(t *testing.T) {
	tree := newTestTree(t, 256, 64)
	pairs := map[string]string{
		"apple": "1", "banana": "2", "cherry": "3", "date": "4",
	}
	for k, v := range pairs {
		if err := tree.Insert([]byte(k), []byte(v)); err != nil {
			t.Fatalf("Insert(%s): %v", k, err)
		}
	}
	for k, v := range pairs {
		got, err := tree.Get([]byte(k))
		if err != nil {
			t.Fatalf("Get(%s): %v", k, err)
		}
		if string(got) != v {
			t.Errorf("Get(%s) = %s, want %s", k, got, v)
		}
	}
	if _, err := tree.Get([]byte("missing")); err != ErrNotFound {
		t.Errorf("Get(missing) = %v, want ErrNotFound", err)
	}
}

func TestInsertUpsert(t *testing.T) {
	tree := newTestTree(t, 256, 64)
	if err := tree.Insert([]byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert([]byte("k"), []byte("v2-longer")); err != nil {
		t.Fatal(err)
	}
	got, err := tree.Get([]byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2-longer" {
		t.Fatalf("after upsert Get = %q", got)
	}
	n, err := tree.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("Len = %d after upsert, want 1", n)
	}
}

func u32key(v uint32) []byte {
	b := make([]byte, 4)
	binary.BigEndian.PutUint32(b, v)
	return b
}

func TestManyInsertsSplitAndOrder(t *testing.T) {
	tree := newTestTree(t, 256, 128)
	const n = 5000
	perm := rand.New(rand.NewSource(3)).Perm(n)
	for _, i := range perm {
		if err := tree.Insert(u32key(uint32(i)), []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
	}
	h, err := tree.Height()
	if err != nil {
		t.Fatal(err)
	}
	if h < 3 {
		t.Fatalf("height %d, expected a multi-level tree", h)
	}
	// Full ordered scan must yield 0..n-1.
	c, err := tree.First()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if !c.Valid() {
			t.Fatalf("cursor exhausted at %d", i)
		}
		if got := binary.BigEndian.Uint32(c.Key()); got != uint32(i) {
			t.Fatalf("scan position %d has key %d", i, got)
		}
		if want := fmt.Sprintf("val-%d", i); string(c.Value()) != want {
			t.Fatalf("scan position %d has value %q, want %q", i, c.Value(), want)
		}
		if err := c.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if c.Valid() {
		t.Fatal("cursor valid past the end")
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestSeekSemantics(t *testing.T) {
	tree := newTestTree(t, 256, 64)
	for _, v := range []uint32{10, 20, 30, 40, 50} {
		if err := tree.Insert(u32key(v), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		probe uint32
		want  uint32
		valid bool
	}{
		{0, 10, true}, {10, 10, true}, {11, 20, true},
		{30, 30, true}, {31, 40, true}, {50, 50, true}, {51, 0, false},
	}
	for _, tc := range cases {
		c, err := tree.Seek(u32key(tc.probe), BytewiseCompare)
		if err != nil {
			t.Fatalf("Seek(%d): %v", tc.probe, err)
		}
		if c.Valid() != tc.valid {
			t.Fatalf("Seek(%d).Valid = %v, want %v", tc.probe, c.Valid(), tc.valid)
		}
		if tc.valid {
			if got := binary.BigEndian.Uint32(c.Key()); got != tc.want {
				t.Errorf("Seek(%d) landed on %d, want %d", tc.probe, got, tc.want)
			}
		}
	}
}

// TestSeekCustomComparator exercises the OIF-style probe: keys are
// (group uint32 | tag bytes | id uint32) and the probe compares only
// (group, id), ignoring the variable-length tag. Within a group, tag order
// and id order must coincide — as they do in the OIF.
func TestSeekCustomComparator(t *testing.T) {
	tree := newTestTree(t, 512, 64)
	type rec struct {
		group uint32
		tag   string
		id    uint32
	}
	var recs []rec
	for g := uint32(0); g < 5; g++ {
		for i := uint32(0); i < 50; i++ {
			// tag grows with id so both orders agree
			recs = append(recs, rec{g, fmt.Sprintf("tag-%04d", i*3), i*3 + 1})
		}
	}
	mk := func(r rec) []byte {
		k := make([]byte, 0, 4+len(r.tag)+4)
		k = binary.BigEndian.AppendUint32(k, r.group)
		k = append(k, r.tag...)
		k = binary.BigEndian.AppendUint32(k, r.id)
		return k
	}
	for _, r := range recs {
		if err := tree.Insert(mk(r), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	idCmp := func(probe, key []byte) int {
		if c := bytes.Compare(probe[:4], key[:4]); c != 0 {
			return c
		}
		pid := binary.BigEndian.Uint32(probe[4:])
		kid := binary.BigEndian.Uint32(key[len(key)-4:])
		switch {
		case pid < kid:
			return -1
		case pid > kid:
			return 1
		}
		return 0
	}
	probe := func(g, id uint32) []byte {
		b := make([]byte, 8)
		binary.BigEndian.PutUint32(b, g)
		binary.BigEndian.PutUint32(b[4:], id)
		return b
	}
	// Seek group 2, id 50 -> first key in group 2 with id >= 50 is id 52
	// (ids are 1, 4, 7, ... 3i+1).
	c, err := tree.Seek(probe(2, 50), idCmp)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Valid() {
		t.Fatal("seek ran off the end")
	}
	gotGroup := binary.BigEndian.Uint32(c.Key()[:4])
	gotID := binary.BigEndian.Uint32(c.Key()[len(c.Key())-4:])
	if gotGroup != 2 || gotID != 52 {
		t.Fatalf("landed on group %d id %d, want group 2 id 52", gotGroup, gotID)
	}
	// Seeking past a group's last id lands on the next group's first key.
	c, err = tree.Seek(probe(2, 1000), idCmp)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Valid() {
		t.Fatal("seek ran off the end")
	}
	if g := binary.BigEndian.Uint32(c.Key()[:4]); g != 3 {
		t.Fatalf("landed on group %d, want 3", g)
	}
}

func TestDelete(t *testing.T) {
	tree := newTestTree(t, 256, 64)
	for i := uint32(0); i < 500; i++ {
		if err := tree.Insert(u32key(i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint32(0); i < 500; i += 2 {
		ok, err := tree.Delete(u32key(i))
		if err != nil || !ok {
			t.Fatalf("Delete(%d) = %v, %v", i, ok, err)
		}
	}
	ok, err := tree.Delete(u32key(2))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("double delete reported success")
	}
	n, err := tree.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n != 250 {
		t.Fatalf("Len = %d after deletes, want 250", n)
	}
	c, err := tree.First()
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(1); i < 500; i += 2 {
		if !c.Valid() {
			t.Fatalf("cursor exhausted at %d", i)
		}
		if got := binary.BigEndian.Uint32(c.Key()); got != i {
			t.Fatalf("after deletes scan found %d, want %d", got, i)
		}
		if err := c.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCursorSkipsEmptiedLeaves(t *testing.T) {
	tree := newTestTree(t, 256, 64)
	for i := uint32(0); i < 400; i++ {
		if err := tree.Insert(u32key(i), bytes.Repeat([]byte("x"), 20)); err != nil {
			t.Fatal(err)
		}
	}
	// Empty out a middle run of keys, which empties whole leaves.
	for i := uint32(100); i < 300; i++ {
		if _, err := tree.Delete(u32key(i)); err != nil {
			t.Fatal(err)
		}
	}
	c, err := tree.Seek(u32key(100), BytewiseCompare)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Valid() {
		t.Fatal("cursor invalid")
	}
	if got := binary.BigEndian.Uint32(c.Key()); got != 300 {
		t.Fatalf("seek over emptied leaves landed on %d, want 300", got)
	}
}

func TestRandomizedAgainstSortedMap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tree := newTestTree(t, 512, 256)
	shadow := make(map[string]string)
	for step := 0; step < 20000; step++ {
		k := fmt.Sprintf("key-%06d", rng.Intn(5000))
		switch rng.Intn(4) {
		case 0, 1: // insert/update
			v := fmt.Sprintf("val-%d", step)
			if err := tree.Insert([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
			shadow[k] = v
		case 2: // delete
			ok, err := tree.Delete([]byte(k))
			if err != nil {
				t.Fatal(err)
			}
			_, want := shadow[k]
			if ok != want {
				t.Fatalf("step %d: Delete(%s) = %v, want %v", step, k, ok, want)
			}
			delete(shadow, k)
		default: // lookup
			got, err := tree.Get([]byte(k))
			want, present := shadow[k]
			if present {
				if err != nil || string(got) != want {
					t.Fatalf("step %d: Get(%s) = %q, %v; want %q", step, k, got, err, want)
				}
			} else if err != ErrNotFound {
				t.Fatalf("step %d: Get(%s) err = %v, want ErrNotFound", step, k, err)
			}
		}
	}
	// Final full comparison via ordered scan.
	keys := make([]string, 0, len(shadow))
	for k := range shadow {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	c, err := tree.First()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if !c.Valid() {
			t.Fatalf("cursor exhausted before %s", k)
		}
		if string(c.Key()) != k {
			t.Fatalf("scan found %q, want %q", c.Key(), k)
		}
		if string(c.Value()) != shadow[k] {
			t.Fatalf("scan value for %s = %q, want %q", k, c.Value(), shadow[k])
		}
		if err := c.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if c.Valid() {
		t.Fatalf("extra key after scan: %q", c.Key())
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestVariableSizedValues(t *testing.T) {
	tree := newTestTree(t, 4096, 64)
	rng := rand.New(rand.NewSource(5))
	vals := make(map[uint32][]byte)
	for i := 0; i < 1000; i++ {
		k := uint32(i)
		v := make([]byte, rng.Intn(800))
		rng.Read(v)
		vals[k] = v
		if err := tree.Insert(u32key(k), v); err != nil {
			t.Fatal(err)
		}
	}
	for k, v := range vals {
		got, err := tree.Get(u32key(k))
		if err != nil {
			t.Fatalf("Get(%d): %v", k, err)
		}
		if !bytes.Equal(got, v) {
			t.Fatalf("Get(%d) returned %d bytes, want %d", k, len(got), len(v))
		}
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEntryTooLarge(t *testing.T) {
	tree := newTestTree(t, 256, 16)
	big := make([]byte, 300)
	if err := tree.Insert([]byte("k"), big); err == nil {
		t.Fatal("oversized insert succeeded")
	}
}

func TestOpenExisting(t *testing.T) {
	pager := storage.NewMemPager(512)
	pool := storage.NewBufferPool(pager, 64)
	tree, err := New(pool)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 2000; i++ {
		if err := tree.Insert(u32key(i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := pool.Flush(); err != nil {
		t.Fatal(err)
	}
	// Re-open through a fresh pool over the same pager.
	pool2 := storage.NewBufferPool(pager, 8)
	tree2, err := Open(pool2)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	got, err := tree2.Get(u32key(1234))
	if err != nil || string(got) != "v" {
		t.Fatalf("Get after reopen = %q, %v", got, err)
	}
	n, err := tree2.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2000 {
		t.Fatalf("Len after reopen = %d", n)
	}
}

func TestSetPool(t *testing.T) {
	pager := storage.NewMemPager(512)
	big := storage.NewBufferPool(pager, 256)
	tree, err := New(big)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 3000; i++ {
		if err := tree.Insert(u32key(i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	small := storage.NewBufferPool(pager, 8)
	if err := tree.SetPool(small); err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Get(u32key(2999)); err != nil {
		t.Fatalf("Get through small pool: %v", err)
	}
	if small.Stats().Misses == 0 {
		t.Fatal("small pool recorded no misses; SetPool did not take effect")
	}
	other := storage.NewBufferPool(storage.NewMemPager(512), 8)
	if err := tree.SetPool(other); err == nil {
		t.Fatal("SetPool with foreign pager succeeded")
	}
}

func TestPageAccessAccounting(t *testing.T) {
	// A point Get on a cold pool must touch exactly height pages
	// (plus the meta page is never read after New).
	pager := storage.NewMemPager(512)
	build := storage.NewBufferPool(pager, 256)
	tree, err := New(build)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 5000; i++ {
		if err := tree.Insert(u32key(i), bytes.Repeat([]byte("v"), 16)); err != nil {
			t.Fatal(err)
		}
	}
	h, err := tree.Height()
	if err != nil {
		t.Fatal(err)
	}
	small := storage.NewBufferPool(pager, 8)
	if err := tree.SetPool(small); err != nil {
		t.Fatal(err)
	}
	small.ResetStats()
	if _, err := tree.Get(u32key(2500)); err != nil {
		t.Fatal(err)
	}
	if got := small.Stats().Misses; got != int64(h) {
		t.Fatalf("cold Get cost %d page accesses, want height %d", got, h)
	}
}

func BenchmarkInsertSequential(b *testing.B) {
	tree := newTestTree(b, 4096, 1024)
	val := bytes.Repeat([]byte("v"), 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tree.Insert(u32key(uint32(i)), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetWarm(b *testing.B) {
	tree := newTestTree(b, 4096, 1024)
	val := bytes.Repeat([]byte("v"), 64)
	const n = 100000
	for i := 0; i < n; i++ {
		if err := tree.Insert(u32key(uint32(i)), val); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.Get(u32key(uint32(i % n))); err != nil {
			b.Fatal(err)
		}
	}
}
