package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"

	"repro/internal/storage"
)

func bulkFromPairs(t testing.TB, pageSize, poolPages int, keys, vals [][]byte) *BTree {
	t.Helper()
	pool := storage.NewBufferPool(storage.NewMemPager(pageSize), poolPages)
	i := 0
	tree, err := BulkLoad(pool, func() ([]byte, []byte, bool, error) {
		if i == len(keys) {
			return nil, nil, false, nil
		}
		k, v := keys[i], vals[i]
		i++
		return k, v, true, nil
	}, 90)
	if err != nil {
		t.Fatalf("BulkLoad: %v", err)
	}
	return tree
}

func TestBulkLoadMatchesInserts(t *testing.T) {
	const n = 8000
	keys := make([][]byte, n)
	vals := make([][]byte, n)
	for i := 0; i < n; i++ {
		keys[i] = u32key(uint32(i * 3))
		vals[i] = []byte(fmt.Sprintf("value-%d", i))
	}
	tree := bulkFromPairs(t, 512, 128, keys, vals)
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	ln, err := tree.Len()
	if err != nil {
		t.Fatal(err)
	}
	if ln != n {
		t.Fatalf("Len = %d, want %d", ln, n)
	}
	for i := 0; i < n; i += 97 {
		got, err := tree.Get(keys[i])
		if err != nil {
			t.Fatalf("Get(%d): %v", i, err)
		}
		if !bytes.Equal(got, vals[i]) {
			t.Fatalf("Get(%d) = %q", i, got)
		}
	}
	// Ordered scan returns every key in order.
	c, err := tree.First()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if !c.Valid() {
			t.Fatalf("cursor exhausted at %d", i)
		}
		if !bytes.Equal(c.Key(), keys[i]) {
			t.Fatalf("scan at %d has wrong key", i)
		}
		if err := c.Next(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBulkLoadEmpty(t *testing.T) {
	tree := bulkFromPairs(t, 256, 16, nil, nil)
	if _, err := tree.Get([]byte("x")); err != ErrNotFound {
		t.Fatalf("Get on empty bulk tree: %v", err)
	}
	c, err := tree.First()
	if err != nil {
		t.Fatal(err)
	}
	if c.Valid() {
		t.Fatal("cursor valid on empty tree")
	}
}

func TestBulkLoadSingle(t *testing.T) {
	tree := bulkFromPairs(t, 256, 16, [][]byte{[]byte("k")}, [][]byte{[]byte("v")})
	got, err := tree.Get([]byte("k"))
	if err != nil || string(got) != "v" {
		t.Fatalf("Get = %q, %v", got, err)
	}
}

func TestBulkLoadRejectsUnsortedKeys(t *testing.T) {
	pool := storage.NewBufferPool(storage.NewMemPager(256), 16)
	seq := [][]byte{[]byte("b"), []byte("a")}
	i := 0
	_, err := BulkLoad(pool, func() ([]byte, []byte, bool, error) {
		if i == len(seq) {
			return nil, nil, false, nil
		}
		k := seq[i]
		i++
		return k, []byte("v"), true, nil
	}, 90)
	if err == nil {
		t.Fatal("unsorted bulk load succeeded")
	}
}

func TestBulkLoadRejectsDuplicates(t *testing.T) {
	pool := storage.NewBufferPool(storage.NewMemPager(256), 16)
	i := 0
	_, err := BulkLoad(pool, func() ([]byte, []byte, bool, error) {
		if i == 2 {
			return nil, nil, false, nil
		}
		i++
		return []byte("same"), []byte("v"), true, nil
	}, 90)
	if err == nil {
		t.Fatal("duplicate bulk load succeeded")
	}
}

// TestBulkLoadLeafLocality is the reason bulk load exists: consecutive
// leaves must occupy consecutive pages, so a range scan after one seek is
// charged sequential misses, not random ones.
func TestBulkLoadLeafLocality(t *testing.T) {
	const n = 20000
	keys := make([][]byte, n)
	vals := make([][]byte, n)
	for i := 0; i < n; i++ {
		keys[i] = u32key(uint32(i))
		vals[i] = bytes.Repeat([]byte("v"), 16)
	}
	pager := storage.NewMemPager(4096)
	pool := storage.NewBufferPool(pager, 1024)
	i := 0
	tree, err := BulkLoad(pool, func() ([]byte, []byte, bool, error) {
		if i == n {
			return nil, nil, false, nil
		}
		k, v := keys[i], vals[i]
		i++
		return k, v, true, nil
	}, 90)
	if err != nil {
		t.Fatal(err)
	}
	small := storage.NewBufferPool(pager, 8)
	if err := tree.SetPool(small); err != nil {
		t.Fatal(err)
	}
	// Scan a 2000-entry range: after positioning, nearly all leaf loads
	// must be sequential.
	c, err := tree.Seek(u32key(5000), BytewiseCompare)
	if err != nil {
		t.Fatal(err)
	}
	small.ResetStats()
	for j := 0; j < 2000 && c.Valid(); j++ {
		if err := c.Next(); err != nil {
			t.Fatal(err)
		}
	}
	st := small.Stats()
	if st.Misses < 5 {
		t.Fatalf("scan touched only %d pages; expected a real range", st.Misses)
	}
	if st.SeqMisses < st.Misses-2 {
		t.Fatalf("leaf locality broken: %v (want almost all sequential)", st)
	}
}

func TestBulkLoadThenInsert(t *testing.T) {
	// Bulk-loaded trees must accept regular inserts afterwards.
	const n = 3000
	keys := make([][]byte, n)
	vals := make([][]byte, n)
	for i := 0; i < n; i++ {
		keys[i] = u32key(uint32(i * 2)) // even keys
		vals[i] = []byte("v")
	}
	tree := bulkFromPairs(t, 512, 256, keys, vals)
	for i := 0; i < 500; i++ {
		if err := tree.Insert(u32key(uint32(i*2+1)), []byte("odd")); err != nil {
			t.Fatalf("Insert after bulk: %v", err)
		}
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	ln, err := tree.Len()
	if err != nil {
		t.Fatal(err)
	}
	if ln != n+500 {
		t.Fatalf("Len = %d, want %d", ln, n+500)
	}
	got, err := tree.Get(u32key(999))
	if err != nil || string(got) != "odd" {
		t.Fatalf("Get(999) = %q, %v", got, err)
	}
}

func TestBulkLoadFillPercentValidation(t *testing.T) {
	pool := storage.NewBufferPool(storage.NewMemPager(256), 16)
	if _, err := BulkLoad(pool, func() ([]byte, []byte, bool, error) {
		return nil, nil, false, nil
	}, 5); err == nil {
		t.Fatal("fill percent 5 accepted")
	}
}

func TestBulkLoadCustomComparatorSeeks(t *testing.T) {
	// Bulk-loaded trees must honour probe comparators exactly like
	// insert-built ones (separators are first keys, not copies of probes).
	const n = 5000
	keys := make([][]byte, n)
	vals := make([][]byte, n)
	for i := 0; i < n; i++ {
		keys[i] = u32key(uint32(i * 10))
		vals[i] = []byte("v")
	}
	tree := bulkFromPairs(t, 512, 64, keys, vals)
	cmp := func(probe, key []byte) int {
		p := binary.BigEndian.Uint32(probe)
		k := binary.BigEndian.Uint32(key)
		switch {
		case p < k:
			return -1
		case p > k:
			return 1
		}
		return 0
	}
	c, err := tree.Seek(u32key(25), cmp)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Valid() || binary.BigEndian.Uint32(c.Key()) != 30 {
		t.Fatalf("custom seek landed wrong: valid=%v", c.Valid())
	}
}
