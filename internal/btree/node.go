package btree

import (
	"encoding/binary"
	"fmt"

	"repro/internal/storage"
)

// Page layout
//
// Every node occupies exactly one page:
//
//	offset 0      type byte (leaf or internal)
//	offset 1..3   cell count (uint16)
//	offset 3..5   freeStart (uint16): lowest byte used by cell data;
//	              cells grow downward from the end of the page
//	offset 5..13  leaf: next-leaf page id; internal: leftmost child id
//	offset 13..   slot array: cell count × uint16 offsets, kept in key order
//
// Leaf cell:     keyLen uint16 | valLen uint16 | key | value
// Internal cell: keyLen uint16 | child int64   | key
//
// An internal node with cells (k_0,c_0)…(k_n-1,c_n-1) and leftmost child L
// routes key ranges: L holds keys < k_0; c_i holds keys in [k_i, k_i+1).
const (
	pageTypeLeaf     = 1
	pageTypeInternal = 2

	offType      = 0
	offNumCells  = 1
	offFreeStart = 3
	offAux       = 5 // next leaf / leftmost child
	headerSize   = 13

	slotSize = 2

	leafCellHeader     = 4
	internalCellHeader = 10
)

// node wraps a pinned page buffer with typed accessors. It performs no
// pinning itself; the tree manages Get/Put around node lifetimes.
type node struct {
	id   storage.PageID
	data []byte
}

func (n node) typ() byte      { return n.data[offType] }
func (n node) isLeaf() bool   { return n.data[offType] == pageTypeLeaf }
func (n node) numCells() int  { return int(binary.BigEndian.Uint16(n.data[offNumCells:])) }
func (n node) freeStart() int { return int(binary.BigEndian.Uint16(n.data[offFreeStart:])) }

func (n node) setNumCells(v int) { binary.BigEndian.PutUint16(n.data[offNumCells:], uint16(v)) }
func (n node) setFreeStart(v int) {
	binary.BigEndian.PutUint16(n.data[offFreeStart:], uint16(v))
}

func (n node) aux() storage.PageID {
	return storage.PageID(int64(binary.BigEndian.Uint64(n.data[offAux:])))
}

func (n node) setAux(id storage.PageID) {
	binary.BigEndian.PutUint64(n.data[offAux:], uint64(int64(id)))
}

func initNode(data []byte, typ byte) {
	for i := range data[:headerSize] {
		data[i] = 0
	}
	data[offType] = typ
	binary.BigEndian.PutUint16(data[offNumCells:], 0)
	binary.BigEndian.PutUint16(data[offFreeStart:], uint16(len(data)))
	n := node{data: data}
	n.setAux(storage.InvalidPageID)
}

func (n node) slot(i int) int {
	return int(binary.BigEndian.Uint16(n.data[headerSize+i*slotSize:]))
}

func (n node) setSlot(i, off int) {
	binary.BigEndian.PutUint16(n.data[headerSize+i*slotSize:], uint16(off))
}

// freeSpace is the contiguous gap between the slot array and cell data.
func (n node) freeSpace() int {
	return n.freeStart() - (headerSize + n.numCells()*slotSize)
}

// key returns the key of cell i (aliases page memory).
func (n node) key(i int) []byte {
	off := n.slot(i)
	keyLen := int(binary.BigEndian.Uint16(n.data[off:]))
	var start int
	if n.isLeaf() {
		start = off + leafCellHeader
	} else {
		start = off + internalCellHeader
	}
	return n.data[start : start+keyLen]
}

// value returns the value of leaf cell i (aliases page memory).
func (n node) value(i int) []byte {
	off := n.slot(i)
	keyLen := int(binary.BigEndian.Uint16(n.data[off:]))
	valLen := int(binary.BigEndian.Uint16(n.data[off+2:]))
	start := off + leafCellHeader + keyLen
	return n.data[start : start+valLen]
}

// child returns the child page id of internal cell i.
func (n node) child(i int) storage.PageID {
	off := n.slot(i)
	return storage.PageID(int64(binary.BigEndian.Uint64(n.data[off+2:])))
}

func (n node) setChild(i int, id storage.PageID) {
	off := n.slot(i)
	binary.BigEndian.PutUint64(n.data[off+2:], uint64(int64(id)))
}

// cellSize returns the byte footprint of cell i.
func (n node) cellSize(i int) int {
	off := n.slot(i)
	keyLen := int(binary.BigEndian.Uint16(n.data[off:]))
	if n.isLeaf() {
		valLen := int(binary.BigEndian.Uint16(n.data[off+2:]))
		return leafCellHeader + keyLen + valLen
	}
	return internalCellHeader + keyLen
}

// leafCellSize returns the footprint a (key, value) cell would need.
func leafCellSize(key, value []byte) int { return leafCellHeader + len(key) + len(value) }

// internalCellSize returns the footprint a separator cell would need.
func internalCellSize(key []byte) int { return internalCellHeader + len(key) }

// insertLeafCell inserts (key, value) as cell index i, shifting slots.
// The caller must have verified space (after compaction if needed).
func (n node) insertLeafCell(i int, key, value []byte) {
	size := leafCellSize(key, value)
	off := n.freeStart() - size
	binary.BigEndian.PutUint16(n.data[off:], uint16(len(key)))
	binary.BigEndian.PutUint16(n.data[off+2:], uint16(len(value)))
	copy(n.data[off+leafCellHeader:], key)
	copy(n.data[off+leafCellHeader+len(key):], value)
	n.setFreeStart(off)
	n.openSlot(i, off)
}

// insertInternalCell inserts (key, child) as cell index i.
func (n node) insertInternalCell(i int, key []byte, child storage.PageID) {
	size := internalCellSize(key)
	off := n.freeStart() - size
	binary.BigEndian.PutUint16(n.data[off:], uint16(len(key)))
	binary.BigEndian.PutUint64(n.data[off+2:], uint64(int64(child)))
	copy(n.data[off+internalCellHeader:], key)
	n.setFreeStart(off)
	n.openSlot(i, off)
}

// openSlot makes room at slot index i pointing to cell offset off.
func (n node) openSlot(i, off int) {
	num := n.numCells()
	base := headerSize + i*slotSize
	copy(n.data[base+slotSize:headerSize+(num+1)*slotSize], n.data[base:headerSize+num*slotSize])
	n.setSlot(i, off)
	n.setNumCells(num + 1)
}

// removeCell drops slot i. Cell bytes are leaked until compact().
func (n node) removeCell(i int) {
	num := n.numCells()
	base := headerSize + i*slotSize
	copy(n.data[base:], n.data[base+slotSize:headerSize+num*slotSize])
	n.setNumCells(num - 1)
}

// compact rewrites the page so cell data is contiguous again, reclaiming
// space leaked by removeCell or in-place updates.
func (n node) compact() {
	num := n.numCells()
	tmp := make([]byte, len(n.data))
	copy(tmp, n.data)
	src := node{id: n.id, data: tmp}
	n.setFreeStart(len(n.data))
	for i := 0; i < num; i++ {
		size := src.cellSize(i)
		off := n.freeStart() - size
		copy(n.data[off:off+size], src.data[src.slot(i):src.slot(i)+size])
		n.setSlot(i, off)
		n.setFreeStart(off)
	}
}

// validateNode checks structural invariants; used by tests via Validate.
func (n node) validateNode(pageSize int) error {
	if n.typ() != pageTypeLeaf && n.typ() != pageTypeInternal {
		return fmt.Errorf("btree: page %d has bad type %d", n.id, n.typ())
	}
	num := n.numCells()
	if headerSize+num*slotSize > n.freeStart() {
		return fmt.Errorf("btree: page %d slots overlap cells", n.id)
	}
	if n.freeStart() > pageSize {
		return fmt.Errorf("btree: page %d freeStart %d beyond page", n.id, n.freeStart())
	}
	for i := 0; i < num; i++ {
		off := n.slot(i)
		if off < n.freeStart() || off+n.cellSize(i) > pageSize {
			return fmt.Errorf("btree: page %d cell %d out of bounds", n.id, i)
		}
	}
	return nil
}
