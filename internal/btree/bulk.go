package btree

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/storage"
)

// BulkLoad builds a tree bottom-up from entries in strictly ascending key
// order, packing leaves left to right. Two locality properties matter for
// the OIF's cost profile and mirror a naturally grown Berkeley DB file:
//
//   - consecutive leaves occupy consecutive pages, so RoI range scans are
//     charged sequential misses after one positioning access;
//   - every internal page is written immediately after the children it
//     covers, so the final descent hop (parent -> leaf) stays within
//     storage.NearWindow pages — a short seek, not a full one.
//
// next must return one entry per call and ok=false at the end. fillPercent
// (10..100) controls node packing; 90 mirrors common bulk-load defaults
// and leaves headroom for later Inserts.
func BulkLoad(pool *storage.BufferPool, next func() (key, value []byte, ok bool, err error), fillPercent int) (*BTree, error) {
	if pool.Pager().NumPages() != 0 {
		return nil, errors.New("btree: BulkLoad requires an empty pager")
	}
	if fillPercent < 10 || fillPercent > 100 {
		return nil, fmt.Errorf("btree: fill percent %d outside 10..100", fillPercent)
	}
	metaID, meta, err := pool.Allocate()
	if err != nil {
		return nil, err
	}
	putU64(meta[offMetaMagic:], metaMagic)
	pool.MarkDirty(metaID)
	if err := pool.Put(metaID); err != nil {
		return nil, err
	}

	b := &bulkBuilder{
		pool:   pool,
		budget: (pool.PageSize() - headerSize) * fillPercent / 100,
		max:    pool.PageSize() - headerSize - 2*slotSize,
	}

	var prevKey []byte
	n := 0
	for {
		key, value, ok, err := next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if prevKey != nil && bytes.Compare(prevKey, key) >= 0 {
			return nil, fmt.Errorf("btree: bulk keys not strictly ascending at entry %d", n)
		}
		prevKey = append(prevKey[:0], key...)
		if err := b.addEntry(key, value); err != nil {
			return nil, err
		}
		n++
	}
	rootID, err := b.finish()
	if err != nil {
		return nil, err
	}
	t := &BTree{pool: pool, root: rootID}
	if err := t.writeRoot(); err != nil {
		return nil, err
	}
	if err := pool.Flush(); err != nil {
		return nil, err
	}
	return t, nil
}

// childRef points a parent level at a completed child page.
type childRef struct {
	firstKey []byte
	id       storage.PageID
}

// levelBuilder accumulates one internal node per tree level.
type levelBuilder struct {
	leftmost storage.PageID
	firstKey []byte
	cells    []childRef
	used     int
	count    int // children in the open node
}

// bulkBuilder streams entries into leaves and flushes completed nodes
// upward, emitting each parent right after its last child.
type bulkBuilder struct {
	pool   *storage.BufferPool
	budget int
	max    int

	leafID   storage.PageID
	leaf     node
	leafUsed int
	prevLeaf storage.PageID

	levels []*levelBuilder
}

func (b *bulkBuilder) addEntry(key, value []byte) error {
	sz := leafCellSize(key, value) + slotSize
	if sz > b.max {
		return fmt.Errorf("%w: entry of %d bytes", ErrKeyTooLarge, sz)
	}
	if b.leaf.data == nil {
		if err := b.openLeaf(); err != nil {
			return err
		}
	} else if b.leafUsed+sz > b.budget && b.leaf.numCells() > 0 {
		if err := b.closeLeaf(); err != nil {
			return err
		}
		if err := b.openLeaf(); err != nil {
			return err
		}
	}
	b.leaf.insertLeafCell(b.leaf.numCells(), key, value)
	b.leafUsed += sz
	return nil
}

func (b *bulkBuilder) openLeaf() error {
	id, data, err := b.pool.Allocate()
	if err != nil {
		return err
	}
	initNode(data, pageTypeLeaf)
	if b.prevLeaf != 0 {
		prev, err := b.pool.Get(b.prevLeaf)
		if err != nil {
			return err
		}
		node{id: b.prevLeaf, data: prev}.setAux(id)
		b.pool.MarkDirty(b.prevLeaf)
		if err := b.pool.Put(b.prevLeaf); err != nil {
			return err
		}
	}
	b.leafID, b.leaf, b.leafUsed = id, node{id: id, data: data}, 0
	return nil
}

func (b *bulkBuilder) closeLeaf() error {
	first := append([]byte(nil), b.leaf.key(0)...)
	id := b.leafID
	b.pool.MarkDirty(id)
	if err := b.pool.Put(id); err != nil {
		return err
	}
	b.prevLeaf = id
	b.leafID, b.leaf = 0, node{}
	return b.push(0, childRef{firstKey: first, id: id})
}

// push hands a completed child to level l's builder, flushing that level's
// node if full.
func (b *bulkBuilder) push(l int, ref childRef) error {
	for len(b.levels) <= l {
		b.levels = append(b.levels, &levelBuilder{leftmost: storage.InvalidPageID})
	}
	lv := b.levels[l]
	if lv.leftmost == storage.InvalidPageID {
		lv.leftmost = ref.id
		lv.firstKey = ref.firstKey
		lv.count = 1
		return nil
	}
	sz := internalCellSize(ref.firstKey) + slotSize
	if lv.used+sz > b.budget && len(lv.cells) > 0 {
		if err := b.flushLevel(l); err != nil {
			return err
		}
		lv.leftmost = ref.id
		lv.firstKey = ref.firstKey
		lv.count = 1
		return nil
	}
	lv.cells = append(lv.cells, ref)
	lv.used += sz
	lv.count++
	return nil
}

// flushLevel writes level l's open node and pushes its ref one level up.
func (b *bulkBuilder) flushLevel(l int) error {
	lv := b.levels[l]
	id, data, err := b.pool.Allocate()
	if err != nil {
		return err
	}
	nd := node{id: id, data: data}
	initNode(data, pageTypeInternal)
	nd.setAux(lv.leftmost)
	for i, c := range lv.cells {
		nd.insertInternalCell(i, c.firstKey, c.id)
	}
	b.pool.MarkDirty(id)
	if err := b.pool.Put(id); err != nil {
		return err
	}
	ref := childRef{firstKey: lv.firstKey, id: id}
	lv.leftmost = storage.InvalidPageID
	lv.firstKey = nil
	lv.cells = lv.cells[:0]
	lv.used = 0
	lv.count = 0
	return b.push(l+1, ref)
}

// finish closes the open leaf and collapses the level stack to a root.
func (b *bulkBuilder) finish() (storage.PageID, error) {
	if b.leaf.data != nil {
		if b.leaf.numCells() > 0 {
			if err := b.closeLeaf(); err != nil {
				return storage.InvalidPageID, err
			}
		} else {
			// Empty tree: the lone empty leaf is the root.
			id := b.leafID
			b.pool.MarkDirty(id)
			if err := b.pool.Put(id); err != nil {
				return storage.InvalidPageID, err
			}
			return id, nil
		}
	}
	if len(b.levels) == 0 {
		// No entries at all: allocate an empty leaf root.
		id, data, err := b.pool.Allocate()
		if err != nil {
			return storage.InvalidPageID, err
		}
		initNode(data, pageTypeLeaf)
		b.pool.MarkDirty(id)
		if err := b.pool.Put(id); err != nil {
			return storage.InvalidPageID, err
		}
		return id, nil
	}
	// Flush partial levels upward. A level holding a single child with no
	// siblings pending collapses into that child.
	for l := 0; ; l++ {
		lv := b.levels[l]
		atTop := l == len(b.levels)-1
		if lv.leftmost == storage.InvalidPageID {
			if atTop {
				return storage.InvalidPageID, errors.New("btree: bulk builder finished with no root")
			}
			continue
		}
		if atTop && len(lv.cells) == 0 {
			return lv.leftmost, nil // single child: it is the root
		}
		if err := b.flushLevel(l); err != nil {
			return storage.InvalidPageID, err
		}
	}
}
