// Package btree implements a disk-resident B+-tree over the storage buffer
// pool. It is the physical structure of the paper's OIF: every inverted-
// list block is one (key, value) entry, where the key is the concatenation
// item‖tag‖lastRecordID and the value is the compressed block (§3, "B-tree
// indexing for inverted lists"; §5 stores all blocks in a single B+-tree,
// as in the authors' Berkeley DB implementation). The unordered-B-tree
// ablation of §5 reuses the same structure with a different key.
//
// Keys are opaque byte strings ordered bytewise. Seeks additionally accept
// a caller-supplied comparator so the OIF can position by (item, recordID)
// probes that ignore the tag bytes — valid because within one item's key
// range tag order and record-id order coincide (that is the point of the
// OIF's global ordering).
package btree

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/storage"
)

// Compare is a probe comparator: it returns <0, 0, >0 as probe sorts
// before, equal to, or after key. It must be consistent with the bytewise
// order of the stored keys over the key subset it is used against.
type Compare func(probe, key []byte) int

// BytewiseCompare is the standard key order.
func BytewiseCompare(probe, key []byte) int { return bytes.Compare(probe, key) }

// ErrKeyTooLarge reports an entry that cannot fit in a node.
var ErrKeyTooLarge = errors.New("btree: entry too large for page size")

// ErrNotFound reports a missing key.
var ErrNotFound = errors.New("btree: key not found")

const (
	metaPageID   = storage.PageID(0)
	metaMagic    = 0x0B7EE000
	offMetaMagic = 0
	offMetaRoot  = 8
)

// BTree is a single-writer disk B+-tree. All page access flows through the
// buffer pool handed to New/Open, which is how experiments meter it.
type BTree struct {
	pool *storage.BufferPool
	root storage.PageID

	// scratch for descents, reused across operations
	path []pathElem
}

type pathElem struct {
	id  storage.PageID
	idx int // child index taken (internal nodes only)
}

// unpin releases a page pin from a defer, surfacing a pin-accounting
// error through *err unless the caller already failed with one.
func unpin(pool *storage.BufferPool, id storage.PageID, err *error) {
	if e := pool.Put(id); e != nil && *err == nil {
		*err = e
	}
}

// New creates an empty tree in a fresh pager behind pool. The pool's pager
// must be empty; page 0 becomes the tree's metadata page.
func New(pool *storage.BufferPool) (t *BTree, err error) {
	if pool.Pager().NumPages() != 0 {
		return nil, errors.New("btree: New requires an empty pager")
	}
	metaID, meta, err := pool.Allocate()
	if err != nil {
		return nil, err
	}
	defer unpin(pool, metaID, &err)
	if metaID != metaPageID {
		return nil, fmt.Errorf("btree: meta page allocated as %d", metaID)
	}
	rootID, rootData, err := pool.Allocate()
	if err != nil {
		return nil, err
	}
	initNode(rootData, pageTypeLeaf)
	pool.MarkDirty(rootID)
	if err := pool.Put(rootID); err != nil {
		return nil, err
	}

	putU64(meta[offMetaMagic:], metaMagic)
	putU64(meta[offMetaRoot:], uint64(int64(rootID)))
	pool.MarkDirty(metaID)
	return &BTree{pool: pool, root: rootID}, nil
}

// Open attaches to a tree previously created by New in pool's pager.
func Open(pool *storage.BufferPool) (t *BTree, err error) {
	if pool.Pager().NumPages() == 0 {
		return nil, errors.New("btree: Open on empty pager")
	}
	meta, err := pool.Get(metaPageID)
	if err != nil {
		return nil, err
	}
	defer unpin(pool, metaPageID, &err)
	if getU64(meta[offMetaMagic:]) != metaMagic {
		return nil, errors.New("btree: bad meta page magic")
	}
	return &BTree{pool: pool, root: storage.PageID(int64(getU64(meta[offMetaRoot:])))}, nil
}

func putU64(b []byte, v uint64) {
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
}

func getU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(b[i])
	}
	return v
}

// Pool returns the tree's buffer pool.
func (t *BTree) Pool() *storage.BufferPool { return t.pool }

// SetPool swaps the buffer pool, keeping the same underlying pager. The
// harness builds indexes with a large pool and measures queries with the
// paper's minimal 32 KB pool; the previous pool must be flushed first.
func (t *BTree) SetPool(pool *storage.BufferPool) error {
	if pool.Pager() != t.pool.Pager() {
		return errors.New("btree: SetPool requires the same backing pager")
	}
	if err := t.pool.Flush(); err != nil {
		return err
	}
	t.pool = pool
	return nil
}

// View returns a read-only handle on the same tree pages through a
// different buffer pool (which must wrap the same pager). Views enable
// concurrent readers: the pages are immutable once built, so giving each
// goroutine its own pool isolates all mutable state (cache frames, LRU,
// statistics). Writing through a view is a caller error.
func (t *BTree) View(pool *storage.BufferPool) (*BTree, error) {
	if pool.Pager() != t.pool.Pager() {
		return nil, errors.New("btree: View requires the same backing pager")
	}
	return &BTree{pool: pool, root: t.root}, nil
}

// MaxEntrySize returns the largest key+value footprint insertable for the
// pool's page size: two maximal cells must fit in a leaf so splits always
// make progress.
func (t *BTree) MaxEntrySize() int {
	usable := t.pool.PageSize() - headerSize - 2*slotSize
	return usable/2 - leafCellHeader
}

func (t *BTree) writeRoot() error {
	meta, err := t.pool.Get(metaPageID)
	if err != nil {
		return err
	}
	putU64(meta[offMetaRoot:], uint64(int64(t.root)))
	t.pool.MarkDirty(metaPageID)
	return t.pool.Put(metaPageID)
}

// searchNode returns the index of the first cell whose key is >= probe
// under cmp, and whether an exact match was found.
func searchNode(n node, probe []byte, cmp Compare) (int, bool) {
	lo, hi := 0, n.numCells()
	for lo < hi {
		mid := (lo + hi) / 2
		c := cmp(probe, n.key(mid))
		switch {
		case c == 0:
			return mid, true
		case c < 0:
			hi = mid
		default:
			lo = mid + 1
		}
	}
	return lo, false
}

// childIndex returns which child of internal node n a probe descends into:
// 0 means the leftmost child, i>0 means cell i-1's child.
func childIndex(n node, probe []byte, cmp Compare) int {
	// First cell whose key is strictly greater than probe.
	lo, hi := 0, n.numCells()
	for lo < hi {
		mid := (lo + hi) / 2
		if cmp(probe, n.key(mid)) >= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func childAt(n node, idx int) storage.PageID {
	if idx == 0 {
		return n.aux()
	}
	return n.child(idx - 1)
}

// descend walks from the root to the leaf for probe, recording the path.
// The returned leaf page is pinned; the caller must Put it.
func (t *BTree) descend(probe []byte, cmp Compare) (node, error) {
	t.path = t.path[:0]
	id := t.root
	for {
		data, err := t.pool.Get(id)
		if err != nil {
			return node{}, err
		}
		n := node{id: id, data: data}
		if n.isLeaf() {
			return n, nil
		}
		idx := childIndex(n, probe, cmp)
		next := childAt(n, idx)
		if err := t.pool.Put(id); err != nil {
			return node{}, err
		}
		t.path = append(t.path, pathElem{id: id, idx: idx})
		id = next
	}
}

// Get returns a copy of the value stored under key, or ErrNotFound.
func (t *BTree) Get(key []byte) (out []byte, err error) {
	leaf, err := t.descend(key, BytewiseCompare)
	if err != nil {
		return nil, err
	}
	defer unpin(t.pool, leaf.id, &err)
	idx, found := searchNode(leaf, key, BytewiseCompare)
	if !found {
		return nil, ErrNotFound
	}
	v := leaf.value(idx)
	out = make([]byte, len(v))
	copy(out, v)
	return out, nil
}

// Insert stores (key, value), replacing any existing value for key.
func (t *BTree) Insert(key, value []byte) error {
	if leafCellSize(key, value) > t.MaxEntrySize()+leafCellHeader {
		return fmt.Errorf("%w: key %d + value %d bytes", ErrKeyTooLarge, len(key), len(value))
	}
	leaf, err := t.descend(key, BytewiseCompare)
	if err != nil {
		return err
	}
	idx, found := searchNode(leaf, key, BytewiseCompare)
	if found {
		leaf.removeCell(idx)
	}
	need := leafCellSize(key, value) + slotSize
	if leaf.freeSpace() < need {
		leaf.compact()
	}
	if leaf.freeSpace() >= need {
		leaf.insertLeafCell(idx, key, value)
		t.pool.MarkDirty(leaf.id)
		return t.pool.Put(leaf.id)
	}
	// Split.
	err = t.splitLeaf(leaf, idx, key, value)
	if e := t.pool.Put(leaf.id); err == nil {
		err = e
	}
	return err
}

// splitLeaf splits the pinned leaf while inserting (key, value) at idx and
// propagates the new separator upward. The caller keeps ownership of the
// leaf pin.
func (t *BTree) splitLeaf(leaf node, idx int, key, value []byte) error {
	type entry struct{ k, v []byte }
	num := leaf.numCells()
	entries := make([]entry, 0, num+1)
	total := 0
	for i := 0; i < num; i++ {
		if i == idx {
			entries = append(entries, entry{key, value})
			total += leafCellSize(key, value)
		}
		k := append([]byte(nil), leaf.key(i)...)
		v := append([]byte(nil), leaf.value(i)...)
		entries = append(entries, entry{k, v})
		total += leafCellSize(k, v)
	}
	if idx == num {
		entries = append(entries, entry{key, value})
		total += leafCellSize(key, value)
	}

	// Choose the split point at roughly half the byte load.
	splitAt, acc := 0, 0
	for i, e := range entries {
		if acc+leafCellSize(e.k, e.v) > total/2 && i > 0 {
			splitAt = i
			break
		}
		acc += leafCellSize(e.k, e.v)
		splitAt = i + 1
	}
	if splitAt >= len(entries) {
		splitAt = len(entries) - 1
	}

	rightID, rightData, err := t.pool.Allocate()
	if err != nil {
		return err
	}
	right := node{id: rightID, data: rightData}
	initNode(rightData, pageTypeLeaf)
	right.setAux(leaf.aux())

	// Rewrite the left leaf with the first half.
	oldNext := leaf.aux()
	_ = oldNext
	initNode(leaf.data, pageTypeLeaf)
	leaf.setAux(rightID)
	for i := 0; i < splitAt; i++ {
		leaf.insertLeafCell(i, entries[i].k, entries[i].v)
	}
	for i := splitAt; i < len(entries); i++ {
		right.insertLeafCell(i-splitAt, entries[i].k, entries[i].v)
	}
	sep := append([]byte(nil), entries[splitAt].k...)
	t.pool.MarkDirty(leaf.id)
	t.pool.MarkDirty(rightID)
	if err := t.pool.Put(rightID); err != nil {
		return err
	}
	return t.insertSeparator(sep, rightID)
}

// insertSeparator pushes (sep, rightChild) into the parent recorded on the
// descent path, splitting upward as needed.
func (t *BTree) insertSeparator(sep []byte, rightChild storage.PageID) error {
	for level := len(t.path) - 1; ; level-- {
		if level < 0 {
			// Root split: new internal root with old root as leftmost.
			newRootID, data, err := t.pool.Allocate()
			if err != nil {
				return err
			}
			root := node{id: newRootID, data: data}
			initNode(data, pageTypeInternal)
			root.setAux(t.root)
			root.insertInternalCell(0, sep, rightChild)
			t.pool.MarkDirty(newRootID)
			if err := t.pool.Put(newRootID); err != nil {
				return err
			}
			t.root = newRootID
			return t.writeRoot()
		}
		pe := t.path[level]
		data, err := t.pool.Get(pe.id)
		if err != nil {
			return err
		}
		n := node{id: pe.id, data: data}
		idx, _ := searchNode(n, sep, BytewiseCompare)
		need := internalCellSize(sep) + slotSize
		if n.freeSpace() < need {
			n.compact()
		}
		if n.freeSpace() >= need {
			n.insertInternalCell(idx, sep, rightChild)
			t.pool.MarkDirty(n.id)
			return t.pool.Put(n.id)
		}
		var promote []byte
		promote, rightChild, err = t.splitInternal(n, idx, sep, rightChild)
		if e := t.pool.Put(n.id); err == nil {
			err = e
		}
		if err != nil {
			return err
		}
		sep = promote
	}
}

// splitInternal splits the pinned internal node n while inserting
// (sep, child) at cell index idx. It returns the key to promote and the id
// of the new right sibling.
func (t *BTree) splitInternal(n node, idx int, sep []byte, child storage.PageID) ([]byte, storage.PageID, error) {
	type entry struct {
		k []byte
		c storage.PageID
	}
	num := n.numCells()
	entries := make([]entry, 0, num+1)
	for i := 0; i < num; i++ {
		if i == idx {
			entries = append(entries, entry{sep, child})
		}
		k := append([]byte(nil), n.key(i)...)
		entries = append(entries, entry{k, n.child(i)})
	}
	if idx == num {
		entries = append(entries, entry{sep, child})
	}

	mid := len(entries) / 2
	promote := entries[mid]

	rightID, rightData, err := t.pool.Allocate()
	if err != nil {
		return nil, storage.InvalidPageID, err
	}
	right := node{id: rightID, data: rightData}
	initNode(rightData, pageTypeInternal)
	right.setAux(promote.c)
	for i := mid + 1; i < len(entries); i++ {
		right.insertInternalCell(i-mid-1, entries[i].k, entries[i].c)
	}

	leftmost := n.aux()
	initNode(n.data, pageTypeInternal)
	n.setAux(leftmost)
	for i := 0; i < mid; i++ {
		n.insertInternalCell(i, entries[i].k, entries[i].c)
	}
	t.pool.MarkDirty(n.id)
	t.pool.MarkDirty(rightID)
	if err := t.pool.Put(rightID); err != nil {
		return nil, storage.InvalidPageID, err
	}
	return promote.k, rightID, nil
}

// Delete removes key if present. It reports whether the key existed.
// Underfull nodes are not rebalanced (lazy deletion, as in several
// production engines); cursors skip empty leaves.
func (t *BTree) Delete(key []byte) (found bool, err error) {
	leaf, err := t.descend(key, BytewiseCompare)
	if err != nil {
		return false, err
	}
	defer unpin(t.pool, leaf.id, &err)
	idx, found := searchNode(leaf, key, BytewiseCompare)
	if !found {
		return false, nil
	}
	leaf.removeCell(idx)
	t.pool.MarkDirty(leaf.id)
	return true, nil
}

// Len counts entries with a full scan (test/diagnostic helper).
func (t *BTree) Len() (int, error) {
	c, err := t.First()
	if err != nil {
		return 0, err
	}
	n := 0
	for c.Valid() {
		n++
		if err := c.Next(); err != nil {
			return 0, err
		}
	}
	return n, nil
}

// Height returns the number of levels (1 = a lone leaf root).
func (t *BTree) Height() (int, error) {
	h := 1
	id := t.root
	for {
		data, err := t.pool.Get(id)
		if err != nil {
			return 0, err
		}
		n := node{id: id, data: data}
		leaf := n.isLeaf()
		next := storage.InvalidPageID
		if !leaf {
			next = n.aux()
		}
		if err := t.pool.Put(id); err != nil {
			return 0, err
		}
		if leaf {
			return h, nil
		}
		h++
		id = next
	}
}

// Validate checks structural and ordering invariants of the whole tree.
// Tests call it after randomized workloads.
func (t *BTree) Validate() error {
	var last []byte
	first := true
	c, err := t.First()
	if err != nil {
		return err
	}
	for c.Valid() {
		if !first && bytes.Compare(last, c.Key()) >= 0 {
			return fmt.Errorf("btree: keys out of order: %x !< %x", last, c.Key())
		}
		last = append(last[:0], c.Key()...)
		first = false
		if err := c.Next(); err != nil {
			return err
		}
	}
	return t.validateSubtree(t.root, nil, nil)
}

func (t *BTree) validateSubtree(id storage.PageID, lo, hi []byte) error {
	data, err := t.pool.Get(id)
	if err != nil {
		return err
	}
	n := node{id: id, data: data}
	type childRange struct {
		id     storage.PageID
		lo, hi []byte
	}
	var children []childRange
	// examine inspects the pinned node; the pin is released before the
	// recursion below so deep trees cannot exhaust a small pool.
	examine := func() error {
		if err := n.validateNode(t.pool.PageSize()); err != nil {
			return err
		}
		num := n.numCells()
		for i := 0; i < num; i++ {
			k := n.key(i)
			if lo != nil && bytes.Compare(k, lo) < 0 {
				return fmt.Errorf("btree: page %d key below lower bound", id)
			}
			if hi != nil && bytes.Compare(k, hi) >= 0 {
				return fmt.Errorf("btree: page %d key above upper bound", id)
			}
		}
		if !n.isLeaf() {
			prev := lo
			for i := 0; i < num; i++ {
				k := append([]byte(nil), n.key(i)...)
				var cid storage.PageID
				if i == 0 {
					cid = n.aux()
				} else {
					cid = n.child(i - 1)
				}
				children = append(children, childRange{cid, prev, k})
				prev = k
			}
			children = append(children, childRange{childAt(n, num), prev, hi})
		}
		return nil
	}
	err = examine()
	if e := t.pool.Put(id); err == nil {
		err = e
	}
	if err != nil {
		return err
	}
	for _, ch := range children {
		if err := t.validateSubtree(ch.id, ch.lo, ch.hi); err != nil {
			return err
		}
	}
	return nil
}
