package ubtree

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/naive"
	"repro/internal/storage"
)

func equalIDs(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestAgainstNaiveRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	d, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		NumRecords: 4000, DomainSize: 60, MinLen: 1, MaxLen: 9, ZipfTheta: 0.9, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(d, Options{PageSize: 512, BlockPostings: 4})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 250; trial++ {
		k := 1 + rng.Intn(5)
		qs := make([]dataset.Item, k)
		for i := range qs {
			qs[i] = dataset.Item(rng.Intn(60))
		}
		got, err := ix.Subset(qs)
		if err != nil {
			t.Fatal(err)
		}
		if want := naive.Subset(d, qs); !equalIDs(got, want) {
			t.Fatalf("Subset(%v) = %v, want %v", qs, got, want)
		}
		got, err = ix.Equality(qs)
		if err != nil {
			t.Fatal(err)
		}
		if want := naive.Equality(d, qs); !equalIDs(got, want) {
			t.Fatalf("Equality(%v) = %v, want %v", qs, got, want)
		}
		got, err = ix.Superset(qs)
		if err != nil {
			t.Fatal(err)
		}
		if want := naive.Superset(d, qs); !equalIDs(got, want) {
			t.Fatalf("Superset(%v) = %v, want %v", qs, got, want)
		}
	}
}

func TestEmptySets(t *testing.T) {
	d := dataset.New(4)
	d.Add(nil)
	d.Add([]dataset.Item{0, 1})
	ix, err := Build(d, Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	sup, err := ix.Superset([]dataset.Item{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(sup, []uint32{1, 2}) {
		t.Fatalf("Superset = %v", sup)
	}
	eq, err := ix.Equality(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(eq, []uint32{1}) {
		t.Fatalf("Equality(∅) = %v", eq)
	}
}

func TestValidation(t *testing.T) {
	d := dataset.New(4)
	d.Add([]dataset.Item{0})
	ix, err := Build(d, Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Subset([]dataset.Item{9}); err == nil {
		t.Fatal("out-of-domain query accepted")
	}
}

// TestSubsetReadsWholeFirstList pins the ablation's defining limitation:
// without ordering there is no RoI, so the initial scan covers the whole
// list of the rarest query item even for highly selective queries.
func TestSubsetReadsWholeFirstList(t *testing.T) {
	d, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		NumRecords: 20000, DomainSize: 50, MinLen: 2, MaxLen: 6, ZipfTheta: 0.3, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(d, Options{PageSize: 4096, BlockPostings: 64})
	if err != nil {
		t.Fatal(err)
	}
	small := storage.NewBufferPool(ix.Pool().Pager(), 8)
	if err := ix.SetPool(small); err != nil {
		t.Fatal(err)
	}
	qs := []dataset.Item{3, 7, 11, 40}
	small.ResetStats()
	if _, err := ix.Subset(qs); err != nil {
		t.Fatal(err)
	}
	// The rarest item's list holds >= 20000*2/50-ish postings spread over
	// many blocks; the scan must have touched at least a handful of
	// pages, far more than an equality point lookup would.
	if got := small.Stats().Misses; got < 5 {
		t.Fatalf("subset cost only %d page accesses; whole-list scan expected", got)
	}
}

func TestBlocksCounted(t *testing.T) {
	d, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		NumRecords: 1000, DomainSize: 30, MinLen: 2, MaxLen: 6, ZipfTheta: 0.5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(d, Options{PageSize: 512, BlockPostings: 8})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Blocks() == 0 {
		t.Fatal("no blocks recorded")
	}
	if ix.NumRecords() != 1000 || ix.DomainSize() != 30 {
		t.Fatal("metadata accessors wrong")
	}
}
