// Package ubtree implements the ablation baseline of §5 ("Impact of the
// OIF ordering"): the inverted lists are cut into blocks indexed by a
// B-tree exactly as in the OIF — same block size — but records keep their
// original ids (no global ordering), keys carry only (item, lastRecordID)
// (no tags), and there is no metadata table. It isolates how much of the
// OIF's win comes from the ordering + metadata rather than from merely
// indexing the lists: the unordered tree still supports id-directed skips
// during intersections, but has no RoI, so initial scans read whole lists.
package ubtree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"repro/internal/btree"
	"repro/internal/dataset"
	"repro/internal/storage"
	"repro/internal/vbyte"
)

// Options configures Build. Use the same BlockPostings as the OIF under
// comparison (the paper: "exactly in the same way we created the OIF
// (same block size)").
type Options struct {
	PageSize       int
	BlockPostings  int
	BuildPoolPages int
}

func (o *Options) fill() {
	if o.PageSize <= 0 {
		o.PageSize = storage.DefaultPageSize
	}
	if o.BlockPostings <= 0 {
		o.BlockPostings = 64
	}
	if o.BuildPoolPages <= 0 {
		o.BuildPoolPages = 1024
	}
}

// Index is a built unordered B-tree index.
type Index struct {
	tree       *btree.BTree
	domainSize int
	numRecords int
	counts     []int64  // postings per item
	emptyIDs   []uint32 // empty-set records (not representable in lists)
	blocks     int64
}

// blockKey is item (4 bytes BE) then last record id (4 bytes BE); plain
// bytewise order works because keys are fixed width.
func blockKey(item dataset.Item, lastID uint32) []byte {
	k := make([]byte, 8)
	binary.BigEndian.PutUint32(k, item)
	binary.BigEndian.PutUint32(k[4:], lastID)
	return k
}

func keyItem(k []byte) dataset.Item { return binary.BigEndian.Uint32(k) }
func keyLastID(k []byte) uint32     { return binary.BigEndian.Uint32(k[4:]) }

// Build constructs the index over d with original record ids. Blocks are
// bulk-loaded in key order so the physical layout matches the OIF's (the
// paper builds both with the same block size for a fair ablation).
func Build(d *dataset.Dataset, opts Options) (*Index, error) {
	opts.fill()
	pool := storage.NewBufferPool(storage.NewMemPager(opts.PageSize), opts.BuildPoolPages)
	ix := &Index{
		domainSize: d.DomainSize(),
		numRecords: d.Len(),
		counts:     make([]int64, d.DomainSize()),
	}
	type itemBlocks struct {
		postings []vbyte.Posting
		keys     [][]byte
		vals     [][]byte
	}
	pend := make([]itemBlocks, d.DomainSize())
	flush := func(item dataset.Item) error {
		p := &pend[item]
		if len(p.postings) == 0 {
			return nil
		}
		val, err := vbyte.AppendPostings(nil, p.postings, 0)
		if err != nil {
			return err
		}
		p.keys = append(p.keys, blockKey(item, p.postings[len(p.postings)-1].ID))
		p.vals = append(p.vals, val)
		ix.blocks++
		p.postings = p.postings[:0]
		return nil
	}
	for _, r := range d.Records() {
		if len(r.Set) == 0 {
			ix.emptyIDs = append(ix.emptyIDs, r.ID)
			continue
		}
		for _, it := range r.Set {
			p := &pend[it]
			p.postings = append(p.postings, vbyte.Posting{ID: r.ID, Length: uint32(len(r.Set))})
			ix.counts[it]++
			if len(p.postings) >= opts.BlockPostings {
				if err := flush(it); err != nil {
					return nil, err
				}
			}
		}
	}
	for it := 0; it < d.DomainSize(); it++ {
		if err := flush(dataset.Item(it)); err != nil {
			return nil, err
		}
	}
	curItem, curIdx := 0, 0
	tree, err := btree.BulkLoad(pool, func() ([]byte, []byte, bool, error) {
		for curItem < d.DomainSize() && curIdx >= len(pend[curItem].keys) {
			curItem++
			curIdx = 0
		}
		if curItem >= d.DomainSize() {
			return nil, nil, false, nil
		}
		k := pend[curItem].keys[curIdx]
		v := pend[curItem].vals[curIdx]
		curIdx++
		return k, v, true, nil
	}, 90)
	if err != nil {
		return nil, err
	}
	ix.tree = tree
	return ix, nil
}

// SetPool swaps the measurement buffer pool.
func (ix *Index) SetPool(pool *storage.BufferPool) error { return ix.tree.SetPool(pool) }

// Pool returns the current buffer pool.
func (ix *Index) Pool() *storage.BufferPool { return ix.tree.Pool() }

// NumRecords returns |D|.
func (ix *Index) NumRecords() int { return ix.numRecords }

// DomainSize returns |I|.
func (ix *Index) DomainSize() int { return ix.domainSize }

// ItemSupports returns the per-item support table: index = item id,
// value = postings in the item's lists (every record posts each of its
// items, so this is the exact support). A planning estimate for query
// ordering, not an answer.
func (ix *Index) ItemSupports() []int64 {
	return append([]int64(nil), ix.counts...)
}

// Blocks returns the number of B-tree entries.
func (ix *Index) Blocks() int64 { return ix.blocks }

func (ix *Index) prepQuery(qs []dataset.Item) ([]dataset.Item, error) {
	q := append([]dataset.Item(nil), qs...)
	sort.Slice(q, func(i, j int) bool { return q[i] < q[j] })
	out := q[:0]
	for i, v := range q {
		if int(v) >= ix.domainSize {
			return nil, fmt.Errorf("ubtree: item %d outside domain %d", v, ix.domainSize)
		}
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out, nil
}

// scanList decodes item's entire list by walking its blocks.
func (ix *Index) scanList(item dataset.Item) ([]vbyte.Posting, error) {
	cur, err := ix.tree.Seek(blockKey(item, 0), btree.BytewiseCompare)
	if err != nil {
		return nil, err
	}
	out := make([]vbyte.Posting, 0, ix.counts[item])
	for cur.Valid() && keyItem(cur.Key()) == item {
		out, err = vbyte.DecodePostings(cur.Value(), 0, out)
		if err != nil {
			return nil, err
		}
		if err := cur.Next(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// filterByListRange keeps candidates that appear in item's list by
// scanning the block range [minCand, maxCand] sequentially — Algorithm
// 1's range restriction (line 15), which is all the evaluation the paper
// runs against the unordered tree. Without the OIF's global ordering,
// candidate ids scatter uniformly over the id space, so this range
// usually spans nearly the whole list: exactly the effect the ablation
// exists to demonstrate.
func (ix *Index) filterByListRange(item dataset.Item, cands []uint32) ([]uint32, error) {
	if len(cands) == 0 {
		return nil, nil
	}
	out := cands[:0]
	var buf []vbyte.Posting
	cur, err := ix.tree.Seek(blockKey(item, cands[0]), btree.BytewiseCompare)
	if err != nil {
		return nil, err
	}
	i := 0
	for i < len(cands) && cur.Valid() && keyItem(cur.Key()) == item {
		lastID := keyLastID(cur.Key())
		buf, err = vbyte.DecodePostings(cur.Value(), 0, buf[:0])
		if err != nil {
			return nil, err
		}
		j := 0
		for i < len(cands) && cands[i] <= lastID {
			for j < len(buf) && buf[j].ID < cands[i] {
				j++
			}
			if j < len(buf) && buf[j].ID == cands[i] {
				out = append(out, cands[i])
			}
			i++
		}
		if err := cur.Next(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// filterByListProbes keeps candidates via per-candidate id seeks. The
// paper's equality evaluation uses this ("the candidate solutions are
// usually very limited and can be directly accessed using the B-tree").
func (ix *Index) filterByListProbes(item dataset.Item, cands []uint32) ([]uint32, error) {
	if len(cands) == 0 {
		return nil, nil
	}
	out := cands[:0]
	var buf []vbyte.Posting
	i := 0
	for i < len(cands) {
		cur, err := ix.tree.Seek(blockKey(item, cands[i]), btree.BytewiseCompare)
		if err != nil {
			return nil, err
		}
		if !cur.Valid() || keyItem(cur.Key()) != item {
			break
		}
		lastID := keyLastID(cur.Key())
		buf, err = vbyte.DecodePostings(cur.Value(), 0, buf[:0])
		if err != nil {
			return nil, err
		}
		j := 0
		for i < len(cands) && cands[i] <= lastID {
			for j < len(buf) && buf[j].ID < cands[i] {
				j++
			}
			if j < len(buf) && buf[j].ID == cands[i] {
				out = append(out, cands[i])
			}
			i++
		}
	}
	return out, nil
}

// byCount orders query items by ascending list size so the initial full
// scan is the cheapest one.
func (ix *Index) byCount(q []dataset.Item) []dataset.Item {
	s := append([]dataset.Item(nil), q...)
	sort.SliceStable(s, func(i, j int) bool { return ix.counts[s[i]] < ix.counts[s[j]] })
	return s
}

// Subset returns ids of records containing all of qs, ascending.
func (ix *Index) Subset(qs []dataset.Item) ([]uint32, error) {
	q, err := ix.prepQuery(qs)
	if err != nil {
		return nil, err
	}
	if len(q) == 0 {
		out := make([]uint32, 0, ix.numRecords)
		for id := uint32(1); id <= uint32(ix.numRecords); id++ {
			out = append(out, id)
		}
		return out, nil
	}
	order := ix.byCount(q)
	first, err := ix.scanList(order[0])
	if err != nil {
		return nil, err
	}
	cands := make([]uint32, 0, len(first))
	for _, p := range first {
		if p.Length >= uint32(len(q)) {
			cands = append(cands, p.ID)
		}
	}
	for _, it := range order[1:] {
		if len(cands) == 0 {
			break
		}
		cands, err = ix.filterByListRange(it, cands)
		if err != nil {
			return nil, err
		}
	}
	return cands, nil
}

// Equality returns ids of records whose set equals qs, ascending.
func (ix *Index) Equality(qs []dataset.Item) ([]uint32, error) {
	q, err := ix.prepQuery(qs)
	if err != nil {
		return nil, err
	}
	if len(q) == 0 {
		return append([]uint32(nil), ix.emptyIDs...), nil
	}
	order := ix.byCount(q)
	first, err := ix.scanList(order[0])
	if err != nil {
		return nil, err
	}
	var cands []uint32
	for _, p := range first {
		if p.Length == uint32(len(q)) {
			cands = append(cands, p.ID)
		}
	}
	for _, it := range order[1:] {
		if len(cands) == 0 {
			break
		}
		cands, err = ix.filterByListProbes(it, cands)
		if err != nil {
			return nil, err
		}
	}
	return cands, nil
}

// Superset returns ids of records contained in qs, ascending. Without an
// ordering the whole of every list must be scanned (the paper: "the
// unordered B-tree does not have any advantage ... for superset queries").
func (ix *Index) Superset(qs []dataset.Item) ([]uint32, error) {
	q, err := ix.prepQuery(qs)
	if err != nil {
		return nil, err
	}
	lists := make([][]vbyte.Posting, len(q))
	for i, it := range q {
		lists[i], err = ix.scanList(it)
		if err != nil {
			return nil, err
		}
	}
	idx := make([]int, len(lists))
	results := append([]uint32(nil), ix.emptyIDs...)
	for {
		min := uint32(0)
		found := false
		for i, l := range lists {
			if idx[i] < len(l) && (!found || l[idx[i]].ID < min) {
				min = l[idx[i]].ID
				found = true
			}
		}
		if !found {
			break
		}
		var count, length uint32
		for i, l := range lists {
			if idx[i] < len(l) && l[idx[i]].ID == min {
				count++
				length = l[idx[i]].Length
				idx[i]++
			}
		}
		if count == length {
			results = append(results, min)
		}
	}
	sort.Slice(results, func(i, j int) bool { return results[i] < results[j] })
	return results, nil
}

// ErrUnsupported is reserved for future use.
var ErrUnsupported = errors.New("ubtree: unsupported operation")

// NewReader returns an independent query handle over the same tree pages
// with its own buffer pool; see core.Index.NewReader for the contract.
func (ix *Index) NewReader(poolPages int) (*Reader, error) {
	pool := storage.NewBufferPool(ix.tree.Pool().Pager(), poolPages)
	view, err := ix.tree.View(pool)
	if err != nil {
		return nil, err
	}
	clone := *ix
	clone.tree = view
	return &Reader{ix: &clone, pool: pool}, nil
}

// Reader is an isolated query handle produced by NewReader.
type Reader struct {
	ix   *Index
	pool *storage.BufferPool
}

// Subset answers like Index.Subset.
func (r *Reader) Subset(qs []dataset.Item) ([]uint32, error) { return r.ix.Subset(qs) }

// Equality answers like Index.Equality.
func (r *Reader) Equality(qs []dataset.Item) ([]uint32, error) { return r.ix.Equality(qs) }

// Superset answers like Index.Superset.
func (r *Reader) Superset(qs []dataset.Item) ([]uint32, error) { return r.ix.Superset(qs) }

// Stats returns this reader's private access statistics.
func (r *Reader) Stats() storage.AccessStats { return r.pool.Stats() }

// ResetStats zeroes this reader's statistics.
func (r *Reader) ResetStats() { r.pool.ResetStats() }

// Pool returns the reader's private buffer pool.
func (r *Reader) Pool() *storage.BufferPool { return r.pool }
