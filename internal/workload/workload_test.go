package workload

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/naive"
)

func genData(t *testing.T) *dataset.Dataset {
	t.Helper()
	d, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		NumRecords: 3000, DomainSize: 100, MinLen: 2, MaxLen: 12, ZipfTheta: 0.8, Seed: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSubsetQueriesAlwaysHaveAnswers(t *testing.T) {
	d := genData(t)
	g := NewGenerator(d, 1)
	for _, size := range []int{2, 4, 7} {
		qs := g.SubsetQueries(size, 10)
		if len(qs) != 10 {
			t.Fatalf("size %d: got %d queries", size, len(qs))
		}
		for _, q := range qs {
			if len(q.Items) != size {
				t.Fatalf("query has %d items, want %d", len(q.Items), size)
			}
			if q.Kind != Subset {
				t.Fatal("wrong kind")
			}
			if len(naive.Subset(d, q.Items)) == 0 {
				t.Fatalf("subset query %v has no answers", q.Items)
			}
			assertCanonical(t, q.Items)
		}
	}
}

func TestEqualityQueriesAlwaysHaveAnswers(t *testing.T) {
	d := genData(t)
	g := NewGenerator(d, 2)
	for _, size := range []int{2, 5, 9} {
		qs := g.EqualityQueries(size, 10)
		if len(qs) == 0 {
			t.Fatalf("no equality queries of size %d", size)
		}
		for _, q := range qs {
			if len(q.Items) != size {
				t.Fatalf("query has %d items, want %d", len(q.Items), size)
			}
			if len(naive.Equality(d, q.Items)) == 0 {
				t.Fatalf("equality query %v has no answers", q.Items)
			}
		}
	}
}

func TestEqualityQueriesImpossibleSize(t *testing.T) {
	d := genData(t)
	g := NewGenerator(d, 3)
	if qs := g.EqualityQueries(50, 10); qs != nil {
		t.Fatalf("got %d queries for impossible size", len(qs))
	}
}

func TestSupersetQueriesAlwaysHaveAnswers(t *testing.T) {
	d := genData(t)
	g := NewGenerator(d, 4)
	for _, size := range []int{3, 6, 12, 20} {
		qs := g.SupersetQueries(size, 10)
		if len(qs) != 10 {
			t.Fatalf("size %d: got %d queries", size, len(qs))
		}
		for _, q := range qs {
			if len(q.Items) != size {
				t.Fatalf("query has %d items, want %d", len(q.Items), size)
			}
			if len(naive.Superset(d, q.Items)) == 0 {
				t.Fatalf("superset query %v has no answers", q.Items)
			}
			assertCanonical(t, q.Items)
		}
	}
}

func TestQueriesDispatch(t *testing.T) {
	d := genData(t)
	g := NewGenerator(d, 5)
	for _, k := range []Kind{Subset, Equality, Superset} {
		qs := g.Queries(k, 3, 5)
		if len(qs) == 0 {
			t.Fatalf("no %v queries", k)
		}
		for _, q := range qs {
			if q.Kind != k {
				t.Fatalf("kind = %v, want %v", q.Kind, k)
			}
		}
	}
	if got := g.Queries(Kind(99), 3, 5); got != nil {
		t.Fatal("unknown kind returned queries")
	}
	if Subset.String() != "subset" || Equality.String() != "equality" || Superset.String() != "superset" {
		t.Fatal("Kind.String wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown Kind.String empty")
	}
}

func TestDeterminism(t *testing.T) {
	d := genData(t)
	a := NewGenerator(d, 7).SubsetQueries(4, 10)
	b := NewGenerator(d, 7).SubsetQueries(4, 10)
	for i := range a {
		for j := range a[i].Items {
			if a[i].Items[j] != b[i].Items[j] {
				t.Fatal("same seed produced different workloads")
			}
		}
	}
}

func assertCanonical(t *testing.T, items []dataset.Item) {
	t.Helper()
	for i := 1; i < len(items); i++ {
		if items[i] <= items[i-1] {
			t.Fatalf("items not sorted/distinct: %v", items)
		}
	}
}

// TestSubsetSelectivityShape loosely checks the paper's observation that
// larger |qs| gives more selective subset queries.
func TestSubsetSelectivityShape(t *testing.T) {
	d := genData(t)
	g := NewGenerator(d, 8)
	avg := func(size int) float64 {
		qs := g.SubsetQueries(size, 20)
		total := 0
		for _, q := range qs {
			total += len(naive.Subset(d, q.Items))
		}
		return float64(total) / float64(len(qs))
	}
	if a2, a6 := avg(2), avg(6); a6 > a2 {
		t.Fatalf("|qs|=6 avg answers %.1f > |qs|=2 avg %.1f; selectivity shape broken", a6, a2)
	}
}
