// Package workload generates containment-query workloads the way the
// paper does (§5, "Queries"): "we evaluated our proposal using queries
// that always have an answer ... we created such queries by using
// existing set-values, selected uniformly from all D". For a requested
// |qs|, subset queries sample |qs| items from an existing record (the
// record itself is then an answer), equality queries take a record of
// exactly that cardinality, and superset queries extend a record of at
// most that cardinality with random extra items (the record stays an
// answer).
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/dataset"
)

// Kind is a containment predicate.
type Kind int

// The three predicates of the paper.
const (
	Subset Kind = iota
	Equality
	Superset
)

func (k Kind) String() string {
	switch k {
	case Subset:
		return "subset"
	case Equality:
		return "equality"
	case Superset:
		return "superset"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Query is one generated query. The experiments package converts it to
// the public setcontain.Query form with AsQuery (the conversion lives
// there to keep this low-level generator free of the public package).
type Query struct {
	Kind  Kind
	Items []dataset.Item // sorted ascending, distinct
}

// Generator draws queries from a dataset.
type Generator struct {
	d   *dataset.Dataset
	rng *rand.Rand

	bySize map[int][]int // record positions grouped by cardinality
	sizes  []int         // cardinalities present, ascending
}

// NewGenerator prepares a generator with its own deterministic stream.
func NewGenerator(d *dataset.Dataset, seed int64) *Generator {
	g := &Generator{
		d:      d,
		rng:    rand.New(rand.NewSource(seed)),
		bySize: make(map[int][]int),
	}
	for i := 0; i < d.Len(); i++ {
		n := len(d.Record(i).Set)
		g.bySize[n] = append(g.bySize[n], i)
	}
	for n := range g.bySize {
		g.sizes = append(g.sizes, n)
	}
	sort.Ints(g.sizes)
	return g
}

// maxTries bounds rejection sampling before giving up on a size.
const maxTries = 10000

// recordWithAtLeast picks a uniform record with cardinality >= n, or -1.
func (g *Generator) recordWithAtLeast(n int) int {
	for try := 0; try < maxTries; try++ {
		i := g.rng.Intn(g.d.Len())
		if len(g.d.Record(i).Set) >= n {
			return i
		}
	}
	// Deterministic fallback: any qualifying size class.
	for _, s := range g.sizes {
		if s >= n {
			class := g.bySize[s]
			return class[g.rng.Intn(len(class))]
		}
	}
	return -1
}

// SubsetQueries returns count subset queries of the given size. Fewer are
// returned when the dataset cannot support the size.
func (g *Generator) SubsetQueries(size, count int) []Query {
	var out []Query
	for len(out) < count {
		i := g.recordWithAtLeast(size)
		if i < 0 {
			break
		}
		set := g.d.Record(i).Set
		items := sampleK(g.rng, set, size)
		out = append(out, Query{Kind: Subset, Items: items})
	}
	return out
}

// EqualityQueries returns count equality queries of the given size, each
// the exact set of some record.
func (g *Generator) EqualityQueries(size, count int) []Query {
	class := g.bySize[size]
	if len(class) == 0 {
		return nil
	}
	out := make([]Query, 0, count)
	for len(out) < count {
		i := class[g.rng.Intn(len(class))]
		items := append([]dataset.Item(nil), g.d.Record(i).Set...)
		out = append(out, Query{Kind: Equality, Items: items})
	}
	return out
}

// SubsetQueriesWithItem returns count subset queries of the given size
// that all include the given item, sampling the remaining items from an
// existing record containing it. This models the workload skew the
// paper's introduction cites ("users usually pose queries involving the
// most frequent items in the dataset"). Returns nil if no record of
// sufficient cardinality contains the item.
func (g *Generator) SubsetQueriesWithItem(item dataset.Item, size, count int) []Query {
	if size < 1 {
		return nil
	}
	// Collect candidate records once.
	var holders []int
	for i := 0; i < g.d.Len(); i++ {
		r := g.d.Record(i)
		if len(r.Set) >= size && r.Contains(item) {
			holders = append(holders, i)
		}
	}
	if len(holders) == 0 {
		return nil
	}
	out := make([]Query, 0, count)
	for len(out) < count {
		rec := g.d.Record(holders[g.rng.Intn(len(holders))])
		rest := make([]dataset.Item, 0, len(rec.Set)-1)
		for _, it := range rec.Set {
			if it != item {
				rest = append(rest, it)
			}
		}
		items := sampleK(g.rng, rest, size-1)
		items = append(items, item)
		sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
		out = append(out, Query{Kind: Subset, Items: items})
	}
	return out
}

// SupersetQueries returns count superset queries of the given size: an
// existing record's set padded with distinct random items up to size.
func (g *Generator) SupersetQueries(size, count int) []Query {
	if size > g.d.DomainSize() {
		size = g.d.DomainSize()
	}
	var out []Query
	for len(out) < count {
		i := g.recordWithAtMost(size)
		if i < 0 {
			break
		}
		base := g.d.Record(i).Set
		items := padTo(g.rng, base, size, g.d.DomainSize())
		out = append(out, Query{Kind: Superset, Items: items})
	}
	return out
}

// recordWithAtMost picks a uniform record with 1 <= cardinality <= n.
func (g *Generator) recordWithAtMost(n int) int {
	for try := 0; try < maxTries; try++ {
		i := g.rng.Intn(g.d.Len())
		if l := len(g.d.Record(i).Set); l >= 1 && l <= n {
			return i
		}
	}
	for _, s := range g.sizes {
		if s >= 1 && s <= n {
			class := g.bySize[s]
			return class[g.rng.Intn(len(class))]
		}
	}
	return -1
}

// Queries generates count queries of kind and size.
func (g *Generator) Queries(kind Kind, size, count int) []Query {
	switch kind {
	case Subset:
		return g.SubsetQueries(size, count)
	case Equality:
		return g.EqualityQueries(size, count)
	case Superset:
		return g.SupersetQueries(size, count)
	default:
		return nil
	}
}

// sampleK draws k distinct elements of set uniformly, sorted ascending.
func sampleK(rng *rand.Rand, set []dataset.Item, k int) []dataset.Item {
	idx := rng.Perm(len(set))[:k]
	out := make([]dataset.Item, 0, k)
	for _, i := range idx {
		out = append(out, set[i])
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// padTo extends base with distinct random items until it has size
// elements, sorted ascending.
func padTo(rng *rand.Rand, base []dataset.Item, size, domain int) []dataset.Item {
	present := make(map[dataset.Item]bool, size)
	out := make([]dataset.Item, 0, size)
	for _, it := range base {
		present[it] = true
		out = append(out, it)
	}
	for len(out) < size {
		it := dataset.Item(rng.Intn(domain))
		if !present[it] {
			present[it] = true
			out = append(out, it)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
