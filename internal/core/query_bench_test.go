package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/vbyte"
)

// makeMatchFixture builds a decoded block of m postings and k sorted
// candidates, half of which are members.
func makeMatchFixture(m, k int, seed int64) ([]vbyte.Posting, []uint32) {
	rng := rand.New(rand.NewSource(seed))
	buf := make([]vbyte.Posting, m)
	id := uint32(0)
	for i := range buf {
		id += uint32(1 + rng.Intn(8))
		buf[i] = vbyte.Posting{ID: id, Length: 4}
	}
	cands := make([]uint32, 0, k)
	for i := 0; i < k; i++ {
		if i%2 == 0 {
			cands = append(cands, buf[rng.Intn(m)].ID)
		} else {
			cands = append(cands, uint32(1+rng.Intn(int(id))))
		}
	}
	// Sort + dedup to satisfy the candidate contract.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j] < cands[j-1]; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	out := cands[:0]
	for i, c := range cands {
		if i == 0 || c != out[len(out)-1] {
			out = append(out, c)
		}
	}
	return buf, out
}

// TestMatchBlockStrategiesAgree pins the two probe strategies (and the
// crossover dispatcher) to identical results.
func TestMatchBlockStrategiesAgree(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		for _, mk := range [][2]int{{8, 3}, {64, 64}, {128, 2}, {512, 1}, {512, 40}, {512, 511}} {
			buf, cands := makeMatchFixture(mk[0], mk[1], seed)
			lin := matchBlockLinear(buf, cands, nil)
			bin := matchBlockBinary(buf, cands, nil)
			dis := matchBlock(buf, cands, nil)
			if len(lin) != len(bin) || len(lin) != len(dis) {
				t.Fatalf("m=%d k=%d seed=%d: linear %d, binary %d, dispatch %d matches",
					mk[0], mk[1], seed, len(lin), len(bin), len(dis))
			}
			for i := range lin {
				if lin[i] != bin[i] || lin[i] != dis[i] {
					t.Fatalf("m=%d k=%d seed=%d: divergence at %d", mk[0], mk[1], seed, i)
				}
			}
		}
	}
}

// BenchmarkMatchBlock justifies the crossover constants: sweep the
// block-size / candidate-count ratio and compare the linear merge
// against per-candidate binary search. Binary search wins decisively
// once m >> k (the regime filterByList's id-directed seeks produce on
// very hot lists); the linear merge stays ahead for dense candidate
// sets. The dispatcher's threshold (matchBinaryFloor + matchBinaryPerCand*k)
// sits between the two regimes.
func BenchmarkMatchBlock(b *testing.B) {
	out := make([]uint32, 0, 1024)
	for _, mk := range [][2]int{{64, 32}, {128, 16}, {256, 4}, {512, 2}, {512, 16}, {512, 128}} {
		buf, cands := makeMatchFixture(mk[0], mk[1], 1)
		name := fmt.Sprintf("m%03d_k%03d", mk[0], mk[1])
		b.Run(name+"/linear", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out = matchBlockLinear(buf, cands, out[:0])
			}
		})
		b.Run(name+"/binary", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out = matchBlockBinary(buf, cands, out[:0])
			}
		})
	}
}
