package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
)

// Example builds an Ordered Inverted File over a small dataset and runs
// one query of each containment predicate — the raw engine beneath the
// public setcontain API.
func Example() {
	d := dataset.New(10)
	for _, set := range [][]dataset.Item{
		{0, 1, 3, 6}, {0, 1, 4}, {0, 1, 4, 5}, {0, 1, 3}, {0, 1, 2, 5},
		{0, 2}, {3, 7}, {0, 1, 5}, {1, 2}, {1, 6, 9}, {0, 1, 2}, {3, 8},
	} {
		if _, err := d.Add(set); err != nil {
			log.Fatal(err)
		}
	}
	ix, err := core.Build(d, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	subset, _ := ix.Subset([]dataset.Item{0, 3})
	equality, _ := ix.Equality([]dataset.Item{0, 2})
	superset, _ := ix.Superset([]dataset.Item{0, 2})
	fmt.Println("subset{0 3}  ", subset)
	fmt.Println("equality{0 2}", equality)
	fmt.Println("superset{0 2}", superset)
	// Output:
	// subset{0 3}   [1 4]
	// equality{0 2} [6]
	// superset{0 2} [6]
}
