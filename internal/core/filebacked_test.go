package core

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
	"repro/internal/naive"
	"repro/internal/storage"
)

// TestFileBackedBuildAndQuery runs the whole index over a real file pager
// (Options.Pool), which is how cmd/oifquery can host indexes that exceed
// memory. Queries must agree with the oracle and survive a pool swap to
// the minimal cache.
func TestFileBackedBuildAndQuery(t *testing.T) {
	d, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		NumRecords: 4000, DomainSize: 80, MinLen: 2, MaxLen: 9, ZipfTheta: 0.8, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "oif.pages")
	fp, err := storage.CreateFilePager(path, 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer fp.Close()

	ix, err := Build(d, Options{
		PageSize:      4096,
		BlockPostings: 16,
		Pool:          storage.NewBufferPool(fp, 256),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.SetPool(storage.NewBufferPool(fp, storage.DefaultPoolPages)); err != nil {
		t.Fatal(err)
	}

	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Fatal("index file is empty")
	}
	if info.Size()%4096 != 0 {
		t.Fatalf("index file size %d not page aligned", info.Size())
	}

	for i := 0; i < 50; i++ {
		r := d.Record(i * 37)
		got, err := ix.Subset(r.Set)
		if err != nil {
			t.Fatal(err)
		}
		if want := naive.Subset(d, r.Set); !equalIDs(got, want) {
			t.Fatalf("file-backed Subset(%v) = %v, want %v", r.Set, got, want)
		}
		got, err = ix.Equality(r.Set)
		if err != nil {
			t.Fatal(err)
		}
		if want := naive.Equality(d, r.Set); !equalIDs(got, want) {
			t.Fatalf("file-backed Equality diverged")
		}
	}
}

// TestPoolOptionValidation covers misuse of Options.Pool.
func TestPoolOptionValidation(t *testing.T) {
	d := dataset.New(4)
	d.Add([]dataset.Item{0, 1})
	// Page size conflict.
	pool := storage.NewBufferPool(storage.NewMemPager(1024), 16)
	if _, err := Build(d, Options{PageSize: 512, Pool: pool}); err == nil {
		t.Fatal("conflicting page sizes accepted")
	}
	// Matching explicit page size is fine.
	pool2 := storage.NewBufferPool(storage.NewMemPager(1024), 16)
	if _, err := Build(d, Options{PageSize: 1024, Pool: pool2}); err != nil {
		t.Fatalf("matching page size rejected: %v", err)
	}
	// Default page size adopts the pool's.
	pool3 := storage.NewBufferPool(storage.NewMemPager(1024), 16)
	ix, err := Build(d, Options{Pool: pool3})
	if err != nil {
		t.Fatal(err)
	}
	if ix.opts.PageSize != 1024 {
		t.Fatalf("index did not adopt pool page size: %d", ix.opts.PageSize)
	}
}
