package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/btree"
	"repro/internal/sequence"
)

// B-tree key layout (§3, "B-tree indexing for inverted lists"): each block
// of an inverted list is one entry whose key concatenates
//
//	rank(item)  — 4 bytes big-endian; groups a list's blocks together
//	tag         — the sequence form of the block's last record, in the
//	              self-delimiting order-preserving encoding of package
//	              sequence
//	lastID      — 4 bytes big-endian; the block's last record id, which
//	              makes keys unique and enables id-directed seeks
//
// Bytewise order over these keys equals (rank, tag, id) logical order.

// blockKey builds the key for a block of rank's list ending at record
// lastID whose sequence form is tag.
func blockKey(rank sequence.Rank, tag []sequence.Rank, lastID uint32) []byte {
	k := make([]byte, 0, 4+sequence.TagLen(len(tag))+4)
	k = binary.BigEndian.AppendUint32(k, rank)
	k = sequence.AppendTag(k, tag)
	return binary.BigEndian.AppendUint32(k, lastID)
}

// parseKey splits a stored block key.
func parseKey(k []byte) (rank sequence.Rank, tag []sequence.Rank, lastID uint32, err error) {
	if len(k) < 9 { // rank + empty tag + id
		return 0, nil, 0, fmt.Errorf("core: block key too short (%d bytes)", len(k))
	}
	rank = binary.BigEndian.Uint32(k)
	tag, n, err := sequence.DecodeTag(k[4:])
	if err != nil {
		return 0, nil, 0, fmt.Errorf("core: block key tag: %w", err)
	}
	rest := k[4+n:]
	if len(rest) != 4 {
		return 0, nil, 0, fmt.Errorf("core: block key has %d trailing bytes, want 4", len(rest))
	}
	lastID = binary.BigEndian.Uint32(rest)
	return rank, tag, lastID, nil
}

// keyRank reads the rank prefix without parsing the rest.
func keyRank(k []byte) sequence.Rank { return binary.BigEndian.Uint32(k) }

// keyLastID reads the record-id suffix without parsing the tag.
func keyLastID(k []byte) uint32 { return binary.BigEndian.Uint32(k[len(k)-4:]) }

// tagProbe builds a seek probe positioning at the first block of rank
// whose tag is >= sf. It omits the id suffix: being a strict prefix of any
// equal-tag key, it sorts before all of them.
func tagProbe(rank sequence.Rank, sf []sequence.Rank) []byte {
	p := make([]byte, 0, 4+sequence.TagLen(len(sf)))
	p = binary.BigEndian.AppendUint32(p, rank)
	return sequence.AppendTag(p, sf)
}

// listStartProbe positions at the first block of rank's list. The empty
// tag sorts before every real tag of the same rank.
func listStartProbe(rank sequence.Rank) []byte { return tagProbe(rank, nil) }

// idProbe is the probe payload for id-directed seeks: rank then record id.
func idProbe(rank sequence.Rank, id uint32) []byte {
	p := make([]byte, 8)
	binary.BigEndian.PutUint32(p, rank)
	binary.BigEndian.PutUint32(p[4:], id)
	return p
}

// idProbeCompare orders an idProbe against stored block keys by
// (rank, lastID), ignoring the tag bytes. Valid because within one rank's
// key range tag order and lastID order coincide — the OIF's global
// ordering property. Implements btree.Compare.
func idProbeCompare(probe, key []byte) int {
	pr, kr := binary.BigEndian.Uint32(probe), keyRank(key)
	switch {
	case pr < kr:
		return -1
	case pr > kr:
		return 1
	}
	pid, kid := binary.BigEndian.Uint32(probe[4:]), keyLastID(key)
	switch {
	case pid < kid:
		return -1
	case pid > kid:
		return 1
	}
	return 0
}

// Assert idProbeCompare satisfies the btree comparator contract.
var _ btree.Compare = idProbeCompare
