package core

import (
	"encoding/binary"

	"repro/internal/btree"
	"repro/internal/sequence"
)

// B-tree key layout (§3, "B-tree indexing for inverted lists"): each block
// of an inverted list is one entry whose key concatenates
//
//	rank(item)  — 4 bytes big-endian; groups a list's blocks together
//	tag         — the sequence form of the block's last record, in the
//	              self-delimiting order-preserving encoding of package
//	              sequence
//	lastID      — 4 bytes big-endian; the block's last record id, which
//	              makes keys unique and enables id-directed seeks
//
// Bytewise order over these keys equals (rank, tag, id) logical order.

// blockKey builds the key for a block of rank's list ending at record
// lastID whose sequence form is tag.
func blockKey(rank sequence.Rank, tag []sequence.Rank, lastID uint32) []byte {
	k := make([]byte, 0, 4+sequence.TagLen(len(tag))+4)
	k = binary.BigEndian.AppendUint32(k, rank)
	k = sequence.AppendTag(k, tag)
	return binary.BigEndian.AppendUint32(k, lastID)
}

// keyRank reads the rank prefix without parsing the rest.
func keyRank(k []byte) sequence.Rank { return binary.BigEndian.Uint32(k) }

// keyLastID reads the record-id suffix without parsing the tag.
func keyLastID(k []byte) uint32 { return binary.BigEndian.Uint32(k[len(k)-4:]) }

// appendTagProbe appends a seek probe positioning at the first block of
// rank whose tag is >= sf. It omits the id suffix: being a strict prefix
// of any equal-tag key, it sorts before all of them. Probes are built
// into the query arena's recycled buffer.
func appendTagProbe(dst []byte, rank sequence.Rank, sf []sequence.Rank) []byte {
	dst = binary.BigEndian.AppendUint32(dst, rank)
	return sequence.AppendTag(dst, sf)
}

// appendIDProbe appends the probe payload for id-directed seeks: rank
// then record id.
func appendIDProbe(dst []byte, rank sequence.Rank, id uint32) []byte {
	dst = binary.BigEndian.AppendUint32(dst, rank)
	return binary.BigEndian.AppendUint32(dst, id)
}

// idProbeCompare orders an idProbe against stored block keys by
// (rank, lastID), ignoring the tag bytes. Valid because within one rank's
// key range tag order and lastID order coincide — the OIF's global
// ordering property. Implements btree.Compare.
func idProbeCompare(probe, key []byte) int {
	pr, kr := binary.BigEndian.Uint32(probe), keyRank(key)
	switch {
	case pr < kr:
		return -1
	case pr > kr:
		return 1
	}
	pid, kid := binary.BigEndian.Uint32(probe[4:]), keyLastID(key)
	switch {
	case pid < kid:
		return -1
	case pid > kid:
		return 1
	}
	return 0
}

// Assert idProbeCompare satisfies the btree comparator contract.
var _ btree.Compare = idProbeCompare
