package core

import (
	"fmt"

	"repro/internal/btree"
	"repro/internal/sequence"
	"repro/internal/vbyte"
)

// listCursor walks the blocks of one rank's inverted list in id order,
// decoding keys lazily. It becomes invalid when the underlying B-tree
// cursor leaves the rank's key range.
//
// Cursors live in the query arena: only one is live at a time on a query
// path (candidate gathering finishes before the filter phase, and
// filters walk one list at a time), so seekTag/seekID recycle the same
// cursor — and through it the B-tree cursor's leaf arena and the tag
// decode buffer — across every seek of a query and across queries.
type listCursor struct {
	ix    *Index
	rank  sequence.Rank
	cur   btree.Cursor
	valid bool

	tag    []sequence.Rank // decoded into a reusable buffer
	lastID uint32
}

// seekTag positions at the first block of rank whose tag >= sf. With a
// configured TagPrefix both the stored tags and the probe are truncated;
// prefix truncation preserves <=, so the seek lands at or before the true
// lower bound (see Options.TagPrefix).
func (ix *Index) seekTag(rank sequence.Rank, sf []sequence.Rank) (*listCursor, error) {
	ix.arena.probe = appendTagProbe(ix.arena.probe[:0], rank, ix.truncTag(sf))
	lc := &ix.arena.lc
	lc.ix, lc.rank = ix, rank
	if err := ix.tree.SeekCursor(&lc.cur, ix.arena.probe, btree.BytewiseCompare); err != nil {
		return nil, err
	}
	return lc, lc.load()
}

// seekID positions at the first block of rank whose lastID >= id, i.e.
// the block that would contain record id.
func (ix *Index) seekID(rank sequence.Rank, id uint32) (*listCursor, error) {
	ix.arena.probe = appendIDProbe(ix.arena.probe[:0], rank, id)
	lc := &ix.arena.lc
	lc.ix, lc.rank = ix, rank
	if err := ix.tree.SeekCursor(&lc.cur, ix.arena.probe, idProbeCompare); err != nil {
		return nil, err
	}
	return lc, lc.load()
}

// load parses the current B-tree entry, invalidating the cursor if it has
// moved past this rank's list. The tag is decoded into the cursor's
// reusable buffer.
func (lc *listCursor) load() error {
	if !lc.cur.Valid() {
		lc.valid = false
		return nil
	}
	k := lc.cur.Key()
	if len(k) < 9 { // rank + empty tag + id
		return fmt.Errorf("core: block key too short (%d bytes)", len(k))
	}
	if keyRank(k) != lc.rank {
		lc.valid = false
		return nil
	}
	tag, n, err := sequence.AppendDecodedTag(lc.tag[:0], k[4:])
	if err != nil {
		return fmt.Errorf("core: block key tag: %w", err)
	}
	if len(k)-(4+n) != 4 {
		return fmt.Errorf("core: block key has %d trailing bytes, want 4", len(k)-(4+n))
	}
	lc.tag = tag
	lc.lastID = keyLastID(k)
	lc.valid = true
	return nil
}

// next advances to the following block of the same list.
func (lc *listCursor) next() error {
	if !lc.valid {
		return nil
	}
	if err := lc.cur.Next(); err != nil {
		return err
	}
	return lc.load()
}

// postings returns the current block decoded. With a decoded cache the
// block is served from (or admitted to) it; otherwise it is decoded into
// the arena's scratch slice. Either way the returned slice is owned by
// the index runtime: callers must treat it as read-only and must not
// hold it across a postings or seek call.
func (lc *listCursor) postings() ([]vbyte.Posting, error) {
	ix := lc.ix
	if c := ix.dcache; c != nil {
		key := blockCacheKey(lc.rank, lc.lastID)
		if ps, ok := c.get(key); ok {
			return ps, nil
		}
		ps, err := vbyte.DecodePostingsInto(lc.cur.Value(), 0, ix.arena.decode[:0])
		if err != nil {
			return nil, err
		}
		ix.arena.decode = ps
		if cached := c.admit(key, ix.listPostings[lc.rank], ps); cached != nil {
			return cached, nil
		}
		return ps, nil
	}
	ps, err := vbyte.DecodePostingsInto(lc.cur.Value(), 0, ix.arena.decode[:0])
	if err != nil {
		return nil, err
	}
	ix.arena.decode = ps
	return ps, nil
}

// pastUpper reports whether the current block's tag is strictly beyond the
// RoI upper bound — the block is still processed (it may hold boundary
// records), but the scan stops after it (§4: "the tag of the last one must
// be strictly greater than the greater bound of the RoI"). Stored tags may
// be prefix-truncated, so the bound is truncated to match: a truncated tag
// exceeding the truncated bound implies the full tag exceeds the full
// bound, and ties keep scanning (never stopping early).
func (lc *listCursor) pastUpper(upper []sequence.Rank) bool {
	return sequence.Compare(lc.tag, lc.ix.truncTag(upper)) > 0
}

// appendConsecutiveRanks appends the sequence (from, from+1, ..., to).
func appendConsecutiveRanks(dst []sequence.Rank, from, to sequence.Rank) []sequence.Rank {
	for r := from; ; r++ {
		dst = append(dst, r)
		if r == to {
			break
		}
	}
	return dst
}

// appendBoundSet appends the sorted set {a, b, c} with duplicates
// collapsed — used for RoI upper bounds like (q_j, q_i, q_n) whose
// components may coincide.
func appendBoundSet(dst []sequence.Rank, a, b, c sequence.Rank) []sequence.Rank {
	dst = append(dst, a)
	if b != a {
		dst = append(dst, b)
	}
	if c != dst[len(dst)-1] {
		dst = append(dst, c)
	}
	return dst
}
