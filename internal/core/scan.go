package core

import (
	"repro/internal/btree"
	"repro/internal/sequence"
	"repro/internal/vbyte"
)

// listCursor walks the blocks of one rank's inverted list in id order,
// decoding keys lazily. It becomes invalid when the underlying B-tree
// cursor leaves the rank's key range.
type listCursor struct {
	ix    *Index
	rank  sequence.Rank
	cur   *btree.Cursor
	valid bool

	tag    []sequence.Rank
	lastID uint32
}

// seekTag positions at the first block of rank whose tag >= sf. With a
// configured TagPrefix both the stored tags and the probe are truncated;
// prefix truncation preserves <=, so the seek lands at or before the true
// lower bound (see Options.TagPrefix).
func (ix *Index) seekTag(rank sequence.Rank, sf []sequence.Rank) (*listCursor, error) {
	cur, err := ix.tree.Seek(tagProbe(rank, ix.truncTag(sf)), btree.BytewiseCompare)
	if err != nil {
		return nil, err
	}
	lc := &listCursor{ix: ix, rank: rank, cur: cur}
	return lc, lc.load()
}

// seekID positions at the first block of rank whose lastID >= id, i.e.
// the block that would contain record id.
func (ix *Index) seekID(rank sequence.Rank, id uint32) (*listCursor, error) {
	cur, err := ix.tree.Seek(idProbe(rank, id), idProbeCompare)
	if err != nil {
		return nil, err
	}
	lc := &listCursor{ix: ix, rank: rank, cur: cur}
	return lc, lc.load()
}

// load parses the current B-tree entry, invalidating the cursor if it has
// moved past this rank's list.
func (lc *listCursor) load() error {
	if !lc.cur.Valid() {
		lc.valid = false
		return nil
	}
	rank, tag, lastID, err := parseKey(lc.cur.Key())
	if err != nil {
		return err
	}
	if rank != lc.rank {
		lc.valid = false
		return nil
	}
	lc.tag = tag
	lc.lastID = lastID
	lc.valid = true
	return nil
}

// next advances to the following block of the same list.
func (lc *listCursor) next() error {
	if !lc.valid {
		return nil
	}
	if err := lc.cur.Next(); err != nil {
		return err
	}
	return lc.load()
}

// postings decodes the current block into out.
func (lc *listCursor) postings(out []vbyte.Posting) ([]vbyte.Posting, error) {
	return vbyte.DecodePostings(lc.cur.Value(), 0, out)
}

// pastUpper reports whether the current block's tag is strictly beyond the
// RoI upper bound — the block is still processed (it may hold boundary
// records), but the scan stops after it (§4: "the tag of the last one must
// be strictly greater than the greater bound of the RoI"). Stored tags may
// be prefix-truncated, so the bound is truncated to match: a truncated tag
// exceeding the truncated bound implies the full tag exceeds the full
// bound, and ties keep scanning (never stopping early).
func (lc *listCursor) pastUpper(upper []sequence.Rank) bool {
	return sequence.Compare(lc.tag, lc.ix.truncTag(upper)) > 0
}

// consecutiveRanks returns the sequence (from, from+1, ..., to).
func consecutiveRanks(from, to sequence.Rank) []sequence.Rank {
	out := make([]sequence.Rank, 0, to-from+1)
	for r := from; ; r++ {
		out = append(out, r)
		if r == to {
			break
		}
	}
	return out
}

// boundSet returns the sorted set {a, b, c} with duplicates collapsed —
// used for RoI upper bounds like (q_j, q_i, q_n) whose components may
// coincide.
func boundSet(a, b, c sequence.Rank) []sequence.Rank {
	out := []sequence.Rank{a}
	if b != a {
		out = append(out, b)
	}
	if c != out[len(out)-1] {
		out = append(out, c)
	}
	return out
}
