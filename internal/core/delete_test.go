package core

import (
	"bytes"
	"math/rand"
	"slices"
	"testing"

	"repro/internal/dataset"
	"repro/internal/naive"
)

// deleteReference answers qs against d with the naive scanner, then
// strips the tombstoned ids — the ground truth a deleting index must
// match both before and after MergeDelta.
func deleteReference(pred string, d *dataset.Dataset, qs []dataset.Item, dead []uint32) []uint32 {
	var ids []uint32
	switch pred {
	case "subset":
		ids = naive.Subset(d, qs)
	case "equality":
		ids = naive.Equality(d, qs)
	default:
		ids = naive.Superset(d, qs)
	}
	out := ids[:0]
	for _, id := range ids {
		if _, found := slices.BinarySearch(dead, id); !found {
			out = append(out, id)
		}
	}
	return out
}

// TestDeleteAgainstNaive: tombstoned records vanish from all three
// predicates immediately and stay gone after the merge physically drops
// their postings; everything else answers exactly as the naive scan.
func TestDeleteAgainstNaive(t *testing.T) {
	d, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		NumRecords: 2000, DomainSize: 50, MinLen: 1, MaxLen: 8, ZipfTheta: 0.9, Seed: 140,
	})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(d, Options{PageSize: 512, BlockPostings: 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(141))
	var dead []uint32
	for len(dead) < 300 {
		id := uint32(1 + rng.Intn(d.Len()))
		if err := ix.Delete(id); err != nil {
			continue // already dead
		}
		dead = append(dead, id)
	}
	slices.Sort(dead)
	if got := ix.Deleted(); got != len(dead) {
		t.Fatalf("Deleted() = %d, want %d", got, len(dead))
	}

	check := func(stage string) {
		t.Helper()
		for trial := 0; trial < 80; trial++ {
			k := rng.Intn(5)
			qs := make([]dataset.Item, k)
			for i := range qs {
				qs[i] = dataset.Item(rng.Intn(50))
			}
			for _, pred := range []string{"subset", "equality", "superset"} {
				want := deleteReference(pred, d, qs, dead)
				var got []uint32
				var err error
				switch pred {
				case "subset":
					got, err = ix.Subset(qs)
				case "equality":
					got, err = ix.Equality(qs)
				default:
					got, err = ix.Superset(qs)
				}
				if err != nil {
					t.Fatalf("%s %s(%v): %v", stage, pred, qs, err)
				}
				if !equalIDsCore(got, want) {
					t.Fatalf("%s %s(%v): got %v, want %v", stage, pred, qs, got, want)
				}
			}
		}
	}
	check("pre-merge")

	blocksBefore := ix.Space().Blocks
	if err := ix.MergeDelta(); err != nil {
		t.Fatal(err)
	}
	if ix.Space().Blocks >= blocksBefore {
		t.Errorf("blocks %d -> %d after deleting 300 of 2000; want physical shrink",
			blocksBefore, ix.Space().Blocks)
	}
	if ix.NumRecords() != d.Len() {
		t.Errorf("NumRecords %d after merge, want %d (slots persist)", ix.NumRecords(), d.Len())
	}
	check("post-merge")

	// Tombstones survive a snapshot taken before AND after the merge.
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Deleted() != len(dead) {
		t.Fatalf("snapshot lost tombstones: %d, want %d", loaded.Deleted(), len(dead))
	}
	got, err := loaded.Subset(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range dead {
		if _, found := slices.BinarySearch(got, id); found {
			t.Fatalf("tombstoned id %d resurfaced after snapshot reload", id)
		}
	}
}

// TestDeletePendingSnapshot: a snapshot taken between Delete and
// MergeDelta restores with the physical fold-out still pending — the
// restored index's merge must shrink the lists exactly like the
// original's would have.
func TestDeletePendingSnapshot(t *testing.T) {
	d, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		NumRecords: 800, DomainSize: 30, MinLen: 1, MaxLen: 6, ZipfTheta: 0.8, Seed: 150,
	})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(d, Options{PageSize: 512, BlockPostings: 8})
	if err != nil {
		t.Fatal(err)
	}
	for id := uint32(1); id <= 200; id++ {
		if err := ix.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	before := loaded.Space().Blocks
	if err := loaded.MergeDelta(); err != nil {
		t.Fatal(err)
	}
	if loaded.Space().Blocks >= before {
		t.Errorf("restored index's merge did not shrink blocks: %d -> %d", before, loaded.Space().Blocks)
	}
	a, err := ix.Subset(nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Subset(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDsCore(a, b) {
		t.Fatal("restored+merged answers diverge from original")
	}
}

func equalIDsCore(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
