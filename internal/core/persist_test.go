package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/naive"
)

func TestSnapshotRoundTrip(t *testing.T) {
	d, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		NumRecords: 3000, DomainSize: 80, MinLen: 1, MaxLen: 9, ZipfTheta: 0.8, Seed: 44,
	})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(d, Options{PageSize: 512, BlockPostings: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Leave a pending delta in place; it must survive the snapshot.
	if _, err := ix.Insert([]dataset.Item{1, 2, 3}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.NumRecords() != ix.NumRecords() || loaded.DomainSize() != ix.DomainSize() {
		t.Fatalf("shape changed: %d/%d records, %d/%d domain",
			loaded.NumRecords(), ix.NumRecords(), loaded.DomainSize(), ix.DomainSize())
	}
	if loaded.DeltaLen() != 1 {
		t.Fatalf("delta lost: %d", loaded.DeltaLen())
	}
	if loaded.Space() != ix.Space() {
		t.Fatalf("space stats changed: %+v vs %+v", loaded.Space(), ix.Space())
	}

	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 150; trial++ {
		k := 1 + rng.Intn(5)
		qs := make([]dataset.Item, k)
		for i := range qs {
			qs[i] = dataset.Item(rng.Intn(80))
		}
		a, err := ix.Subset(qs)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Subset(qs)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(a, b) {
			t.Fatalf("Subset(%v) diverged after reload", qs)
		}
		a, err = ix.Equality(qs)
		if err != nil {
			t.Fatal(err)
		}
		b, err = loaded.Equality(qs)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(a, b) {
			t.Fatalf("Equality(%v) diverged after reload", qs)
		}
		a, err = ix.Superset(qs)
		if err != nil {
			t.Fatal(err)
		}
		b, err = loaded.Superset(qs)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(a, b) {
			t.Fatalf("Superset(%v) diverged after reload", qs)
		}
	}

	// The loaded index remains updatable.
	if err := loaded.MergeDelta(); err != nil {
		t.Fatalf("MergeDelta after load: %v", err)
	}
	got, err := loaded.Equality([]dataset.Item{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := naive.Equality(d, []dataset.Item{1, 2, 3})
	if len(got) != len(want)+1 {
		t.Fatalf("merged delta record missing: %d answers, want %d", len(got), len(want)+1)
	}
}

func TestSnapshotDetectsCorruption(t *testing.T) {
	d, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		NumRecords: 500, DomainSize: 30, MinLen: 1, MaxLen: 6, ZipfTheta: 0.5, Seed: 46,
	})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(d, Options{PageSize: 512, BlockPostings: 8})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()

	// Flip one byte at a sample of positions; every load must fail with
	// ErrBadSnapshot (never panic, never succeed silently).
	for pos := 0; pos < len(snap); pos += 97 {
		corrupted := append([]byte(nil), snap...)
		corrupted[pos] ^= 0x40
		if _, err := Load(bytes.NewReader(corrupted)); err == nil {
			t.Fatalf("corruption at byte %d went undetected", pos)
		} else if !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("corruption at byte %d: unexpected error %v", pos, err)
		}
	}

	// Truncations must also fail cleanly.
	for _, cut := range []int{0, 3, len(snap) / 2, len(snap) - 1} {
		if _, err := Load(bytes.NewReader(snap[:cut])); err == nil {
			t.Fatalf("truncation at %d went undetected", cut)
		}
	}
}

func TestSnapshotRejectsForeignData(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("definitely not a snapshot"))); err == nil {
		t.Fatal("foreign data accepted")
	}
}
