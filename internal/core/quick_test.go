package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/naive"
)

// quickCase is a generated mini-database plus one query, built by
// testing/quick's reflection generator and normalised in Build.
type quickCase struct {
	Domain  uint8
	Records [][]uint8
	Query   []uint8
}

// Generate implements quick.Generator: small domains and collections so
// thousands of cases stay fast while covering duplicates, empties, and
// extreme skews.
func (quickCase) Generate(rand *rand.Rand, size int) reflect.Value {
	c := quickCase{Domain: uint8(1 + rand.Intn(24))}
	n := rand.Intn(60)
	for i := 0; i < n; i++ {
		l := rand.Intn(8)
		set := make([]uint8, l)
		for j := range set {
			set[j] = uint8(rand.Intn(int(c.Domain)))
		}
		c.Records = append(c.Records, set)
	}
	q := rand.Intn(5)
	c.Query = make([]uint8, q)
	for j := range c.Query {
		c.Query[j] = uint8(rand.Intn(int(c.Domain)))
	}
	return reflect.ValueOf(c)
}

func (c quickCase) dataset(t testing.TB) *dataset.Dataset {
	t.Helper()
	d := dataset.New(int(c.Domain))
	for _, raw := range c.Records {
		set := make([]dataset.Item, len(raw))
		for i, v := range raw {
			set[i] = dataset.Item(v)
		}
		if _, err := d.Add(set); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func (c quickCase) query() []dataset.Item {
	qs := make([]dataset.Item, len(c.Query))
	for i, v := range c.Query {
		qs[i] = dataset.Item(v)
	}
	return qs
}

// TestQuickAllPredicatesMatchOracle is the repository's broadest property
// test: for arbitrary generated databases and queries, the OIF agrees
// with the full-scan oracle on all three predicates.
func TestQuickAllPredicatesMatchOracle(t *testing.T) {
	f := func(c quickCase) bool {
		d := c.dataset(t)
		ix, err := Build(d, Options{PageSize: 512, BlockPostings: 4})
		if err != nil {
			t.Logf("build: %v", err)
			return false
		}
		qs := c.query()
		got, err := ix.Subset(qs)
		if err != nil || !equalIDs(got, naive.Subset(d, qs)) {
			t.Logf("subset mismatch for %+v (err %v)", c, err)
			return false
		}
		got, err = ix.Equality(qs)
		if err != nil || !equalIDs(got, naive.Equality(d, qs)) {
			t.Logf("equality mismatch for %+v (err %v)", c, err)
			return false
		}
		got, err = ix.Superset(qs)
		if err != nil || !equalIDs(got, naive.Superset(d, qs)) {
			t.Logf("superset mismatch for %+v (err %v)", c, err)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 400}
	if testing.Short() {
		cfg.MaxCount = 60
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickInsertPreservesOracle extends the property across the delta
// path: insert a generated record, query before and after MergeDelta.
func TestQuickInsertPreservesOracle(t *testing.T) {
	f := func(c quickCase, extraRaw []uint8) bool {
		d := c.dataset(t)
		ix, err := Build(d, Options{PageSize: 512, BlockPostings: 4})
		if err != nil {
			return false
		}
		extra := make([]dataset.Item, 0, len(extraRaw))
		for _, v := range extraRaw {
			extra = append(extra, dataset.Item(v)%dataset.Item(c.Domain))
		}
		if _, err := ix.Insert(extra); err != nil {
			t.Logf("insert: %v", err)
			return false
		}
		if _, err := d.Add(extra); err != nil {
			return false
		}
		qs := c.query()
		got, err := ix.Subset(qs)
		if err != nil || !equalIDs(got, naive.Subset(d, qs)) {
			t.Logf("pre-merge subset mismatch for %+v", c)
			return false
		}
		if err := ix.MergeDelta(); err != nil {
			t.Logf("merge: %v", err)
			return false
		}
		got, err = ix.Superset(qs)
		if err != nil || !equalIDs(got, naive.Superset(d, qs)) {
			t.Logf("post-merge superset mismatch for %+v", c)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150}
	if testing.Short() {
		cfg.MaxCount = 30
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRoIInvariant pins Theorem 2's guarantee directly: every subset
// answer's sequence form lies inside [RoI lower, RoI upper].
func TestQuickRoIInvariant(t *testing.T) {
	f := func(c quickCase) bool {
		if len(c.Query) == 0 {
			return true
		}
		d := c.dataset(t)
		ix, err := Build(d, Options{PageSize: 512, BlockPostings: 4})
		if err != nil {
			return false
		}
		ix.ensureRuntime()
		q, err := ix.prepRanks(c.query())
		if err != nil || len(q) == 0 {
			return true
		}
		// prepRanks returns an arena-owned slice that the Subset call
		// below will reuse; copy it before querying.
		q = append([]uint32(nil), q...)
		ids, err := ix.Subset(c.query())
		if err != nil {
			return false
		}
		n := len(q)
		lower := appendConsecutiveRanks(nil, 0, q[n-1])
		upper := q
		if maxR := ix.ord.MaxRank(); q[n-1] != maxR {
			upper = append(append([]uint32{}, q...), maxR)
		}
		for _, orig := range ids {
			newID := ix.re.NewID(int(orig - 1))
			sf := ix.re.SF(newID)
			if cmpSeq(sf, lower) < 0 || cmpSeq(sf, upper) > 0 {
				t.Logf("answer %d sf %v outside RoI [%v, %v]", orig, sf, lower, upper)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300}
	if testing.Short() {
		cfg.MaxCount = 50
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func cmpSeq(a, b []uint32) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}
