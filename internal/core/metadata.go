package core

import "repro/internal/sequence"

// Region is one entry of the paper's metadata table (§3, "Metadata"):
// the contiguous new-id interval [L, U] of records whose smallest
// (most frequent) item has this rank (Theorem 1). U1 extends the table as
// §4.3's footnote suggests: [L, U1] is the sub-interval of cardinality-1
// records (it sits at the front of the region because the singleton {o}
// is the lexicographically smallest set starting with o).
//
// A zero L denotes an empty region — record ids are 1-based.
type Region struct {
	L, U uint32
	U1   uint32 // last id of the cardinality-1 prefix; L-1 if none
}

// Empty reports whether no record has this rank as its smallest item.
func (r Region) Empty() bool { return r.L == 0 }

// ContainsID reports whether id falls inside the region.
func (r Region) ContainsID(id uint32) bool { return !r.Empty() && id >= r.L && id <= r.U }

// Metadata is the memory-resident metadata table: one region per rank,
// plus the empty-set region [1, EmptyUpper] that precedes every item
// region (the paper's order places the empty set first).
type Metadata struct {
	EmptyUpper uint32 // ids [1, EmptyUpper] are empty-set records; 0 if none
	Regions    []Region
}

func newMetadata(domainSize int) *Metadata {
	return &Metadata{Regions: make([]Region, domainSize)}
}

// note records that the record with the given new id has smallest rank
// first and the given cardinality. Ids must arrive in ascending order —
// they do, because the builder walks records in new-id order.
func (m *Metadata) note(first sequence.Rank, id uint32, cardinality int) {
	r := &m.Regions[first]
	if r.Empty() {
		r.L = id
		r.U1 = id - 1
	}
	r.U = id
	if cardinality == 1 {
		r.U1 = id
	}
}

// noteEmpty records an empty-set record (they precede everything).
func (m *Metadata) noteEmpty(id uint32) { m.EmptyUpper = id }

// Bytes reports the table's memory footprint (space accounting): three
// 4-byte ids per region plus the empty bound.
func (m *Metadata) Bytes() int64 { return int64(len(m.Regions))*12 + 4 }
