package core

import (
	"slices"

	"repro/internal/dataset"
	"repro/internal/sequence"
	"repro/internal/vbyte"
)

// Query evaluation (§4). All three predicates share the same skeleton:
// determine the Range of Interest from the query's sequence form, use the
// B-tree to fetch only the blocks covering it, and merge-join against the
// shrinking candidate set, finishing with the metadata table for the
// query's smallest item. Results are returned as sorted original record
// ids.
//
// Each predicate has an Append form that appends the answer to a
// caller-provided slice — the zero-allocation entry point: with a warm
// page cache and decoded-block cache, an Append query reuses the arena's
// scratch buffers throughout and allocates nothing. The plain forms
// allocate only the result slice they return.

// Subset returns the ids of records t with qs ⊆ t.s (Algorithm 1).
func (ix *Index) Subset(qs []dataset.Item) ([]uint32, error) {
	return ix.AppendSubset(nil, qs)
}

// AppendSubset appends Subset's answer to dst and returns the extended
// slice. Existing dst contents are preserved; only the appended region
// is sorted.
func (ix *Index) AppendSubset(dst []uint32, qs []dataset.Item) ([]uint32, error) {
	ix.ensureRuntime()
	q, err := ix.prepRanks(qs)
	if err != nil {
		return nil, err
	}
	ar := ix.arena
	n := len(q)
	if n == 0 {
		// Every record contains the empty set.
		all := ar.aux[:0]
		for id := uint32(1); id <= uint32(ix.numRecords); id++ {
			all = append(all, id)
		}
		ar.aux = all
		return ix.mapToOriginal(dst, all, nil, predContainsAll), nil
	}
	if n == 1 {
		ids, err := ix.collectWholeList(ar.aux[:0], q[0])
		if err != nil {
			return nil, err
		}
		// The metadata region holds the list's suffix: records whose
		// smallest item is q[0]. Region ids all exceed list ids.
		reg := ix.meta.Regions[q[0]]
		for id := reg.L; !reg.Empty() && id <= reg.U; id++ {
			ids = append(ids, id)
		}
		ar.aux = ids
		return ix.mapToOriginal(dst, ids, q, predContainsAll), nil
	}

	// RoI_sub (Def. 2): lower bound is the full run of ranks up to the
	// query's largest; upper is the query followed by the largest rank.
	// Both live in the arena's bound buffer: the lower bound is dead
	// once the seek probe is built, so the buffer is reused for the
	// upper bound that the scan loop consults.
	bound := appendConsecutiveRanks(ar.bound[:0], 0, q[n-1])
	ar.bound = bound
	lc, err := ix.seekTag(q[n-1], bound)
	if err != nil {
		return nil, err
	}
	upper := q
	if maxR := ix.ord.MaxRank(); q[n-1] != maxR {
		bound = append(ar.bound[:0], q...)
		bound = append(bound, maxR)
		ar.bound = bound
		upper = bound
	}

	// Candidates from the least frequent item's list, RoI-bounded. Records
	// shorter than the query can never qualify.
	cands := ar.cands[:0]
	for lc.valid {
		buf, err := lc.postings()
		if err != nil {
			return nil, err
		}
		for _, p := range buf {
			if p.Length >= uint32(n) {
				cands = append(cands, p.ID)
			}
		}
		if lc.pastUpper(upper) {
			break
		}
		if err := lc.next(); err != nil {
			return nil, err
		}
	}
	ar.cands = cands

	// Join against the remaining lists, least frequent first, probing by
	// candidate id so only blocks inside [min-candidate, max-candidate]
	// are touched.
	for i := n - 2; i >= 1 && len(cands) > 0; i-- {
		cands, err = ix.filterByList(q[i], cands)
		if err != nil {
			return nil, err
		}
	}
	if len(cands) == 0 {
		return ix.mapToOriginal(dst, nil, q, predContainsAll), nil
	}

	// The smallest item: candidates inside its metadata region contain it
	// by construction; candidates beyond the region's end cannot contain
	// it (Theorem 1); the rest must appear in its (shortened) list.
	reg := ix.meta.Regions[q[0]]
	confirmed, toCheck := ar.aux2[:0], ar.aux[:0]
	for _, id := range cands {
		switch {
		case reg.ContainsID(id):
			confirmed = append(confirmed, id)
		case !reg.Empty() && id > reg.U:
			// discard
		default:
			toCheck = append(toCheck, id)
		}
	}
	ar.aux2, ar.aux = confirmed, toCheck
	checked, err := ix.filterByList(q[0], toCheck)
	if err != nil {
		return nil, err
	}
	// toCheck ids all precede region ids, so concatenation stays sorted.
	result := append(checked, confirmed...)
	ar.aux = result
	return ix.mapToOriginal(dst, result, q, predContainsAll), nil
}

// AppendSubsetWithin appends Subset(qs) ∩ cands to dst: the members of
// cands whose records contain every item of qs. cands must be sorted
// ascending original-space ids; it is never mutated, so callers may pass
// shared slices. This is the streaming-AND entry point: when an
// intersection already holds a small candidate set, probing qs's lists
// by candidate id (filterByList's block seeks) touches only the blocks
// those candidates fall in, instead of materializing qs's full answer
// and intersecting afterwards. The append contract matches AppendSubset:
// existing dst contents are preserved, the appended region is sorted.
func (ix *Index) AppendSubsetWithin(dst []uint32, qs []dataset.Item, cands []uint32) ([]uint32, error) {
	ix.ensureRuntime()
	q, err := ix.prepRanks(qs)
	if err != nil {
		return nil, err
	}
	ar := ix.arena
	n := len(q)

	// Map merged-range candidates into new-id space (delta-range ids are
	// handled by the delta sweep below). The map permutes ids, so the
	// mapped set must be re-sorted for the list probes.
	w := ar.within[:0]
	for _, c := range cands {
		if c >= 1 && int(c) <= ix.numRecords {
			w = append(w, ix.re.NewID(int(c)-1))
		}
	}
	slices.Sort(w)
	ar.within = w

	// Join against the query's lists, least frequent first — identical to
	// AppendSubset's filtering phase, minus the RoI candidate scan the
	// given candidates replace.
	for i := n - 1; i >= 1 && len(w) > 0; i-- {
		w, err = ix.filterByList(q[i], w)
		if err != nil {
			return nil, err
		}
		ar.within = w
	}

	if n > 0 && len(w) > 0 {
		// The smallest item, by Theorem 1 — valid for arbitrary candidate
		// ids, not just list-derived ones: ids inside q[0]'s metadata
		// region have smallest rank q[0] (contain it by construction), ids
		// beyond the region have smallest rank > q[0] (cannot contain it),
		// and ids before it must carry a posting in q[0]'s list.
		reg := ix.meta.Regions[q[0]]
		confirmed, toCheck := ar.aux2[:0], ar.aux[:0]
		for _, id := range w {
			switch {
			case reg.ContainsID(id):
				confirmed = append(confirmed, id)
			case !reg.Empty() && id > reg.U:
				// discard
			default:
				toCheck = append(toCheck, id)
			}
		}
		ar.aux2, ar.aux = confirmed, toCheck
		checked, err := ix.filterByList(q[0], toCheck)
		if err != nil {
			return nil, err
		}
		// toCheck ids all precede region ids, so concatenation stays sorted.
		w = append(checked, confirmed...)
		ar.aux = w
	}

	// Back to original ids with the tombstone mask, then the delta —
	// restricted to records present in cands, unlike mapToOriginal's
	// unconditional delta sweep.
	start := len(dst)
	dst = slices.Grow(dst, len(w))
	for _, id := range w {
		if oid := ix.origID(id); len(ix.dead) == 0 || !ix.isDead(oid) {
			dst = append(dst, oid)
		}
	}
	if len(ix.delta) > 0 {
		items := ix.ord.Set(q)
		for _, r := range ix.delta {
			if len(ix.dead) > 0 && ix.isDead(r.ID) {
				continue
			}
			if !r.ContainsAll(items) {
				continue
			}
			if _, ok := slices.BinarySearch(cands, r.ID); ok {
				dst = append(dst, r.ID)
			}
		}
	}
	slices.Sort(dst[start:])
	return dst, nil
}

// Equality returns the ids of records t with t.s = qs (§4.2).
func (ix *Index) Equality(qs []dataset.Item) ([]uint32, error) {
	return ix.AppendEquality(nil, qs)
}

// AppendEquality appends Equality's answer to dst; see AppendSubset for
// the append contract.
func (ix *Index) AppendEquality(dst []uint32, qs []dataset.Item) ([]uint32, error) {
	ix.ensureRuntime()
	q, err := ix.prepRanks(qs)
	if err != nil {
		return nil, err
	}
	ar := ix.arena
	n := len(q)
	if n == 0 {
		ids := ar.aux[:0]
		for id := uint32(1); id <= ix.meta.EmptyUpper; id++ {
			ids = append(ids, id)
		}
		ar.aux = ids
		return ix.mapToOriginal(dst, ids, q, predEqual), nil
	}
	reg := ix.meta.Regions[q[0]]
	if reg.Empty() {
		return ix.mapToOriginal(dst, nil, q, predEqual), nil
	}
	if n == 1 {
		// All answers are the cardinality-1 prefix of the region; the
		// inverted list is never touched.
		ids := ar.aux[:0]
		for id := reg.L; id <= reg.U1; id++ {
			ids = append(ids, id)
		}
		ar.aux = ids
		return ix.mapToOriginal(dst, ids, q, predEqual), nil
	}

	// RoI_eq is the single point qs (Def. 3). Scan the least frequent
	// item's list from the first block with tag >= qs until the first
	// block with tag > qs; duplicates of qs may span several blocks.
	cands := ar.cands[:0]
	lc, err := ix.seekTag(q[n-1], q)
	if err != nil {
		return nil, err
	}
	for lc.valid {
		buf, err := lc.postings()
		if err != nil {
			return nil, err
		}
		for _, p := range buf {
			// Length filter (§2 extension) plus the region of the smallest
			// item: answers have smallest rank q[0] by definition.
			if p.Length == uint32(n) && reg.ContainsID(p.ID) {
				cands = append(cands, p.ID)
			}
		}
		if lc.pastUpper(q) {
			break
		}
		if err := lc.next(); err != nil {
			return nil, err
		}
	}
	ar.cands = cands
	for i := n - 2; i >= 1 && len(cands) > 0; i-- {
		cands, err = ix.filterByList(q[i], cands)
		if err != nil {
			return nil, err
		}
	}
	// No access to q[0]'s list: membership in its metadata region plus
	// length n plus containment of q[1..n-1] pins the set to exactly qs.
	return ix.mapToOriginal(dst, cands, q, predEqual), nil
}

// Superset returns the ids of records t with t.s ⊆ qs (Algorithm 2).
func (ix *Index) Superset(qs []dataset.Item) ([]uint32, error) {
	return ix.AppendSuperset(nil, qs)
}

// AppendSuperset appends Superset's answer to dst; see AppendSubset for
// the append contract.
func (ix *Index) AppendSuperset(dst []uint32, qs []dataset.Item) ([]uint32, error) {
	ix.ensureRuntime()
	q, err := ix.prepRanks(qs)
	if err != nil {
		return nil, err
	}
	ar := ix.arena
	n := len(q)

	// Empty-set records satisfy every superset query.
	results := ar.aux[:0]
	for id := uint32(1); id <= ix.meta.EmptyUpper; id++ {
		results = append(results, id)
	}

	// Candidate rounds ping-pong between the arena's two scand buffers.
	cands, spare := ar.scands[:0], ar.merged

	for i := n - 1; i >= 0; i-- {
		// Gather this item's RoI postings across its per-j regions
		// (Def. 4), deduplicated by a monotonic id filter — regions
		// ascend in id space and boundary blocks may straddle them. The
		// cursor carries over between regions when the current block
		// already covers the next region's start (Algorithm 2, lines
		// 21-22: "checks if this RoI is not already included in the
		// previously retrieved block").
		incoming := ar.incoming[:0]
		lastSeen := uint32(0)
		var lc *listCursor
		for j := 0; j < i; j++ {
			lower := q[j : i+1]
			upper := appendBoundSet(ar.bound[:0], q[j], q[i], q[n-1])
			ar.bound = upper
			switch {
			case lc == nil:
				lc, err = ix.seekTag(q[i], lower)
				if err != nil {
					return nil, err
				}
			case !lc.valid:
				// The list is exhausted; no later region can match.
				j = i
				continue
			case sequence.Compare(lc.tag, lower) < 0:
				lc, err = ix.seekTag(q[i], lower)
				if err != nil {
					return nil, err
				}
			}
			for lc.valid {
				buf, err := lc.postings()
				if err != nil {
					return nil, err
				}
				for _, p := range buf {
					if p.ID <= lastSeen {
						continue
					}
					lastSeen = p.ID
					// Records longer than the query can never qualify.
					if p.Length <= uint32(n) {
						incoming = append(incoming, p)
					}
				}
				if lc.pastUpper(upper) {
					break
				}
				if err := lc.next(); err != nil {
					return nil, err
				}
			}
		}
		ar.incoming = incoming

		// Merge incoming postings into the candidate set. A new record is
		// admitted only if its remaining unexamined items (q[0..i-1] plus
		// this one) can still cover its whole set: length <= i+1
		// (Algorithm 2, line 14).
		merged := spare[:0]
		a, b := 0, 0
		for a < len(cands) || b < len(incoming) {
			switch {
			case b == len(incoming) || (a < len(cands) && cands[a].id < incoming[b].ID):
				merged = append(merged, cands[a])
				a++
			case a == len(cands) || incoming[b].ID < cands[a].id:
				if incoming[b].Length <= uint32(i+1) {
					merged = append(merged, scand{id: incoming[b].ID, length: incoming[b].Length, found: 1})
				}
				b++
			default: // same id: one more of the record's items is in qs
				c := cands[a]
				c.found++
				merged = append(merged, c)
				a++
				b++
			}
		}
		cands, spare = merged, cands

		// The item's final region lives in the metadata table, not the
		// list (Def. 4's last range; Algorithm 2 lines 22-24).
		reg := ix.meta.Regions[q[i]]
		if !reg.Empty() {
			// Cardinality-1 records {q[i]} are answers outright.
			for id := reg.L; id <= reg.U1; id++ {
				results = append(results, id)
			}
			// Other region residents contain q[i]: bump their counters.
			for a := range cands {
				if cands[a].id > reg.U1 && cands[a].id <= reg.U {
					cands[a].found++
				}
			}
		}

		// Sweep: emit completed candidates, discard unreachable ones
		// (Algorithm 2, lines 10-11 and 18-20). After this item, each of
		// the i remaining items can contribute at most one match.
		kept := cands[:0]
		for _, c := range cands {
			switch {
			case c.found == c.length:
				results = append(results, c.id)
			case c.length-c.found > uint32(i):
				// unreachable: drop
			default:
				kept = append(kept, c)
			}
		}
		cands = kept
	}
	ar.scands, ar.merged = cands, spare
	ar.aux = results
	return ix.mapToOriginal(dst, results, q, predSubsetOf), nil
}

// collectWholeList appends every posting id in rank's list to dst,
// ascending.
func (ix *Index) collectWholeList(dst []uint32, rank sequence.Rank) ([]uint32, error) {
	lc, err := ix.seekTag(rank, nil)
	if err != nil {
		return nil, err
	}
	for lc.valid {
		buf, err := lc.postings()
		if err != nil {
			return nil, err
		}
		for _, p := range buf {
			dst = append(dst, p.ID)
		}
		if err := lc.next(); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// filterByList keeps the candidates (sorted new ids) that appear in
// rank's inverted list, probing the B-tree by candidate id so only blocks
// between the smallest and largest candidate are read — the progressive
// range restriction of Algorithm 1, line 15. The filter is in place:
// the returned slice reuses cands' storage.
func (ix *Index) filterByList(rank sequence.Rank, cands []uint32) ([]uint32, error) {
	if len(cands) == 0 {
		// Keep cands' backing storage (it is arena scratch the caller
		// appends to next).
		return cands, nil
	}
	out := cands[:0]
	lc, err := ix.seekID(rank, cands[0])
	if err != nil {
		return nil, err
	}
	i := 0
	for i < len(cands) && lc.valid {
		buf, err := lc.postings()
		if err != nil {
			return nil, err
		}
		// The candidates this block can cover: ids up to the block's last.
		hi := i
		for hi < len(cands) && cands[hi] <= lc.lastID {
			hi++
		}
		out = matchBlock(buf, cands[i:hi], out)
		i = hi
		if i >= len(cands) {
			break
		}
		// Advance: the adjacent block is one (usually sequential) page
		// away, so try it first; if the next candidate lies beyond it,
		// jump with an id-directed seek instead.
		if err := lc.next(); err != nil {
			return nil, err
		}
		if lc.valid && lc.lastID < cands[i] {
			lc, err = ix.seekID(rank, cands[i])
			if err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// Crossover for matchBlock's probe strategy: binary search wins once the
// block is much larger than the candidate set falling inside it. A
// linear merge costs ~m+k posting visits (m block postings, k
// candidates), per-candidate binary search ~k*log2(m); with log2(m) <=
// 9 for the block sizes in use (<= 512 postings), binary search is
// profitable from m >~ 8k, with a small constant floor so tiny blocks
// never bother. BenchmarkMatchBlock in query_bench_test.go sweeps m/k
// ratios to justify the constants.
const (
	matchBinaryFloor   = 32 // below this block size, always merge linearly
	matchBinaryPerCand = 8  // binary search when m > floor + 8*k
)

// matchBlock appends the members of cands present in buf to out. cands
// must be sorted ascending and lie within the block's id range; buf is a
// decoded block (ids ascending).
func matchBlock(buf []vbyte.Posting, cands []uint32, out []uint32) []uint32 {
	if len(buf) >= matchBinaryFloor && len(buf) > matchBinaryFloor+matchBinaryPerCand*len(cands) {
		return matchBlockBinary(buf, cands, out)
	}
	return matchBlockLinear(buf, cands, out)
}

// matchBlockLinear advances a shared block offset across the candidates
// — O(m + k).
func matchBlockLinear(buf []vbyte.Posting, cands []uint32, out []uint32) []uint32 {
	j := 0
	for _, c := range cands {
		for j < len(buf) && buf[j].ID < c {
			j++
		}
		if j < len(buf) && buf[j].ID == c {
			out = append(out, c)
		}
	}
	return out
}

// matchBlockBinary binary-searches each candidate within the block's
// remaining suffix — O(k log m), profitable when the block dwarfs the
// candidate set.
func matchBlockBinary(buf []vbyte.Posting, cands []uint32, out []uint32) []uint32 {
	j := 0
	for _, c := range cands {
		lo, hi := j, len(buf)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if buf[mid].ID < c {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		j = lo
		if j < len(buf) && buf[j].ID == c {
			out = append(out, c)
		}
	}
	return out
}
