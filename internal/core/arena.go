package core

import (
	"repro/internal/sequence"
	"repro/internal/vbyte"
)

// queryArena holds every scratch buffer a query evaluation needs, so
// steady-state queries allocate nothing: rank scratch for the prepared
// query and RoI bounds, candidate and merge slices, the vbyte decode
// target, the B-tree probe key, and the list cursor itself (which in
// turn recycles its leaf arena inside btree.Cursor). Each Index — and
// each Reader clone — owns one arena; buffers are truncated, never
// freed, so they settle at the high-water mark of the queries seen.
//
// The arena makes explicit what was previously implicit: only one list
// cursor is live at a time on a query path (candidate gathering finishes
// before filtering starts, and filters run one list at a time), so a
// single recycled cursor and decode buffer serve the whole evaluation.
type queryArena struct {
	ranks    []sequence.Rank // prepared query (prepRanks result)
	bound    []sequence.Rank // RoI bound scratch (lower, then upper)
	cands    []uint32        // shrinking candidate set
	aux      []uint32        // secondary id scratch (toCheck, whole lists, results)
	aux2     []uint32        // tertiary id scratch (confirmed)
	within   []uint32        // AppendSubsetWithin's new-id candidate scratch
	scands   []scand         // superset candidate set
	merged   []scand         // superset merge target (swapped with scands)
	incoming []vbyte.Posting // superset per-item RoI postings
	decode   []vbyte.Posting // block decode target on cache miss
	probe    []byte          // B-tree seek probe
	lc       listCursor      // the one live list cursor
}

// scand is one superset candidate: how many of its length items have
// been seen among the query's lists so far (Algorithm 2's counters).
type scand struct {
	id     uint32
	length uint32
	found  uint32
}

// ensureRuntime lazily attaches the per-instance query state: the
// scratch arena and, when the options ask for one, the decoded-block
// cache (weighted by the index's item-frequency profile). Lazy so every
// construction path — Build, Load, MergeDelta's rebuild — converges
// here; NewReader installs fresh instances explicitly instead, since
// clones must not share mutable state with the parent.
func (ix *Index) ensureRuntime() {
	if ix.arena == nil {
		ix.arena = &queryArena{}
	}
	if ix.dcache == nil && ix.opts.DecodedCachePostings > 0 {
		ix.dcache = newDecodedCache(ix.opts.DecodedCachePostings, ix.profileSkewed())
	}
}
