package core

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/dataset"
	"repro/internal/sequence"
)

// Updates (§4.4). New records accumulate in a memory-resident delta that
// queries consult alongside the disk index; MergeDelta folds them in.
// Unlike the IF — which merely appends postings — the OIF must re-sort
// the whole database to assign fresh ids, which is why the paper reports
// OIF updates costing ~3-5x an IF update. MergeDelta therefore performs a
// full rebuild from the index's own sequence arena plus the delta.

type deltaPred int

const (
	predContainsAll deltaPred = iota // record ⊇ query
	predEqual                        // record = query
	predSubsetOf                     // record ⊆ query
)

// appendDelta adds matching delta-record ids (original-id space).
func (ix *Index) appendDelta(ids []uint32, q []sequence.Rank, pred deltaPred) []uint32 {
	if len(ix.delta) == 0 {
		return ids
	}
	items := ix.ord.Set(q)
	for _, r := range ix.delta {
		if len(ix.dead) > 0 && ix.isDead(r.ID) {
			continue
		}
		var ok bool
		switch pred {
		case predContainsAll:
			ok = r.ContainsAll(items)
		case predEqual:
			ok = r.EqualSet(items)
		default:
			ok = r.SubsetOf(items)
		}
		if ok {
			ids = append(ids, r.ID)
		}
	}
	return ids
}

// Insert adds a record to the delta and returns its (original-space) id.
func (ix *Index) Insert(set []dataset.Item) (uint32, error) {
	cp := append([]dataset.Item(nil), set...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	dedup := cp[:0]
	for i, v := range cp {
		if int(v) >= ix.domainSize {
			return 0, fmt.Errorf("core: item %d outside domain %d", v, ix.domainSize)
		}
		if i == 0 || v != dedup[len(dedup)-1] {
			dedup = append(dedup, v)
		}
	}
	id := uint32(ix.NumRecords() + 1)
	ix.delta = append(ix.delta, dataset.Record{ID: id, Set: dedup})
	return id, nil
}

// DeltaLen returns the number of unmerged inserted records.
func (ix *Index) DeltaLen() int { return len(ix.delta) }

// Delete tombstones the record with the given original-space id: it
// vanishes from every answer immediately, its postings are physically
// removed by the next MergeDelta, and its id is never reused (the slot
// persists as an empty record). Deleting a pending delta record works
// the same way. Deleting an unknown or already-deleted id is an error.
func (ix *Index) Delete(id uint32) error {
	if id == 0 || int(id) > ix.NumRecords() {
		return fmt.Errorf("core: delete of unknown record %d (have %d)", id, ix.NumRecords())
	}
	i, found := slices.BinarySearch(ix.dead, id)
	if found {
		return fmt.Errorf("core: record %d already deleted", id)
	}
	// Copy-on-write keeps the slice immutable for live Reader clones.
	dead := make([]uint32, 0, len(ix.dead)+1)
	dead = append(dead, ix.dead[:i]...)
	dead = append(dead, id)
	dead = append(dead, ix.dead[i:]...)
	ix.dead = dead
	ix.deadDirty = true
	return nil
}

// MergeDelta rebuilds the index over the union of the indexed records and
// the delta: supports are recounted (the order may shift), records are
// re-sorted, ids reassigned, blocks and metadata rebuilt — the full §4.4
// OIF update cost. Tombstoned records participate as empty sets, so
// their postings disappear from every list while every surviving record
// keeps its id; the tombstone set itself carries over (masking the empty
// slots), as do the decoded-block cache's cumulative statistics.
func (ix *Index) MergeDelta() error {
	if len(ix.delta) == 0 && !ix.deadDirty {
		return nil
	}
	// Reconstruct the source dataset in original-id order from the
	// sequence arena, then append the delta; dead records contribute
	// empty sets, which keeps every id slot in place.
	d := dataset.New(ix.domainSize)
	sets := make([][]dataset.Item, ix.numRecords)
	for newID := uint32(1); newID <= uint32(ix.numRecords); newID++ {
		if oid := ix.origID(newID); len(ix.dead) > 0 && ix.isDead(oid) {
			continue
		}
		sets[ix.re.OrigIndex(newID)] = ix.ord.Set(ix.re.SF(newID))
	}
	for _, set := range sets {
		if _, err := d.Add(set); err != nil {
			return err
		}
	}
	for _, r := range ix.delta {
		set := r.Set
		if len(ix.dead) > 0 && ix.isDead(r.ID) {
			set = nil
		}
		if _, err := d.Add(set); err != nil {
			return err
		}
	}
	rebuilt, err := Build(d, ix.opts)
	if err != nil {
		return err
	}
	rebuilt.dead = ix.dead
	oldCache := ix.dcache
	*ix = *rebuilt
	// The rebuild re-attaches a fresh decoded cache; carry the counters
	// so DecodedStats stays cumulative across merges.
	if oldCache != nil {
		ix.ensureRuntime()
		if ix.dcache != nil {
			ix.dcache.seedStats(oldCache.Stats())
		}
	}
	return nil
}
