package core

import (
	"testing"

	"repro/internal/vbyte"
)

func dcBlock(n int) []vbyte.Posting {
	ps := make([]vbyte.Posting, n)
	for i := range ps {
		ps[i] = vbyte.Posting{ID: uint32(i + 1), Length: 2}
	}
	return ps
}

func TestDecodedCacheLRU(t *testing.T) {
	c := newDecodedCache(100, false)
	blk := dcBlock(50)
	if c.admit(1, 0, blk) == nil || c.admit(2, 0, blk) == nil {
		t.Fatal("admission into an empty cache rejected")
	}
	if _, ok := c.get(1); !ok {
		t.Fatal("miss on resident block 1")
	}
	// Full cache, plain LRU: the least recently used (2) is displaced.
	if c.admit(3, 0, blk) == nil {
		t.Fatal("LRU admission rejected")
	}
	if _, ok := c.get(2); ok {
		t.Fatal("LRU victim still resident")
	}
	if _, ok := c.get(1); !ok {
		t.Fatal("recently used block evicted")
	}
	st := c.Stats()
	if st.Admitted != 3 || st.Evicted != 1 || st.Postings != 100 || st.Capacity != 100 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDecodedCacheWeightedAdmission(t *testing.T) {
	c := newDecodedCache(100, true)
	blk := dcBlock(50)
	if c.admit(1, 1000, blk) == nil || c.admit(2, 900, blk) == nil {
		t.Fatal("admission into an empty cache rejected")
	}
	// Full: a block from a cold list must not displace hot residents.
	if c.admit(3, 10, blk) != nil {
		t.Fatal("cold block displaced a hot one")
	}
	if st := c.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}
	// A hotter incomer displaces the coldest admissible resident (2).
	if c.admit(4, 950, blk) == nil {
		t.Fatal("hot block rejected")
	}
	if _, ok := c.get(2); ok {
		t.Fatal("colder resident survived a hotter arrival")
	}
	if _, ok := c.get(1); !ok {
		t.Fatal("hottest resident was displaced")
	}
	if _, ok := c.get(4); !ok {
		t.Fatal("admitted hot block not resident")
	}
}

func TestDecodedCacheNoWastedEvictions(t *testing.T) {
	c := newDecodedCache(100, true)
	if c.admit(1, 5, dcBlock(40)) == nil || c.admit(2, 100, dcBlock(60)) == nil {
		t.Fatal("admission into an empty cache rejected")
	}
	// The incomer outweighs only entry 1 (40 postings) but needs 80:
	// the plan cannot be satisfied, so the cache must stay untouched —
	// evicting 1 and then rejecting anyway would be a pure loss.
	if c.admit(3, 50, dcBlock(80)) != nil {
		t.Fatal("infeasible admission succeeded")
	}
	if _, ok := c.get(1); !ok {
		t.Fatal("resident evicted by an admission that was then rejected")
	}
	if _, ok := c.get(2); !ok {
		t.Fatal("hot resident lost")
	}
	if st := c.Stats(); st.Evicted != 0 || st.Rejected != 1 || st.Postings != 100 {
		t.Fatalf("stats %+v, want 0 evictions and 1 rejection", st)
	}
}

func TestDecodedCacheOversizedBlock(t *testing.T) {
	c := newDecodedCache(10, true)
	if c.admit(1, 5, dcBlock(11)) != nil {
		t.Fatal("block larger than the whole cache admitted")
	}
	if c.admit(2, 5, nil) != nil {
		t.Fatal("empty block admitted")
	}
}

func TestDecodedCacheRecyclesEntries(t *testing.T) {
	c := newDecodedCache(64, false)
	blk := dcBlock(64)
	if c.admit(1, 0, blk) == nil {
		t.Fatal("admission rejected")
	}
	// Steady churn: each admission evicts the lone resident and reuses
	// its entry and posting storage — no allocations.
	key := uint64(2)
	allocs := testing.AllocsPerRun(100, func() {
		if c.admit(key, 0, blk) == nil {
			t.Fatal("churn admission rejected")
		}
		key++
	})
	if allocs != 0 {
		t.Fatalf("steady-state churn allocated %.1f times per run", allocs)
	}
}

func TestDecodedCacheDoubleAdmitReturnsResident(t *testing.T) {
	c := newDecodedCache(100, false)
	blk := dcBlock(10)
	first := c.admit(1, 0, blk)
	if first == nil {
		t.Fatal("admission rejected")
	}
	second := c.admit(1, 0, blk)
	if &second[0] != &first[0] {
		t.Fatal("re-admission did not return the resident copy")
	}
	if st := c.Stats(); st.Postings != 10 || st.Admitted != 1 {
		t.Fatalf("stats %+v after double admit", st)
	}
}
