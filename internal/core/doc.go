// Package core implements the paper's contribution: the Ordered Inverted
// File (OIF). Records are globally re-ordered by the sequence form of
// their sets under the frequency order <_D and given dense ids in that
// order; each item's inverted list is cut into tagged blocks indexed in a
// single disk B+-tree; a memory-resident metadata table replaces each
// record's posting for its most frequent item with a contiguous id region
// (§3). Queries compute a Range of Interest and touch only the B-tree
// blocks that can hold answers (§4).
//
// Where the paper's machinery lives here:
//
//   - the frequency order <_D and sequence forms: internal/sequence,
//     consumed by Build in oif.go
//   - tagged list blocks and their B+-tree: keys.go and internal/btree
//   - the metadata table / region coalescing (§3.3): metadata.go
//   - the Range of Interest and the three query algorithms (§4):
//     query.go and scan.go
//   - updates via the in-memory delta and the §4.4 merge: update.go
//   - snapshots: persist.go
//
// Beyond the paper, the query path adds a skew-aware decoded-block
// cache (dcache.go) and per-handle scratch arenas (arena.go) so warm
// queries run allocation-free; Reader (reader.go) gives each parallel
// goroutine an isolated cache plus those same structures. The public
// API in setcontain wraps this package behind its Engine interface.
package core
