package core

import (
	"bufio"
	"errors"
	"fmt"
	"io"

	"repro/internal/btree"
	"repro/internal/dataset"
	"repro/internal/sequence"
	"repro/internal/snapio"
	"repro/internal/storage"
)

// Index snapshots. Save serialises everything an OIF needs — options,
// the item order, the record reordering, the metadata table, the space
// accounting, the pending delta, the tombstone set, and the raw B-tree
// pages — into one stream guarded by a CRC32 trailer; Load reconstructs
// a queryable index backed by an in-memory pager. The paper's own
// deployment would keep the Berkeley DB file plus a small sidecar; a
// single self-contained snapshot is the simpler equivalent for a
// library.
//
// Format version 2 extends the original header with the decoded-cache
// budget and a flags word, and appends the tombstone set after the
// delta, so a snapshot taken between Delete and MergeDelta restores
// with its masking (and its pending physical fold-out) intact.

const snapshotMagic = "OIFSNAP2"

// snapshot header flags.
const snapFlagDeadDirty = 1 << 0 // tombstoned postings still on disk

// ErrBadSnapshot reports a corrupt or foreign snapshot stream.
var ErrBadSnapshot = errors.New("core: bad index snapshot")

// Save writes a self-contained snapshot of the index to w.
func (ix *Index) Save(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	cw := snapio.NewWriter(bw)
	if _, err := io.WriteString(cw, snapshotMagic); err != nil {
		return err
	}
	flags := uint32(0)
	if ix.deadDirty {
		flags |= snapFlagDeadDirty
	}
	for _, v := range []uint32{
		uint32(ix.opts.PageSize), uint32(ix.opts.BlockPostings),
		uint32(ix.numRecords), uint32(ix.domainSize), ix.meta.EmptyUpper,
		uint32(ix.opts.TagPrefix), uint32(ix.opts.DecodedCachePostings),
		flags,
	} {
		if err := snapio.WriteU32(cw, v); err != nil {
			return err
		}
	}
	// Item order.
	if err := snapio.WriteU32Slice(cw, ix.ord.Items()); err != nil {
		return err
	}
	// Metadata regions.
	regions := make([]uint32, 0, 3*len(ix.meta.Regions))
	for _, reg := range ix.meta.Regions {
		regions = append(regions, reg.L, reg.U, reg.U1)
	}
	if err := snapio.WriteU32Slice(cw, regions); err != nil {
		return err
	}
	// Reordering.
	flat, off, origIndex := ix.re.Parts()
	if err := snapio.WriteU32Slice(cw, flat); err != nil {
		return err
	}
	if err := snapio.WriteU32Slice(cw, off); err != nil {
		return err
	}
	if err := snapio.WriteU32Slice(cw, origIndex); err != nil {
		return err
	}
	// Space accounting.
	for _, v := range []int64{ix.blocks, ix.postingBytes, ix.keyBytes} {
		if err := snapio.WriteU64(cw, uint64(v)); err != nil {
			return err
		}
	}
	lp := make([]uint32, len(ix.listPostings))
	for i, v := range ix.listPostings {
		lp[i] = uint32(v)
	}
	if err := snapio.WriteU32Slice(cw, lp); err != nil {
		return err
	}
	// Pending delta.
	if err := snapio.WriteU64(cw, uint64(len(ix.delta))); err != nil {
		return err
	}
	for _, r := range ix.delta {
		if err := snapio.WriteU32(cw, r.ID); err != nil {
			return err
		}
		if err := snapio.WriteU32Slice(cw, r.Set); err != nil {
			return err
		}
	}
	// Tombstones.
	if err := snapio.WriteU32Slice(cw, ix.dead); err != nil {
		return err
	}
	// Raw pages. Flush the pool first so the pager is current.
	pool := ix.tree.Pool()
	if err := pool.Flush(); err != nil {
		return err
	}
	pager := pool.Pager()
	if err := snapio.WriteU64(cw, uint64(pager.NumPages())); err != nil {
		return err
	}
	page := make([]byte, pager.PageSize())
	for id := storage.PageID(0); int64(id) < pager.NumPages(); id++ {
		if err := pager.ReadPage(id, page); err != nil {
			return err
		}
		if _, err := cw.Write(page); err != nil {
			return err
		}
	}
	// CRC trailer (not itself CRC'd).
	if err := cw.WriteTrailer(); err != nil {
		return err
	}
	return bw.Flush()
}

// Load reconstructs an index from a snapshot produced by Save. The index
// is backed by an in-memory pager and metered with the default cache.
func Load(r io.Reader) (*Index, error) {
	cr := snapio.NewReader(bufio.NewReaderSize(r, 1<<16))
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(cr, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadSnapshot, magic)
	}
	var hdr [8]uint32
	for i := range hdr {
		v, err := snapio.ReadU32(cr)
		if err != nil {
			return nil, fmt.Errorf("%w: header: %v", ErrBadSnapshot, err)
		}
		hdr[i] = v
	}
	pageSize, blockPostings := int(hdr[0]), int(hdr[1])
	numRecords, domainSize, emptyUpper := int(hdr[2]), int(hdr[3]), hdr[4]
	tagPrefix, decodedPostings, flags := int(hdr[5]), int(hdr[6]), hdr[7]
	if pageSize <= 0 || pageSize > 1<<20 || domainSize < 0 || numRecords < 0 {
		return nil, fmt.Errorf("%w: implausible header", ErrBadSnapshot)
	}

	items, err := snapio.ReadU32Slice(cr)
	if err != nil {
		return nil, fmt.Errorf("%w: order: %v", ErrBadSnapshot, err)
	}
	ord, err := sequence.NewOrderFromItems(items)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	regionWords, err := snapio.ReadU32Slice(cr)
	if err != nil || len(regionWords) != 3*domainSize {
		return nil, fmt.Errorf("%w: regions", ErrBadSnapshot)
	}
	meta := newMetadata(domainSize)
	meta.EmptyUpper = emptyUpper
	for i := 0; i < domainSize; i++ {
		meta.Regions[i] = Region{L: regionWords[3*i], U: regionWords[3*i+1], U1: regionWords[3*i+2]}
	}
	flat, err := snapio.ReadU32Slice(cr)
	if err != nil {
		return nil, fmt.Errorf("%w: arena: %v", ErrBadSnapshot, err)
	}
	off, err := snapio.ReadU32Slice(cr)
	if err != nil {
		return nil, fmt.Errorf("%w: offsets: %v", ErrBadSnapshot, err)
	}
	origIndex, err := snapio.ReadU32Slice(cr)
	if err != nil {
		return nil, fmt.Errorf("%w: id map: %v", ErrBadSnapshot, err)
	}
	re, err := sequence.ReorderedFromParts(flat, off, origIndex)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if re.Len() != numRecords {
		return nil, fmt.Errorf("%w: %d reordered records, header says %d", ErrBadSnapshot, re.Len(), numRecords)
	}

	var space [3]int64
	for i := range space {
		v, err := snapio.ReadU64(cr)
		if err != nil {
			return nil, fmt.Errorf("%w: space stats", ErrBadSnapshot)
		}
		space[i] = int64(v)
	}
	lp, err := snapio.ReadU32Slice(cr)
	if err != nil || len(lp) != domainSize {
		return nil, fmt.Errorf("%w: list postings", ErrBadSnapshot)
	}
	listPostings := make([]int64, domainSize)
	for i, v := range lp {
		listPostings[i] = int64(v)
	}
	nDelta, err := snapio.ReadU64(cr)
	if err != nil || nDelta > snapio.MaxSliceLen {
		return nil, fmt.Errorf("%w: delta count", ErrBadSnapshot)
	}
	delta := make([]dataset.Record, 0, nDelta)
	for i := uint64(0); i < nDelta; i++ {
		id, err := snapio.ReadU32(cr)
		if err != nil {
			return nil, fmt.Errorf("%w: delta record", ErrBadSnapshot)
		}
		set, err := snapio.ReadU32Slice(cr)
		if err != nil {
			return nil, fmt.Errorf("%w: delta set", ErrBadSnapshot)
		}
		delta = append(delta, dataset.Record{ID: id, Set: set})
	}
	dead, err := snapio.ReadU32Slice(cr)
	if err != nil {
		return nil, fmt.Errorf("%w: tombstones", ErrBadSnapshot)
	}
	if len(dead) == 0 {
		dead = nil
	}

	nPages, err := snapio.ReadU64(cr)
	if err != nil || nPages > snapio.MaxSliceLen {
		return nil, fmt.Errorf("%w: page count", ErrBadSnapshot)
	}
	pager := storage.NewMemPager(pageSize)
	page := make([]byte, pageSize)
	for i := uint64(0); i < nPages; i++ {
		if _, err := io.ReadFull(cr, page); err != nil {
			return nil, fmt.Errorf("%w: page %d: %v", ErrBadSnapshot, i, err)
		}
		id, err := pager.Allocate()
		if err != nil {
			return nil, err
		}
		if err := pager.WritePage(id, page); err != nil {
			return nil, err
		}
	}
	if err := cr.VerifyTrailer(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}

	pool := storage.NewBufferPool(pager, storage.DefaultPoolPages)
	tree, err := btree.Open(pool)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	return &Index{
		tree:       tree,
		ord:        ord,
		re:         re,
		meta:       meta,
		numRecords: numRecords,
		domainSize: domainSize,
		opts: Options{
			PageSize: pageSize, BlockPostings: blockPostings,
			BuildPoolPages: 1024, TagPrefix: tagPrefix,
			DecodedCachePostings: decodedPostings,
		},
		blocks:       space[0],
		postingBytes: space[1],
		keyBytes:     space[2],
		listPostings: listPostings,
		delta:        delta,
		dead:         dead,
		deadDirty:    flags&snapFlagDeadDirty != 0,
	}, nil
}
